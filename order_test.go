package adapipe_test

import (
	"reflect"
	"testing"

	"adapipe"
)

// The planner's byte-identical-plans guarantee leans on every enumeration in
// the public API having one fixed order. These tests pin the two orderings
// callers iterate over: the method legend and the strategy sweep.

func TestMethodsOrderIsDeterministic(t *testing.T) {
	want := []string{
		"DAPPLE-Full", "DAPPLE-Non",
		"Chimera-Full", "Chimera-Non",
		"ChimeraD-Full", "ChimeraD-Non",
		"Even Partitioning", "AdaPipe",
	}
	names := func() []string {
		ms := adapipe.Methods()
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = m.Name
		}
		return out
	}
	got := names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Methods() order = %v, want the paper's legend order %v", got, want)
	}
	// Repeated calls must return the same order, not just the same set.
	for i := 0; i < 3; i++ {
		if again := names(); !reflect.DeepEqual(again, got) {
			t.Fatalf("Methods() call %d reordered: %v vs %v", i+2, again, got)
		}
	}
}

func TestEnumerateStrategiesOrderIsDeterministic(t *testing.T) {
	for _, devices := range []int{8, 16, 64} {
		first := adapipe.EnumerateStrategies(devices)
		if len(first) == 0 {
			t.Fatalf("no strategies for %d devices", devices)
		}
		for i := 0; i < 3; i++ {
			if again := adapipe.EnumerateStrategies(devices); !reflect.DeepEqual(again, first) {
				t.Fatalf("EnumerateStrategies(%d) reordered across calls:\n%v\nvs\n%v", devices, again, first)
			}
		}
		// The documented generation order: TP ascending, then PP ascending
		// within a TP (both powers of two).
		for i := 1; i < len(first); i++ {
			a, b := first[i-1], first[i]
			if b.TP < a.TP || (b.TP == a.TP && b.PP < a.PP) {
				t.Fatalf("EnumerateStrategies(%d)[%d..%d] out of (TP, PP) order: %v then %v", devices, i-1, i, a, b)
			}
		}
		// Every strategy covers exactly the device count; duplicates would
		// make the sweep evaluate a point twice.
		seen := map[adapipe.Strategy]bool{}
		for _, s := range first {
			if s.TP*s.PP*s.DP != devices {
				t.Fatalf("strategy %v does not cover %d devices", s, devices)
			}
			if seen[s] {
				t.Fatalf("duplicate strategy %v for %d devices", s, devices)
			}
			seen[s] = true
		}
	}
}
