package adapipe_test

import (
	"encoding/json"
	"strings"
	"testing"

	"adapipe"
)

func TestPlanAdaPipeQuickstart(t *testing.T) {
	plan, err := adapipe.PlanAdaPipe(
		adapipe.GPT3(),
		adapipe.ClusterA(),
		adapipe.Strategy{TP: 8, PP: 8, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 8 {
		t.Fatalf("%d stages", len(plan.Stages))
	}
	res, err := adapipe.Simulate(plan, adapipe.Sched1F1B, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.IterTime <= 0 {
		t.Error("zero iteration time")
	}
	if res.MaxPeakMem() > adapipe.ClusterA().Device.MemCapacity {
		t.Error("plan exceeds capacity")
	}
	desc := adapipe.Describe(plan)
	for _, want := range []string{"GPT-3 175B", "stage", "GiB", "(8, 8, 1)"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestSimulateAllSchedules(t *testing.T) {
	plan, err := adapipe.PlanAdaPipe(
		adapipe.TinyModel(8),
		adapipe.ClusterA(),
		adapipe.Strategy{TP: 1, PP: 4, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 16, MicroBatch: 1, SeqLen: 1024},
	)
	if err != nil {
		t.Fatal(err)
	}
	times := map[adapipe.ScheduleKind]float64{}
	for _, kind := range []adapipe.ScheduleKind{adapipe.Sched1F1B, adapipe.SchedGPipe, adapipe.SchedChimera, adapipe.SchedChimeraD} {
		res, err := adapipe.Simulate(plan, kind, true)
		if err != nil {
			t.Fatalf("kind %d: %v", int(kind), err)
		}
		times[kind] = res.IterTime
		if g := adapipe.Gantt(res, 4, 60); !strings.Contains(g, "dev  0") {
			t.Error("gantt malformed")
		}
		data, err := adapipe.ChromeTrace(res)
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Error("chrome trace is not valid JSON")
		}
	}
	if times[adapipe.SchedChimera] <= times[adapipe.Sched1F1B] {
		t.Error("Chimera should lose to 1F1B at n >> p")
	}
}

func TestBestAndMethods(t *testing.T) {
	if len(adapipe.Methods()) != 8 {
		t.Fatal("want 8 methods")
	}
	m, err := adapipe.MethodByName("AdaPipe")
	if err != nil {
		t.Fatal(err)
	}
	cl := adapipe.ClusterA()
	cl.Nodes = 1
	best, all := adapipe.Best(m, adapipe.TinyModel(8), cl, 8,
		adapipe.TrainingConfig{GlobalBatch: 16, MicroBatch: 1, SeqLen: 1024}, adapipe.DefaultOptions())
	if !best.Feasible() {
		t.Fatal("no feasible strategy")
	}
	if len(all) == 0 {
		t.Fatal("no strategies evaluated")
	}
	if len(adapipe.EnumerateStrategies(8)) == 0 {
		t.Fatal("no strategies enumerated")
	}
}

func TestTrainFacade(t *testing.T) {
	res, err := adapipe.Train(adapipe.TrainRunConfig{
		Net:    adapipe.TrainConfig{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 1},
		Bounds: []int{0, 3, 6},
		Saves: [][]adapipe.SaveSpec{
			{adapipe.SaveNone(), adapipe.SaveNone()},
			{adapipe.SaveAll(), adapipe.SaveAll()},
		},
		Steps: 3, MicroBatches: 4, LR: 1e-3, DataSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 3 {
		t.Fatalf("%d losses", len(res.Losses))
	}
}

func TestTrainSpecFromPlan(t *testing.T) {
	m := adapipe.TinyModel(4)
	plan, err := adapipe.PlanAdaPipe(m, adapipe.ClusterA(),
		adapipe.Strategy{TP: 1, PP: 2, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 8, MicroBatch: 1, SeqLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	bounds, saves := adapipe.TrainSpecFromPlan(plan, m)
	if len(bounds) != 3 {
		t.Fatalf("bounds %v", bounds)
	}
	if bounds[0] != 0 || bounds[2] != len(m.LayerSequence()) {
		t.Errorf("bounds %v do not span the sequence", bounds)
	}
	if len(saves) != 2 {
		t.Fatalf("%d save stages", len(saves))
	}
}

func TestEvaluateOOM(t *testing.T) {
	m, _ := adapipe.MethodByName("DAPPLE-Non")
	o := adapipe.Evaluate(m, adapipe.GPT3(), adapipe.ClusterA(),
		adapipe.Strategy{TP: 8, PP: 8, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384},
		adapipe.DefaultOptions())
	if !o.OOM {
		t.Error("expected OOM")
	}
}

func TestDescribeSaves(t *testing.T) {
	plan, err := adapipe.PlanAdaPipe(adapipe.TinyModel(4), adapipe.ClusterA(),
		adapipe.Strategy{TP: 1, PP: 2, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 8, MicroBatch: 1, SeqLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	out := adapipe.DescribeSaves(plan)
	for _, want := range []string{"Attention/QProj", "FFN/FFNUp", "unit"} {
		if !strings.Contains(out, want) {
			t.Errorf("DescribeSaves missing %q:\n%s", want, out)
		}
	}
}

func TestTrainDataParallelFacade(t *testing.T) {
	rc := adapipe.TrainRunConfig{
		Net:    adapipe.TrainConfig{Layers: 1, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 1},
		Bounds: []int{0, 4},
		Steps:  2, MicroBatches: 4, LR: 1e-3, DataSeed: 1,
	}
	res, err := adapipe.TrainDataParallel(2, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 2 {
		t.Fatalf("%d losses", len(res.Losses))
	}
}

func TestMemoryCSVFacade(t *testing.T) {
	plan, err := adapipe.PlanAdaPipe(adapipe.TinyModel(4), adapipe.ClusterA(),
		adapipe.Strategy{TP: 1, PP: 2, DP: 1},
		adapipe.TrainingConfig{GlobalBatch: 8, MicroBatch: 1, SeqLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	res, err := adapipe.SimulateWithOptions(plan, adapipe.Sched1F1B, adapipe.SimOptions{Memory: true})
	if err != nil {
		t.Fatal(err)
	}
	csv := adapipe.MemoryCSV(res)
	if !strings.HasPrefix(csv, "device,time_sec,bytes\n") {
		t.Errorf("csv header wrong: %q", csv[:40])
	}
	if len(res.MemTimeline) != 2 {
		t.Errorf("%d curves", len(res.MemTimeline))
	}
}
