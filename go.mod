module adapipe

go 1.22
