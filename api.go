package adapipe

import (
	"fmt"
	"sort"
	"strings"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
	"adapipe/internal/schedule"
	"adapipe/internal/sim"
	"adapipe/internal/trace"
)

// Re-exported types: the public API is a façade over the internal packages,
// so downstream users never import adapipe/internal/... directly.
type (
	// Model describes a transformer architecture (layers, widths,
	// computation units).
	Model = model.Config
	// Layer is one element of the partitionable layer sequence.
	Layer = model.Layer
	// Device is an accelerator's analytical performance model.
	Device = hardware.Device
	// Cluster is a homogeneous accelerator cluster.
	Cluster = hardware.Cluster
	// Strategy is a 3D parallelism configuration (TP, PP, DP).
	Strategy = parallel.Strategy
	// TrainingConfig carries global batch, micro-batch and sequence length.
	TrainingConfig = parallel.Config
	// Options tunes the planner.
	Options = core.Options
	// Plan is a complete AdaPipe execution plan.
	Plan = core.Plan
	// StagePlan is one pipeline stage of a Plan.
	StagePlan = core.StagePlan
	// Planner runs the two-level dynamic-programming search.
	Planner = core.Planner
	// Method is one evaluation configuration (e.g. "DAPPLE-Full").
	Method = baseline.Method
	// Outcome is one evaluated (method, strategy) point.
	Outcome = baseline.Outcome
	// SimResult is a simulated training iteration.
	SimResult = sim.Result
)

// Planner option modes, re-exported from the core package.
const (
	// RecomputeAdaptive searches per-stage save sets (AdaPipe).
	RecomputeAdaptive = core.RecomputeAdaptive
	// RecomputeFull always recomputes decoder layers (the -Full baselines).
	RecomputeFull = core.RecomputeFull
	// RecomputeNone saves every intermediate (the -Non baselines).
	RecomputeNone = core.RecomputeNone
	// RecomputeLayerLevel searches at whole-layer granularity (the coarse
	// policy of prior work, an ablation).
	RecomputeLayerLevel = core.RecomputeLayerLevel
	// PartitionAdaptive runs Algorithm 1 (AdaPipe).
	PartitionAdaptive = core.PartitionAdaptive
	// PartitionEven splits layers uniformly (baselines, Even Partitioning).
	PartitionEven = core.PartitionEven
	// PartitionExact runs the globally optimal Pareto-frontier DP (an
	// extension validating Algorithm 1's near-optimality).
	PartitionExact = core.PartitionExact
)

// GPT3 returns the GPT-3 175B architecture evaluated in the paper.
func GPT3() Model { return model.GPT3_175B() }

// Llama2 returns the Llama 2 70B architecture evaluated in the paper.
func Llama2() Model { return model.Llama2_70B() }

// TinyModel returns a small architecture for tests and examples.
func TinyModel(decoderLayers int) Model { return model.Tiny(decoderLayers) }

// ClusterA returns the 64-GPU NVIDIA A100 cluster model (§7.1).
func ClusterA() Cluster { return hardware.ClusterA() }

// ClusterB returns the 256-NPU Ascend 910 cluster model (§7.1).
func ClusterB() Cluster { return hardware.ClusterB() }

// ClusterBLarge returns cluster B scaled to 2048 NPUs (Figure 7).
func ClusterBLarge() Cluster { return hardware.ClusterBLarge() }

// DefaultOptions returns the planner configuration used in the evaluation:
// AdaPipe modes (adaptive recomputation and partitioning), the paper's
// conservative memory reserve, and the Megatron-style precision regime.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewPlanner validates the inputs, profiles the model analytically and
// returns a Planner for the given cluster, 3D strategy and training config.
//
// Deprecated: build a PlanRequest and call NewPlannerFromRequest (or
// PlanContext) instead — the request path is versioned, validated and
// hashable, and is the single construction path the CLI, benchmarks and the
// adapiped daemon share. The adapipevet depapi analyzer flags in-repo calls;
// configurations the request schema cannot express (synthetic test clusters)
// may keep using this wrapper under a reasoned //adapipevet:ignore directive.
func NewPlanner(m Model, c Cluster, s Strategy, t TrainingConfig, o Options) (*Planner, error) {
	return core.NewPlanner(m, c, s, t, o)
}

// PlanAdaPipe runs the full AdaPipe search (adaptive recomputation +
// adaptive partitioning) with default options on positional inputs. For
// cancellation, deadlines, a wire-friendly entry point, or shared cost-store
// reuse, build a PlanRequest and use PlanContext.
func PlanAdaPipe(m Model, c Cluster, s Strategy, t TrainingConfig) (*Plan, error) {
	pl, err := core.NewPlanner(m, c, s, t, DefaultOptions())
	if err != nil {
		return nil, err
	}
	return pl.Plan()
}

// ScheduleKind selects a pipeline mechanism for Simulate.
type ScheduleKind = baseline.ScheduleKind

// Pipeline mechanisms accepted by Simulate.
const (
	// Sched1F1B is the DAPPLE one-forward-one-backward schedule.
	Sched1F1B = baseline.Sched1F1B
	// SchedGPipe is the GPipe schedule.
	SchedGPipe = baseline.SchedGPipe
	// SchedChimera is the bidirectional Chimera schedule.
	SchedChimera = baseline.SchedChimera
	// SchedChimeraD is Chimera with forward doubling.
	SchedChimeraD = baseline.SchedChimeraD
)

// SimOptions selects optional simulator captures.
type SimOptions struct {
	// Timeline records per-op events for Gantt/Chrome-trace rendering.
	Timeline bool
	// Memory records per-device live-memory curves (exportable via
	// MemoryCSV).
	Memory bool
}

// Simulate executes a plan on the discrete-event pipeline simulator and
// returns iteration time, per-device peak memory, bubbles and (when capture
// is requested) a timeline.
func Simulate(p *Plan, kind ScheduleKind, captureTimeline bool) (SimResult, error) {
	return SimulateWithOptions(p, kind, SimOptions{Timeline: captureTimeline})
}

// SimulateWithOptions is Simulate with full capture control.
func SimulateWithOptions(p *Plan, kind ScheduleKind, opts SimOptions) (SimResult, error) {
	var sched *schedule.Schedule
	var err error
	switch kind {
	case Sched1F1B:
		sched, err = schedule.OneFOneB(p.Strategy.PP, p.MicroBatches)
	case SchedGPipe:
		sched, err = schedule.GPipe(p.Strategy.PP, p.MicroBatches)
	case SchedChimera:
		sched, err = schedule.Chimera(p.Strategy.PP, p.MicroBatches)
	case SchedChimeraD:
		sched, err = schedule.ChimeraD(p.Strategy.PP, p.MicroBatches)
	default:
		return SimResult{}, fmt.Errorf("adapipe: unknown schedule kind %d", int(kind))
	}
	if err != nil {
		return SimResult{}, err
	}
	return sim.Run(sim.Input{
		Sched:           sched,
		Stages:          baseline.StageCosts(p),
		CaptureTimeline: opts.Timeline,
		CaptureMemory:   opts.Memory,
	})
}

// Gantt renders a captured simulation timeline as an ASCII chart.
func Gantt(res SimResult, devices, width int) string { return trace.Gantt(res, devices, width) }

// ChromeTrace serializes a captured timeline in the Chrome trace-event
// format for chrome://tracing / Perfetto.
func ChromeTrace(res SimResult) ([]byte, error) { return trace.ChromeTrace(res) }

// MemoryCSV renders captured per-device memory curves as CSV
// (device,time_sec,bytes).
func MemoryCSV(res SimResult) string { return trace.MemoryCSV(res) }

// Methods returns the paper's eight evaluation methods in legend order.
func Methods() []Method { return baseline.Methods() }

// MethodByName returns a method by its figure label, e.g. "DAPPLE-Full".
func MethodByName(name string) (Method, error) { return baseline.MethodByName(name) }

// Evaluate plans, schedules and simulates one method under one strategy.
func Evaluate(m Method, cfg Model, c Cluster, s Strategy, t TrainingConfig, o Options) Outcome {
	return baseline.Evaluate(m, cfg, c, s, t, o)
}

// Best sweeps all valid 3D strategies for a device count and returns the
// fastest feasible outcome (the paper's cluster-A methodology) plus every
// evaluated point.
func Best(m Method, cfg Model, c Cluster, devices int, t TrainingConfig, o Options) (Outcome, []Outcome) {
	return baseline.Best(m, cfg, c, devices, t, o)
}

// EnumerateStrategies lists the candidate (TP, PP, DP) strategies for a
// device count under the paper's constraints (TP ≤ 8, PP ≥ 2, powers of two).
func EnumerateStrategies(devices int) []Strategy {
	return parallel.Enumerate(devices, parallel.DefaultConstraint())
}

// Describe renders a plan as a human-readable per-stage table: layer range,
// saved units, modeled times and memory.
func Describe(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  strategy %s  seq %d  micro-batches %d  (recompute=%s, partition=%s)\n",
		p.Model, p.Strategy, p.SeqLen, p.MicroBatches, p.Recompute, p.Partition)
	fmt.Fprintf(&b, "modeled iteration %.3fs (warmup %.3fs, steady bottleneck %.4fs/micro, ending %.3fs)\n",
		p.Total, p.W, p.M, p.E)
	if p.Search.CostEvaluations > 0 {
		fmt.Fprintf(&b, "search: %s\n", p.Search)
	}
	fmt.Fprintf(&b, "%-6s %-12s %-12s %-10s %-10s %-12s %-12s\n",
		"stage", "layers", "saved units", "fwd (s)", "bwd (s)", "static", "peak")
	for _, s := range p.Stages {
		fmt.Fprintf(&b, "%-6d [%3d,%3d)   %4d/%-4d    %-10.4f %-10.4f %9.1f GiB %9.1f GiB\n",
			s.Stage, s.LayerLo, s.LayerHi, s.Recompute.SavedUnits, s.Recompute.TotalUnits,
			s.Fwd, s.Bwd, gib(s.Mem.Static()), gib(s.Mem.Total()))
	}
	return b.String()
}

// DescribeSaves renders a plan's per-stage save sets by unit kind — the
// Table 4 view at full resolution.
func DescribeSaves(p *Plan) string {
	// Collect every unit key present.
	keySet := map[string]bool{}
	for _, s := range p.Stages {
		for k := range s.Recompute.Saved {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "unit \\ stage")
	for _, s := range p.Stages {
		fmt.Fprintf(&b, " %4d", s.Stage)
	}
	b.WriteString("\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%-28s", k)
		for _, s := range p.Stages {
			fmt.Fprintf(&b, " %4d", s.Recompute.Saved[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func gib(b int64) float64 { return float64(b) / float64(1<<30) }
