package adapipe

import (
	"context"

	"adapipe/internal/baseline"
	"adapipe/internal/request"
)

// Versioned request API: every entry point — the adapipe CLI, the planbench
// harness and the adapiped daemon — constructs planners from one PlanRequest
// schema, so the flag surface and the HTTP surface cannot drift. Requests have
// a canonical (sorted-key, deterministic) JSON encoding and a SHA-256 content
// hash over it, which is the identity the daemon's plan cache keys on.
type (
	// PlanRequest is one plan-search request (schema version RequestVersion).
	PlanRequest = request.PlanRequest
	// PlanResponse is the versioned reply to a plan request; its Plan field
	// embeds the plan's deterministic JSON verbatim.
	PlanResponse = request.PlanResponse
	// SimulateResponse is the versioned reply to a simulate request.
	SimulateResponse = request.SimulateResponse
	// ReplanRequest is one straggler-driven replanning request: a plan
	// request identifying the search space plus the observed per-stage
	// compute-cost multipliers.
	ReplanRequest = request.ReplanRequest
	// ReplanResponse is the versioned reply to a replan request; its Plan
	// field embeds the plan to run next, and Incremental reports whether the
	// re-search warm-started from the previous search's partition-DP memo.
	ReplanResponse = request.ReplanResponse
	// SweepRequest is one grid-sweep request: a base PlanRequest plus the
	// axes to vary. The server expands the grid (bounded by MaxSweepPoints),
	// plans every point against the shared cost store, and ranks the results.
	SweepRequest = request.SweepRequest
	// SweepAxes lists the per-field value lists a sweep varies.
	SweepAxes = request.SweepAxes
	// SweepResponse is the versioned reply to a sweep request.
	SweepResponse = request.SweepResponse
	// SweepPointResult is one expanded grid point's outcome within a sweep.
	SweepPointResult = request.SweepPointResult
	// SweepStats summarizes how a sweep's points were satisfied (planned,
	// cached, deduplicated, failed).
	SweepStats = request.SweepStats
	// ErrorInfo is the machine-readable error payload every /v1 endpoint
	// returns on failure: a stable code, a human message and the HTTP status.
	ErrorInfo = request.ErrorInfo
	// ErrorResponse is the canonical failure envelope {"error": {...}}.
	ErrorResponse = request.ErrorResponse
)

// RequestVersion is the current request/response schema version.
const RequestVersion = request.Version

// MaxSweepPoints bounds the server-side grid expansion of one sweep request.
const MaxSweepPoints = request.MaxSweepPoints

// ParsePlanRequest decodes and validates a request from JSON: unknown fields
// and trailing data are rejected, defaults are applied, and the result is
// normalized (two requests that normalize equal are the same search).
func ParsePlanRequest(data []byte) (PlanRequest, error) { return request.ParsePlanRequest(data) }

// ParsePlanResponse decodes a plan response, checking the schema version.
func ParsePlanResponse(data []byte) (PlanResponse, error) { return request.ParsePlanResponse(data) }

// ParseReplanRequest decodes and validates a replan request from JSON with
// the same strictness as ParsePlanRequest.
func ParseReplanRequest(data []byte) (ReplanRequest, error) { return request.ParseReplanRequest(data) }

// ParseReplanResponse decodes a replan response, checking the schema version.
func ParseReplanResponse(data []byte) (ReplanResponse, error) {
	return request.ParseReplanResponse(data)
}

// ParseSweepRequest decodes and validates a sweep request from JSON with the
// same strictness as ParsePlanRequest; the base request and every axis value
// are validated before any planning starts.
func ParseSweepRequest(data []byte) (SweepRequest, error) { return request.ParseSweepRequest(data) }

// ParseSweepResponse decodes a sweep response, checking the schema version.
func ParseSweepResponse(data []byte) (SweepResponse, error) {
	return request.ParseSweepResponse(data)
}

// ParseErrorResponse decodes the canonical {"error": {...}} failure envelope
// that every /v1 endpoint returns on non-2xx statuses.
func ParseErrorResponse(data []byte) (ErrorResponse, error) {
	return request.ParseErrorResponse(data)
}

// NewPlannerFromRequest constructs the planner a request describes. workers
// sizes the search worker pool; it is an execution knob, deliberately outside
// the request schema and its hash, because plans are byte-identical for every
// worker count.
func NewPlannerFromRequest(r PlanRequest, workers int) (*Planner, error) {
	return r.NewPlanner(workers)
}

// PlanContext runs the request's search under ctx. Cancellation and deadlines
// propagate into the parallel search: the planner stops dispatching work
// promptly and returns ctx.Err() instead of a stale plan.
func PlanContext(ctx context.Context, r PlanRequest, workers int) (*Plan, error) {
	pl, err := r.NewPlanner(workers)
	if err != nil {
		return nil, err
	}
	return pl.PlanContext(ctx)
}

// SimulateContext plans the request and simulates it under its method's
// pipeline schedule, with ctx threaded through the search. The returned error
// reports an invalid request; search and simulation failures (including
// cancellation) are reported in Outcome.Err, matching Evaluate.
func SimulateContext(ctx context.Context, r PlanRequest, workers int) (Outcome, error) {
	n, err := r.Normalize()
	if err != nil {
		return Outcome{}, err
	}
	m, err := n.MethodConfig()
	if err != nil {
		return Outcome{}, err
	}
	cfg, err := n.ModelConfig()
	if err != nil {
		return Outcome{}, err
	}
	cl, err := n.ClusterConfig()
	if err != nil {
		return Outcome{}, err
	}
	opts, err := n.Options(workers)
	if err != nil {
		return Outcome{}, err
	}
	return baseline.EvaluateContext(ctx, m, cfg, cl, n.Strategy(), n.TrainingConfig(), opts), nil
}
