// Package coststore is the shared, content-addressed stage-cost store behind
// fleet-scale serving: one Store holds the solved per-(stage, iso-class)
// knapsack entries of every planner a daemon constructs, so near-duplicate
// requests — the same model family swept over cluster shapes, micro-batch
// counts or memory budgets — pay for each knapsack exactly once across the
// whole process instead of once per planner.
//
// Entries are addressed by a 32-byte SHA-256 key the planner derives from the
// full content of the solve: the synthesized cost profile (unit times, saved
// bytes, boundary payload), the 3D strategy, the memory model and budget, the
// quantum and search flags, and the (stage, iso-class) range — see
// core.CostSource. Two planners whose keys collide are, by construction,
// asking for the same pure function of the same inputs, which is what makes
// sharing sound: a stored entry is byte-for-byte the entry the consumer would
// have solved itself, so plans built from store hits are identical to plans
// built cold (proved end to end by TestCostStorePlanMatchesSeed).
//
// The store is sharded 16 ways (key byte 0 selects the shard) so concurrent
// prefill workers from many planners do not serialize on one mutex. Each
// shard bounds its memory with an LRU list and runs singleflight on misses:
// when N planners ask for one missing key at once, one computes and N-1 wait
// and share, which is the §5.3 iso-class amortization lifted from "within one
// search" to "across all requests of the process".
//
// A store can persist itself: SaveSnapshot writes a deterministic,
// version-stamped, checksummed JSON snapshot (sorted by key, so two saves of
// one population are byte-identical) and LoadSnapshot restores it, giving a
// restarted daemon a warm substrate (cmd/adapiped -cost-store-path).
package coststore

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"adapipe/internal/memory"
	"adapipe/internal/recompute"
)

// Key is the 32-byte content address of one cost entry (a SHA-256 over the
// canonical solve inputs; the planner computes it, the store never inspects
// it beyond shard selection).
type Key [32]byte

// String returns the lowercase-hex form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the lowercase-hex form produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("coststore: invalid key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// Entry is one solved stage cost in its shareable form: the modeled forward
// and backward times, the chosen recomputation solution, the memory breakdown
// and the feasibility verdict — exactly the fields the planner caches
// per iso-class. Entries are immutable once stored; consumers must not
// mutate the Solution's Saved map.
type Entry struct {
	// Fwd and Bwd are the modeled per-micro-batch stage times in seconds
	// (Bwd includes the recomputation overhead of the chosen strategy).
	Fwd, Bwd float64
	// Sol is the chosen save/recompute strategy.
	Sol recompute.Solution
	// Mem is the modeled peak memory.
	Mem memory.Breakdown
	// OK reports memory feasibility.
	OK bool
}

// Disposition classifies how GetOrCompute satisfied a lookup.
type Disposition int

const (
	// Computed means the caller ran the solve itself (a cold miss).
	Computed Disposition = iota
	// Hit means the entry was already stored.
	Hit
	// Shared means the caller waited on another caller's in-flight solve
	// for the same key (singleflight).
	Shared
)

// String returns the disposition name.
func (d Disposition) String() string {
	switch d {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Hits counts lookups served by a stored entry, and Shared the lookups
	// that piggybacked on another caller's in-flight solve; both are
	// knapsack runs the store saved. Misses counts the solves that actually
	// ran (the cold path).
	Hits, Misses, Shared int64
	// Evictions counts entries the per-shard LRU bound pushed out.
	Evictions int64
	// Entries is the current population across all shards.
	Entries int64
}

// HitRate returns the fraction of lookups the store answered without a fresh
// solve (hits + shared over all lookups), in [0, 1].
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Shared + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// numShards is the fixed shard count; key byte 0 (uniform, it is SHA-256
// output) selects the shard, so one mutex never serializes all planners.
const numShards = 16

// Store is a concurrency-safe, sharded, LRU-bounded cost store. The zero
// value is not usable; construct with New.
type Store struct {
	shards   [numShards]shard
	perShard int

	hits, misses, shared, evictions atomic.Int64
}

// shard is one lock domain: an LRU-ordered map of entries plus the in-flight
// singleflight calls for missing keys.
type shard struct {
	mu sync.Mutex
	// ll orders stored entries, front = most recently used.
	// guarded by mu
	ll *list.List
	// items indexes ll's elements (*storedEntry values) by key.
	// guarded by mu
	items map[Key]*list.Element
	// calls holds the in-flight singleflight computation per missing key.
	// guarded by mu
	calls map[Key]*call
}

type storedEntry struct {
	key   Key
	entry Entry
}

// call is one in-flight computation: waiters block on done; ok is false when
// the leader's compute panicked, telling waiters to retry (and possibly lead).
type call struct {
	done  chan struct{}
	entry Entry
	ok    bool
}

// New builds a store bounding roughly max entries across all shards (each
// shard holds max/16, minimum 1). max <= 0 selects the default of 4096.
func New(max int) *Store {
	if max <= 0 {
		max = 4096
	}
	per := max / numShards
	if per < 1 {
		per = 1
	}
	st := &Store{perShard: per}
	for i := range st.shards {
		st.shards[i].ll = list.New()
		st.shards[i].items = make(map[Key]*list.Element)
		st.shards[i].calls = make(map[Key]*call)
	}
	return st
}

// GetOrCompute returns the entry for key, computing and storing it via
// compute when absent. Concurrent callers for one missing key run compute
// exactly once: the first caller leads, the rest block and share the result
// (Shared). compute must be a pure function of the key's content — the store
// hands its result to every waiter and to all future lookups verbatim.
//
// An abandoned compute (panic) stores nothing; waiters retry, so the store
// never holds partial entries — a property the cancellation-mid-sweep tests
// rely on (an aborted request leaves the store clean or fully correct, never
// poisoned).
func (st *Store) GetOrCompute(key Key, compute func() Entry) (Entry, Disposition) {
	sh := &st.shards[key[0]%numShards]
	for {
		sh.mu.Lock()
		if el, ok := sh.items[key]; ok {
			sh.ll.MoveToFront(el)
			e := el.Value.(*storedEntry).entry
			sh.mu.Unlock()
			st.hits.Add(1)
			return e, Hit
		}
		if c, ok := sh.calls[key]; ok {
			sh.mu.Unlock()
			<-c.done
			if c.ok {
				st.shared.Add(1)
				return c.entry, Shared
			}
			// The leader abandoned the solve; go around and try again
			// (possibly becoming the new leader).
			continue
		}
		c := &call{done: make(chan struct{})}
		sh.calls[key] = c
		sh.mu.Unlock()
		st.misses.Add(1)
		st.lead(sh, key, c, compute)
		return c.entry, Computed
	}
}

// lead runs the singleflight leader's compute. The deferred cleanup runs even
// when compute panics: the call is deregistered and done is closed so waiters
// never hang, and only a completed solve is stored.
func (st *Store) lead(sh *shard, key Key, c *call, compute func() Entry) {
	defer func() {
		sh.mu.Lock()
		delete(sh.calls, key)
		if c.ok {
			st.insertLocked(sh, key, c.entry)
		}
		sh.mu.Unlock()
		close(c.done)
	}()
	c.entry = compute()
	c.ok = true
}

// insertLocked stores an entry and enforces the shard's LRU bound. The
// caller holds sh.mu. First write wins: a racing duplicate insert (possible
// after a snapshot load) only refreshes recency.
func (st *Store) insertLocked(sh *shard, key Key, e Entry) {
	if el, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(el)
		return
	}
	sh.items[key] = sh.ll.PushFront(&storedEntry{key: key, entry: e})
	for sh.ll.Len() > st.perShard {
		tail := sh.ll.Back()
		sh.ll.Remove(tail)
		delete(sh.items, tail.Value.(*storedEntry).key)
		st.evictions.Add(1)
	}
}

// Len returns the current entry count across all shards.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// StatsSnapshot returns a consistent-enough snapshot of the counters (each
// counter is read atomically; the set is not a single atomic cut, which is
// fine for monitoring).
func (st *Store) StatsSnapshot() Stats {
	return Stats{
		Hits:      st.hits.Load(),
		Misses:    st.misses.Load(),
		Shared:    st.shared.Load(),
		Evictions: st.evictions.Load(),
		Entries:   int64(st.Len()),
	}
}
