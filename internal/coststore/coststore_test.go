package coststore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"adapipe/internal/recompute"
)

func testKey(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[31] = 0xAB
	return k
}

func testEntry(i int) Entry {
	return Entry{
		Fwd: float64(i) * 1.5,
		Bwd: float64(i) * 3.25,
		Sol: recompute.Solution{Feasible: true, SavedTime: float64(i), SavedBytes: int64(i), Saved: map[string]int{"attn": i}},
		OK:  i%2 == 0,
	}
}

func TestGetOrComputeComputesOnce(t *testing.T) {
	st := New(64)
	k := testKey(1)
	calls := 0
	e, disp := st.GetOrCompute(k, func() Entry { calls++; return testEntry(1) })
	if disp != Computed || calls != 1 {
		t.Fatalf("first lookup: disposition %v, %d compute calls; want computed once", disp, calls)
	}
	if e.Fwd != 1.5 || e.Bwd != 3.25 {
		t.Fatalf("entry round-trip: got %+v", e)
	}
	e2, disp2 := st.GetOrCompute(k, func() Entry { calls++; return testEntry(99) })
	if disp2 != Hit || calls != 1 {
		t.Fatalf("second lookup: disposition %v, %d compute calls; want hit without recompute", disp2, calls)
	}
	if e2.Fwd != e.Fwd || e2.Sol.Saved["attn"] != 1 {
		t.Fatalf("hit returned a different entry: %+v", e2)
	}
	if got := st.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// 16 entries total = 1 per shard; two same-shard keys evict the older.
	st := New(16)
	a, b := testKey(0x10), testKey(0x20)
	a[0], b[0] = 3, 3 // same shard
	b[1] = 99         // different key
	st.GetOrCompute(a, func() Entry { return testEntry(1) })
	st.GetOrCompute(b, func() Entry { return testEntry(2) })
	if got := st.Len(); got != 1 {
		t.Fatalf("Len = %d after overflow, want 1", got)
	}
	if s := st.StatsSnapshot(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// a was evicted: looking it up computes again.
	if _, disp := st.GetOrCompute(a, func() Entry { return testEntry(1) }); disp != Computed {
		t.Fatalf("evicted key came back as %v, want computed", disp)
	}
}

func TestSingleflightSharesOneCompute(t *testing.T) {
	st := New(1024)
	k := testKey(7)
	var computes atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	dispositions := make([]Disposition, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			_, d := st.GetOrCompute(k, func() Entry {
				computes.Add(1)
				return testEntry(7)
			})
			dispositions[i] = d
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times under contention, want exactly 1", got)
	}
	var computed, shared, hit int
	for _, d := range dispositions {
		switch d {
		case Computed:
			computed++
		case Shared:
			shared++
		case Hit:
			hit++
		}
	}
	if computed != 1 {
		t.Fatalf("%d leaders, want 1 (shared %d, hit %d)", computed, shared, hit)
	}
	s := st.StatsSnapshot()
	if s.Misses != 1 || s.Hits+s.Shared != waiters-1 {
		t.Fatalf("stats %+v inconsistent with %d lookups", s, waiters)
	}
}

func TestAbandonedComputeRetries(t *testing.T) {
	st := New(64)
	k := testKey(3)
	func() {
		defer func() { recover() }()
		st.GetOrCompute(k, func() Entry { panic("solver died") })
	}()
	if got := st.Len(); got != 0 {
		t.Fatalf("store holds %d entries after a panicked compute, want 0 (complete-or-absent)", got)
	}
	e, disp := st.GetOrCompute(k, func() Entry { return testEntry(3) })
	if disp != Computed || e.Fwd != testEntry(3).Fwd {
		t.Fatalf("retry after abandoned compute: disposition %v entry %+v", disp, e)
	}
}

func TestStatsHitRate(t *testing.T) {
	st := New(64)
	for i := 0; i < 4; i++ {
		st.GetOrCompute(testKey(i), func() Entry { return testEntry(i) })
	}
	for i := 0; i < 4; i++ {
		st.GetOrCompute(testKey(i), func() Entry { t.Fatal("recompute on hit"); return Entry{} })
	}
	s := st.StatsSnapshot()
	if s.Hits != 4 || s.Misses != 4 || s.Entries != 4 {
		t.Fatalf("stats %+v, want 4 hits, 4 misses, 4 entries", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", got)
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	k := testKey(0x1234)
	parsed, err := ParseKey(k.String())
	if err != nil || parsed != k {
		t.Fatalf("round trip: %v, %v", parsed, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Fatal("ParseKey accepted a short key")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	st := New(1024)
	for i := 0; i < 20; i++ {
		st.GetOrCompute(testKey(i), func() Entry { return testEntry(i) })
	}
	if err := st.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	fresh := New(1024)
	if err := fresh.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != st.Len() {
		t.Fatalf("restored %d entries, saved %d", fresh.Len(), st.Len())
	}
	for i := 0; i < 20; i++ {
		e, disp := fresh.GetOrCompute(testKey(i), func() Entry {
			t.Fatalf("restored store recomputed key %d", i)
			return Entry{}
		})
		if disp != Hit {
			t.Fatalf("key %d: disposition %v, want hit", i, disp)
		}
		want := testEntry(i)
		if e.Fwd != want.Fwd || e.Bwd != want.Bwd || e.OK != want.OK || e.Sol.Saved["attn"] != i {
			t.Fatalf("key %d: restored entry %+v differs from saved %+v", i, e, want)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	st := New(1024)
	for i := 0; i < 10; i++ {
		st.GetOrCompute(testKey(i), func() Entry { return testEntry(i) })
	}
	if err := st.SaveSnapshot(p1); err != nil {
		t.Fatal(err)
	}
	// Perturb recency, then save again: recency must not leak into the bytes.
	st.GetOrCompute(testKey(3), func() Entry { return testEntry(3) })
	if err := st.SaveSnapshot(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("two saves of one population differ byte-for-byte")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := New(16).SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	fresh := New(16)
	if err := fresh.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 0 {
		t.Fatalf("restored empty snapshot has %d entries", fresh.Len())
	}
}

func TestSnapshotRejectsCorruptionAndVersionSkew(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	st := New(64)
	st.GetOrCompute(testKey(1), func() Entry { return testEntry(1) })
	if err := st.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: checksum must catch it.
	corrupt := strings.Replace(string(data), `"Fwd":1.5`, `"Fwd":9.5`, 1)
	if corrupt == string(data) {
		t.Fatal("test setup: payload substring not found")
	}
	cp := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(cp, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(64).LoadSnapshot(cp); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt snapshot loaded: %v", err)
	}

	// Version skew must be rejected before any decoding.
	skew := strings.Replace(string(data), fmt.Sprintf(`"version":%d`, SnapshotVersion), `"version":999`, 1)
	vp := filepath.Join(dir, "skew.json")
	if err := os.WriteFile(vp, []byte(skew), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(64).LoadSnapshot(vp); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skewed snapshot loaded: %v", err)
	}

	// A missing file surfaces as os.IsNotExist so daemons can start cold.
	if err := New(64).LoadSnapshot(filepath.Join(dir, "nope.json")); !os.IsNotExist(err) {
		t.Fatalf("missing snapshot: err = %v, want IsNotExist", err)
	}
}
