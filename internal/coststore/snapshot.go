package coststore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SnapshotVersion stamps the on-disk snapshot format. Loaders reject
// versions they do not understand instead of guessing.
const SnapshotVersion = 1

// snapshotFile is the on-disk container: a version stamp, the entry count,
// a SHA-256 checksum over the payload bytes, and the payload itself — the
// JSON array of entries sorted by key. The payload is embedded verbatim, so
// the checksum covers exactly the bytes that will be decoded.
type snapshotFile struct {
	Version  int             `json:"version"`
	Count    int             `json:"count"`
	Checksum string          `json:"checksum"`
	Entries  json.RawMessage `json:"entries"`
}

// snapshotEntry is one serialized entry. Float64 fields round-trip exactly
// through encoding/json (Go emits the shortest representation that parses
// back to the same bits), and the Solution's Saved map marshals with sorted
// keys — so the whole snapshot is deterministic: saving one population twice
// yields byte-identical files (TestSnapshotDeterministic).
type snapshotEntry struct {
	Key   string `json:"key"`
	Entry Entry  `json:"entry"`
}

// SaveSnapshot writes the store's current population to path, atomically
// (temp file + rename) so a crash mid-save never leaves a torn snapshot. The
// encoding is deterministic for a given population: entries sorted by key,
// version-stamped and checksummed.
func (st *Store) SaveSnapshot(path string) error {
	var entries []snapshotEntry
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			se := el.Value.(*storedEntry)
			entries = append(entries, snapshotEntry{Key: se.key.String(), Entry: se.entry})
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	if entries == nil {
		entries = []snapshotEntry{} // marshal an empty store as [], not null
	}
	payload, err := json.Marshal(entries)
	if err != nil {
		return fmt.Errorf("coststore: encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(snapshotFile{
		Version:  SnapshotVersion,
		Count:    len(entries),
		Checksum: hex.EncodeToString(sum[:]),
		Entries:  payload,
	})
	if err != nil {
		return fmt.Errorf("coststore: encoding snapshot: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".coststore-*")
	if err != nil {
		return fmt.Errorf("coststore: saving snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("coststore: saving snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("coststore: saving snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("coststore: saving snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot restores a snapshot previously written by SaveSnapshot into
// the store, verifying the version stamp and the payload checksum before
// decoding a single entry. Entries are inserted in key order; if the
// snapshot exceeds the store's bound, the LRU drops the earliest-inserted
// keys deterministically. Existing entries win over snapshot entries (first
// write wins, and both are the same pure function of the key anyway).
func (st *Store) LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("coststore: decoding snapshot %s: %w", path, err)
	}
	if f.Version != SnapshotVersion {
		return fmt.Errorf("coststore: snapshot %s has version %d (this build speaks %d)", path, f.Version, SnapshotVersion)
	}
	sum := sha256.Sum256(f.Entries)
	if hex.EncodeToString(sum[:]) != f.Checksum {
		return fmt.Errorf("coststore: snapshot %s is corrupt (checksum mismatch)", path)
	}
	var entries []snapshotEntry
	if err := json.Unmarshal(f.Entries, &entries); err != nil {
		return fmt.Errorf("coststore: decoding snapshot %s: %w", path, err)
	}
	if len(entries) != f.Count {
		return fmt.Errorf("coststore: snapshot %s carries %d entries, header says %d", path, len(entries), f.Count)
	}
	for _, se := range entries {
		key, err := ParseKey(se.Key)
		if err != nil {
			return fmt.Errorf("coststore: snapshot %s: %w", path, err)
		}
		sh := &st.shards[key[0]%numShards]
		sh.mu.Lock()
		st.insertLocked(sh, key, se.Entry)
		sh.mu.Unlock()
	}
	return nil
}
