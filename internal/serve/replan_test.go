package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"adapipe/internal/request"
)

func postReplan(t *testing.T, ts string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts+"/v1/replan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func replanBody(pp, gbs int, scale []float64) string {
	sc, _ := json.Marshal(scale)
	return fmt.Sprintf(`{"request":%s,"scale":%s}`, tinyBody(pp, gbs), sc)
}

// TestReplanEndpointWarmStartsAndMatchesOffline is the serving-layer half of
// the differential harness: two replans for one plan request must run cold
// then warm (the store keeps the planner), and each served plan must be
// byte-identical to what the offline path — one planner, cold Plan, the same
// ReplanWithScale sequence — produces. The daemon adds state management,
// never drift.
func TestReplanEndpointWarmStartsAndMatchesOffline(t *testing.T) {
	s, ts := testServer(t, Config{})
	scales := [][]float64{
		{1, 1.5, 1, 1},
		{1, 1.7, 1, 1},
	}

	// The offline mirror of what the server should compute.
	req, err := request.ParsePlanRequest([]byte(tinyBody(4, 8)))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := req.NewPlanner(0)
	if err != nil {
		t.Fatal(err)
	}
	incumbent, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}

	wantDisposition := []string{ReplanCold, ReplanWarm}
	for i, scale := range scales {
		resp := postReplan(t, ts.URL, replanBody(4, 8, scale))
		data := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replan %d: status %d: %s", i, resp.StatusCode, data)
		}
		if got := resp.Header.Get(headerReplan); got != wantDisposition[i] {
			t.Fatalf("replan %d disposition %q, want %q", i, got, wantDisposition[i])
		}
		rr, err := request.ParseReplanResponse(data)
		if err != nil {
			t.Fatalf("replan %d: %v", i, err)
		}
		// Even the seeding request's replan warm-starts: its own cold
		// search installed the memo the re-search reuses.
		if !rr.Incremental {
			t.Fatalf("replan %d did not take the incremental path: %+v", i, rr)
		}
		if rr.WarmStartCells == 0 {
			t.Errorf("replan %d reused no DP cells: %+v", i, rr)
		}

		rep, err := pl.ReplanWithScale(incumbent, scale)
		if err != nil {
			t.Fatal(err)
		}
		next := rep.Old
		if rep.Adopted {
			next = rep.New
			incumbent = rep.New
		}
		want, err := json.Marshal(next)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Adopted != rep.Adopted {
			t.Fatalf("replan %d adopted = %v, offline %v", i, rr.Adopted, rep.Adopted)
		}
		if !bytes.Equal([]byte(rr.Plan), want) {
			t.Fatalf("replan %d: served plan differs from offline replan:\n%s\nvs\n%s", i, rr.Plan, want)
		}
	}

	st := s.Stats()
	if st.ReplanRequests != 2 || st.ReplanCold != 1 || st.ReplanIncremental != 1 {
		t.Fatalf("replan counters: %+v", st)
	}
	if st.ReplanPlanners != 1 {
		t.Fatalf("planner store holds %d planners, want 1", st.ReplanPlanners)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	for _, want := range []string{
		"adapipe_serve_replan_requests_total 2",
		"adapipe_serve_replans_incremental_total 1",
		"adapipe_serve_replans_cold_total 1",
		"adapipe_serve_replan_planners 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestReplanPlannerStoreEviction: with a store bound of 1, replanning a
// second request evicts the first planner, so its next replan runs cold
// again (correct, just slower).
func TestReplanPlannerStoreEviction(t *testing.T) {
	_, ts := testServer(t, Config{PlannerStoreSize: 1})
	a := replanBody(2, 8, []float64{1.5, 1})
	b := replanBody(4, 8, []float64{1, 1.5, 1, 1})
	for i, c := range []struct {
		body, want string
	}{
		{a, ReplanCold},
		{b, ReplanCold}, // evicts a's planner
		{a, ReplanCold}, // a must re-seed
		{a, ReplanWarm}, // now warm again
	} {
		resp := postReplan(t, ts.URL, c.body)
		data := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", i, resp.StatusCode, data)
		}
		if got := resp.Header.Get(headerReplan); got != c.want {
			t.Fatalf("step %d disposition %q, want %q", i, got, c.want)
		}
	}
}

// TestReplanBadRequests: malformed replans are rejected before any search.
func TestReplanBadRequests(t *testing.T) {
	s, ts := testServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{replanBody(4, 8, []float64{1, 1}), http.StatusBadRequest},        // wrong scale length
		{replanBody(4, 8, []float64{1, -2, 1, 1}), http.StatusBadRequest}, // non-positive scale
		{`{"request":{"model":"tiny","tp":1,"pp":2,"dp":1,"seq_len":2048,"global_batch":8},"scale":[1,1],"junk":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postReplan(t, ts.URL, c.body)
		data := readBody(t, resp)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.body, resp.StatusCode, c.want, data)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/replan")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/replan: status %d, want 405", resp.StatusCode)
	}
	if s.Stats().Searches != 0 {
		t.Fatal("bad replans ran searches")
	}
}
