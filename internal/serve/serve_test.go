package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/request"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postPlan(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func tinyBody(pp, gbs int) string {
	return fmt.Sprintf(`{"model":"tiny","tp":1,"pp":%d,"dp":1,"seq_len":2048,"global_batch":%d}`, pp, gbs)
}

// offlinePlanBytes reproduces what `adapipe -o plan.json` writes for the same
// request: the plan of the request-driven planner, serialized.
func offlinePlanBytes(t *testing.T, reqJSON string) []byte {
	t.Helper()
	req, err := request.ParsePlanRequest([]byte(reqJSON))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := req.NewPlanner(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPlanRoundTripMatrix is the daemon round-trip proof: over a matrix of
// models, shapes and methods, the plan embedded in a /v1/plan response must
// be byte-identical to the plan the offline CLI path produces for the same
// config — serving adds caching, never drift.
func TestPlanRoundTripMatrix(t *testing.T) {
	_, ts := testServer(t, Config{})
	reqs := []string{
		tinyBody(2, 8),
		tinyBody(4, 8),
		`{"model":"tiny","tiny_layers":6,"tp":1,"pp":4,"dp":2,"seq_len":2048,"global_batch":16}`,
		`{"model":"tiny","tp":1,"pp":2,"dp":1,"seq_len":2048,"global_batch":8,"method":"DAPPLE-Full"}`,
		`{"model":"tiny","tp":1,"pp":2,"dp":1,"seq_len":2048,"global_batch":8,"method":"Even Partitioning"}`,
		`{"model":"tiny","tp":1,"pp":2,"dp":1,"seq_len":2048,"global_batch":8,"method":"Chimera-Non"}`,
		`{"model":"gpt3","tp":8,"pp":8,"dp":1,"seq_len":16384,"global_batch":32}`,
	}
	for _, body := range reqs {
		resp := postPlan(t, ts, body)
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, resp.StatusCode, got)
		}
		if h := resp.Header.Get(headerCache); h != CacheMiss {
			t.Fatalf("%s: first request disposition %q, want %q", body, h, CacheMiss)
		}
		pr, err := request.ParsePlanResponse(got)
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		want := offlinePlanBytes(t, body)
		if !bytes.Equal([]byte(pr.Plan), want) {
			t.Fatalf("%s: served plan differs from offline plan:\n%s\n%s", body, pr.Plan, want)
		}
		req, _ := request.ParsePlanRequest([]byte(body))
		wantHash, _ := req.Hash()
		if pr.RequestHash != wantHash || resp.Header.Get(headerHash) != wantHash {
			t.Fatalf("%s: hash mismatch (body %s, header %s, want %s)",
				body, pr.RequestHash, resp.Header.Get(headerHash), wantHash)
		}
		// The plan must pass structural validation after the round trip.
		var plan core.Plan
		if err := json.Unmarshal(pr.Plan, &plan); err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		if err := plan.Validate(0); err != nil {
			t.Fatalf("%s: served plan invalid: %v", body, err)
		}
	}
}

// TestPlanCacheHitIsByteIdenticalAndFree pins the cache semantics: the second
// identical request returns the exact bytes of the first, marked as a hit,
// without running another search or another knapsack.
func TestPlanCacheHitIsByteIdenticalAndFree(t *testing.T) {
	s, ts := testServer(t, Config{})
	body := tinyBody(4, 8)

	cold := postPlan(t, ts, body)
	coldBytes := readBody(t, cold)
	if cold.StatusCode != http.StatusOK || cold.Header.Get(headerCache) != CacheMiss {
		t.Fatalf("cold: status %d disposition %q", cold.StatusCode, cold.Header.Get(headerCache))
	}
	after := s.Stats()
	if after.Searches != 1 || after.CacheMisses != 1 {
		t.Fatalf("cold stats: %+v", after)
	}
	knapsacks := after.KnapsackRuns
	if knapsacks == 0 {
		t.Fatal("cold adaptive search reported zero knapsack runs")
	}

	warm := postPlan(t, ts, body)
	warmBytes := readBody(t, warm)
	if warm.Header.Get(headerCache) != CacheHit {
		t.Fatalf("warm disposition %q, want %q", warm.Header.Get(headerCache), CacheHit)
	}
	if !bytes.Equal(coldBytes, warmBytes) {
		t.Fatalf("cached response differs from cold response:\n%s\n%s", coldBytes, warmBytes)
	}
	final := s.Stats()
	if final.Searches != 1 {
		t.Fatalf("cache hit ran a search: %+v", final)
	}
	if final.KnapsackRuns != knapsacks {
		t.Fatalf("cache hit ran knapsacks: %d -> %d", knapsacks, final.KnapsackRuns)
	}
	if final.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", final.CacheHits)
	}

	// A request that differs only in representation (field order, explicit
	// defaults) is the same canonical request and also hits.
	reordered := `{"global_batch":8,"seq_len":2048,"dp":1,"pp":4,"tp":1,"model":"tiny","method":"AdaPipe","micro_batch":1}`
	rep := postPlan(t, ts, reordered)
	repBytes := readBody(t, rep)
	if rep.Header.Get(headerCache) != CacheHit || !bytes.Equal(repBytes, coldBytes) {
		t.Fatalf("representation-variant request missed the cache (disposition %q)", rep.Header.Get(headerCache))
	}
}

// TestConcurrentIdenticalRequestsSearchOnce is the coalescing proof at the
// HTTP layer with the real planner: 8 concurrent identical requests perform
// exactly one search and all get the same bytes.
func TestConcurrentIdenticalRequestsSearchOnce(t *testing.T) {
	s, ts := testServer(t, Config{MaxInFlight: 8})
	body := tinyBody(4, 16)
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, buf.Bytes())
				return
			}
			bodies[i] = buf.Bytes()
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	stats := s.Stats()
	if stats.Searches != 1 {
		t.Fatalf("%d concurrent identical requests ran %d searches, want exactly 1", n, stats.Searches)
	}
	if stats.CacheHits+stats.Coalesced != n-1 {
		t.Fatalf("hit+coalesced = %d+%d, want %d in total", stats.CacheHits, stats.Coalesced, n-1)
	}
}

// TestCoalescingSharesOneScriptedSearch drives the singleflight path
// deterministically: a scripted search blocks until all 8 requests are
// waiting on it, so every follower must coalesce (none can be a late cache
// hit), and the scripted planner runs exactly once.
func TestCoalescingSharesOneScriptedSearch(t *testing.T) {
	s, ts := testServer(t, Config{MaxInFlight: 8})
	const n = 8
	var calls int
	var mu sync.Mutex
	waiting := make(chan struct{}, n)
	proceed := make(chan struct{})
	realPlan := s.planFn
	s.planFn = func(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		<-proceed
		return realPlan(ctx, req)
	}

	body := tinyBody(2, 8)
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			waiting <- struct{}{}
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			results[i] = resp.Header.Get(headerCache)
		}()
	}
	// Wait until every client goroutine is at least launched, then give the
	// HTTP layer a moment to park all of them inside the handler before
	// releasing the scripted search.
	for i := 0; i < n; i++ {
		<-waiting
	}
	time.Sleep(50 * time.Millisecond)
	close(proceed)
	wg.Wait()
	if t.Failed() {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("scripted search ran %d times, want 1", calls)
	}
	var miss, coalesced int
	for _, r := range results {
		switch r {
		case CacheMiss:
			miss++
		case CacheCoalesced:
			coalesced++
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Fatalf("dispositions: %v (want 1 miss, %d coalesced)", results, n-1)
	}
	if s.Stats().Coalesced != int64(n-1) {
		t.Fatalf("coalesced counter = %d, want %d", s.Stats().Coalesced, n-1)
	}
}

// TestRequestTimeoutCancelsSearch proves the deadline reaches the search: a
// scripted search that honours ctx returns 504 promptly under a 30ms budget.
func TestRequestTimeoutCancelsSearch(t *testing.T) {
	s, ts := testServer(t, Config{RequestTimeout: 30 * time.Millisecond})
	s.planFn = func(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	start := time.Now()
	resp := postPlan(t, ts, tinyBody(2, 8))
	readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	if s.Stats().Errors == 0 {
		t.Fatal("timeout not counted as an error")
	}
}

// TestShutdownCancelsInFlightSearch: Close() must unwind a running search
// through its context and answer 503.
func TestShutdownCancelsInFlightSearch(t *testing.T) {
	s, ts := testServer(t, Config{})
	entered := make(chan struct{})
	s.planFn = func(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
		close(entered)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tinyBody(2, 8)))
		if err == nil {
			done <- resp
		} else {
			t.Error(err)
			close(done)
		}
	}()
	<-entered
	s.Close()
	select {
	case resp := <-done:
		if resp == nil {
			return
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not unblock the in-flight request")
	}
}

// TestAdmissionGateRejectsWhenSaturated: with one slot held by a scripted
// search, a second *distinct* request must time out in the admission queue
// with 503 instead of starting a concurrent search.
func TestAdmissionGateRejectsWhenSaturated(t *testing.T) {
	s, ts := testServer(t, Config{MaxInFlight: 1, RequestTimeout: 80 * time.Millisecond})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.planFn = func(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
		// Hold the slot until the test releases it — NOT until ctx expires.
		// The holder's deadline always fires just before the queued request's
		// (it was admitted first), so releasing on ctx.Done would free the
		// slot inside the second request's admission window and let it race
		// between admission and rejection. Blocking on release alone keeps
		// the slot occupied for the whole window, making the 503
		// deterministic. The timeout is a hang backstop only.
		close(entered)
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
		return nil, context.DeadlineExceeded
	}
	go func() {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tinyBody(2, 8)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	resp := postPlan(t, ts, tinyBody(4, 8)) // different hash: no coalescing
	readBody(t, resp)
	close(release)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Stats().Rejected)
	}
}

func TestLRUEvictionAtHTTPLayer(t *testing.T) {
	s, ts := testServer(t, Config{CacheSize: 1})
	a, b := tinyBody(2, 8), tinyBody(4, 8)
	readBody(t, postPlan(t, ts, a))
	readBody(t, postPlan(t, ts, b)) // evicts a
	resp := postPlan(t, ts, a)
	readBody(t, resp)
	if resp.Header.Get(headerCache) != CacheMiss {
		t.Fatalf("evicted entry served as %q", resp.Header.Get(headerCache))
	}
	// b evicted a, then re-caching a evicted b: two evictions, one entry.
	st := s.Stats()
	if st.CacheEvictions != 2 || st.CacheEntries != 1 {
		t.Fatalf("evictions=%d entries=%d, want 2 and 1", st.CacheEvictions, st.CacheEntries)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s, ts := testServer(t, Config{})
	body := tinyBody(4, 8)
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr request.SimulateResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Version != request.Version || sr.Schedule != "1f1b" || sr.IterSec <= 0 || len(sr.PeakBytes) != 4 {
		t.Fatalf("unexpected simulate response: %+v", sr)
	}
	// The simulated outcome must agree with the offline evaluation path.
	req, _ := request.ParsePlanRequest([]byte(body))
	meth, _ := req.MethodConfig()
	cfg, _ := req.ModelConfig()
	cl, _ := req.ClusterConfig()
	opts, _ := req.Options(0)
	want := baseline.Evaluate(meth, cfg, cl, req.Strategy(), req.TrainingConfig(), opts)
	if sr.IterSec != want.Sim.IterTime {
		t.Fatalf("served iter %g, offline iter %g", sr.IterSec, want.Sim.IterTime)
	}
	if s.Stats().SimulateRequests != 1 {
		t.Fatalf("simulate requests = %d, want 1", s.Stats().SimulateRequests)
	}
}

func TestBadRequestsAreRejected(t *testing.T) {
	s, ts := testServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"model":"bert","tp":1,"pp":2,"dp":1,"seq_len":128,"global_batch":4}`, http.StatusBadRequest},
		{`{"model":"tiny","tpp":1}`, http.StatusBadRequest},
		{`{"model":"tiny","tp":1,"pp":2,"dp":1,"seq_len":2048,"global_batch":7,"micro_batch":2}`, http.StatusBadRequest},
		{`{"version":9,"model":"tiny","tp":1,"pp":2,"dp":1,"seq_len":2048,"global_batch":8}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postPlan(t, ts, c.body)
		data := readBody(t, resp)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.body, resp.StatusCode, c.want, data)
		}
		e, err := request.ParseErrorResponse(data)
		if err != nil {
			t.Errorf("%s: error body not machine readable: %s", c.body, data)
		} else if e.Err.Code != request.ErrCodeInvalidRequest || e.Err.Status != c.want {
			t.Errorf("%s: error envelope %+v, want code %q status %d", c.body, e.Err, request.ErrCodeInvalidRequest, c.want)
		}
	}
	// GET on a POST endpoint.
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
	if s.Stats().Errors == 0 {
		t.Fatal("errors counter untouched")
	}
	if s.Stats().Searches != 0 {
		t.Fatal("bad requests ran searches")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK || string(body) != "{\"status\":\"ok\"}\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	readBody(t, postPlan(t, ts, tinyBody(2, 8)))
	readBody(t, postPlan(t, ts, tinyBody(2, 8)))
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	for _, want := range []string{
		`adapipe_serve_requests_total{endpoint="plan"} 2`,
		"adapipe_serve_cache_hits_total 1",
		"adapipe_serve_cache_misses_total 1",
		"adapipe_serve_searches_total 1",
		"adapipe_serve_knapsack_runs_total",
		"adapipe_serve_in_flight 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
