package serve

import (
	"context"
	"sync"
)

// flightResult is what one search produced: the HTTP status, the response
// body, and the cache disposition of the leader.
type flightResult struct {
	status int
	body   []byte
}

// flightCall is one in-flight search shared by all requests with the same
// canonical hash.
type flightCall struct {
	done chan struct{} // closed when res is final
	res  flightResult
}

// flightGroup implements request coalescing (singleflight): the first
// request for a key becomes the leader and runs fn; every request that
// arrives while the leader is still running waits for the leader's result
// instead of starting a second identical search. The call is deregistered
// before waiters are released, so a request arriving after completion starts
// fresh (by then the response cache answers it).
type flightGroup struct {
	mu sync.Mutex
	// calls holds the in-flight computation per key.
	// guarded by mu
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do returns fn's result for key, executing fn at most once across all
// concurrent callers with the same key. coalesced reports whether this
// caller piggybacked on another caller's execution. A waiter whose ctx ends
// before the leader finishes gets ctx.Err(); the leader itself is never
// interrupted by a waiter's context (fn carries its own deadline), so one
// impatient client cannot poison the result every other waiter gets.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() flightResult) (res flightResult, coalesced bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, nil
		case <-ctx.Done():
			return flightResult{}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false, nil
}
