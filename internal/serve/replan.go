package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"adapipe/internal/core"
	"adapipe/internal/obs"
	"adapipe/internal/request"
)

// Replan-disposition values of the X-Adapipe-Replan response header.
const (
	// ReplanWarm marks a replan answered by a warm-started incremental
	// search on a planner the store already held for the request hash.
	ReplanWarm = "warm"
	// ReplanCold marks a replan that first ran the cold search seeding a
	// warm planner for the hash (the first replan for a training run).
	ReplanCold = "cold"

	headerReplan = "X-Adapipe-Replan"
)

// replanEntry is one warm planner and its incumbent plan. mu serializes
// every use of the planner: replans mutate its memo, iso-cache and scale, so
// two replans for one hash must run one after the other (they still run
// concurrently with replans for other hashes, each under its own admission
// slot).
type replanEntry struct {
	mu sync.Mutex
	// pl is the warm planner; nil until the entry's first (cold) search
	// completes.
	// guarded by mu
	pl *core.Planner
	// plan is the incumbent — the cold search's plan at first, then the
	// latest adopted replan.
	// guarded by mu
	plan *core.Plan
}

// plannerStore is a bounded, mutex-guarded LRU of warm planners keyed by
// plan-request hash. Unlike the response cache it stores live state, not
// bytes: the planner's partition-DP memo and iso-cache are what make repeat
// replans for one training run incremental. Eviction drops the planner —
// the next replan for that hash runs cold again, slower but identical.
type plannerStore struct {
	mu  sync.Mutex
	max int
	// ll orders entries, front = most recently used.
	// guarded by mu
	ll *list.List
	// items indexes entries by request hash.
	// guarded by mu
	items map[string]*list.Element
}

type plannerStoreEntry struct {
	key   string
	entry *replanEntry
}

func newPlannerStore(max int) *plannerStore {
	if max <= 0 {
		max = 1 // a replan endpoint with no store at all could never warm-start
	}
	return &plannerStore{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Acquire returns the entry for key, creating it when absent, and reports
// whether it already existed. The caller locks the entry's own mutex before
// using the planner; the store lock only covers the map.
func (ps *plannerStore) Acquire(key string) (*replanEntry, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if el, ok := ps.items[key]; ok {
		ps.ll.MoveToFront(el)
		return el.Value.(*plannerStoreEntry).entry, true
	}
	e := &replanEntry{}
	ps.items[key] = ps.ll.PushFront(&plannerStoreEntry{key: key, entry: e})
	for ps.ll.Len() > ps.max {
		tail := ps.ll.Back()
		ps.ll.Remove(tail)
		delete(ps.items, tail.Value.(*plannerStoreEntry).key)
	}
	return e, false
}

// Len returns the current planner count.
func (ps *plannerStore) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.ll.Len()
}

// handleReplan serves POST /v1/replan: parse the replan request, look up (or
// seed) the warm planner for the inner plan request's hash, and run one
// straggler replanning round on it. The first replan for a hash runs the
// cold search that seeds the planner's memo; every later one warm-starts
// incrementally, which is the point of keeping planners alive between
// requests. Responses are never cached or coalesced — each replan advances
// the entry's incumbent, so two replans are never the same computation.
func (s *Server) handleReplan(w http.ResponseWriter, r *http.Request) {
	tr := s.newTracer()
	reqStart := s.clock()
	hash, disposition, res := s.replanResult(w, r, tr)
	reqEnd := s.clock()
	tr.Add("request", obs.CatRequest, 0, reqStart, reqEnd)
	s.histRequest.Observe(reqEnd.Sub(reqStart))
	s.traces.Put(tr)
	if id := tr.ID(); id != "" {
		w.Header().Set(headerTrace, id)
	}
	if disposition != "" {
		w.Header().Set(headerReplan, disposition)
	}
	s.writeResult(w, hash, "", res)
	s.logRequest(r, tr.ID(), hash, disposition, res.status, reqEnd.Sub(reqStart))
}

// replanResult runs a replan request through its phases — decode, queue,
// replan, encode — recording one CatPhase span per phase.
func (s *Server) replanResult(w http.ResponseWriter, r *http.Request, tr *obs.Tracer) (hash, disposition string, res flightResult) {
	decStart := s.clock()
	req, hash, herr := s.parseReplanRequest(w, r)
	tr.Add("decode", obs.CatPhase, 0, decStart, s.clock())
	if herr != nil {
		return hash, "", errResult(herr.status, herr.code, herr.msg)
	}
	s.replanReqs.Add(1)

	qStart := s.clock()
	ctx, cancel, admitted := s.admit()
	defer cancel()
	qEnd := s.clock()
	tr.Add("queue", obs.CatPhase, 0, qStart, qEnd)
	s.histQueue.Observe(qEnd.Sub(qStart))
	if !admitted {
		s.rejected.Add(1)
		return hash, "", s.admissionErrResult()
	}
	defer s.release()

	entry, existed := s.planners.Acquire(hash)
	entry.mu.Lock()
	defer entry.mu.Unlock()
	warm := existed && entry.pl != nil

	searchStart := s.clock()
	body, herr2 := s.runReplan(obs.WithTracer(ctx, tr), req, hash, entry, warm)
	searchEnd := s.clock()
	tr.Add("search", obs.CatPhase, 0, searchStart, searchEnd)
	s.histSearch.Observe(searchEnd.Sub(searchStart))
	s.searchWallNanos.Add(int64(searchEnd.Sub(searchStart)))
	if warm {
		disposition = ReplanWarm
	} else {
		disposition = ReplanCold
	}
	if herr2 != nil {
		return hash, disposition, errResult(herr2.status, herr2.code, herr2.msg)
	}
	if warm {
		s.replanWarm.Add(1)
	} else {
		s.replanCold.Add(1)
	}
	return hash, disposition, flightResult{status: http.StatusOK, body: body}
}

// runReplan performs the replan itself under the entry lock: seed the
// planner with a cold search when the entry is fresh, then run one
// warm-startable replanning round and encode the response. The caller holds
// entry.mu.
func (s *Server) runReplan(ctx context.Context, req request.ReplanRequest, hash string, entry *replanEntry, warm bool) ([]byte, *httpError) {
	if !warm {
		pl, err := req.Request.NewPlanner(s.cfg.Workers)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error()}
		}
		s.attachStore(pl)
		s.searches.Add(1)
		s.inFlight.Add(1)
		plan, err := pl.PlanContext(ctx)
		s.inFlight.Add(-1)
		if err != nil {
			he := s.searchErr(ctx, err)
			return nil, &httpError{he.status, he.code, "seeding warm planner: " + err.Error()}
		}
		entry.pl, entry.plan = pl, plan
	}
	pl := entry.pl

	before := pl.StatsSnapshot()
	s.searches.Add(1)
	s.inFlight.Add(1)
	rep, err := pl.ReplanWithScaleContext(ctx, entry.plan, req.Scale)
	s.inFlight.Add(-1)
	if err != nil {
		he := s.searchErr(ctx, err)
		return nil, &httpError{he.status, he.code, err.Error()}
	}
	after := pl.StatsSnapshot()
	s.knapsackRuns.Add(int64(after.KnapsackRuns - before.KnapsackRuns))

	next := rep.Old
	if rep.Adopted {
		next = rep.New
		entry.plan = rep.New
		s.replanAdopted.Add(1)
	}
	planJSON, err := json.Marshal(next)
	if err != nil {
		return nil, &httpError{http.StatusInternalServerError, request.ErrCodeInternal, err.Error()}
	}
	resp := request.ReplanResponse{
		ResponseEnvelope: request.ResponseEnvelope{
			Version:     request.Version,
			RequestHash: hash,
			Method:      req.Request.Method,
		},
		Adopted:               rep.Adopted,
		Incremental:           after.ReplanIncremental > before.ReplanIncremental,
		InvalidatedIsoClasses: after.InvalidatedIsoClasses - before.InvalidatedIsoClasses,
		WarmStartCells:        after.WarmStartCells - before.WarmStartCells,
		OldIterSec:            rep.OldSim.IterTime,
		NewIterSec:            rep.NewSim.IterTime,
		Plan:                  planJSON,
	}
	body, err := resp.Encode()
	if err != nil {
		return nil, &httpError{http.StatusInternalServerError, request.ErrCodeInternal, err.Error()}
	}
	return body, nil
}

// parseReplanRequest reads, parses and validates the replan request body,
// and hashes the inner plan request (the warm-planner identity).
func (s *Server) parseReplanRequest(w http.ResponseWriter, r *http.Request) (request.ReplanRequest, string, *httpError) {
	if r.Method != http.MethodPost {
		return request.ReplanRequest{}, "", &httpError{http.StatusMethodNotAllowed, request.ErrCodeMethodNotAllowed, "replan accepts POST only"}
	}
	body, herr := readRequestBody(w, r)
	if herr != nil {
		return request.ReplanRequest{}, "", herr
	}
	req, err := request.ParseReplanRequest(body)
	if err != nil {
		return request.ReplanRequest{}, "", &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error()}
	}
	hash, err := req.Request.Hash()
	if err != nil {
		return request.ReplanRequest{}, "", &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error()}
	}
	return req, hash, nil
}
