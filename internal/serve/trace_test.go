package serve

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic obs.Clock advancing a fixed step per reading,
// so trace spans and histogram observations are reproducible in tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Millisecond)
	return c.now
}

// chromeDoc is the subset of Chrome trace-event JSON the tests inspect.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

func getTraceDoc(t *testing.T, ts *httptest.Server, id string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	return resp, readBody(t, resp)
}

// TestPlanTraceEndToEnd is the tentpole proof at the unit level: a cold
// /v1/plan returns a trace id, the stored trace decomposes the request into
// its serving phases AND reaches down through the search into the knapsack
// solvers, and repeated exports are byte-identical.
func TestPlanTraceEndToEnd(t *testing.T) {
	clk := newTestClock()
	_, ts := testServer(t, Config{Clock: clk.Now})

	resp := postPlan(t, ts, tinyBody(2, 8))
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d", resp.StatusCode)
	}
	id := resp.Header.Get(headerTrace)
	if id != "t000001" {
		t.Fatalf("X-Adapipe-Trace = %q, want t000001 (first id of the sequence)", id)
	}

	tresp, body := getTraceDoc(t, ts, id)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace/%s status %d: %s", id, tresp.StatusCode, body)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	var doc chromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not Chrome trace JSON: %v", err)
	}

	roots := 0
	cats := map[string]int{}
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has ph %q, want X", ev.Name, ev.Ph)
		}
		cats[ev.Cat]++
		if ev.Cat == "request" {
			roots++
			if ev.Dur <= 0 {
				t.Errorf("request span duration = %g", ev.Dur)
			}
		}
		if ev.Cat == "phase" {
			phases[ev.Name] = true
		}
	}
	if roots != 1 {
		t.Errorf("trace holds %d request spans, want 1", roots)
	}
	for _, want := range []string{"decode", "cache", "queue", "search", "encode"} {
		if !phases[want] {
			t.Errorf("phase span %q missing; trace:\n%s", want, body)
		}
	}
	// The tracer rode the context down: planner sub-phases and at least one
	// knapsack solve must appear.
	if cats["search"] == 0 {
		t.Error("no search-category spans: tracer did not reach core.PlanContext")
	}
	if cats["solve"] == 0 {
		t.Error("no solve-category spans: tracer did not reach recompute.Solver")
	}

	// Byte-determinism across exports of one stored trace.
	_, again := getTraceDoc(t, ts, id)
	if string(body) != string(again) {
		t.Error("two exports of one trace differ")
	}
}

// TestTraceCacheHitPhases: a cache hit's trace tells the short story —
// decode and cache lookup, no queue/search/encode.
func TestTraceCacheHitPhases(t *testing.T) {
	clk := newTestClock()
	_, ts := testServer(t, Config{Clock: clk.Now})
	readBody(t, postPlan(t, ts, tinyBody(2, 8)))

	resp := postPlan(t, ts, tinyBody(2, 8))
	readBody(t, resp)
	if d := resp.Header.Get(headerCache); d != CacheHit {
		t.Fatalf("repeat disposition = %q, want hit", d)
	}
	id := resp.Header.Get(headerTrace)
	tresp, body := getTraceDoc(t, ts, id)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace/%s status %d", id, tresp.StatusCode)
	}
	var doc chromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"request", "decode", "cache"} {
		if !seen[want] {
			t.Errorf("hit trace missing %q span:\n%s", want, body)
		}
	}
	for _, absent := range []string{"search", "queue", "encode", "knapsack"} {
		if seen[absent] {
			t.Errorf("hit trace contains %q span — a cache hit must do no search work:\n%s", absent, body)
		}
	}
}

func TestTraceUnknownID(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, id := range []string{"t999999", ""} {
		resp, body := getTraceDoc(t, ts, id)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("/v1/trace/%q status %d, want 404 (%s)", id, resp.StatusCode, body)
		}
	}
}

func TestTraceMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/trace/t000001", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/trace status %d, want 405", resp.StatusCode)
	}
}

// TestTraceRingEviction: the ring keeps the most recent TraceBuffer traces;
// older ids 404.
func TestTraceRingEviction(t *testing.T) {
	_, ts := testServer(t, Config{TraceBuffer: 1})
	r1 := postPlan(t, ts, tinyBody(2, 8))
	readBody(t, r1)
	id1 := r1.Header.Get(headerTrace)
	r2 := postPlan(t, ts, tinyBody(4, 8))
	readBody(t, r2)
	id2 := r2.Header.Get(headerTrace)

	if resp, _ := getTraceDoc(t, ts, id1); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted trace %s still served (status %d)", id1, resp.StatusCode)
	}
	if resp, _ := getTraceDoc(t, ts, id2); resp.StatusCode != http.StatusOK {
		t.Errorf("latest trace %s not served (status %d)", id2, resp.StatusCode)
	}
}

// TestTracingDisabled: TraceBuffer < 0 selects the nil-tracer hot path — no
// header, nothing stored, requests still served.
func TestTracingDisabled(t *testing.T) {
	_, ts := testServer(t, Config{TraceBuffer: -1})
	resp := postPlan(t, ts, tinyBody(2, 8))
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d with tracing disabled", resp.StatusCode)
	}
	if h := resp.Header.Get(headerTrace); h != "" {
		t.Errorf("X-Adapipe-Trace = %q with tracing disabled, want absent", h)
	}
	if tresp, _ := getTraceDoc(t, ts, "t000001"); tresp.StatusCode != http.StatusNotFound {
		t.Errorf("trace stored despite disabled tracing (status %d)", tresp.StatusCode)
	}
}

// TestMetricsHistograms: after one plan request /metrics carries all four
// latency histogram families, rendered deterministically.
func TestMetricsHistograms(t *testing.T) {
	clk := newTestClock()
	_, ts := testServer(t, Config{Clock: clk.Now})
	readBody(t, postPlan(t, ts, tinyBody(2, 8)))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	for _, fam := range []string{
		"adapipe_serve_request_seconds",
		"adapipe_serve_search_seconds",
		"adapipe_serve_queue_seconds",
		"adapipe_serve_cache_lookup_seconds",
	} {
		for _, suffix := range []string{"_bucket{le=\"+Inf\"}", "_sum", "_count"} {
			if !strings.Contains(body, fam+suffix) {
				t.Errorf("/metrics missing %s%s", fam, suffix)
			}
		}
		if !strings.Contains(body, "# TYPE "+fam+" histogram") {
			t.Errorf("/metrics missing TYPE line for %s", fam)
		}
	}
	if !strings.Contains(body, "adapipe_serve_request_seconds_count 1") {
		t.Errorf("request histogram did not record the request:\n%s", body)
	}
}

// TestRequestLogging: one structured record per request, carrying the trace
// id as the join key to /v1/trace/{id}.
func TestRequestLogging(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{mu: &mu, w: &buf}, nil))
	_, ts := testServer(t, Config{Logger: logger})
	readBody(t, postPlan(t, ts, tinyBody(2, 8)))

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		`msg=request`,
		`method=POST`,
		`path=/v1/plan`,
		`trace=t000001`,
		`cache=miss`,
		`status=200`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("request log missing %q:\n%s", want, out)
		}
	}
}

// lockedWriter serializes handler writes; httptest handlers run on their own
// goroutines.
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
