package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adapipe/internal/core"
	"adapipe/internal/request"
)

func postSweep(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func sweepBody(base string, axes string) string {
	return fmt.Sprintf(`{"base":%s,"axes":%s}`, base, axes)
}

// TestSweepSinglePointMatchesPlan: a one-point sweep must carry exactly the
// plan bytes /v1/plan returns for the same request — and because sweep points
// feed the shared response cache, the follow-up /v1/plan is a cache hit.
func TestSweepSinglePointMatchesPlan(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := tinyBody(4, 8)

	resp := postSweep(t, ts, sweepBody(base, `{}`))
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	sr, err := request.ParseSweepResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 1 || sr.Stats.Points != 1 || sr.Stats.Planned != 1 {
		t.Fatalf("axis-free sweep: %+v", sr.Stats)
	}
	if len(sr.Ranking) != 1 || sr.Ranking[0] != 0 {
		t.Fatalf("ranking %v, want [0]", sr.Ranking)
	}
	want := offlinePlanBytes(t, base)
	if !bytes.Equal([]byte(sr.Points[0].Plan), want) {
		t.Fatalf("sweep point plan differs from offline plan:\n%s\n%s", sr.Points[0].Plan, want)
	}

	// The point's response is now in the shared cache: /v1/plan hits.
	presp := postPlan(t, ts, base)
	pdata := readBody(t, presp)
	if presp.Header.Get(headerCache) != CacheHit {
		t.Fatalf("/v1/plan after sweep: disposition %q, want %q", presp.Header.Get(headerCache), CacheHit)
	}
	pr, err := request.ParsePlanResponse(pdata)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(pr.Plan), []byte(sr.Points[0].Plan)) {
		t.Fatal("/v1/plan bytes differ from the sweep point's plan")
	}
}

// TestSweepAmortizesKnapsacksOverStore is the serving-layer reuse proof: a
// global-batch sweep shares one cost family, so after a cold single plan the
// whole grid adds almost no knapsack work and the extra points are answered by
// the shared cost store.
func TestSweepAmortizesKnapsacksOverStore(t *testing.T) {
	s, ts := testServer(t, Config{})

	readBody(t, postPlan(t, ts, tinyBody(4, 8)))
	cold := s.Stats()
	if cold.KnapsackRuns == 0 {
		t.Fatal("cold plan reported zero knapsack runs")
	}
	if cold.CostStoreMisses == 0 {
		t.Fatal("cold plan did not populate the cost store")
	}

	resp := postSweep(t, ts, sweepBody(tinyBody(4, 8), `{"global_batch":[8,16,24]}`))
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	sr, err := request.ParseSweepResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Stats.Points != 3 || sr.Stats.Cached != 1 || sr.Stats.Planned != 2 || sr.Stats.Failed != 0 {
		t.Fatalf("sweep stats %+v, want 3 points = 1 cached + 2 planned", sr.Stats)
	}
	warm := s.Stats()
	perPoint := cold.KnapsackRuns
	if delta := warm.KnapsackRuns - cold.KnapsackRuns; delta >= 2*perPoint {
		t.Fatalf("sweep added %d knapsack runs, want < %d (2 fresh points × %d cold runs, amortized by the store)",
			delta, 2*perPoint, perPoint)
	}
	if warm.CostStoreHits == 0 {
		t.Fatal("sweep recorded no cost-store hits")
	}
	if warm.SweepRequests != 1 || warm.SweepPoints != 3 || warm.SweepPointsPlanned != 2 || warm.SweepPointsCached != 1 {
		t.Fatalf("daemon sweep counters %+v inconsistent with one 3-point sweep", warm)
	}
	// Every grid point matches its offline plan byte for byte.
	for i, gb := range []int{8, 16, 24} {
		want := offlinePlanBytes(t, tinyBody(4, gb))
		if !bytes.Equal([]byte(sr.Points[i].Plan), want) {
			t.Fatalf("point %d (gb=%d) differs from offline plan", i, gb)
		}
	}
}

// TestSweepEmptyAxisRejected: an explicitly empty axis is an invalid_request,
// not an empty success.
func TestSweepEmptyAxisRejected(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp := postSweep(t, ts, sweepBody(tinyBody(4, 8), `{"tp":[]}`))
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	e, err := request.ParseErrorResponse(data)
	if err != nil {
		t.Fatalf("error body not an envelope: %s", data)
	}
	if e.Err.Code != request.ErrCodeInvalidRequest || !strings.Contains(e.Err.Message, `axis "tp" is empty`) {
		t.Fatalf("envelope %+v", e.Err)
	}
	if s.Stats().Searches != 0 {
		t.Fatal("rejected sweep ran a search")
	}
}

// TestSweepDuplicatePointsPlannedOnce: duplicate grid values collapse to one
// search; the copies are deduped, not re-planned.
func TestSweepDuplicatePointsPlannedOnce(t *testing.T) {
	s, ts := testServer(t, Config{})
	var mu sync.Mutex
	calls := 0
	realPlan := s.planFn
	s.planFn = func(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return realPlan(ctx, req)
	}

	resp := postSweep(t, ts, sweepBody(tinyBody(4, 8), `{"global_batch":[16,16,16]}`))
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	sr, err := request.ParseSweepResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Fatalf("3 identical grid points ran %d searches, want 1", got)
	}
	if sr.Stats.Planned != 1 || sr.Stats.Deduped != 2 || sr.Stats.Failed != 0 {
		t.Fatalf("stats %+v, want planned 1, deduped 2", sr.Stats)
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal([]byte(sr.Points[0].Plan), []byte(sr.Points[i].Plan)) {
			t.Fatalf("deduped point %d carries different plan bytes", i)
		}
		if sr.Points[i].RequestHash != sr.Points[0].RequestHash {
			t.Fatalf("deduped point %d carries a different hash", i)
		}
	}
	if len(sr.Ranking) != 3 {
		t.Fatalf("ranking %v, want all 3 points feasible", sr.Ranking)
	}
}

// TestSweepPartialFailure: one point that fails to normalize gets a per-point
// canonical error; the rest of the grid still plans and ranks.
func TestSweepPartialFailure(t *testing.T) {
	_, ts := testServer(t, Config{})
	// micro_batch 3 does not divide global_batch 8: that point fails
	// normalization, micro_batch 1 stays valid.
	resp := postSweep(t, ts, sweepBody(tinyBody(4, 8), `{"micro_batch":[1,3]}`))
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with a per-point error: %s", resp.StatusCode, data)
	}
	sr, err := request.ParseSweepResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Stats.Points != 2 || sr.Stats.Planned != 1 || sr.Stats.Failed != 1 {
		t.Fatalf("stats %+v, want 1 planned + 1 failed", sr.Stats)
	}
	if sr.Points[0].Error != nil || len(sr.Points[0].Plan) == 0 {
		t.Fatalf("valid point did not plan: %+v", sr.Points[0])
	}
	bad := sr.Points[1]
	if bad.Error == nil || bad.Error.Code != request.ErrCodeInvalidRequest || bad.Error.Status != http.StatusBadRequest {
		t.Fatalf("failed point error %+v, want invalid_request 400", bad.Error)
	}
	if len(bad.Plan) != 0 {
		t.Fatal("failed point carries a plan")
	}
	if len(sr.Ranking) != 1 || sr.Ranking[0] != 0 {
		t.Fatalf("ranking %v, want only the feasible point", sr.Ranking)
	}
}

// TestSweepRankingOrdersByIterSec: a pp axis produces points with different
// modeled iteration times; the ranking lists them fastest first and TopK
// truncates it.
func TestSweepRankingOrdersByIterSec(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := fmt.Sprintf(`{"base":%s,"axes":{"pp":[1,2,4]},"top_k":2}`, tinyBody(4, 8))
	resp := postSweep(t, ts, body)
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	sr, err := request.ParseSweepResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Ranking) != 2 {
		t.Fatalf("top_k=2 ranking has %d entries: %v", len(sr.Ranking), sr.Ranking)
	}
	if sr.Points[sr.Ranking[0]].IterSec > sr.Points[sr.Ranking[1]].IterSec {
		t.Fatalf("ranking not ascending by iter_sec: %v", sr.Ranking)
	}
	for _, p := range sr.Points {
		if p.Error == nil && p.IterSec <= 0 {
			t.Fatalf("point %d has no modeled iteration time: %+v", p.Index, p)
		}
	}
}

// TestSweepCancellationFailsWholeSweepAndStoreStaysUsable: a deadline
// mid-grid fails the whole sweep with the canonical timeout envelope, and the
// shared cost store is left clean — the retry (with the stall removed) plans
// the grid correctly from the surviving complete entries.
func TestSweepCancellationFailsWholeSweepAndStoreStaysUsable(t *testing.T) {
	s, ts := testServer(t, Config{RequestTimeout: 500 * time.Millisecond})
	realPlan := s.planFn
	var mu sync.Mutex
	stall := true
	s.planFn = func(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
		mu.Lock()
		blocked := stall && req.GlobalBatch == 16
		mu.Unlock()
		if blocked {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return realPlan(ctx, req)
	}

	body := sweepBody(tinyBody(4, 8), `{"global_batch":[8,16]}`)
	resp := postSweep(t, ts, body)
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled sweep: status %d, want 504: %s", resp.StatusCode, data)
	}
	e, err := request.ParseErrorResponse(data)
	if err != nil || e.Err.Code != request.ErrCodeTimeout {
		t.Fatalf("stalled sweep envelope: %s (%v)", data, err)
	}

	// Remove the stall and retry the identical sweep: the aborted run must not
	// have cached a partial response or poisoned the store.
	mu.Lock()
	stall = false
	mu.Unlock()
	resp = postSweep(t, ts, body)
	data = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after cancellation: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get(headerCache) == CacheHit {
		t.Fatal("aborted sweep left a cached response behind")
	}
	sr, err := request.ParseSweepResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Stats.Failed != 0 || len(sr.Ranking) != 2 {
		t.Fatalf("retry stats %+v ranking %v", sr.Stats, sr.Ranking)
	}
	for i, gb := range []int{8, 16} {
		want := offlinePlanBytes(t, tinyBody(4, gb))
		if !bytes.Equal([]byte(sr.Points[i].Plan), want) {
			t.Fatalf("post-cancellation point %d differs from offline plan — store left dirty", i)
		}
	}
}

// TestSweepCacheHitIsByteIdentical: the whole sweep caches under its own hash.
func TestSweepCacheHitIsByteIdentical(t *testing.T) {
	s, ts := testServer(t, Config{})
	body := sweepBody(tinyBody(2, 8), `{"global_batch":[8,16]}`)
	cold := postSweep(t, ts, body)
	coldBytes := readBody(t, cold)
	if cold.StatusCode != http.StatusOK || cold.Header.Get(headerCache) != CacheMiss {
		t.Fatalf("cold sweep: %d %q", cold.StatusCode, cold.Header.Get(headerCache))
	}
	warm := postSweep(t, ts, body)
	warmBytes := readBody(t, warm)
	if warm.Header.Get(headerCache) != CacheHit {
		t.Fatalf("warm sweep disposition %q", warm.Header.Get(headerCache))
	}
	if !bytes.Equal(coldBytes, warmBytes) {
		t.Fatal("cached sweep differs from cold sweep")
	}
	if s.Stats().SweepRequests != 2 {
		t.Fatalf("sweep requests = %d, want 2", s.Stats().SweepRequests)
	}
}

// TestErrorEnvelopeMatrix sweeps every v1 endpoint across its generic failure
// modes and asserts the one canonical error shape: JSON content type, the
// envelope structure, the stable code and the echoed status.
func TestErrorEnvelopeMatrix(t *testing.T) {
	_, ts := testServer(t, Config{})
	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	huge := `{"pad":"` + strings.Repeat("x", 2<<20) + `"}`

	cases := []struct {
		name   string
		do     func() *http.Response
		status int
		code   string
	}{
		{"plan GET", func() *http.Response { return get("/v1/plan") }, 405, request.ErrCodeMethodNotAllowed},
		{"simulate GET", func() *http.Response { return get("/v1/simulate") }, 405, request.ErrCodeMethodNotAllowed},
		{"replan GET", func() *http.Response { return get("/v1/replan") }, 405, request.ErrCodeMethodNotAllowed},
		{"sweep GET", func() *http.Response { return get("/v1/sweep") }, 405, request.ErrCodeMethodNotAllowed},
		{"plan garbage", func() *http.Response { return post("/v1/plan", "not json") }, 400, request.ErrCodeInvalidRequest},
		{"simulate garbage", func() *http.Response { return post("/v1/simulate", "not json") }, 400, request.ErrCodeInvalidRequest},
		{"replan garbage", func() *http.Response { return post("/v1/replan", "not json") }, 400, request.ErrCodeInvalidRequest},
		{"sweep garbage", func() *http.Response { return post("/v1/sweep", "not json") }, 400, request.ErrCodeInvalidRequest},
		{"plan oversized", func() *http.Response { return post("/v1/plan", huge) }, 413, request.ErrCodePayloadTooLarge},
		{"sweep oversized", func() *http.Response { return post("/v1/sweep", huge) }, 413, request.ErrCodePayloadTooLarge},
		{"trace unknown id", func() *http.Response { return get("/v1/trace/nope") }, 404, request.ErrCodeNotFound},
		{"trace POST", func() *http.Response { return post("/v1/trace/x", "{}") }, 405, request.ErrCodeMethodNotAllowed},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := c.do()
			data := readBody(t, resp)
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, c.status, data)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			e, err := request.ParseErrorResponse(data)
			if err != nil {
				t.Fatalf("body is not the canonical envelope: %s", data)
			}
			if e.Err.Code != c.code || e.Err.Status != c.status {
				t.Errorf("envelope code=%q status=%d, want %q %d (message %q)",
					e.Err.Code, e.Err.Status, c.code, c.status, e.Err.Message)
			}
			if e.Err.Message == "" {
				t.Error("envelope message empty")
			}
			var generic struct {
				Error json.RawMessage `json:"error"`
			}
			if err := json.Unmarshal(data, &generic); err != nil || len(generic.Error) == 0 || generic.Error[0] != '{' {
				t.Errorf("top-level \"error\" is not an object: %s", data)
			}
		})
	}
}

// TestSweepSnapshotPersistsAcrossRestart: the daemon-level persistence loop —
// a server populates its store, Close() saves it, a second server loads it
// and answers a fresh sweep with zero knapsack work.
func TestSweepSnapshotPersistsAcrossRestart(t *testing.T) {
	path := t.TempDir() + "/costs.json"
	s1 := New(Config{CostStorePath: path})
	ts1 := httptest.NewServer(s1.Handler())
	resp, err := http.Post(ts1.URL+"/v1/sweep", "application/json",
		strings.NewReader(sweepBody(tinyBody(4, 8), `{"global_batch":[8,16]}`)))
	if err != nil {
		t.Fatal(err)
	}
	first := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first server sweep: %d: %s", resp.StatusCode, first)
	}
	ts1.Close()
	s1.Close() // saves the snapshot

	s2 := New(Config{CostStorePath: path})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	resp, err = http.Post(ts2.URL+"/v1/sweep", "application/json",
		strings.NewReader(sweepBody(tinyBody(4, 8), `{"global_batch":[8,16]}`)))
	if err != nil {
		t.Fatal(err)
	}
	second := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted server sweep: %d: %s", resp.StatusCode, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("restored-store sweep differs from the original server's sweep")
	}
	st := s2.Stats()
	if st.KnapsackRuns != 0 {
		t.Fatalf("restarted server solved %d knapsacks, want 0 (all from the restored store)", st.KnapsackRuns)
	}
	if st.CostStoreHits == 0 {
		t.Fatal("restarted server recorded no cost-store hits")
	}
}
