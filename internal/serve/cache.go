package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, mutex-guarded LRU over encoded plan responses,
// keyed by the request's canonical hash. Both Get and Put count as use:
// the entries that fall off the tail are the ones no request has touched
// longest, which for plan search (identical configs resubmitted by
// schedulers) is exactly the amortization the §5.3 caches buy inside one
// search, lifted across requests.
type lruCache struct {
	mu  sync.Mutex
	max int
	// ll orders entries, front = most recently used.
	// guarded by mu
	ll *list.List
	// items indexes entries by request key.
	// guarded by mu
	items map[string]*list.Element
	// evictions counts capacity evictions.
	// guarded by mu
	evictions int64
}

type lruEntry struct {
	key string
	val []byte
}

// newLRUCache builds a cache bounded to max entries; max <= 0 disables
// caching entirely (every Get misses, every Put is dropped).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached bytes for key and promotes the entry to
// most-recently-used. The returned slice is shared — callers must not
// mutate it.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) an entry and evicts from the tail until the
// bound holds again.
func (c *lruCache) Put(key string, val []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Evictions returns the cumulative eviction count.
func (c *lruCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Keys returns the cached keys from most to least recently used (test and
// debugging aid).
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}
