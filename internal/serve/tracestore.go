package serve

import (
	"sync"

	"adapipe/internal/obs"
)

// traceStore is a bounded FIFO ring of completed request traces keyed by
// trace ID, the backing store of GET /v1/trace/{id}. FIFO rather than LRU:
// a trace is a debugging artifact fetched at most a few times right after
// its request, so recency promotion would only complicate the eviction
// order for no retention benefit.
type traceStore struct {
	mu  sync.Mutex
	max int
	// order holds trace IDs oldest-first.
	// guarded by mu
	order []string
	// traces indexes stored traces by ID.
	// guarded by mu
	traces map[string]*obs.Tracer
}

// newTraceStore builds a store bounded to max traces; max <= 0 disables
// storage entirely (every Put is dropped, every Get misses).
func newTraceStore(max int) *traceStore {
	return &traceStore{max: max, traces: make(map[string]*obs.Tracer)}
}

// Put stores a completed trace, evicting the oldest entries beyond the
// bound. Nil traces (tracing disabled) are dropped.
func (ts *traceStore) Put(tr *obs.Tracer) {
	if ts.max <= 0 || tr == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	id := tr.ID()
	if _, ok := ts.traces[id]; !ok {
		ts.order = append(ts.order, id)
	}
	ts.traces[id] = tr
	for len(ts.order) > ts.max {
		delete(ts.traces, ts.order[0])
		ts.order = ts.order[1:]
	}
}

// Get returns the stored trace for id.
func (ts *traceStore) Get(id string) (*obs.Tracer, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr, ok := ts.traces[id]
	return tr, ok
}

// Len returns the number of stored traces.
func (ts *traceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.order)
}
