// Package serve turns the AdaPipe planner into a long-lived service: an HTTP
// JSON API (POST /v1/plan, POST /v1/simulate, GET /healthz, GET /metrics)
// over the versioned request schema of internal/request. The serving layer
// amortizes plan search across requests the same way §5.3 amortizes knapsack
// solves across ranges inside one search:
//
//   - a bounded LRU cache keyed by the request's canonical hash returns
//     byte-identical responses for repeated searches without re-running the
//     DP;
//   - singleflight coalescing collapses N concurrent identical requests into
//     one search whose result every waiter shares;
//   - a bounded-concurrency admission gate caps simultaneous searches, and
//     each admitted search runs under a deadline threaded down into the
//     parallel search (core.PlanContext / pool.RunContext), so a shutdown or
//     timeout cancels the knapsack fan-out instead of orphaning it.
//
// Everything observable is deterministic: cached, coalesced and cold
// responses for one request are the same bytes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/obs"
	"adapipe/internal/pool"
	"adapipe/internal/request"
)

// Cache-disposition values of the X-Adapipe-Cache response header.
const (
	// CacheHit marks a response served from the LRU cache.
	CacheHit = "hit"
	// CacheMiss marks a response computed by a fresh search.
	CacheMiss = "miss"
	// CacheCoalesced marks a response shared from another request's
	// concurrently-running search.
	CacheCoalesced = "coalesced"

	headerCache = "X-Adapipe-Cache"
	headerHash  = "X-Adapipe-Request-Hash"

	maxBodyBytes = 1 << 20
)

// Config tunes the serving layer. The zero value selects the defaults.
type Config struct {
	// CacheSize bounds the LRU plan cache in entries (default 256; negative
	// disables caching).
	CacheSize int
	// MaxInFlight bounds concurrently executing searches; further requests
	// queue on the admission gate until a slot frees or their deadline
	// expires (default 2).
	MaxInFlight int
	// RequestTimeout bounds one search end to end, queueing included
	// (default 30s).
	RequestTimeout time.Duration
	// Workers sizes each search's worker pool (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = pool.Default()
	}
	return c
}

// Server is the planner service. Create it with New, expose it via Handler,
// and Close it to cancel in-flight searches on shutdown.
type Server struct {
	cfg    Config
	base   context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	cache  *lruCache
	flight *flightGroup

	// planFn runs one search; tests substitute it to script timing.
	planFn func(ctx context.Context, req request.PlanRequest) (*core.Plan, error)

	planReqs, simReqs              atomic.Int64
	hits, misses, coalescedCount   atomic.Int64
	searches, rejected, errorCount atomic.Int64
	inFlight                       atomic.Int64
	knapsackRuns                   atomic.Int64
	searchWallNanos                atomic.Int64
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		base:   base,
		cancel: cancel,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		cache:  newLRUCache(cfg.CacheSize),
		flight: newFlightGroup(),
	}
	s.planFn = s.searchPlan
	return s
}

// Close cancels the server's base context: queued requests stop waiting for
// admission and running searches unwind through their contexts. Safe to call
// more than once.
func (s *Server) Close() { s.cancel() }

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	return mux
}

// Stats snapshots the serving counters.
func (s *Server) Stats() obs.ServeStats {
	return obs.ServeStats{
		PlanRequests:      s.planReqs.Load(),
		SimulateRequests:  s.simReqs.Load(),
		CacheHits:         s.hits.Load(),
		CacheMisses:       s.misses.Load(),
		CacheEvictions:    s.cache.Evictions(),
		CacheEntries:      int64(s.cache.Len()),
		Coalesced:         s.coalescedCount.Load(),
		Searches:          s.searches.Load(),
		KnapsackRuns:      s.knapsackRuns.Load(),
		SearchWallSeconds: time.Duration(s.searchWallNanos.Load()).Seconds(),
		InFlight:          s.inFlight.Load(),
		Rejected:          s.rejected.Load(),
		Errors:            s.errorCount.Load(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "healthz accepts GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "metrics accepts GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, obs.RenderProm(obs.ServeMetrics("adapipe_serve", s.Stats())))
}

// handlePlan serves POST /v1/plan: parse and validate the request, answer
// from the cache when the canonical hash is known, otherwise coalesce into
// (or lead) the one search for that hash.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	req, hash, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	s.planReqs.Add(1)

	if body, ok := s.cache.Get(hash); ok {
		s.hits.Add(1)
		s.writeResult(w, hash, CacheHit, flightResult{status: http.StatusOK, body: body})
		return
	}

	res, coalesced, err := s.flight.Do(r.Context(), hash, func() flightResult {
		return s.runPlanSearch(req, hash)
	})
	if err != nil {
		// This waiter's own context ended before the leader finished; the
		// leader keeps running for everyone else.
		s.writeError(w, http.StatusGatewayTimeout, "request cancelled while waiting for a coalesced search")
		return
	}
	disposition := CacheMiss
	if coalesced {
		disposition = CacheCoalesced
		s.coalescedCount.Add(1)
	} else if res.status == http.StatusOK {
		s.misses.Add(1)
	}
	s.writeResult(w, hash, disposition, res)
}

// runPlanSearch is the singleflight leader body: admission, the search
// itself, response encoding, cache insertion.
func (s *Server) runPlanSearch(req request.PlanRequest, hash string) flightResult {
	ctx, cancel, admitted := s.admit()
	defer cancel()
	if !admitted {
		s.rejected.Add(1)
		return errResult(http.StatusServiceUnavailable, "admission queue timeout: server at capacity")
	}
	defer s.release()

	start := time.Now()
	plan, err := s.planFn(ctx, req)
	s.searchWallNanos.Add(int64(time.Since(start)))
	if err != nil {
		return s.searchErrResult(ctx, err)
	}
	s.knapsackRuns.Add(int64(plan.Search.KnapsackRuns))
	resp, err := request.NewPlanResponse(req, plan)
	if err != nil {
		return errResult(http.StatusInternalServerError, err.Error())
	}
	body, err := resp.Encode()
	if err != nil {
		return errResult(http.StatusInternalServerError, err.Error())
	}
	s.cache.Put(hash, body)
	return flightResult{status: http.StatusOK, body: body}
}

// handleSimulate serves POST /v1/simulate: the same request schema, planned
// and then executed on the discrete-event simulator under the method's
// pipeline schedule. Simulation output depends on the full outcome (per-
// device series), so it bypasses the plan cache; the admission gate and
// deadline still apply.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, hash, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	s.simReqs.Add(1)

	ctx, cancel, admitted := s.admit()
	defer cancel()
	if !admitted {
		s.rejected.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "admission queue timeout: server at capacity")
		return
	}
	defer s.release()

	meth, err := req.MethodConfig()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := req.ModelConfig()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cl, err := req.ClusterConfig()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.searches.Add(1)
	s.inFlight.Add(1)
	start := time.Now()
	outcome := baseline.EvaluateContext(ctx, meth, cfg, cl, req.Strategy(), req.TrainingConfig(), mustOptions(req, s.cfg.Workers))
	s.searchWallNanos.Add(int64(time.Since(start)))
	s.inFlight.Add(-1)
	if outcome.Err != nil {
		res := s.searchErrResult(ctx, outcome.Err)
		s.writeResult(w, hash, CacheMiss, res)
		return
	}
	if outcome.Plan == nil {
		s.writeError(w, http.StatusUnprocessableEntity, "configuration is infeasible (OOM) under the requested method")
		return
	}
	s.knapsackRuns.Add(int64(outcome.Plan.Search.KnapsackRuns))
	planJSON, err := json.Marshal(outcome.Plan)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := request.SimulateResponse{
		Version:     request.Version,
		RequestHash: hash,
		Method:      meth.Name,
		Schedule:    request.ScheduleName(meth.Schedule),
		IterSec:     outcome.Sim.IterTime,
		BubbleRatio: outcome.Sim.BubbleRatio(),
		PeakBytes:   outcome.Sim.PeakMem,
		OOM:         outcome.OOM,
		Plan:        planJSON,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeResult(w, hash, CacheMiss, flightResult{status: http.StatusOK, body: body})
}

// decodeRequest reads, parses, validates and hashes the request body,
// answering 4xx itself on failure.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (request.PlanRequest, string, bool) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "plan endpoints accept POST only")
		return request.PlanRequest{}, "", false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds 1 MiB")
		} else {
			s.writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return request.PlanRequest{}, "", false
	}
	req, err := request.ParsePlanRequest(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return request.PlanRequest{}, "", false
	}
	hash, err := req.Hash()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return request.PlanRequest{}, "", false
	}
	return req, hash, true
}

// admit acquires an admission slot under a fresh request deadline derived
// from the server's base context (so a shutdown cancels queued waiters too).
// The returned context governs the whole search; cancel must always be
// called. admitted=false means the deadline or shutdown arrived first.
func (s *Server) admit() (ctx context.Context, cancel context.CancelFunc, admitted bool) {
	ctx, cancel = context.WithTimeout(s.base, s.cfg.RequestTimeout)
	select {
	case s.sem <- struct{}{}:
		return ctx, cancel, true
	case <-ctx.Done():
		return ctx, cancel, false
	}
}

func (s *Server) release() { <-s.sem }

// searchPlan is the production planFn: build the planner from the request
// schema and run the context-aware search.
func (s *Server) searchPlan(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
	pl, err := req.NewPlanner(s.cfg.Workers)
	if err != nil {
		return nil, err
	}
	s.searches.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	return pl.PlanContext(ctx)
}

// searchErrResult maps a failed search onto a status: deadline → 504,
// shutdown → 503, anything else (OOM, invalid config the planner rejected) →
// 422.
func (s *Server) searchErrResult(ctx context.Context, err error) flightResult {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errResult(http.StatusGatewayTimeout, "search exceeded the request deadline")
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		return errResult(http.StatusServiceUnavailable, "server shutting down")
	default:
		return errResult(http.StatusUnprocessableEntity, err.Error())
	}
}

// mustOptions builds the method-applied planner options; the request was
// already normalized by decodeRequest, so this cannot fail.
func mustOptions(req request.PlanRequest, workers int) core.Options {
	opts, err := req.Options(workers)
	if err != nil {
		// Unreachable after ParsePlanRequest; fall back to defaults.
		opts = core.DefaultOptions()
		opts.Workers = workers
	}
	return opts
}

func errResult(status int, msg string) flightResult {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	return flightResult{status: status, body: append(body, '\n')}
}

// writeResult emits a search result with the cache-disposition headers. Error
// statuses are counted once here, whichever path produced them.
func (s *Server) writeResult(w http.ResponseWriter, hash, disposition string, res flightResult) {
	if res.status < 200 || res.status >= 300 {
		s.errorCount.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerCache, disposition)
	w.Header().Set(headerHash, hash)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.errorCount.Add(1)
	res := errResult(status, msg)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}
