// Package serve turns the AdaPipe planner into a long-lived service: an HTTP
// JSON API (POST /v1/plan, POST /v1/simulate, POST /v1/replan, POST
// /v1/sweep, GET /v1/trace/{id}, GET /healthz, GET /metrics) over the
// versioned request schema of internal/request. The serving layer amortizes
// plan search across requests the same way §5.3 amortizes knapsack solves
// across ranges inside one search:
//
//   - a bounded LRU cache keyed by the request's canonical hash returns
//     byte-identical responses for repeated searches without re-running the
//     DP;
//   - singleflight coalescing collapses N concurrent identical requests into
//     one search whose result every waiter shares;
//   - a bounded-concurrency admission gate caps simultaneous searches, and
//     each admitted search runs under a deadline threaded down into the
//     parallel search (core.PlanContext / pool.RunContext), so a shutdown or
//     timeout cancels the knapsack fan-out instead of orphaning it;
//   - a shared content-addressed cost store (internal/coststore) sits under
//     every planner the server constructs, so distinct requests of one cost
//     family — a sweep's grid points, a replan's cold seed, repeat plans with
//     different batch sizes — reuse each other's knapsack solves.
//
// Everything observable is deterministic: cached, coalesced and cold
// responses for one request are the same bytes. Every failure, on every
// endpoint, is the canonical request.ErrorResponse envelope with a stable
// machine-readable code.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/coststore"
	"adapipe/internal/obs"
	"adapipe/internal/pool"
	"adapipe/internal/request"
)

// Cache-disposition values of the X-Adapipe-Cache response header.
const (
	// CacheHit marks a response served from the LRU cache.
	CacheHit = "hit"
	// CacheMiss marks a response computed by a fresh search.
	CacheMiss = "miss"
	// CacheCoalesced marks a response shared from another request's
	// concurrently-running search.
	CacheCoalesced = "coalesced"

	headerCache = "X-Adapipe-Cache"
	headerHash  = "X-Adapipe-Request-Hash"
	headerTrace = "X-Adapipe-Trace"

	maxBodyBytes = 1 << 20
)

// Config tunes the serving layer. The zero value selects the defaults.
type Config struct {
	// CacheSize bounds the LRU plan cache in entries (default 256; negative
	// disables caching).
	CacheSize int
	// MaxInFlight bounds concurrently executing searches; further requests
	// queue on the admission gate until a slot frees or their deadline
	// expires (default 2).
	MaxInFlight int
	// RequestTimeout bounds one search end to end, queueing included
	// (default 30s).
	RequestTimeout time.Duration
	// Workers sizes each search's worker pool (default GOMAXPROCS).
	Workers int
	// TraceBuffer bounds the ring of completed request traces served by
	// GET /v1/trace/{id} (default 64; negative disables tracing — requests
	// then run the nil-tracer hot path and carry no X-Adapipe-Trace
	// header).
	TraceBuffer int
	// PlannerStoreSize bounds the warm-planner store behind POST /v1/replan
	// in planners (default 64, minimum 1). Each entry keeps a live planner —
	// its iso-cache and partition-DP memo — so repeat replans for one
	// training run warm-start instead of searching cold.
	PlannerStoreSize int
	// CostStoreSize bounds the shared content-addressed cost store in
	// entries (default 4096; negative disables the store — planners then
	// solve privately and cross-request reuse stops at the response cache).
	CostStoreSize int
	// CostStorePath optionally persists the cost store: an existing snapshot
	// is loaded by New (a missing file is fine; a corrupt one is logged and
	// skipped — the daemon must come up either way), and Close writes the
	// store back before shutdown completes.
	CostStorePath string
	// Clock supplies every timestamp the serving layer takes (trace spans,
	// latency histograms, search-wall counters). Nil selects
	// core.RealClock(); tests inject a fake for deterministic traces.
	Clock obs.Clock
	// Logger receives one structured record per plan/simulate request,
	// carrying the trace ID so log lines join to traces. Nil disables
	// request logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = pool.Default()
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 64
	}
	if c.PlannerStoreSize <= 0 {
		c.PlannerStoreSize = 64
	}
	if c.CostStoreSize == 0 {
		c.CostStoreSize = 4096
	}
	if c.Clock == nil {
		c.Clock = core.RealClock()
	}
	return c
}

// Server is the planner service. Create it with New, expose it via Handler,
// and Close it to cancel in-flight searches on shutdown.
type Server struct {
	cfg      Config
	base     context.Context
	cancel   context.CancelFunc
	sem      chan struct{}
	cache    *lruCache
	flight   *flightGroup
	clock    obs.Clock
	logger   *slog.Logger
	traces   *traceStore
	planners *plannerStore
	// costs is the shared cost store under every planner this server
	// constructs; nil when disabled (CostStoreSize < 0).
	costs *coststore.Store
	// saveOnce makes the Close-time snapshot save idempotent.
	saveOnce sync.Once

	// planFn runs one search; tests substitute it to script timing.
	planFn func(ctx context.Context, req request.PlanRequest) (*core.Plan, error)

	planReqs, simReqs              atomic.Int64
	hits, misses, coalescedCount   atomic.Int64
	searches, rejected, errorCount atomic.Int64
	replanReqs, replanWarm         atomic.Int64
	replanCold, replanAdopted      atomic.Int64
	inFlight                       atomic.Int64
	knapsackRuns                   atomic.Int64
	searchWallNanos                atomic.Int64
	traceSeq                       atomic.Int64
	sweepReqs, sweepPoints         atomic.Int64
	sweepPlanned, sweepDeduped     atomic.Int64
	sweepCached, sweepFailed       atomic.Int64

	// The log-bucketed latency histograms behind /metrics: end-to-end
	// request wall time, cold-search wall, admission-queue wait, and plan-
	// cache lookup time — the four numbers that separate "search is slow"
	// from "server is saturated".
	histRequest obs.Histogram
	histSearch  obs.Histogram
	histQueue   obs.Histogram
	histCache   obs.Histogram
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		base:     base,
		cancel:   cancel,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		cache:    newLRUCache(cfg.CacheSize),
		flight:   newFlightGroup(),
		clock:    cfg.Clock,
		logger:   cfg.Logger,
		traces:   newTraceStore(cfg.TraceBuffer),
		planners: newPlannerStore(cfg.PlannerStoreSize),
	}
	if cfg.CostStoreSize > 0 {
		s.costs = coststore.New(cfg.CostStoreSize)
		if cfg.CostStorePath != "" {
			if err := s.costs.LoadSnapshot(cfg.CostStorePath); err != nil && !os.IsNotExist(err) {
				// A corrupt or incompatible snapshot must not stop the daemon:
				// start cold, log the reason, and overwrite it on Close.
				if cfg.Logger != nil {
					cfg.Logger.Warn("cost store snapshot not loaded", "path", cfg.CostStorePath, "err", err)
				}
			}
		}
	}
	s.planFn = s.searchPlan
	return s
}

// attachStore points a freshly constructed planner at the shared cost store.
// A fingerprint failure just leaves the planner solving privately — plans are
// identical either way, so the error is deliberately dropped.
func (s *Server) attachStore(pl *core.Planner) {
	if s.costs == nil {
		return
	}
	_ = pl.SetCostSource(s.costs)
}

// newTracer mints the tracer of one request, or nil when tracing is
// disabled. Trace IDs are a process-local sequence ("t000001"): they only
// need to be unique within the ring buffer's lifetime, and a deterministic
// sequence keeps smoke tests and log correlation simple.
func (s *Server) newTracer() *obs.Tracer {
	if s.cfg.TraceBuffer <= 0 {
		return nil
	}
	return obs.NewTracer(fmt.Sprintf("t%06d", s.traceSeq.Add(1)), s.clock, 0)
}

// Close cancels the server's base context — queued requests stop waiting for
// admission and running searches unwind through their contexts — and then
// drains the cost store to its snapshot path, if one was configured. Safe to
// call more than once; the snapshot is written once.
func (s *Server) Close() {
	s.cancel()
	s.saveOnce.Do(func() {
		if s.costs == nil || s.cfg.CostStorePath == "" {
			return
		}
		if err := s.costs.SaveSnapshot(s.cfg.CostStorePath); err != nil && s.logger != nil {
			s.logger.Warn("cost store snapshot not saved", "path", s.cfg.CostStorePath, "err", err)
		}
	})
}

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/v1/replan", s.handleReplan)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	return mux
}

// Stats snapshots the serving counters.
func (s *Server) Stats() obs.ServeStats {
	st := obs.ServeStats{
		PlanRequests:       s.planReqs.Load(),
		SimulateRequests:   s.simReqs.Load(),
		CacheHits:          s.hits.Load(),
		CacheMisses:        s.misses.Load(),
		CacheEvictions:     s.cache.Evictions(),
		CacheEntries:       int64(s.cache.Len()),
		Coalesced:          s.coalescedCount.Load(),
		Searches:           s.searches.Load(),
		KnapsackRuns:       s.knapsackRuns.Load(),
		SearchWallSeconds:  time.Duration(s.searchWallNanos.Load()).Seconds(),
		ReplanRequests:     s.replanReqs.Load(),
		ReplanIncremental:  s.replanWarm.Load(),
		ReplanCold:         s.replanCold.Load(),
		ReplanAdopted:      s.replanAdopted.Load(),
		ReplanPlanners:     int64(s.planners.Len()),
		InFlight:           s.inFlight.Load(),
		Rejected:           s.rejected.Load(),
		Errors:             s.errorCount.Load(),
		SweepRequests:      s.sweepReqs.Load(),
		SweepPoints:        s.sweepPoints.Load(),
		SweepPointsPlanned: s.sweepPlanned.Load(),
		SweepPointsDeduped: s.sweepDeduped.Load(),
		SweepPointsCached:  s.sweepCached.Load(),
		SweepPointsFailed:  s.sweepFailed.Load(),
	}
	if s.costs != nil {
		cs := s.costs.StatsSnapshot()
		st.CostStoreEntries = cs.Entries
		st.CostStoreHits = cs.Hits
		st.CostStoreMisses = cs.Misses
		st.CostStoreShared = cs.Shared
		st.CostStoreEvictions = cs.Evictions
	}
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, request.ErrCodeMethodNotAllowed, "healthz accepts GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, request.ErrCodeMethodNotAllowed, "metrics accepts GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, obs.RenderProm(obs.ServeMetrics("adapipe_serve", s.Stats())))
	fmt.Fprint(w, obs.RenderPromHistogram("adapipe_serve_request_seconds",
		"End-to-end plan/simulate request latency.", s.histRequest.Snapshot()))
	fmt.Fprint(w, obs.RenderPromHistogram("adapipe_serve_search_seconds",
		"Planner search wall time per cold request.", s.histSearch.Snapshot()))
	fmt.Fprint(w, obs.RenderPromHistogram("adapipe_serve_queue_seconds",
		"Admission-gate queue wait per search.", s.histQueue.Snapshot()))
	fmt.Fprint(w, obs.RenderPromHistogram("adapipe_serve_cache_lookup_seconds",
		"Plan-cache lookup latency.", s.histCache.Snapshot()))
}

// handleTrace serves GET /v1/trace/{id}: the stored trace of a recent
// request, rendered as Chrome trace-event JSON. Repeated fetches of one id
// return byte-identical documents (the trace is immutable once stored and
// the renderer's ordering is deterministic).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, request.ErrCodeMethodNotAllowed, "trace accepts GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	tr, ok := s.traces.Get(id)
	if id == "" || !ok {
		s.writeError(w, http.StatusNotFound, request.ErrCodeNotFound, "unknown trace id (the ring keeps the most recent traces only)")
		return
	}
	body, err := tr.Chrome()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, request.ErrCodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handlePlan serves POST /v1/plan: parse and validate the request, answer
// from the cache when the canonical hash is known, otherwise coalesce into
// (or lead) the one search for that hash. Every request runs under a tracer
// whose id comes back in X-Adapipe-Trace; the trace is stored in the ring
// BEFORE the response is written, so a client that fetches /v1/trace/{id}
// the moment it sees the response always finds it.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	tr := s.newTracer()
	reqStart := s.clock()
	hash, disposition, res := s.planResult(w, r, tr)
	reqEnd := s.clock()
	tr.Add("request", obs.CatRequest, 0, reqStart, reqEnd)
	s.histRequest.Observe(reqEnd.Sub(reqStart))
	s.traces.Put(tr)
	if id := tr.ID(); id != "" {
		w.Header().Set(headerTrace, id)
	}
	s.writeResult(w, hash, disposition, res)
	s.logRequest(r, tr.ID(), hash, disposition, res.status, reqEnd.Sub(reqStart))
}

// planResult runs a plan request through its phases — decode, cache lookup,
// coalesced search — recording one CatPhase span per phase. An empty
// disposition means the failure happened before (or instead of) a
// cache-classified outcome and no X-Adapipe-Cache header applies.
func (s *Server) planResult(w http.ResponseWriter, r *http.Request, tr *obs.Tracer) (hash, disposition string, res flightResult) {
	decStart := s.clock()
	req, hash, herr := s.parsePlanRequest(w, r)
	tr.Add("decode", obs.CatPhase, 0, decStart, s.clock())
	if herr != nil {
		return hash, "", errResult(herr.status, herr.code, herr.msg)
	}
	s.planReqs.Add(1)

	lookStart := s.clock()
	body, cached := s.cache.Get(hash)
	lookEnd := s.clock()
	tr.Add("cache", obs.CatPhase, 0, lookStart, lookEnd)
	s.histCache.Observe(lookEnd.Sub(lookStart))
	if cached {
		s.hits.Add(1)
		return hash, CacheHit, flightResult{status: http.StatusOK, body: body}
	}

	flightStart := s.clock()
	fres, coalesced, err := s.flight.Do(r.Context(), hash, func() flightResult {
		return s.runPlanSearch(req, hash, tr)
	})
	if err != nil {
		// This waiter's own context ended before the leader finished; the
		// leader keeps running for everyone else.
		return hash, "", errResult(http.StatusGatewayTimeout, request.ErrCodeTimeout, "request cancelled while waiting for a coalesced search")
	}
	if coalesced {
		// The search ran under the leader's trace; this request only
		// waited, and that wait is its whole story.
		tr.Add("coalesce", obs.CatPhase, 0, flightStart, s.clock())
		s.coalescedCount.Add(1)
		return hash, CacheCoalesced, fres
	}
	if fres.status == http.StatusOK {
		s.misses.Add(1)
	}
	return hash, CacheMiss, fres
}

// runPlanSearch is the singleflight leader body: admission, the search
// itself, response encoding, cache insertion. The leader's tracer rides the
// search context down through core.PlanContext to the knapsack solvers.
func (s *Server) runPlanSearch(req request.PlanRequest, hash string, tr *obs.Tracer) flightResult {
	qStart := s.clock()
	ctx, cancel, admitted := s.admit()
	defer cancel()
	qEnd := s.clock()
	tr.Add("queue", obs.CatPhase, 0, qStart, qEnd)
	s.histQueue.Observe(qEnd.Sub(qStart))
	if !admitted {
		s.rejected.Add(1)
		return s.admissionErrResult()
	}
	defer s.release()

	searchStart := s.clock()
	plan, err := s.planFn(obs.WithTracer(ctx, tr), req)
	searchEnd := s.clock()
	tr.Add("search", obs.CatPhase, 0, searchStart, searchEnd)
	s.histSearch.Observe(searchEnd.Sub(searchStart))
	s.searchWallNanos.Add(int64(searchEnd.Sub(searchStart)))
	if err != nil {
		return s.searchErrResult(ctx, err)
	}
	s.knapsackRuns.Add(int64(plan.Search.KnapsackRuns))
	encStart := s.clock()
	resp, err := request.NewPlanResponse(req, plan)
	if err != nil {
		return errResult(http.StatusInternalServerError, request.ErrCodeInternal, err.Error())
	}
	body, err := resp.Encode()
	if err != nil {
		return errResult(http.StatusInternalServerError, request.ErrCodeInternal, err.Error())
	}
	s.cache.Put(hash, body)
	tr.Add("encode", obs.CatPhase, 0, encStart, s.clock())
	return flightResult{status: http.StatusOK, body: body}
}

// handleSimulate serves POST /v1/simulate: the same request schema, planned
// and then executed on the discrete-event simulator under the method's
// pipeline schedule. Simulation output depends on the full outcome (per-
// device series), so it bypasses the plan cache; the admission gate and
// deadline still apply. Traced like /v1/plan: phase spans, a stored trace,
// and an X-Adapipe-Trace header.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	tr := s.newTracer()
	reqStart := s.clock()
	hash, disposition, res := s.simResult(w, r, tr)
	reqEnd := s.clock()
	tr.Add("request", obs.CatRequest, 0, reqStart, reqEnd)
	s.histRequest.Observe(reqEnd.Sub(reqStart))
	s.traces.Put(tr)
	if id := tr.ID(); id != "" {
		w.Header().Set(headerTrace, id)
	}
	s.writeResult(w, hash, disposition, res)
	s.logRequest(r, tr.ID(), hash, disposition, res.status, reqEnd.Sub(reqStart))
}

// simResult runs a simulate request through its phases (decode, queue,
// search, encode), recording one CatPhase span per phase.
func (s *Server) simResult(w http.ResponseWriter, r *http.Request, tr *obs.Tracer) (hash, disposition string, res flightResult) {
	decStart := s.clock()
	req, hash, herr := s.parsePlanRequest(w, r)
	tr.Add("decode", obs.CatPhase, 0, decStart, s.clock())
	if herr != nil {
		return hash, "", errResult(herr.status, herr.code, herr.msg)
	}
	s.simReqs.Add(1)

	qStart := s.clock()
	ctx, cancel, admitted := s.admit()
	defer cancel()
	qEnd := s.clock()
	tr.Add("queue", obs.CatPhase, 0, qStart, qEnd)
	s.histQueue.Observe(qEnd.Sub(qStart))
	if !admitted {
		s.rejected.Add(1)
		return hash, "", s.admissionErrResult()
	}
	defer s.release()

	meth, err := req.MethodConfig()
	if err != nil {
		return hash, "", errResult(http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error())
	}
	cfg, err := req.ModelConfig()
	if err != nil {
		return hash, "", errResult(http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error())
	}
	cl, err := req.ClusterConfig()
	if err != nil {
		return hash, "", errResult(http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error())
	}
	s.searches.Add(1)
	s.inFlight.Add(1)
	searchStart := s.clock()
	outcome := baseline.EvaluateContext(obs.WithTracer(ctx, tr), meth, cfg, cl, req.Strategy(), req.TrainingConfig(), mustOptions(req, s.cfg.Workers))
	searchEnd := s.clock()
	tr.Add("search", obs.CatPhase, 0, searchStart, searchEnd)
	s.histSearch.Observe(searchEnd.Sub(searchStart))
	s.searchWallNanos.Add(int64(searchEnd.Sub(searchStart)))
	s.inFlight.Add(-1)
	if outcome.Err != nil {
		return hash, CacheMiss, s.searchErrResult(ctx, outcome.Err)
	}
	if outcome.Plan == nil {
		return hash, "", errResult(http.StatusUnprocessableEntity, request.ErrCodeInfeasible, "configuration is infeasible (OOM) under the requested method")
	}
	s.knapsackRuns.Add(int64(outcome.Plan.Search.KnapsackRuns))
	encStart := s.clock()
	planJSON, err := json.Marshal(outcome.Plan)
	if err != nil {
		return hash, "", errResult(http.StatusInternalServerError, request.ErrCodeInternal, err.Error())
	}
	resp := request.SimulateResponse{
		ResponseEnvelope: request.ResponseEnvelope{
			Version:     request.Version,
			RequestHash: hash,
			Method:      meth.Name,
		},
		Schedule:    request.ScheduleName(meth.Schedule),
		IterSec:     outcome.Sim.IterTime,
		BubbleRatio: outcome.Sim.BubbleRatio(),
		PeakBytes:   outcome.Sim.PeakMem,
		OOM:         outcome.OOM,
		Plan:        planJSON,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return hash, "", errResult(http.StatusInternalServerError, request.ErrCodeInternal, err.Error())
	}
	tr.Add("encode", obs.CatPhase, 0, encStart, s.clock())
	return hash, CacheMiss, flightResult{status: http.StatusOK, body: body}
}

// httpError carries a failure's HTTP mapping out of the phase helpers: the
// status, the stable machine-readable code of the canonical error envelope,
// and the human-readable message.
type httpError struct {
	status int
	code   string
	msg    string
}

// readRequestBody reads a bounded request body (w is needed by MaxBytesReader to
// arm connection close on overflow).
func readRequestBody(w http.ResponseWriter, r *http.Request) ([]byte, *httpError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{http.StatusRequestEntityTooLarge, request.ErrCodePayloadTooLarge, "request body exceeds 1 MiB"}
		}
		return nil, &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, "reading request body: " + err.Error()}
	}
	return body, nil
}

// parsePlanRequest reads, parses, validates and hashes the request body.
func (s *Server) parsePlanRequest(w http.ResponseWriter, r *http.Request) (request.PlanRequest, string, *httpError) {
	if r.Method != http.MethodPost {
		return request.PlanRequest{}, "", &httpError{http.StatusMethodNotAllowed, request.ErrCodeMethodNotAllowed, "plan endpoints accept POST only"}
	}
	body, herr := readRequestBody(w, r)
	if herr != nil {
		return request.PlanRequest{}, "", herr
	}
	req, err := request.ParsePlanRequest(body)
	if err != nil {
		return request.PlanRequest{}, "", &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error()}
	}
	hash, err := req.Hash()
	if err != nil {
		return request.PlanRequest{}, "", &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error()}
	}
	return req, hash, nil
}

// logRequest emits one structured record per request. The trace ID is the
// join key: a slow request in the log leads straight to its span breakdown
// via /v1/trace/{id}.
func (s *Server) logRequest(r *http.Request, id, hash, disposition string, status int, dur time.Duration) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("trace", id),
		slog.String("hash", hash),
		slog.String("cache", disposition),
		slog.Int("status", status),
		slog.Duration("dur", dur),
	)
}

// admit acquires an admission slot under a fresh request deadline derived
// from the server's base context (so a shutdown cancels queued waiters too).
// The returned context governs the whole search; cancel must always be
// called. admitted=false means the deadline or shutdown arrived first.
func (s *Server) admit() (ctx context.Context, cancel context.CancelFunc, admitted bool) {
	ctx, cancel = context.WithTimeout(s.base, s.cfg.RequestTimeout)
	select {
	case s.sem <- struct{}{}:
		return ctx, cancel, true
	case <-ctx.Done():
		return ctx, cancel, false
	}
}

func (s *Server) release() { <-s.sem }

// searchPlan is the production planFn: build the planner from the request
// schema, point it at the shared cost store, and run the context-aware
// search.
func (s *Server) searchPlan(ctx context.Context, req request.PlanRequest) (*core.Plan, error) {
	pl, err := req.NewPlanner(s.cfg.Workers)
	if err != nil {
		return nil, err
	}
	s.attachStore(pl)
	s.searches.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	return pl.PlanContext(ctx)
}

// searchErr maps a failed search onto a status and canonical code: deadline →
// 504 timeout, shutdown → 503 shutting_down, anything else (OOM, invalid
// config the planner rejected) → 422 infeasible.
func (s *Server) searchErr(ctx context.Context, err error) *httpError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &httpError{http.StatusGatewayTimeout, request.ErrCodeTimeout, "search exceeded the request deadline"}
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		return &httpError{http.StatusServiceUnavailable, request.ErrCodeShuttingDown, "server shutting down"}
	default:
		return &httpError{http.StatusUnprocessableEntity, request.ErrCodeInfeasible, err.Error()}
	}
}

// searchErrResult is searchErr rendered as a ready-to-write flightResult.
func (s *Server) searchErrResult(ctx context.Context, err error) flightResult {
	he := s.searchErr(ctx, err)
	return errResult(he.status, he.code, he.msg)
}

// admissionErrResult maps an admission failure onto its canonical code: a
// shutdown cancels queued waiters (shutting_down), everything else is the
// queue deadline expiring under load (over_capacity). Both map to 503.
func (s *Server) admissionErrResult() flightResult {
	if s.base.Err() != nil {
		return errResult(http.StatusServiceUnavailable, request.ErrCodeShuttingDown, "server shutting down")
	}
	return errResult(http.StatusServiceUnavailable, request.ErrCodeOverCapacity, "admission queue timeout: server at capacity")
}

// mustOptions builds the method-applied planner options; the request was
// already normalized by decodeRequest, so this cannot fail.
func mustOptions(req request.PlanRequest, workers int) core.Options {
	opts, err := req.Options(workers)
	if err != nil {
		// Unreachable after ParsePlanRequest; fall back to defaults.
		opts = core.DefaultOptions()
		opts.Workers = workers
	}
	return opts
}

// errResult builds a failed flightResult carrying the canonical error
// envelope {"error": {"code", "message", "status"}} — the one failure shape
// every /v1/* endpoint speaks.
func errResult(status int, code, msg string) flightResult {
	return flightResult{status: status, body: request.NewErrorResponse(code, msg, status).Encode()}
}

// writeResult emits a search result with the cache-disposition headers
// (omitted when the failure preceded hashing or cache classification). Error
// statuses are counted once here, whichever path produced them.
func (s *Server) writeResult(w http.ResponseWriter, hash, disposition string, res flightResult) {
	if res.status < 200 || res.status >= 300 {
		s.errorCount.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	if disposition != "" {
		w.Header().Set(headerCache, disposition)
	}
	if hash != "" {
		w.Header().Set(headerHash, hash)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.errorCount.Add(1)
	res := errResult(status, code, msg)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}
