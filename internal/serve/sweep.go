package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"

	"adapipe/internal/obs"
	"adapipe/internal/request"
)

// handleSweep serves POST /v1/sweep: one request, a server-side grid of plan
// searches. The sweep is where the shared cost store earns its keep — grid
// points of one cost family (say a global-batch axis) differ only in the
// partition DP, so every point after the first answers its knapsack lookups
// from the store and the whole grid costs barely more knapsack work than a
// single point (asserted by servesmoke against /metrics).
//
// Sweeps ride the same machinery as single plans: the whole sweep is cached
// and coalesced under the sweep's own canonical hash, each point's plan
// response is cached under the point's hash (so /v1/plan and /v1/sweep feed
// each other's caches), and the sweep holds exactly one admission slot for
// its whole run — a 256-point sweep cannot starve interactive requests any
// harder than one slow plan.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	tr := s.newTracer()
	reqStart := s.clock()
	hash, disposition, res := s.sweepResult(w, r, tr)
	reqEnd := s.clock()
	tr.Add("request", obs.CatRequest, 0, reqStart, reqEnd)
	s.histRequest.Observe(reqEnd.Sub(reqStart))
	s.traces.Put(tr)
	if id := tr.ID(); id != "" {
		w.Header().Set(headerTrace, id)
	}
	s.writeResult(w, hash, disposition, res)
	s.logRequest(r, tr.ID(), hash, disposition, res.status, reqEnd.Sub(reqStart))
}

// sweepResult runs a sweep request through its phases — decode, cache
// lookup, coalesced grid run — mirroring planResult.
func (s *Server) sweepResult(w http.ResponseWriter, r *http.Request, tr *obs.Tracer) (hash, disposition string, res flightResult) {
	decStart := s.clock()
	req, hash, herr := s.parseSweepRequest(w, r)
	tr.Add("decode", obs.CatPhase, 0, decStart, s.clock())
	if herr != nil {
		return hash, "", errResult(herr.status, herr.code, herr.msg)
	}
	s.sweepReqs.Add(1)

	lookStart := s.clock()
	body, cached := s.cache.Get(hash)
	lookEnd := s.clock()
	tr.Add("cache", obs.CatPhase, 0, lookStart, lookEnd)
	s.histCache.Observe(lookEnd.Sub(lookStart))
	if cached {
		s.hits.Add(1)
		return hash, CacheHit, flightResult{status: http.StatusOK, body: body}
	}

	flightStart := s.clock()
	fres, coalesced, err := s.flight.Do(r.Context(), hash, func() flightResult {
		return s.runSweep(req, hash, tr)
	})
	if err != nil {
		return hash, "", errResult(http.StatusGatewayTimeout, request.ErrCodeTimeout, "request cancelled while waiting for a coalesced sweep")
	}
	if coalesced {
		tr.Add("coalesce", obs.CatPhase, 0, flightStart, s.clock())
		s.coalescedCount.Add(1)
		return hash, CacheCoalesced, fres
	}
	if fres.status == http.StatusOK {
		s.misses.Add(1)
	}
	return hash, CacheMiss, fres
}

// runSweep is the singleflight leader body: admission (one slot for the
// whole grid), point-by-point planning with dedup and response-cache reuse,
// ranking, encoding, cache insertion. A deadline or shutdown mid-grid fails
// the whole sweep — the cost store's entries are complete-or-absent, so an
// aborted sweep leaves it clean.
func (s *Server) runSweep(req request.SweepRequest, hash string, tr *obs.Tracer) flightResult {
	qStart := s.clock()
	ctx, cancel, admitted := s.admit()
	defer cancel()
	qEnd := s.clock()
	tr.Add("queue", obs.CatPhase, 0, qStart, qEnd)
	s.histQueue.Observe(qEnd.Sub(qStart))
	if !admitted {
		s.rejected.Add(1)
		return s.admissionErrResult()
	}
	defer s.release()

	points, err := req.Expand()
	if err != nil {
		// Unreachable after ParseSweepRequest normalized the sweep.
		return errResult(http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error())
	}
	s.sweepPoints.Add(int64(len(points)))

	results := make([]request.SweepPointResult, len(points))
	var stats request.SweepStats
	stats.Points = len(points)
	// seen maps a point's canonical hash to the first result computed for it;
	// duplicate grid points copy that result instead of planning again.
	seen := make(map[string]*request.SweepPointResult, len(points))
	for i, pt := range points {
		if ctx.Err() != nil {
			return s.searchErrResult(ctx, ctx.Err())
		}
		ptStart := s.clock()
		results[i] = s.sweepPoint(ctx, i, pt, seen, &stats)
		tr.Add(fmt.Sprintf("point[%03d]", i), obs.CatPhase, 0, ptStart, s.clock())
		if results[i].Error != nil && ctx.Err() != nil {
			// The point failed because the sweep's context ended; report the
			// cancellation, not a half-built grid.
			return s.searchErrResult(ctx, ctx.Err())
		}
	}
	s.sweepPlanned.Add(int64(stats.Planned))
	s.sweepDeduped.Add(int64(stats.Deduped))
	s.sweepCached.Add(int64(stats.Cached))
	s.sweepFailed.Add(int64(stats.Failed))

	encStart := s.clock()
	resp := request.SweepResponse{
		ResponseEnvelope: request.ResponseEnvelope{
			Version:     request.Version,
			RequestHash: hash,
			Method:      req.Base.Method,
		},
		Points:  results,
		Ranking: rankPoints(results, req.TopK),
		Stats:   stats,
	}
	body, err := resp.Encode()
	if err != nil {
		return errResult(http.StatusInternalServerError, request.ErrCodeInternal, err.Error())
	}
	s.cache.Put(hash, body)
	tr.Add("encode", obs.CatPhase, 0, encStart, s.clock())
	return flightResult{status: http.StatusOK, body: body}
}

// sweepPoint resolves one grid point: normalize, dedup against earlier
// points, consult the response cache, and only then run a fresh search. Every
// failure is a per-point canonical error — one infeasible combination never
// sinks the rest of the grid.
func (s *Server) sweepPoint(ctx context.Context, i int, pt request.PlanRequest, seen map[string]*request.SweepPointResult, stats *request.SweepStats) request.SweepPointResult {
	res := request.SweepPointResult{Index: i, Request: pt}
	np, err := pt.Normalize()
	if err != nil {
		stats.Failed++
		res.Error = &request.ErrorInfo{Code: request.ErrCodeInvalidRequest, Message: err.Error(), Status: http.StatusBadRequest}
		return res
	}
	ptHash, err := np.Hash()
	if err != nil {
		stats.Failed++
		res.Error = &request.ErrorInfo{Code: request.ErrCodeInvalidRequest, Message: err.Error(), Status: http.StatusBadRequest}
		return res
	}
	res.RequestHash = ptHash

	if first, dup := seen[ptHash]; dup {
		if first.Error != nil {
			stats.Failed++
		} else {
			stats.Deduped++
		}
		res.IterSec, res.Plan, res.Error = first.IterSec, first.Plan, first.Error
		return res
	}

	if body, cached := s.cache.Get(ptHash); cached {
		if pr, err := request.ParsePlanResponse(body); err == nil {
			s.hits.Add(1)
			stats.Cached++
			res.Plan = pr.Plan
			res.IterSec, _ = request.PlanIterSec(pr.Plan)
			seen[ptHash] = &res
			return res
		}
	}

	plan, err := s.planFn(ctx, np)
	if err != nil {
		he := s.searchErr(ctx, err)
		stats.Failed++
		res.Error = &request.ErrorInfo{Code: he.code, Message: he.msg, Status: he.status}
		seen[ptHash] = &res
		return res
	}
	stats.Planned++
	s.knapsackRuns.Add(int64(plan.Search.KnapsackRuns))
	pr, err := request.NewPlanResponse(np, plan)
	if err != nil {
		stats.Failed++
		res.Error = &request.ErrorInfo{Code: request.ErrCodeInternal, Message: err.Error(), Status: http.StatusInternalServerError}
		seen[ptHash] = &res
		return res
	}
	if body, err := pr.Encode(); err == nil {
		// Feed the point's plan response into the shared cache: a later
		// /v1/plan for this exact point is a byte-identical cache hit.
		s.cache.Put(ptHash, body)
	}
	res.Plan = pr.Plan
	res.IterSec, _ = request.PlanIterSec(pr.Plan)
	seen[ptHash] = &res
	return res
}

// rankPoints orders the feasible points by ascending modeled iteration time,
// ties broken by expansion index, truncated to topK when topK > 0.
func rankPoints(results []request.SweepPointResult, topK int) []int {
	ranking := make([]int, 0, len(results))
	for i := range results {
		if results[i].Error == nil {
			ranking = append(ranking, i)
		}
	}
	sort.SliceStable(ranking, func(a, b int) bool {
		ra, rb := results[ranking[a]], results[ranking[b]]
		if ra.IterSec != rb.IterSec {
			return ra.IterSec < rb.IterSec
		}
		return ra.Index < rb.Index
	})
	if topK > 0 && len(ranking) > topK {
		ranking = ranking[:topK]
	}
	return ranking
}

// parseSweepRequest reads, parses, validates and hashes the sweep body.
func (s *Server) parseSweepRequest(w http.ResponseWriter, r *http.Request) (request.SweepRequest, string, *httpError) {
	if r.Method != http.MethodPost {
		return request.SweepRequest{}, "", &httpError{http.StatusMethodNotAllowed, request.ErrCodeMethodNotAllowed, "sweep accepts POST only"}
	}
	body, herr := readRequestBody(w, r)
	if herr != nil {
		return request.SweepRequest{}, "", herr
	}
	req, err := request.ParseSweepRequest(body)
	if err != nil {
		return request.SweepRequest{}, "", &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error()}
	}
	hash, err := req.Hash()
	if err != nil {
		return request.SweepRequest{}, "", &httpError{http.StatusBadRequest, request.ErrCodeInvalidRequest, err.Error()}
	}
	return req, hash, nil
}
