package serve

import (
	"fmt"
	"reflect"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes the least recently used.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (least recently used)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	// Refreshing an existing key must not evict.
	c.Put("k2", []byte{42})
	if got, _ := c.Get("k2"); got[0] != 42 {
		t.Fatal("refresh did not replace the value")
	}
	if c.Len() != 3 || c.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d after refresh, want 3 and 1", c.Len(), c.Evictions())
	}
	// MRU-first order is observable.
	if want := []string{"k2", "k3", "k0"}; !reflect.DeepEqual(c.Keys(), want) {
		t.Fatalf("keys = %v, want %v", c.Keys(), want)
	}
}

func TestLRUSequentialEvictionIsFIFO(t *testing.T) {
	c := newLRUCache(2)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), nil)
	}
	if want := []string{"k4", "k3"}; !reflect.DeepEqual(c.Keys(), want) {
		t.Fatalf("keys = %v, want %v", c.Keys(), want)
	}
	if c.Evictions() != 3 {
		t.Fatalf("evictions = %d, want 3", c.Evictions())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.Put("k", []byte{1})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache reports entries")
	}
}
