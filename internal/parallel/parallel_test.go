package parallel

import (
	"testing"
	"testing/quick"
)

func TestEnumerateCoversDevices(t *testing.T) {
	for _, devices := range []int{8, 32, 64, 256} {
		for _, s := range Enumerate(devices, DefaultConstraint()) {
			if s.Devices() != devices {
				t.Errorf("strategy %s covers %d devices, want %d", s, s.Devices(), devices)
			}
			if s.TP > 8 {
				t.Errorf("strategy %s violates TP <= 8", s)
			}
			if s.PP < 2 {
				t.Errorf("strategy %s violates PP >= 2", s)
			}
		}
	}
}

func TestEnumeratePowersOfTwo(t *testing.T) {
	isPow := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	for _, s := range Enumerate(64, Constraint{}) {
		if !isPow(s.TP) || !isPow(s.PP) || !isPow(s.DP) {
			t.Errorf("strategy %s has non-power-of-two component", s)
		}
	}
}

func TestEnumerateKnownStrategies(t *testing.T) {
	got := map[string]bool{}
	for _, s := range Enumerate(64, DefaultConstraint()) {
		got[s.String()] = true
	}
	// The Table 3 strategies must all appear.
	for _, want := range []string{"(1, 32, 2)", "(2, 16, 2)", "(2, 32, 1)", "(4, 8, 2)", "(4, 16, 1)", "(8, 4, 2)", "(8, 8, 1)"} {
		if !got[want] {
			t.Errorf("Enumerate(64) missing %s; got %v", want, got)
		}
	}
}

func TestEnumerateSorted(t *testing.T) {
	ss := Enumerate(64, Constraint{})
	for i := 1; i < len(ss); i++ {
		a, b := ss[i-1], ss[i]
		if a.TP > b.TP || (a.TP == b.TP && a.PP > b.PP) {
			t.Fatalf("strategies not sorted: %s before %s", a, b)
		}
	}
}

func TestEnumerateConstraints(t *testing.T) {
	for _, s := range Enumerate(64, Constraint{MaxTP: 2, MinPP: 4, MaxPP: 8}) {
		if s.TP > 2 || s.PP < 4 || s.PP > 8 {
			t.Errorf("strategy %s violates constraint", s)
		}
	}
	if got := Enumerate(64, Constraint{LayerCount: 4}); len(got) == 0 {
		t.Fatal("layer-count constraint eliminated everything")
	} else {
		for _, s := range got {
			if s.PP > 4 {
				t.Errorf("strategy %s exceeds layer count 4", s)
			}
		}
	}
	if got := Enumerate(0, Constraint{}); got != nil {
		t.Errorf("Enumerate(0) = %v, want nil", got)
	}
}

func TestEnumerateProductProperty(t *testing.T) {
	f := func(k uint8) bool {
		devices := 1 << (k % 10) // 1..512
		for _, s := range Enumerate(devices, Constraint{}) {
			if s.Devices() != devices {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMicroBatches(t *testing.T) {
	c := Config{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096}
	n, err := c.MicroBatches(Strategy{TP: 8, PP: 8, DP: 2})
	if err != nil || n != 64 {
		t.Fatalf("MicroBatches = %d, %v; want 64, nil", n, err)
	}
	if _, err := c.MicroBatches(Strategy{TP: 1, PP: 1, DP: 3}); err == nil {
		t.Error("non-divisible batch accepted")
	}
	bad := Config{GlobalBatch: 0, MicroBatch: 1}
	if _, err := bad.MicroBatches(Strategy{TP: 1, PP: 1, DP: 1}); err == nil {
		t.Error("zero global batch accepted")
	}
	bad = Config{GlobalBatch: 8, MicroBatch: 0}
	if _, err := bad.MicroBatches(Strategy{TP: 1, PP: 1, DP: 1}); err == nil {
		t.Error("zero micro batch accepted")
	}
}

func TestStrategyValidate(t *testing.T) {
	if err := (Strategy{TP: 1, PP: 1, DP: 1}).Validate(); err != nil {
		t.Errorf("minimal strategy rejected: %v", err)
	}
	for _, s := range []Strategy{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 2, 2}} {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid strategy %s accepted", s)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if got := (Strategy{TP: 4, PP: 8, DP: 2}).String(); got != "(4, 8, 2)" {
		t.Errorf("String = %q", got)
	}
}
