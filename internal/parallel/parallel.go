// Package parallel describes 3D parallelism strategies — tensor (TP), pipeline
// (PP) and data (DP) parallelism — and enumerates the candidate strategies the
// evaluation sweeps over (paper §7.1, Table 3).
package parallel

import (
	"fmt"
	"sort"
)

// Strategy is a 3D parallelism configuration. The paper requires the same
// tensor- and data-parallel size for every pipeline stage, so a single triple
// describes the whole job.
type Strategy struct {
	// TP is the tensor-parallel size (intra-node; paper caps it at 8).
	TP int
	// PP is the pipeline-parallel size (number of stages).
	PP int
	// DP is the data-parallel size (with ZeRO-1).
	DP int
}

// Devices returns the number of accelerators the strategy occupies.
func (s Strategy) Devices() int { return s.TP * s.PP * s.DP }

// String formats the strategy as the paper's "(t, p, d)" tuples.
func (s Strategy) String() string { return fmt.Sprintf("(%d, %d, %d)", s.TP, s.PP, s.DP) }

// Validate reports whether the strategy is well formed.
func (s Strategy) Validate() error {
	if s.TP < 1 || s.PP < 1 || s.DP < 1 {
		return fmt.Errorf("parallel: all of TP, PP, DP must be >= 1, got %s", s)
	}
	return nil
}

// Config captures the training-job parameters that interact with the
// parallelism strategy.
type Config struct {
	// GlobalBatch is the number of samples per iteration across the job.
	GlobalBatch int
	// MicroBatch is the per-micro-batch sample count (1 in all paper runs).
	MicroBatch int
	// SeqLen is the sequence length in tokens.
	SeqLen int
}

// MicroBatches returns n, the number of micro-batches one data-parallel
// replica processes per iteration, or an error when the batch does not divide
// evenly.
func (c Config) MicroBatches(s Strategy) (int, error) {
	if c.MicroBatch <= 0 || c.GlobalBatch <= 0 {
		return 0, fmt.Errorf("parallel: batch sizes must be positive (global=%d micro=%d)", c.GlobalBatch, c.MicroBatch)
	}
	per := c.MicroBatch * s.DP
	if c.GlobalBatch%per != 0 {
		return 0, fmt.Errorf("parallel: global batch %d not divisible by micro batch %d x DP %d", c.GlobalBatch, c.MicroBatch, s.DP)
	}
	return c.GlobalBatch / per, nil
}

// Constraint restricts the strategy enumeration.
type Constraint struct {
	// MaxTP caps the tensor-parallel size (8 in the paper: TP must stay
	// inside one node).
	MaxTP int
	// MinPP requires at least this many pipeline stages.
	MinPP int
	// MaxPP caps the number of pipeline stages.
	MaxPP int
	// LayerCount, when non-zero, rejects strategies whose PP exceeds the
	// number of partitionable layers.
	LayerCount int
}

// DefaultConstraint mirrors the paper's search space: TP ≤ 8 and at least
// two pipeline stages so pipeline parallelism is actually exercised.
func DefaultConstraint() Constraint { return Constraint{MaxTP: 8, MinPP: 2} }

// Enumerate returns every strategy with TP*PP*DP == devices satisfying the
// constraint, ordered by (TP, PP, DP). TP, PP and DP are restricted to powers
// of two, matching the configurations real frameworks accept for these models.
func Enumerate(devices int, c Constraint) []Strategy {
	if devices <= 0 {
		return nil
	}
	maxTP := c.MaxTP
	if maxTP <= 0 {
		maxTP = devices
	}
	var out []Strategy
	for tp := 1; tp <= maxTP && tp <= devices; tp *= 2 {
		if devices%tp != 0 {
			continue
		}
		rest := devices / tp
		for pp := 1; pp <= rest; pp *= 2 {
			if rest%pp != 0 {
				continue
			}
			dp := rest / pp
			if !isPow2(dp) {
				continue
			}
			s := Strategy{TP: tp, PP: pp, DP: dp}
			if c.MinPP > 0 && pp < c.MinPP {
				continue
			}
			if c.MaxPP > 0 && pp > c.MaxPP {
				continue
			}
			if c.LayerCount > 0 && pp > c.LayerCount {
				continue
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TP != out[j].TP {
			return out[i].TP < out[j].TP
		}
		if out[i].PP != out[j].PP {
			return out[i].PP < out[j].PP
		}
		return out[i].DP < out[j].DP
	})
	return out
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }
