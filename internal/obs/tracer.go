package obs

import (
	"context"
	"sync"
	"time"

	"adapipe/internal/trace"
)

// Clock supplies wall-clock readings. Every component on the serving and
// search paths that needs a timestamp — the request tracer, the latency
// histograms, the planner's SearchStats effort counters — takes an injected
// Clock instead of calling time.Now directly, so tests can drive spans and
// wall counters off a deterministic fake. core.RealClock is the single place
// the process constructs the real clock.
type Clock func() time.Time

// Span category values. Categories let a consumer reason about a trace
// without reconstructing the parent tree: exactly one CatRequest span bounds
// the request, the CatPhase spans partition it (their durations summed
// against the root is the trace's coverage of the request wall time), and
// CatSearch/CatSolve spans are nested detail inside the "search" phase.
const (
	// CatRequest marks the root span covering one whole request.
	CatRequest = "request"
	// CatPhase marks a top-level request phase (decode, cache, queue,
	// search, simulate, encode, coalesce). Phases are disjoint: their
	// summed duration is the accounted share of the request wall time.
	CatPhase = "phase"
	// CatSearch marks a search sub-phase inside the planner (knapsack
	// prefill, result merge, partition DP, stage assembly).
	CatSearch = "search"
	// CatSolve marks one knapsack solve inside the prefill fan-out. Solve
	// spans are the only category subject to the tracer's span limit:
	// when the limit is reached further solves are counted as dropped
	// rather than recorded, so the structural spans always survive.
	CatSolve = "solve"
)

// TraceSpan is one completed interval of a request-scoped trace. (Span is
// taken by the pipeline-op recorder; the two record different worlds — op
// spans are simulated execution, trace spans are real request time.) Start
// and End are offsets from the trace origin, so a span carries no absolute
// wall time and a trace recorded under a fake clock is fully deterministic.
type TraceSpan struct {
	// Name labels the interval ("queue", "search.partition", "knapsack").
	Name string
	// Cat is the span's category (CatRequest, CatPhase, ...).
	Cat string
	// Tid is the logical track: 0 for the request-serial phases, 1+w for
	// prefill worker w's solve spans.
	Tid int
	// Start and End bound the interval as offsets from the trace origin.
	Start, End time.Duration
}

// Tracer records the spans of one request. It is created at ingress with a
// per-request ID, propagated through the context (WithTracer/TracerFrom),
// and read back out after the request completes. A nil *Tracer is the
// disabled state: every method is nil-safe, Start degenerates to a pointer
// check returning a zero SpanHandle, and no clock is read — the instrumented
// hot paths cost zero allocations when tracing is off
// (TestNilTracerZeroAllocs).
//
// Concurrent Start/End calls are safe: prefill workers record their solve
// spans into the same tracer under the mutex.
type Tracer struct {
	id     string
	clock  Clock
	origin time.Time
	limit  int

	mu sync.Mutex
	// spans holds completed spans in End order.
	// guarded by mu
	spans []TraceSpan
	// dropped counts CatSolve spans discarded by the limit.
	// guarded by mu
	dropped int
}

// DefaultSpanLimit bounds the CatSolve spans kept per trace: a GPT-3-scale
// prefill runs thousands of knapsack solves, and a trace exists to show the
// phase anatomy, not to grow without bound. Structural spans (request,
// phases, search sub-phases) are never dropped.
const DefaultSpanLimit = 4096

// NewTracer builds a tracer for one request. id is the trace identity the
// ring buffer and the X-Adapipe-Trace header use; clock must be non-nil
// (inject core.RealClock() in production, a fake in tests); limit bounds the
// CatSolve spans kept (0 selects DefaultSpanLimit). The trace origin is the
// clock reading at construction.
func NewTracer(id string, clock Clock, limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Tracer{id: id, clock: clock, origin: clock(), limit: limit}
}

// ID returns the trace identity ("" on a nil tracer).
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanHandle is an open span. It is a value, not a pointer: starting and
// ending a span allocates nothing beyond the tracer's amortized span buffer,
// and the zero SpanHandle (from a nil tracer) is an inert no-op.
type SpanHandle struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Duration
}

// Start opens a span. On a nil tracer it returns the zero handle without
// reading the clock.
func (t *Tracer) Start(name, cat string, tid int) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, cat: cat, tid: tid, start: t.clock().Sub(t.origin)}
}

// End closes the span and records it. No-op on the zero handle.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.record(TraceSpan{Name: h.name, Cat: h.cat, Tid: h.tid, Start: h.start, End: h.t.clock().Sub(h.t.origin)})
}

// Add records a completed interval measured by the caller with its own clock
// readings — the serving layer measures each phase once and feeds the same
// interval to both its latency histogram and the trace. No-op on nil.
func (t *Tracer) Add(name, cat string, tid int, start, end time.Time) {
	if t == nil {
		return
	}
	t.record(TraceSpan{Name: name, Cat: cat, Tid: tid, Start: start.Sub(t.origin), End: end.Sub(t.origin)})
}

func (t *Tracer) record(sp TraceSpan) {
	t.mu.Lock()
	if sp.Cat == CatSolve && len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in End order (nil on a nil
// tracer).
func (t *Tracer) Spans() []TraceSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceSpan(nil), t.spans...)
}

// Dropped returns the number of solve spans the limit discarded.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Chrome exports the trace in the Chrome trace-event format through the
// trace-package renderer the simulated and measured timelines already use.
// Rendering the same stored trace repeatedly yields byte-identical output
// (the renderer's sort is stable over the fixed recorded order).
func (t *Tracer) Chrome() ([]byte, error) {
	spans := t.Spans()
	events := make([]trace.SpanEvent, len(spans))
	for i, sp := range spans {
		events[i] = trace.SpanEvent{
			Name:  sp.Name,
			Cat:   sp.Cat,
			Start: sp.Start.Seconds(),
			Dur:   (sp.End - sp.Start).Seconds(),
			Tid:   sp.Tid,
		}
	}
	return trace.ChromeSpans(events)
}

// tracerKey is the context key WithTracer stores under.
type tracerKey struct{}

// WithTracer returns a context carrying the tracer. Everything downstream of
// the serving layer — core.PlanContext, the prefill workers,
// baseline.EvaluateContext — picks it up via TracerFrom.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom extracts the context's tracer, or nil when the request is not
// being traced. The nil result flows through the nil-safe Tracer methods, so
// call sites need no branch.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
