package obs

import (
	"fmt"
	"math"
	"strings"

	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// StageDrift is the measured-vs-modeled error of one pipeline stage.
type StageDrift struct {
	// Stage is the stage index.
	Stage int
	// MeasFwd and MeasBwd are the measured mean per-micro-batch forward and
	// backward times in seconds.
	MeasFwd, MeasBwd float64
	// SimFwd and SimBwd are the simulated counterparts, rescaled by the
	// report's TimeScale so substitute hardware compares on shape rather
	// than absolute device speed.
	SimFwd, SimBwd float64
	// FwdErr and BwdErr are the relative errors (meas−sim)/sim of the
	// rescaled times.
	FwdErr, BwdErr float64
	// MeasPeak and SimPeak are the per-stage peak memory figures of the two
	// results, in bytes, as provided by the caller (for a measured engine
	// trace: live activation bytes).
	MeasPeak, SimPeak int64
	// PeakErr is the relative peak-memory error (meas−sim)/sim.
	PeakErr float64
	// MeasStall is the measured per-stage bubble time (idle seconds);
	// SimBubble the simulated one, rescaled by TimeScale.
	MeasStall, SimBubble float64
}

// Drift is a predicted-vs-measured report: how far a measured pipeline
// iteration deviates from the discrete-event simulation of the same plan.
//
// The engine runs on substitute hardware (Go tensor math on CPU), so raw
// modeled times are on a different scale than measured ones. TimeScale — the
// ratio of total measured to total simulated busy time — is factored out
// before per-stage errors are computed: what remains is drift in the *shape*
// of the schedule (stage balance, bubble anatomy), which is what the
// partitioning and recomputation decisions were optimized against.
type Drift struct {
	// TimeScale is Σ measured busy / Σ simulated busy; simulated times are
	// multiplied by it before errors are taken.
	TimeScale float64
	// MeasIter and SimIter are the makespans (SimIter rescaled).
	MeasIter, SimIter float64
	// IterErr is the relative makespan error after rescaling.
	IterErr float64
	// MeasBubbleFrac and SimBubbleFrac are the bubble ratios (idle share of
	// total device time); scale-free, so compared directly.
	MeasBubbleFrac, SimBubbleFrac float64
	// BubbleErr is the absolute bubble-fraction difference.
	BubbleErr float64
	// Stages holds one entry per pipeline stage.
	Stages []StageDrift
}

// MaxAbsTimeErr returns the largest per-stage |FwdErr| or |BwdErr|.
func (d Drift) MaxAbsTimeErr() float64 {
	var m float64
	for _, s := range d.Stages {
		if v := math.Abs(s.FwdErr); v > m {
			m = v
		}
		if v := math.Abs(s.BwdErr); v > m {
			m = v
		}
	}
	return m
}

// Compare aligns a measured trace (as a sim.Result, e.g. Trace.Result())
// against the simulated timeline of the same plan and reports per-stage
// forward/backward time error, bubble-fraction error and peak-memory error.
// Both results must carry captured timelines over the same device count.
func Compare(meas, simulated sim.Result) (Drift, error) {
	if len(meas.Timeline) == 0 {
		return Drift{}, fmt.Errorf("obs: measured result has no timeline (was the recorder attached?)")
	}
	if len(simulated.Timeline) == 0 {
		return Drift{}, fmt.Errorf("obs: simulated result has no timeline (simulate with CaptureTimeline)")
	}
	if len(meas.Busy) != len(simulated.Busy) {
		return Drift{}, fmt.Errorf("obs: device counts differ: measured %d, simulated %d",
			len(meas.Busy), len(simulated.Busy))
	}
	mFwd, mBwd, err := phaseMeans(meas)
	if err != nil {
		return Drift{}, fmt.Errorf("obs: measured: %w", err)
	}
	sFwd, sBwd, err := phaseMeans(simulated)
	if err != nil {
		return Drift{}, fmt.Errorf("obs: simulated: %w", err)
	}
	if len(mFwd) != len(sFwd) {
		return Drift{}, fmt.Errorf("obs: stage counts differ: measured %d, simulated %d", len(mFwd), len(sFwd))
	}

	var measBusy, simBusy float64
	for i := range meas.Busy {
		measBusy += meas.Busy[i]
		simBusy += simulated.Busy[i]
	}
	if simBusy <= 0 || measBusy <= 0 {
		return Drift{}, fmt.Errorf("obs: degenerate busy totals (measured %g, simulated %g)", measBusy, simBusy)
	}
	scale := measBusy / simBusy

	d := Drift{
		TimeScale:      scale,
		MeasIter:       meas.IterTime,
		SimIter:        simulated.IterTime * scale,
		MeasBubbleFrac: meas.BubbleRatio(),
		SimBubbleFrac:  simulated.BubbleRatio(),
	}
	d.IterErr = relErr(d.MeasIter, d.SimIter)
	d.BubbleErr = math.Abs(d.MeasBubbleFrac - d.SimBubbleFrac)
	for s := range mFwd {
		sd := StageDrift{
			Stage:   s,
			MeasFwd: mFwd[s], MeasBwd: mBwd[s],
			SimFwd: sFwd[s] * scale, SimBwd: sBwd[s] * scale,
		}
		sd.FwdErr = relErr(sd.MeasFwd, sd.SimFwd)
		sd.BwdErr = relErr(sd.MeasBwd, sd.SimBwd)
		measPeak, mok := activationPeak(meas, s)
		simPeak, sok := activationPeak(simulated, s)
		if mok && sok {
			sd.MeasPeak, sd.SimPeak = measPeak, simPeak
			sd.PeakErr = relErr(float64(sd.MeasPeak), float64(sd.SimPeak))
		}
		if s < len(meas.Bubble) {
			sd.MeasStall = meas.Bubble[s]
		}
		if s < len(simulated.Bubble) {
			sd.SimBubble = simulated.Bubble[s] * scale
		}
		d.Stages = append(d.Stages, sd)
	}
	return d, nil
}

// phaseMeans extracts per-stage mean forward/backward seconds per micro-batch
// from a captured timeline.
func phaseMeans(res sim.Result) (fwd, bwd []float64, err error) {
	maxStage := -1
	for _, ev := range res.Timeline {
		if ev.Op.Stage > maxStage {
			maxStage = ev.Op.Stage
		}
	}
	if maxStage < 0 {
		return nil, nil, fmt.Errorf("empty timeline")
	}
	p := maxStage + 1
	fwd = make([]float64, p)
	bwd = make([]float64, p)
	fwdN := make([]float64, p)
	bwdN := make([]float64, p)
	for _, ev := range res.Timeline {
		dur := ev.End - ev.Start
		micros := float64(len(ev.Op.Micros))
		if micros <= 0 {
			return nil, nil, fmt.Errorf("op with no micro-batches at stage %d", ev.Op.Stage)
		}
		if ev.Op.Kind == schedule.Forward {
			fwd[ev.Op.Stage] += dur
			fwdN[ev.Op.Stage] += micros
		} else {
			bwd[ev.Op.Stage] += dur
			bwdN[ev.Op.Stage] += micros
		}
	}
	for s := 0; s < p; s++ {
		if fwdN[s] <= 0 || bwdN[s] <= 0 {
			return nil, nil, fmt.Errorf("stage %d has no forward or no backward ops", s)
		}
		fwd[s] /= fwdN[s]
		bwd[s] /= bwdN[s]
	}
	return fwd, bwd, nil
}

// activationPeak extracts a device's peak memory above its curve baseline.
// The engine measures live activation bytes only, while the simulator's
// PeakMem includes the modeled static (parameter/optimizer/overhead) part;
// each side's memory curve starts at its own baseline (0 for measured,
// static for simulated), so peak-above-first-point puts both on the
// activation scale. Without a captured curve the raw PeakMem is used.
func activationPeak(res sim.Result, d int) (int64, bool) {
	if d < len(res.MemTimeline) && len(res.MemTimeline[d]) > 0 {
		base := res.MemTimeline[d][0].Bytes
		var peak int64
		for _, pt := range res.MemTimeline[d] {
			if pt.Bytes-base > peak {
				peak = pt.Bytes - base
			}
		}
		return peak, true
	}
	if d < len(res.PeakMem) {
		return res.PeakMem[d], true
	}
	return 0, false
}

// relErr is (meas−ref)/ref, with a zero reference reported as ±Inf (or 0
// when both are zero).
func relErr(meas, ref float64) float64 {
	if ref == 0 {
		if meas == 0 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, meas)))
	}
	return (meas - ref) / ref
}

// String renders the drift report as a human-readable table.
func (d Drift) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drift report (simulated times rescaled by measured/simulated busy ratio %.3g)\n", d.TimeScale)
	fmt.Fprintf(&b, "iteration: measured %.6fs vs simulated %.6fs (%+.1f%%)\n",
		d.MeasIter, d.SimIter, 100*d.IterErr)
	fmt.Fprintf(&b, "bubble fraction: measured %.3f vs simulated %.3f (|Δ| %.3f)\n",
		d.MeasBubbleFrac, d.SimBubbleFrac, d.BubbleErr)
	fmt.Fprintf(&b, "%-6s %-22s %-22s %-22s\n", "stage", "fwd meas/sim (err)", "bwd meas/sim (err)", "peak meas/sim (err)")
	for _, s := range d.Stages {
		fmt.Fprintf(&b, "%-6d %9.6f/%-9.6f %+4.0f%% %9.6f/%-9.6f %+4.0f%% %8.2f/%-8.2f MiB %+4.0f%%\n",
			s.Stage,
			s.MeasFwd, s.SimFwd, 100*s.FwdErr,
			s.MeasBwd, s.SimBwd, 100*s.BwdErr,
			mib(s.MeasPeak), mib(s.SimPeak), 100*s.PeakErr)
	}
	return b.String()
}

func mib(b int64) float64 { return float64(b) / float64(1<<20) }
