// Package obs is the observability layer of the live pipeline engine: a
// wall-clock op recorder for the goroutine 1F1B executor, a drift report that
// aligns measured runs against the discrete-event simulator for the same
// plan, and a Prometheus-style text exposition of engine and search metrics.
//
// The paper validates its cost model by comparing modeled 1F1B phase times
// against profiled runs (§6); this package is the measured half of that
// comparison on the repo's substitute hardware. A recorded Trace is
// structurally compatible with sim.Result (via Trace.Result), so the
// trace-package renderers — Gantt, ChromeTrace, MemoryCSV — work on measured
// runs unchanged.
package obs

import (
	"sort"
	"time"

	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// Span is one executed op of a measured pipeline iteration. Start/End bound
// the compute interval only; the channel-wait that preceded it is reported
// separately as Wait, so idle time renders as idle in the Gantt view and
// stall time stays attributable per op (the bubble anatomy Zero Bubble
// Pipeline Parallelism shows dominates 1F1B efficiency).
type Span struct {
	// Stage is the executing pipeline stage (device).
	Stage int
	// Op is the scheduled op the span measured.
	Op schedule.Op
	// Start and End are the compute interval in seconds since the
	// iteration started.
	Start, End float64
	// Wait is the channel-wait (stall) time spent blocked on the upstream
	// activation or downstream gradient before compute began, in seconds.
	Wait float64
	// LiveBytes is the stage's live activation footprint right after the
	// op (forward pins a context, backward releases one).
	LiveBytes int64
}

// Trace is one measured pipeline iteration — the engine-side counterpart of
// sim.Result.
type Trace struct {
	// Spans holds every executed op, sorted by (Start, Stage).
	Spans []Span
	// WallTime is the measured makespan in seconds (last compute end).
	WallTime float64
	// Busy is the per-stage total compute time.
	Busy []float64
	// Stall is the per-stage total channel-wait time.
	Stall []float64
	// PeakBytes is the per-stage live-activation high-water mark.
	PeakBytes []int64
	// MemCurve is the per-stage live-activation curve (activation bytes
	// only; the engine has no static parameter/optimizer accounting).
	MemCurve [][]sim.MemPoint
}

// Result converts the trace into a sim.Result so the existing renderers
// (trace.Gantt, trace.ChromeTrace, trace.MemoryCSV) and comparison helpers
// apply to measured runs unchanged. PeakMem and MemTimeline carry live
// activation bytes only — the measured analogue of the simulator's
// activation term, without the modeled static part.
func (t *Trace) Result() sim.Result {
	p := len(t.Busy)
	res := sim.Result{
		IterTime:    t.WallTime,
		PeakMem:     append([]int64(nil), t.PeakBytes...),
		Busy:        append([]float64(nil), t.Busy...),
		Bubble:      make([]float64, p),
		MicroStep:   make([]float64, p),
		Timeline:    make([]sim.Event, 0, len(t.Spans)),
		MemTimeline: make([][]sim.MemPoint, p),
	}
	for d := 0; d < p; d++ {
		res.Bubble[d] = t.WallTime - t.Busy[d]
		res.MemTimeline[d] = append([]sim.MemPoint(nil), t.MemCurve[d]...)
	}
	fwd := make([]float64, p)
	fwdN := make([]float64, p)
	bwd := make([]float64, p)
	bwdN := make([]float64, p)
	for _, sp := range t.Spans {
		res.Timeline = append(res.Timeline, sim.Event{
			Device: sp.Stage, Op: sp.Op, Start: sp.Start, End: sp.End,
		})
		micros := float64(len(sp.Op.Micros))
		if sp.Op.Kind == schedule.Forward {
			fwd[sp.Stage] += sp.End - sp.Start
			fwdN[sp.Stage] += micros
		} else {
			bwd[sp.Stage] += sp.End - sp.Start
			bwdN[sp.Stage] += micros
		}
	}
	for s := 0; s < p; s++ {
		if fwdN[s] > 0 {
			res.MicroStep[s] += fwd[s] / fwdN[s]
		}
		if bwdN[s] > 0 {
			res.MicroStep[s] += bwd[s] / bwdN[s]
		}
	}
	sort.Slice(res.Timeline, func(i, j int) bool {
		if res.Timeline[i].Start != res.Timeline[j].Start {
			return res.Timeline[i].Start < res.Timeline[j].Start
		}
		return res.Timeline[i].Device < res.Timeline[j].Device
	})
	return res
}

// StallRatio returns total stall time divided by total device time, the
// measured analogue of sim.Result.BubbleRatio restricted to channel waits.
func (t *Trace) StallRatio() float64 {
	if t.WallTime <= 0 || len(t.Stall) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.Stall {
		s += v
	}
	return s / (t.WallTime * float64(len(t.Stall)))
}

// Recorder captures one pipeline iteration. It is opt-in: the executor's hot
// path performs a nil check per op and otherwise runs untouched, so a nil
// recorder costs no allocations and no clock reads. Each stage goroutine
// writes only its own StageRecorder, making recording race-free without
// locks; Trace must be called only after the iteration's goroutines joined.
type Recorder struct {
	start  time.Time
	stages []*StageRecorder
}

// NewRecorder returns an empty recorder; Reset arms it for an iteration.
func NewRecorder() *Recorder { return &Recorder{} }

// Reset prepares the recorder for one iteration over the given stage count
// and marks the iteration start instant. Any previously recorded iteration
// is discarded.
func (r *Recorder) Reset(stages int) {
	r.stages = make([]*StageRecorder, stages)
	for i := range r.stages {
		r.stages[i] = &StageRecorder{}
	}
	r.start = time.Now()
}

// Stage returns stage s's private recorder. Each stage goroutine must use
// only its own.
func (r *Recorder) Stage(s int) *StageRecorder { return r.stages[s] }

// Trace assembles the recorded iteration. Call only after every stage
// goroutine has finished (the executor joins them before returning).
func (r *Recorder) Trace() *Trace {
	p := len(r.stages)
	t := &Trace{
		Busy:      make([]float64, p),
		Stall:     make([]float64, p),
		PeakBytes: make([]int64, p),
		MemCurve:  make([][]sim.MemPoint, p),
	}
	for s, sr := range r.stages {
		t.MemCurve[s] = append(t.MemCurve[s], sim.MemPoint{Time: 0, Bytes: 0})
		for _, raw := range sr.spans {
			sp := Span{
				Stage:     s,
				Op:        raw.op,
				Start:     raw.start.Sub(r.start).Seconds(),
				End:       raw.end.Sub(r.start).Seconds(),
				Wait:      raw.wait.Seconds(),
				LiveBytes: raw.live,
			}
			t.Spans = append(t.Spans, sp)
			t.Busy[s] += sp.End - sp.Start
			t.Stall[s] += sp.Wait
			if sp.LiveBytes > t.PeakBytes[s] {
				t.PeakBytes[s] = sp.LiveBytes
			}
			if sp.End > t.WallTime {
				t.WallTime = sp.End
			}
			t.MemCurve[s] = append(t.MemCurve[s], sim.MemPoint{Time: sp.End, Bytes: sp.LiveBytes})
		}
	}
	sort.Slice(t.Spans, func(i, j int) bool {
		if t.Spans[i].Start != t.Spans[j].Start {
			return t.Spans[i].Start < t.Spans[j].Start
		}
		return t.Spans[i].Stage < t.Spans[j].Stage
	})
	return t
}

// StageRecorder is one stage goroutine's private span buffer.
type StageRecorder struct {
	spans []rawSpan
}

type rawSpan struct {
	op         schedule.Op
	start, end time.Time
	wait       time.Duration
	live       int64
}

// Record appends one completed op: its compute interval [start, end], the
// channel-wait that preceded it, and the live activation bytes after it.
func (sr *StageRecorder) Record(op schedule.Op, start, end time.Time, wait time.Duration, liveBytes int64) {
	sr.spans = append(sr.spans, rawSpan{op: op, start: start, end: end, wait: wait, live: liveBytes})
}
