package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	cases := []struct {
		d      time.Duration
		bucket int // index the sample must land in
	}{
		{0, 0},                       // zero
		{-time.Second, 0},            // negative clamps to zero
		{time.Nanosecond, 0},         // sub-bucket
		{time.Microsecond, 0},        // exactly the first bound (inclusive)
		{time.Microsecond + 1, 1},    // just past the first bound
		{2 * time.Microsecond, 1},    // second bound
		{time.Millisecond, 10},       // 1ms = 2^10 µs
		{time.Second, 20},            // 1s  = a hair under 2^20 µs
		{67 * time.Second, 26},       // top finite bucket (2^26 µs ≈ 67.1s)
		{time.Hour, len(histBounds)}, // overflow → +Inf
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	s := h.Snapshot()
	want := make([]int64, len(histBounds)+1)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], want[i])
		}
	}
	// The negative observation contributed 0 to the sum.
	var wantSum int64
	for _, c := range cases {
		if c.d > 0 {
			wantSum += int64(c.d)
		}
	}
	if s.SumNanos != wantSum {
		t.Errorf("SumNanos = %d, want %d", s.SumNanos, wantSum)
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count() = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count() = %d, want 8000", h.Count())
	}
	if s := h.Snapshot(); s.SumNanos != 8000*int64(time.Millisecond) {
		t.Errorf("SumNanos = %d, want %d", s.SumNanos, 8000*int64(time.Millisecond))
	}
}

func TestRenderPromHistogramFormat(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0 (le=1e-06)
	h.Observe(3 * time.Microsecond)  // bucket 2 (le=4e-06)
	h.Observe(2 * time.Hour)         // +Inf
	out := RenderPromHistogram("adapipe_serve_request_seconds", "Request latency.", h.Snapshot())

	for _, want := range []string{
		"# HELP adapipe_serve_request_seconds Request latency.\n",
		"# TYPE adapipe_serve_request_seconds histogram\n",
		`adapipe_serve_request_seconds_bucket{le="1e-06"} 1` + "\n",
		`adapipe_serve_request_seconds_bucket{le="2e-06"} 1` + "\n",
		`adapipe_serve_request_seconds_bucket{le="4e-06"} 2` + "\n",
		`adapipe_serve_request_seconds_bucket{le="+Inf"} 3` + "\n",
		"adapipe_serve_request_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: every le line's value must be non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts are not cumulative at %q", line)
		}
		last = v
	}
}

// TestRenderPromHistogramDeterministic locks the exposition bytes: two
// renders of one snapshot, and renders of two equal histograms, must match
// exactly — /metrics output may differ only where the measurements do.
func TestRenderPromHistogramDeterministic(t *testing.T) {
	var a, b Histogram
	for _, d := range []time.Duration{0, time.Microsecond, time.Millisecond, time.Second, time.Hour} {
		a.Observe(d)
		b.Observe(d)
	}
	r1 := RenderPromHistogram("m", "h", a.Snapshot())
	r2 := RenderPromHistogram("m", "h", a.Snapshot())
	r3 := RenderPromHistogram("m", "h", b.Snapshot())
	if r1 != r2 || r1 != r3 {
		t.Error("equal histograms rendered different expositions")
	}
	if strings.Count(r1, "_bucket{") != len(histBounds)+1 {
		t.Errorf("rendered %d bucket lines, want %d", strings.Count(r1, "_bucket{"), len(histBounds)+1)
	}
}
