package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock advancing a fixed step per reading.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestTracerSpanOffsets(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewTracer("t1", clk.Now, 0) // origin consumes the first tick
	sp := tr.Start("work", CatPhase, 0)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	got := spans[0]
	want := TraceSpan{Name: "work", Cat: CatPhase, Tid: 0, Start: time.Millisecond, End: 2 * time.Millisecond}
	if got != want {
		t.Errorf("span = %+v, want %+v", got, want)
	}
	if tr.ID() != "t1" {
		t.Errorf("ID() = %q, want t1", tr.ID())
	}
}

func TestTracerAddUsesCallerIntervals(t *testing.T) {
	clk := newFakeClock(time.Second)
	tr := NewTracer("t2", clk.Now, 0)
	start := clk.Now() // origin+1s
	end := clk.Now()   // origin+2s
	tr.Add("queue", CatPhase, 0, start, end)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Start != time.Second || spans[0].End != 2*time.Second {
		t.Errorf("spans = %+v, want one [1s,2s] span", spans)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.ID() != "" || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer accessors must return zero values")
	}
	sp := tr.Start("x", CatSolve, 1)
	sp.End() // must not panic
	tr.Add("y", CatPhase, 0, time.Unix(0, 0), time.Unix(1, 0))
	if b, err := tr.Chrome(); err != nil || !bytes.Contains(b, []byte("traceEvents")) {
		t.Errorf("nil tracer Chrome() = %s, %v; want empty document", b, err)
	}
}

func TestTracerContextRoundTrip(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewTracer("t3", clk.Now, 0)
	ctx := WithTracer(context.Background(), tr)
	if got := TracerFrom(ctx); got != tr {
		t.Errorf("TracerFrom returned %p, want %p", got, tr)
	}
	if got := TracerFrom(context.Background()); got != nil {
		t.Errorf("TracerFrom on a bare context = %p, want nil", got)
	}
	// WithTracer(nil) must be a no-op, not store a typed nil.
	if got := TracerFrom(WithTracer(context.Background(), nil)); got != nil {
		t.Errorf("WithTracer(nil) stored %p", got)
	}
}

// TestTracerSolveLimit checks the drop policy: solve spans beyond the limit
// are counted, structural spans always survive.
func TestTracerSolveLimit(t *testing.T) {
	clk := newFakeClock(time.Microsecond)
	tr := NewTracer("t4", clk.Now, 2)
	for i := 0; i < 5; i++ {
		tr.Start("knapsack", CatSolve, 1).End()
	}
	tr.Start("search.partition", CatSearch, 0).End()
	tr.Start("request", CatRequest, 0).End()
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 2 solves + 2 structural", len(spans))
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", tr.Dropped())
	}
	if spans[2].Cat != CatSearch || spans[3].Cat != CatRequest {
		t.Errorf("structural spans were dropped: %+v", spans)
	}
}

func TestTracerConcurrentRecording(t *testing.T) {
	clk := newFakeClock(time.Nanosecond)
	tr := NewTracer("t5", clk.Now, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start("knapsack", CatSolve, w+1).End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Errorf("recorded %d spans, want 800", got)
	}
}

func TestTracerChromeDeterministic(t *testing.T) {
	clk := newFakeClock(time.Millisecond)
	tr := NewTracer("t6", clk.Now, 0)
	for i := 0; i < 3; i++ {
		tr.Start("knapsack", CatSolve, i+1).End()
	}
	tr.Start("search.partition", CatSearch, 0).End()
	b1, err := tr.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := tr.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("repeated Chrome() renders of one trace differ")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("Chrome output does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("exported %d events, want 4", len(doc.TraceEvents))
	}
	// Events are ordered by start timestamp; the first solve began at
	// origin+1ms and lasted one tick.
	first := doc.TraceEvents[0]
	if first.Ph != "X" || first.Ts != 1000 || first.Dur != 1000 || first.Tid != 1 {
		t.Errorf("first event = %+v, want complete event at ts=1000us dur=1000us tid=1", first)
	}
	if !strings.Contains(string(b1), `"cat": "search"`) {
		t.Error("search-category span missing from export")
	}
}

// TestNilTracerZeroAllocs pins the disabled-tracing hot path: starting and
// ending a span on a nil tracer must not allocate (it is a pointer check,
// like the nil op recorder).
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("knapsack", CatSolve, 1)
		sp.End()
		tr.Add("phase", CatPhase, 0, time.Time{}, time.Time{})
	})
	if allocs != 0 {
		t.Errorf("nil-tracer span cycle allocated %v times per op, want 0", allocs)
	}
}

func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("knapsack", CatSolve, 1)
		sp.End()
	}
}

func BenchmarkTracerSpan(b *testing.B) {
	clk := newFakeClock(time.Nanosecond)
	tr := NewTracer("bench", clk.Now, 1<<30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("knapsack", CatSolve, 1)
		sp.End()
	}
}
