package obs

// ServeStats is a point-in-time snapshot of the adapiped serving layer's
// counters. The serve package owns the live atomics; this plain-value
// snapshot is the exposition boundary, so the metrics surface stays in one
// place alongside the search/sim/fault gauges.
type ServeStats struct {
	// PlanRequests and SimulateRequests count accepted POSTs per endpoint
	// (including ones that later failed).
	PlanRequests, SimulateRequests int64
	// CacheHits and CacheMisses split plan lookups by whether the LRU plan
	// cache already held the response bytes; CacheEvictions counts entries
	// the bound pushed out, and CacheEntries is the current population.
	CacheHits, CacheMisses, CacheEvictions, CacheEntries int64
	// Coalesced counts requests that piggybacked on another request's
	// in-flight search instead of starting their own (singleflight).
	Coalesced int64
	// Searches counts plan searches actually executed (cache misses that
	// were singleflight leaders); KnapsackRuns sums the §4 DP solves those
	// searches performed, and SearchWallSeconds their summed wall time.
	Searches          int64
	KnapsackRuns      int64
	SearchWallSeconds float64
	// ReplanRequests counts accepted POST /v1/replan requests;
	// ReplanIncremental the ones answered by a warm-started incremental
	// search (the planner for the request hash already existed), ReplanCold
	// the ones that had to run the cold search seeding that planner first,
	// and ReplanAdopted the replans whose re-searched plan beat the repriced
	// incumbent. ReplanPlanners is the warm-planner store's population.
	ReplanRequests, ReplanIncremental, ReplanCold, ReplanAdopted int64
	ReplanPlanners                                               int64
	// InFlight is the number of searches currently holding an admission
	// slot; Rejected counts requests that timed out waiting for one.
	InFlight, Rejected int64
	// Errors counts requests answered with a non-2xx status.
	Errors int64
	// SweepRequests counts accepted POST /v1/sweep requests; SweepPoints the
	// grid points they expanded to. Of those points, SweepPointsPlanned ran a
	// fresh search, SweepPointsDeduped copied an earlier duplicate point's
	// result, SweepPointsCached came from the response cache, and
	// SweepPointsFailed produced a per-point error.
	SweepRequests, SweepPoints             int64
	SweepPointsPlanned, SweepPointsDeduped int64
	SweepPointsCached, SweepPointsFailed   int64
	// CostStoreEntries is the shared cost store's population;
	// CostStoreHits/CostStoreMisses/CostStoreShared split its lookups into
	// stored-entry hits, leader solves and in-flight shares, and
	// CostStoreEvictions counts entries the LRU bound pushed out. All zero
	// when the store is disabled.
	CostStoreEntries                    int64
	CostStoreHits, CostStoreMisses      int64
	CostStoreShared, CostStoreEvictions int64
}

// ServeMetrics converts a serving snapshot into Prometheus gauges under the
// given name prefix (e.g. "adapipe_serve"). The slice order is fixed, so the
// rendered exposition is deterministic for a given snapshot.
func ServeMetrics(prefix string, s ServeStats) []Metric {
	return []Metric{
		{Name: prefix + "_requests_total", Help: "accepted requests by endpoint", Labels: [][2]string{{"endpoint", "plan"}}, Value: float64(s.PlanRequests)},
		{Name: prefix + "_requests_total", Labels: [][2]string{{"endpoint", "simulate"}}, Value: float64(s.SimulateRequests)},
		{Name: prefix + "_cache_hits_total", Help: "plan lookups served from the LRU response cache", Value: float64(s.CacheHits)},
		{Name: prefix + "_cache_misses_total", Help: "plan lookups that required a search", Value: float64(s.CacheMisses)},
		{Name: prefix + "_cache_evictions_total", Help: "cached responses evicted by the LRU bound", Value: float64(s.CacheEvictions)},
		{Name: prefix + "_cache_entries", Help: "responses currently cached", Value: float64(s.CacheEntries)},
		{Name: prefix + "_coalesced_total", Help: "requests that shared another request's in-flight search", Value: float64(s.Coalesced)},
		{Name: prefix + "_searches_total", Help: "plan searches executed", Value: float64(s.Searches)},
		{Name: prefix + "_knapsack_runs_total", Help: "recomputation DPs solved across all searches", Value: float64(s.KnapsackRuns)},
		{Name: prefix + "_search_wall_seconds_total", Help: "summed search wall time in seconds", Value: s.SearchWallSeconds},
		{Name: prefix + "_replan_requests_total", Help: "accepted replan requests", Value: float64(s.ReplanRequests)},
		{Name: prefix + "_replans_incremental_total", Help: "replans served by a warm-started incremental search", Value: float64(s.ReplanIncremental)},
		{Name: prefix + "_replans_cold_total", Help: "replans that first ran the cold search seeding a warm planner", Value: float64(s.ReplanCold)},
		{Name: prefix + "_replans_adopted_total", Help: "replans whose re-searched plan beat the repriced incumbent", Value: float64(s.ReplanAdopted)},
		{Name: prefix + "_replan_planners", Help: "warm planners currently held for replanning", Value: float64(s.ReplanPlanners)},
		{Name: prefix + "_in_flight", Help: "searches currently holding an admission slot", Value: float64(s.InFlight)},
		{Name: prefix + "_rejected_total", Help: "requests that timed out waiting for admission", Value: float64(s.Rejected)},
		{Name: prefix + "_errors_total", Help: "requests answered with a non-2xx status", Value: float64(s.Errors)},
		{Name: prefix + "_sweep_requests_total", Help: "accepted sweep requests", Value: float64(s.SweepRequests)},
		{Name: prefix + "_sweep_points_total", Help: "grid points expanded across all sweeps", Value: float64(s.SweepPoints)},
		{Name: prefix + "_sweep_points_planned_total", Help: "sweep points that ran a fresh search", Value: float64(s.SweepPointsPlanned)},
		{Name: prefix + "_sweep_points_deduped_total", Help: "sweep points served by copying a duplicate point's result", Value: float64(s.SweepPointsDeduped)},
		{Name: prefix + "_sweep_points_cached_total", Help: "sweep points served from the response cache", Value: float64(s.SweepPointsCached)},
		{Name: prefix + "_sweep_points_failed_total", Help: "sweep points that produced a per-point error", Value: float64(s.SweepPointsFailed)},
		{Name: prefix + "_cost_store_entries", Help: "entries currently held by the shared cost store", Value: float64(s.CostStoreEntries)},
		{Name: prefix + "_cost_store_hits_total", Help: "cost-store lookups served by a stored entry", Value: float64(s.CostStoreHits)},
		{Name: prefix + "_cost_store_misses_total", Help: "cost-store lookups that led a fresh solve", Value: float64(s.CostStoreMisses)},
		{Name: prefix + "_cost_store_shared_total", Help: "cost-store lookups that shared another planner's in-flight solve", Value: float64(s.CostStoreShared)},
		{Name: prefix + "_cost_store_evictions_total", Help: "cost-store entries evicted by the LRU bound", Value: float64(s.CostStoreEvictions)},
	}
}
