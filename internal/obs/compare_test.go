package obs

import (
	"math"
	"strings"
	"testing"

	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// synthetic builds a 2-stage, 2-micro captured result with uniform per-micro
// forward/backward times scaled by unit.
func synthetic(unit float64) sim.Result {
	op := func(kind schedule.Kind, stage, micro int) schedule.Op {
		return schedule.Op{Kind: kind, Stage: stage, Micros: []int{micro}}
	}
	f, b := unit, 2*unit
	events := []sim.Event{
		{Device: 0, Op: op(schedule.Forward, 0, 0), Start: 0, End: f},
		{Device: 0, Op: op(schedule.Forward, 0, 1), Start: f, End: 2 * f},
		{Device: 1, Op: op(schedule.Forward, 1, 0), Start: f, End: 2 * f},
		{Device: 1, Op: op(schedule.Backward, 1, 0), Start: 2 * f, End: 2*f + b},
		{Device: 1, Op: op(schedule.Forward, 1, 1), Start: 2*f + b, End: 3*f + b},
		{Device: 1, Op: op(schedule.Backward, 1, 1), Start: 3*f + b, End: 3*f + 2*b},
		{Device: 0, Op: op(schedule.Backward, 0, 0), Start: 2*f + b, End: 2*f + 2*b},
		{Device: 0, Op: op(schedule.Backward, 0, 1), Start: 3*f + 2*b, End: 3*f + 3*b},
	}
	iter := 3*f + 3*b
	busy := []float64{2*f + 2*b, 2*f + 2*b}
	return sim.Result{
		IterTime: iter,
		Busy:     busy,
		Bubble:   []float64{iter - busy[0], iter - busy[1]},
		PeakMem:  []int64{100, 50},
		Timeline: events,
	}
}

func TestCompareScaleInvariant(t *testing.T) {
	// A measured run that is an exact 1000x-slower replica of the simulation
	// must report (near-)zero drift everywhere: the time scale soaks up the
	// hardware difference.
	meas := synthetic(1e-3)
	simr := synthetic(1e-6)
	d, err := Compare(meas, simr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.TimeScale-1000) > 1e-6 {
		t.Errorf("TimeScale = %g, want 1000", d.TimeScale)
	}
	if math.Abs(d.IterErr) > 1e-9 {
		t.Errorf("IterErr = %g, want 0", d.IterErr)
	}
	if d.BubbleErr > 1e-9 {
		t.Errorf("BubbleErr = %g, want 0", d.BubbleErr)
	}
	if len(d.Stages) != 2 {
		t.Fatalf("%d stage rows, want 2", len(d.Stages))
	}
	for _, s := range d.Stages {
		if math.Abs(s.FwdErr) > 1e-9 || math.Abs(s.BwdErr) > 1e-9 {
			t.Errorf("stage %d errors fwd %g bwd %g, want 0", s.Stage, s.FwdErr, s.BwdErr)
		}
		if math.Abs(s.PeakErr) > 1e-9 {
			t.Errorf("stage %d peak error %g, want 0", s.Stage, s.PeakErr)
		}
	}
	if d.MaxAbsTimeErr() > 1e-9 {
		t.Errorf("MaxAbsTimeErr = %g", d.MaxAbsTimeErr())
	}
	if out := d.String(); !strings.Contains(out, "drift report") || !strings.Contains(out, "stage") {
		t.Errorf("report rendering malformed:\n%s", out)
	}
}

func TestCompareDetectsSkew(t *testing.T) {
	// Stretch the measured backward times by 50%; the report must attribute
	// the drift to backward, not forward.
	meas := synthetic(1e-3)
	for i := range meas.Timeline {
		ev := &meas.Timeline[i]
		if ev.Op.Kind == schedule.Backward {
			ev.End = ev.Start + (ev.End-ev.Start)*1.5
		}
	}
	d, err := Compare(meas, synthetic(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Stages {
		if s.BwdErr <= s.FwdErr {
			t.Errorf("stage %d: bwd error %g not above fwd error %g", s.Stage, s.BwdErr, s.FwdErr)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	good := synthetic(1)
	if _, err := Compare(sim.Result{}, good); err == nil {
		t.Error("empty measured timeline accepted")
	}
	if _, err := Compare(good, sim.Result{}); err == nil {
		t.Error("empty simulated timeline accepted")
	}
	mismatch := synthetic(1)
	mismatch.Busy = mismatch.Busy[:1]
	if _, err := Compare(mismatch, good); err == nil {
		t.Error("device-count mismatch accepted")
	}
	degenerate := synthetic(1)
	degenerate.Busy = []float64{0, 0}
	if _, err := Compare(degenerate, good); err == nil {
		t.Error("degenerate busy totals accepted")
	}
}

func TestActivationPeakBaseline(t *testing.T) {
	// With a captured memory curve, the peak is measured above the curve's
	// first point, so the simulator's static baseline drops out.
	res := sim.Result{
		PeakMem: []int64{1000},
		MemTimeline: [][]sim.MemPoint{
			{{Time: 0, Bytes: 800}, {Time: 1, Bytes: 1000}, {Time: 2, Bytes: 850}},
		},
	}
	if pk, ok := activationPeak(res, 0); !ok || pk != 200 {
		t.Errorf("activationPeak = %d, %v; want 200, true", pk, ok)
	}
	// Without a curve it falls back to the raw PeakMem.
	res.MemTimeline = nil
	if pk, ok := activationPeak(res, 0); !ok || pk != 1000 {
		t.Errorf("fallback activationPeak = %d, %v; want 1000, true", pk, ok)
	}
	if _, ok := activationPeak(res, 5); ok {
		t.Error("out-of-range device reported a peak")
	}
}
