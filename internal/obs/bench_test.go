package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteBenchJSONRoundTripAndDeterminism(t *testing.T) {
	report := BenchReport{
		Model:           "GPT-3 175B",
		Shape:           "L=194 p=8 n=32",
		GoMaxProcs:      8,
		Workers:         8,
		SpeedupParallel: 2.4,
		ReplanNsPerOp:   550_000,
		KnapsackRuns:    120,
		CacheHitRate:    0.93,
		Runs: []BenchRun{
			{Name: "PlanSearch/serial", Iterations: 30, NsPerOp: 41_000_000},
			{Name: "PlanSearch/parallel", Iterations: 72, NsPerOp: 17_000_000},
			{Name: "ReplanWithScale", Iterations: 20, NsPerOp: 55_000_000},
		},
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	if err := WriteBenchJSON(p1, report); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchJSON(p2, report); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("same report serialized to different bytes")
	}
	if b1[len(b1)-1] != '\n' {
		t.Error("missing trailing newline")
	}
	var back BenchReport
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if back.SpeedupParallel != report.SpeedupParallel || len(back.Runs) != 3 ||
		back.Runs[1].Name != "PlanSearch/parallel" {
		t.Errorf("round trip mangled the report: %+v", back)
	}
	if back.ReplanNsPerOp != 550_000 {
		t.Errorf("ReplanNsPerOp round-tripped to %d, want 550000", back.ReplanNsPerOp)
	}
	if !bytes.Contains(b1, []byte(`"replan_ns_per_op": 550000`)) {
		t.Error("replan_ns_per_op missing from the serialized report")
	}
}

func TestWriteBenchJSONBadPath(t *testing.T) {
	if err := WriteBenchJSON(filepath.Join(t.TempDir(), "no", "such", "dir.json"), BenchReport{}); err == nil {
		t.Error("write into a missing directory should fail")
	}
}
