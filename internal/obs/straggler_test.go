package obs

import (
	"strings"
	"testing"

	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// mkTrace synthesizes a measured iteration whose per-stage micro-step times
// (forward plus backward per micro) equal micro[s]: one forward and one
// backward span per stage, each covering one micro-batch.
func mkTrace(micro []float64) *Trace {
	p := len(micro)
	t := &Trace{
		Busy: make([]float64, p), Stall: make([]float64, p),
		PeakBytes: make([]int64, p), MemCurve: make([][]sim.MemPoint, p),
	}
	for s, m := range micro {
		half := m / 2
		t.Spans = append(t.Spans,
			Span{Stage: s, Op: schedule.Op{Kind: schedule.Forward, Micros: []int{0}}, Start: 0, End: half},
			Span{Stage: s, Op: schedule.Op{Kind: schedule.Backward, Micros: []int{0}}, Start: half, End: m},
		)
		t.Busy[s] = m
		if m > t.WallTime {
			t.WallTime = m
		}
	}
	return t
}

func TestStragglerDetectorValidation(t *testing.T) {
	if _, err := NewStragglerDetector(nil, 1.5, 3); err == nil {
		t.Error("empty predictions accepted")
	}
	if _, err := NewStragglerDetector([]float64{1, 0}, 1.5, 3); err == nil {
		t.Error("zero prediction accepted")
	}
	if _, err := NewStragglerDetector([]float64{1, 1}, 1.0, 3); err == nil {
		t.Error("threshold 1.0 accepted")
	}
	if _, err := NewStragglerDetector([]float64{1, 1}, 1.5, 0); err == nil {
		t.Error("zero window accepted")
	}
}

// TestUniformSlowdownIsNotAStraggler: a clock-scale mismatch (every stage 3x
// slower than predicted) must never trigger — min-ratio normalization
// divides it out.
func TestUniformSlowdownIsNotAStraggler(t *testing.T) {
	d, err := NewStragglerDetector([]float64{0.010, 0.012, 0.011}, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		if s, ok := d.Observe(mkTrace([]float64{0.030, 0.036, 0.033})); ok {
			t.Fatalf("uniform 3x slowdown flagged stage %d at step %d", s.Stage, step)
		}
	}
}

// TestStragglerTriggersExactlyOnce: a sustained 2x degradation on one stage
// triggers exactly once after Window consecutive observations (the one-shot
// that kicks off a replan), with streaks reset afterwards. This also covers
// p=2, where a median-normalized detector would underestimate the slowdown.
func TestStragglerTriggersExactlyOnce(t *testing.T) {
	const window = 3
	d, err := NewStragglerDetector([]float64{0.010, 0.010}, 1.5, window)
	if err != nil {
		t.Fatal(err)
	}
	slow := []float64{0.020, 0.010} // stage 0 at 2x, stage 1 on plan

	triggers := 0
	var got Straggler
	for step := 0; step < window; step++ {
		if s, ok := d.Observe(mkTrace(slow)); ok {
			triggers++
			got = s
			if step != window-1 {
				t.Fatalf("triggered at step %d, want step %d", step, window-1)
			}
		}
	}
	if triggers != 1 {
		t.Fatalf("%d triggers over the window, want exactly 1", triggers)
	}
	if got.Stage != 0 {
		t.Fatalf("flagged stage %d, want 0", got.Stage)
	}
	if got.Slowdown < 1.9 || got.Slowdown > 2.1 {
		t.Fatalf("slowdown %g, want ~2", got.Slowdown)
	}
	// The streak was reset: the next window-1 observations stay silent.
	for step := 0; step < window-1; step++ {
		if _, ok := d.Observe(mkTrace(slow)); ok {
			t.Fatalf("re-triggered %d steps after reset, window is %d", step+1, window)
		}
	}

	scales := got.Scales(2)
	if scales[1] != 1 || scales[0] != got.Slowdown {
		t.Fatalf("scales = %v, want [%g 1]", scales, got.Slowdown)
	}
}

// TestTransientBlipDoesNotTrigger: a single slow step inside a healthy run
// resets the streak and never reaches the window.
func TestTransientBlipDoesNotTrigger(t *testing.T) {
	d, err := NewStragglerDetector([]float64{0.010, 0.010, 0.010}, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	healthy := []float64{0.010, 0.010, 0.010}
	blip := []float64{0.010, 0.030, 0.010}
	for step := 0; step < 12; step++ {
		tr := healthy
		if step%3 == 2 { // at most 2 consecutive slow steps never occur
			tr = blip
		}
		if s, ok := d.Observe(mkTrace(tr)); ok {
			t.Fatalf("transient blip flagged stage %d at step %d", s.Stage, step)
		}
	}
}

func TestObserveSkipsDegenerateTraces(t *testing.T) {
	d, err := NewStragglerDetector([]float64{0.010, 0.010}, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stage count mismatch and zero-compute traces yield no evidence.
	if _, ok := d.Observe(mkTrace([]float64{0.020, 0.020, 0.020})); ok {
		t.Error("mismatched stage count triggered")
	}
	if _, ok := d.Observe(mkTrace([]float64{0.020, 0})); ok {
		t.Error("zero-compute trace triggered")
	}
}

func TestFaultMetricsRender(t *testing.T) {
	c := FaultCounters{Stragglers: 3, Panics: 1, Corruptions: 2, Retries: 4, SkippedSteps: 1, WatchdogTrips: 1, Replans: 1}
	text := RenderProm(FaultMetrics("adapipe_fault", c))
	for _, want := range []string{
		`adapipe_fault_injected_total{kind="straggler"} 3`,
		`adapipe_fault_injected_total{kind="panic"} 1`,
		`adapipe_fault_injected_total{kind="corrupt"} 2`,
		`adapipe_fault_retries_total 4`,
		`adapipe_fault_skipped_steps_total 1`,
		`adapipe_fault_watchdog_trips_total 1`,
		`adapipe_fault_replans_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	var sum FaultCounters
	sum.Add(c)
	sum.Add(c)
	if sum.Retries != 8 || sum.Replans != 2 {
		t.Fatalf("Add merged to %+v", sum)
	}
}
