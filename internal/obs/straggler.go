package obs

import "fmt"

// Straggler identifies a stage persistently slower than the plan predicted.
type Straggler struct {
	// Stage is the straggling stage index.
	Stage int
	// Slowdown is the stage's measured/predicted micro-step ratio divided
	// by the fastest stage's ratio — how much slower the stage runs than
	// the plan assumed, with clock-scale and model-bias effects common to
	// all stages divided out.
	Slowdown float64
}

// StragglerDetector watches measured iteration traces for a stage whose
// per-micro compute time exceeds the plan's prediction by more than the
// threshold for a window of consecutive steps. It is the trigger half of
// straggler-driven replanning: a detection feeds core.ReplanWithScale, which
// re-solves the partition under the degraded cost and validates the result
// in the simulator before adoption.
//
// Normalization divides each stage's measured/predicted ratio by the
// *minimum* ratio across stages, treating the fastest stage as running at
// modeled speed. A uniform clock-scale mismatch between the profile and the
// live machine therefore never looks like a straggler; only relative
// degradation does. (The minimum — not the median — is the baseline: at
// p=2 a median would split a real slowdown between both stages.)
type StragglerDetector struct {
	// Predicted is the per-stage predicted micro-step time (forward plus
	// backward per micro-batch) in seconds, from the plan's cost model.
	Predicted []float64
	// Threshold is the relative slowdown that counts a step against a
	// stage, e.g. 1.5 for "50% slower than planned".
	Threshold float64
	// Window is how many consecutive over-threshold steps trigger.
	Window int

	streaks []int
}

// NewStragglerDetector validates the configuration. Predicted entries must
// be positive, the threshold above 1, and the window at least 1.
func NewStragglerDetector(predicted []float64, threshold float64, window int) (*StragglerDetector, error) {
	if len(predicted) == 0 {
		return nil, fmt.Errorf("obs: straggler detector needs per-stage predictions")
	}
	for s, v := range predicted {
		if v <= 0 {
			return nil, fmt.Errorf("obs: predicted micro-step for stage %d is %g, want > 0", s, v)
		}
	}
	if threshold <= 1 {
		return nil, fmt.Errorf("obs: straggler threshold %g must exceed 1", threshold)
	}
	if window < 1 {
		return nil, fmt.Errorf("obs: straggler window %d must be >= 1", window)
	}
	return &StragglerDetector{
		Predicted: append([]float64(nil), predicted...),
		Threshold: threshold,
		Window:    window,
		streaks:   make([]int, len(predicted)),
	}, nil
}

// Observe folds one measured iteration into the detector and reports whether
// a straggler crossed the window. On a trigger the detection is returned and
// all streaks reset, so the caller sees exactly one trigger per sustained
// degradation — the one-shot that kicks off a replan.
func (d *StragglerDetector) Observe(t *Trace) (Straggler, bool) {
	measured := t.Result().MicroStep
	if len(measured) != len(d.Predicted) {
		return Straggler{}, false
	}
	ratios := make([]float64, len(measured))
	minRatio := 0.0
	for s := range measured {
		if measured[s] <= 0 {
			// A stage with no measured compute (empty trace) yields no
			// evidence either way; skip the whole observation.
			return Straggler{}, false
		}
		ratios[s] = measured[s] / d.Predicted[s]
		if minRatio == 0 || ratios[s] < minRatio {
			minRatio = ratios[s]
		}
	}
	worst := Straggler{Stage: -1}
	for s, r := range ratios {
		rel := r / minRatio
		if rel >= d.Threshold {
			d.streaks[s]++
		} else {
			d.streaks[s] = 0
		}
		if d.streaks[s] >= d.Window && rel > worst.Slowdown {
			worst = Straggler{Stage: s, Slowdown: rel}
		}
	}
	if worst.Stage < 0 {
		return Straggler{}, false
	}
	for s := range d.streaks {
		d.streaks[s] = 0
	}
	return worst, true
}

// Scales converts a detection into the per-stage cost multipliers fed to the
// planner: the straggling stage's compute cost is scaled by the observed
// slowdown, every other stage is unchanged.
func (s Straggler) Scales(stages int) []float64 {
	out := make([]float64, stages)
	for i := range out {
		out[i] = 1
	}
	if s.Stage >= 0 && s.Stage < stages && s.Slowdown > 1 {
		out[s.Stage] = s.Slowdown
	}
	return out
}
