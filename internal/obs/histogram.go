package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket, log-scaled latency histogram. The bucket
// bounds double from 1µs up to ~67s (powers of two), which spans everything
// the daemon times — sub-microsecond cache hits land in the first bucket,
// multi-second cold searches in the top decades — at a constant 27 counters
// per histogram. Observations are lock-free (one atomic add per sample plus
// one for the sum), so the serving hot path never contends on metrics.
//
// The bounds are fixed at compile time rather than configurable: every
// exposition of every histogram family then has an identical, deterministic
// bucket schema, which is what keeps /metrics output byte-stable.
type Histogram struct {
	// counts[i] tallies samples in bucket i (see histBounds); the final
	// extra slot is the +Inf overflow bucket.
	counts [len(histBounds) + 1]atomic.Int64
	// sumNanos accumulates the exact total of all observations.
	sumNanos atomic.Int64
}

// histBounds are the upper bounds (inclusive) of the finite buckets, in
// nanoseconds: 1µs << i for i in [0,26), topping out at 2^26 µs ≈ 67s.
var histBounds = func() [27]int64 {
	var b [27]int64
	for i := range b {
		b[i] = int64(time.Microsecond) << i
	}
	return b
}()

// Observe records one duration. Negative durations (possible under clock
// adjustment) clamp to zero so they cannot corrupt the sum or underflow the
// bucket search.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n := int64(d)
	i := 0
	for i < len(histBounds) && n > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(n)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state, the
// shape the Prometheus renderer consumes.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds in nanoseconds.
	Bounds []int64
	// Counts holds per-bucket tallies; len(Bounds)+1 entries, the last
	// being the +Inf bucket.
	Counts []int64
	// SumNanos is the total of all observations.
	SumNanos int64
}

// Snapshot copies the current counters. Concurrent Observe calls may land
// between bucket reads; each sample is still counted exactly once in the
// snapshot it straddles into.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:   append([]int64(nil), histBounds[:]...),
		Counts:   make([]int64, len(histBounds)+1),
		SumNanos: h.sumNanos.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// RenderPromHistogram renders one histogram family in the Prometheus text
// exposition format (seconds, cumulative buckets, _sum/_count), matching the
// deterministic style of RenderProm: fixed bucket order, shortest-round-trip
// float formatting, one trailing newline per line.
func RenderPromHistogram(name, help string, s HistogramSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		le := strconv.FormatFloat(time.Duration(bound).Seconds(), 'g', -1, 64)
		fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	sum := strconv.FormatFloat(time.Duration(s.SumNanos).Seconds(), 'g', -1, 64)
	fmt.Fprintf(&b, "%s_sum %s\n", name, sum)
	fmt.Fprintf(&b, "%s_count %d\n", name, cum)
	return b.String()
}
