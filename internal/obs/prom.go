package obs

import (
	"fmt"
	"strconv"
	"strings"

	"adapipe/internal/sim"
)

// Metric is one Prometheus-style gauge sample. Labels are an ordered slice
// (not a map) so the exposition is byte-for-byte deterministic.
type Metric struct {
	// Name is the metric name, e.g. "adapipe_sim_iter_seconds".
	Name string
	// Help is the one-line HELP text emitted once per metric name.
	Help string
	// Labels are (key, value) pairs in emission order.
	Labels [][2]string
	// Value is the sample value.
	Value float64
}

// RenderProm renders metrics in the Prometheus text exposition format
// (version 0.0.4): `# HELP`/`# TYPE gauge` once per metric name in first-
// appearance order, then one sample line per metric. The output is
// deterministic for a deterministic input slice.
func RenderProm(metrics []Metric) string {
	var b strings.Builder
	seen := map[string]bool{}
	// Group samples under their first-appearance HELP/TYPE header without
	// reordering across names.
	for i := 0; i < len(metrics); i++ {
		m := metrics[i]
		if seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		if m.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s gauge\n", m.Name)
		for _, s := range metrics[i:] {
			if s.Name != m.Name {
				continue
			}
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for li, l := range s.Labels {
					if li > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=%q", l[0], l[1])
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(s.Value, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SimMetrics converts a simulated (or measured-and-converted) iteration into
// gauges under the given name prefix: makespan, bubble ratio, and per-device
// busy/bubble/peak series.
func SimMetrics(prefix string, r sim.Result) []Metric {
	ms := []Metric{
		{Name: prefix + "_iter_seconds", Help: "iteration makespan in seconds", Value: r.IterTime},
		{Name: prefix + "_bubble_ratio", Help: "idle share of total device time", Value: r.BubbleRatio()},
	}
	for d := range r.Busy {
		dev := [2]string{"device", strconv.Itoa(d)}
		ms = append(ms,
			Metric{Name: prefix + "_device_busy_seconds", Help: "per-device compute-busy seconds", Labels: [][2]string{dev}, Value: r.Busy[d]},
			Metric{Name: prefix + "_device_bubble_seconds", Help: "per-device idle (bubble) seconds", Labels: [][2]string{dev}, Value: r.Bubble[d]},
		)
	}
	for d, pk := range r.PeakMem {
		ms = append(ms, Metric{
			Name: prefix + "_device_peak_bytes", Help: "per-device peak memory in bytes",
			Labels: [][2]string{{"device", strconv.Itoa(d)}}, Value: float64(pk),
		})
	}
	return ms
}

// TraceMetrics converts a measured engine trace into gauges: wall time,
// stall ratio, and per-stage busy/stall/peak-activation series. These are
// the engine-only quantities SimMetrics cannot express (channel-wait stall
// is invisible to the simulator, which has no channels).
func TraceMetrics(prefix string, t *Trace) []Metric {
	ms := []Metric{
		{Name: prefix + "_wall_seconds", Help: "measured iteration wall time in seconds", Value: t.WallTime},
		{Name: prefix + "_stall_ratio", Help: "channel-wait share of total stage time", Value: t.StallRatio()},
	}
	for s := range t.Busy {
		stage := [2]string{"stage", strconv.Itoa(s)}
		ms = append(ms,
			Metric{Name: prefix + "_stage_busy_seconds", Help: "per-stage compute seconds", Labels: [][2]string{stage}, Value: t.Busy[s]},
			Metric{Name: prefix + "_stage_stall_seconds", Help: "per-stage channel-wait seconds", Labels: [][2]string{stage}, Value: t.Stall[s]},
			Metric{Name: prefix + "_stage_peak_activation_bytes", Help: "per-stage live-activation high-water mark", Labels: [][2]string{stage}, Value: float64(t.PeakBytes[s])},
		)
	}
	return ms
}

// DriftMetrics converts a drift report into gauges: the time scale, the
// makespan and bubble errors, and per-stage forward/backward/peak errors.
func DriftMetrics(prefix string, d Drift) []Metric {
	ms := []Metric{
		{Name: prefix + "_time_scale", Help: "measured/simulated busy-time ratio factored out before errors", Value: d.TimeScale},
		{Name: prefix + "_iter_rel_err", Help: "relative makespan error after rescaling", Value: d.IterErr},
		{Name: prefix + "_bubble_abs_err", Help: "absolute bubble-fraction difference", Value: d.BubbleErr},
	}
	for _, s := range d.Stages {
		stage := [2]string{"stage", strconv.Itoa(s.Stage)}
		ms = append(ms,
			Metric{Name: prefix + "_stage_fwd_rel_err", Help: "per-stage forward-time relative error", Labels: [][2]string{stage}, Value: s.FwdErr},
			Metric{Name: prefix + "_stage_bwd_rel_err", Help: "per-stage backward-time relative error", Labels: [][2]string{stage}, Value: s.BwdErr},
			Metric{Name: prefix + "_stage_peak_rel_err", Help: "per-stage peak-memory relative error", Labels: [][2]string{stage}, Value: s.PeakErr},
		)
	}
	return ms
}
