package obs

// FaultCounters aggregates the robustness story of one training run: how
// many faults were injected (by kind) and what the recovery layer did about
// them. The injection counts come from the fault injector; the action counts
// from the supervisor and replanning loop. Exported via FaultMetrics through
// the same Prometheus text exposition as the sim/trace/drift gauges.
type FaultCounters struct {
	// Stragglers, Panics, Corruptions and NodeLosses count injected faults
	// by kind (NodeLosses counts ops killed by a dead node, so one lost node
	// typically shows up once per attempt until the resize).
	Stragglers, Panics, Corruptions, NodeLosses int64
	// Retries counts step retries from the in-memory snapshot.
	Retries int64
	// SkippedSteps counts optimizer steps skipped by the non-finite guard
	// after the retry budget was spent.
	SkippedSteps int64
	// WatchdogTrips counts iterations canceled by the watchdog timeout.
	WatchdogTrips int64
	// Replans counts adopted straggler-driven repartitions.
	Replans int64
	// LossesDetected counts nodes the membership model classified as
	// permanently lost (the detection half of elastic recovery).
	LossesDetected int64
	// Resizes counts elastic replan+rebind cycles onto a new cluster shape
	// (shrinks after a node loss plus grows after a scale-up arrival).
	Resizes int64
	// ReplanWallNanos is the total wall-clock time spent inside elastic
	// resizes (restore + replan + rebuild + rebind), in nanoseconds.
	ReplanWallNanos int64
}

// Add accumulates another counter set (e.g. merging per-phase runs).
func (c *FaultCounters) Add(o FaultCounters) {
	c.Stragglers += o.Stragglers
	c.Panics += o.Panics
	c.Corruptions += o.Corruptions
	c.NodeLosses += o.NodeLosses
	c.Retries += o.Retries
	c.SkippedSteps += o.SkippedSteps
	c.WatchdogTrips += o.WatchdogTrips
	c.Replans += o.Replans
	c.LossesDetected += o.LossesDetected
	c.Resizes += o.Resizes
	c.ReplanWallNanos += o.ReplanWallNanos
}

// FaultMetrics converts fault counters into gauges under the given name
// prefix, with injected faults labeled by kind.
func FaultMetrics(prefix string, c FaultCounters) []Metric {
	injected := "injected faults by kind"
	return []Metric{
		{Name: prefix + "_injected_total", Help: injected, Labels: [][2]string{{"kind", "straggler"}}, Value: float64(c.Stragglers)},
		{Name: prefix + "_injected_total", Help: injected, Labels: [][2]string{{"kind", "panic"}}, Value: float64(c.Panics)},
		{Name: prefix + "_injected_total", Help: injected, Labels: [][2]string{{"kind", "corrupt"}}, Value: float64(c.Corruptions)},
		{Name: prefix + "_injected_total", Help: injected, Labels: [][2]string{{"kind", "nodeloss"}}, Value: float64(c.NodeLosses)},
		{Name: prefix + "_retries_total", Help: "step retries from the in-memory snapshot", Value: float64(c.Retries)},
		{Name: prefix + "_skipped_steps_total", Help: "optimizer steps skipped by the non-finite guard", Value: float64(c.SkippedSteps)},
		{Name: prefix + "_watchdog_trips_total", Help: "iterations canceled by the watchdog timeout", Value: float64(c.WatchdogTrips)},
		{Name: prefix + "_replans_total", Help: "adopted straggler-driven repartitions", Value: float64(c.Replans)},
		{Name: prefix + "_node_losses_detected_total", Help: "nodes classified permanently lost by the membership model", Value: float64(c.LossesDetected)},
		{Name: prefix + "_resizes_total", Help: "elastic replan+rebind cycles onto a new cluster shape", Value: float64(c.Resizes)},
		{Name: prefix + "_replan_wall_seconds", Help: "wall-clock time spent inside elastic resizes", Value: float64(c.ReplanWallNanos) / 1e9},
	}
}
