package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchRun is one benchmark result in a BenchReport: the standard
// testing.Benchmark figures for a named workload.
type BenchRun struct {
	// Name identifies the workload, e.g. "PlanSearch/serial".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the per-iteration figures.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// BenchReport is the machine-readable planner-search benchmark record `make
// bench` writes to BENCH_planner.json and CI uploads as an artifact: the
// serial-vs-parallel wall times, the measured speedup, and the search-effort
// counters behind them. Field order (and hence the emitted JSON) is fixed, so
// two runs differ only where the measurements do.
type BenchReport struct {
	// Model and Shape describe the benchmarked search ("GPT-3 175B",
	// "L=194 p=8 n=32").
	Model string `json:"model"`
	Shape string `json:"shape"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) on the benchmarking host — the
	// ceiling on any real speedup.
	GoMaxProcs int `json:"gomaxprocs"`
	// Workers is the pool size of the parallel runs.
	Workers int `json:"workers"`
	// SpeedupParallel is serial ns/op divided by parallel ns/op.
	SpeedupParallel float64 `json:"speedup_parallel"`
	// ReplanNsPerOp is the cold ReplanWithScale latency in ns/op: the
	// incremental state is dropped before every round, so each one pays the
	// full re-search. Promoted out of Runs so dashboards and diffs read it
	// without scanning the run list.
	ReplanNsPerOp int64 `json:"replan_ns_per_op"`
	// ReplanIncrementalNsPerOp is the warm-started replan latency in ns/op —
	// the planner keeps its partition-DP memo and iso-cache between rounds,
	// so only the levels the scale change touched are recomputed. This is
	// the straggler-reaction number the ROADMAP tracks toward its
	// sub-millisecond target. Zero in reports written before the field
	// existed.
	ReplanIncrementalNsPerOp int64 `json:"replan_incremental_ns_per_op"`
	// SpeedupReplanIncremental is cold replan ns/op divided by incremental
	// replan ns/op.
	SpeedupReplanIncremental float64 `json:"speedup_replan_incremental"`
	// SweepColdNsPerPoint is the per-point latency of a grid sweep against a
	// fresh cost store: every point pays its own knapsack work. Zero in
	// reports written before the cost store existed.
	SweepColdNsPerPoint int64 `json:"sweep_cold_ns_per_point"`
	// SweepWarmNsPerPoint is the per-point latency of the same grid against a
	// store prewarmed by one point of the family — the amortized cost a
	// /v1/sweep pays after its first point. Zero in older reports.
	SweepWarmNsPerPoint int64 `json:"sweep_warm_ns_per_point"`
	// SpeedupSweepWarm is cold sweep ns/point divided by warm sweep ns/point —
	// the measured amortization the shared cost store buys a grid.
	SpeedupSweepWarm float64 `json:"speedup_sweep_warm"`
	// KnapsackRuns and CacheHitRate are the search-effort counters of one
	// full search (parallel mode), tying the wall-time figures to the work
	// they bought.
	KnapsackRuns int     `json:"knapsack_runs"`
	CacheHitRate float64 `json:"iso_cache_hit_rate"`
	// Runs holds the individual benchmark results.
	Runs []BenchRun `json:"runs"`
}

// WriteBenchJSON writes the report to path as indented JSON with a trailing
// newline.
func WriteBenchJSON(path string, r BenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding bench report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON reads a report previously written by WriteBenchJSON.
// Reports from older builds may lack newer fields, which decode to zero —
// regression gates must treat a zero baseline as "not recorded", not "was
// instantaneous".
func ReadBenchJSON(path string) (BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchReport{}, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return BenchReport{}, fmt.Errorf("obs: decoding bench report %s: %w", path, err)
	}
	return r, nil
}
