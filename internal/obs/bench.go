package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchRun is one benchmark result in a BenchReport: the standard
// testing.Benchmark figures for a named workload.
type BenchRun struct {
	// Name identifies the workload, e.g. "PlanSearch/serial".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the per-iteration figures.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// BenchReport is the machine-readable planner-search benchmark record `make
// bench` writes to BENCH_planner.json and CI uploads as an artifact: the
// serial-vs-parallel wall times, the measured speedup, and the search-effort
// counters behind them. Field order (and hence the emitted JSON) is fixed, so
// two runs differ only where the measurements do.
type BenchReport struct {
	// Model and Shape describe the benchmarked search ("GPT-3 175B",
	// "L=194 p=8 n=32").
	Model string `json:"model"`
	Shape string `json:"shape"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) on the benchmarking host — the
	// ceiling on any real speedup.
	GoMaxProcs int `json:"gomaxprocs"`
	// Workers is the pool size of the parallel runs.
	Workers int `json:"workers"`
	// SpeedupParallel is serial ns/op divided by parallel ns/op.
	SpeedupParallel float64 `json:"speedup_parallel"`
	// ReplanNsPerOp is the incremental ReplanWithScale latency in ns/op —
	// the straggler-reaction number the ROADMAP tracks toward its
	// sub-millisecond target, promoted out of Runs so dashboards and diffs
	// read it without scanning the run list.
	ReplanNsPerOp int64 `json:"replan_ns_per_op"`
	// KnapsackRuns and CacheHitRate are the search-effort counters of one
	// full search (parallel mode), tying the wall-time figures to the work
	// they bought.
	KnapsackRuns int     `json:"knapsack_runs"`
	CacheHitRate float64 `json:"iso_cache_hit_rate"`
	// Runs holds the individual benchmark results.
	Runs []BenchRun `json:"runs"`
}

// WriteBenchJSON writes the report to path as indented JSON with a trailing
// newline.
func WriteBenchJSON(path string, r BenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding bench report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
