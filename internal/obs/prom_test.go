package obs

import (
	"strings"
	"testing"

	"adapipe/internal/sim"
)

func TestRenderPromFormat(t *testing.T) {
	out := RenderProm([]Metric{
		{Name: "x_total", Help: "an example", Value: 3},
		{Name: "x_busy", Help: "per-device", Labels: [][2]string{{"device", "0"}}, Value: 1.5},
		{Name: "x_busy", Help: "per-device", Labels: [][2]string{{"device", "1"}}, Value: 2.5},
	})
	want := `# HELP x_total an example
# TYPE x_total gauge
x_total 3
# HELP x_busy per-device
# TYPE x_busy gauge
x_busy{device="0"} 1.5
x_busy{device="1"} 2.5
`
	if out != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", out, want)
	}
}

func TestRenderPromDeterministic(t *testing.T) {
	ms := []Metric{
		{Name: "a", Help: "first", Value: 1},
		{Name: "b", Labels: [][2]string{{"k", "v"}, {"k2", "v2"}}, Value: 2},
		{Name: "a", Help: "first", Value: 3},
	}
	first := RenderProm(ms)
	for i := 0; i < 10; i++ {
		if got := RenderProm(ms); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	// Samples sharing a name group under one header.
	if strings.Count(first, "# TYPE a gauge") != 1 {
		t.Errorf("HELP/TYPE header repeated:\n%s", first)
	}
	if !strings.Contains(first, `b{k="v",k2="v2"} 2`) {
		t.Errorf("multi-label sample malformed:\n%s", first)
	}
}

func TestRenderPromEscapesHelp(t *testing.T) {
	out := RenderProm([]Metric{{Name: "m", Help: "line\nbreak \\ slash", Value: 0}})
	if !strings.Contains(out, `line\nbreak \\ slash`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
}

func TestMetricFamilies(t *testing.T) {
	res := sim.Result{
		IterTime: 2,
		Busy:     []float64{1.5, 1.2},
		Bubble:   []float64{0.5, 0.8},
		PeakMem:  []int64{100, 200},
	}
	simOut := RenderProm(SimMetrics("p", res))
	for _, want := range []string{"p_iter_seconds 2", `p_device_busy_seconds{device="1"} 1.2`, `p_device_peak_bytes{device="0"} 100`} {
		if !strings.Contains(simOut, want) {
			t.Errorf("SimMetrics output missing %q:\n%s", want, simOut)
		}
	}

	tr := &Trace{
		WallTime:  2,
		Busy:      []float64{1.5, 1.2},
		Stall:     []float64{0.3, 0.6},
		PeakBytes: []int64{64, 32},
	}
	trOut := RenderProm(TraceMetrics("t", tr))
	for _, want := range []string{"t_wall_seconds 2", `t_stage_stall_seconds{stage="1"} 0.6`, `t_stage_peak_activation_bytes{stage="0"} 64`} {
		if !strings.Contains(trOut, want) {
			t.Errorf("TraceMetrics output missing %q:\n%s", want, trOut)
		}
	}

	d := Drift{TimeScale: 10, IterErr: 0.05, BubbleErr: 0.01,
		Stages: []StageDrift{{Stage: 0, FwdErr: -0.1, BwdErr: 0.2, PeakErr: 0.3}}}
	dOut := RenderProm(DriftMetrics("d", d))
	for _, want := range []string{"d_time_scale 10", `d_stage_bwd_rel_err{stage="0"} 0.2`} {
		if !strings.Contains(dOut, want) {
			t.Errorf("DriftMetrics output missing %q:\n%s", want, dOut)
		}
	}
}
