package obs

import (
	"math"
	"testing"
	"time"

	"adapipe/internal/schedule"
)

func TestRecorderAssemblesTrace(t *testing.T) {
	r := NewRecorder()
	r.Reset(2)
	base := r.start
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	fwd := func(stage, micro int) schedule.Op {
		return schedule.Op{Kind: schedule.Forward, Stage: stage, Micros: []int{micro}}
	}
	bwd := func(stage, micro int) schedule.Op {
		return schedule.Op{Kind: schedule.Backward, Stage: stage, Micros: []int{micro}}
	}
	// Stage 0: compute [0,10] then [30,50]; stage 1 waits 10ms then [10,25].
	r.Stage(0).Record(fwd(0, 0), at(0), at(10), 0, 64)
	r.Stage(0).Record(bwd(0, 0), at(30), at(50), 20*time.Millisecond, 0)
	r.Stage(1).Record(fwd(1, 0), at(10), at(25), 10*time.Millisecond, 32)

	tr := r.Trace()
	if len(tr.Spans) != 3 {
		t.Fatalf("%d spans, want 3", len(tr.Spans))
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-6 }
	if !approx(tr.WallTime, 0.050) {
		t.Errorf("WallTime = %g, want 0.050", tr.WallTime)
	}
	if !approx(tr.Busy[0], 0.030) || !approx(tr.Busy[1], 0.015) {
		t.Errorf("Busy = %v, want [0.030 0.015]", tr.Busy)
	}
	if !approx(tr.Stall[0], 0.020) || !approx(tr.Stall[1], 0.010) {
		t.Errorf("Stall = %v, want [0.020 0.010]", tr.Stall)
	}
	if tr.PeakBytes[0] != 64 || tr.PeakBytes[1] != 32 {
		t.Errorf("PeakBytes = %v, want [64 32]", tr.PeakBytes)
	}
	// Spans sort by (Start, Stage).
	if tr.Spans[0].Stage != 0 || tr.Spans[1].Stage != 1 || tr.Spans[2].Stage != 0 {
		t.Errorf("span order wrong: %+v", tr.Spans)
	}
	// Memory curves start at a zero baseline and track LiveBytes.
	if len(tr.MemCurve[0]) != 3 || tr.MemCurve[0][0].Bytes != 0 || tr.MemCurve[0][1].Bytes != 64 {
		t.Errorf("stage 0 mem curve = %v", tr.MemCurve[0])
	}

	// StallRatio = total stall / (wall × stages).
	if got, want := tr.StallRatio(), 0.030/(0.050*2); !approx(got, want) {
		t.Errorf("StallRatio = %g, want %g", got, want)
	}

	// Conversion to sim.Result keeps totals and computes per-stage bubbles.
	res := tr.Result()
	if !approx(res.IterTime, 0.050) {
		t.Errorf("IterTime = %g", res.IterTime)
	}
	if !approx(res.Bubble[0], 0.020) || !approx(res.Bubble[1], 0.035) {
		t.Errorf("Bubble = %v, want [0.020 0.035]", res.Bubble)
	}
	// Stage 0: mean fwd 10ms + mean bwd 20ms; stage 1 fwd only.
	if !approx(res.MicroStep[0], 0.030) || !approx(res.MicroStep[1], 0.015) {
		t.Errorf("MicroStep = %v", res.MicroStep)
	}
	if len(res.Timeline) != 3 || len(res.MemTimeline) != 2 {
		t.Errorf("timeline %d events, mem %d devices", len(res.Timeline), len(res.MemTimeline))
	}
}

func TestRecorderResetDiscards(t *testing.T) {
	r := NewRecorder()
	r.Reset(1)
	r.Stage(0).Record(schedule.Op{Kind: schedule.Forward, Micros: []int{0}},
		r.start, r.start.Add(time.Millisecond), 0, 8)
	r.Reset(1)
	if tr := r.Trace(); len(tr.Spans) != 0 {
		t.Errorf("Reset kept %d spans", len(tr.Spans))
	}
}
