package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PipeSync enforces goroutine hygiene in the pipeline executors
// (internal/train, internal/sim), where a silent race corrupts the schedule
// comparison against the DAPPLE-style baselines instead of crashing. Three
// patterns are flagged:
//
//  1. a goroutine launched inside a loop whose function literal captures
//     the loop variable instead of receiving it as an argument. Go ≥1.22
//     gives each iteration a fresh variable, but the capture still couples
//     the goroutine to mutation of the variable inside the iteration and
//     breaks under toolchains built with older language versions — the
//     executor passes stage/replica indices explicitly;
//  2. WaitGroup.Add called inside the spawned goroutine itself, which races
//     with the parent's Wait;
//  3. a channel send while a mutex is held (between Lock and Unlock, or
//     after a deferred Unlock), which blocks the pipeline with the lock
//     taken as soon as the peer stage also needs it;
//  4. a naked (non-select) channel send or receive inside a goroutine body.
//     In the 1F1B executor a stage that dies leaves its peers blocked on
//     such an op forever — the deadlock the cancellation protocol exists to
//     prevent — so every stage-goroutine channel op must be a select case
//     alongside the iteration's done channel.
var PipeSync = &Analyzer{
	Name: "pipesync",
	Doc: "flags loop-variable capture in go statements, WaitGroup.Add inside the " +
		"spawned goroutine, channel sends while holding a mutex, and naked " +
		"(non-select) channel ops in goroutine bodies in the pipeline " +
		"executor packages",
	Applies: pathMatcher(
		nil,
		"adapipe/internal/train",
		"adapipe/internal/sim",
		"pipesync", // fixture packages
	),
	Run: runPipeSync,
}

func runPipeSync(pass *Pass) error {
	for _, file := range pass.Files {
		checkGoStmts(pass, file)
		checkSendUnderMutex(pass, file)
	}
	return nil
}

// checkGoStmts walks loops looking for `go func(){...}()` bodies that
// capture the loop variables, and for WaitGroup.Add calls inside any
// goroutine function literal.
func checkGoStmts(pass *Pass, file *ast.File) {
	// Collect the loop variables in scope at each go statement.
	type frame struct{ vars []types.Object }
	var stack []frame
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.RangeStmt:
				var vars []types.Object
				for _, e := range []ast.Expr{st.Key, st.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							vars = append(vars, obj)
						}
					}
				}
				stack = append(stack, frame{vars})
				walk(st.Body)
				stack = stack[:len(stack)-1]
				return false
			case *ast.ForStmt:
				var vars []types.Object
				if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								vars = append(vars, obj)
							}
						}
					}
				}
				stack = append(stack, frame{vars})
				if st.Body != nil {
					walk(st.Body)
				}
				stack = stack[:len(stack)-1]
				return false
			case *ast.GoStmt:
				fl, ok := st.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				for _, fr := range stack {
					for _, obj := range fr.vars {
						if usesObjectNode(pass, fl.Body, obj) {
							pass.Reportf(st.Pos(),
								"goroutine captures loop variable %s; pass it as an argument "+
									"(go func(%s %s) {...}(%s)) so the stage binding is explicit",
								obj.Name(), obj.Name(), obj.Type(), obj.Name())
						}
					}
				}
				checkWaitGroupAdd(pass, fl)
				checkNakedChannelOps(pass, fl)
				return true
			}
			return true
		})
	}
	walk(file)
}

// usesObject variant for statements.
func usesObjectNode(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkWaitGroupAdd flags wg.Add calls lexically inside a goroutine body:
// if the parent reaches Wait before the goroutine is scheduled, the Add
// races the Wait and the iteration can return early.
func checkWaitGroupAdd(pass *Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != fl {
			return false // nested goroutine bodies get their own GoStmt visit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isSyncType(pass.TypeOf(sel.X), "WaitGroup") {
			return true
		}
		pass.Reportf(call.Pos(),
			"WaitGroup.Add inside the spawned goroutine races the parent's Wait; "+
				"call Add before the go statement")
		return true
	})
}

// checkNakedChannelOps flags channel sends and receives in a goroutine body
// that are not select-case communications. A peer goroutine that panics (or
// is canceled) will never complete the matching op, so a naked op blocks the
// goroutine forever and the parent's wg.Wait with it; the executor's
// cancellation discipline requires every such op to be a select case paired
// with the iteration's done channel. Ops in the parent function (which owns
// the lifecycle) and close calls (which never block) are out of scope.
func checkNakedChannelOps(pass *Pass, fl *ast.FuncLit) {
	// First pass: collect the ops that appear as select-case comms.
	guarded := map[ast.Node]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			switch st := comm.Comm.(type) {
			case *ast.SendStmt:
				guarded[st] = true
			case *ast.ExprStmt:
				guarded[st.X] = true
			case *ast.AssignStmt:
				for _, e := range st.Rhs {
					guarded[e] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if _, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
				return false // nested goroutine bodies get their own GoStmt visit
			}
		}
		switch st := n.(type) {
		case *ast.SendStmt:
			if !guarded[st] && isChanType(pass.TypeOf(st.Chan)) {
				pass.Reportf(st.Arrow,
					"naked channel send in a goroutine blocks forever if the peer dies; "+
						"make it a select case alongside the cancellation channel")
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && !guarded[st] && isChanType(pass.TypeOf(st.X)) {
				pass.Reportf(st.OpPos,
					"naked channel receive in a goroutine blocks forever if the peer dies; "+
						"make it a select case alongside the cancellation channel")
			}
		}
		return true
	})
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// checkSendUnderMutex scans each function body in source order, tracking a
// lexical held-mutex count across Lock/Unlock calls (a deferred Unlock
// keeps the mutex held for the rest of the body), and flags channel sends
// made while the count is positive.
func checkSendUnderMutex(pass *Pass, file *ast.File) {
	var scan func(body *ast.BlockStmt)
	scan = func(body *ast.BlockStmt) {
		held := 0
		deferred := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				scan(st.Body)
				return false
			case *ast.DeferStmt:
				if isMutexCall(pass, st.Call, "Unlock") || isMutexCall(pass, st.Call, "RUnlock") {
					deferred = true
				}
				return false
			case *ast.CallExpr:
				switch {
				case isMutexCall(pass, st, "Lock"), isMutexCall(pass, st, "RLock"):
					held++
				case isMutexCall(pass, st, "Unlock"), isMutexCall(pass, st, "RUnlock"):
					if held > 0 {
						held--
					}
				}
			case *ast.SendStmt:
				if held > 0 || deferred {
					pass.Reportf(st.Arrow,
						"channel send while holding a mutex can deadlock the pipeline "+
							"(the receiver may need the same lock); send after Unlock")
				}
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			scan(fd.Body)
		}
	}
}

// isMutexCall reports whether call is m.<method>() on a sync.Mutex or
// sync.RWMutex receiver.
func isMutexCall(pass *Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	return isSyncType(pass.TypeOf(sel.X), "Mutex") || isSyncType(pass.TypeOf(sel.X), "RWMutex")
}

// isSyncType reports whether t (possibly behind a pointer) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
