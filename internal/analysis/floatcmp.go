package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags exact ==/!= comparisons between floating-point values in
// the solver packages. The two-level DP compares modeled costs and times
// that are sums of float64 terms; exact equality on such values is fragile
// (associativity-dependent rounding can flip a comparison between otherwise
// identical runs of a refactored solver) and breaks tie-handling
// determinism. Use an epsilon compare such as partition.AlmostEq instead.
//
// Comparisons where both operands are compile-time constants are exact by
// definition and stay allowed.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flags exact ==/!= between float-typed cost/time expressions in the solver " +
		"packages; use the epsilon helper (partition.AlmostEq) instead",
	Applies: pathMatcher(
		nil,
		"adapipe/internal/core",
		"adapipe/internal/partition",
		"adapipe/internal/recompute",
		"floatcmp", // fixture packages
	),
	SkipTests: true,
	Run:       runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if isConst(pass, be.X) && isConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"exact %s between floats %s and %s; modeled costs accumulate rounding error — "+
					"use the epsilon compare helper (partition.AlmostEq)",
				be.Op, exprString(pass.Fset, be.X), exprString(pass.Fset, be.Y))
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
