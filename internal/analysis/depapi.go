package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DepAPI flags calls to deprecated API surface. PR 10's façade cleanup left
// exactly one documented construction path — build a PlanRequest and call
// NewPlannerFromRequest or PlanContext — with the positional constructor kept
// only as a deprecated compatibility wrapper. A migration that compiles is
// not a migration that sticks: new code (especially examples, which readers
// copy) reaches for the positional form again unless something pushes back.
// Two rules:
//
//  1. a call to any function declared in the same package whose doc comment
//     carries a "Deprecated:" notice — the standard Go deprecation marker —
//     is flagged. Doc comments are only visible for the package under
//     analysis, so this rule is necessarily same-package.
//  2. a call to the root package's positional NewPlanner from anywhere in
//     scope (the cmd/ and examples/ trees) is flagged by name: the callee's
//     package path and identifier are matched through the type checker, so
//     aliasing or dot-importing does not evade it.
//
// Intentional positional construction (the chaos and observe examples build
// synthetic toy clusters the request schema cannot express) carries an ignore
// directive with the reason, which ignoreaudit keeps honest.
var DepAPI = &Analyzer{
	Name: "depapi",
	Doc: "flags calls to deprecated constructors: same-package calls to functions " +
		"documented Deprecated:, and any call to the positional adapipe.NewPlanner — " +
		"build a PlanRequest and use NewPlannerFromRequest or PlanContext instead",
	Applies: pathMatcher(
		[]string{"adapipe"},
		"cmd/",
		"examples/",
		"depapi", // fixture packages
	),
	Run: runDepAPI,
}

// deniedCalls names cross-package deprecated functions by (package path,
// identifier). Doc comments of imported packages are not available to the
// type checker, so deprecations that must hold across the repo are listed
// here explicitly.
var deniedCalls = map[[2]string]string{
	{"adapipe", "NewPlanner"}: "build a PlanRequest and use NewPlannerFromRequest or PlanContext",
}

func runDepAPI(pass *Pass) error {
	deprecated := localDeprecated(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil {
				return true
			}
			if note, ok := deprecated[callee]; ok {
				pass.Reportf(call.Pos(), "call to deprecated %s: %s", callee.Name(), note)
				return true
			}
			if callee.Pkg() != nil && callee.Type() != nil {
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() == nil {
					if hint, ok := deniedCalls[[2]string{callee.Pkg().Path(), callee.Name()}]; ok {
						pass.Reportf(call.Pos(), "call to deprecated %s.%s: %s",
							callee.Pkg().Name(), callee.Name(), hint)
					}
				}
			}
			return true
		})
	}
	return nil
}

// localDeprecated collects the package's own function declarations whose doc
// comment carries a "Deprecated:" notice, mapped to the first line of that
// notice (the migration hint shown in the diagnostic).
func localDeprecated(pass *Pass) map[*types.Func]string {
	out := map[*types.Func]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			note, ok := deprecationNote(fd.Doc)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = note
			}
		}
	}
	return out
}

// deprecationNote extracts the first line of a doc comment's "Deprecated:"
// paragraph, following the convention gopls and staticcheck recognize: the
// marker must start a line of the comment.
func deprecationNote(doc *ast.CommentGroup) (string, bool) {
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// calleeFunc resolves the called function object, seeing through selector
// and plain identifier call forms. Method values, conversions and builtins
// resolve to nil or a non-*types.Func and are skipped by the caller.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
