package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockGuard checks `// guarded by <mu>` field annotations: any struct field
// whose doc or line comment names a guarding mutex may only be read or
// written from a method of that struct while the named mutex is held on
// every path that reaches the access. The annotation convention documents
// the locking discipline in the one place it can't drift from — next to the
// field — and this analyzer turns the comment into a checked invariant.
//
// The analysis is a per-method, path-sensitive scan: Lock/RLock on the
// receiver's mutex raises the held depth, Unlock/RUnlock lowers it, a
// deferred Unlock keeps the mutex held for the rest of the body, and
// branches are merged conservatively — a branch that terminates (return,
// panic, break, continue, goto) does not leak its lock-state back into the
// fall-through path, so the common `if cached { mu.Unlock(); return }`
// pattern is understood. Function literals inherit the lock state at their
// definition point (the `add := func(...)` helpers defined inside a critical
// section), except goroutine bodies, which start unlocked — they run after
// the spawner may have released the lock.
//
// Scope limits, by design: only accesses through the method's receiver are
// checked (the guard is per-instance), and only methods in the annotated
// struct's package (cross-package readers of exported fields, like the
// Plan.Search stats snapshot, must be safe by publication discipline
// instead). A deliberate unguarded access carries an ignore directive with
// its reason.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "flags reads/writes of struct fields annotated `// guarded by <mu>` from " +
		"methods that do not hold the named mutex on a dominating path",
	SkipTests: true,
	Run:       runLockGuard,
}

// guardedByRx extracts the mutex name from an annotation comment.
var guardedByRx = regexp.MustCompile(`guarded by (\w+)`)

// guardedStruct records one annotated struct type.
type guardedStruct struct {
	fields  map[string]string // field name -> guarding mutex field name
	mutexes map[string]bool   // mutex field names present on the struct
}

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvType := recvTypeName(fd)
			gs, ok := guards[recvType]
			if !ok {
				continue
			}
			var recvObj types.Object
			if names := fd.Recv.List[0].Names; len(names) > 0 && names[0].Name != "_" {
				recvObj = pass.TypesInfo.Defs[names[0]]
			}
			if recvObj == nil {
				continue
			}
			sc := &lockScan{pass: pass, gs: gs, recv: recvObj}
			sc.scanStmts(fd.Body.List, lockState{})
		}
	}
	return nil
}

// collectGuards parses the `// guarded by <mu>` annotations off every struct
// type declared in the package, validating that the named mutex is a
// sync.Mutex/sync.RWMutex field of the same struct.
func collectGuards(pass *Pass) map[string]*guardedStruct {
	guards := map[string]*guardedStruct{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				gs := &guardedStruct{fields: map[string]string{}, mutexes: map[string]bool{}}
				for _, field := range st.Fields.List {
					if isSyncType(pass.TypeOf(field.Type), "Mutex") || isSyncType(pass.TypeOf(field.Type), "RWMutex") {
						for _, name := range field.Names {
							gs.mutexes[name.Name] = true
						}
					}
					mu := annotationMutex(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						gs.fields[name.Name] = mu
					}
				}
				for fieldName, mu := range gs.fields {
					if !gs.mutexes[mu] {
						pass.Reportf(ts.Pos(),
							"field %s.%s is annotated `guarded by %s`, but %s is not a sync.Mutex/RWMutex field of the struct",
							ts.Name.Name, fieldName, mu, mu)
						delete(gs.fields, fieldName)
					}
				}
				if len(gs.fields) > 0 {
					guards[ts.Name.Name] = gs
				}
			}
		}
	}
	return guards
}

// annotationMutex extracts the guarding mutex name from a field's doc or
// trailing comment, or "" when unannotated.
func annotationMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRx.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// recvTypeName returns the receiver's named type, stripping a pointer.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (T[P]) would appear as IndexExpr; the repo has none,
	// and an unknown shape simply goes unchecked.
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// lockState maps a mutex field name to its held depth on the current path.
type lockState map[string]int

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mergeMin folds another branch's exit state in: a mutex is held after the
// merge only if it is held on both paths.
func (st lockState) mergeMin(other lockState) {
	for k, v := range st {
		if ov := other[k]; ov < v {
			st[k] = ov
		}
	}
	for k := range other {
		if _, ok := st[k]; !ok {
			st[k] = 0
		}
	}
}

// lockScan walks one method body tracking the held-mutex state per path.
type lockScan struct {
	pass *Pass
	gs   *guardedStruct
	recv types.Object
}

// scanStmts processes a statement list under state st (mutated in place) and
// reports whether the list terminates abruptly (so callers discard st).
func (sc *lockScan) scanStmts(stmts []ast.Stmt, st lockState) bool {
	for _, s := range stmts {
		if sc.scanStmt(s, st) {
			return true
		}
	}
	return false
}

func (sc *lockScan) scanStmt(s ast.Stmt, st lockState) (terminated bool) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if mu, kind := sc.recvMutexCall(call); mu != "" {
				sc.checkExpr(call.Fun, st) // the mu selector itself is never guarded
				switch kind {
				case "Lock", "RLock":
					st[mu]++
				case "Unlock", "RUnlock":
					if st[mu] > 0 {
						st[mu]--
					}
				}
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := sc.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					sc.checkExpr(call, st)
					return true
				}
			}
		}
		sc.checkExpr(n.X, st)
	case *ast.DeferStmt:
		if mu, kind := sc.recvMutexCall(n.Call); mu != "" && (kind == "Unlock" || kind == "RUnlock") {
			// A deferred Unlock releases at return; the mutex stays held for
			// the remainder of the body.
			return false
		}
		sc.checkExpr(n.Call, st)
	case *ast.GoStmt:
		// The goroutine runs after the spawner may have unlocked: its body
		// starts from a clean (unlocked) state.
		if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
			sc.scanStmts(fl.Body.List, lockState{})
			for _, arg := range n.Call.Args {
				sc.checkExpr(arg, st)
			}
		} else {
			sc.checkExpr(n.Call, st)
		}
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			sc.checkExpr(e, st)
		}
		for _, e := range n.Lhs {
			sc.checkExpr(e, st)
		}
	case *ast.IncDecStmt:
		sc.checkExpr(n.X, st)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			sc.checkExpr(e, st)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: effects stay within the branch
	case *ast.IfStmt:
		if n.Init != nil {
			sc.scanStmt(n.Init, st)
		}
		sc.checkExpr(n.Cond, st)
		thenSt := st.clone()
		thenTerm := sc.scanStmts(n.Body.List, thenSt)
		switch e := n.Else.(type) {
		case nil:
			if !thenTerm {
				st.mergeMin(thenSt)
			}
		case *ast.BlockStmt:
			elseSt := st.clone()
			elseTerm := sc.scanStmts(e.List, elseSt)
			return sc.mergeBranches(st, []lockState{thenSt, elseSt}, []bool{thenTerm, elseTerm}, false)
		case *ast.IfStmt:
			elseSt := st.clone()
			elseTerm := sc.scanStmt(e, elseSt)
			return sc.mergeBranches(st, []lockState{thenSt, elseSt}, []bool{thenTerm, elseTerm}, false)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			sc.scanStmt(n.Init, st)
		}
		if n.Cond != nil {
			sc.checkExpr(n.Cond, st)
		}
		bodySt := st.clone()
		sc.scanStmts(n.Body.List, bodySt)
		if n.Post != nil {
			sc.scanStmt(n.Post, bodySt)
		}
		// The loop may run zero times: fall-through keeps the entry state.
	case *ast.RangeStmt:
		sc.checkExpr(n.X, st)
		bodySt := st.clone()
		sc.scanStmts(n.Body.List, bodySt)
	case *ast.SwitchStmt:
		if n.Init != nil {
			sc.scanStmt(n.Init, st)
		}
		if n.Tag != nil {
			sc.checkExpr(n.Tag, st)
		}
		return sc.scanClauses(n.Body, st, !hasDefaultClause(n.Body))
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			sc.scanStmt(n.Init, st)
		}
		sc.scanStmt(n.Assign, st)
		return sc.scanClauses(n.Body, st, !hasDefaultClause(n.Body))
	case *ast.SelectStmt:
		// A select always executes exactly one clause; there is no
		// fall-past-every-case path.
		return sc.scanClauses(n.Body, st, false)
	case *ast.BlockStmt:
		return sc.scanStmts(n.List, st)
	case *ast.LabeledStmt:
		return sc.scanStmt(n.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.checkExpr(v, st)
					}
				}
			}
		}
	case *ast.SendStmt:
		sc.checkExpr(n.Chan, st)
		sc.checkExpr(n.Value, st)
	}
	return false
}

// scanClauses scans each case body of a switch/select from the entry state
// and min-merges the non-terminating branches back into st; includeEntry
// additionally merges the entry state, for switches without a default where
// no case may match. Reports whether every path out terminates.
func (sc *lockScan) scanClauses(body *ast.BlockStmt, st lockState, includeEntry bool) bool {
	var exits []lockState
	var terms []bool
	for _, cl := range body.List {
		clSt := st.clone()
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				sc.checkExpr(e, clSt)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				sc.scanStmt(c.Comm, clSt)
			}
			stmts = c.Body
		}
		terms = append(terms, sc.scanStmts(stmts, clSt))
		exits = append(exits, clSt)
	}
	return sc.mergeBranches(st, exits, terms, includeEntry)
}

// hasDefaultClause reports whether a switch body contains a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// mergeBranches folds branch exit states into st: only branches that did not
// terminate contribute; includeEntry additionally merges the entry state (a
// switch with no matching case). Returns true — the statement terminates —
// when every path out is terminated and the entry path is excluded.
func (sc *lockScan) mergeBranches(st lockState, exits []lockState, terms []bool, includeEntry bool) bool {
	entry := st.clone()
	var live []lockState
	for i, ex := range exits {
		if !terms[i] {
			live = append(live, ex)
		}
	}
	if includeEntry {
		live = append(live, entry)
	}
	if len(live) == 0 {
		return true
	}
	for k := range st {
		delete(st, k)
	}
	for k, v := range live[0] {
		st[k] = v
	}
	for _, ex := range live[1:] {
		st.mergeMin(ex)
	}
	return false
}

// checkExpr reports guarded-field accesses through the receiver made while
// the guarding mutex is not held. Function literals inherit the current
// state (they are typically invoked inline within the critical section that
// defines them); their bodies are scanned once, here.
func (sc *lockScan) checkExpr(expr ast.Expr, st lockState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			sc.scanStmts(e.Body.List, st.clone())
			return false
		case *ast.SelectorExpr:
			base, ok := e.X.(*ast.Ident)
			if !ok || sc.pass.TypesInfo.Uses[base] != sc.recv {
				return true
			}
			mu, guarded := sc.gs.fields[e.Sel.Name]
			if guarded && st[mu] == 0 {
				sc.pass.Reportf(e.Pos(),
					"access to %s.%s without holding %s (field is annotated `guarded by %s`); "+
						"lock %s on every path that reaches this access",
					base.Name, e.Sel.Name, mu, mu, mu)
			}
		}
		return true
	})
}

// recvMutexCall recognizes recv.<mu>.<Lock|RLock|Unlock|RUnlock>() where
// <mu> is a mutex field of the receiver's annotated struct, returning the
// mutex field name and the method.
func (sc *lockScan) recvMutexCall(call *ast.CallExpr) (mu, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || sc.pass.TypesInfo.Uses[base] != sc.recv {
		return "", ""
	}
	if !sc.gs.mutexes[inner.Sel.Name] {
		return "", ""
	}
	return inner.Sel.Name, sel.Sel.Name
}
