// Package analysis is a dependency-free static-analysis framework and lint
// suite for the AdaPipe repro. Its API mirrors the relevant subset of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// analyzers can be ported to the upstream driver verbatim if the dependency
// ever becomes available; here everything is built on the standard library
// (go/ast, go/types, go/importer) so the suite works in hermetic builds.
//
// The suite exists because the planner's two-level DP must be bit-for-bit
// deterministic (tests assert exact plan equality, and serialized plans are
// diffed across runs) and because the 1F1B executor is multi-goroutine
// channel code where races corrupt schedule comparisons silently. Nine
// analyzers enforce the invariants — four syntactic (PR 1), four
// dataflow-aware (v2), and one API-surface gate:
//
//   - maporder:    order-dependent iteration over Go maps in packages whose
//     output must be reproducible (planner, serializer, trace, ...).
//   - floatcmp:    exact ==/!= between floating-point cost/time values in
//     the solver packages, where an epsilon compare is required.
//   - pipesync:    goroutine hygiene in the pipeline executors — loop
//     variable capture, WaitGroup.Add inside the spawned goroutine, and
//     channel sends while holding a mutex.
//   - errcheckcmd: dropped error returns in cmd/ and examples/.
//   - ctxprop:     dropped context propagation in the search/serving
//     libraries — context.Background()/TODO() where a ctx is in scope,
//     calls bypassing an existing Context-variant, blocking loops that
//     never check ctx.
//   - lockguard:   reads/writes of fields annotated `// guarded by <mu>`
//     from methods that do not hold the named mutex on a dominating path.
//   - detrand:     nondeterminism sources (time.Now/Since, global
//     math/rand, %p formatting, unsorted map iteration) in the plan- and
//     hash-producing packages.
//   - ignoreaudit: suppression hygiene — stale ignore directives, unknown
//     analyzer names, missing reasons.
//   - depapi:      calls to deprecated constructors in the façade, cmd/ and
//     examples/ — same-package Deprecated: functions and the positional
//     adapipe.NewPlanner, whose replacement is the PlanRequest path.
//
// A finding can be suppressed with a trailing or preceding line comment of
// the form:
//
//	//adapipevet:ignore <analyzer-name> <reason>
//
// The reason is mandatory (ignoreaudit enforces it), and a directive that no
// longer suppresses anything is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Applies reports whether the analyzer runs on the given package import
	// path. A nil Applies runs everywhere.
	Applies func(pkgPath string) bool
	// SkipTests excludes _test.go files from the pass. The determinism
	// analyzers set it: tests assert exact plan equality on purpose, and
	// the order of test-failure output is not part of the reproducible
	// surface. Fixture files live under testdata and are unaffected.
	SkipTests bool
	// Run executes the pass and reports findings via pass.Report*.
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the problem.
	Message string
}

// Pass carries one analyzer's view of one type-checked package, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the pass being run.
	Analyzer *Analyzer
	// Fset maps positions for the package's files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for the syntax.
	TypesInfo *types.Info

	diags   []Diagnostic
	ignores map[int]map[string]bool // file-line -> analyzer name (or "") -> ignored

	// noIgnore disables the suppression directives; the ignoreaudit analyzer
	// sets it on the sub-passes it re-runs to learn what a directive would
	// have suppressed.
	noIgnore bool
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.ignored(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ignored reports whether an //adapipevet:ignore directive on the finding's
// line, or on the line directly above it, names this analyzer.
func (p *Pass) ignored(pos token.Pos) bool {
	if p.noIgnore {
		return false
	}
	if p.ignores == nil {
		p.ignores = map[int]map[string]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "adapipevet:ignore") {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, "adapipevet:ignore"))
					name := rest
					if i := strings.IndexAny(rest, " \t"); i >= 0 {
						name = rest[:i]
					}
					line := p.Fset.Position(c.Pos()).Line
					for _, l := range []int{line, line + 1} {
						if p.ignores[l] == nil {
							p.ignores[l] = map[string]bool{}
						}
						p.ignores[l][name] = true
					}
				}
			}
		}
	}
	byName := p.ignores[p.Fset.Position(pos).Line]
	return byName != nil && (byName[p.Analyzer.Name] || byName[""] || byName["all"])
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("adapipe/internal/core").
	Path string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources (including in-package _test files when
	// the loader was asked for them).
	Files []*ast.File
	// Types is the checked package.
	Types *types.Package
	// Info is the type information for Files.
	Info *types.Info
	// TypeErrors holds soft type-checking errors; analysis proceeds on a
	// best-effort basis when non-empty.
	TypeErrors []error
}

// Run executes each applicable analyzer over each package and returns all
// diagnostics in (file, line, column, analyzer) order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			files := pkg.Files
			if a.SkipTests {
				files = nil
				for _, f := range pkg.Files {
					name := pkg.Fset.Position(f.Pos()).Filename
					if !strings.HasSuffix(name, "_test.go") {
						files = append(files, f)
					}
				}
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				pass.diags = append(pass.diags, Diagnostic{
					Pos:      token.NoPos,
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
			}
			out = append(out, pass.diags...)
		}
	}
	if len(pkgs) > 0 {
		sortDiagnostics(pkgs[0].Fset, out)
	}
	return out
}

// sortDiagnostics orders diags by position then analyzer name.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// All returns the full lint suite in stable order. The order is part of the
// reporting contract: diagnostics tie-break on analyzer name, SARIF rule
// indices follow this slice, and TestAllOrderPinned asserts it — append new
// analyzers at the end.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder, FloatCmp, PipeSync, ErrCheckCmd,
		CtxProp, LockGuard, DetRand, IgnoreAudit,
		DepAPI,
	}
}

// ByName returns the named analyzers, or an error naming the unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// pathMatcher builds an Applies func: the analyzer runs on packages whose
// import path equals one of exact, or contains one of fragments as a
// slash-delimited segment substring. Every analyzer also matches fixture
// packages whose path contains its own name, so analysistest fixtures are
// in scope by construction.
func pathMatcher(exact []string, fragments ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, e := range exact {
			if pkgPath == e {
				return true
			}
		}
		for _, f := range fragments {
			if strings.Contains(pkgPath, f) {
				return true
			}
		}
		return false
	}
}
