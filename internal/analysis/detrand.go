package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// DetRand polices the determinism surface of the plan- and hash-producing
// packages: the planner's exact-equality tests, the canonical request JSON
// behind the daemon's cache identity, and the serialized Plan bytes the
// response cache replays all require that no nondeterministic value can leak
// into an output or a hash. Four sources are flagged:
//
//  1. time.Now / time.Since — wall-clock readings differ between identical
//     runs. The search-effort wall counters are the one deliberate use; they
//     are excluded from plan serialization and carry ignore directives
//     saying so.
//  2. math/rand package-level functions — the global source is seeded
//     nondeterministically; derive from rand.New(rand.NewSource(seed)).
//  3. pointer formatting (%p) in fmt format strings — addresses differ per
//     run and would poison any serialized or hashed output.
//  4. order-dependent iteration over a map (the maporder rule), applied only
//     where maporder itself is out of scope (the request package's canonical
//     JSON path), so one defect never double-reports.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "flags nondeterminism sources (time.Now/Since, global math/rand, %p " +
		"formatting, unsorted map iteration feeding output) in the plan- and " +
		"hash-producing packages",
	Applies: pathMatcher(
		nil,
		"adapipe/internal/core",
		"adapipe/internal/partition",
		"adapipe/internal/recompute",
		"adapipe/internal/schedule",
		"adapipe/internal/profile",
		"adapipe/internal/request",
		"adapipe/internal/trace",
		"detrand", // fixture packages
	),
	SkipTests: true,
	Run:       runDetRand,
}

// ptrVerbRx matches an unescaped %p verb (flags and width allowed). %% pairs
// are stripped before matching.
var ptrVerbRx = regexp.MustCompile(`%[#+\-0 ]*[0-9.]*p`)

func runDetRand(pass *Pass) error {
	checkMaps := !MapOrder.Applies(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				checkDetRandCall(pass, st)
			case *ast.RangeStmt:
				if !checkMaps {
					return true
				}
				t := pass.TypeOf(st.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderInsensitiveBody(pass, st) {
					return true
				}
				pass.Reportf(st.Pos(),
					"range over map %s has an order-dependent body in a hash/serialization path; "+
						"sort the keys first so canonical bytes stay canonical",
					exprString(pass.Fset, st.X))
			}
			return true
		})
	}
	return nil
}

func checkDetRandCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a determinism-critical package; "+
					"clock values must never reach plans, canonical JSON or hashes",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors are fine — a seeded *rand.Rand is deterministic.
		// Methods on *rand.Rand have a receiver and are fine too; only the
		// package-level functions draw from the nondeterministically seeded
		// global source.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		pass.Reportf(call.Pos(),
			"%s.%s draws from the global math/rand source, which is seeded "+
				"nondeterministically; use rand.New(rand.NewSource(seed))",
			fn.Pkg().Name(), fn.Name())
	case "fmt":
		if !strings.HasSuffix(fn.Name(), "f") {
			return
		}
		// The format string is the first argument, or the second for the
		// writer-taking variants (Fprintf and friends).
		idx := 0
		if strings.HasPrefix(fn.Name(), "F") || fn.Name() == "Appendf" {
			idx = 1
		}
		if len(call.Args) <= idx {
			return
		}
		lit, ok := call.Args[idx].(*ast.BasicLit)
		if !ok {
			return
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		if ptrVerbRx.MatchString(strings.ReplaceAll(format, "%%", "")) {
			pass.Reportf(call.Pos(),
				"%%p formats a pointer address, which differs between identical runs; "+
					"format a stable identifier instead")
		}
	}
}
