// Package errcheckcmd is the analysistest fixture for the errcheckcmd
// analyzer.
package errcheckcmd

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func plan() error                  { return errors.New("OOM") }
func planWith(n int) (int, error)  { return n, nil }
func report(err error)             { _ = err }
func launch(work func() error) any { return work }

// DroppedPlain drops a bare error result — flagged.
func DroppedPlain() {
	plan() // want `plan drops its error result`
}

// DroppedTuple drops the error half of a tuple — flagged.
func DroppedTuple() {
	planWith(4) // want `planWith drops its error result`
}

// DroppedGoDefer drops errors in go and defer statements — flagged.
func DroppedGoDefer() {
	go plan()    // want `go plan drops its error result`
	defer plan() // want `defer plan drops its error result`
}

// DroppedWrite drops an os file write error — flagged.
func DroppedWrite(f *os.File) {
	f.Write([]byte("plan")) // want `f.Write drops its error result`
}

// Handled propagates and checks — not flagged.
func Handled() error {
	if err := plan(); err != nil {
		return err
	}
	n, err := planWith(4)
	if err != nil {
		return err
	}
	report(fmt.Errorf("planned %d", n))
	return nil
}

// Printing uses the allowed fmt print family and builder writes — not
// flagged.
func Printing() string {
	fmt.Println("stage table")
	fmt.Printf("%d stages\n", 8)
	fmt.Fprintf(os.Stderr, "warning\n")
	var b strings.Builder
	b.WriteString("header\n")
	return b.String()
}

// ExplicitDrop assigns the error away; the assignment makes the decision
// visible, so it is not flagged.
func ExplicitDrop() {
	_ = plan()
}

// Suppressed documents an intentional drop.
func Suppressed() {
	plan() //adapipevet:ignore errcheckcmd best-effort cleanup on exit
}
