// Package floatcmp is the analysistest fixture for the floatcmp analyzer.
package floatcmp

import "math"

const eps = 1e-12

// almostEq is the epsilon-compare pattern the analyzer points at.
func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

// SameCost compares modeled times exactly — flagged.
func SameCost(w1, w2 float64) bool {
	return w1 == w2 // want `exact == between floats w1 and w2`
}

// TieBreak uses != on floats in a comparator — flagged.
func TieBreak(a, b, e1, e2 float64) bool {
	if a != b { // want `exact != between floats a and b`
		return a < b
	}
	return e1 < e2
}

// NarrowCost compares float32 costs — flagged.
func NarrowCost(a, b float32) bool {
	return a == b // want `exact == between floats a and b`
}

// SameCostEps is the approved epsilon compare — not flagged.
func SameCostEps(w1, w2 float64) bool {
	return almostEq(w1, w2)
}

// ConstCheck compares two compile-time constants — exact by definition, not
// flagged.
func ConstCheck() bool {
	const half = 0.5
	return half == 0.5
}

// Ordered comparisons are fine — not flagged.
func Ordered(a, b float64) bool {
	return a < b || a >= b
}

// SuppressedZeroGuard documents an intentional exact comparison.
func SuppressedZeroGuard(x float64) bool {
	return x == 0 //adapipevet:ignore floatcmp exact zero sentinel from initialization
}
