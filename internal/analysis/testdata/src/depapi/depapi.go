// Package depapi is the analysistest fixture for the depapi analyzer.
package depapi

// Planner is a stand-in for the façade's planner.
type Planner struct{ n int }

// NewPlannerFromRequest is the blessed construction path.
func NewPlannerFromRequest(n int) *Planner { return &Planner{n: n} }

// NewPlannerPositional is the legacy constructor.
//
// Deprecated: build a request and call NewPlannerFromRequest.
func NewPlannerPositional(a, b int) *Planner { return &Planner{n: a + b} }

// Reset is a deprecated method; methods carry the marker too.
//
// Deprecated: construct a fresh Planner instead.
func (p *Planner) Reset() { p.n = 0 }

// Grow is fine: the word Deprecated appearing mid-sentence is not the
// convention marker, which must start a line of the doc comment.
// It is not deprecated: only a leading "Deprecated:" line counts.
func (p *Planner) Grow() { p.n++ }

// Blessed uses only the supported path — no findings.
func Blessed() *Planner {
	p := NewPlannerFromRequest(3)
	p.Grow()
	return p
}

// Legacy calls the deprecated constructor — flagged.
func Legacy() *Planner {
	return NewPlannerPositional(1, 2) // want `call to deprecated NewPlannerPositional: build a request and call NewPlannerFromRequest`
}

// LegacyMethod calls the deprecated method — flagged.
func LegacyMethod(p *Planner) {
	p.Reset() // want `call to deprecated Reset: construct a fresh Planner instead`
}

// Parenthesized call forms resolve to the same callee — flagged.
func LegacyParen() *Planner {
	return (NewPlannerPositional)(3, 4) // want `call to deprecated NewPlannerPositional`
}

// Suppressed carries a reasoned directive and stays quiet.
func Suppressed() *Planner {
	//adapipevet:ignore depapi exercising the legacy wrapper on purpose
	return NewPlannerPositional(5, 6)
}

// References without a call are not flagged: deprecation gates new call
// sites, not mentions (the wrapper itself must stay linkable).
var constructor = NewPlannerPositional
