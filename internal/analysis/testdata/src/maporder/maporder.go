// Package maporder is the analysistest fixture for the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// Serialize renders a saved-units map; ranging the map directly makes the
// output order random per run.
func Serialize(saved map[string]int) string {
	var b strings.Builder
	for k, v := range saved { // want `range over map saved has an order-dependent body`
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

// CollectValues appends map values to a slice — order-dependent.
func CollectValues(saved map[string]int) []int {
	var out []int
	for _, v := range saved { // want `range over map saved has an order-dependent body`
		out = append(out, v)
	}
	return out
}

// SumFloats accumulates floats; FP addition does not commute bit-for-bit.
func SumFloats(costs map[string]float64) float64 {
	var sum float64
	for _, v := range costs { // want `range over map costs has an order-dependent body`
		sum += v
	}
	return sum
}

// SortedSerialize is the required pattern: collect keys, sort, iterate.
func SortedSerialize(saved map[string]int) string {
	keys := make([]string, 0, len(saved))
	for k := range saved { // collecting keys for the sort below: not flagged
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, saved[k])
	}
	return b.String()
}

// Invert writes only map entries — order-insensitive, not flagged.
func Invert(saved map[string]int) map[int]string {
	out := make(map[int]string, len(saved))
	for k, v := range saved {
		out[v] = k
	}
	return out
}

// CountUnits accumulates integers — commutative, not flagged.
func CountUnits(saved map[string]int) int {
	total := 0
	for _, v := range saved {
		total += v
	}
	return total
}

// MaxUnits tracks a guarded extremum — order-insensitive, not flagged.
func MaxUnits(saved map[string]int) float64 {
	best := -1.0
	for _, v := range saved {
		if f := float64(v); f > best {
			best = f
		}
	}
	return best
}

// MergeWorkerResults folds per-worker result maps into one, appending the
// values in map-iteration order — the parallel-search merge bug the analyzer
// exists to catch: whichever worker's entries happen to range first decides
// the merged order, so two runs of the same search serialize differently.
func MergeWorkerResults(byWorker []map[string]float64) []float64 {
	var merged []float64
	for _, results := range byWorker {
		for _, v := range results { // want `range over map results has an order-dependent body`
			merged = append(merged, v)
		}
	}
	return merged
}

// MergeWorkerResultsSorted is the deterministic merge the parallel search
// uses: each worker's keys are sorted before the fold, so the merged slice is
// a pure function of the map contents. Not flagged.
func MergeWorkerResultsSorted(byWorker []map[string]float64) []float64 {
	var merged []float64
	for _, results := range byWorker {
		keys := make([]string, 0, len(results))
		for k := range results { // collecting keys for the sort below: not flagged
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			merged = append(merged, results[k])
		}
	}
	return merged
}

// MergeWorkerCounters sums per-worker counter maps into a shared tally —
// commutative integer addition keyed by the entry's own key, so worker and
// iteration order cannot show. Not flagged.
func MergeWorkerCounters(byWorker []map[string]int) map[string]int {
	merged := map[string]int{}
	for _, counters := range byWorker {
		for k, v := range counters {
			merged[k] += v
		}
	}
	return merged
}

// Suppressed carries an explicit ignore directive.
func Suppressed(saved map[string]int) []int {
	var out []int
	//adapipevet:ignore maporder order does not matter for this debug dump
	for _, v := range saved {
		out = append(out, v)
	}
	return out
}
