// Package ignoreaudit is the analysistest fixture for the ignoreaudit
// analyzer. Want expectations for directive findings use the block-comment
// form (/* want ... */) because the directive itself occupies the line
// comment, and the audit reports at the directive's own position.
package ignoreaudit

import "sync"

// Box carries a lockguard-annotated field so directives in this fixture have
// a real sibling diagnostic to suppress (lockguard applies to every package).
type Box struct {
	mu sync.Mutex
	// n is the boxed value.
	// guarded by mu
	n int
}

// LiveIgnore suppresses a genuine lockguard finding — not stale, no report.
func (b *Box) LiveIgnore() int {
	//adapipevet:ignore lockguard deliberately racy snapshot for the fixture
	return b.n
}

// MissingReason suppresses a genuine finding but gives no reason — flagged
// for the missing reason only, not for staleness.
func (b *Box) MissingReason() int {
	/* want `carries no reason` */ //adapipevet:ignore lockguard
	return b.n
}

// StaleIgnore excuses nothing: the access below holds the lock — flagged.
func (b *Box) StaleIgnore() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	/* want `stale ignore directive: lockguard reports nothing` */ //adapipevet:ignore lockguard left over from a fixed race
	return b.n
}

// UnknownAnalyzer names a rule that does not exist — flagged.
func (b *Box) UnknownAnalyzer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	/* want `unknown analyzer "racecheck"` */ //adapipevet:ignore racecheck the suite renamed this rule
	return b.n
}

// WildcardStale is a blanket directive that suppresses nothing anymore; its
// own staleness report must not be self-suppressed — flagged.
func (b *Box) WildcardStale() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	/* want `stale ignore directive: any analyzer reports nothing` */ //adapipevet:ignore all left over blanket suppression
	return b.n
}

// OutOfScope names an analyzer that does not apply to this package, so the
// directive suppresses nothing by construction — flagged as stale.
func OutOfScope() float64 {
	/* want `stale ignore directive: floatcmp reports nothing` */ //adapipevet:ignore floatcmp epsilon compare is deliberate here
	return 1.5
}

// SelfDirective: suppressions of the auditor itself are not audited.
func (b *Box) SelfDirective() int {
	//adapipevet:ignore ignoreaudit audited by hand in this fixture
	return b.n
}
