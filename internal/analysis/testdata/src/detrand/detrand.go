// Package detrand is the analysistest fixture for the detrand analyzer.
package detrand

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock — flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// Elapsed uses Since — flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Deadline uses Until — flagged.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until reads the wall clock`
}

// Duration arithmetic without the clock — OK.
func Budget(d time.Duration) time.Duration {
	return d * 2
}

// EffortCounter is the documented escape hatch — suppressed.
func EffortCounter() time.Time {
	//adapipevet:ignore detrand wall-clock effort counter, excluded from plan serialization
	return time.Now()
}

// GlobalRand draws from the global source — flagged.
func GlobalRand() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global math/rand source`
}

// GlobalShuffle too — flagged.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global math/rand source`
}

// SeededRand derives every draw from an explicit seed — OK.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// PointerFormat leaks an address — flagged.
func PointerFormat(v *int) string {
	return fmt.Sprintf("ptr=%p", v) // want `%p formats a pointer address`
}

// FprintfPointer: the format string is the second argument — flagged.
func FprintfPointer(w io.Writer, v *int) {
	fmt.Fprintf(w, "at %p", v) // want `%p formats a pointer address`
}

// EscapedPercent is not a pointer verb — OK.
func EscapedPercent(n int) string {
	return fmt.Sprintf("100%%plus %d", n)
}

// StableFormat has no pointer verbs — OK.
func StableFormat(name string, n int) string {
	return fmt.Sprintf("%s=%d", name, n)
}

// UnsortedEmit ranges a map straight into an output slice — flagged.
func UnsortedEmit(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map m has an order-dependent body`
		out = append(out, v)
	}
	return out
}

// SortedEmit collects the keys, sorts, then walks — OK.
func SortedEmit(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Accumulate is order-insensitive (commutative fold) — OK.
func Accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
