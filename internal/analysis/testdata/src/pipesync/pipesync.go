// Package pipesync is the analysistest fixture for the pipesync analyzer.
package pipesync

import "sync"

// LaunchCaptured launches stage goroutines that capture the loop variable —
// flagged.
func LaunchCaptured(n int, work func(int)) {
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func() { // want `goroutine captures loop variable s`
			defer wg.Done()
			work(s)
		}()
	}
	wg.Wait()
}

// LaunchRangeCaptured captures a range variable — flagged.
func LaunchRangeCaptured(stages []func()) {
	var wg sync.WaitGroup
	for _, stage := range stages {
		wg.Add(1)
		go func() { // want `goroutine captures loop variable stage`
			defer wg.Done()
			stage()
		}()
	}
	wg.Wait()
}

// AddInside calls WaitGroup.Add inside the goroutine — flagged.
func AddInside(n int, work func(int)) {
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		s := s
		go func() {
			wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine`
			defer wg.Done()
			work(s)
		}()
	}
	wg.Wait()
}

// SendLocked sends on a channel while holding the mutex — flagged.
type SendLocked struct {
	mu  sync.Mutex
	out chan int
	seq int
}

// Emit publishes the next sequence number.
func (s *SendLocked) Emit() {
	s.mu.Lock()
	s.seq++
	s.out <- s.seq // want `channel send while holding a mutex`
	s.mu.Unlock()
}

// EmitDeferred holds the lock via defer across the send — flagged.
func (s *SendLocked) EmitDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.out <- s.seq // want `channel send while holding a mutex`
}

// EmitAfterUnlock computes under the lock and sends after releasing — not
// flagged.
func (s *SendLocked) EmitAfterUnlock() {
	s.mu.Lock()
	s.seq++
	v := s.seq
	s.mu.Unlock()
	s.out <- v
}

// LaunchExplicit passes the loop variable as an argument and Adds before
// launching — the approved executor pattern, not flagged.
func LaunchExplicit(n int, work func(int)) {
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			work(s)
		}(s)
	}
	wg.Wait()
}

// StageNaked runs a pipeline stage with naked channel ops — both flagged:
// if the peer stage panics, the receive (or send) blocks forever and the
// parent's wg.Wait deadlocks.
func StageNaked(in, out chan int, work func(int) int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		x := <-in      // want `naked channel receive in a goroutine`
		out <- work(x) // want `naked channel send in a goroutine`
	}()
	wg.Wait()
}

// StageCancellable wraps every channel op in a select with the iteration's
// done channel — the approved executor pattern, not flagged.
func StageCancellable(in, out chan int, done chan struct{}, work func(int) int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var x int
		select {
		case x = <-in:
		case <-done:
			return
		}
		select {
		case out <- work(x):
		case <-done:
			return
		}
	}()
	wg.Wait()
}

// ParentNaked performs channel ops in the parent function, which owns the
// goroutine lifecycle — not flagged (the rule scopes to goroutine bodies).
func ParentNaked(in, out chan int, work func(int) int) {
	x := <-in
	out <- work(x)
}

// CloseInGoroutine closes a completion channel from a helper goroutine —
// not flagged (close never blocks).
func CloseInGoroutine(wg *sync.WaitGroup) chan struct{} {
	waited := make(chan struct{})
	go func() {
		wg.Wait()
		close(waited)
	}()
	return waited
}

// SuppressedNakedSend documents an op whose peer provably outlives it.
func SuppressedNakedSend(out chan int, v int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		//adapipevet:ignore pipesync buffered result channel, receiver never exits early
		out <- v
	}()
	wg.Wait()
}

// SuppressedCapture documents a harmless capture.
func SuppressedCapture(n int, work func(int)) {
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		//adapipevet:ignore pipesync go1.22 per-iteration variable, never mutated
		go func() {
			defer wg.Done()
			work(s)
		}()
	}
	wg.Wait()
}
