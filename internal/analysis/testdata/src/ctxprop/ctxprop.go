// Package ctxprop is the analysistest fixture for the ctxprop analyzer.
package ctxprop

import (
	"context"
	"sync"
	"time"
)

// Search is the context-free entry point.
func Search(n int) int { return n }

// SearchContext is the context-aware variant of Search.
func SearchContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// FreshRoot discards the in-scope ctx for a fresh root — flagged.
func FreshRoot(ctx context.Context) int {
	return SearchContext(context.Background(), 1) // want `context.Background\(\) discards the in-scope ctx`
}

// TodoRoot does the same with TODO — flagged.
func TodoRoot(ctx context.Context) int {
	return SearchContext(context.TODO(), 1) // want `context.TODO\(\) discards the in-scope ctx`
}

// RootWithoutCtx builds a root context where none is in scope — OK.
func RootWithoutCtx() int {
	return SearchContext(context.Background(), 1)
}

// DropsVariant bypasses the Context variant of the callee — flagged.
func DropsVariant(ctx context.Context) int {
	return Search(1) // want `call to Search drops the in-scope ctx; use SearchContext`
}

// UsesVariant threads the context through — OK.
func UsesVariant(ctx context.Context) int {
	return SearchContext(ctx, 2)
}

// Solver exercises the method-variant lookup.
type Solver struct{ n int }

// Solve is the context-free method.
func (s *Solver) Solve() int { return s.n }

// SolveContext is its context-aware sibling.
func (s *Solver) SolveContext(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	return s.n
}

// DropsMethodVariant bypasses SolveContext — flagged.
func DropsMethodVariant(ctx context.Context, s *Solver) int {
	return s.Solve() // want `call to Solve drops the in-scope ctx; use SolveContext`
}

// UsesMethodVariant — OK.
func UsesMethodVariant(ctx context.Context, s *Solver) int {
	return s.SolveContext(ctx)
}

// BlockingLoopUnchecked never consults ctx between receives — flagged.
func BlockingLoopUnchecked(ctx context.Context, ch chan int, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `loop performs blocking operations but never checks ctx`
		total += <-ch
	}
	return total
}

// BlockingLoopChecked checks ctx.Err each iteration — OK.
func BlockingLoopChecked(ctx context.Context, ch chan int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return total
		}
		total += <-ch
	}
	return total
}

// BlockingLoopCondGuard guards in the loop condition — OK.
func BlockingLoopCondGuard(ctx context.Context, ch chan int) int {
	total := 0
	for ctx.Err() == nil {
		total += <-ch
	}
	return total
}

// BlockingLoopSelect pairs every op with a select — OK.
func BlockingLoopSelect(ctx context.Context, ch chan int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		select {
		case v := <-ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
	return total
}

// SleepLoop sleeps without a cancellation check — flagged.
func SleepLoop(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want `loop performs blocking operations but never checks ctx`
		time.Sleep(time.Millisecond)
	}
}

// WaitLoop joins a WaitGroup without a cancellation check — flagged.
func WaitLoop(ctx context.Context, groups []*sync.WaitGroup) {
	for _, wg := range groups { // want `loop performs blocking operations but never checks ctx`
		wg.Wait()
	}
}

// PureLoop has no blocking ops — OK.
func PureLoop(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// PassThroughLoop hands ctx to the callee each iteration — OK.
func PassThroughLoop(ctx context.Context, ch chan int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += SearchContext(ctx, <-ch)
	}
	return total
}

// ClosureInheritsCtx: a literal without its own ctx parameter stays in the
// enclosing context's scope — flagged inside the closure.
func ClosureInheritsCtx(ctx context.Context, ch chan int) func() int {
	return func() int {
		total := 0
		for i := 0; i < 3; i++ { // want `loop performs blocking operations but never checks ctx`
			total += <-ch
		}
		return total
	}
}

// DeliberateDetach is the documented escape hatch — suppressed.
func DeliberateDetach(ctx context.Context) int {
	//adapipevet:ignore ctxprop the coalescing leader must outlive any one requester
	return SearchContext(context.Background(), 3)
}
