// Package lockguard is the analysistest fixture for the lockguard analyzer.
package lockguard

import "sync"

// Counter exercises the `guarded by` annotation on a plain Mutex.
type Counter struct {
	mu sync.Mutex
	// count is the running total.
	// guarded by mu
	count int
	hits  int    // guarded by mu
	name  string // immutable after construction; deliberately unannotated
}

// Add locks around the write — OK.
func (c *Counter) Add(n int) {
	c.mu.Lock()
	c.count += n
	c.mu.Unlock()
}

// Get holds the lock via defer — OK.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Race reads a guarded field with no lock — flagged.
func (c *Counter) Race() int {
	return c.count // want `access to c\.count without holding mu`
}

// EarlyUnlockReturn unlocks-and-returns in a branch; the fall-through path
// still holds the lock — OK.
func (c *Counter) EarlyUnlockReturn(n int) int {
	c.mu.Lock()
	if n < 0 {
		c.mu.Unlock()
		return 0
	}
	c.count += n
	c.mu.Unlock()
	return n
}

// BranchUnlockLeaks unlocks in a branch that falls through, so the access
// after the merge is unprotected on one path — flagged.
func (c *Counter) BranchUnlockLeaks(n int) {
	c.mu.Lock()
	if n < 0 {
		c.mu.Unlock()
	}
	c.count += n // want `access to c\.count without holding mu`
	if n >= 0 {
		c.mu.Unlock()
	}
}

// GoroutineStartsUnlocked: a spawned goroutine does not inherit the caller's
// critical section — flagged inside the literal.
func (c *Counter) GoroutineStartsUnlocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.hits++ // want `access to c\.hits without holding mu`
	}()
}

// InlineClosureInherits: a literal defined inside the critical section keeps
// the lock state of its definition point — OK.
func (c *Counter) InlineClosureInherits() {
	c.mu.Lock()
	defer c.mu.Unlock()
	bump := func() { c.hits++ }
	bump()
}

// Name reads an unannotated field without the lock — OK.
func (c *Counter) Name() string { return c.name }

// SwitchAllPathsLocked locks in every case before the merged access — OK.
func (c *Counter) SwitchAllPathsLocked(mode int) int {
	switch mode {
	case 0:
		c.mu.Lock()
	default:
		c.mu.Lock()
	}
	v := c.count
	c.mu.Unlock()
	return v
}

// DeliberateSnapshot documents an intentionally racy read — suppressed.
func (c *Counter) DeliberateSnapshot() int {
	//adapipevet:ignore lockguard approximate read for metrics; writers have all joined
	return c.hits
}

// Table exercises RWMutex and reader locks.
type Table struct {
	rw sync.RWMutex
	// rows maps key to row id.
	// guarded by rw
	rows map[string]int
}

// Lookup holds the read lock — OK.
func (t *Table) Lookup(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

// Dirty reads without any lock — flagged.
func (t *Table) Dirty(k string) int {
	return t.rows[k] // want `access to t\.rows without holding rw`
}

// BadAnnotation names a field that is not a mutex — flagged at the type.
type BadAnnotation struct { // want `guarded by missing.*not a sync\.Mutex/RWMutex field`
	count int // guarded by missing
}
