package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckCmd flags call statements that drop an error result in the
// command and example binaries. Library packages return errors to their
// callers and the compiler's unused-variable check catches most slips, but
// a bare `f(x)` statement whose error vanishes is legal Go — in cmd/ and
// examples/ that silently swallows OOM-plan and I/O failures that the
// binaries exist to surface.
//
// Print-family calls (fmt.Print*, fmt.Fprint* and strings.Builder /
// bytes.Buffer writes, whose errors are documented to be always nil or
// conventionally ignored) are allowed.
var ErrCheckCmd = &Analyzer{
	Name: "errcheckcmd",
	Doc: "flags dropped error returns in cmd/ and examples/ binaries; handle the " +
		"error or assign it explicitly",
	Applies: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "cmd/") ||
			strings.Contains(pkgPath, "examples/") ||
			strings.Contains(pkgPath, "errcheckcmd") // fixture packages
	},
	Run: runErrCheckCmd,
}

func runErrCheckCmd(pass *Pass) error {
	check := func(call *ast.CallExpr, kind string) {
		if !returnsError(pass, call) || allowedDrop(pass, call) {
			return
		}
		pass.Reportf(call.Pos(), "%s%s drops its error result; handle it or assign it explicitly",
			kind, callName(call))
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.GoStmt:
				check(st.Call, "go ")
			case *ast.DeferStmt:
				check(st.Call, "defer ")
			}
			return true
		})
	}
	return nil
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// allowedDrop lists the conventional always-ignored error sources.
func allowedDrop(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	// fmt.Print / fmt.Printf / fmt.Println / fmt.Fprint* to any writer.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
		}
	}
	// strings.Builder and bytes.Buffer Write* methods never fail.
	if t := pass.TypeOf(sel.X); t != nil {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				path, tn := obj.Pkg().Path(), obj.Name()
				if (path == "strings" && tn == "Builder") || (path == "bytes" && tn == "Buffer") {
					return strings.HasPrefix(name, "Write")
				}
			}
		}
	}
	return false
}

// callName renders the callee for diagnostics.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
