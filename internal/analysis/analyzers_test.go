package analysis

import (
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMapOrderFixture(t *testing.T)    { RunFixture(t, FixtureDir("maporder"), MapOrder) }
func TestFloatCmpFixture(t *testing.T)    { RunFixture(t, FixtureDir("floatcmp"), FloatCmp) }
func TestPipeSyncFixture(t *testing.T)    { RunFixture(t, FixtureDir("pipesync"), PipeSync) }
func TestErrCheckCmdFixture(t *testing.T) { RunFixture(t, FixtureDir("errcheckcmd"), ErrCheckCmd) }
func TestCtxPropFixture(t *testing.T)     { RunFixture(t, FixtureDir("ctxprop"), CtxProp) }
func TestLockGuardFixture(t *testing.T)   { RunFixture(t, FixtureDir("lockguard"), LockGuard) }
func TestDetRandFixture(t *testing.T)     { RunFixture(t, FixtureDir("detrand"), DetRand) }
func TestIgnoreAuditFixture(t *testing.T) { RunFixture(t, FixtureDir("ignoreaudit"), IgnoreAudit) }
func TestDepAPIFixture(t *testing.T)      { RunFixture(t, FixtureDir("depapi"), DepAPI) }

// TestAllOrderPinned freezes the suite order: SARIF rule indices and the
// diagnostic tie-break both follow All(), so reordering would churn every
// golden report. New analyzers go at the end.
func TestAllOrderPinned(t *testing.T) {
	want := []string{
		"maporder", "floatcmp", "pipesync", "errcheckcmd",
		"ctxprop", "lockguard", "detrand", "ignoreaudit",
		"depapi",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s (order is part of the reporting contract)", i, a.Name, want[i])
		}
	}
}

// TestScopes pins the package scoping: each analyzer must cover the
// packages its invariant lives in and stay out of unrelated ones.
func TestScopes(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		in   []string
		out  []string
		name string
	}{
		{MapOrder, []string{"adapipe", "adapipe/internal/core", "adapipe/internal/trace", "adapipe/internal/recompute"},
			[]string{"adapipe/internal/train", "adapipe/cmd/adapipe"}, "maporder"},
		{FloatCmp, []string{"adapipe/internal/core", "adapipe/internal/partition", "adapipe/internal/recompute"},
			[]string{"adapipe", "adapipe/internal/sim"}, "floatcmp"},
		{PipeSync, []string{"adapipe/internal/train", "adapipe/internal/sim"},
			[]string{"adapipe/internal/core", "adapipe"}, "pipesync"},
		{ErrCheckCmd, []string{"adapipe/cmd/adapipe", "adapipe/cmd/experiments", "adapipe/examples/quickstart"},
			[]string{"adapipe", "adapipe/internal/core"}, "errcheckcmd"},
		{CtxProp, []string{"adapipe/internal/core", "adapipe/internal/pool", "adapipe/internal/serve", "adapipe/internal/baseline", "adapipe/internal/train"},
			[]string{"adapipe", "adapipe/internal/sim", "adapipe/cmd/adapipe"}, "ctxprop"},
		{DetRand, []string{"adapipe/internal/core", "adapipe/internal/request", "adapipe/internal/trace", "adapipe/internal/profile"},
			[]string{"adapipe", "adapipe/internal/train", "adapipe/cmd/adapipe"}, "detrand"},
		{DepAPI, []string{"adapipe", "adapipe/cmd/adapipe", "adapipe/cmd/planbench", "adapipe/examples/quickstart", "adapipe/examples/chaos"},
			[]string{"adapipe/internal/core", "adapipe/internal/request", "adapipe/internal/serve"}, "depapi"},
	}
	for _, tc := range cases {
		for _, p := range tc.in {
			if !tc.a.Applies(p) {
				t.Errorf("%s: should apply to %s", tc.name, p)
			}
		}
		for _, p := range tc.out {
			if tc.a.Applies(p) {
				t.Errorf("%s: should not apply to %s", tc.name, p)
			}
		}
		if !tc.a.Applies(tc.name) {
			t.Errorf("%s: should apply to its own fixture package", tc.name)
		}
	}
}

// TestIgnoreDirective checks suppression on the same and the preceding line.
func TestIgnoreDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package ig

func cmp(a, b float64) (bool, bool, bool) {
	x := a == b //adapipevet:ignore floatcmp reason
	//adapipevet:ignore floatcmp reason
	y := a == b
	z := a == b
	return x, y, z
}
`
	if err := writeFile(filepath.Join(dir, "ig.go"), src); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckFiles(fset, "floatcmp_ignore", []string{filepath.Join(dir, "ig.go")}, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed one: %v", len(diags), diags)
	}
	if line := fset.Position(diags[0].Pos).Line; line != 7 {
		t.Errorf("diagnostic on line %d, want 7 (the z assignment)", line)
	}
	if !strings.Contains(diags[0].Message, "exact ==") {
		t.Errorf("unexpected message %q", diags[0].Message)
	}
}

// TestSuiteCleanOnRepo runs the full suite over the whole module — the same
// gate CI enforces — so a regression that introduces nondeterministic
// iteration or a dropped error fails `go test` too, not only the lint step.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load([]string{"adapipe/..."}, LoadOptions{Dir: moduleRoot(t), Tests: true})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestScopesUniversal pins the analyzers that deliberately apply everywhere.
func TestScopesUniversal(t *testing.T) {
	for _, a := range []*Analyzer{LockGuard, IgnoreAudit} {
		if a.Applies != nil {
			t.Errorf("%s: expected a nil Applies (annotations and directives can appear in any package)", a.Name)
		}
	}
}

// BenchmarkAdapipevet measures a full-repo suite run — load, type-check, and
// every analyzer over every package — so CI logs track the lint gate's
// wall cost as the suite and the tree grow.
func BenchmarkAdapipevet(b *testing.B) {
	root := moduleRoot(b)
	for i := 0; i < b.N; i++ {
		pkgs, err := Load([]string{"adapipe/..."}, LoadOptions{Dir: root, Tests: true})
		if err != nil {
			b.Fatalf("loading module: %v", err)
		}
		if diags := Run(pkgs, All()); len(diags) != 0 {
			b.Fatalf("suite not clean: %d diagnostics", len(diags))
		}
	}
}

func moduleRoot(tb testing.TB) string {
	tb.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		tb.Fatal(err)
	}
	return abs
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
