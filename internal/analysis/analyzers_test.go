package analysis

import (
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMapOrderFixture(t *testing.T)    { RunFixture(t, FixtureDir("maporder"), MapOrder) }
func TestFloatCmpFixture(t *testing.T)    { RunFixture(t, FixtureDir("floatcmp"), FloatCmp) }
func TestPipeSyncFixture(t *testing.T)    { RunFixture(t, FixtureDir("pipesync"), PipeSync) }
func TestErrCheckCmdFixture(t *testing.T) { RunFixture(t, FixtureDir("errcheckcmd"), ErrCheckCmd) }

// TestScopes pins the package scoping: each analyzer must cover the
// packages its invariant lives in and stay out of unrelated ones.
func TestScopes(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		in   []string
		out  []string
		name string
	}{
		{MapOrder, []string{"adapipe", "adapipe/internal/core", "adapipe/internal/trace", "adapipe/internal/recompute"},
			[]string{"adapipe/internal/train", "adapipe/cmd/adapipe"}, "maporder"},
		{FloatCmp, []string{"adapipe/internal/core", "adapipe/internal/partition", "adapipe/internal/recompute"},
			[]string{"adapipe", "adapipe/internal/sim"}, "floatcmp"},
		{PipeSync, []string{"adapipe/internal/train", "adapipe/internal/sim"},
			[]string{"adapipe/internal/core", "adapipe"}, "pipesync"},
		{ErrCheckCmd, []string{"adapipe/cmd/adapipe", "adapipe/cmd/experiments", "adapipe/examples/quickstart"},
			[]string{"adapipe", "adapipe/internal/core"}, "errcheckcmd"},
	}
	for _, tc := range cases {
		for _, p := range tc.in {
			if !tc.a.Applies(p) {
				t.Errorf("%s: should apply to %s", tc.name, p)
			}
		}
		for _, p := range tc.out {
			if tc.a.Applies(p) {
				t.Errorf("%s: should not apply to %s", tc.name, p)
			}
		}
		if !tc.a.Applies(tc.name) {
			t.Errorf("%s: should apply to its own fixture package", tc.name)
		}
	}
}

// TestIgnoreDirective checks suppression on the same and the preceding line.
func TestIgnoreDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package ig

func cmp(a, b float64) (bool, bool, bool) {
	x := a == b //adapipevet:ignore floatcmp reason
	//adapipevet:ignore floatcmp reason
	y := a == b
	z := a == b
	return x, y, z
}
`
	if err := writeFile(filepath.Join(dir, "ig.go"), src); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := CheckFiles(fset, "floatcmp_ignore", []string{filepath.Join(dir, "ig.go")}, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed one: %v", len(diags), diags)
	}
	if line := fset.Position(diags[0].Pos).Line; line != 7 {
		t.Errorf("diagnostic on line %d, want 7 (the z assignment)", line)
	}
	if !strings.Contains(diags[0].Message, "exact ==") {
		t.Errorf("unexpected message %q", diags[0].Message)
	}
}

// TestSuiteCleanOnRepo runs the full suite over the whole module — the same
// gate CI enforces — so a regression that introduces nondeterministic
// iteration or a dropped error fails `go test` too, not only the lint step.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load([]string{"adapipe/..."}, LoadOptions{Dir: moduleRoot(t), Tests: true})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
