package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// IgnoreAudit keeps the suppression layer honest: every
// //adapipevet:ignore directive must (a) name a real analyzer, (b) carry a
// reason, and (c) still suppress something. A directive goes stale when the
// code it excused is fixed or deleted while the comment lingers — from then
// on it silently masks the next genuine finding on that line. The audit
// re-runs every other analyzer over the package with suppression disabled
// and flags directives whose covered lines (the directive's own line and the
// one below it, matching the suppression rule) no longer produce any
// diagnostic from the named analyzer.
//
// Staleness respects analyzer scoping: a directive naming an analyzer that
// does not apply to the package suppresses nothing and is therefore stale.
// Directives naming "ignoreaudit" itself are not audited (a suppression of
// the auditor is judged by the normal ignore mechanism, not recursively).
var IgnoreAudit = &Analyzer{
	Name: "ignoreaudit",
	Doc: "flags //adapipevet:ignore directives that are stale (suppress no " +
		"diagnostic), name an unknown analyzer, or carry no reason",
}

// Run is attached in init: runIgnoreAudit re-runs the whole suite via All(),
// which contains IgnoreAudit itself — a direct initializer would be an
// initialization cycle.
func init() { IgnoreAudit.Run = runIgnoreAudit }

// ignoreDirective is one parsed //adapipevet:ignore comment.
type ignoreDirective struct {
	comment *ast.Comment
	name    string // named analyzer; "" or "all" covers every analyzer
	reason  string
}

func runIgnoreAudit(pass *Pass) error {
	var directives []ignoreDirective
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "adapipevet:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "adapipevet:ignore"))
				name, reason := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				directives = append(directives, ignoreDirective{comment: c, name: name, reason: reason})
			}
		}
	}
	if len(directives) == 0 {
		return nil
	}

	// Audit findings are suppressible only by a directive that names
	// "ignoreaudit" explicitly. Routing them through the normal ignore
	// mechanism would let a stale wildcard directive suppress its own
	// staleness report.
	type lineKey struct {
		file string
		line int
	}
	selfIgnored := map[lineKey]bool{}
	for _, d := range directives {
		if d.name != IgnoreAudit.Name {
			continue
		}
		p := pass.Fset.Position(d.comment.Pos())
		selfIgnored[lineKey{p.Filename, p.Line}] = true
		selfIgnored[lineKey{p.Filename, p.Line + 1}] = true
	}
	report := func(c *ast.Comment, format string, args ...any) {
		p := pass.Fset.Position(c.Pos())
		if selfIgnored[lineKey{p.Filename, p.Line}] {
			return
		}
		pass.diags = append(pass.diags, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: pass.Analyzer.Name,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	known := map[string]bool{}
	failed := map[string]bool{}
	siblings := make([]*Analyzer, 0, len(All()))
	for _, a := range All() {
		known[a.Name] = true
		if a.Name != IgnoreAudit.Name {
			siblings = append(siblings, a)
		}
	}

	// Re-run each in-scope sibling with suppression disabled and index the
	// would-be diagnostics by (file, line).
	fired := map[string]map[lineKey]bool{}
	for _, a := range siblings {
		if a.Applies != nil && !a.Applies(pass.Pkg.Path()) {
			continue
		}
		files := pass.Files
		if a.SkipTests {
			files = nil
			for _, f := range pass.Files {
				name := pass.Fset.Position(f.Pos()).Filename
				if !strings.HasSuffix(name, "_test.go") {
					files = append(files, f)
				}
			}
		}
		sub := &Pass{
			Analyzer:  a,
			Fset:      pass.Fset,
			Files:     files,
			Pkg:       pass.Pkg,
			TypesInfo: pass.TypesInfo,
			noIgnore:  true,
		}
		if err := a.Run(sub); err != nil {
			// A sibling that cannot run proves nothing about staleness; skip
			// its directives rather than flag them wrongly.
			failed[a.Name] = true
			continue
		}
		byLine := fired[a.Name]
		if byLine == nil {
			byLine = map[lineKey]bool{}
			fired[a.Name] = byLine
		}
		for _, d := range sub.diags {
			p := pass.Fset.Position(d.Pos)
			byLine[lineKey{p.Filename, p.Line}] = true
		}
	}

	for _, d := range directives {
		if d.name == IgnoreAudit.Name {
			continue
		}
		wildcard := d.name == "" || d.name == "all"
		if !wildcard && !known[d.name] {
			report(d.comment,
				"ignore directive names unknown analyzer %q; known analyzers: %s",
				d.name, analyzerNames())
			continue
		}
		if !wildcard && failed[d.name] {
			continue // cannot judge staleness when the analyzer errored
		}
		if wildcard && len(failed) > 0 {
			continue
		}
		if !wildcard && d.reason == "" {
			report(d.comment,
				"ignore directive for %s carries no reason; say why the flagged pattern is deliberate",
				d.name)
		}
		pos := pass.Fset.Position(d.comment.Pos())
		covered := false
		for _, line := range []int{pos.Line, pos.Line + 1} {
			k := lineKey{pos.Filename, line}
			if wildcard {
				for _, byLine := range fired {
					if byLine[k] {
						covered = true
					}
				}
			} else if fired[d.name][k] {
				covered = true
			}
		}
		if !covered {
			what := d.name
			if wildcard {
				what = "any analyzer"
			}
			report(d.comment,
				"stale ignore directive: %s reports nothing on the covered lines anymore; "+
					"delete the directive so it cannot mask a future finding", what)
		}
	}
	return nil
}

// analyzerNames renders the suite's analyzer names for diagnostics.
func analyzerNames() string {
	names := make([]string, 0, len(All()))
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
