package analysis

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"strings"
)

// ToolName and ToolVersion identify the suite in machine-readable reports
// and in the -V probe the go command sends a vet tool.
const (
	ToolName    = "adapipevet"
	ToolVersion = "2.0"

	// SARIFSchema and SARIFVersion pin the report format. The emitted shape
	// follows SARIF 2.1.0: one run, a tool.driver carrying one reportingDescriptor
	// per analyzer, and one result per diagnostic with a physical location.
	SARIFSchema  = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json"
	SARIFVersion = "2.1.0"
)

// The SARIF object model, restricted to the subset the suite emits. Field
// order is fixed by these struct definitions, diagnostics arrive pre-sorted
// from Run, and rules follow All() order — so the report bytes are a pure
// function of the diagnostics and the tool version (TestSARIFDeterministic
// asserts byte equality, golden files pin the shape).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifMessage `json:"shortDescription"`
	FullDescription      sarifMessage `json:"fullDescription"`
	DefaultConfiguration sarifLevel   `json:"defaultConfiguration"`
}

type sarifLevel struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. analyzers supplies
// the rule table (normally All(), in suite order); root, when non-empty,
// relativizes file URIs against the module root so the report is portable
// across checkouts. Output is byte-deterministic for a given input.
func WriteSARIF(w io.Writer, fset *token.FileSet, analyzers []*Analyzer, diags []Diagnostic, root string) error {
	rules := make([]sarifRule, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{
			ID:                   a.Name,
			ShortDescription:     sarifMessage{Text: shortDoc(a.Doc)},
			FullDescription:      sarifMessage{Text: a.Doc},
			DefaultConfiguration: sarifLevel{Level: "error"},
		}
		index[a.Name] = i
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
		}
		if i, ok := index[d.Analyzer]; ok {
			res.RuleIndex = i
		}
		if d.Pos.IsValid() {
			pos := fset.Position(d.Pos)
			res.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relURI(root, pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  SARIFSchema,
		Version: SARIFVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: ToolName, Version: ToolVersion, Rules: rules}},
			Results: results,
		}},
	}
	return writeIndentedJSON(w, log)
}

// MachineDiagnostic is one finding in the -json machine format: a flat,
// position-sorted record tools can consume without knowing the suite.
type MachineDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// machineReport is the -json machine format envelope.
type machineReport struct {
	Tool        string              `json:"tool"`
	Version     string              `json:"version"`
	Diagnostics []MachineDiagnostic `json:"diagnostics"`
}

// WriteJSON renders diagnostics in the flat machine format. Like WriteSARIF
// the output is byte-deterministic; an empty diagnostic list renders as an
// empty array, never null, so `jq '.diagnostics | length'` always works.
func WriteJSON(w io.Writer, fset *token.FileSet, diags []Diagnostic, root string) error {
	out := machineReport{
		Tool:        ToolName,
		Version:     ToolVersion,
		Diagnostics: make([]MachineDiagnostic, 0, len(diags)),
	}
	for _, d := range diags {
		md := MachineDiagnostic{Analyzer: d.Analyzer, Message: d.Message}
		if d.Pos.IsValid() {
			pos := fset.Position(d.Pos)
			md.File = relURI(root, pos.Filename)
			md.Line = pos.Line
			md.Column = pos.Column
		}
		out.Diagnostics = append(out.Diagnostics, md)
	}
	return writeIndentedJSON(w, out)
}

// relURI relativizes filename against root and normalizes to forward
// slashes; files outside root (or an empty root) keep their path unchanged
// apart from slash normalization.
func relURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}

// shortDoc returns the first sentence of an analyzer doc string.
func shortDoc(doc string) string {
	if i := strings.IndexAny(doc, ";("); i > 0 {
		doc = doc[:i]
	}
	return strings.TrimSpace(doc)
}

// writeIndentedJSON marshals v with tab indentation and a trailing newline.
func writeIndentedJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
