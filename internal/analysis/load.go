package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir         string
	ImportPath  string
	Name        string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Standard    bool
	Error       *struct{ Err string }
}

// LoadOptions configures Load.
type LoadOptions struct {
	// Dir is the working directory for package resolution (the module
	// root); empty means the process working directory.
	Dir string
	// Tests includes in-package _test.go files in each unit. External
	// (package foo_test) files are not loaded.
	Tests bool
}

// Load enumerates the packages matching patterns with the go command, parses
// their sources and type-checks them against a source importer, so the suite
// needs no pre-built export data and no third-party loader. All returned
// packages share one FileSet.
func Load(patterns []string, opts LoadOptions) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var metas []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		metas = append(metas, lp)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range metas {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := append([]string{}, lp.GoFiles...)
		files = append(files, lp.CgoFiles...)
		if opts.Tests {
			files = append(files, lp.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		var paths []string
		for _, f := range files {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		pkg, err := checkFiles(fset, lp.ImportPath, paths, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from explicit file paths,
// resolving imports from source. It is the loading primitive shared by Load,
// the fixture runner and the unitchecker driver.
func CheckFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	return checkFiles(fset, path, filenames, imp)
}

func checkFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var softErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:       path,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: softErrs,
	}, nil
}
