package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// goldenFixture builds a small synthetic diagnostic set with fully
// deterministic positions, so the golden files pin the report shape without
// depending on real source files. The set covers a located finding from two
// different rules and a position-less analyzer failure.
func goldenFixture() (*token.FileSet, []Diagnostic) {
	fset := token.NewFileSet()
	f := fset.AddFile("/src/adapipe/internal/core/planner.go", -1, 1000)
	lines := make([]int, 20)
	for i := range lines {
		lines[i] = i * 50
	}
	f.SetLines(lines)
	pos := func(line, col int) token.Pos { return f.Pos((line-1)*50 + col - 1) }
	diags := []Diagnostic{
		{Pos: pos(3, 7), Analyzer: "maporder", Message: "range over map stageCosts has an order-dependent body"},
		{Pos: pos(12, 2), Analyzer: "detrand", Message: "time.Now reads the wall clock in a determinism-critical package"},
		{Pos: token.NoPos, Analyzer: "ignoreaudit", Message: "analyzer failed: example failure"},
	}
	sortDiagnostics(fset, diags)
	return fset, diags
}

const goldenRoot = "/src/adapipe"

// checkGolden compares got against the named golden file; setting
// UPDATE_GOLDEN=1 rewrites the golden instead.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (rerun with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n-- got --\n%s\n-- want --\n%s", name, got, want)
	}
}

func TestSARIFGolden(t *testing.T) {
	fset, diags := goldenFixture()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, All(), diags, goldenRoot); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sarif.golden.json", buf.Bytes())
}

func TestJSONGolden(t *testing.T) {
	fset, diags := goldenFixture()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fset, diags, goldenRoot); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "machine.golden.json", buf.Bytes())
}

// TestReportsDeterministic asserts byte-identical output across repeated
// renders — the property the plan cache and CI diffing rely on.
func TestReportsDeterministic(t *testing.T) {
	fset, diags := goldenFixture()
	render := func() ([]byte, []byte) {
		var s, j bytes.Buffer
		if err := WriteSARIF(&s, fset, All(), diags, goldenRoot); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&j, fset, diags, goldenRoot); err != nil {
			t.Fatal(err)
		}
		return s.Bytes(), j.Bytes()
	}
	s1, j1 := render()
	s2, j2 := render()
	if !bytes.Equal(s1, s2) {
		t.Error("SARIF output differs between identical renders")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("machine JSON output differs between identical renders")
	}
}

// TestSARIFShape validates the emitted structure against the SARIF 2.1.0
// subset CI consumes: schema pin, one run, a rule per analyzer in All()
// order, and results whose ruleIndex agrees with ruleId.
func TestSARIFShape(t *testing.T) {
	fset, diags := goldenFixture()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, All(), diags, goldenRoot); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Schema != SARIFSchema || log.Version != SARIFVersion {
		t.Errorf("schema pin drifted: %q %q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != ToolName {
		t.Errorf("driver name %q, want %q", run.Tool.Driver.Name, ToolName)
	}
	all := All()
	if len(run.Tool.Driver.Rules) != len(all) {
		t.Fatalf("got %d rules, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(all))
	}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID != all[i].Name {
			t.Errorf("rules[%d] = %s, want %s (All() order)", i, r.ID, all[i].Name)
		}
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no short description", r.ID)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}
	for _, res := range run.Results {
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
		if res.RuleIndex < 0 || res.RuleIndex >= len(all) || all[res.RuleIndex].Name != res.RuleID {
			t.Errorf("ruleIndex %d does not agree with ruleId %s", res.RuleIndex, res.RuleID)
		}
		for _, loc := range res.Locations {
			pl := loc.PhysicalLocation
			if pl.ArtifactLocation.URI != "internal/core/planner.go" {
				t.Errorf("URI %q not relativized against the root", pl.ArtifactLocation.URI)
			}
			if pl.ArtifactLocation.URIBaseID != "%SRCROOT%" {
				t.Errorf("uriBaseId %q, want %%SRCROOT%%", pl.ArtifactLocation.URIBaseID)
			}
			if pl.Region.StartLine <= 0 {
				t.Errorf("non-positive startLine %d", pl.Region.StartLine)
			}
		}
	}
}

// TestMachineJSONEmpty pins the no-findings envelope: an empty array, never
// null, so downstream jq filters need no null guard.
func TestMachineJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, token.NewFileSet(), nil, ""); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool        string              `json:"tool"`
		Version     string              `json:"version"`
		Diagnostics []MachineDiagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Diagnostics == nil {
		t.Error("diagnostics is null, want []")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"diagnostics": []`)) {
		t.Errorf("expected an empty array literal in:\n%s", buf.Bytes())
	}
}
