package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxProp enforces context propagation in the library packages that sit on
// the search and serving paths (internal/core, internal/pool, internal/serve,
// internal/baseline, internal/train). PR 5 threaded cancellation through the
// whole search (pool.RunContext → core.PlanContext → baseline.EvaluateContext
// → train.RunContext); a single function that drops the context silently
// severs that chain — a cancelled daemon request would keep burning a worker
// pool on a search nobody is waiting for. Three patterns are flagged:
//
//  1. context.Background() or context.TODO() called inside a function that
//     already receives a context — the fresh root context discards the
//     caller's deadline and cancellation. Deliberate detachment (the serve
//     coalescing leader runs under the server's base context on purpose)
//     must carry an ignore directive explaining why.
//  2. a call that drops the in-scope context when a context-aware variant of
//     the same callee exists: calling X() where XContext(ctx, ...) is
//     defined on the same receiver or in the same package. This is exactly
//     the class of bug PR 5 fixed by hand when core.Plan grew PlanContext.
//  3. a loop that performs blocking operations (naked channel sends or
//     receives, time.Sleep, WaitGroup.Wait) without ever consulting the
//     in-scope context — no ctx.Done()/ctx.Err() check, no select, and no
//     callee receives ctx — so cancellation cannot interrupt it between
//     iterations.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "flags dropped context propagation in the search/serving library packages: " +
		"context.Background()/TODO() where a ctx is in scope, calls that bypass an " +
		"existing Context-variant of the callee, and blocking loops that never " +
		"check ctx.Done()/ctx.Err()",
	Applies: pathMatcher(
		nil,
		"adapipe/internal/core",
		"adapipe/internal/pool",
		"adapipe/internal/serve",
		"adapipe/internal/baseline",
		"adapipe/internal/train",
		"ctxprop", // fixture packages
	),
	SkipTests: true,
	Run:       runCtxProp,
}

func runCtxProp(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxWalkFunc(pass, fd.Body, ctxParamObj(pass, fd.Type))
		}
	}
	return nil
}

// ctxParamObj returns the object of the first parameter whose type is
// context.Context and whose name is usable (not blank), or nil.
func ctxParamObj(pass *Pass, ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// ctxWalkFunc analyzes one function body with ctxObj as the innermost
// context in scope (nil when none). Function literals are visited here with
// their own context parameter if they declare one, inheriting ctxObj
// otherwise — a closure still sees the enclosing context.
func ctxWalkFunc(pass *Pass, body ast.Node, ctxObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			inner := ctxParamObj(pass, st.Type)
			if inner == nil {
				inner = ctxObj
			}
			ctxWalkFunc(pass, st.Body, inner)
			return false
		case *ast.CallExpr:
			if ctxObj == nil {
				return true
			}
			if name, ok := contextRootCall(pass, st); ok {
				pass.Reportf(st.Pos(),
					"context.%s() discards the in-scope ctx; derive from ctx "+
						"(or ignore with the reason the detachment is deliberate)", name)
				return true
			}
			checkDroppedContextVariant(pass, st, ctxObj)
		case *ast.ForStmt:
			if ctxObj != nil {
				checkBlockingLoop(pass, st, st.Body, ctxObj)
			}
		case *ast.RangeStmt:
			if ctxObj != nil {
				checkBlockingLoop(pass, st, st.Body, ctxObj)
			}
		}
		return true
	})
}

// contextRootCall reports whether call is context.Background() or
// context.TODO(), returning the function name.
func contextRootCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkDroppedContextVariant flags a call to X(...) made while a ctx is in
// scope when the callee takes no context itself but a sibling XContext whose
// first parameter is a context.Context exists — on the same receiver type for
// methods, in the same package for functions.
func checkDroppedContextVariant(pass *Pass, call *ast.CallExpr, ctxObj types.Object) {
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	}
	if callee == nil || strings.HasSuffix(callee.Name(), "Context") {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || signatureTakesContext(sig) {
		return
	}
	variantName := callee.Name() + "Context"
	var variant types.Object
	if recv := sig.Recv(); recv != nil {
		variant, _, _ = types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), variantName)
	} else if callee.Pkg() != nil {
		variant = callee.Pkg().Scope().Lookup(variantName)
	}
	vf, ok := variant.(*types.Func)
	if !ok {
		return
	}
	vsig, ok := vf.Type().(*types.Signature)
	if !ok || !signatureTakesContext(vsig) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s drops the in-scope ctx; use %s(ctx, ...) so cancellation propagates",
		callee.Name(), variantName)
}

// signatureTakesContext reports whether any parameter of sig is a
// context.Context.
func signatureTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkBlockingLoop flags a loop whose own body (nested loops and function
// literals excluded — they are judged at their own visit) contains a blocking
// operation while never consulting ctx: no reference to the ctx object (a
// Done/Err check or passing it to a callee both count) and no select
// statement (a select implies some cancellation path was designed in).
func checkBlockingLoop(pass *Pass, loop ast.Stmt, body *ast.BlockStmt, ctxObj types.Object) {
	blocking := false
	mentionsCtx := false
	hasSelect := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return false // judged separately
		case *ast.SelectStmt:
			hasSelect = true
			return true
		case *ast.SendStmt:
			if isChanType(pass.TypeOf(st.Chan)) {
				blocking = true
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && isChanType(pass.TypeOf(st.X)) {
				blocking = true
			}
		case *ast.CallExpr:
			if isBlockingCall(pass, st) {
				blocking = true
			}
		case *ast.Ident:
			if pass.TypesInfo.Uses[st] == ctxObj {
				mentionsCtx = true
			}
		}
		return true
	}
	// The loop's condition and post statement count toward the ctx-mention
	// check (`for ctx.Err() == nil { ... }` is a valid guard), so walk the
	// whole loop but cut off nested loops and literals inside the body.
	switch l := loop.(type) {
	case *ast.ForStmt:
		if l.Cond != nil {
			ast.Inspect(l.Cond, visit)
		}
		if l.Post != nil {
			ast.Inspect(l.Post, visit)
		}
	}
	for _, s := range body.List {
		ast.Inspect(s, visit)
	}
	if blocking && !mentionsCtx && !hasSelect {
		pass.Reportf(loop.Pos(),
			"loop performs blocking operations but never checks ctx.Done()/ctx.Err(); "+
				"a cancelled search would keep running — check the context between iterations")
	}
}

// isBlockingCall recognizes the well-known blocking calls the loop check
// cares about: time.Sleep and sync.WaitGroup.Wait.
func isBlockingCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Sleep":
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		return ok && obj.Pkg() != nil && obj.Pkg().Path() == "time"
	case "Wait":
		return isSyncType(pass.TypeOf(sel.X), "WaitGroup")
	}
	return false
}
