package analysis

import (
	"go/importer"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// wantRx extracts the expectation regexes from a want comment; patterns may
// be double-quoted (Go escapes apply) or backquoted (taken verbatim).
var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// RunFixture is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest.Run: it loads the fixture
// package rooted at dir, runs the analyzer, and matches the produced
// diagnostics against `// want "regexp"` comments. Each diagnostic must be
// matched by a want on its line, and every want must be matched by a
// diagnostic — so a fixture fails both when the analyzer misses a positive
// case and when it fires on a suppressed-negative one.
func RunFixture(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("fixture %s: no Go files (%v)", dir, err)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := CheckFiles(fset, filepath.Base(dir), files, imp)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", dir, terr)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both comment forms carry wants. The block form exists for
				// lines already ending in a line comment — notably ignore
				// directives, whose own diagnostics (ignoreaudit's) land on
				// the directive line itself:
				//   /* want `stale ignore` */ //adapipevet:ignore ...
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" && m[2] != "" {
						var err error
						pat, err = strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string %q: %v", pos, m[2], err)
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], rx)
				}
			}
		}
	}

	diags := Run([]*Package{pkg}, []*Analyzer{a})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}

// FixtureDir returns the conventional fixture path for an analyzer name.
func FixtureDir(name string) string {
	return filepath.Join("testdata", "src", name)
}
