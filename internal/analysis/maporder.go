package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` iteration over a map in packages whose output
// must be reproducible. Go randomizes map iteration order per run, so any
// map range whose body has an order-dependent effect (appending values to a
// slice, writing formatted output, accumulating floats, sending on a
// channel) makes plans, serialized JSON and rendered tables differ between
// identical runs — exactly what the repro's exact-equality tests forbid.
//
// A range is accepted without sorting when its body is provably
// order-insensitive: it only writes map entries, collects the keys for a
// later sort (`keys = append(keys, k)`), accumulates integers, or tracks a
// guarded extremum. Everything else must iterate a sorted key slice instead.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags order-dependent iteration over maps in determinism-critical packages " +
		"(planner, serializer, recompute, schedule, profile, trace, public API); " +
		"sort the keys first",
	Applies: pathMatcher(
		[]string{"adapipe"}, // the public API package renders plan tables
		"adapipe/internal/core",
		"adapipe/internal/recompute",
		"adapipe/internal/partition",
		"adapipe/internal/schedule",
		"adapipe/internal/profile",
		"adapipe/internal/trace",
		"adapipe/internal/baseline",
		"adapipe/internal/experiments",
		"maporder", // fixture packages
	),
	SkipTests: true,
	Run:       runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map %s has an order-dependent body; map iteration order is randomized — "+
					"collect and sort the keys first to keep plans byte-for-byte reproducible",
				exprString(pass.Fset, rng.X))
			return true
		})
	}
	return nil
}

// orderInsensitiveBody reports whether every statement in the range body has
// an effect that commutes across iterations, so iteration order cannot leak
// into the result.
func orderInsensitiveBody(pass *Pass, rng *ast.RangeStmt) bool {
	keyObj := rangeVarObj(pass, rng.Key)
	var check func(stmts []ast.Stmt, guarded bool) bool
	var checkStmt func(s ast.Stmt, guarded bool) bool
	checkStmt = func(s ast.Stmt, guarded bool) bool {
		switch st := s.(type) {
		case *ast.AssignStmt:
			return orderInsensitiveAssign(pass, st, rng, keyObj, guarded)
		case *ast.IncDecStmt:
			// count[k]++ / n-- over integers commutes.
			return isIntegral(pass.TypeOf(st.X))
		case *ast.ExprStmt:
			// delete(m, k) commutes (distinct keys).
			if call, ok := st.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						return true
					}
				}
			}
			return false
		case *ast.IfStmt:
			// Guarded updates (the min/max pattern): accept when every
			// branch is itself order-insensitive under the guard.
			if st.Init != nil && !checkStmt(st.Init, guarded) {
				return false
			}
			if !check(st.Body.List, true) {
				return false
			}
			switch e := st.Else.(type) {
			case nil:
				return true
			case *ast.BlockStmt:
				return check(e.List, true)
			case *ast.IfStmt:
				return checkStmt(e, true)
			}
			return false
		case *ast.RangeStmt:
			// A nested loop over a slice/array/channel keeps the outer
			// iteration order-insensitive as long as its own body is;
			// assignments to outer-iteration locals remain local. A nested
			// map range is judged at its own visit and conservatively
			// treated as order-sensitive here.
			if t := pass.TypeOf(st.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
			return check(st.Body.List, guarded)
		case *ast.ForStmt:
			if st.Init != nil && !checkStmt(st.Init, guarded) {
				return false
			}
			if st.Post != nil && !checkStmt(st.Post, guarded) {
				return false
			}
			return check(st.Body.List, guarded)
		case *ast.DeclStmt:
			// Local declarations introduce iteration-local objects.
			return true
		case *ast.BlockStmt:
			return check(st.List, guarded)
		case *ast.BranchStmt:
			return st.Tok == token.CONTINUE
		}
		return false
	}
	check = func(stmts []ast.Stmt, guarded bool) bool {
		for _, s := range stmts {
			if !checkStmt(s, guarded) {
				return false
			}
		}
		return true
	}
	return check(rng.Body.List, false)
}

// orderInsensitiveAssign accepts assignments whose effect commutes:
//
//   - writes into a map element (m[k] = v, set building),
//   - integer accumulation (n += c and friends; float accumulation is
//     rejected because FP addition does not commute bit-for-bit),
//   - the key-collection idiom `keys = append(keys, k)` that feeds a
//     subsequent sort,
//   - assignment to a variable declared inside the loop body itself (an
//     iteration-local temp cannot carry state across iterations),
//   - inside a guard, plain assignment to a scalar that does not involve
//     the key (extremum tracking; recording the argmax key would be
//     order-dependent on ties and stays flagged).
func orderInsensitiveAssign(pass *Pass, st *ast.AssignStmt, rng *ast.RangeStmt, keyObj types.Object, guarded bool) bool {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(st.Lhs) != len(st.Rhs) {
			return false
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) {
				continue
			}
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				if t := pass.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						continue
					}
				}
				return false
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return false
			}
			if isKeyAppend(pass, id, st.Rhs[i], keyObj) {
				continue
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil &&
				rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
				continue // iteration-local temp
			}
			if guarded && !usesObject(pass, st.Rhs[i], keyObj) {
				continue
			}
			return false
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range st.Lhs {
			if !isIntegral(pass.TypeOf(lhs)) {
				return false
			}
		}
		return true
	}
	return false
}

// isKeyAppend recognizes `dst = append(dst, k)` where k is the range key
// variable and dst is the assignee.
func isKeyAppend(pass *Pass, dst *ast.Ident, rhs ast.Expr, keyObj types.Object) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || keyObj == nil {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[first] != pass.TypesInfo.ObjectOf(dst) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && pass.TypesInfo.Uses[arg] == keyObj
}

// usesObject reports whether expr references obj.
func usesObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isIntegral(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// exprString renders a (small) expression for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "<expr>"
	}
	return b.String()
}
