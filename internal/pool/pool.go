// Package pool provides the bounded worker pool the planner fans its
// independent solves across. The design rule is that parallelism must never
// leak into results: work items are identified by index, each index is
// processed exactly once, and callers key every output (results, per-worker
// counters) by index or worker id and merge after Run returns, in a fixed
// order. Which goroutine happens to execute which index is the only
// nondeterminism, and nothing observable may depend on it.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Default returns the default worker count: GOMAXPROCS, the number of OS
// threads the Go scheduler will actually run concurrently.
func Default() int { return runtime.GOMAXPROCS(0) }

// Clamp normalizes a worker-count knob: values <= 0 select 1 (serial), and
// the count never exceeds n, the number of work items.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes fn(worker, i) for every i in [0, n), fanned across at most
// workers goroutines. worker is a stable id in [0, workers) so fn can use
// per-worker scratch state without locking. Indices are dispatched from a
// shared counter (dynamic load balancing: item costs vary wildly between a
// cache-hit lookup and a full knapsack solve), so the index→worker assignment
// is nondeterministic — callers must merge per-index and per-worker outputs
// in index/worker order after Run returns.
//
// With workers <= 1 (or n <= 1) fn runs inline on the calling goroutine in
// ascending index order, with zero scheduling overhead — the serial planner
// path is this path.
//
// A panic in fn is captured and re-raised on the calling goroutine after all
// workers have drained, so a panicking solve fails the plan rather than
// killing the process from an anonymous goroutine.
func Run(workers, n int, fn func(worker, i int)) {
	// context.Background() never cancels, so the error is always nil.
	_ = RunContext(context.Background(), workers, n, fn)
}

// RunContext is Run with cooperative cancellation: workers stop pulling new
// indices once ctx is done, already-started fn calls run to completion, and
// after every worker has joined the context error (if any) is returned.
// Callers must treat a non-nil error as "an unknown subset of indices never
// ran" and discard or filter the partial results — fn should record which
// indices it completed. Cancellation never interrupts fn mid-flight, so
// per-index outputs are always either absent or fully computed, never torn.
func RunContext(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return ctx.Err()
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("pool: worker panic: %v", panicked))
	}
	return ctx.Err()
}
