package pool

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		Run(workers, n, func(w, i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestRunSerialIsOrderedInline(t *testing.T) {
	var order []int
	Run(1, 5, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial run used worker %d", w)
		}
		order = append(order, i) // safe: inline on the calling goroutine
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunWorkerIDsAreStable(t *testing.T) {
	const workers, n = 4, 400
	sums := make([]int64, workers) // per-worker, merged after Run
	Run(workers, n, func(w, i int) {
		sums[w] += int64(i) // only worker w touches sums[w]
	})
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n*(n-1)) / 2; total != want {
		t.Fatalf("per-worker sums merge to %d, want %d", total, want)
	}
}

func TestRunZeroItems(t *testing.T) {
	called := false
	Run(8, 0, func(w, i int) { called = true })
	if called {
		t.Fatal("fn called with no work")
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v", r)
		}
	}()
	Run(4, 100, func(w, i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestClamp(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, 1}, {-3, 10, 1}, {4, 2, 2}, {4, 10, 4}, {8, 0, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.n); got != c.want {
			t.Errorf("Clamp(%d,%d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestDefault(t *testing.T) {
	if Default() < 1 {
		t.Fatalf("Default() = %d", Default())
	}
}
