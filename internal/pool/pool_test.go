package pool

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		Run(workers, n, func(w, i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestRunSerialIsOrderedInline(t *testing.T) {
	var order []int
	Run(1, 5, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial run used worker %d", w)
		}
		order = append(order, i) // safe: inline on the calling goroutine
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunWorkerIDsAreStable(t *testing.T) {
	const workers, n = 4, 400
	sums := make([]int64, workers) // per-worker, merged after Run
	Run(workers, n, func(w, i int) {
		sums[w] += int64(i) // only worker w touches sums[w]
	})
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n*(n-1)) / 2; total != want {
		t.Fatalf("per-worker sums merge to %d, want %d", total, want)
	}
}

func TestRunZeroItems(t *testing.T) {
	called := false
	Run(8, 0, func(w, i int) { called = true })
	if called {
		t.Fatal("fn called with no work")
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v", r)
		}
	}()
	Run(4, 100, func(w, i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestClamp(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, 1}, {-3, 10, 1}, {4, 2, 2}, {4, 10, 4}, {8, 0, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.n); got != c.want {
			t.Errorf("Clamp(%d,%d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestDefault(t *testing.T) {
	if Default() < 1 {
		t.Fatalf("Default() = %d", Default())
	}
}

func TestRunContextCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 10000
		err := RunContext(ctx, workers, n, func(w, i int) {
			if ran.Add(1) == 8 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		// Each worker may finish the item it already pulled, but dispatch
		// stops: far fewer than n items run.
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: cancellation did not stop dispatch (%d items ran)", workers, got)
		}
		cancel()
	}
}

func TestRunContextUncancelledRunsAll(t *testing.T) {
	var ran atomic.Int64
	if err := RunContext(context.Background(), 4, 100, func(w, i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100", ran.Load())
	}
}
