package experiments

import (
	"strings"
	"testing"
)

func TestAblationShape(t *testing.T) {
	rows, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]AblationRow{}
	for _, r := range rows {
		by[r.Name] = r
	}
	// Granularity ladder: none OOMs; full > layer-level > unit-level.
	if !by["no recomputation (even)"].OOM {
		t.Error("no-recomputation should OOM at seq 16384")
	}
	full := by["full recomputation (even)"].ModeledTotal
	layer := by["layer-level recomputation (even)"].ModeledTotal
	unit := by["unit-level recomputation (even)"].ModeledTotal
	if !(full > layer && layer > unit) {
		t.Errorf("granularity ladder violated: full %g, layer %g, unit %g", full, layer, unit)
	}
	// Partitioning: Algorithm 1 improves on even; the exact DP never
	// loses to Algorithm 1.
	alg1 := by["AdaPipe (Algorithm 1)"].ModeledTotal
	exact := by["AdaPipe (exact Pareto DP)"].ModeledTotal
	if alg1 > unit+1e-9 {
		t.Errorf("Algorithm 1 %g worse than even partitioning %g", alg1, unit)
	}
	if exact > alg1+1e-9 {
		t.Errorf("exact DP %g worse than Algorithm 1 %g", exact, alg1)
	}
	// §5.3 engineering is lossless: identical results, different effort.
	isoOff := by["AdaPipe, isomorphism cache off"]
	if isoOff.ModeledTotal != alg1 {
		t.Errorf("isomorphism cache changed the result: %g vs %g", isoOff.ModeledTotal, alg1)
	}
	if isoOff.KnapsackRuns <= by["AdaPipe (Algorithm 1)"].KnapsackRuns {
		t.Error("disabling the isomorphism cache should multiply knapsack runs")
	}
	gcdOff := by["AdaPipe, GCD reduction off"]
	if gcdOff.ModeledTotal != alg1 {
		t.Errorf("GCD reduction changed the result: %g vs %g", gcdOff.ModeledTotal, alg1)
	}
	if out := FormatAblation(rows); !strings.Contains(out, "knapsacks") {
		t.Error("format output malformed")
	}
}

func TestInterleavedShape(t *testing.T) {
	rows, err := Interleaved()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].BubbleRatio >= rows[i-1].BubbleRatio {
			t.Errorf("bubble ratio did not shrink with more chunks: %+v", rows)
		}
		if rows[i].IterTime >= rows[i-1].IterTime {
			t.Errorf("makespan did not shrink with more chunks: %+v", rows)
		}
	}
	if out := FormatInterleaved(rows); !strings.Contains(out, "v=4") {
		t.Error("format output malformed")
	}
}

func TestSequenceSweepShape(t *testing.T) {
	pts, err := SequenceSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	oomSeen := false
	for _, pt := range pts {
		if pt.Full == 0 || pt.AdaPipe == 0 {
			t.Fatalf("seq %d: full recomputation or AdaPipe OOM", pt.SeqLen)
		}
		// Granularity ordering wherever feasible.
		if pt.Layer > 0 && pt.Unit > pt.Layer+1e-9 {
			t.Errorf("seq %d: unit %g worse than layer %g", pt.SeqLen, pt.Unit, pt.Layer)
		}
		if pt.Layer > 0 && pt.Layer > pt.Full {
			t.Errorf("seq %d: layer-level %g worse than full %g", pt.SeqLen, pt.Layer, pt.Full)
		}
		if pt.AdaPipe > pt.Unit+1e-9 {
			t.Errorf("seq %d: AdaPipe %g worse than even partitioning %g", pt.SeqLen, pt.AdaPipe, pt.Unit)
		}
		// When memory is ample, adaptive saves everything and matches
		// no-recomputation.
		if pt.NoRecompute > 0 {
			if rel := pt.Unit/pt.NoRecompute - 1; rel > 0.01 || rel < -0.01 {
				t.Errorf("seq %d: adaptive %g should match no-recompute %g when memory is ample",
					pt.SeqLen, pt.Unit, pt.NoRecompute)
			}
		}
		// OOM is monotone in sequence length.
		if pt.NoRecompute == 0 {
			oomSeen = true
		} else if oomSeen {
			t.Errorf("seq %d: no-recompute feasible after an OOM at a shorter sequence", pt.SeqLen)
		}
		if pt.Speedup < 1.1 {
			t.Errorf("seq %d: speedup %.2f < 1.1", pt.SeqLen, pt.Speedup)
		}
	}
	if !oomSeen {
		t.Error("no-recomputation never OOMed across the sweep")
	}
	if out := FormatSweep(pts); !strings.Contains(out, "32768") {
		t.Error("format output malformed")
	}
}

func TestModelAccuracy(t *testing.T) {
	rows, err := ModelAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The simulator adds communication and ordering stalls: never
		// faster than the model, and within 10% of it (§5.1 accuracy).
		if r.Simulated < r.Modeled-1e-9 {
			t.Errorf("%s: simulation %g beats the model %g", r.Config, r.Simulated, r.Modeled)
		}
		if r.GapPct > 10 {
			t.Errorf("%s: model off by %.2f%%", r.Config, r.GapPct)
		}
	}
	if MaxAbsGapPct(rows) > 10 {
		t.Errorf("max gap %.2f%% exceeds 10%%", MaxAbsGapPct(rows))
	}
	if out := FormatAccuracy(rows); !strings.Contains(out, "gap") {
		t.Error("format output malformed")
	}
}
