package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFigure1Shape(t *testing.T) {
	series, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("got %d series, want 6 (3 seq lengths x 2 strategies)", len(series))
	}
	byKey := map[string]Figure1Series{}
	for _, s := range series {
		byKey[s.Recompute+"@"+itoa(s.SeqLen)] = s
		if len(s.StageGiB) != 8 {
			t.Fatalf("series %s@%d has %d stages", s.Recompute, s.SeqLen, len(s.StageGiB))
		}
	}
	// No-recomputation memory decreases with the stage id (the uneven
	// tail stages carry an extra layer, so allow a small rise there).
	for _, seq := range []int{4096, 8192, 16384} {
		non := byKey["none@"+itoa(seq)]
		for st := 1; st < 7; st++ {
			if non.StageGiB[st] > non.StageGiB[st-1]+1.0 {
				t.Errorf("seq %d: no-recompute memory rose at stage %d: %v", seq, st, non.StageGiB)
			}
		}
		if non.StageGiB[7] >= non.StageGiB[0] {
			t.Errorf("seq %d: last stage %g not below first %g", seq, non.StageGiB[7], non.StageGiB[0])
		}
		full := byKey["full@"+itoa(seq)]
		for st := range full.StageGiB {
			if full.StageGiB[st] > full.LimitGiB {
				t.Errorf("seq %d: full recompute exceeds the limit at stage %d", seq, st)
			}
			if full.StageGiB[st] >= non.StageGiB[st] {
				t.Errorf("seq %d stage %d: full %g >= none %g", seq, st, full.StageGiB[st], non.StageGiB[st])
			}
		}
	}
	// The motivating overflow: early stages exceed 80 GiB at seq 16384.
	long := byKey["none@16384"]
	if long.StageGiB[0] <= long.LimitGiB {
		t.Errorf("stage 0 at seq 16384 without recomputation = %g GiB, want > %g", long.StageGiB[0], long.LimitGiB)
	}
	// Memory grows with sequence length at every stage.
	for st := 0; st < 8; st++ {
		if byKey["none@8192"].StageGiB[st] <= byKey["none@4096"].StageGiB[st] {
			t.Errorf("stage %d: memory did not grow from 4096 to 8192", st)
		}
	}
	if out := FormatFigure1(series); !strings.Contains(out, "Figure 1") {
		t.Error("format output malformed")
	}
}

func itoa(v int) string {
	switch v {
	case 4096:
		return "4096"
	case 8192:
		return "8192"
	case 16384:
		return "16384"
	}
	return "?"
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	gpipe, ofob := res[0], res[1]
	if gpipe.Name != "GPipe" || ofob.Name != "1F1B" {
		t.Fatalf("unexpected order: %s, %s", gpipe.Name, ofob.Name)
	}
	// §2.1: same bubble count, very different live memory.
	if gpipe.IterTime != ofob.IterTime {
		t.Errorf("makespans differ: %g vs %g", gpipe.IterTime, ofob.IterTime)
	}
	for st, live := range gpipe.PeakMicros {
		if live != 6 {
			t.Errorf("GPipe stage %d holds %d micros, want all 6", st, live)
		}
	}
	for st, live := range ofob.PeakMicros {
		if want := int64(3 - st); live != want {
			t.Errorf("1F1B stage %d holds %d micros, want p-s = %d", st, live, want)
		}
	}
	if !strings.Contains(gpipe.Gantt, "dev  0") {
		t.Error("gantt missing")
	}
}

func TestFigure3Shape(t *testing.T) {
	steps, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("got %d steps", len(steps))
	}
	// Each optimization helps (or at least does not hurt).
	if steps[1].IterTime >= steps[0].IterTime {
		t.Errorf("adaptive recomputation did not help: %g -> %g", steps[0].IterTime, steps[1].IterTime)
	}
	if steps[2].IterTime > steps[1].IterTime+1e-12 {
		t.Errorf("adaptive partitioning regressed: %g -> %g", steps[1].IterTime, steps[2].IterTime)
	}
	// Opt 1 saves far more units than full recomputation, later stages more
	// than earlier ones.
	s1 := steps[1].SavedUnits
	if s1[0] <= steps[0].SavedUnits[0] {
		t.Error("adaptive recomputation saved nothing extra")
	}
	if s1[len(s1)-1] <= s1[0] {
		t.Errorf("later stages should save more: %v", s1)
	}
	// Opt 2 changes the partitioning.
	changed := false
	for i := range steps[1].Layers {
		if steps[2].Layers[i] != steps[1].Layers[i] {
			changed = true
		}
	}
	if !changed {
		t.Errorf("adaptive partitioning left the layer split unchanged: %v", steps[2].Layers)
	}
	if out := FormatFigure3(steps); !strings.Contains(out, "Opt. 2") {
		t.Error("format output malformed")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.SavedUnits) != 8 || len(r.Layers) != 8 {
			t.Fatalf("%s: bad lengths", r.Method)
		}
		// §7.4: saved units grow from first to last stage.
		if r.SavedUnits[7] <= r.SavedUnits[0] {
			t.Errorf("%s: saved units %v do not grow", r.Method, r.SavedUnits)
		}
		total := 0
		for _, l := range r.Layers {
			total += l
		}
		if total != 194 { // 2*96 + embedding + head
			t.Errorf("%s: %d layers total, want 194", r.Method, total)
		}
	}
	var ada, even Table4Row
	for _, r := range rows {
		if r.Method == "AdaPipe" {
			ada = r
		} else {
			even = r
		}
	}
	// Even partitioning's layer counts differ by at most one.
	min, max := even.Layers[0], even.Layers[0]
	for _, l := range even.Layers {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Errorf("even partitioning layers %v not uniform", even.Layers)
	}
	// AdaPipe gives the last stages at least as many layers as the first.
	if ada.Layers[7] < ada.Layers[0] {
		t.Errorf("AdaPipe layers %v do not shift to later stages", ada.Layers)
	}
	if out := FormatTable4(rows); !strings.Contains(out, "AdaPipe") {
		t.Error("format output malformed")
	}
}

func TestFigure10Exactness(t *testing.T) {
	fc := DefaultFigure10Config()
	fc.Steps = 60 // keep the test quick; the full 200 runs in the benchmark
	curves, err := Figure10(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	if gap := MaxCurveGap(curves[0], curves[1]); gap != 0 {
		t.Errorf("loss curves diverge by %g; recomputation must be exact", gap)
	}
	// The loss must actually descend (the corpus is learnable).
	l := curves[0].Losses
	first, last := avg(l[:10]), avg(l[len(l)-10:])
	if last >= first {
		t.Errorf("loss did not descend: %.4f -> %.4f", first, last)
	}
	if out := FormatFigure10(curves); !strings.Contains(out, "max |Δloss|") {
		t.Error("format output malformed")
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSavesFromPlanRoundTrip(t *testing.T) {
	fc := DefaultFigure10Config()
	fc.Steps = 25
	curves, err := Figure10(fc)
	if err != nil {
		t.Fatal(err)
	}
	// Implicitly exercises SavesFromPlan; also check determinism.
	curves2, err := Figure10(fc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range curves {
		if MaxCurveGap(curves[i], curves2[i]) != 0 {
			t.Error("figure 10 is not deterministic")
		}
	}
	if math.IsNaN(curves[0].Losses[len(curves[0].Losses)-1]) {
		t.Error("NaN loss")
	}
}

func TestFigure10GatedEngine(t *testing.T) {
	// The plan→engine mapping also round-trips through SwiGLU blocks.
	fc := DefaultFigure10Config()
	fc.GatedFFN = true
	fc.Steps = 25
	curves, err := Figure10(fc)
	if err != nil {
		t.Fatal(err)
	}
	if gap := MaxCurveGap(curves[0], curves[1]); gap != 0 {
		t.Errorf("gated curves diverge by %g", gap)
	}
}
