package experiments

import (
	"fmt"
	"math"
	"strings"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// AccuracyRow compares the §5.1 analytical cost model against the
// discrete-event simulator for one configuration.
type AccuracyRow struct {
	// Config labels the point.
	Config string
	// Modeled is the planner's W+E+(n−p)M prediction (communication-free).
	Modeled float64
	// Simulated is the dependency-exact makespan (with communication).
	Simulated float64
	// GapPct is (Simulated/Modeled − 1)·100.
	GapPct float64
}

// ModelAccuracy quantifies the §5.1 claim of an "accurate cost model" for
// the 1F1B scheduling mechanism: across the evaluation configurations, the
// model's predicted iteration time is compared with the simulator's
// dependency-exact execution (which additionally charges point-to-point
// communication, so the model should sit slightly below).
func ModelAccuracy() ([]AccuracyRow, error) {
	cl := hardware.ClusterA()
	type point struct {
		name  string
		cfg   model.Config
		strat parallel.Strategy
		train parallel.Config
		meth  string
	}
	points := []point{
		{"GPT-3 4096 (8,8,1) AdaPipe", model.GPT3_175B(), parallel.Strategy{TP: 8, PP: 8, DP: 1},
			parallel.Config{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096}, "AdaPipe"},
		{"GPT-3 16384 (8,8,1) AdaPipe", model.GPT3_175B(), parallel.Strategy{TP: 8, PP: 8, DP: 1},
			parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}, "AdaPipe"},
		{"GPT-3 16384 (8,8,1) Even", model.GPT3_175B(), parallel.Strategy{TP: 8, PP: 8, DP: 1},
			parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}, "Even Partitioning"},
		{"GPT-3 16384 (8,4,2) DAPPLE-Full", model.GPT3_175B(), parallel.Strategy{TP: 8, PP: 4, DP: 2},
			parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}, "DAPPLE-Full"},
		{"Llama2 8192 (8,2,2) AdaPipe", model.Llama2_70B(), parallel.Strategy{TP: 8, PP: 2, DP: 2},
			parallel.Config{GlobalBatch: 64, MicroBatch: 1, SeqLen: 8192}, "AdaPipe"},
		{"Llama2 4096 (4,8,1) AdaPipe", model.Llama2_70B(), parallel.Strategy{TP: 4, PP: 8, DP: 1},
			parallel.Config{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096}, "AdaPipe"},
	}
	var out []AccuracyRow
	for _, pt := range points {
		m, err := baseline.MethodByName(pt.meth)
		if err != nil {
			return nil, err
		}
		o := baseline.Evaluate(m, pt.cfg, cl, pt.strat, pt.train, core.DefaultOptions())
		if !o.Feasible() {
			return nil, fmt.Errorf("experiments: accuracy point %q infeasible (%v)", pt.name, o.Err)
		}
		out = append(out, AccuracyRow{
			Config:    pt.name,
			Modeled:   o.Plan.Total,
			Simulated: o.IterTime,
			GapPct:    (o.IterTime/o.Plan.Total - 1) * 100,
		})
	}
	return out, nil
}

// MaxAbsGapPct returns the largest absolute model/simulator gap.
func MaxAbsGapPct(rows []AccuracyRow) float64 {
	var m float64
	for _, r := range rows {
		if g := math.Abs(r.GapPct); g > m {
			m = g
		}
	}
	return m
}

// FormatAccuracy renders the accuracy table.
func FormatAccuracy(rows []AccuracyRow) string {
	var b strings.Builder
	b.WriteString("Cost-model accuracy: §5.1 prediction vs. discrete-event simulation\n")
	fmt.Fprintf(&b, "  %-36s %10s %10s %8s\n", "configuration", "modeled", "simulated", "gap")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-36s %9.2fs %9.2fs %+7.2f%%\n", r.Config, r.Modeled, r.Simulated, r.GapPct)
	}
	return b.String()
}
