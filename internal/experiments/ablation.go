package experiments

import (
	"fmt"
	"strings"
	"time"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// AblationRow is one configuration of the design-choice ablation study.
type AblationRow struct {
	// Name describes the configuration.
	Name string
	// ModeledTotal is the planner's modeled iteration time in seconds
	// (zero when the configuration is OOM).
	ModeledTotal float64
	// SimulatedTotal is the discrete-event makespan in seconds.
	SimulatedTotal float64
	// SearchTime is the wall time of the search.
	SearchTime time.Duration
	// KnapsackRuns counts recomputation-DP solves during the search.
	KnapsackRuns int
	// OOM marks infeasible configurations.
	OOM bool
}

// Ablation evaluates the design choices DESIGN.md calls out, on the §7.4
// configuration (GPT-3, seq 16384, (8,8,1)):
//
//   - recomputation granularity: none / full / whole-layer (vPipe-style,
//     §2.2) / unit-level (AdaPipe §4);
//   - partitioning: even / Algorithm 1 / exact Pareto-frontier DP;
//   - search engineering: the §5.3 isomorphism cache and GCD reduction
//     toggled off (result must be identical; only the search time moves).
func Ablation() ([]AblationRow, error) {
	cfg, strat, train := fig8Config()
	cl := hardware.ClusterA()
	cases := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"no recomputation (even)", func(o *core.Options) { o.Recompute = core.RecomputeNone; o.Partition = core.PartitionEven }},
		{"full recomputation (even)", func(o *core.Options) { o.Recompute = core.RecomputeFull; o.Partition = core.PartitionEven }},
		{"layer-level recomputation (even)", func(o *core.Options) { o.Recompute = core.RecomputeLayerLevel; o.Partition = core.PartitionEven }},
		{"unit-level recomputation (even)", func(o *core.Options) { o.Recompute = core.RecomputeAdaptive; o.Partition = core.PartitionEven }},
		{"AdaPipe (Algorithm 1)", func(o *core.Options) { o.Partition = core.PartitionAdaptive }},
		{"AdaPipe (exact Pareto DP)", func(o *core.Options) { o.Partition = core.PartitionExact }},
		{"AdaPipe, isomorphism cache off", func(o *core.Options) { o.Partition = core.PartitionAdaptive; o.DisableIsomorphism = true }},
		{"AdaPipe, GCD reduction off", func(o *core.Options) { o.Partition = core.PartitionAdaptive; o.DisableGCD = true }},
	}
	var out []AblationRow
	for _, c := range cases {
		opts := core.DefaultOptions()
		c.mutate(&opts)
		row := AblationRow{Name: c.name}
		start := time.Now()
		planner, err := core.NewPlanner(cfg, cl, strat, train, opts)
		if err != nil {
			return nil, err
		}
		plan, err := planner.Plan()
		row.SearchTime = time.Since(start)
		row.KnapsackRuns = planner.Stats.KnapsackRuns
		if err != nil {
			row.OOM = true
			out = append(out, row)
			continue
		}
		row.ModeledTotal = plan.Total
		sched, err := schedule.OneFOneB(strat.PP, plan.MicroBatches)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Input{Sched: sched, Stages: baseline.StageCosts(plan)})
		if err != nil {
			return nil, err
		}
		row.SimulatedTotal = res.IterTime
		out = append(out, row)
	}
	return out, nil
}

// FormatAblation renders the ablation rows.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: design choices on GPT-3, seq 16384, (8,8,1)\n")
	fmt.Fprintf(&b, "  %-36s %12s %12s %12s %10s\n", "configuration", "modeled", "simulated", "search", "knapsacks")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&b, "  %-36s %12s %12s %12s %10d\n", r.Name, "OOM", "-", r.SearchTime.Round(time.Millisecond), r.KnapsackRuns)
			continue
		}
		fmt.Fprintf(&b, "  %-36s %11.2fs %11.2fs %12s %10d\n",
			r.Name, r.ModeledTotal, r.SimulatedTotal, r.SearchTime.Round(time.Millisecond), r.KnapsackRuns)
	}
	return b.String()
}

// InterleavedRow is one point of the supplementary interleaved-1F1B study.
type InterleavedRow struct {
	// Chunks is the virtual-chunk count v per device.
	Chunks int
	// IterTime is the simulated makespan.
	IterTime float64
	// BubbleRatio is the idle fraction.
	BubbleRatio float64
}

// Interleaved reproduces the §2.1 background claim about Megatron's
// interleaved 1F1B: more virtual chunks per device shrink the bubble ratio
// (at the cost of proportionally more pipeline communication, which is also
// charged here). Run on a uniform 4-stage pipeline with 16 micro-batches.
func Interleaved() ([]InterleavedRow, error) {
	const p, n = 4, 16
	var out []InterleavedRow
	for _, v := range []int{1, 2, 4} {
		sched, err := schedule.Interleaved(p, n, v)
		if err != nil {
			return nil, err
		}
		stages := make([]sim.StageCost, p*v)
		for i := range stages {
			stages[i] = sim.StageCost{
				Fwd:     1.0 / float64(v),
				Bwd:     2.0 / float64(v),
				CommFwd: 0.02,
				CommBwd: 0.02,
			}
		}
		res, err := sim.Run(sim.Input{Sched: sched, Stages: stages})
		if err != nil {
			return nil, err
		}
		out = append(out, InterleavedRow{Chunks: v, IterTime: res.IterTime, BubbleRatio: res.BubbleRatio()})
	}
	return out, nil
}

// FormatInterleaved renders the interleaved study.
func FormatInterleaved(rows []InterleavedRow) string {
	var b strings.Builder
	b.WriteString("Interleaved 1F1B (supplementary, §2.1): 4 stages, 16 micro-batches\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  v=%d chunks/device: makespan %.3f, bubble ratio %.3f\n", r.Chunks, r.IterTime, r.BubbleRatio)
	}
	return b.String()
}
