package experiments

import (
	"fmt"
	"math"
	"strings"

	"adapipe/internal/core"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
	"adapipe/internal/partition"
	"adapipe/internal/train"
)

// SavesFromPlan converts a planner Plan into engine stage bounds and
// per-block SaveSpecs: for each stage and unit kind, the planner's saved
// count is assigned to the trailing blocks of that kind (which copies are
// saved is immaterial to both time and memory — all copies are isomorphic).
func SavesFromPlan(plan *core.Plan, seq []model.Layer) ([]int, [][]train.SaveSpec) {
	bounds := make([]int, 0, len(plan.Stages)+1)
	saves := make([][]train.SaveSpec, len(plan.Stages))
	unitKinds := map[model.LayerKind][]model.UnitKind{
		model.Attention: {model.UnitLayerNorm, model.UnitQProj, model.UnitKProj, model.UnitVProj, model.UnitCoreAttention},
		model.FFN:       {model.UnitLayerNorm, model.UnitFFNUp, model.UnitFFNGate, model.UnitFFNAct},
	}
	for si, st := range plan.Stages {
		bounds = append(bounds, st.LayerLo)
		// Collect the stage's blocks in order with their kinds.
		type blockRef struct {
			kind model.LayerKind
			idx  int // index within saves[si]
		}
		var blocks []blockRef
		for li := st.LayerLo; li < st.LayerHi; li++ {
			k := seq[li].Kind
			if k == model.Attention || k == model.FFN {
				blocks = append(blocks, blockRef{kind: k, idx: len(blocks)})
			}
		}
		specs := make([]train.SaveSpec, len(blocks))
		for i := range specs {
			specs[i] = train.SaveSpec{}
		}
		for kind, kinds := range unitKinds {
			// Blocks of this kind, in order.
			var of []int
			for _, b := range blocks {
				if b.kind == kind {
					of = append(of, b.idx)
				}
			}
			for _, uk := range kinds {
				key := kind.String() + "/" + uk.String()
				c := st.Recompute.Saved[key]
				// Assign saved copies to the trailing blocks.
				for i := len(of) - c; i < len(of); i++ {
					if i >= 0 {
						specs[of[i]][uk] = true
					}
				}
			}
		}
		saves[si] = specs
	}
	bounds = append(bounds, plan.Stages[len(plan.Stages)-1].LayerHi)
	return bounds, saves
}

// Figure10Curve is one loss curve of the convergence validation.
type Figure10Curve struct {
	// Name is "DAPPLE-Full" or "AdaPipe".
	Name string
	// Losses is the per-step training loss.
	Losses []float64
}

// Figure10Config sizes the convergence run.
type Figure10Config struct {
	// Layers, Dim, Heads, FFN, Vocab, Seq size the micro-transformer.
	Layers, Dim, Heads, FFN, Vocab, Seq int
	// Stages is the pipeline depth.
	Stages int
	// MicroBatches is n per iteration.
	MicroBatches int
	// Steps is the iteration count (200 in the paper's Figure 10).
	Steps int
	// GatedFFN selects SwiGLU feed-forward blocks (Llama-2 style), mapped
	// through the planner's UnitFFNGate decisions.
	GatedFFN bool
	// LR is the Adam learning rate.
	LR float64
	// Seed seeds parameters and data.
	Seed uint64
}

// DefaultFigure10Config returns a configuration that trains in a few seconds
// while showing a clearly descending loss.
func DefaultFigure10Config() Figure10Config {
	return Figure10Config{
		Layers: 4, Dim: 64, Heads: 4, FFN: 128, Vocab: 64, Seq: 48,
		Stages: 2, MicroBatches: 8, Steps: 200, LR: 1e-3, Seed: 2024,
	}
}

// Figure10 trains the same micro-transformer twice — once as DAPPLE-Full
// (even partitioning, full recomputation) and once under a genuine AdaPipe
// plan (adaptive partitioning and per-stage save sets from the real search)
// — and returns both loss curves. AdaPipe only removes repeated computation,
// so with identical initialization the curves coincide exactly; the paper's
// curves differ only by initialization noise (§7.5).
func Figure10(fc Figure10Config) ([]Figure10Curve, error) {
	tcfg := train.Config{
		Layers: fc.Layers, Dim: fc.Dim, Heads: fc.Heads, FFN: fc.FFN,
		Vocab: fc.Vocab, Seq: fc.Seq, Seed: fc.Seed, GatedFFN: fc.GatedFFN,
	}
	mcfg := model.Config{
		Name: "fig10", DecoderLayers: fc.Layers, Hidden: fc.Dim, Heads: fc.Heads,
		KVHeads: fc.Heads, FFNHidden: fc.FFN, Vocab: fc.Vocab, BytesPerValue: 2,
		GatedFFN: fc.GatedFFN,
	}
	seq := mcfg.LayerSequence()
	strat := parallel.Strategy{TP: 1, PP: fc.Stages, DP: 1}
	trainCfg := parallel.Config{GlobalBatch: fc.MicroBatches, MicroBatch: 1, SeqLen: fc.Seq}

	// Plan AdaPipe against a toy device sized so early stages must
	// recompute while later stages can save.
	capacity, err := toyCapacity(mcfg, strat, trainCfg, 0.6)
	if err != nil {
		return nil, err
	}
	opts := toyOptions()
	opts.Recompute = core.RecomputeAdaptive
	opts.Partition = core.PartitionAdaptive
	planner, err := core.NewPlanner(mcfg, toyCluster(fc.Stages, capacity), strat, trainCfg, opts)
	if err != nil {
		return nil, err
	}
	plan, err := planner.Plan()
	if err != nil {
		return nil, err
	}
	adaBounds, adaSaves := SavesFromPlan(plan, seq)

	// DAPPLE-Full: even bounds, every block fully recomputed.
	evenBounds := partition.Even(len(seq), fc.Stages)
	fullSaves := make([][]train.SaveSpec, fc.Stages)
	for s := 0; s < fc.Stages; s++ {
		blocks := countBlocks(seq, evenBounds[s], evenBounds[s+1])
		for i := 0; i < blocks; i++ {
			fullSaves[s] = append(fullSaves[s], train.SaveNone())
		}
	}

	runs := []struct {
		name   string
		bounds []int
		saves  [][]train.SaveSpec
	}{
		{"DAPPLE-Full", evenBounds, fullSaves},
		{"AdaPipe", adaBounds, adaSaves},
	}
	var out []Figure10Curve
	for _, r := range runs {
		res, err := train.Run(train.RunConfig{
			Net: tcfg, Bounds: r.bounds, Saves: r.saves,
			Steps: fc.Steps, MicroBatches: fc.MicroBatches, LR: fc.LR, DataSeed: fc.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 10 %s: %w", r.name, err)
		}
		out = append(out, Figure10Curve{Name: r.name, Losses: res.Losses})
	}
	return out, nil
}

// MaxCurveGap returns the largest absolute per-step difference between two
// loss curves.
func MaxCurveGap(a, b Figure10Curve) float64 {
	var m float64
	for i := range a.Losses {
		if d := math.Abs(a.Losses[i] - b.Losses[i]); d > m {
			m = d
		}
	}
	return m
}

// FormatFigure10 renders sampled points of both loss curves.
func FormatFigure10(curves []Figure10Curve) string {
	var b strings.Builder
	b.WriteString("Figure 10: Loss curves (synthetic corpus)\n")
	if len(curves) == 0 {
		return b.String()
	}
	steps := len(curves[0].Losses)
	fmt.Fprintf(&b, "  %-6s", "step")
	for _, c := range curves {
		fmt.Fprintf(&b, " %14s", c.Name)
	}
	b.WriteString("\n")
	for i := 0; i < steps; i += 25 {
		fmt.Fprintf(&b, "  %-6d", i)
		for _, c := range curves {
			fmt.Fprintf(&b, " %14.4f", c.Losses[i])
		}
		b.WriteString("\n")
	}
	last := steps - 1
	fmt.Fprintf(&b, "  %-6d", last)
	for _, c := range curves {
		fmt.Fprintf(&b, " %14.4f", c.Losses[last])
	}
	b.WriteString("\n")
	if len(curves) == 2 {
		fmt.Fprintf(&b, "  max |Δloss| between curves: %.3g\n", MaxCurveGap(curves[0], curves[1]))
	}
	return b.String()
}

func countBlocks(seq []model.Layer, lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if seq[i].Kind == model.Attention || seq[i].Kind == model.FFN {
			n++
		}
	}
	return n
}
