package experiments

import (
	"strings"
	"testing"
)

func index(pts []EndToEndPoint) map[string]map[int]EndToEndPoint {
	out := map[string]map[int]EndToEndPoint{}
	for _, pt := range pts {
		if out[pt.Method] == nil {
			out[pt.Method] = map[int]EndToEndPoint{}
		}
		out[pt.Method][pt.SeqLen] = pt
	}
	return out
}

// TestFigure6Shape checks the GPT-3 end-to-end claims of §7.2 against the
// simulated substrate.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy sweep")
	}
	pts, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	by := index(pts)
	for _, seq := range []int{4096, 8192, 16384} {
		ada := by["AdaPipe"][seq]
		even := by["Even Partitioning"][seq]
		full := by["DAPPLE-Full"][seq]
		if ada.OOM || even.OOM || full.OOM {
			t.Fatalf("seq %d: adaptive methods or DAPPLE-Full OOM", seq)
		}
		// AdaPipe ≥ Even Partitioning ≥ nothing worse than DAPPLE-Full.
		if ada.IterTime > even.IterTime+1e-9 {
			t.Errorf("seq %d: AdaPipe %g slower than Even Partitioning %g", seq, ada.IterTime, even.IterTime)
		}
		if even.IterTime >= full.IterTime {
			t.Errorf("seq %d: Even Partitioning %g not faster than DAPPLE-Full %g", seq, even.IterTime, full.IterTime)
		}
		// Paper: up to 1.32x for GPT-3; require a solid margin.
		if ada.Speedup < 1.15 {
			t.Errorf("seq %d: AdaPipe speedup %.3f < 1.15", seq, ada.Speedup)
		}
		// Chimera variants lose to DAPPLE when n >> p (§7.2).
		for _, name := range []string{"Chimera-Full", "ChimeraD-Full"} {
			c := by[name][seq]
			if !c.OOM && c.IterTime < full.IterTime {
				t.Errorf("seq %d: %s %g beats DAPPLE-Full %g", seq, name, c.IterTime, full.IterTime)
			}
		}
	}
	// No-recomputation baselines die as sequences grow (§7.2: at 16384
	// every -Non baseline exceeds memory under all strategies).
	for _, name := range []string{"DAPPLE-Non", "Chimera-Non", "ChimeraD-Non"} {
		if !by[name][16384].OOM {
			t.Errorf("%s at seq 16384 should be OOM", name)
		}
	}
	if !by["DAPPLE-Non"][4096].OOM && by["DAPPLE-Non"][4096].Strategy.TP != 8 {
		t.Error("DAPPLE-Non at 4096 should only survive at TP=8 (§7.3)")
	}
	if out := FormatEndToEnd("Figure 6", pts); !strings.Contains(out, "sequence length 16384") {
		t.Error("format output malformed")
	}
}

// TestFigure5Shape checks the Llama 2 claims: DAPPLE-Non feasible through
// 8192 but OOM nowhere near as early as GPT-3, ChimeraD-Non dying at 8192.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy sweep")
	}
	pts, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	by := index(pts)
	for _, seq := range []int{4096, 8192, 16384} {
		ada := by["AdaPipe"][seq]
		full := by["DAPPLE-Full"][seq]
		if ada.OOM || full.OOM {
			t.Fatalf("seq %d: AdaPipe or DAPPLE-Full OOM", seq)
		}
		if ada.Speedup < 1.1 {
			t.Errorf("seq %d: AdaPipe speedup %.3f < 1.1", seq, ada.Speedup)
		}
	}
	// Llama 2 fits without recomputation through 8192 (§7.2)...
	if by["DAPPLE-Non"][4096].OOM || by["DAPPLE-Non"][8192].OOM {
		t.Error("Llama 2 DAPPLE-Non should fit at 4096 and 8192")
	}
	// ...while ChimeraD-Non doubles activations and dies at 8192.
	if !by["ChimeraD-Non"][8192].OOM {
		t.Error("ChimeraD-Non at 8192 should be OOM (doubled forward activations)")
	}
}

func TestFigure7Shape(t *testing.T) {
	pts, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 { // 4 jobs x 4 methods
		t.Fatalf("got %d points", len(pts))
	}
	type key struct {
		model   string
		devices int
	}
	by := map[key]map[string]Figure7Point{}
	for _, pt := range pts {
		k := key{pt.Model, pt.Devices}
		if by[k] == nil {
			by[k] = map[string]Figure7Point{}
		}
		by[k][pt.Method] = pt
	}
	for k, methods := range by {
		// 32 GiB devices: no recomputation OOMs already at 4096 (§7.2).
		if !methods["DAPPLE-Non"].OOM {
			t.Errorf("%v: DAPPLE-Non should be OOM on 32 GiB devices", k)
		}
		ada := methods["AdaPipe"]
		even := methods["Even Partitioning"]
		if ada.OOM || even.OOM {
			t.Fatalf("%v: adaptive methods OOM", k)
		}
		if ada.Speedup < 1.05 {
			t.Errorf("%v: AdaPipe speedup %.3f < 1.05", k, ada.Speedup)
		}
		if ada.IterTime > even.IterTime+1e-9 {
			t.Errorf("%v: AdaPipe slower than Even Partitioning", k)
		}
	}
	// Weak scaling: iteration time roughly flat as devices and batch grow
	// together (same micro-batches per replica).
	for _, m := range []string{"AdaPipe", "DAPPLE-Full"} {
		small := by[key{"GPT-3", 256}][m].IterTime
		large := by[key{"GPT-3", 2048}][m].IterTime
		if rel := large / small; rel < 0.95 || rel > 1.05 {
			t.Errorf("GPT-3 %s weak scaling ratio %.3f, want ~1", m, rel)
		}
	}
	if out := FormatFigure7(pts); !strings.Contains(out, "2048 NPUs") {
		t.Error("format output malformed")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	find := func(tp, pp, dp int) Table3Row {
		for _, r := range rows {
			if r.Strategy.TP == tp && r.Strategy.PP == pp && r.Strategy.DP == dp {
				return r
			}
		}
		t.Fatalf("missing strategy (%d,%d,%d)", tp, pp, dp)
		return Table3Row{}
	}
	// §7.3: at (1,32,2) only DAPPLE-Full survives.
	r := find(1, 32, 2)
	if _, ok := r.IterTime["DAPPLE-Full"]; !ok {
		t.Error("(1,32,2): DAPPLE-Full should fit")
	}
	for _, m := range []string{"AdaPipe", "Even Partitioning", "DAPPLE-Non"} {
		if _, ok := r.IterTime[m]; ok {
			t.Errorf("(1,32,2): %s should be OOM", m)
		}
	}
	// Table 3's DAPPLE-Non column: infeasible at small TP (the paper has
	// it only at TP=8; our substrate also fits the marginal (4,16,1)).
	for _, row := range rows {
		_, ok := row.IterTime["DAPPLE-Non"]
		if ok && row.Strategy.TP < 4 {
			t.Errorf("DAPPLE-Non feasible at %s, want large TP only", row.Strategy)
		}
	}
	for _, strat := range [][3]int{{8, 4, 2}, {8, 8, 1}} {
		if _, ok := find(strat[0], strat[1], strat[2]).IterTime["DAPPLE-Non"]; !ok {
			t.Errorf("DAPPLE-Non should fit at (%d,%d,%d)", strat[0], strat[1], strat[2])
		}
	}
	// AdaPipe beats DAPPLE-Full wherever both run.
	for _, row := range rows {
		ada, okA := row.IterTime["AdaPipe"]
		full, okF := row.IterTime["DAPPLE-Full"]
		if okA && okF && ada >= full {
			t.Errorf("%s: AdaPipe %g not faster than DAPPLE-Full %g", row.Strategy, ada, full)
		}
	}
	if out := FormatTable3(rows); !strings.Contains(out, "(8, 8, 1)") {
		t.Error("format output malformed")
	}
}

func TestFigure8Shape(t *testing.T) {
	series, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]Figure8Series{}
	for _, s := range series {
		by[s.Method] = s
	}
	// DAPPLE-Non: strongly imbalanced, stage 0 far above the last stage
	// (paper: 2.33x).
	non := by["DAPPLE-Non"]
	if !non.OOM {
		t.Error("DAPPLE-Non should be flagged OOM at seq 16384")
	}
	if ratio := non.StageGiB[0] / non.StageGiB[7]; ratio < 1.5 {
		t.Errorf("DAPPLE-Non imbalance %.2fx, want > 1.5x", ratio)
	}
	// AdaPipe and Even Partitioning: balanced, under the capacity (§7.4
	// reports ~70 of 80 GB per stage).
	for _, name := range []string{"AdaPipe", "Even Partitioning"} {
		s := by[name]
		if s.OOM {
			t.Errorf("%s flagged OOM", name)
		}
		min, max := s.StageGiB[0], s.StageGiB[0]
		for _, g := range s.StageGiB {
			if g > 80 {
				t.Errorf("%s exceeds 80 GiB: %v", name, s.StageGiB)
			}
			if g < min {
				min = g
			}
			if g > max {
				max = g
			}
		}
		// Early/middle stages sit near the budget in a balanced band.
		if max/min > 1.5 {
			t.Errorf("%s per-stage memory spread %.2fx: %v", name, max/min, s.StageGiB)
		}
	}
	// Chimera replicates parameters: its full-recompute peak exceeds
	// DAPPLE-Full's everywhere.
	for st := range by["Chimera-Full"].StageGiB {
		if by["Chimera-Full"].StageGiB[st] <= by["DAPPLE-Full"].StageGiB[st] {
			t.Errorf("stage %d: Chimera-Full %.1f not above DAPPLE-Full %.1f",
				st, by["Chimera-Full"].StageGiB[st], by["DAPPLE-Full"].StageGiB[st])
		}
	}
	if out := FormatFigure8(series); !strings.Contains(out, "Peak memory") {
		t.Error("format output malformed")
	}
}

func TestFigure9Shape(t *testing.T) {
	series, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]Figure9Series{}
	for _, s := range series {
		by[s.Method] = s
		if len(s.MicroStep) != 8 {
			t.Fatalf("%s: %d stages", s.Method, len(s.MicroStep))
		}
	}
	// Even Partitioning: micro-step time decreases with the stage id
	// (front stages recompute more); the paper reports slowest/fastest
	// ≈ 1.17x.
	even := by["Even Partitioning"]
	if even.MicroStep[0] <= even.MicroStep[6] {
		t.Errorf("Even Partitioning micro-steps should decline: %v", even.MicroStep)
	}
	// AdaPipe flattens the profile: its spread is smaller.
	spread := func(xs []float64) float64 {
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max / min
	}
	if spread(by["AdaPipe"].MicroStep) > spread(even.MicroStep) {
		t.Errorf("AdaPipe spread %.3f vs Even %.3f; AdaPipe should be flatter",
			spread(by["AdaPipe"].MicroStep), spread(even.MicroStep))
	}
	// Full-recompute baselines are uniform across stages.
	if s := spread(by["DAPPLE-Full"].MicroStep); s > 1.1 {
		t.Errorf("DAPPLE-Full spread %.3f, want near-uniform", s)
	}
	if out := FormatFigure9(series); !strings.Contains(out, "Micro-step") {
		t.Error("format output malformed")
	}
}
