// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulated substrate. Each Figure*/Table* function
// returns structured rows plus a Format helper that prints them in the
// paper's layout; cmd/experiments and the root-level benchmarks drive them.
//
// Absolute times come from an analytical device model, not the authors'
// clusters, so the numbers differ from the paper — the shapes (who wins, by
// roughly what factor, where OOM boundaries fall) are what EXPERIMENTS.md
// tracks.
package experiments

import (
	"fmt"
	"strings"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// GiB converts bytes to GiB for display.
func GiB(b int64) float64 { return float64(b) / float64(1<<30) }

// ClusterAConfigs returns the (sequence length, global batch) pairs of
// Table 2 for cluster A: doubling sequence length halves the global batch so
// tokens per iteration stay constant.
func ClusterAConfigs() []parallel.Config {
	return []parallel.Config{
		{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096},
		{GlobalBatch: 64, MicroBatch: 1, SeqLen: 8192},
		{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384},
	}
}

// EndToEndPoint is one bar of Figures 5/6: a method at one sequence length.
type EndToEndPoint struct {
	// Method is the figure label.
	Method string
	// SeqLen is the sequence length.
	SeqLen int
	// Strategy is the best 3D strategy found for the method.
	Strategy parallel.Strategy
	// IterTime is the simulated iteration time in seconds.
	IterTime float64
	// Speedup is relative to DAPPLE-Full at the same sequence length.
	Speedup float64
	// PeakGiB is the maximum simulated per-device memory.
	PeakGiB float64
	// OOM marks methods with no feasible strategy.
	OOM bool
}

// EndToEnd sweeps all methods over all cluster-A configs for a model —
// Figure 5 (Llama 2, 32 GPUs) and Figure 6 (GPT-3, 64 GPUs).
func EndToEnd(cfg model.Config, devices int) ([]EndToEndPoint, error) {
	cl := hardware.ClusterA()
	var out []EndToEndPoint
	for _, train := range ClusterAConfigs() {
		var ref float64
		for _, m := range baseline.Methods() {
			best, _ := baseline.Best(m, cfg, cl, devices, train, core.DefaultOptions())
			pt := EndToEndPoint{Method: m.Name, SeqLen: train.SeqLen}
			if !best.Feasible() {
				pt.OOM = true
			} else {
				pt.Strategy = best.Strategy
				pt.IterTime = best.IterTime
				pt.PeakGiB = GiB(best.Sim.MaxPeakMem())
				if m.Name == "DAPPLE-Full" {
					ref = best.IterTime
				}
				if ref > 0 {
					pt.Speedup = ref / best.IterTime
				}
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// Figure5 regenerates the Llama 2 end-to-end comparison (32 GPUs).
func Figure5() ([]EndToEndPoint, error) { return EndToEnd(model.Llama2_70B(), 32) }

// Figure6 regenerates the GPT-3 end-to-end comparison (64 GPUs).
func Figure6() ([]EndToEndPoint, error) { return EndToEnd(model.GPT3_175B(), 64) }

// FormatEndToEnd renders end-to-end points grouped by sequence length.
func FormatEndToEnd(title string, pts []EndToEndPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	lastSeq := -1
	for _, pt := range pts {
		if pt.SeqLen != lastSeq {
			fmt.Fprintf(&b, "-- sequence length %d --\n", pt.SeqLen)
			lastSeq = pt.SeqLen
		}
		if pt.OOM {
			fmt.Fprintf(&b, "  %-18s %10s\n", pt.Method, "OOM")
			continue
		}
		fmt.Fprintf(&b, "  %-18s %9.2fs  %-11s speedup %.2fx  peak %.1f GiB\n",
			pt.Method, pt.IterTime, pt.Strategy.String(), pt.Speedup, pt.PeakGiB)
	}
	return b.String()
}

// Figure7Point is one bar of the cluster-B experiment.
type Figure7Point struct {
	// Model is "GPT-3" or "Llama 2".
	Model string
	// Devices is the NPU count.
	Devices int
	// Method is the figure label.
	Method string
	// IterTime is the simulated iteration time in seconds.
	IterTime float64
	// Speedup is relative to DAPPLE-Full.
	Speedup float64
	// OOM marks infeasible methods.
	OOM bool
}

// Figure7 regenerates the cluster-B (Ascend) end-to-end comparison: GPT-3 at
// 256 and 2048 NPUs with (t, p) = (8, 8), Llama 2 at 128 and 1024 NPUs with
// (t, p) = (4, 8); the global batch scales linearly with the data-parallel
// size (§7.2).
func Figure7() ([]Figure7Point, error) {
	type job struct {
		name    string
		cfg     model.Config
		devices int
		strat   parallel.Strategy
		gbs     int
	}
	jobs := []job{
		{"Llama 2", model.Llama2_70B(), 128, parallel.Strategy{TP: 4, PP: 8, DP: 4}, 256},
		{"Llama 2", model.Llama2_70B(), 1024, parallel.Strategy{TP: 4, PP: 8, DP: 32}, 1024},
		{"GPT-3", model.GPT3_175B(), 256, parallel.Strategy{TP: 8, PP: 8, DP: 4}, 256},
		{"GPT-3", model.GPT3_175B(), 2048, parallel.Strategy{TP: 8, PP: 8, DP: 32}, 2048},
	}
	var out []Figure7Point
	for _, j := range jobs {
		if j.strat.Devices() != j.devices {
			return nil, fmt.Errorf("experiments: %s strategy %s does not cover %d devices", j.name, j.strat, j.devices)
		}
		cl := hardware.ClusterBLarge()
		train := parallel.Config{GlobalBatch: j.gbs, MicroBatch: 1, SeqLen: 4096}
		var ref float64
		for _, m := range baseline.ClusterBMethods() {
			o := baseline.Evaluate(m, j.cfg, cl, j.strat, train, core.DefaultOptions())
			pt := Figure7Point{Model: j.name, Devices: j.devices, Method: m.Name}
			if !o.Feasible() {
				pt.OOM = true
			} else {
				pt.IterTime = o.IterTime
				if m.Name == "DAPPLE-Full" {
					ref = o.IterTime
				}
				if ref > 0 {
					pt.Speedup = ref / o.IterTime
				}
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// FormatFigure7 renders the cluster-B points.
func FormatFigure7(pts []Figure7Point) string {
	var b strings.Builder
	b.WriteString("Figure 7: End-to-end performance on cluster B (Ascend 910, seq 4096)\n")
	last := ""
	for _, pt := range pts {
		key := fmt.Sprintf("%s (%d NPUs)", pt.Model, pt.Devices)
		if key != last {
			fmt.Fprintf(&b, "-- %s --\n", key)
			last = key
		}
		if pt.OOM {
			fmt.Fprintf(&b, "  %-18s %10s\n", pt.Method, "OOM")
			continue
		}
		fmt.Fprintf(&b, "  %-18s %9.2fs  speedup %.2fx\n", pt.Method, pt.IterTime, pt.Speedup)
	}
	return b.String()
}
