package experiments

import (
	"fmt"
	"strings"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// SweepPoint is one sequence length of the memory-pressure sweep.
type SweepPoint struct {
	// SeqLen is the sequence length.
	SeqLen int
	// Full, Layer, Unit and AdaPipe are simulated iteration times for
	// full recomputation, whole-layer adaptive recomputation, unit-level
	// adaptive recomputation (even partitioning) and full AdaPipe; zero
	// means OOM.
	Full, Layer, Unit, AdaPipe float64
	// NoRecompute is the no-recomputation time (zero when OOM).
	NoRecompute float64
	// Speedup is AdaPipe over full recomputation.
	Speedup float64
}

// SequenceSweep extends the paper's three sequence lengths into a trend
// study: GPT-3 at (8,8,1) on cluster A, sequence length 2048→32768 with the
// token budget per iteration held constant. It shows the crossover
// structure: at short sequences no-recomputation wins and adaptivity has
// little to add; as memory pressure grows, no-recomputation dies, full
// recomputation pays an ever-larger compute tax, and AdaPipe's margin
// widens.
func SequenceSweep() ([]SweepPoint, error) {
	cfg := model.GPT3_175B()
	cl := hardware.ClusterA()
	strat := parallel.Strategy{TP: 8, PP: 8, DP: 1}
	var out []SweepPoint
	for _, seq := range []int{2048, 4096, 8192, 16384, 32768} {
		gbs := 32 * 16384 / seq // constant tokens per iteration
		if gbs < strat.PP {
			gbs = strat.PP
		}
		train := parallel.Config{GlobalBatch: gbs, MicroBatch: 1, SeqLen: seq}
		pt := SweepPoint{SeqLen: seq}
		eval := func(rec core.RecomputeMode, part core.PartitionMode) float64 {
			m := baseline.Method{Name: "sweep", Recompute: rec, Partition: part, Schedule: baseline.Sched1F1B}
			o := baseline.Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
			if !o.Feasible() {
				return 0
			}
			return o.IterTime
		}
		pt.Full = eval(core.RecomputeFull, core.PartitionEven)
		pt.NoRecompute = eval(core.RecomputeNone, core.PartitionEven)
		pt.Layer = eval(core.RecomputeLayerLevel, core.PartitionEven)
		pt.Unit = eval(core.RecomputeAdaptive, core.PartitionEven)
		pt.AdaPipe = eval(core.RecomputeAdaptive, core.PartitionAdaptive)
		if pt.Full > 0 && pt.AdaPipe > 0 {
			pt.Speedup = pt.Full / pt.AdaPipe
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatSweep renders the sweep.
func FormatSweep(pts []SweepPoint) string {
	var b strings.Builder
	b.WriteString("Sequence sweep: GPT-3, (8,8,1), cluster A, constant tokens/iteration\n")
	fmt.Fprintf(&b, "  %-7s %10s %10s %10s %10s %10s %9s\n",
		"seq", "no-recomp", "full", "layer", "unit", "AdaPipe", "speedup")
	cell := func(v float64) string {
		if v == 0 {
			return "OOM"
		}
		return fmt.Sprintf("%.2fs", v)
	}
	for _, pt := range pts {
		fmt.Fprintf(&b, "  %-7d %10s %10s %10s %10s %10s %8.2fx\n",
			pt.SeqLen, cell(pt.NoRecompute), cell(pt.Full), cell(pt.Layer), cell(pt.Unit), cell(pt.AdaPipe), pt.Speedup)
	}
	return b.String()
}
