package experiments

import (
	"fmt"
	"strings"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// gpt3Fig1Strategy is Figure 1's configuration: DP, TP, PP = 1, 8, 8.
func gpt3Fig1Strategy() parallel.Strategy { return parallel.Strategy{TP: 8, PP: 8, DP: 1} }

// Figure1Series is one line of Figure 1: modeled per-stage memory of GPT-3
// under one (sequence length, recomputation) setting.
type Figure1Series struct {
	// SeqLen is the sequence length.
	SeqLen int
	// Recompute is "full" or "none".
	Recompute string
	// StageGiB is the per-stage modeled memory in GiB.
	StageGiB []float64
	// LimitGiB is the hardware limit (80 GiB on the A100).
	LimitGiB float64
}

// Figure1 simulates the per-stage memory consumption of GPT-3 training at
// sequence lengths 4096/8192/16384 under full and no recomputation, the
// motivating experiment of §1.
func Figure1() ([]Figure1Series, error) {
	cl := hardware.ClusterA()
	strat := gpt3Fig1Strategy()
	var out []Figure1Series
	for _, seq := range []int{4096, 8192, 16384} {
		train := parallel.Config{GlobalBatch: 64, MicroBatch: 1, SeqLen: seq}
		for _, rec := range []core.RecomputeMode{core.RecomputeFull, core.RecomputeNone} {
			opts := core.DefaultOptions()
			opts.Recompute = rec
			opts.Partition = core.PartitionEven
			opts.IgnoreMemoryLimit = true
			pl, err := core.NewPlanner(model.GPT3_175B(), cl, strat, train, opts)
			if err != nil {
				return nil, err
			}
			plan, err := pl.Plan()
			if err != nil {
				return nil, err
			}
			s := Figure1Series{SeqLen: seq, Recompute: rec.String(), LimitGiB: GiB(cl.Device.MemCapacity)}
			for _, st := range plan.Stages {
				s.StageGiB = append(s.StageGiB, GiB(st.Mem.Total()))
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// FormatFigure1 renders the series as a table of stages × settings.
func FormatFigure1(series []Figure1Series) string {
	var b strings.Builder
	b.WriteString("Figure 1: Simulated per-stage memory, GPT-3, (DP,TP,PP)=(1,8,8), limit 80 GiB\n")
	b.WriteString("stage ")
	for _, s := range series {
		fmt.Fprintf(&b, " %6s@%-5d", s.Recompute, s.SeqLen)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	for st := range series[0].StageGiB {
		fmt.Fprintf(&b, "%5d ", st)
		for _, s := range series {
			mark := " "
			if s.StageGiB[st] > s.LimitGiB {
				mark = "!"
			}
			fmt.Fprintf(&b, " %10.1f%s ", s.StageGiB[st], mark)
		}
		b.WriteString("\n")
	}
	b.WriteString("('!' marks stages above the 80 GiB device limit)\n")
	return b.String()
}

// fig8Config is the §7.4 profiling setup: GPT-3, sequence length 16384,
// parallelism (8, 8, 1).
func fig8Config() (model.Config, parallel.Strategy, parallel.Config) {
	return model.GPT3_175B(),
		parallel.Strategy{TP: 8, PP: 8, DP: 1},
		parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}
}

// Figure8Series is one line of Figure 8: simulated per-stage peak memory for
// one method (OOM methods report estimated peaks, as in the paper).
type Figure8Series struct {
	// Method is the figure label.
	Method string
	// StageGiB is the per-device simulated peak in GiB.
	StageGiB []float64
	// OOM marks methods whose peak exceeds the capacity.
	OOM bool
}

// Figure8 regenerates the per-stage peak memory comparison of §7.4.
func Figure8() ([]Figure8Series, error) {
	cfg, strat, train := fig8Config()
	cl := hardware.ClusterA()
	var out []Figure8Series
	for _, m := range baseline.Methods() {
		o := baseline.Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
		s := Figure8Series{Method: m.Name, OOM: o.OOM}
		if o.Err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", m.Name, o.Err)
		}
		if o.Plan == nil {
			// Adaptive method infeasible at this strategy: no estimate.
			out = append(out, s)
			continue
		}
		for _, peak := range o.Sim.PeakMem {
			s.StageGiB = append(s.StageGiB, GiB(peak))
		}
		out = append(out, s)
	}
	return out, nil
}

// FormatFigure8 renders the peak-memory series.
func FormatFigure8(series []Figure8Series) string {
	var b strings.Builder
	b.WriteString("Figure 8: Peak memory per stage, GPT-3, seq 16384, (t,p,d)=(8,8,1), capacity 80 GiB\n")
	for _, s := range series {
		if len(s.StageGiB) == 0 {
			fmt.Fprintf(&b, "  %-18s (no feasible plan)\n", s.Method)
			continue
		}
		fmt.Fprintf(&b, "  %-18s", s.Method)
		for _, g := range s.StageGiB {
			fmt.Fprintf(&b, " %6.1f", g)
		}
		if s.OOM {
			b.WriteString("  (exceeds capacity)")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure9Series is one line of Figure 9: per-stage micro-step time (forward
// plus backward of one micro-batch) for one method.
type Figure9Series struct {
	// Method is the figure label.
	Method string
	// MicroStep is the per-stage F+B time in seconds.
	MicroStep []float64
}

// Figure9 regenerates the per-stage computation-time comparison of §7.4 for
// the methods that fit in memory (the -Full variants plus Even Partitioning
// and AdaPipe).
func Figure9() ([]Figure9Series, error) {
	cfg, strat, train := fig8Config()
	cl := hardware.ClusterA()
	names := []string{"DAPPLE-Full", "Chimera-Full", "ChimeraD-Full", "Even Partitioning", "AdaPipe"}
	var out []Figure9Series
	for _, name := range names {
		m, err := baseline.MethodByName(name)
		if err != nil {
			return nil, err
		}
		o := baseline.Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
		if o.Err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, o.Err)
		}
		if o.Plan == nil {
			continue
		}
		out = append(out, Figure9Series{Method: name, MicroStep: o.Sim.MicroStep})
	}
	return out, nil
}

// FormatFigure9 renders the micro-step series.
func FormatFigure9(series []Figure9Series) string {
	var b strings.Builder
	b.WriteString("Figure 9: Micro-step (fwd+bwd) time per stage, GPT-3, seq 16384, (8,8,1)\n")
	for _, s := range series {
		fmt.Fprintf(&b, "  %-18s", s.Method)
		for _, t := range s.MicroStep {
			fmt.Fprintf(&b, " %6.3f", t)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table4Row describes one method's per-stage plan: saved computation units
// and assigned layers.
type Table4Row struct {
	// Method is "AdaPipe" or "Even Partitioning".
	Method string
	// SavedUnits is the per-stage count of saved computation units.
	SavedUnits []int
	// Layers is the per-stage layer count (embedding and head each count
	// as one extra layer, as in the paper).
	Layers []int
}

// Table4 regenerates the recomputation/partitioning configuration table of
// §7.4.
func Table4() ([]Table4Row, error) {
	cfg, strat, train := fig8Config()
	cl := hardware.ClusterA()
	var out []Table4Row
	for _, name := range []string{"AdaPipe", "Even Partitioning"} {
		m, err := baseline.MethodByName(name)
		if err != nil {
			return nil, err
		}
		o := baseline.Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
		if !o.Feasible() {
			return nil, fmt.Errorf("experiments: %s infeasible at %s: %v", name, strat, o.Err)
		}
		row := Table4Row{Method: name}
		for _, st := range o.Plan.Stages {
			row.SavedUnits = append(row.SavedUnits, st.Recompute.SavedUnits)
			row.Layers = append(row.Layers, st.Layers())
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable4 renders the configuration table.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: Recomputation and stage partitioning, GPT-3, seq 16384, (8,8,1)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s saved units:", r.Method)
		for _, v := range r.SavedUnits {
			fmt.Fprintf(&b, " %4d", v)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "  %-18s layers:     ", "")
		for _, v := range r.Layers {
			fmt.Fprintf(&b, " %4d", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table3Row is one strategy row of Table 3.
type Table3Row struct {
	// Strategy is the (t, p, d) triple.
	Strategy parallel.Strategy
	// IterTime maps method name to simulated iteration time; missing
	// entries are OOM.
	IterTime map[string]float64
}

// Table3Methods lists the columns of Table 3.
func Table3Methods() []string {
	return []string{"DAPPLE-Full", "DAPPLE-Non", "Even Partitioning", "AdaPipe"}
}

// Table3 regenerates the parallel-strategy sensitivity study: GPT-3 at
// sequence length 4096 on cluster A across seven (t, p, d) strategies.
func Table3() ([]Table3Row, error) {
	cfg := model.GPT3_175B()
	cl := hardware.ClusterA()
	train := parallel.Config{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096}
	strategies := []parallel.Strategy{
		{TP: 1, PP: 32, DP: 2}, {TP: 2, PP: 16, DP: 2}, {TP: 2, PP: 32, DP: 1},
		{TP: 4, PP: 8, DP: 2}, {TP: 4, PP: 16, DP: 1}, {TP: 8, PP: 4, DP: 2}, {TP: 8, PP: 8, DP: 1},
	}
	var out []Table3Row
	for _, strat := range strategies {
		row := Table3Row{Strategy: strat, IterTime: map[string]float64{}}
		for _, name := range Table3Methods() {
			m, err := baseline.MethodByName(name)
			if err != nil {
				return nil, err
			}
			o := baseline.Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
			if o.Feasible() {
				row.IterTime[name] = o.IterTime
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatTable3 renders the strategy table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: GPT-3 iteration time by parallel strategy (cluster A, seq 4096)\n")
	fmt.Fprintf(&b, "  %-12s", "(t, p, d)")
	for _, m := range Table3Methods() {
		fmt.Fprintf(&b, " %18s", m)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s", r.Strategy)
		for _, m := range Table3Methods() {
			if t, ok := r.IterTime[m]; ok {
				fmt.Fprintf(&b, " %17.2fs", t)
			} else {
				fmt.Fprintf(&b, " %18s", "OOM")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
