package experiments

import (
	"fmt"
	"strings"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
	"adapipe/internal/schedule"
	"adapipe/internal/sim"
	"adapipe/internal/trace"
)

// Figure2Result is one schedule of Figure 2: GPipe vs 1F1B with three stages
// and six micro-batches.
type Figure2Result struct {
	// Name is "GPipe" or "1F1B".
	Name string
	// IterTime is the simulated makespan (uniform F=1, B=2 units).
	IterTime float64
	// BubbleRatio is the idle fraction.
	BubbleRatio float64
	// PeakMicros is the per-stage maximum of simultaneously live
	// micro-batches.
	PeakMicros []int64
	// Gantt is the rendered timeline.
	Gantt string
}

// Figure2 regenerates the scheduling-mechanism comparison of §2.1: GPipe
// saves the intermediates of all n micro-batches while 1F1B caps stage s at
// p−s, with identical bubble counts.
func Figure2() ([]Figure2Result, error) {
	const p, n = 3, 6
	costs := make([]sim.StageCost, p)
	for i := range costs {
		costs[i] = sim.StageCost{Fwd: 1, Bwd: 2, SavedPerMicro: 1}
	}
	var out []Figure2Result
	for _, mk := range []func(int, int) (*schedule.Schedule, error){schedule.GPipe, schedule.OneFOneB} {
		s, err := mk(p, n)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(sim.Input{Sched: s, Stages: costs, CaptureTimeline: true})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure2Result{
			Name:        s.Name,
			IterTime:    r.IterTime,
			BubbleRatio: r.BubbleRatio(),
			PeakMicros:  r.PeakMem,
			Gantt:       trace.Gantt(r, p, 72),
		})
	}
	return out, nil
}

// FormatFigure2 renders both schedules.
func FormatFigure2(res []Figure2Result) string {
	var b strings.Builder
	b.WriteString("Figure 2: Scheduling mechanisms (3 stages, 6 micro-batches, F=1, B=2)\n")
	for _, r := range res {
		fmt.Fprintf(&b, "-- %s: makespan %.0f, bubble ratio %.3f, live micro-batches per stage %v --\n",
			r.Name, r.IterTime, r.BubbleRatio, r.PeakMicros)
		b.WriteString(r.Gantt)
	}
	return b.String()
}

// toyCluster builds a single-node cluster of small synthetic accelerators
// whose memory capacity is set by the caller, used by the overview and
// convergence experiments where the point is the mechanism, not the scale.
func toyCluster(devices int, capacity int64) hardware.Cluster {
	return hardware.Cluster{
		Name: "toy",
		Device: hardware.Device{
			Name:                "toy-accelerator",
			PeakFLOPS:           10 * hardware.TFLOPS,
			MemBandwidth:        500 * hardware.GBps,
			MemCapacity:         capacity,
			GEMMEfficiency:      0.5,
			AttnEfficiency:      0.4,
			BandwidthEfficiency: 0.8,
		},
		DevicesPerNode:     devices,
		Nodes:              1,
		IntraNodeBandwidth: 50 * hardware.GBps,
		InterNodeBandwidth: 10 * hardware.GBps,
		LinkLatency:        2e-6,
	}
}

// toyOptions returns planner options scaled for toy-size experiments: the
// datacenter-class framework overhead and conservative reserve would swamp a
// megabyte-scale model.
func toyOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Memory.OverheadBytes = 16 << 20
	opts.MemoryReserve = 0.05
	opts.Quantum = 4096 // toy activations are kilobytes, not megabytes
	return opts
}

// toyCapacity picks a device capacity that makes adaptive recomputation
// interesting: large enough that maximum recomputation fits everywhere,
// small enough that saving everything does not. frac is the fraction of the
// no-recomputation activation footprint that fits.
func toyCapacity(cfg model.Config, strat parallel.Strategy, train parallel.Config, frac float64) (int64, error) {
	opts := toyOptions()
	opts.Recompute = core.RecomputeNone
	opts.Partition = core.PartitionEven
	opts.IgnoreMemoryLimit = true
	probe, err := core.NewPlanner(cfg, toyCluster(strat.Devices(), 1<<40), strat, train, opts)
	if err != nil {
		return 0, err
	}
	plan, err := probe.Plan()
	if err != nil {
		return 0, err
	}
	var capacity int64
	for _, st := range plan.Stages {
		c := st.Mem.Static() + int64(frac*float64(st.Mem.Activations()))
		if c > capacity {
			capacity = c
		}
	}
	// The adaptive search only sees capacity·(1−reserve); inflate so the
	// intended activation headroom survives the reserve.
	capacity = int64(float64(capacity) / (1 - toyOptions().MemoryReserve) * 1.02)
	return capacity, nil
}

// Figure3Step is one configuration of the Figure 3 overview: original full
// recomputation, + adaptive recomputation, + adaptive partitioning.
type Figure3Step struct {
	// Name describes the configuration.
	Name string
	// IterTime is the simulated iteration time in seconds.
	IterTime float64
	// SavedUnits and Layers describe each stage's plan.
	SavedUnits []int
	// Layers is the per-stage layer count.
	Layers []int
	// Gantt is the rendered timeline.
	Gantt string
}

// Figure3 reproduces the overview walk-through of §3 on a toy transformer:
// adaptive recomputation shortens the warmup and ending phases, then
// adaptive partitioning rebalances the steady phase. The paper draws the
// minimal two-stage case; at layer granularity a two-stage toy is already
// optimally balanced, so this reproduction uses four stages, where the
// in-flight imbalance is strong enough that the partitioner moves layers.
func Figure3() ([]Figure3Step, error) {
	cfg := model.Tiny(20)
	strat := parallel.Strategy{TP: 1, PP: 4, DP: 1}
	train := parallel.Config{GlobalBatch: 12, MicroBatch: 1, SeqLen: 1024}
	capacity, err := toyCapacity(cfg, strat, train, 0.5)
	if err != nil {
		return nil, err
	}
	cl := toyCluster(4, capacity)
	steps := []struct {
		name string
		m    baseline.Method
	}{
		{"Original: full recomputation, even partitioning",
			baseline.Method{Name: "full", Recompute: core.RecomputeFull, Partition: core.PartitionEven, Schedule: baseline.Sched1F1B}},
		{"Opt. 1: adaptive recomputation",
			baseline.Method{Name: "even", Recompute: core.RecomputeAdaptive, Partition: core.PartitionEven, Schedule: baseline.Sched1F1B}},
		{"Opt. 2: + adaptive partitioning",
			baseline.Method{Name: "adapipe", Recompute: core.RecomputeAdaptive, Partition: core.PartitionAdaptive, Schedule: baseline.Sched1F1B}},
	}
	var out []Figure3Step
	for _, s := range steps {
		opts := toyOptions()
		opts.Recompute = s.m.Recompute
		opts.Partition = s.m.Partition
		planner, err := core.NewPlanner(cfg, cl, strat, train, opts)
		if err != nil {
			return nil, err
		}
		plan, err := planner.Plan()
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 3 %q: %w", s.name, err)
		}
		sched, err := schedule.OneFOneB(strat.PP, plan.MicroBatches)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Input{Sched: sched, Stages: baseline.StageCosts(plan), CaptureTimeline: true})
		if err != nil {
			return nil, err
		}
		step := Figure3Step{Name: s.name, IterTime: res.IterTime, Gantt: trace.Gantt(res, strat.PP, 72)}
		for _, st := range plan.Stages {
			step.SavedUnits = append(step.SavedUnits, st.Recompute.SavedUnits)
			step.Layers = append(step.Layers, st.Layers())
		}
		out = append(out, step)
	}
	return out, nil
}

// FormatFigure3 renders the overview steps.
func FormatFigure3(steps []Figure3Step) string {
	var b strings.Builder
	b.WriteString("Figure 3: AdaPipe overview on a four-stage toy transformer\n")
	for _, s := range steps {
		fmt.Fprintf(&b, "-- %s --\n", s.Name)
		fmt.Fprintf(&b, "   iteration %.4fs, saved units %v, layers %v\n", s.IterTime, s.SavedUnits, s.Layers)
		b.WriteString(s.Gantt)
	}
	return b.String()
}
