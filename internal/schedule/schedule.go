// Package schedule builds pipeline-parallel execution schedules: the order in
// which each device runs forward and backward passes of micro-batches. It
// covers the mechanisms compared in the paper — GPipe, the 1F1B schedule of
// PipeDream/DAPPLE (§2.1), Megatron's interleaved 1F1B, and Chimera's
// bidirectional pipelines with and without forward doubling (§7.1).
//
// A schedule is declarative: per-device op sequences plus dependency rules.
// The sim package executes them against per-stage costs.
package schedule

import (
	"fmt"
	"sort"
)

// Kind distinguishes forward from backward passes.
type Kind int

const (
	// Forward is a forward pass.
	Forward Kind = iota
	// Backward is a backward pass (gradient computation, possibly
	// including recomputation time).
	Backward
)

// String returns "F" or "B".
func (k Kind) String() string {
	if k == Forward {
		return "F"
	}
	return "B"
}

// Op is one forward or backward pass of one or more micro-batches at one
// stage. Multi-micro forward ops appear only under Chimera forward doubling.
type Op struct {
	// Kind is Forward or Backward.
	Kind Kind
	// Micros lists the micro-batch ids the op processes (usually one).
	Micros []int
	// Stage is the logical stage inside the op's pipeline (0 = first).
	Stage int
	// Pipeline is 0 for the down pipeline and 1 for Chimera's up pipeline.
	Pipeline int
}

// String formats the op compactly, e.g. "F3@2" or "B1@0↑".
func (o Op) String() string {
	dir := ""
	if o.Pipeline == 1 {
		dir = "^"
	}
	return fmt.Sprintf("%s%v@%d%s", o.Kind, o.Micros, o.Stage, dir)
}

// Schedule is a complete per-device execution order.
type Schedule struct {
	// Name identifies the mechanism ("1F1B", "GPipe", "Chimera", ...).
	Name string
	// Stages is the pipeline depth p.
	Stages int
	// Micros is the micro-batch count n.
	Micros int
	// Ops holds each device's op sequence. Device d executes Ops[d] in
	// order when InOrder is true; otherwise the order is a priority hint
	// and the simulator greedily runs the first ready op.
	Ops [][]Op
	// InOrder selects strict in-order execution per device.
	InOrder bool
	// Bidirectional marks Chimera-style schedules where device d hosts
	// down-pipeline stage d and up-pipeline stage p−1−d, with model
	// parameters replicated across the two pipelines.
	Bidirectional bool
}

// Devices returns the device count (one per physical stage; interleaved
// schedules host several virtual stages per device).
func (s *Schedule) Devices() int { return len(s.Ops) }

// DeviceForStage returns the device hosting the given logical stage of a
// pipeline: stage s of the down pipeline lives on device s (mod device count
// for interleaved schedules) and stage s of Chimera's up pipeline on device
// p−1−s.
func (s *Schedule) DeviceForStage(stage, pipeline int) int {
	p := s.Devices()
	if s.Bidirectional && pipeline == 1 {
		return p - 1 - stage
	}
	return stage % p
}

// OneFOneB builds the 1F1B (DAPPLE) schedule: stage s runs p−s−1 warmup
// forward passes, alternates one-forward-one-backward through the steady
// phase, and drains backward passes in the ending phase (§2.1, Figure 2b).
func OneFOneB(p, n int) (*Schedule, error) {
	if err := checkPN(p, n); err != nil {
		return nil, err
	}
	s := &Schedule{Name: "1F1B", Stages: p, Micros: n, Ops: make([][]Op, p), InOrder: true}
	for st := 0; st < p; st++ {
		warmup := p - st - 1
		if warmup > n {
			warmup = n
		}
		var ops []Op
		for m := 0; m < warmup; m++ {
			ops = append(ops, Op{Kind: Forward, Micros: []int{m}, Stage: st})
		}
		for k := 0; k < n; k++ {
			if warmup+k < n {
				ops = append(ops, Op{Kind: Forward, Micros: []int{warmup + k}, Stage: st})
			}
			ops = append(ops, Op{Kind: Backward, Micros: []int{k}, Stage: st})
		}
		s.Ops[st] = ops
	}
	return s, nil
}

// GPipe builds the GPipe schedule: all forward passes, then all backward
// passes in reverse micro-batch order (Figure 2a).
func GPipe(p, n int) (*Schedule, error) {
	if err := checkPN(p, n); err != nil {
		return nil, err
	}
	s := &Schedule{Name: "GPipe", Stages: p, Micros: n, Ops: make([][]Op, p), InOrder: true}
	for st := 0; st < p; st++ {
		var ops []Op
		for m := 0; m < n; m++ {
			ops = append(ops, Op{Kind: Forward, Micros: []int{m}, Stage: st})
		}
		for m := n - 1; m >= 0; m-- {
			ops = append(ops, Op{Kind: Backward, Micros: []int{m}, Stage: st})
		}
		s.Ops[st] = ops
	}
	return s, nil
}

// Chimera builds a bidirectional-pipeline schedule (Li & Hoefler, SC'21):
// micro-batches alternate between a down pipeline (stage s on device s) and
// an up pipeline (stage s on device p−1−s), in scheduling units of p
// micro-batches. Per-device orders come from a slot-based priority
// construction; concatenating units reproduces the inter-unit bubbles the
// paper observes when n exceeds p (§7.2), because backward passes outlast
// forward passes.
func Chimera(p, n int) (*Schedule, error) {
	if err := checkPN(p, n); err != nil {
		return nil, err
	}
	if p%2 != 0 {
		return nil, fmt.Errorf("schedule: Chimera needs an even stage count, got %d", p)
	}
	if n%p != 0 {
		return nil, fmt.Errorf("schedule: Chimera needs micro-batches (%d) divisible by stages (%d)", n, p)
	}
	s := &Schedule{Name: "Chimera", Stages: p, Micros: n, Ops: make([][]Op, p), Bidirectional: true, InOrder: true}
	for d := 0; d < p; d++ {
		var ops []keyedOp
		for unit := 0; unit < n/p; unit++ {
			base := unit * p
			off := float64(unit) * 4 * float64(p)
			for k := 0; k < p/2; k++ {
				down := base + k
				up := base + p/2 + k
				ops = append(ops,
					keyedOp{Op{Kind: Forward, Micros: []int{down}, Stage: d, Pipeline: 0}, off + float64(d+k)},
					keyedOp{Op{Kind: Forward, Micros: []int{up}, Stage: p - 1 - d, Pipeline: 1}, off + float64(p-1-d+k) + 0.5},
					keyedOp{Op{Kind: Backward, Micros: []int{down}, Stage: d, Pipeline: 0}, off + float64(2*p) + float64(2*k) + float64(p-1-d)},
					keyedOp{Op{Kind: Backward, Micros: []int{up}, Stage: p - 1 - d, Pipeline: 1}, off + float64(2*p) + float64(2*k) + float64(d) + 0.5},
				)
			}
		}
		s.Ops[d] = sortKeyed(ops)
	}
	return s, nil
}

// keyedOp pairs an op with its slot priority during construction. Keys are
// topologically consistent (every dependency has a strictly smaller key), so
// per-device in-order execution of key-sorted lists cannot deadlock.
type keyedOp struct {
	op  Op
	key float64
}

func sortKeyed(ops []keyedOp) []Op {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].key < ops[j].key })
	out := make([]Op, len(ops))
	for i, k := range ops {
		out[i] = k.op
	}
	return out
}

// ChimeraD builds Chimera with forward doubling (§7.1): every forward pass
// processes two micro-batches at once (doubling activation memory), while
// backward passes remain per-micro-batch, equalizing forward and backward
// slot lengths when recomputation is off.
func ChimeraD(p, n int) (*Schedule, error) {
	if err := checkPN(p, n); err != nil {
		return nil, err
	}
	if p%2 != 0 {
		return nil, fmt.Errorf("schedule: ChimeraD needs an even stage count, got %d", p)
	}
	if n%(2*p) != 0 {
		return nil, fmt.Errorf("schedule: ChimeraD needs micro-batches (%d) divisible by 2x stages (%d)", n, 2*p)
	}
	s := &Schedule{Name: "ChimeraD", Stages: p, Micros: n, Ops: make([][]Op, p), Bidirectional: true, InOrder: true}
	// Micro pairs (2i, 2i+1) flow forward together; pair i goes down the
	// down pipeline when (i mod p) < p/2, up otherwise.
	pairs := n / 2
	for d := 0; d < p; d++ {
		var ops []keyedOp
		for unit := 0; unit < pairs/p; unit++ {
			base := unit * p
			off := float64(unit) * 4 * float64(p)
			for k := 0; k < p/2; k++ {
				down := base + k
				up := base + p/2 + k
				ops = append(ops,
					keyedOp{Op{Kind: Forward, Micros: []int{2 * down, 2*down + 1}, Stage: d, Pipeline: 0}, off + float64(d+k)},
					keyedOp{Op{Kind: Forward, Micros: []int{2 * up, 2*up + 1}, Stage: p - 1 - d, Pipeline: 1}, off + float64(p-1-d+k) + 0.5},
					keyedOp{Op{Kind: Backward, Micros: []int{2 * down}, Stage: d, Pipeline: 0}, off + float64(2*p) + float64(2*k) + float64(p-1-d)},
					keyedOp{Op{Kind: Backward, Micros: []int{2*down + 1}, Stage: d, Pipeline: 0}, off + float64(2*p) + float64(2*k) + float64(p-1-d) + 0.25},
					keyedOp{Op{Kind: Backward, Micros: []int{2 * up}, Stage: p - 1 - d, Pipeline: 1}, off + float64(2*p) + float64(2*k) + float64(d) + 0.5},
					keyedOp{Op{Kind: Backward, Micros: []int{2*up + 1}, Stage: p - 1 - d, Pipeline: 1}, off + float64(2*p) + float64(2*k) + float64(d) + 0.75},
				)
			}
		}
		s.Ops[d] = sortKeyed(ops)
	}
	return s, nil
}

// Interleaved builds Megatron-LM's interleaved 1F1B schedule with v virtual
// chunks per device: device d hosts stages d, d+p, …, d+(v−1)p of a vp-stage
// virtual pipeline. Provided as the paper's related mechanism (§2.1); the
// simulator executes it greedily.
func Interleaved(p, n, v int) (*Schedule, error) {
	if err := checkPN(p, n); err != nil {
		return nil, err
	}
	if v < 1 {
		return nil, fmt.Errorf("schedule: interleaving factor must be >= 1, got %d", v)
	}
	if v == 1 {
		return OneFOneB(p, n)
	}
	if n%p != 0 {
		return nil, fmt.Errorf("schedule: interleaved 1F1B needs micro-batches (%d) divisible by stages (%d)", n, p)
	}
	s := &Schedule{Name: fmt.Sprintf("Interleaved-%d", v), Stages: p * v, Micros: n, Ops: make([][]Op, p)}
	for d := 0; d < p; d++ {
		var ops []Op
		// Forward priority: chunk-major groups of p micro-batches.
		for g := 0; g < n/p; g++ {
			for c := 0; c < v; c++ {
				for k := 0; k < p; k++ {
					m := g*p + k
					ops = append(ops, Op{Kind: Forward, Micros: []int{m}, Stage: c*p + d})
				}
			}
		}
		for g := n/p - 1; g >= 0; g-- {
			for c := v - 1; c >= 0; c-- {
				for k := 0; k < p; k++ {
					m := g*p + k
					ops = append(ops, Op{Kind: Backward, Micros: []int{m}, Stage: c*p + d})
				}
			}
		}
		s.Ops[d] = ops
	}
	return s, nil
}

// Validate checks structural invariants: every micro-batch appears exactly
// once as forward and once as backward per stage it crosses, and in-order
// schedules respect per-micro forward-before-backward on each device.
func (s *Schedule) Validate() error {
	type key struct {
		kind         Kind
		micro, stage int
		pipeline     int
	}
	seen := map[key]int{}
	for d := range s.Ops {
		for _, op := range s.Ops[d] {
			for _, m := range op.Micros {
				seen[key{op.Kind, m, op.Stage, op.Pipeline}]++
			}
		}
	}
	// Check in sorted key order so that, with several violations, the same
	// one is reported on every run (map iteration order is randomized).
	keys := make([]key, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pipeline != b.pipeline {
			return a.pipeline < b.pipeline
		}
		if a.stage != b.stage {
			return a.stage < b.stage
		}
		if a.micro != b.micro {
			return a.micro < b.micro
		}
		return a.kind < b.kind
	})
	for _, k := range keys {
		c := seen[k]
		if c != 1 {
			return fmt.Errorf("schedule %s: %s of micro %d at stage %d (pipeline %d) appears %d times",
				s.Name, k.kind, k.micro, k.stage, k.pipeline, c)
		}
		if k.kind == Forward {
			if seen[key{Backward, k.micro, k.stage, k.pipeline}] != 1 {
				return fmt.Errorf("schedule %s: forward of micro %d at stage %d has no backward", s.Name, k.micro, k.stage)
			}
		}
	}
	return nil
}

func checkPN(p, n int) error {
	if p < 1 {
		return fmt.Errorf("schedule: need at least one stage, got %d", p)
	}
	if n < 1 {
		return fmt.Errorf("schedule: need at least one micro-batch, got %d", n)
	}
	return nil
}
