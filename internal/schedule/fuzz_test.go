package schedule

import "testing"

// FuzzBuilders checks that every schedule builder either rejects its inputs
// or produces a structurally valid schedule, for arbitrary (p, n).
func FuzzBuilders(f *testing.F) {
	f.Add(uint8(4), uint8(16))
	f.Add(uint8(1), uint8(1))
	f.Add(uint8(8), uint8(64))
	f.Fuzz(func(t *testing.T, pp, nn uint8) {
		p := int(pp%12) + 1
		n := int(nn%48) + 1
		for _, mk := range []struct {
			name string
			fn   func(int, int) (*Schedule, error)
		}{
			{"1F1B", OneFOneB},
			{"GPipe", GPipe},
			{"Chimera", Chimera},
			{"ChimeraD", ChimeraD},
		} {
			s, err := mk.fn(p, n)
			if err != nil {
				continue // constraint rejection is fine
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s(%d,%d): %v", mk.name, p, n, err)
			}
			if s.Devices() != p {
				t.Fatalf("%s(%d,%d): %d devices", mk.name, p, n, s.Devices())
			}
		}
	})
}
