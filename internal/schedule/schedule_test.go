package schedule

import (
	"testing"
	"testing/quick"
)

func TestBuildersValidate(t *testing.T) {
	for p := 2; p <= 8; p += 2 {
		for _, n := range []int{2 * p, 4 * p} {
			for _, mk := range []struct {
				name string
				f    func(int, int) (*Schedule, error)
			}{
				{"1F1B", OneFOneB}, {"GPipe", GPipe}, {"Chimera", Chimera}, {"ChimeraD", ChimeraD},
			} {
				s, err := mk.f(p, n)
				if err != nil {
					t.Fatalf("%s(%d,%d): %v", mk.name, p, n, err)
				}
				if err := s.Validate(); err != nil {
					t.Errorf("%s(%d,%d): %v", mk.name, p, n, err)
				}
				if s.Devices() != p {
					t.Errorf("%s(%d,%d): %d devices", mk.name, p, n, s.Devices())
				}
			}
		}
	}
}

func TestOneFOneBOpCounts(t *testing.T) {
	const p, n = 4, 10
	s, err := OneFOneB(p, n)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < p; d++ {
		if got := len(s.Ops[d]); got != 2*n {
			t.Errorf("device %d has %d ops, want %d", d, got, 2*n)
		}
	}
}

func TestOneFOneBWarmupCounts(t *testing.T) {
	const p, n = 4, 10
	s, _ := OneFOneB(p, n)
	for d := 0; d < p; d++ {
		// Count forwards before the first backward: must be p−d (§2.1
		// says stage s holds p−s micro-batches; the (p−d−1) warmup
		// forwards plus the steady phase's leading forward).
		count := 0
		for _, op := range s.Ops[d] {
			if op.Kind == Backward {
				break
			}
			count++
		}
		if count != p-d {
			t.Errorf("stage %d runs %d forwards before its first backward, want %d", d, count, p-d)
		}
	}
}

// maxInFlight returns, per device, the maximum number of micro-batches with
// a completed forward whose backward has not yet run, per the op order.
func maxInFlight(ops []Op) int {
	live, peak := 0, 0
	for _, op := range ops {
		if op.Kind == Forward {
			live += len(op.Micros)
			if live > peak {
				peak = live
			}
		} else {
			live -= len(op.Micros)
		}
	}
	return peak
}

func TestOneFOneBInFlightBound(t *testing.T) {
	const p, n = 6, 18
	s, _ := OneFOneB(p, n)
	for d := 0; d < p; d++ {
		if got := maxInFlight(s.Ops[d]); got != p-d {
			t.Errorf("stage %d in-flight = %d, want %d", d, got, p-d)
		}
	}
}

func TestGPipeInFlightIsN(t *testing.T) {
	const p, n = 4, 12
	s, _ := GPipe(p, n)
	for d := 0; d < p; d++ {
		if got := maxInFlight(s.Ops[d]); got != n {
			t.Errorf("stage %d in-flight = %d, want %d (GPipe holds everything)", d, got, n)
		}
	}
}

func TestGPipeBackwardReversed(t *testing.T) {
	s, _ := GPipe(3, 5)
	ops := s.Ops[0]
	lastF := -1
	for i, op := range ops {
		if op.Kind == Forward {
			lastF = i
		}
	}
	prev := 1 << 30
	for _, op := range ops[lastF+1:] {
		if op.Micros[0] >= prev {
			t.Fatal("GPipe backwards not in reverse micro order")
		}
		prev = op.Micros[0]
	}
}

func TestChimeraSplitsPipelines(t *testing.T) {
	const p, n = 4, 8
	s, err := Chimera(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Bidirectional {
		t.Error("Chimera not marked bidirectional")
	}
	// Each device hosts exactly two logical stages: d (down) and p−1−d (up).
	for d := 0; d < p; d++ {
		stages := map[[2]int]bool{}
		for _, op := range s.Ops[d] {
			stages[[2]int{op.Pipeline, op.Stage}] = true
		}
		if len(stages) != 2 {
			t.Errorf("device %d hosts %d (pipeline,stage) pairs, want 2", d, len(stages))
		}
		if !stages[[2]int{0, d}] || !stages[[2]int{1, p - 1 - d}] {
			t.Errorf("device %d hosts %v", d, stages)
		}
	}
}

func TestChimeraKeysRespectDependencies(t *testing.T) {
	// Per-device in-order execution requires every op's dependency to be
	// scheduled earlier in a globally consistent priority. Verify the
	// cross-device invariant directly: a forward at stage s appears in its
	// device list before the forward of the same micro at stage s+1
	// appears in *its* device list position-wise is not meaningful, but
	// per-device ordering of same-micro ops must respect F-before-B.
	s, _ := Chimera(4, 8)
	for d := range s.Ops {
		seenB := map[[3]int]bool{}
		for _, op := range s.Ops[d] {
			for _, m := range op.Micros {
				key := [3]int{op.Pipeline, op.Stage, m}
				if op.Kind == Forward && seenB[key] {
					t.Fatalf("device %d: forward after backward for %v", d, key)
				}
				if op.Kind == Backward {
					seenB[key] = true
				}
			}
		}
	}
}

func TestChimeraDDoublesForwards(t *testing.T) {
	const p, n = 4, 16
	s, err := ChimeraD(p, n)
	if err != nil {
		t.Fatal(err)
	}
	for d := range s.Ops {
		var fwd, bwd int
		for _, op := range s.Ops[d] {
			switch op.Kind {
			case Forward:
				if len(op.Micros) != 2 {
					t.Fatalf("forward op carries %d micros, want 2", len(op.Micros))
				}
				if op.Micros[1] != op.Micros[0]+1 {
					t.Fatalf("forward pair %v not adjacent", op.Micros)
				}
				fwd++
			case Backward:
				if len(op.Micros) != 1 {
					t.Fatalf("backward op carries %d micros, want 1", len(op.Micros))
				}
				bwd++
			}
		}
		if fwd != n/2 || bwd != n {
			t.Errorf("device %d: %d doubled forwards and %d backwards, want %d and %d", d, fwd, bwd, n/2, n)
		}
	}
}

func TestChimeraConstraints(t *testing.T) {
	if _, err := Chimera(3, 6); err == nil {
		t.Error("odd stage count accepted")
	}
	if _, err := Chimera(4, 6); err == nil {
		t.Error("non-divisible micro count accepted")
	}
	if _, err := ChimeraD(4, 12); err == nil {
		t.Error("ChimeraD with n not divisible by 2p accepted")
	}
}

func TestInterleaved(t *testing.T) {
	s, err := Interleaved(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stages != 4 {
		t.Errorf("interleaved logical stages = %d, want 4", s.Stages)
	}
	if s.Devices() != 2 {
		t.Errorf("interleaved devices = %d, want 2", s.Devices())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	// v=1 degenerates to plain 1F1B.
	s1, err := Interleaved(3, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Name != "1F1B" {
		t.Errorf("v=1 name = %q", s1.Name)
	}
	if _, err := Interleaved(2, 5, 2); err == nil {
		t.Error("non-divisible interleaved accepted")
	}
	if _, err := Interleaved(2, 4, 0); err == nil {
		t.Error("zero chunks accepted")
	}
}

func TestDeviceForStage(t *testing.T) {
	s, _ := Chimera(4, 4)
	if got := s.DeviceForStage(1, 0); got != 1 {
		t.Errorf("down stage 1 on device %d", got)
	}
	if got := s.DeviceForStage(1, 1); got != 2 {
		t.Errorf("up stage 1 on device %d, want 2", got)
	}
	i, _ := Interleaved(2, 4, 2)
	if got := i.DeviceForStage(3, 0); got != 1 {
		t.Errorf("interleaved stage 3 on device %d, want 1", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s, _ := OneFOneB(2, 2)
	s.Ops[0] = append(s.Ops[0], Op{Kind: Forward, Micros: []int{0}, Stage: 0})
	if err := s.Validate(); err == nil {
		t.Error("duplicate forward not caught")
	}
	s2, _ := OneFOneB(2, 2)
	// Remove a backward.
	ops := s2.Ops[1]
	for i, op := range ops {
		if op.Kind == Backward {
			s2.Ops[1] = append(ops[:i], ops[i+1:]...)
			break
		}
	}
	if err := s2.Validate(); err == nil {
		t.Error("missing backward not caught")
	}
}

func TestBadArgs(t *testing.T) {
	for _, mk := range []func(int, int) (*Schedule, error){OneFOneB, GPipe} {
		if _, err := mk(0, 4); err == nil {
			t.Error("zero stages accepted")
		}
		if _, err := mk(4, 0); err == nil {
			t.Error("zero micros accepted")
		}
	}
}

func TestOneFOneBProperty(t *testing.T) {
	f := func(pp, nn uint8) bool {
		p := int(pp%8) + 1
		n := p + int(nn%12)
		s, err := OneFOneB(p, n)
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		for d := 0; d < p; d++ {
			if maxInFlight(s.Ops[d]) != min(p-d, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	op := Op{Kind: Forward, Micros: []int{3}, Stage: 2}
	if got := op.String(); got != "F[3]@2" {
		t.Errorf("String = %q", got)
	}
	up := Op{Kind: Backward, Micros: []int{1}, Stage: 0, Pipeline: 1}
	if got := up.String(); got != "B[1]@0^" {
		t.Errorf("String = %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
