package partition

import (
	"math"
	"reflect"
	"testing"
)

// fuzzCost derives a deterministic cost function from a seed: per-(s,i,j)
// forward/backward times from a small integer hash, with a tunable fraction of
// infeasible cells so the solvers' feasibility handling is exercised. Pure and
// stateless, so it is safe for the concurrent workers path.
func fuzzCost(seed uint32, infeasibleMod int) CostFn {
	return func(s, i, j int) (float64, float64, bool) {
		h := seed
		for _, v := range [...]int{s, i, j} {
			h = (h ^ uint32(v)*0x9e3779b9) * 0x85ebca6b
			h ^= h >> 13
		}
		if infeasibleMod > 0 && int(h%16) < infeasibleMod {
			return 0, 0, false
		}
		f := 1 + float64(h%97)/10
		b := 1 + float64((h>>8)%89)/10
		// Longer ranges cost more, keeping the instances non-degenerate.
		span := float64(j - i + 1)
		return f * span, b * span, true
	}
}

// FuzzPartitionSolveVsBruteForce feeds arbitrary small instances to Algorithm
// 1, its exact Pareto variant and the exponential oracle:
//   - Solve never beats BruteForce (it is a heuristic over the same model);
//   - SolveExact with an unlimited frontier matches BruteForce exactly;
//   - all three agree on feasibility;
//   - the workers=4 variants are bit-identical to their serial counterparts.
func FuzzPartitionSolveVsBruteForce(f *testing.F) {
	f.Add(uint32(1), uint8(6), uint8(3), uint8(8), uint8(0))
	f.Add(uint32(42), uint8(7), uint8(7), uint8(7), uint8(4))
	f.Add(uint32(7), uint8(5), uint8(2), uint8(12), uint8(8))
	f.Add(uint32(99), uint8(1), uint8(1), uint8(1), uint8(15))
	f.Fuzz(func(t *testing.T, seed uint32, l8, p8, n8, inf8 uint8) {
		L := int(l8%7) + 1
		p := int(p8%uint8(L)) + 1
		n := p + int(n8%8)
		cost := fuzzCost(seed, int(inf8%12))

		heur, heurErr := Solve(L, p, n, cost)
		exact, isExact, exactErr := SolveExact(L, p, n, cost, 0)
		brute, bruteErr := BruteForce(L, p, n, cost)

		if (heurErr == nil) != (bruteErr == nil) {
			t.Fatalf("feasibility disagreement: Solve err=%v, BruteForce err=%v", heurErr, bruteErr)
		}
		if (exactErr == nil) != (bruteErr == nil) {
			t.Fatalf("feasibility disagreement: SolveExact err=%v, BruteForce err=%v", exactErr, bruteErr)
		}
		if bruteErr == nil {
			if !isExact {
				t.Fatal("unlimited frontier reported inexact")
			}
			const tol = 1e-9
			if heur.Total < brute.Total-tol {
				t.Fatalf("Solve %.12g beats the oracle %.12g", heur.Total, brute.Total)
			}
			if math.Abs(exact.Total-brute.Total) > tol*(1+brute.Total) {
				t.Fatalf("SolveExact %.12g != oracle %.12g", exact.Total, brute.Total)
			}
			// The exact solver can only improve on the heuristic.
			if exact.Total > heur.Total+tol {
				t.Fatalf("SolveExact %.12g worse than Solve %.12g", exact.Total, heur.Total)
			}
		}

		// Worker sharding must be invisible: bit-identical plans and errors.
		heurW, heurWErr := SolveWorkers(L, p, n, cost, 4)
		if (heurWErr == nil) != (heurErr == nil) {
			t.Fatalf("SolveWorkers error mismatch: %v vs %v", heurWErr, heurErr)
		}
		if heurErr == nil && !reflect.DeepEqual(heur, heurW) {
			t.Fatalf("SolveWorkers(4) differs from Solve:\n%+v\nvs\n%+v", heurW, heur)
		}
		exactW, isExactW, exactWErr := SolveExactWorkers(L, p, n, cost, 0, 4)
		if (exactWErr == nil) != (exactErr == nil) || isExactW != isExact {
			t.Fatalf("SolveExactWorkers mismatch: err %v vs %v, exact %v vs %v",
				exactWErr, exactErr, isExactW, isExact)
		}
		if exactErr == nil && !reflect.DeepEqual(exact, exactW) {
			t.Fatalf("SolveExactWorkers(4) differs from SolveExact:\n%+v\nvs\n%+v", exactW, exact)
		}

		// Dominance-pruning property: with the dominance filter disabled the
		// per-cell frontiers are supersets of the pruned ones, and the
		// optimum must not move by a single bit — the parent recurrences are
		// monotone in every state component, so a dominated state can never
		// derive a smaller total than its dominator's chain, in IEEE float
		// arithmetic as well as in the reals.
		oracle, _, oracleErr := solveExactMemo(L, p, n, cost, 0, nil, p-1, 1, true)
		if (oracleErr == nil) != (exactErr == nil) {
			t.Fatalf("feasibility disagreement: unpruned oracle err=%v, SolveExact err=%v", oracleErr, exactErr)
		}
		if exactErr == nil {
			if math.Float64bits(oracle.Total) != math.Float64bits(exact.Total) {
				t.Fatalf("dominance pruning moved the optimum: pruned %.17g, unpruned oracle %.17g",
					exact.Total, oracle.Total)
			}
			if oracle.FrontierStates < exact.FrontierStates {
				t.Fatalf("unpruned oracle kept %d states, fewer than the pruned run's %d",
					oracle.FrontierStates, exact.FrontierStates)
			}
		}
	})
}

// stripEffort zeroes a plan's search-effort counters so differential checks
// compare the solution itself: a warm-started solve legitimately recomputes
// fewer cells than a cold one.
func stripEffort(p Plan) Plan {
	p.DPCells = 0
	p.WarmCells = 0
	return p
}

// stageScaled wraps a cost function with a per-stage multiplier, the exact
// shape of the planner's straggler repricing.
func stageScaled(base CostFn, sc []float64) CostFn {
	return func(s, i, j int) (float64, float64, bool) {
		f, b, ok := base(s, i, j)
		return f * sc[s], b * sc[s], ok
	}
}

// FuzzPartitionMemoVsCold is the partition-level differential harness for
// warm-started solving: a memo built under one per-stage scale vector and
// re-solved under another (recomputing only the levels at or below the
// highest changed stage) must be bit-identical to a cold solve under the new
// vector — for the Algorithm 1 solver and the exact Pareto variant, serial
// and sharded, including a trimming frontier cap.
func FuzzPartitionMemoVsCold(f *testing.F) {
	f.Add(uint32(1), uint8(6), uint8(3), uint8(8), uint8(0), uint8(1), uint8(0))
	f.Add(uint32(42), uint8(7), uint8(7), uint8(7), uint8(4), uint8(3), uint8(1))
	f.Add(uint32(7), uint8(5), uint8(2), uint8(12), uint8(8), uint8(0), uint8(2))
	f.Add(uint32(99), uint8(8), uint8(4), uint8(6), uint8(2), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint32, l8, p8, n8, inf8, st8, kind8 uint8) {
		L := int(l8%7) + 1
		p := int(p8%uint8(L)) + 1
		n := p + int(n8%8)
		base := fuzzCost(seed, int(inf8%12))

		// First solve under all-ones scale, then reprice one of four ways:
		// identity (stale = −1), a single mid-stage bump, every stage, or an
		// extreme 10x straggler.
		scale := make([]float64, p)
		for s := range scale {
			scale[s] = 1
		}
		st := int(st8) % p
		stale := st
		switch kind8 % 4 {
		case 0: // identity: nothing to recompute
			stale = -1
		case 1:
			scale[st] = 1.25
		case 2:
			for s := range scale {
				scale[s] = 1.1
			}
			stale = p - 1
		case 3:
			scale[st] = 10
		}

		ones := make([]float64, p)
		for s := range ones {
			ones[s] = 1
		}
		for _, workers := range []int{1, 4} {
			memo := &Memo{}
			warm0, err0 := SolveMemo(L, p, n, stageScaled(base, ones), memo, p-1, workers)
			cold, coldErr := SolveWorkers(L, p, n, stageScaled(base, scale), workers)
			warm, warmErr := SolveMemo(L, p, n, stageScaled(base, scale), memo, stale, workers)
			if err0 != nil {
				// Infeasible instances stay infeasible under any positive
				// scale; both re-solves must agree.
				if coldErr == nil || warmErr == nil {
					t.Fatalf("infeasible instance became feasible: cold=%v warm=%v", coldErr, warmErr)
				}
			} else {
				if (warmErr == nil) != (coldErr == nil) {
					t.Fatalf("feasibility disagreement: warm err=%v, cold err=%v", warmErr, coldErr)
				}
				if coldErr == nil && !reflect.DeepEqual(stripEffort(warm), stripEffort(cold)) {
					t.Fatalf("warm-started solve differs from cold (workers=%d, stale=%d):\n%+v\nvs\n%+v",
						workers, stale, warm, cold)
				}
				if coldErr == nil && stale < p-1 && warm.WarmCells == 0 && warm0.DPCells > 0 {
					t.Fatalf("warm solve with stale=%d reused no cells", stale)
				}
			}

			// The exact variant under the same repricing, with a small cap so
			// trimmed frontiers go through the memo path too.
			for _, fcap := range []int{0, 2} {
				em := &ExactMemo{}
				_, _, eerr0 := SolveExactMemo(L, p, n, stageScaled(base, ones), fcap, em, p-1, workers)
				coldE, coldExactFlag, coldEErr := SolveExactWorkers(L, p, n, stageScaled(base, scale), fcap, workers)
				warmE, warmExactFlag, warmEErr := SolveExactMemo(L, p, n, stageScaled(base, scale), fcap, em, stale, workers)
				if eerr0 != nil {
					if coldEErr == nil || warmEErr == nil {
						t.Fatalf("infeasible exact instance became feasible: cold=%v warm=%v", coldEErr, warmEErr)
					}
					continue
				}
				if (warmEErr == nil) != (coldEErr == nil) || warmExactFlag != coldExactFlag {
					t.Fatalf("exact warm/cold disagreement: err %v vs %v, exact %v vs %v",
						warmEErr, coldEErr, warmExactFlag, coldExactFlag)
				}
				if coldEErr == nil && !reflect.DeepEqual(stripEffort(warmE), stripEffort(coldE)) {
					t.Fatalf("warm-started exact solve differs from cold (workers=%d, fcap=%d, stale=%d):\n%+v\nvs\n%+v",
						workers, fcap, stale, warmE, coldE)
				}
			}
		}
	})
}
