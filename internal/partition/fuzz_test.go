package partition

import (
	"math"
	"reflect"
	"testing"
)

// fuzzCost derives a deterministic cost function from a seed: per-(s,i,j)
// forward/backward times from a small integer hash, with a tunable fraction of
// infeasible cells so the solvers' feasibility handling is exercised. Pure and
// stateless, so it is safe for the concurrent workers path.
func fuzzCost(seed uint32, infeasibleMod int) CostFn {
	return func(s, i, j int) (float64, float64, bool) {
		h := seed
		for _, v := range [...]int{s, i, j} {
			h = (h ^ uint32(v)*0x9e3779b9) * 0x85ebca6b
			h ^= h >> 13
		}
		if infeasibleMod > 0 && int(h%16) < infeasibleMod {
			return 0, 0, false
		}
		f := 1 + float64(h%97)/10
		b := 1 + float64((h>>8)%89)/10
		// Longer ranges cost more, keeping the instances non-degenerate.
		span := float64(j - i + 1)
		return f * span, b * span, true
	}
}

// FuzzPartitionSolveVsBruteForce feeds arbitrary small instances to Algorithm
// 1, its exact Pareto variant and the exponential oracle:
//   - Solve never beats BruteForce (it is a heuristic over the same model);
//   - SolveExact with an unlimited frontier matches BruteForce exactly;
//   - all three agree on feasibility;
//   - the workers=4 variants are bit-identical to their serial counterparts.
func FuzzPartitionSolveVsBruteForce(f *testing.F) {
	f.Add(uint32(1), uint8(6), uint8(3), uint8(8), uint8(0))
	f.Add(uint32(42), uint8(7), uint8(7), uint8(7), uint8(4))
	f.Add(uint32(7), uint8(5), uint8(2), uint8(12), uint8(8))
	f.Add(uint32(99), uint8(1), uint8(1), uint8(1), uint8(15))
	f.Fuzz(func(t *testing.T, seed uint32, l8, p8, n8, inf8 uint8) {
		L := int(l8%7) + 1
		p := int(p8%uint8(L)) + 1
		n := p + int(n8%8)
		cost := fuzzCost(seed, int(inf8%12))

		heur, heurErr := Solve(L, p, n, cost)
		exact, isExact, exactErr := SolveExact(L, p, n, cost, 0)
		brute, bruteErr := BruteForce(L, p, n, cost)

		if (heurErr == nil) != (bruteErr == nil) {
			t.Fatalf("feasibility disagreement: Solve err=%v, BruteForce err=%v", heurErr, bruteErr)
		}
		if (exactErr == nil) != (bruteErr == nil) {
			t.Fatalf("feasibility disagreement: SolveExact err=%v, BruteForce err=%v", exactErr, bruteErr)
		}
		if bruteErr == nil {
			if !isExact {
				t.Fatal("unlimited frontier reported inexact")
			}
			const tol = 1e-9
			if heur.Total < brute.Total-tol {
				t.Fatalf("Solve %.12g beats the oracle %.12g", heur.Total, brute.Total)
			}
			if math.Abs(exact.Total-brute.Total) > tol*(1+brute.Total) {
				t.Fatalf("SolveExact %.12g != oracle %.12g", exact.Total, brute.Total)
			}
			// The exact solver can only improve on the heuristic.
			if exact.Total > heur.Total+tol {
				t.Fatalf("SolveExact %.12g worse than Solve %.12g", exact.Total, heur.Total)
			}
		}

		// Worker sharding must be invisible: bit-identical plans and errors.
		heurW, heurWErr := SolveWorkers(L, p, n, cost, 4)
		if (heurWErr == nil) != (heurErr == nil) {
			t.Fatalf("SolveWorkers error mismatch: %v vs %v", heurWErr, heurErr)
		}
		if heurErr == nil && !reflect.DeepEqual(heur, heurW) {
			t.Fatalf("SolveWorkers(4) differs from Solve:\n%+v\nvs\n%+v", heurW, heur)
		}
		exactW, isExactW, exactWErr := SolveExactWorkers(L, p, n, cost, 0, 4)
		if (exactWErr == nil) != (exactErr == nil) || isExactW != isExact {
			t.Fatalf("SolveExactWorkers mismatch: err %v vs %v, exact %v vs %v",
				exactWErr, exactErr, isExactW, isExact)
		}
		if exactErr == nil && !reflect.DeepEqual(exact, exactW) {
			t.Fatalf("SolveExactWorkers(4) differs from SolveExact:\n%+v\nvs\n%+v", exactW, exact)
		}
	})
}
