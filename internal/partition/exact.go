package partition

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"adapipe/internal/pool"
)

// SolveExact is an optimal variant of Algorithm 1. The published algorithm
// keeps a single best state per (stage, start-layer) — the one minimizing
// its local T = W + E + (n−p+s)·M — which can discard a state whose larger
// local T would have combined better upstream (the "local minimums" §3
// alludes to). SolveExact instead keeps the full Pareto frontier over the
// state vector (W, E, M, F, B): the parent recurrences are monotone
// non-decreasing in all five components, so a dominated state can never
// participate in an optimal solution and pruning to the frontier is exact.
//
// maxFrontier caps the per-cell frontier size as a safety valve; 0 means
// unlimited. When the cap trims a frontier, the result may lose optimality
// (it keeps the locally-best states by T), which the returned exact flag
// reports.
func SolveExact(L, p, n int, cost CostFn, maxFrontier int) (Plan, bool, error) {
	return SolveExactWorkers(L, p, n, cost, maxFrontier, 1)
}

// SolveExactWorkers is SolveExact with the per-level DP cells fanned across a
// bounded worker pool, exactly as SolveWorkers does for Solve: cells at one
// level are independent, each cell's candidate generation and Pareto prune
// stay serial and deterministic, and the result is bit-identical to
// SolveExact for every worker count. With workers > 1 the cost function must
// be safe for concurrent use.
func SolveExactWorkers(L, p, n int, cost CostFn, maxFrontier, workers int) (Plan, bool, error) {
	return solveExactMemo(L, p, n, cost, maxFrontier, nil, p-1, workers, false)
}

// SolveExactMemo is SolveExactWorkers warm-started from memo, under the same
// contract as SolveMemo: levels above stale are reused bit-for-bit from the
// previous solve, levels 0..stale are recomputed with the identical serial
// candidate scan and AlmostEq-tied Pareto prune, so the result matches a
// cold SolveExactWorkers run exactly. An invalid or shape-mismatched memo
// (including a maxFrontier change) forces a cold solve.
func SolveExactMemo(L, p, n int, cost CostFn, maxFrontier int, memo *ExactMemo, stale, workers int) (Plan, bool, error) {
	return solveExactMemo(L, p, n, cost, maxFrontier, memo, stale, workers, false)
}

// exState is one Pareto-frontier state of the exact solver: the Eq. 3 phase
// vector plus the split that produced it and the index of its parent state
// in the next stage's frontier.
type exState struct {
	W, E, M, F, B float64
	split         int
	next          int
}

// ExactMemo is the exact-solver counterpart of Memo: the full per-cell
// Pareto frontiers of a completed solve, kept so the next solve can reuse
// every level whose stage costs are unchanged. Not safe for concurrent use.
type ExactMemo struct {
	l, p, n, maxFrontier int
	// frontiers[s][i] is the Pareto set for layers i..l−1, stages s..p−1.
	frontiers [][][]exState
	// trimmed[s] records whether any cell at level s hit the frontier cap
	// when it was last computed (losing the optimality guarantee).
	trimmed []bool
	// cells[s] counts level s's cost evaluations when it was last computed.
	cells []int64
	valid bool
}

// Valid reports whether the memo holds a completed solve for exactly this
// shape and frontier cap.
func (m *ExactMemo) Valid(L, p, n, maxFrontier int) bool {
	return m != nil && m.valid && m.l == L && m.p == p && m.n == n && m.maxFrontier == maxFrontier
}

// Clone deep-copies the memo so two planners can warm-start independently.
func (m *ExactMemo) Clone() *ExactMemo {
	if m == nil {
		return nil
	}
	out := &ExactMemo{l: m.l, p: m.p, n: m.n, maxFrontier: m.maxFrontier, valid: m.valid}
	out.frontiers = make([][][]exState, len(m.frontiers))
	for s := range m.frontiers {
		out.frontiers[s] = make([][]exState, len(m.frontiers[s]))
		for i := range m.frontiers[s] {
			out.frontiers[s][i] = append([]exState(nil), m.frontiers[s][i]...)
		}
	}
	out.trimmed = append([]bool(nil), m.trimmed...)
	out.cells = append([]int64(nil), m.cells...)
	return out
}

func solveExactMemo(L, p, n int, cost CostFn, maxFrontier int, memo *ExactMemo, stale, workers int, noDominance bool) (Plan, bool, error) {
	if err := check(L, p, n); err != nil {
		return Plan{}, false, err
	}
	if memo == nil {
		memo = &ExactMemo{}
	}
	if !memo.Valid(L, p, n, maxFrontier) {
		memo.l, memo.p, memo.n, memo.maxFrontier = L, p, n, maxFrontier
		memo.frontiers = make([][][]exState, p)
		for s := range memo.frontiers {
			memo.frontiers[s] = make([][]exState, L)
		}
		memo.trimmed = make([]bool, p)
		memo.cells = make([]int64, p)
		stale = p - 1
	}
	if stale > p-1 {
		stale = p - 1
	}
	memo.valid = false
	for s := stale; s >= 0; s-- {
		memo.cells[s] = solveExactLevel(L, p, n, s, cost, memo, workers, noDominance)
	}

	exact := true
	for _, tr := range memo.trimmed {
		if tr {
			exact = false
		}
	}
	frontiers := memo.frontiers
	root := frontiers[0][0]
	if len(root) == 0 {
		return Plan{}, exact, fmt.Errorf("partition: no memory-feasible partitioning of %d layers into %d stages", L, p)
	}
	bestIdx, bestT := 0, math.Inf(1)
	for idx, st := range root {
		if t := st.W + st.E + float64(n-p)*st.M; t < bestT {
			bestT, bestIdx = t, idx
		}
	}
	frontierStates := 0
	for s := range frontiers {
		for i := range frontiers[s] {
			frontierStates += len(frontiers[s][i])
		}
	}
	plan := Plan{
		Bounds:         make([]int, p+1),
		Total:          bestT,
		W:              root[bestIdx].W,
		E:              root[bestIdx].E,
		M:              root[bestIdx].M,
		Fwd:            make([]float64, p),
		Bwd:            make([]float64, p),
		FrontierStates: frontierStates,
	}
	for s := 0; s < p; s++ {
		if s <= stale {
			plan.DPCells += int(memo.cells[s])
		} else {
			plan.WarmCells += int(memo.cells[s])
		}
	}
	at, idx := 0, bestIdx
	for s := 0; s < p; s++ {
		st := frontiers[s][at][idx]
		plan.Bounds[s] = at
		plan.Fwd[s] = st.F
		plan.Bwd[s] = st.B
		at, idx = st.split+1, st.next
	}
	plan.Bounds[p] = L
	memo.valid = true
	return plan, exact, nil
}

// solveExactLevel computes one frontier level into memo.frontiers[s] and
// returns its cost-evaluation count. Every cell in range is overwritten
// unconditionally so a reused table never leaks stale frontiers into a
// recomputed level.
func solveExactLevel(L, p, n, s int, cost CostFn, memo *ExactMemo, workers int, noDominance bool) int64 {
	// Trim flags and cell counts are order-insensitive aggregates, safe and
	// exact under any worker interleaving.
	var cells atomic.Int64
	var trimmed atomic.Bool
	frontiers := memo.frontiers
	if s == p-1 {
		pool.Run(workers, L, func(_, i int) {
			cells.Add(1)
			f, b, ok := cost(p-1, i, L-1)
			if !ok {
				frontiers[p-1][i] = nil
				return
			}
			frontiers[p-1][i] = []exState{{W: f, E: b, M: f + b, F: f, B: b, split: L - 1}}
		})
		memo.trimmed[s] = false
		return cells.Load()
	}
	// Each cell i reads only level s+1 and writes only frontiers[s][i].
	pool.Run(workers, L-p+s+1, func(_, i int) {
		var states []exState
		for j := i; j <= L-p+s; j++ {
			nextStates := frontiers[s+1][j+1]
			if len(nextStates) == 0 {
				continue
			}
			cells.Add(1)
			f, b, ok := cost(s, i, j)
			if !ok {
				continue
			}
			for ni, nx := range nextStates {
				states = append(states, exState{
					W:     f + math.Max(nx.W+nx.B, float64(p-s-1)*f),
					E:     b + math.Max(nx.E+nx.F, float64(p-s-1)*b),
					M:     math.Max(nx.M, f+b),
					F:     f,
					B:     b,
					split: j,
					next:  ni,
				})
			}
		}
		pruned, tr := pruneFrontier(states, s, n, p, memo.maxFrontier, noDominance)
		frontiers[s][i] = pruned
		if tr {
			trimmed.Store(true)
		}
	})
	memo.trimmed[s] = trimmed.Load()
	return cells.Load()
}

// pruneFrontier sorts candidate states deterministically and filters the
// dominated ones. The sort breaks W-ties with E under AlmostEq: summation
// order must not decide which state sorts (and so survives a trimmed
// frontier) first. noDominance skips the dominance filter — the white-box
// oracle the property fuzz test uses to prove pruning never changes the
// optimum — while keeping the same deterministic sort and cap behavior.
func pruneFrontier(states []exState, s, n, p, maxFrontier int, noDominance bool) ([]exState, bool) {
	if len(states) <= 1 {
		return states, false
	}
	sort.Slice(states, func(a, b int) bool {
		if !AlmostEq(states[a].W, states[b].W) {
			return states[a].W < states[b].W
		}
		return states[a].E < states[b].E
	})
	out := states
	if !noDominance {
		// Filter dominated states pairwise; with five dimensions a quadratic
		// filter is fine at these sizes.
		out = nil
		for _, cand := range states {
			dominated := false
			for _, kept := range out {
				if kept.W <= cand.W && kept.E <= cand.E && kept.M <= cand.M &&
					kept.F <= cand.F && kept.B <= cand.B {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, cand)
			}
		}
	}
	trimmedHere := false
	if maxFrontier > 0 && len(out) > maxFrontier {
		trimmedHere = true
		sort.Slice(out, func(a, b int) bool {
			ta := out[a].W + out[a].E + float64(n-p+s)*out[a].M
			tb := out[b].W + out[b].E + float64(n-p+s)*out[b].M
			return ta < tb
		})
		out = out[:maxFrontier]
	}
	return out, trimmedHere
}
