package partition

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"adapipe/internal/pool"
)

// SolveExact is an optimal variant of Algorithm 1. The published algorithm
// keeps a single best state per (stage, start-layer) — the one minimizing
// its local T = W + E + (n−p+s)·M — which can discard a state whose larger
// local T would have combined better upstream (the "local minimums" §3
// alludes to). SolveExact instead keeps the full Pareto frontier over the
// state vector (W, E, M, F, B): the parent recurrences are monotone
// non-decreasing in all five components, so a dominated state can never
// participate in an optimal solution and pruning to the frontier is exact.
//
// maxFrontier caps the per-cell frontier size as a safety valve; 0 means
// unlimited. When the cap trims a frontier, the result may lose optimality
// (it keeps the locally-best states by T), which the returned exact flag
// reports.
func SolveExact(L, p, n int, cost CostFn, maxFrontier int) (Plan, bool, error) {
	return SolveExactWorkers(L, p, n, cost, maxFrontier, 1)
}

// SolveExactWorkers is SolveExact with the per-level DP cells fanned across a
// bounded worker pool, exactly as SolveWorkers does for Solve: cells at one
// level are independent, each cell's candidate generation and Pareto prune
// stay serial and deterministic, and the result is bit-identical to
// SolveExact for every worker count. With workers > 1 the cost function must
// be safe for concurrent use.
func SolveExactWorkers(L, p, n int, cost CostFn, maxFrontier, workers int) (Plan, bool, error) {
	if err := check(L, p, n); err != nil {
		return Plan{}, false, err
	}

	type state struct {
		W, E, M, F, B float64
		split         int
		next          int // index into the next stage's frontier
	}
	// frontiers[s][i] is the Pareto set for layers i..L−1, stages s..p−1.
	frontiers := make([][][]state, p)
	for s := range frontiers {
		frontiers[s] = make([][]state, L)
	}
	// trimmed records whether any cell's frontier hit the cap (losing the
	// optimality guarantee); cells counts cost evaluations. Both are
	// order-insensitive aggregates, safe and exact under any interleaving.
	var trimmed atomic.Bool
	var cells atomic.Int64

	prune := func(states []state, s int) []state {
		if len(states) <= 1 {
			return states
		}
		// Sort by W then filter dominated states pairwise; with five
		// dimensions a quadratic filter is fine at these sizes. Ties on W
		// are epsilon-ties: summation order must not decide which state
		// sorts (and so survives a trimmed frontier) first.
		sort.Slice(states, func(a, b int) bool {
			if !AlmostEq(states[a].W, states[b].W) {
				return states[a].W < states[b].W
			}
			return states[a].E < states[b].E
		})
		var out []state
		for _, cand := range states {
			dominated := false
			for _, kept := range out {
				if kept.W <= cand.W && kept.E <= cand.E && kept.M <= cand.M &&
					kept.F <= cand.F && kept.B <= cand.B {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, cand)
			}
		}
		if maxFrontier > 0 && len(out) > maxFrontier {
			trimmed.Store(true)
			sort.Slice(out, func(a, b int) bool {
				ta := out[a].W + out[a].E + float64(n-p+s)*out[a].M
				tb := out[b].W + out[b].E + float64(n-p+s)*out[b].M
				return ta < tb
			})
			out = out[:maxFrontier]
		}
		return out
	}

	pool.Run(workers, L, func(_, i int) {
		cells.Add(1)
		f, b, ok := cost(p-1, i, L-1)
		if !ok {
			return
		}
		frontiers[p-1][i] = []state{{W: f, E: b, M: f + b, F: f, B: b, split: L - 1}}
	})
	for s := p - 2; s >= 0; s-- {
		// Each cell i reads only level s+1 and writes only frontiers[s][i].
		s := s
		pool.Run(workers, L-p+s+1, func(_, i int) {
			var states []state
			for j := i; j <= L-p+s; j++ {
				nextStates := frontiers[s+1][j+1]
				if len(nextStates) == 0 {
					continue
				}
				cells.Add(1)
				f, b, ok := cost(s, i, j)
				if !ok {
					continue
				}
				for ni, nx := range nextStates {
					states = append(states, state{
						W:     f + math.Max(nx.W+nx.B, float64(p-s-1)*f),
						E:     b + math.Max(nx.E+nx.F, float64(p-s-1)*b),
						M:     math.Max(nx.M, f+b),
						F:     f,
						B:     b,
						split: j,
						next:  ni,
					})
				}
			}
			frontiers[s][i] = prune(states, s)
		})
	}

	exact := !trimmed.Load()
	root := frontiers[0][0]
	if len(root) == 0 {
		return Plan{}, exact, fmt.Errorf("partition: no memory-feasible partitioning of %d layers into %d stages", L, p)
	}
	bestIdx, bestT := 0, math.Inf(1)
	for idx, st := range root {
		if t := st.W + st.E + float64(n-p)*st.M; t < bestT {
			bestT, bestIdx = t, idx
		}
	}
	frontierStates := 0
	for s := range frontiers {
		for i := range frontiers[s] {
			frontierStates += len(frontiers[s][i])
		}
	}
	plan := Plan{
		Bounds:         make([]int, p+1),
		Total:          bestT,
		W:              root[bestIdx].W,
		E:              root[bestIdx].E,
		M:              root[bestIdx].M,
		Fwd:            make([]float64, p),
		Bwd:            make([]float64, p),
		DPCells:        int(cells.Load()),
		FrontierStates: frontierStates,
	}
	at, idx := 0, bestIdx
	for s := 0; s < p; s++ {
		st := frontiers[s][at][idx]
		plan.Bounds[s] = at
		plan.Fwd[s] = st.F
		plan.Bwd[s] = st.B
		at, idx = st.split+1, st.next
	}
	plan.Bounds[p] = L
	return plan, exact, nil
}
