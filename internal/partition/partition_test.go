package partition

import (
	"math"
	"testing"
	"testing/quick"
)

// uniformCost builds a CostFn with identical per-layer costs.
func uniformCost(f, b float64) CostFn {
	return func(s, i, j int) (float64, float64, bool) {
		n := float64(j - i + 1)
		return n * f, n * b, true
	}
}

// tableCost builds a CostFn from per-layer forward/backward arrays with an
// optional per-stage feasibility predicate.
func tableCost(f, b []float64, ok func(s, i, j int) bool) CostFn {
	return func(s, i, j int) (float64, float64, bool) {
		if ok != nil && !ok(s, i, j) {
			return 0, 0, false
		}
		var tf, tb float64
		for k := i; k <= j; k++ {
			tf += f[k]
			tb += b[k]
		}
		return tf, tb, true
	}
}

func TestSolveUniformMatchesClosedForm(t *testing.T) {
	// With uniform layers, L divisible by p, the even split is optimal and
	// the total is W + E + (n−p)·M with the textbook 1F1B phase values.
	const L, p, n = 12, 4, 16
	cost := uniformCost(1, 2)
	plan, err := Solve(L, p, n, cost)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p; s++ {
		lo, hi := plan.StageLayers(s)
		if hi-lo != L/p {
			t.Errorf("stage %d has %d layers, want %d", s, hi-lo, L/p)
		}
	}
	// F = 3, B = 6 per stage; the uniform 1F1B makespan is (n+p−1)(F+B).
	wantTotal := float64(n+p-1) * 9
	if math.Abs(plan.Total-wantTotal) > 1e-9 {
		t.Errorf("total = %g, want %g", plan.Total, wantTotal)
	}
}

func TestSolveMatchesBruteForceUniform(t *testing.T) {
	for _, tc := range []struct{ L, p, n int }{{6, 2, 4}, {8, 3, 6}, {9, 4, 8}, {5, 5, 5}} {
		cost := uniformCost(1, 2)
		got, err := Solve(tc.L, tc.p, tc.n, cost)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(tc.L, tc.p, tc.n, cost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Total-want.Total) > 1e-9 {
			t.Errorf("L=%d p=%d n=%d: Solve %g, brute force %g", tc.L, tc.p, tc.n, got.Total, want.Total)
		}
	}
}

func TestSolveConsistentWithEvaluate(t *testing.T) {
	// Algorithm 1's reported total must equal re-evaluating its chosen
	// bounds under the same cost model.
	f := []float64{1, 3, 2, 5, 1, 2, 4, 1, 2, 3}
	b := []float64{2, 5, 4, 9, 3, 4, 7, 2, 5, 6}
	cost := tableCost(f, b, nil)
	plan, err := Solve(len(f), 3, 8, cost)
	if err != nil {
		t.Fatal(err)
	}
	total, w, e, m, ok := Evaluate(plan.Bounds, 8, cost)
	if !ok {
		t.Fatal("chosen bounds infeasible under Evaluate")
	}
	if math.Abs(total-plan.Total) > 1e-9 || math.Abs(w-plan.W) > 1e-9 ||
		math.Abs(e-plan.E) > 1e-9 || math.Abs(m-plan.M) > 1e-9 {
		t.Errorf("Solve (%g,%g,%g,%g) != Evaluate (%g,%g,%g,%g)",
			plan.Total, plan.W, plan.E, plan.M, total, w, e, m)
	}
}

func TestSolveNeverBeatsBruteForce(t *testing.T) {
	// Algorithm 1 produces a valid plan, so it can never be better than
	// exhaustive search; the paper calls it near-optimal, so allow a gap.
	f := func(fs [7]uint8, bs [7]uint8, pn uint8) bool {
		L := 7
		p := 2 + int(pn%3)
		n := p + 3
		fcost := make([]float64, L)
		bcost := make([]float64, L)
		for i := 0; i < L; i++ {
			fcost[i] = float64(fs[i]%9) + 1
			bcost[i] = fcost[i] + float64(bs[i]%9)
		}
		cost := tableCost(fcost, bcost, nil)
		got, err1 := Solve(L, p, n, cost)
		want, err2 := BruteForce(L, p, n, cost)
		if err1 != nil || err2 != nil {
			return false
		}
		return got.Total >= want.Total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSolveHandlesInfeasibleRanges(t *testing.T) {
	f := []float64{1, 1, 1, 1, 1, 1}
	b := []float64{2, 2, 2, 2, 2, 2}
	// Stage 0 cannot hold more than 2 layers (memory pressure grows with
	// in-flight micro-batches).
	ok := func(s, i, j int) bool {
		if s == 0 {
			return j-i+1 <= 2
		}
		return true
	}
	plan, err := Solve(len(f), 2, 4, tableCost(f, b, ok))
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := plan.StageLayers(0); hi-lo > 2 {
		t.Errorf("stage 0 got %d layers despite the memory bound", hi-lo)
	}
}

func TestSolveReportsGlobalInfeasibility(t *testing.T) {
	cost := func(s, i, j int) (float64, float64, bool) { return 0, 0, false }
	if _, err := Solve(6, 2, 4, cost); err == nil {
		t.Error("globally infeasible input accepted")
	}
	if _, err := BruteForce(6, 2, 4, cost); err == nil {
		t.Error("brute force accepted globally infeasible input")
	}
}

func TestSolveRebalancesSkewedBackward(t *testing.T) {
	// Stage 0 is much slower per layer (heavy recomputation): the
	// partitioner should assign it fewer layers than the even split.
	const L, p, n = 12, 2, 8
	cost := func(s, i, j int) (float64, float64, bool) {
		layers := float64(j - i + 1)
		if s == 0 {
			return layers, 3 * layers, true
		}
		return layers, 1.5 * layers, true
	}
	plan, err := Solve(L, p, n, cost)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := plan.StageLayers(0); hi-lo >= L/p {
		t.Errorf("stage 0 kept %d layers, want fewer than the even %d", hi-lo, L/p)
	}
	// And it must beat the even split.
	evenTotal, _, _, _, ok := Evaluate(Even(L, p), n, cost)
	if !ok {
		t.Fatal("even split infeasible")
	}
	if plan.Total > evenTotal+1e-9 {
		t.Errorf("adaptive total %g worse than even %g", plan.Total, evenTotal)
	}
}

func TestEvaluateRejectsInfeasible(t *testing.T) {
	cost := func(s, i, j int) (float64, float64, bool) { return 1, 1, s != 1 }
	if _, _, _, _, ok := Evaluate([]int{0, 2, 4, 6}, 6, cost); ok {
		t.Error("Evaluate accepted infeasible stage")
	}
}

func TestEvenBounds(t *testing.T) {
	cases := []struct {
		L, p int
		want []int
	}{
		{12, 4, []int{0, 3, 6, 9, 12}},
		{10, 4, []int{0, 2, 4, 7, 10}}, // remainder goes to trailing stages
		{5, 5, []int{0, 1, 2, 3, 4, 5}},
		{7, 1, []int{0, 7}},
	}
	for _, tc := range cases {
		got := Even(tc.L, tc.p)
		if len(got) != len(tc.want) {
			t.Fatalf("Even(%d,%d) = %v", tc.L, tc.p, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Even(%d,%d) = %v, want %v", tc.L, tc.p, got, tc.want)
				break
			}
		}
	}
}

func TestEvenBoundsProperty(t *testing.T) {
	f := func(l, p uint8) bool {
		L := int(l%40) + 1
		P := int(p%8) + 1
		if P > L {
			P = L
		}
		bounds := Even(L, P)
		if bounds[0] != 0 || bounds[P] != L {
			return false
		}
		for s := 0; s < P; s++ {
			size := bounds[s+1] - bounds[s]
			if size < L/P || size > L/P+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInputValidation(t *testing.T) {
	cost := uniformCost(1, 2)
	cases := []struct{ L, p, n int }{
		{0, 1, 1}, {4, 0, 4}, {4, 5, 8}, {4, 2, 1},
	}
	for _, tc := range cases {
		if _, err := Solve(tc.L, tc.p, tc.n, cost); err == nil {
			t.Errorf("Solve(%d,%d,%d) accepted", tc.L, tc.p, tc.n)
		}
		if _, err := BruteForce(tc.L, tc.p, tc.n, cost); err == nil {
			t.Errorf("BruteForce(%d,%d,%d) accepted", tc.L, tc.p, tc.n)
		}
	}
}

func TestSingleStage(t *testing.T) {
	cost := uniformCost(1, 2)
	plan, err := Solve(5, 1, 4, cost)
	if err != nil {
		t.Fatal(err)
	}
	// One stage, n micro-batches: n sequential (F+B) pairs.
	if want := 4.0 * (5 + 10); math.Abs(plan.Total-want) > 1e-9 {
		t.Errorf("single-stage total = %g, want %g", plan.Total, want)
	}
}

func TestSolveExactMatchesBruteForce(t *testing.T) {
	f := func(fs [7]uint8, bs [7]uint8, pn uint8) bool {
		L := 7
		p := 2 + int(pn%3)
		n := p + 3
		fcost := make([]float64, L)
		bcost := make([]float64, L)
		for i := 0; i < L; i++ {
			fcost[i] = float64(fs[i]%9) + 1
			bcost[i] = fcost[i] + float64(bs[i]%9)
		}
		cost := tableCost(fcost, bcost, nil)
		got, exact, err1 := SolveExact(L, p, n, cost, 0)
		want, err2 := BruteForce(L, p, n, cost)
		if err1 != nil || err2 != nil || !exact {
			return false
		}
		return math.Abs(got.Total-want.Total) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSolveExactNeverWorseThanAlgorithm1(t *testing.T) {
	f := func(fs [8]uint8, bs [8]uint8) bool {
		L := 8
		const p, n = 3, 7
		fcost := make([]float64, L)
		bcost := make([]float64, L)
		for i := 0; i < L; i++ {
			fcost[i] = float64(fs[i]%9) + 1
			bcost[i] = fcost[i] + float64(bs[i]%9)
		}
		cost := tableCost(fcost, bcost, nil)
		heur, err1 := Solve(L, p, n, cost)
		exactPlan, _, err2 := SolveExact(L, p, n, cost, 0)
		if err1 != nil || err2 != nil {
			return false
		}
		return exactPlan.Total <= heur.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSolveExactFrontierCap(t *testing.T) {
	cost := uniformCost(1, 2)
	plan, exact, err := SolveExact(12, 4, 8, cost, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = exact // with uniform costs even a frontier of 1 is optimal
	want := float64(8+4-1) * 9
	if math.Abs(plan.Total-want) > 1e-9 {
		t.Errorf("capped exact total = %g, want %g", plan.Total, want)
	}
}

func TestSolveExactInfeasible(t *testing.T) {
	cost := func(s, i, j int) (float64, float64, bool) { return 0, 0, false }
	if _, _, err := SolveExact(6, 2, 4, cost, 0); err == nil {
		t.Error("globally infeasible input accepted")
	}
	if _, _, err := SolveExact(4, 5, 8, cost, 0); err == nil {
		t.Error("p > L accepted")
	}
}

func TestSolveExactBoundsConsistent(t *testing.T) {
	f := []float64{1, 3, 2, 5, 1, 2, 4, 1, 2, 3}
	b := []float64{2, 5, 4, 9, 3, 4, 7, 2, 5, 6}
	cost := tableCost(f, b, nil)
	plan, exact, err := SolveExact(len(f), 3, 8, cost, 0)
	if err != nil || !exact {
		t.Fatal(err)
	}
	total, w, e, m, ok := Evaluate(plan.Bounds, 8, cost)
	if !ok {
		t.Fatal("exact bounds infeasible under Evaluate")
	}
	if math.Abs(total-plan.Total) > 1e-9 || math.Abs(w-plan.W) > 1e-9 ||
		math.Abs(e-plan.E) > 1e-9 || math.Abs(m-plan.M) > 1e-9 {
		t.Errorf("SolveExact state (%g,%g,%g,%g) != Evaluate (%g,%g,%g,%g)",
			plan.Total, plan.W, plan.E, plan.M, total, w, e, m)
	}
}

func TestSolveCountsDPCells(t *testing.T) {
	plan, err := Solve(8, 3, 6, uniformCost(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if plan.DPCells <= 0 {
		t.Error("Solve counted no DP cells")
	}
	// The DP evaluates at most one cost per (stage, start, end) triple.
	if max := 3 * 8 * 8; plan.DPCells > max {
		t.Errorf("DPCells %d exceeds cell-space bound %d", plan.DPCells, max)
	}
	if plan.FrontierStates != 0 {
		t.Errorf("Algorithm 1 reported %d frontier states", plan.FrontierStates)
	}

	exact, _, err := SolveExact(8, 3, 6, uniformCost(1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.DPCells <= 0 {
		t.Error("SolveExact counted no DP cells")
	}
	if exact.FrontierStates <= 0 {
		t.Error("SolveExact counted no frontier states")
	}
}
