// Package partition implements the adaptive stage-partitioning algorithm of
// §5 (Algorithm 1): a dynamic program over the transformer layer sequence
// that chooses stage boundaries to minimize total 1F1B iteration time,
// consuming the per-(stage, layer-range) optimal forward/backward times
// produced by the recomputation DP of §4.
package partition

import (
	"fmt"
	"math"
)

// CostFn reports the optimal forward and backward times (seconds per
// micro-batch) of layers i..j (inclusive, 0-based) when they run as stage s,
// and whether that assignment fits in stage s's memory. It corresponds to
// the f[s,i,j] / b[s,i,j] arrays of Algorithm 1.
type CostFn func(s, i, j int) (fwd, bwd float64, ok bool)

// State is the DP state of Algorithm 1: the best result for the layer suffix
// starting at some layer when stages s..p−1 remain.
type State struct {
	// W is the warmup-phase time from this stage to the last (Eq. 3).
	W float64
	// E is the ending-phase time from this stage to the last.
	E float64
	// M is the maximum forward+backward (micro-step) time from this stage
	// to the last — the steady-phase bottleneck.
	M float64
	// F and B are the forward and backward times of this stage itself.
	F float64
	// B is the backward time of this stage.
	B float64
	// T is the modeled total time W + E + (n−p+s)·M.
	T float64
	// Split is the last layer index of this stage (the stage covers
	// layers i..Split and the next stage starts at Split+1).
	Split int
	// OK is false when no memory-feasible split exists.
	OK bool
}

// Plan is a complete partitioning.
type Plan struct {
	// Bounds has p+1 entries; stage s covers layers Bounds[s]..Bounds[s+1]−1.
	Bounds []int
	// Total is the modeled iteration time W₀ + E₀ + (n−p)·M₀.
	Total float64
	// W, E and M are the stage-0 phase values.
	W, E, M float64
	// Fwd and Bwd are the per-stage forward/backward times.
	Fwd, Bwd []float64
	// DPCells counts the (stage, start, end) cost evaluations the DP
	// performed — the search-effort figure the observability layer reports.
	// A warm-started solve counts only the recomputed levels here.
	DPCells int
	// WarmCells counts the cost evaluations represented by DP levels reused
	// from a warm-start memo instead of being recomputed; nonzero only for
	// SolveMemo/SolveExactMemo runs that actually reused levels.
	WarmCells int
	// FrontierStates is the total number of Pareto states kept across all
	// DP cells; nonzero only for SolveExact.
	FrontierStates int
}

// StageLayers returns the half-open layer range [lo, hi) of stage s.
func (pl Plan) StageLayers(s int) (lo, hi int) { return pl.Bounds[s], pl.Bounds[s+1] }

// Solve runs Algorithm 1 for L layers, p stages and n micro-batches.
// It returns an error when the inputs are malformed or no memory-feasible
// partitioning exists.
func Solve(L, p, n int, cost CostFn) (Plan, error) {
	return SolveWorkers(L, p, n, cost, 1)
}

// SolveWorkers is Solve with the per-level DP cells fanned across a bounded
// worker pool. The recurrence at level s depends only on level s+1, so every
// cell (s, i) at one level is independent: workers shard the i axis while the
// j-scan inside each cell stays serial and ascending, preserving the serial
// solver's tie-breaking exactly. The result is bit-identical to Solve for
// every worker count.
//
// With workers > 1 the cost function is called from multiple goroutines
// concurrently and must be safe for concurrent use. workers <= 1 runs the
// serial path with no goroutines.
func SolveWorkers(L, p, n int, cost CostFn, workers int) (Plan, error) {
	// A nil memo forces a cold solve: every level is computed from scratch
	// by the shared level code in incremental.go.
	return SolveMemo(L, p, n, cost, nil, p-1, workers)
}

// Evaluate computes the modeled iteration time of an arbitrary partitioning
// under the same 1F1B cost model Algorithm 1 optimizes (Eq. 3 recurrences).
// bounds must have p+1 entries. It returns ok=false when any stage is
// memory-infeasible.
func Evaluate(bounds []int, n int, cost CostFn) (total, w0, e0, m0 float64, ok bool) {
	p := len(bounds) - 1
	fs := make([]float64, p)
	bs := make([]float64, p)
	for s := 0; s < p; s++ {
		f, b, feasible := cost(s, bounds[s], bounds[s+1]-1)
		if !feasible {
			return 0, 0, 0, 0, false
		}
		fs[s], bs[s] = f, b
	}
	w := fs[p-1]
	e := bs[p-1]
	m := fs[p-1] + bs[p-1]
	for s := p - 2; s >= 0; s-- {
		w = fs[s] + math.Max(w+bs[s+1], float64(p-s-1)*fs[s])
		e = bs[s] + math.Max(e+fs[s+1], float64(p-s-1)*bs[s])
		m = math.Max(m, fs[s]+bs[s])
	}
	return w + e + float64(n-p)*m, w, e, m, true
}

// BruteForce enumerates every partitioning of L layers into p non-empty
// contiguous stages, evaluates each with Evaluate, and returns the best.
// It is the test oracle; exponential in p.
func BruteForce(L, p, n int, cost CostFn) (Plan, error) {
	if err := check(L, p, n); err != nil {
		return Plan{}, err
	}
	bounds := make([]int, p+1)
	bounds[0], bounds[p] = 0, L
	best := Plan{Total: math.Inf(1)}
	var rec func(stage int)
	rec = func(stage int) {
		if stage == p-1 {
			// The last stage takes everything that remains.
			total, w, e, m, ok := Evaluate(bounds, n, cost)
			if ok && total < best.Total {
				best = Plan{Bounds: append([]int(nil), bounds...), Total: total, W: w, E: e, M: m}
			}
			return
		}
		// Stage `stage` starts at bounds[stage]; choose its end, leaving
		// at least one layer per remaining stage.
		for end := bounds[stage] + 1; end <= L-(p-stage-1); end++ {
			bounds[stage+1] = end
			rec(stage + 1)
		}
	}
	rec(0)
	if math.IsInf(best.Total, 1) {
		return Plan{}, fmt.Errorf("partition: brute force found no feasible partitioning")
	}
	best.Fwd = make([]float64, p)
	best.Bwd = make([]float64, p)
	for s := 0; s < p; s++ {
		f, b, _ := cost(s, best.Bounds[s], best.Bounds[s+1]-1)
		best.Fwd[s], best.Bwd[s] = f, b
	}
	return best, nil
}

// Even returns the uniform partitioning baseline: decoder layers split as
// evenly as possible, with the remainder given to the outer stages so the
// embedding and head layers (assigned to the first and last stage) are
// balanced the way Megatron-style frameworks do it. bounds[0]=0,
// bounds[p]=L.
func Even(L, p int) []int {
	bounds := make([]int, p+1)
	base := L / p
	rem := L % p
	at := 0
	for s := 0; s < p; s++ {
		bounds[s] = at
		at += base
		if s >= p-rem { // trailing stages absorb the remainder
			at++
		}
	}
	bounds[p] = L
	return bounds
}

// AlmostEq reports whether two modeled times/costs are equal up to the
// relative tolerance the solvers treat as a tie. Modeled phase values are
// sums of per-unit float64 terms, so two algebraically-equal expressions can
// differ in the last bits depending on summation order; exact ==/!= on them
// makes tie-breaking (and therefore the chosen plan) depend on incidental
// evaluation order. The floatcmp analyzer points here.
func AlmostEq(a, b float64) bool {
	return math.Abs(a-b) <= almostEqTol*(1+math.Abs(a)+math.Abs(b))
}

// almostEqTol is ~4 ulps at unit scale: far below any real cost difference
// the models produce (microseconds on second-scale times), far above
// summation-order noise.
const almostEqTol = 1e-12

func check(L, p, n int) error {
	switch {
	case L <= 0:
		return fmt.Errorf("partition: need at least one layer, got %d", L)
	case p <= 0:
		return fmt.Errorf("partition: need at least one stage, got %d", p)
	case p > L:
		return fmt.Errorf("partition: %d stages exceed %d layers", p, L)
	case n < p:
		return fmt.Errorf("partition: 1F1B needs micro-batches n (%d) >= stages p (%d)", n, p)
	}
	return nil
}
