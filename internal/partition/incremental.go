package partition

import (
	"fmt"
	"math"
	"sync/atomic"

	"adapipe/internal/pool"
)

// Memo is the saved DP table of a completed SolveMemo run, used to
// warm-start the next solve. The suffix DP of Algorithm 1 has a locality
// property the replanner exploits: the level-s states depend only on the
// stage costs of stages s..p−1, so when a repricing changes the costs of
// stages in some set S, every level strictly above max(S) is bit-for-bit
// identical to the previous solve and can be reused; only levels
// 0..max(S) need recomputation. The zero Memo is valid and behaves like a
// cold solve on first use.
//
// A Memo is not safe for concurrent use; callers serialize access (the
// planner checks its memo out under its mutex for the duration of a solve).
type Memo struct {
	l, p, n int
	// levels[s][i] is the Algorithm 1 state for layers i..l−1 with stages
	// s..p−1 — the P table of SolveWorkers, kept across solves.
	levels [][]State
	// cells[s] counts the cost evaluations level s performed when it was
	// last computed, so a warm-started solve can report how much work the
	// reused levels represent.
	cells []int64
	valid bool
}

// Valid reports whether the memo holds a completed solve for exactly L
// layers, p stages and n micro-batches.
func (m *Memo) Valid(L, p, n int) bool {
	return m != nil && m.valid && m.l == L && m.p == p && m.n == n
}

// Clone deep-copies the memo so two planners can warm-start independently
// (shape replanning seeds the unchanged-depth candidate with a clone).
func (m *Memo) Clone() *Memo {
	if m == nil {
		return nil
	}
	out := &Memo{l: m.l, p: m.p, n: m.n, valid: m.valid}
	out.levels = make([][]State, len(m.levels))
	for s := range m.levels {
		out.levels[s] = append([]State(nil), m.levels[s]...)
	}
	out.cells = append([]int64(nil), m.cells...)
	return out
}

// SolveMemo runs Algorithm 1 warm-started from memo: levels above stale are
// reused from the previous solve and only levels 0..stale are recomputed
// (stale = p−1 is a cold solve; stale = −1 reassembles the plan without
// recomputing anything). The caller asserts that every stage cost at levels
// above stale is unchanged since the memo was filled; under that contract
// the result is bit-identical to a cold SolveWorkers run, because the
// recomputed levels use the same serial ascending-j scan, the same float
// operations and the same first-win tie-break as the cold path, and the
// reused levels are the cold path's own outputs.
//
// An invalid or shape-mismatched memo (including nil) forces a cold solve.
// A solve that fails — infeasible inputs or a cost function neutered by
// context cancellation — leaves the memo invalid so the next solve starts
// cold rather than trusting a partially-recomputed table.
func SolveMemo(L, p, n int, cost CostFn, memo *Memo, stale, workers int) (Plan, error) {
	if err := check(L, p, n); err != nil {
		return Plan{}, err
	}
	if memo == nil {
		memo = &Memo{}
	}
	if !memo.Valid(L, p, n) {
		memo.l, memo.p, memo.n = L, p, n
		memo.levels = make([][]State, p)
		for s := range memo.levels {
			memo.levels[s] = make([]State, L)
		}
		memo.cells = make([]int64, p)
		stale = p - 1
	}
	if stale > p-1 {
		stale = p - 1
	}
	memo.valid = false
	for s := stale; s >= 0; s-- {
		memo.cells[s] = solveLevel(L, p, n, s, cost, memo.levels, workers)
	}
	plan, err := assembleStates(L, p, memo.levels)
	if err != nil {
		return Plan{}, err
	}
	for s := 0; s < p; s++ {
		if s <= stale {
			plan.DPCells += int(memo.cells[s])
		} else {
			plan.WarmCells += int(memo.cells[s])
		}
	}
	memo.valid = true
	return plan, nil
}

// solveLevel computes DP level s of Algorithm 1 into P[s], fanning the
// independent cells across the worker pool, and returns the number of cost
// evaluations performed. Every cell in range is overwritten unconditionally
// so a reused table never leaks stale states into a recomputed level.
func solveLevel(L, p, n, s int, cost CostFn, P [][]State, workers int) int64 {
	// Cell counting is a commutative sum, so an atomic keeps the tally exact
	// (and deterministic) under any worker interleaving.
	var cells atomic.Int64
	if s == p-1 {
		// Base case: the last stage takes everything that remains.
		pool.Run(workers, L, func(_, i int) {
			cells.Add(1)
			f, b, ok := cost(p-1, i, L-1)
			if !ok {
				P[p-1][i] = State{}
				return
			}
			P[p-1][i] = State{
				W: f, E: b, M: f + b, F: f, B: b,
				T:     f + b + float64(n-1)*(f+b),
				Split: L - 1,
				OK:    true,
			}
		})
		return cells.Load()
	}
	// Stage s must start no later than layer L−(p−s) so every later stage
	// keeps at least one layer. Each cell i at this level reads only level
	// s+1 and writes only P[s][i]: race-free sharding.
	pool.Run(workers, L-p+s+1, func(_, i int) {
		best := State{T: math.Inf(1)}
		for j := i; j <= L-p+s; j++ {
			next := P[s+1][j+1]
			if !next.OK {
				continue
			}
			cells.Add(1)
			f, b, ok := cost(s, i, j)
			if !ok {
				continue
			}
			w := f + math.Max(next.W+next.B, float64(p-s-1)*f)
			e := b + math.Max(next.E+next.F, float64(p-s-1)*b)
			m := math.Max(next.M, f+b)
			t := w + e + float64(n-p+s)*m
			if t < best.T {
				best = State{W: w, E: e, M: m, F: f, B: b, T: t, Split: j, OK: true}
			}
		}
		P[s][i] = best
	})
	return cells.Load()
}

// assembleStates reads the solved table back into a Plan by walking the
// split chain from the root state.
func assembleStates(L, p int, P [][]State) (Plan, error) {
	root := P[0][0]
	if !root.OK {
		return Plan{}, fmt.Errorf("partition: no memory-feasible partitioning of %d layers into %d stages", L, p)
	}
	plan := Plan{Bounds: make([]int, p+1), Total: root.T, W: root.W, E: root.E, M: root.M}
	plan.Fwd = make([]float64, p)
	plan.Bwd = make([]float64, p)
	at := 0
	for s := 0; s < p; s++ {
		plan.Bounds[s] = at
		st := P[s][at]
		plan.Fwd[s] = st.F
		plan.Bwd[s] = st.B
		at = st.Split + 1
	}
	plan.Bounds[p] = L
	return plan, nil
}
