// Package hardware describes the accelerators and interconnects of the two
// evaluation clusters from the AdaPipe paper (ASPLOS'24, §7.1).
//
// The paper profiles real devices; this reproduction substitutes analytical
// device models. A Device carries the roofline parameters (peak half-precision
// FLOP/s, HBM bandwidth, memory capacity) that the profiler combines with
// per-unit FLOP and byte counts to synthesize the forward/backward times and
// activation sizes the search engine consumes.
package hardware

import "fmt"

// Device models a single accelerator.
type Device struct {
	// Name identifies the accelerator, e.g. "A100-80GB".
	Name string
	// PeakFLOPS is the peak half-precision throughput in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is the HBM bandwidth in bytes/s.
	MemBandwidth float64
	// MemCapacity is the usable device memory in bytes.
	MemCapacity int64
	// GEMMEfficiency is the fraction of PeakFLOPS achieved by large dense
	// GEMMs (tensor cores rarely exceed ~50% end to end).
	GEMMEfficiency float64
	// AttnEfficiency is the fraction of PeakFLOPS achieved by the fused
	// flash-attention kernel, which is less efficient than plain GEMMs.
	AttnEfficiency float64
	// BandwidthEfficiency is the fraction of MemBandwidth achieved by
	// element-wise kernels (LayerNorm, activations).
	BandwidthEfficiency float64
}

// EffectiveGEMMFLOPS returns the realized GEMM throughput in FLOP/s.
func (d Device) EffectiveGEMMFLOPS() float64 { return d.PeakFLOPS * d.GEMMEfficiency }

// EffectiveAttnFLOPS returns the realized attention-kernel throughput.
func (d Device) EffectiveAttnFLOPS() float64 { return d.PeakFLOPS * d.AttnEfficiency }

// EffectiveBandwidth returns the realized element-wise bandwidth in bytes/s.
func (d Device) EffectiveBandwidth() float64 { return d.MemBandwidth * d.BandwidthEfficiency }

// Validate reports whether the device parameters are physically meaningful.
func (d Device) Validate() error {
	switch {
	case d.PeakFLOPS <= 0:
		return fmt.Errorf("hardware: %s: PeakFLOPS must be positive", d.Name)
	case d.MemBandwidth <= 0:
		return fmt.Errorf("hardware: %s: MemBandwidth must be positive", d.Name)
	case d.MemCapacity <= 0:
		return fmt.Errorf("hardware: %s: MemCapacity must be positive", d.Name)
	case d.GEMMEfficiency <= 0 || d.GEMMEfficiency > 1:
		return fmt.Errorf("hardware: %s: GEMMEfficiency out of (0,1]", d.Name)
	case d.AttnEfficiency <= 0 || d.AttnEfficiency > 1:
		return fmt.Errorf("hardware: %s: AttnEfficiency out of (0,1]", d.Name)
	case d.BandwidthEfficiency <= 0 || d.BandwidthEfficiency > 1:
		return fmt.Errorf("hardware: %s: BandwidthEfficiency out of (0,1]", d.Name)
	}
	return nil
}

// Cluster models a homogeneous accelerator cluster.
type Cluster struct {
	// Name identifies the cluster ("A" or "B" in the paper).
	Name string
	// Device is the accelerator installed in every node.
	Device Device
	// DevicesPerNode is the accelerator count per node (8 on both clusters).
	DevicesPerNode int
	// Nodes is the node count.
	Nodes int
	// IntraNodeBandwidth is the per-pair bandwidth between accelerators in
	// one node (NVLink / on-board mesh), bytes/s.
	IntraNodeBandwidth float64
	// InterNodeBandwidth is the per-pair bandwidth between accelerators in
	// different nodes (NIC share), bytes/s.
	InterNodeBandwidth float64
	// LinkLatency is the fixed per-message latency in seconds.
	LinkLatency float64
}

// Devices returns the total accelerator count.
func (c Cluster) Devices() int { return c.DevicesPerNode * c.Nodes }

// Resize returns a copy of the cluster with the given node count — the shape
// the elastic recovery loop replans for after a permanent node loss (fewer
// nodes) or a scale-up arrival (more). Everything else (device model, links,
// per-node layout) is unchanged; the result is validated so a resize can
// never produce a cluster the planner would reject later.
func (c Cluster) Resize(nodes int) (Cluster, error) {
	if nodes <= 0 {
		return Cluster{}, fmt.Errorf("hardware: %s: cannot resize to %d nodes", c.Name, nodes)
	}
	c.Nodes = nodes
	if err := c.Validate(); err != nil {
		return Cluster{}, err
	}
	return c, nil
}

// Validate reports whether the cluster parameters are meaningful.
func (c Cluster) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	switch {
	case c.DevicesPerNode <= 0:
		return fmt.Errorf("hardware: %s: DevicesPerNode must be positive", c.Name)
	case c.Nodes <= 0:
		return fmt.Errorf("hardware: %s: Nodes must be positive", c.Name)
	case c.IntraNodeBandwidth <= 0 || c.InterNodeBandwidth <= 0:
		return fmt.Errorf("hardware: %s: link bandwidths must be positive", c.Name)
	case c.LinkLatency < 0:
		return fmt.Errorf("hardware: %s: LinkLatency must be non-negative", c.Name)
	}
	return nil
}

// PipelineBandwidth returns the effective bandwidth for a point-to-point
// activation transfer between adjacent pipeline stages when tensor
// parallelism of size tp is in use. With tp ranks per stage the pipeline
// boundary crosses nodes (pipeline parallelism is the inter-node level of 3D
// parallelism), and each TP rank sends its own activation shard over its NIC
// share, so per-rank bandwidth is InterNodeBandwidth.
//
// When an entire pipeline pair fits inside one node (tp*2 <= DevicesPerNode
// and the cluster has a single node), the faster intra-node links apply.
func (c Cluster) PipelineBandwidth(tp int) float64 {
	if c.Nodes == 1 {
		return c.IntraNodeBandwidth
	}
	_ = tp
	return c.InterNodeBandwidth
}

const (
	// GiB is one gibibyte in bytes.
	GiB = int64(1) << 30
	// TFLOPS is 1e12 FLOP/s.
	TFLOPS = 1e12
	// GBps is 1e9 bytes/s.
	GBps = 1e9
)

// A100 returns the analytical model of an NVIDIA A100-80GB accelerator
// (cluster A in the paper).
func A100() Device {
	return Device{
		Name:                "A100-80GB",
		PeakFLOPS:           312 * TFLOPS, // FP16 tensor core peak
		MemBandwidth:        2039 * GBps,  // HBM2e
		MemCapacity:         80 * GiB,
		GEMMEfficiency:      0.47,
		AttnEfficiency:      0.35,
		BandwidthEfficiency: 0.80,
	}
}

// Ascend910 returns the analytical model of a Huawei Ascend 910-32GB
// accelerator (cluster B in the paper).
func Ascend910() Device {
	return Device{
		Name:                "Ascend910-32GB",
		PeakFLOPS:           256 * TFLOPS, // FP16 peak
		MemBandwidth:        1200 * GBps,
		MemCapacity:         32 * GiB,
		GEMMEfficiency:      0.42,
		AttnEfficiency:      0.30,
		BandwidthEfficiency: 0.75,
	}
}

// ClusterA returns the 8-node DGX-A100 cluster from §7.1: 8×A100 per node,
// NVLink intra-node, 800 Gb/s InfiniBand inter-node.
func ClusterA() Cluster {
	return Cluster{
		Name:               "A",
		Device:             A100(),
		DevicesPerNode:     8,
		Nodes:              8,
		IntraNodeBandwidth: 300 * GBps, // NVLink 3
		InterNodeBandwidth: 100 * GBps, // 800 Gb/s IB per node
		LinkLatency:        5e-6,
	}
}

// ClusterB returns the 32-node Atlas 800 cluster from §7.1: 8×Ascend 910 per
// node, 30 GB/s on-board mesh, one 100 Gb/s NIC per NPU.
func ClusterB() Cluster {
	return Cluster{
		Name:               "B",
		Device:             Ascend910(),
		DevicesPerNode:     8,
		Nodes:              32,
		IntraNodeBandwidth: 30 * GBps,
		InterNodeBandwidth: 12.5 * GBps, // 100 Gb/s NIC
		LinkLatency:        10e-6,
	}
}

// ClusterBLarge returns cluster B scaled to the large-scale experiments
// (up to 2048 NPUs = 256 nodes) used for Figure 7.
func ClusterBLarge() Cluster {
	c := ClusterB()
	c.Nodes = 256
	return c
}
