package hardware

import "testing"

func TestStockDevicesValid(t *testing.T) {
	for _, d := range []Device{A100(), Ascend910()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	for _, c := range []Cluster{ClusterA(), ClusterB(), ClusterBLarge()} {
		if err := c.Validate(); err != nil {
			t.Errorf("cluster %s: %v", c.Name, err)
		}
	}
}

func TestClusterSizes(t *testing.T) {
	if got := ClusterA().Devices(); got != 64 {
		t.Errorf("cluster A devices = %d, want 64", got)
	}
	if got := ClusterB().Devices(); got != 256 {
		t.Errorf("cluster B devices = %d, want 256", got)
	}
	if got := ClusterBLarge().Devices(); got != 2048 {
		t.Errorf("cluster B large devices = %d, want 2048", got)
	}
}

func TestEffectiveRates(t *testing.T) {
	d := A100()
	if got := d.EffectiveGEMMFLOPS(); got <= 0 || got >= d.PeakFLOPS {
		t.Errorf("effective GEMM FLOPS %g outside (0, peak)", got)
	}
	if d.EffectiveAttnFLOPS() >= d.EffectiveGEMMFLOPS() {
		t.Error("attention kernel should be less efficient than plain GEMM")
	}
	if got := d.EffectiveBandwidth(); got <= 0 || got >= d.MemBandwidth {
		t.Errorf("effective bandwidth %g outside (0, raw)", got)
	}
}

func TestMemoryCapacities(t *testing.T) {
	if got := A100().MemCapacity; got != 80*GiB {
		t.Errorf("A100 capacity = %d, want 80 GiB", got)
	}
	if got := Ascend910().MemCapacity; got != 32*GiB {
		t.Errorf("Ascend 910 capacity = %d, want 32 GiB", got)
	}
}

func TestDeviceValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Device)
	}{
		{"zero flops", func(d *Device) { d.PeakFLOPS = 0 }},
		{"zero bandwidth", func(d *Device) { d.MemBandwidth = 0 }},
		{"zero capacity", func(d *Device) { d.MemCapacity = 0 }},
		{"gemm eff too high", func(d *Device) { d.GEMMEfficiency = 1.5 }},
		{"gemm eff zero", func(d *Device) { d.GEMMEfficiency = 0 }},
		{"attn eff zero", func(d *Device) { d.AttnEfficiency = 0 }},
		{"bw eff above one", func(d *Device) { d.BandwidthEfficiency = 2 }},
	}
	for _, tc := range cases {
		d := A100()
		tc.mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid device", tc.name)
		}
	}
}

func TestClusterValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Cluster)
	}{
		{"zero nodes", func(c *Cluster) { c.Nodes = 0 }},
		{"zero devices per node", func(c *Cluster) { c.DevicesPerNode = 0 }},
		{"zero intra bw", func(c *Cluster) { c.IntraNodeBandwidth = 0 }},
		{"zero inter bw", func(c *Cluster) { c.InterNodeBandwidth = 0 }},
		{"negative latency", func(c *Cluster) { c.LinkLatency = -1 }},
		{"bad device", func(c *Cluster) { c.Device.PeakFLOPS = -1 }},
	}
	for _, tc := range cases {
		c := ClusterA()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid cluster", tc.name)
		}
	}
}

func TestPipelineBandwidth(t *testing.T) {
	multi := ClusterA()
	if got := multi.PipelineBandwidth(8); got != multi.InterNodeBandwidth {
		t.Errorf("multi-node pipeline bandwidth = %g, want inter-node %g", got, multi.InterNodeBandwidth)
	}
	single := ClusterA()
	single.Nodes = 1
	if got := single.PipelineBandwidth(2); got != single.IntraNodeBandwidth {
		t.Errorf("single-node pipeline bandwidth = %g, want intra-node %g", got, single.IntraNodeBandwidth)
	}
}

func TestClusterResize(t *testing.T) {
	c := ClusterA()
	shrunk, err := c.Resize(5)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Nodes != 5 || shrunk.Devices() != 40 {
		t.Errorf("shrunk to %d nodes / %d devices, want 5 / 40", shrunk.Nodes, shrunk.Devices())
	}
	if c.Nodes != 8 {
		t.Errorf("Resize mutated the receiver: %d nodes", c.Nodes)
	}
	if shrunk.Device != c.Device || shrunk.InterNodeBandwidth != c.InterNodeBandwidth {
		t.Error("Resize changed more than the node count")
	}

	grown, err := c.Resize(9)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Devices() != 72 {
		t.Errorf("grown devices = %d, want 72", grown.Devices())
	}

	for _, bad := range []int{0, -1} {
		if _, err := c.Resize(bad); err == nil {
			t.Errorf("Resize(%d) accepted", bad)
		}
	}
}
