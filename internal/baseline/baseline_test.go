package baseline

import (
	"testing"

	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

func gptSetup() (model.Config, hardware.Cluster, parallel.Strategy, parallel.Config) {
	return model.GPT3_175B(), hardware.ClusterA(),
		parallel.Strategy{TP: 8, PP: 8, DP: 1},
		parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}
}

func TestMethodsList(t *testing.T) {
	ms := Methods()
	if len(ms) != 8 {
		t.Fatalf("got %d methods, want 8", len(ms))
	}
	want := []string{"DAPPLE-Full", "DAPPLE-Non", "Chimera-Full", "Chimera-Non",
		"ChimeraD-Full", "ChimeraD-Non", "Even Partitioning", "AdaPipe"}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Errorf("method %d = %q, want %q", i, m.Name, want[i])
		}
	}
	if len(ClusterBMethods()) != 4 {
		t.Error("cluster B runs four methods")
	}
}

func TestMethodByName(t *testing.T) {
	m, err := MethodByName("AdaPipe")
	if err != nil {
		t.Fatal(err)
	}
	if m.Recompute != core.RecomputeAdaptive || m.Partition != core.PartitionAdaptive {
		t.Errorf("AdaPipe method misconfigured: %+v", m)
	}
	if !m.Adaptive() {
		t.Error("AdaPipe must be adaptive")
	}
	full, _ := MethodByName("DAPPLE-Full")
	if full.Adaptive() {
		t.Error("DAPPLE-Full must not be adaptive")
	}
	if _, err := MethodByName("nope"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestEvaluateAdaPipeFeasible(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	m, _ := MethodByName("AdaPipe")
	o := Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
	if !o.Feasible() {
		t.Fatalf("AdaPipe infeasible: OOM=%v err=%v", o.OOM, o.Err)
	}
	if o.IterTime <= 0 {
		t.Error("zero iteration time")
	}
	if o.Sim.MaxPeakMem() > cl.Device.MemCapacity {
		t.Error("simulated peak exceeds capacity for an adaptive method")
	}
	if len(o.Sim.PeakMem) != strat.PP {
		t.Errorf("peak memory for %d devices, want %d", len(o.Sim.PeakMem), strat.PP)
	}
}

func TestEvaluateOOMBaselineStillEstimates(t *testing.T) {
	// DAPPLE-Non at seq 16384 is OOM but must still report per-stage
	// peaks (Figure 8's estimated lines).
	cfg, cl, strat, train := gptSetup()
	m, _ := MethodByName("DAPPLE-Non")
	o := Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
	if !o.OOM {
		t.Fatal("DAPPLE-Non at seq 16384 should be OOM")
	}
	if o.Plan == nil {
		t.Fatal("OOM baseline should still carry a plan for estimation")
	}
	if o.Sim.MaxPeakMem() <= cl.Device.MemCapacity {
		t.Error("estimated peak should exceed capacity")
	}
	if o.Feasible() {
		t.Error("OOM outcome reported feasible")
	}
}

func TestEvaluateSimAgreesWithModel(t *testing.T) {
	// The simulator executes the plan's own costs under 1F1B, so its
	// makespan must be close to (and never better than) the §5.1 model
	// plus communication.
	cfg, cl, strat, train := gptSetup()
	m, _ := MethodByName("Even Partitioning")
	o := Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
	if !o.Feasible() {
		t.Fatal("infeasible")
	}
	if o.IterTime < o.Plan.Total {
		t.Errorf("simulated %g beats the comm-free model %g", o.IterTime, o.Plan.Total)
	}
	if o.IterTime > o.Plan.Total*1.1 {
		t.Errorf("simulated %g deviates more than 10%% from the model %g", o.IterTime, o.Plan.Total)
	}
}

func TestStageCosts(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	m, _ := MethodByName("AdaPipe")
	o := Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
	costs := StageCosts(o.Plan)
	if len(costs) != strat.PP {
		t.Fatalf("%d costs", len(costs))
	}
	for i, c := range costs {
		st := o.Plan.Stages[i]
		if c.Fwd != st.Fwd || c.Bwd != st.Bwd {
			t.Errorf("stage %d time mismatch", i)
		}
		if c.Static != st.Mem.Static() || c.SavedPerMicro != st.Mem.SavedPerMicro {
			t.Errorf("stage %d memory mismatch", i)
		}
		if c.StaticSharded != st.Mem.Optimizer || c.StaticOverhead != st.Mem.Overhead {
			t.Errorf("stage %d sharded/overhead mismatch", i)
		}
	}
}

func TestBestPicksFastestFeasible(t *testing.T) {
	cfg := model.Tiny(8)
	cl := hardware.ClusterA()
	cl.Nodes = 1 // 8 devices
	train := parallel.Config{GlobalBatch: 16, MicroBatch: 1, SeqLen: 1024}
	m, _ := MethodByName("AdaPipe")
	best, all := Best(m, cfg, cl, 8, train, core.DefaultOptions())
	if !best.Feasible() {
		t.Fatal("no feasible strategy for a tiny model on 8 devices")
	}
	for _, o := range all {
		if o.Feasible() && o.IterTime < best.IterTime {
			t.Errorf("Best missed %s at %g (picked %s at %g)", o.Strategy, o.IterTime, best.Strategy, best.IterTime)
		}
	}
}

func TestChimeraScheduleDivisibility(t *testing.T) {
	// Chimera requires n divisible by p; Evaluate must surface that as an
	// error, not a crash.
	cfg := model.Tiny(8)
	cl := hardware.ClusterA()
	cl.Nodes = 1
	strat := parallel.Strategy{TP: 1, PP: 4, DP: 2}
	train := parallel.Config{GlobalBatch: 10, MicroBatch: 1, SeqLen: 512} // n=5, not divisible by 4
	m, _ := MethodByName("Chimera-Full")
	o := Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
	if o.Err == nil {
		t.Error("expected a schedule divisibility error")
	}
}

func TestAdaptiveOOMHasNoPlan(t *testing.T) {
	cfg, cl, _, _ := gptSetup()
	strat := parallel.Strategy{TP: 1, PP: 32, DP: 2}
	train := parallel.Config{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096}
	m, _ := MethodByName("AdaPipe")
	o := Evaluate(m, cfg, cl, strat, train, core.DefaultOptions())
	if !o.OOM || o.Plan != nil {
		t.Errorf("adaptive OOM should yield OOM=true, nil plan; got OOM=%v plan=%v", o.OOM, o.Plan != nil)
	}
}
