// Package baseline defines the evaluation methods compared in §7 — DAPPLE,
// Chimera and ChimeraD with full/no recomputation, Even Partitioning, and
// AdaPipe itself — and evaluates each one end to end: plan, schedule,
// simulate, and check memory feasibility.
package baseline

import (
	"context"
	"fmt"
	"math"

	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/obs"
	"adapipe/internal/parallel"
	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// ScheduleKind selects the pipeline mechanism of a method.
type ScheduleKind int

const (
	// Sched1F1B is the DAPPLE 1F1B schedule.
	Sched1F1B ScheduleKind = iota
	// SchedChimera is the bidirectional Chimera schedule.
	SchedChimera
	// SchedChimeraD is Chimera with forward doubling.
	SchedChimeraD
	// SchedGPipe is the GPipe schedule (background comparison).
	SchedGPipe
)

// Method is one end-to-end configuration of the evaluation.
type Method struct {
	// Name is the label used in the figures, e.g. "DAPPLE-Full".
	Name string
	// Recompute is the recomputation policy.
	Recompute core.RecomputeMode
	// Partition is the stage-partitioning policy.
	Partition core.PartitionMode
	// Schedule is the pipeline mechanism.
	Schedule ScheduleKind
}

// Adaptive reports whether the method searches recomputation adaptively (and
// therefore enforces the memory constraint at plan time).
func (m Method) Adaptive() bool { return m.Recompute == core.RecomputeAdaptive }

// Methods returns the eight methods of Figures 5, 6, 8 and 9, in the paper's
// legend order.
func Methods() []Method {
	return []Method{
		{Name: "DAPPLE-Full", Recompute: core.RecomputeFull, Partition: core.PartitionEven, Schedule: Sched1F1B},
		{Name: "DAPPLE-Non", Recompute: core.RecomputeNone, Partition: core.PartitionEven, Schedule: Sched1F1B},
		{Name: "Chimera-Full", Recompute: core.RecomputeFull, Partition: core.PartitionEven, Schedule: SchedChimera},
		{Name: "Chimera-Non", Recompute: core.RecomputeNone, Partition: core.PartitionEven, Schedule: SchedChimera},
		{Name: "ChimeraD-Full", Recompute: core.RecomputeFull, Partition: core.PartitionEven, Schedule: SchedChimeraD},
		{Name: "ChimeraD-Non", Recompute: core.RecomputeNone, Partition: core.PartitionEven, Schedule: SchedChimeraD},
		{Name: "Even Partitioning", Recompute: core.RecomputeAdaptive, Partition: core.PartitionEven, Schedule: Sched1F1B},
		{Name: "AdaPipe", Recompute: core.RecomputeAdaptive, Partition: core.PartitionAdaptive, Schedule: Sched1F1B},
	}
}

// ClusterBMethods returns the reduced method set measured on cluster B
// (Figure 7), where each MindSpore compile takes about an hour.
func ClusterBMethods() []Method {
	all := Methods()
	return []Method{all[0], all[1], all[6], all[7]}
}

// MethodByName returns the method with the given figure label.
func MethodByName(name string) (Method, error) {
	for _, m := range Methods() {
		if m.Name == name {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("baseline: unknown method %q", name)
}

// Outcome is one evaluated (method, strategy) point.
type Outcome struct {
	// Method is the evaluated method.
	Method Method
	// Strategy is the 3D parallelism configuration.
	Strategy parallel.Strategy
	// Plan is the produced plan (nil when planning itself failed).
	Plan *core.Plan
	// Sim is the simulated iteration (zero when unavailable).
	Sim sim.Result
	// IterTime is the simulated iteration time in seconds.
	IterTime float64
	// OOM reports that the configuration exceeds device memory.
	OOM bool
	// Err holds a non-memory failure (e.g. schedule divisibility).
	Err error
}

// Feasible reports whether the outcome completed within memory.
func (o Outcome) Feasible() bool { return !o.OOM && o.Err == nil }

// Evaluate plans, schedules and simulates one method under one strategy.
// Non-adaptive methods are simulated even when they exceed device memory so
// their peak consumption can be reported (Figure 8); OOM is then flagged from
// the simulated peak.
func Evaluate(m Method, cfg model.Config, cluster hardware.Cluster, strat parallel.Strategy, train parallel.Config, opts core.Options) Outcome {
	return EvaluateContext(context.Background(), m, cfg, cluster, strat, train, opts)
}

// EvaluateContext is Evaluate with cooperative cancellation: the context is
// threaded into the planner's search (core.PlanContext), and a cancelled
// evaluation reports ctx.Err() in Outcome.Err rather than a misdiagnosed OOM.
func EvaluateContext(ctx context.Context, m Method, cfg model.Config, cluster hardware.Cluster, strat parallel.Strategy, train parallel.Config, opts core.Options) Outcome {
	out := Outcome{Method: m, Strategy: strat}
	opts.Recompute = m.Recompute
	opts.Partition = m.Partition
	// Plan OOM baselines anyway so the simulator can report their peaks
	// (Figure 8); feasibility is decided from the simulated peak below.
	opts.IgnoreMemoryLimit = !m.Adaptive()

	planner, err := core.NewPlanner(cfg, cluster, strat, train, opts)
	if err != nil {
		out.Err = err
		return out
	}
	plan, err := planner.PlanContext(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			out.Err = cerr
			return out
		}
		if m.Adaptive() {
			out.OOM = true
			return out
		}
		out.Err = err
		return out
	}
	out.Plan = plan

	sched, err := buildSchedule(m.Schedule, strat.PP, plan.MicroBatches)
	if err != nil {
		out.Err = err
		return out
	}
	costs := StageCosts(plan)
	// The discrete-event replay gets its own span next to the planner's
	// search.* spans (an error return leaves it unrecorded).
	sp := obs.TracerFrom(ctx).Start("baseline.simulate", obs.CatSearch, 0)
	res, err := sim.Run(sim.Input{Sched: sched, Stages: costs})
	if err != nil {
		out.Err = err
		return out
	}
	sp.End()
	out.Sim = res
	out.IterTime = res.IterTime
	if res.MaxPeakMem() > cluster.Device.MemCapacity {
		out.OOM = true
	}
	return out
}

// StageCosts converts a plan into simulator stage costs.
func StageCosts(plan *core.Plan) []sim.StageCost {
	costs := make([]sim.StageCost, len(plan.Stages))
	for i, s := range plan.Stages {
		costs[i] = sim.StageCost{
			Fwd:            s.Fwd,
			Bwd:            s.Bwd,
			CommFwd:        plan.CommFwd,
			CommBwd:        plan.CommBwd,
			SavedPerMicro:  s.Mem.SavedPerMicro,
			Static:         s.Mem.Static(),
			StaticSharded:  s.Mem.Optimizer,
			StaticOverhead: s.Mem.Overhead,
		}
	}
	return costs
}

func buildSchedule(kind ScheduleKind, p, n int) (*schedule.Schedule, error) {
	switch kind {
	case Sched1F1B:
		return schedule.OneFOneB(p, n)
	case SchedChimera:
		return schedule.Chimera(p, n)
	case SchedChimeraD:
		return schedule.ChimeraD(p, n)
	case SchedGPipe:
		return schedule.GPipe(p, n)
	default:
		return nil, fmt.Errorf("baseline: unknown schedule kind %d", int(kind))
	}
}

// Best evaluates a method over every 3D strategy for the given device count
// (the paper's cluster-A methodology, §7.1) and returns the fastest feasible
// outcome plus all evaluated points. When no strategy is feasible the
// returned best has OOM set.
func Best(m Method, cfg model.Config, cluster hardware.Cluster, devices int, train parallel.Config, opts core.Options) (Outcome, []Outcome) {
	constraint := parallel.DefaultConstraint()
	constraint.LayerCount = len(cfg.LayerSequence())
	var all []Outcome
	best := Outcome{Method: m, OOM: true, IterTime: math.Inf(1)}
	for _, strat := range parallel.Enumerate(devices, constraint) {
		if n, err := train.MicroBatches(strat); err != nil || n < strat.PP {
			continue
		}
		o := Evaluate(m, cfg, cluster, strat, train, opts)
		all = append(all, o)
		if o.Feasible() && o.IterTime < best.IterTime {
			best = o
		}
	}
	return best, all
}
