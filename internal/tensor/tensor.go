// Package tensor is a small, deterministic float64 matrix library backing the
// train package — the execution-engine substrate that stands in for
// MindSpore/PyTorch (§6). Everything is row-major 2-D; sequence models use
// [tokens, features] matrices. Determinism matters: the recomputation
// executor's correctness test asserts bit-identical gradients with and
// without recomputation, which requires identical floating-point operation
// order on every path.
package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	// Rows and Cols are the dimensions.
	Rows, Cols int
	// Data holds Rows*Cols values in row-major order.
	Data []float64
}

// New returns a zero matrix.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears the matrix in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SameShape reports whether two matrices have identical dimensions.
func (m *Mat) SameShape(o *Mat) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Bytes returns the memory footprint of the matrix payload.
func (m *Mat) Bytes() int64 { return int64(len(m.Data)) * 8 }

func checkSame(a, b *Mat, op string) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a·b.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul inner mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulT returns a·bᵀ.
func MatMulT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT inner mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// TMatMul returns aᵀ·b.
func TMatMul(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TmatMul inner mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Mat) *Mat {
	checkSame(a, b, "add")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Mat) {
	checkSame(a, b, "addInPlace")
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale returns s·a.
func Scale(a *Mat, s float64) *Mat {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// Mul returns the element-wise product a⊙b.
func Mul(a, b *Mat) *Mat {
	checkSame(a, b, "mul")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// SoftmaxRows returns row-wise softmax with the usual max-subtraction for
// stability; rows masked entirely to -Inf become zero rows.
func SoftmaxRows(a *Mat) *Mat {
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		if math.IsInf(max, -1) {
			continue
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			orow[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}

// RNG is a small deterministic xorshift64* generator, so training runs are
// reproducible across machines without pulling in math/rand ordering
// concerns.
type RNG struct{ state uint64 }

// NewRNG seeds a generator (zero seeds are remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn needs n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// RandNorm fills a fresh rows×cols matrix with N(0, std²) samples.
func RandNorm(rng *RNG, rows, cols int, std float64) *Mat {
	out := New(rows, cols)
	for i := range out.Data {
		out.Data[i] = rng.Norm() * std
	}
	return out
}

// Frobenius returns the Frobenius norm.
func Frobenius(a *Mat) float64 {
	var s float64
	for _, v := range a.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max |a−b| element-wise.
func MaxAbsDiff(a, b *Mat) float64 {
	checkSame(a, b, "maxAbsDiff")
	var m float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}
