package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func randMat(rng *RNG, r, c int) *Mat { return RandNorm(rng, r, c, 1) }

// transpose is a reference helper for the fused-transpose matmuls.
func transpose(m *Mat) *Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

func matsClose(a, b *Mat, tol float64) bool {
	return a.SameShape(b) && MaxAbsDiff(a, b) <= tol
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := randMat(rng, 4, 6)
	id := New(6, 6)
	for i := 0; i < 6; i++ {
		id.Set(i, i, 1)
	}
	if !matsClose(MatMul(a, id), a, 0) {
		t.Error("A·I != A")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	want := FromSlice(2, 2, []float64{19, 22, 43, 50})
	if !matsClose(MatMul(a, b), want, 0) {
		t.Errorf("matmul = %v", MatMul(a, b).Data)
	}
}

func TestFusedTransposeVariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed | 1)
		a := randMat(rng, 3, 5)
		b := randMat(rng, 4, 5)
		c := randMat(rng, 3, 7)
		// A·Bᵀ == A·(Bᵀ)
		if !matsClose(MatMulT(a, b), MatMul(a, transpose(b)), 1e-12) {
			return false
		}
		// Aᵀ·C == (Aᵀ)·C
		return matsClose(TMatMul(a, c), MatMul(transpose(a), c), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddAndScale(t *testing.T) {
	rng := NewRNG(2)
	a := randMat(rng, 3, 3)
	b := randMat(rng, 3, 3)
	sum := Add(a, b)
	for i := range sum.Data {
		if sum.Data[i] != a.Data[i]+b.Data[i] {
			t.Fatal("add mismatch")
		}
	}
	s := Scale(a, 2.5)
	for i := range s.Data {
		if s.Data[i] != 2.5*a.Data[i] {
			t.Fatal("scale mismatch")
		}
	}
	c := a.Clone()
	AddInPlace(c, b)
	if !matsClose(c, sum, 0) {
		t.Fatal("AddInPlace mismatch")
	}
	m := Mul(a, b)
	for i := range m.Data {
		if m.Data[i] != a.Data[i]*b.Data[i] {
			t.Fatal("mul mismatch")
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	p := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %g out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	if p.At(0, 2) <= p.At(0, 0) {
		t.Error("softmax must be monotone in the logits")
	}
	// Fully masked rows are zero, not NaN.
	masked := FromSlice(1, 2, []float64{math.Inf(-1), math.Inf(-1)})
	pm := SoftmaxRows(masked)
	if pm.At(0, 0) != 0 || pm.At(0, 1) != 0 {
		t.Errorf("masked row = %v", pm.Data)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed not remapped")
	}
}

func TestRNGDistributions(t *testing.T) {
	rng := NewRNG(7)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := rng.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g", variance)
	}
	for i := 0; i < 1000; i++ {
		if v := rng.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		if v := rng.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestAccessorsAndHelpers(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At")
	}
	if m.Bytes() != 48 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone aliases the original")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero")
	}
	if Frobenius(FromSlice(1, 2, []float64{3, 4})) != 5 {
		t.Error("Frobenius")
	}
	if MaxAbsDiff(FromSlice(1, 2, []float64{1, 5}), FromSlice(1, 2, []float64{2, 3})) != 2 {
		t.Error("MaxAbsDiff")
	}
}

func TestPanicsOnShapeErrors(t *testing.T) {
	checkPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	a := New(2, 3)
	b := New(2, 3)
	checkPanics("matmul", func() { MatMul(a, b) })
	checkPanics("matmulT bad", func() { MatMulT(a, New(4, 5)) })
	checkPanics("TmatMul bad", func() { TMatMul(a, New(3, 3)) })
	checkPanics("add", func() { Add(a, New(3, 2)) })
	checkPanics("fromSlice", func() { FromSlice(2, 2, []float64{1}) })
	checkPanics("negative dims", func() { New(-1, 2) })
	checkPanics("intn zero", func() { NewRNG(1).Intn(0) })
}

func TestMatMulAssociativityWithVector(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed | 1)
		a := randMat(rng, 3, 4)
		b := randMat(rng, 4, 5)
		x := randMat(rng, 5, 1)
		left := MatMul(MatMul(a, b), x)
		right := MatMul(a, MatMul(b, x))
		return matsClose(left, right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
