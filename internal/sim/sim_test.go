package sim

import (
	"math"
	"testing"
	"testing/quick"

	"adapipe/internal/schedule"
)

func uniform(p int, f, b float64, saved, static int64) []StageCost {
	costs := make([]StageCost, p)
	for i := range costs {
		costs[i] = StageCost{Fwd: f, Bwd: b, SavedPerMicro: saved, Static: static}
	}
	return costs
}

func run(t *testing.T, s *schedule.Schedule, costs []StageCost) Result {
	t.Helper()
	r, err := Run(Input{Sched: s, Stages: costs})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOneFOneBMatchesClosedForm(t *testing.T) {
	// Uniform stages, no comm: makespan = (n+p−1)(F+B).
	for _, tc := range []struct{ p, n int }{{2, 4}, {4, 8}, {8, 32}, {1, 5}} {
		s, err := schedule.OneFOneB(tc.p, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		r := run(t, s, uniform(tc.p, 1, 2, 0, 0))
		want := float64(tc.n+tc.p-1) * 3
		if math.Abs(r.IterTime-want) > 1e-9 {
			t.Errorf("p=%d n=%d: iter %g, want %g", tc.p, tc.n, r.IterTime, want)
		}
	}
}

func TestGPipeSameMakespanUniform(t *testing.T) {
	// With uniform costs GPipe and 1F1B have identical bubble counts (§2).
	const p, n = 3, 6
	g, _ := schedule.GPipe(p, n)
	o, _ := schedule.OneFOneB(p, n)
	rg := run(t, g, uniform(p, 1, 2, 0, 0))
	ro := run(t, o, uniform(p, 1, 2, 0, 0))
	if rg.IterTime != ro.IterTime {
		t.Errorf("GPipe %g vs 1F1B %g", rg.IterTime, ro.IterTime)
	}
}

func TestMemoryHighWaterMarks(t *testing.T) {
	const p, n = 4, 12
	const saved, static = 10, 1000
	o, _ := schedule.OneFOneB(p, n)
	ro := run(t, o, uniform(p, 1, 2, saved, static))
	for d := 0; d < p; d++ {
		want := int64(static + saved*(p-d))
		if ro.PeakMem[d] != want {
			t.Errorf("1F1B stage %d peak = %d, want %d", d, ro.PeakMem[d], want)
		}
	}
	g, _ := schedule.GPipe(p, n)
	rg := run(t, g, uniform(p, 1, 2, saved, static))
	for d := 0; d < p; d++ {
		want := int64(static + saved*n)
		if rg.PeakMem[d] != want {
			t.Errorf("GPipe stage %d peak = %d, want %d", d, rg.PeakMem[d], want)
		}
	}
}

func TestBusyPlusBubbleEqualsMakespan(t *testing.T) {
	const p, n = 4, 8
	s, _ := schedule.OneFOneB(p, n)
	r := run(t, s, uniform(p, 1.5, 2.5, 1, 1))
	for d := 0; d < p; d++ {
		if math.Abs(r.Busy[d]+r.Bubble[d]-r.IterTime) > 1e-9 {
			t.Errorf("device %d: busy %g + bubble %g != iter %g", d, r.Busy[d], r.Bubble[d], r.IterTime)
		}
		if want := float64(n) * 4; math.Abs(r.Busy[d]-want) > 1e-9 {
			t.Errorf("device %d busy = %g, want %g", d, r.Busy[d], want)
		}
	}
}

func TestCommDelaysIncreaseMakespan(t *testing.T) {
	const p, n = 4, 8
	s, _ := schedule.OneFOneB(p, n)
	costs := uniform(p, 1, 2, 0, 0)
	base := run(t, s, costs)
	for i := range costs {
		costs[i].CommFwd = 0.25
		costs[i].CommBwd = 0.25
	}
	withComm := run(t, s, costs)
	if withComm.IterTime <= base.IterTime {
		t.Errorf("comm delays did not increase makespan: %g vs %g", withComm.IterTime, base.IterTime)
	}
}

func TestTimelineIsConsistent(t *testing.T) {
	const p, n = 3, 6
	s, _ := schedule.OneFOneB(p, n)
	r, err := Run(Input{Sched: s, Stages: uniform(p, 1, 2, 0, 0), CaptureTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != p*2*n {
		t.Fatalf("timeline has %d events, want %d", len(r.Timeline), p*2*n)
	}
	// Per-device events must not overlap.
	lastEnd := map[int]float64{}
	for _, ev := range r.Timeline {
		if ev.Start < lastEnd[ev.Device]-1e-9 {
			t.Fatalf("device %d events overlap at %g", ev.Device, ev.Start)
		}
		if ev.End < ev.Start {
			t.Fatalf("event ends before it starts: %+v", ev)
		}
		if ev.End > lastEnd[ev.Device] {
			lastEnd[ev.Device] = ev.End
		}
	}
}

func TestDependenciesRespected(t *testing.T) {
	const p, n = 4, 6
	s, _ := schedule.OneFOneB(p, n)
	costs := uniform(p, 1, 2, 0, 0)
	for i := range costs {
		costs[i].CommFwd = 0.5
		costs[i].CommBwd = 0.5
	}
	r, err := Run(Input{Sched: s, Stages: costs, CaptureTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		kind  schedule.Kind
		stage int
		micro int
	}
	end := map[key]float64{}
	start := map[key]float64{}
	for _, ev := range r.Timeline {
		for _, m := range ev.Op.Micros {
			end[key{ev.Op.Kind, ev.Op.Stage, m}] = ev.End
			start[key{ev.Op.Kind, ev.Op.Stage, m}] = ev.Start
		}
	}
	for m := 0; m < n; m++ {
		for st := 1; st < p; st++ {
			if start[key{schedule.Forward, st, m}] < end[key{schedule.Forward, st - 1, m}]+0.5-1e-9 {
				t.Errorf("F(%d,%d) starts before upstream forward + comm", m, st)
			}
		}
		for st := 0; st < p-1; st++ {
			if start[key{schedule.Backward, st, m}] < end[key{schedule.Backward, st + 1, m}]+0.5-1e-9 {
				t.Errorf("B(%d,%d) starts before downstream backward + comm", m, st)
			}
		}
		for st := 0; st < p; st++ {
			if start[key{schedule.Backward, st, m}] < end[key{schedule.Forward, st, m}]-1e-9 {
				t.Errorf("B(%d,%d) starts before its own forward", m, st)
			}
		}
	}
}

func TestChimeraStaticAccounting(t *testing.T) {
	const p, n = 4, 8
	s, _ := schedule.Chimera(p, n)
	costs := uniform(p, 1, 2, 0, 0)
	for i := range costs {
		costs[i].Static = 100
		costs[i].StaticSharded = 40
		costs[i].StaticOverhead = 10
	}
	r := run(t, s, costs)
	// Each device hosts two stages: params+grads etc. replicated, the
	// sharded optimizer halved per replica, the overhead counted once.
	want := int64(2*100 - 2*20 - 10)
	for d := 0; d < p; d++ {
		if r.PeakMem[d] != want {
			t.Errorf("device %d static = %d, want %d", d, r.PeakMem[d], want)
		}
	}
}

func TestChimeraDDoublesActivationPinning(t *testing.T) {
	const p, n = 4, 16
	cd, _ := schedule.ChimeraD(p, n)
	c, _ := schedule.Chimera(p, n)
	costsD := uniform(p, 1, 2, 10, 0)
	rd := run(t, cd, costsD)
	rc := run(t, c, costsD)
	if rd.PeakMem[0] <= rc.PeakMem[0] {
		t.Errorf("forward doubling should pin more activations: ChimeraD %d vs Chimera %d",
			rd.PeakMem[0], rc.PeakMem[0])
	}
}

func TestChimeraWorseThanOneFOneBWhenNLarge(t *testing.T) {
	// §7.2: when micro-batches exceed the stage count, Chimera introduces
	// inter-unit bubbles and loses to 1F1B.
	const p = 4
	costs := uniform(p, 1, 2, 0, 0)
	for _, n := range []int{16, 32} {
		c, _ := schedule.Chimera(p, n)
		o, _ := schedule.OneFOneB(p, n)
		rc := run(t, c, costs)
		ro := run(t, o, costs)
		if rc.IterTime <= ro.IterTime {
			t.Errorf("n=%d: Chimera %g should be slower than 1F1B %g", n, rc.IterTime, ro.IterTime)
		}
	}
	// And at n=p it wins (the Chimera paper's setting).
	c, _ := schedule.Chimera(p, p)
	o, _ := schedule.OneFOneB(p, p)
	if rc, ro := run(t, c, costs), run(t, o, costs); rc.IterTime >= ro.IterTime {
		t.Errorf("n=p: Chimera %g should beat 1F1B %g", rc.IterTime, ro.IterTime)
	}
}

func TestInterleavedRunsGreedy(t *testing.T) {
	s, err := schedule.Interleaved(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	costs := uniform(4, 1, 2, 1, 1) // 4 logical stages
	r := run(t, s, costs)
	if r.IterTime <= 0 {
		t.Error("interleaved schedule produced zero makespan")
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := Run(Input{}); err == nil {
		t.Error("nil schedule accepted")
	}
	s, _ := schedule.OneFOneB(2, 2)
	if _, err := Run(Input{Sched: s, Stages: uniform(3, 1, 1, 0, 0)}); err == nil {
		t.Error("stage-count mismatch accepted")
	}
	// A corrupted schedule fails validation.
	bad, _ := schedule.OneFOneB(2, 2)
	bad.Ops[0] = bad.Ops[0][:1]
	if _, err := Run(Input{Sched: bad, Stages: uniform(2, 1, 1, 0, 0)}); err == nil {
		t.Error("corrupted schedule accepted")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Hand-build an in-order schedule where device 0 waits for a backward
	// that device 1 only produces after device 0 yields — impossible.
	s := &schedule.Schedule{
		Name: "deadlock", Stages: 2, Micros: 1, InOrder: true,
		Ops: [][]schedule.Op{
			{
				{Kind: schedule.Backward, Micros: []int{0}, Stage: 0},
				{Kind: schedule.Forward, Micros: []int{0}, Stage: 0},
			},
			{
				{Kind: schedule.Forward, Micros: []int{0}, Stage: 1},
				{Kind: schedule.Backward, Micros: []int{0}, Stage: 1},
			},
		},
	}
	if _, err := Run(Input{Sched: s, Stages: uniform(2, 1, 1, 0, 0)}); err == nil {
		t.Error("deadlocked schedule not detected")
	}
}

func TestMicroStepAndHelpers(t *testing.T) {
	s, _ := schedule.OneFOneB(3, 6)
	costs := []StageCost{{Fwd: 1, Bwd: 2}, {Fwd: 1.5, Bwd: 2.5}, {Fwd: 2, Bwd: 3}}
	r := run(t, s, costs)
	want := []float64{3, 4, 5}
	for i, ms := range r.MicroStep {
		if ms != want[i] {
			t.Errorf("micro-step[%d] = %g, want %g", i, ms, want[i])
		}
	}
	if r.MaxPeakMem() != 0 {
		t.Errorf("max peak = %d, want 0", r.MaxPeakMem())
	}
	if br := r.BubbleRatio(); br <= 0 || br >= 1 {
		t.Errorf("bubble ratio = %g", br)
	}
}

func TestIterTimeLowerBoundProperty(t *testing.T) {
	// Makespan ≥ per-device busy time and ≥ the critical path of micro 0.
	f := func(pp, nn, fb uint8) bool {
		p := int(pp%6) + 1
		n := p + int(nn%10)
		fwd := 0.5 + float64(fb%8)/4
		bwd := fwd * 2
		s, err := schedule.OneFOneB(p, n)
		if err != nil {
			return false
		}
		r, err := Run(Input{Sched: s, Stages: uniform(p, fwd, bwd, 0, 0)})
		if err != nil {
			return false
		}
		busy := float64(n) * (fwd + bwd)
		critical := float64(p) * (fwd + bwd)
		return r.IterTime >= busy-1e-9 && r.IterTime >= critical-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMemoryTimelineCapture(t *testing.T) {
	const p, n = 3, 5
	s, _ := schedule.OneFOneB(p, n)
	r, err := Run(Input{Sched: s, Stages: uniform(p, 1, 2, 10, 100), CaptureMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MemTimeline) != p {
		t.Fatalf("%d curves", len(r.MemTimeline))
	}
	for d, curve := range r.MemTimeline {
		if len(curve) != 2*n+1 {
			t.Fatalf("device %d: %d points, want %d", d, len(curve), 2*n+1)
		}
		if curve[0].Bytes != 100 {
			t.Errorf("device %d starts at %d, want static 100", d, curve[0].Bytes)
		}
		var peak int64
		for i, pt := range curve {
			if pt.Bytes < 100 {
				t.Errorf("device %d dips below static at point %d", d, i)
			}
			if i > 0 && pt.Time < curve[i-1].Time {
				t.Errorf("device %d curve not time-sorted", d)
			}
			if pt.Bytes > peak {
				peak = pt.Bytes
			}
		}
		if peak != r.PeakMem[d] {
			t.Errorf("device %d: curve peak %d != reported peak %d", d, peak, r.PeakMem[d])
		}
		// The iteration ends with all activations released.
		if curve[len(curve)-1].Bytes != 100 {
			t.Errorf("device %d ends at %d, want static 100", d, curve[len(curve)-1].Bytes)
		}
	}
	// Capture off: no curves.
	r2, _ := Run(Input{Sched: s, Stages: uniform(p, 1, 2, 10, 100)})
	if r2.MemTimeline != nil {
		t.Error("memory timeline captured without the flag")
	}
}
