package sim

import (
	"math"
	"testing"
	"testing/quick"

	"adapipe/internal/partition"
	"adapipe/internal/schedule"
)

// TestCostModelMatchesSimulationUniform cross-validates the §5.1 analytical
// cost model (the W/E/M recurrences Algorithm 1 optimizes) against the
// discrete-event simulator: with uniform stages and no communication the
// simulated 1F1B makespan equals the model's W₀ + E₀ + (n−p)·M₀ exactly.
func TestCostModelMatchesSimulationUniform(t *testing.T) {
	f := func(fb uint8, pn uint8, nn uint8) bool {
		p := 2 + int(pn%5)
		n := p + int(nn%12)
		fwd := 1 + float64(fb%9)
		bwd := 2 * fwd
		costs := make([]StageCost, p)
		for s := 0; s < p; s++ {
			costs[s] = StageCost{Fwd: fwd, Bwd: bwd}
		}
		costFn := func(s, i, j int) (float64, float64, bool) { return fwd, bwd, true }
		bounds := make([]int, p+1)
		for i := range bounds {
			bounds[i] = i
		}
		modelTotal, _, _, _, ok := partition.Evaluate(bounds, n, costFn)
		if !ok {
			return false
		}
		sched, err := schedule.OneFOneB(p, n)
		if err != nil {
			return false
		}
		res, err := Run(Input{Sched: sched, Stages: costs})
		if err != nil {
			return false
		}
		return math.Abs(res.IterTime-modelTotal) <= 1e-9*(1+modelTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCostModelBoundsSimulation checks the general (imbalanced) case: the
// §5.1 model assumes phases compose without cross-stage ordering stalls, so
// it can be slightly optimistic, but must stay a lower bound within a
// bounded slack of the dependency-exact simulation. The stalls the model
// ignores are each bounded by the slowest stage's fwd+bwd time and can
// accumulate at most once per pipeline boundary, so the simulation can
// exceed the model by at most (p-1)*max_s(fwd_s+bwd_s) — the dominant
// effect when n is close to p. Once the steady phase dominates (n >= 2p)
// the relative error is also modest (empirically <= ~1.32x over this
// input domain), asserted at 1.5x.
func TestCostModelBoundsSimulation(t *testing.T) {
	f := func(fs [6]uint8, bs [6]uint8, pn uint8, nn uint8) bool {
		p := 2 + int(pn%5)
		n := p + int(nn%12)
		fwd := make([]float64, p)
		bwd := make([]float64, p)
		costs := make([]StageCost, p)
		maxStage := 0.0
		for s := 0; s < p; s++ {
			fwd[s] = 1 + float64(fs[s%6]%9)
			bwd[s] = fwd[s] + float64(bs[s%6]%9)
			costs[s] = StageCost{Fwd: fwd[s], Bwd: bwd[s]}
			if fwd[s]+bwd[s] > maxStage {
				maxStage = fwd[s] + bwd[s]
			}
		}
		costFn := func(s, i, j int) (float64, float64, bool) { return fwd[s], bwd[s], true }
		bounds := make([]int, p+1)
		for i := range bounds {
			bounds[i] = i
		}
		modelTotal, _, _, _, ok := partition.Evaluate(bounds, n, costFn)
		if !ok {
			return false
		}
		sched, err := schedule.OneFOneB(p, n)
		if err != nil {
			return false
		}
		res, err := Run(Input{Sched: sched, Stages: costs})
		if err != nil {
			return false
		}
		if res.IterTime < modelTotal-1e-9 {
			return false
		}
		if res.IterTime > modelTotal+float64(p-1)*maxStage+1e-9 {
			return false
		}
		if n >= 2*p && res.IterTime > modelTotal*1.5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCostModelIsLowerBoundWithComm verifies that adding point-to-point
// communication can only increase the simulated makespan above the
// comm-free model.
func TestCostModelIsLowerBoundWithComm(t *testing.T) {
	f := func(fs [4]uint8, comm uint8) bool {
		const p, n = 4, 9
		fwd := make([]float64, p)
		bwd := make([]float64, p)
		costs := make([]StageCost, p)
		c := float64(comm%5) / 2
		for s := 0; s < p; s++ {
			fwd[s] = 1 + float64(fs[s]%7)
			bwd[s] = 2 * fwd[s]
			costs[s] = StageCost{Fwd: fwd[s], Bwd: bwd[s], CommFwd: c, CommBwd: c}
		}
		costFn := func(s, i, j int) (float64, float64, bool) { return fwd[s], bwd[s], true }
		modelTotal, _, _, _, _ := partition.Evaluate([]int{0, 1, 2, 3, 4}, n, costFn)
		sched, _ := schedule.OneFOneB(p, n)
		res, err := Run(Input{Sched: sched, Stages: costs})
		if err != nil {
			return false
		}
		return res.IterTime >= modelTotal-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestInterleavedReducesBubbles verifies the §2.1 claim about Megatron's
// interleaved 1F1B: with more virtual chunks per device (and no extra
// communication charged), the bubble ratio drops below plain 1F1B's.
func TestInterleavedReducesBubbles(t *testing.T) {
	const p, n, v = 2, 8, 2
	plain, err := schedule.OneFOneB(p, n)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := schedule.Interleaved(p, n, v)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(stages int) []StageCost {
		out := make([]StageCost, stages)
		for i := range out {
			out[i] = StageCost{Fwd: 1.0 / float64(stages/p), Bwd: 2.0 / float64(stages/p)}
		}
		return out
	}
	rp, err := Run(Input{Sched: plain, Stages: mk(p)})
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Run(Input{Sched: inter, Stages: mk(p * v)})
	if err != nil {
		t.Fatal(err)
	}
	if ri.IterTime >= rp.IterTime {
		t.Errorf("interleaved %g not faster than plain 1F1B %g", ri.IterTime, rp.IterTime)
	}
}
