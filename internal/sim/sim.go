// Package sim is a discrete-event simulator for pipeline-parallel training
// iterations. It substitutes for the paper's real clusters: a schedule from
// the schedule package is executed against per-stage forward/backward costs
// with point-to-point communication delays and per-device memory tracking,
// yielding the quantities the evaluation measures — iteration time, per-stage
// peak memory (Figure 8), micro-step times (Figure 9) and bubble time.
//
// Executing the schedule, rather than evaluating the planner's closed-form
// cost model, keeps the evaluation non-circular: AdaPipe's predicted win has
// to re-emerge from dependency-driven execution.
package sim

import (
	"fmt"
	"math"
	"sort"

	"adapipe/internal/schedule"
)

// StageCost carries the execution costs of one logical pipeline stage.
type StageCost struct {
	// Fwd is the forward time of one micro-batch in seconds.
	Fwd float64
	// Bwd is the backward time of one micro-batch in seconds, including
	// any recomputation the stage's strategy performs.
	Bwd float64
	// CommFwd is the time to send the stage's forward boundary activation
	// to the next stage.
	CommFwd float64
	// CommBwd is the time to send the gradient back to the previous stage.
	CommBwd float64
	// SavedPerMicro is the activation memory pinned per in-flight
	// micro-batch in bytes.
	SavedPerMicro int64
	// Static is the activation-independent memory in bytes (parameters,
	// gradients, optimizer states, recomputation buffer).
	Static int64
	// StaticSharded is the ZeRO-sharded portion of Static (optimizer
	// states). Bidirectional schedules replicate a stage's parameters and
	// gradients on two devices but re-shard optimizer states across the
	// replicas, so each hosted stage contributes only half of this part.
	StaticSharded int64
	// StaticOverhead is the fixed per-device framework overhead included
	// in Static; it is counted once per device even when a device hosts
	// two stages (bidirectional schedules).
	StaticOverhead int64
}

// Input bundles a simulation request.
type Input struct {
	// Sched is the schedule to execute.
	Sched *schedule.Schedule
	// Stages holds one StageCost per logical stage (Sched.Stages entries).
	Stages []StageCost
	// CaptureTimeline records per-op events for rendering.
	CaptureTimeline bool
	// CaptureMemory records per-device live-memory curves (the artifact
	// appendix logs memory at each forward/backward pass boundary).
	CaptureMemory bool
}

// MemPoint is one step of a device's live-memory curve.
type MemPoint struct {
	// Time is the instant of the change in seconds.
	Time float64
	// Bytes is the total device memory (static + live activations) from
	// this instant on.
	Bytes int64
}

// Event is one executed op on the timeline.
type Event struct {
	// Device is the executing device.
	Device int
	// Op is the scheduled op.
	Op schedule.Op
	// Start and End are the op's execution interval in seconds.
	Start, End float64
}

// Result is the outcome of a simulated iteration.
type Result struct {
	// IterTime is the makespan in seconds.
	IterTime float64
	// PeakMem is the per-device peak memory in bytes (static + live
	// activations; bidirectional schedules double the static part).
	PeakMem []int64
	// Busy is the per-device compute-busy time.
	Busy []float64
	// Bubble is the per-device idle (bubble) time, IterTime − Busy.
	Bubble []float64
	// MicroStep is the per-stage forward+backward time of one micro-batch
	// (Figure 9's metric).
	MicroStep []float64
	// Timeline holds the executed ops when capture was requested.
	Timeline []Event
	// MemTimeline holds per-device memory curves when capture was
	// requested.
	MemTimeline [][]MemPoint
}

// MaxPeakMem returns the largest per-device peak.
func (r Result) MaxPeakMem() int64 {
	var m int64
	for _, v := range r.PeakMem {
		if v > m {
			m = v
		}
	}
	return m
}

// BubbleRatio returns total bubble time divided by total device time.
func (r Result) BubbleRatio() float64 {
	if r.IterTime <= 0 || len(r.Bubble) == 0 {
		return 0
	}
	var b float64
	for _, v := range r.Bubble {
		b += v
	}
	return b / (r.IterTime * float64(len(r.Bubble)))
}

type opState struct {
	op        schedule.Op
	device    int
	listIndex int
	done      bool
	start     float64
	end       float64
}

// Run executes the schedule. It returns an error for malformed inputs or a
// deadlocked schedule (an in-order op sequence whose dependencies can never
// be met).
func Run(in Input) (Result, error) {
	sched := in.Sched
	if sched == nil {
		return Result{}, fmt.Errorf("sim: nil schedule")
	}
	if len(in.Stages) != sched.Stages {
		return Result{}, fmt.Errorf("sim: schedule %q has %d stages, got %d stage costs",
			sched.Name, sched.Stages, len(in.Stages))
	}
	if err := sched.Validate(); err != nil {
		return Result{}, err
	}
	devices := sched.Devices()

	// Per-device op state.
	states := make([][]opState, devices)
	total := 0
	for d := 0; d < devices; d++ {
		states[d] = make([]opState, len(sched.Ops[d]))
		for i, op := range sched.Ops[d] {
			states[d][i] = opState{op: op, device: d, listIndex: i}
		}
		total += len(sched.Ops[d])
	}

	// Completion times indexed by [pipeline][stage][micro]; NaN = not done.
	newTimes := func() [][][]float64 {
		t := make([][][]float64, 2)
		for pipe := 0; pipe < 2; pipe++ {
			t[pipe] = make([][]float64, sched.Stages)
			for s := 0; s < sched.Stages; s++ {
				row := make([]float64, sched.Micros)
				for m := range row {
					row[m] = math.NaN()
				}
				t[pipe][s] = row
			}
		}
		return t
	}
	fwdEnd := newTimes()
	bwdEnd := newTimes()
	has := func(kind schedule.Kind, pipe, stage, m int) (float64, bool) {
		var v float64
		if kind == schedule.Forward {
			v = fwdEnd[pipe][stage][m]
		} else {
			v = bwdEnd[pipe][stage][m]
		}
		return v, !math.IsNaN(v)
	}

	// readyStart returns the earliest start of an op, or ok=false when a
	// dependency has not been scheduled yet.
	readyStart := func(st *opState, clock float64) (float64, bool) {
		start := clock
		lastStage := sched.Stages - 1
		for _, m := range st.op.Micros {
			switch st.op.Kind {
			case schedule.Forward:
				if st.op.Stage > 0 {
					end, ok := has(schedule.Forward, st.op.Pipeline, st.op.Stage-1, m)
					if !ok {
						return 0, false
					}
					arrive := end + in.Stages[st.op.Stage-1].CommFwd
					if arrive > start {
						start = arrive
					}
				}
			case schedule.Backward:
				end, ok := has(schedule.Forward, st.op.Pipeline, st.op.Stage, m)
				if !ok {
					return 0, false
				}
				if end > start {
					start = end
				}
				if st.op.Stage < lastStage {
					bend, ok := has(schedule.Backward, st.op.Pipeline, st.op.Stage+1, m)
					if !ok {
						return 0, false
					}
					arrive := bend + in.Stages[st.op.Stage+1].CommBwd
					if arrive > start {
						start = arrive
					}
				}
			}
		}
		return start, true
	}

	duration := func(op schedule.Op) float64 {
		c := in.Stages[op.Stage]
		if op.Kind == schedule.Forward {
			return c.Fwd * float64(len(op.Micros))
		}
		return c.Bwd * float64(len(op.Micros))
	}

	clock := make([]float64, devices)
	nextIdx := make([]int, devices) // for in-order mode
	executed := 0
	var timeline []Event

	for executed < total {
		bestDev, bestIdx := -1, -1
		bestStart := math.Inf(1)
		for d := 0; d < devices; d++ {
			if sched.InOrder {
				i := nextIdx[d]
				if i >= len(states[d]) {
					continue
				}
				if start, ok := readyStart(&states[d][i], clock[d]); ok && start < bestStart {
					bestStart, bestDev, bestIdx = start, d, i
				}
				continue
			}
			// Greedy: first ready op in priority order with the
			// earliest start wins for this device.
			devBest := math.Inf(1)
			devIdx := -1
			for i := range states[d] {
				st := &states[d][i]
				if st.done {
					continue
				}
				if start, ok := readyStart(st, clock[d]); ok && start < devBest {
					devBest, devIdx = start, i
				}
			}
			if devIdx >= 0 && devBest < bestStart {
				bestStart, bestDev, bestIdx = devBest, d, devIdx
			}
		}
		if bestDev < 0 {
			return Result{}, fmt.Errorf("sim: schedule %q deadlocked after %d of %d ops", sched.Name, executed, total)
		}
		st := &states[bestDev][bestIdx]
		st.start = bestStart
		st.end = bestStart + duration(st.op)
		st.done = true
		clock[bestDev] = st.end
		if sched.InOrder {
			nextIdx[bestDev]++
		}
		for _, m := range st.op.Micros {
			if st.op.Kind == schedule.Forward {
				fwdEnd[st.op.Pipeline][st.op.Stage][m] = st.end
			} else {
				bwdEnd[st.op.Pipeline][st.op.Stage][m] = st.end
			}
		}
		executed++
		if in.CaptureTimeline {
			timeline = append(timeline, Event{Device: bestDev, Op: st.op, Start: st.start, End: st.end})
		}
	}

	res := Result{
		PeakMem:   make([]int64, devices),
		Busy:      make([]float64, devices),
		Bubble:    make([]float64, devices),
		MicroStep: make([]float64, sched.Stages),
		Timeline:  timeline,
	}
	for s := range res.MicroStep {
		res.MicroStep[s] = in.Stages[s].Fwd + in.Stages[s].Bwd
	}
	for d := 0; d < devices; d++ {
		for i := range states[d] {
			st := &states[d][i]
			if st.end > res.IterTime {
				res.IterTime = st.end
			}
			res.Busy[d] += st.end - st.start
		}
	}
	for d := 0; d < devices; d++ {
		res.Bubble[d] = res.IterTime - res.Busy[d]
	}
	res.PeakMem, res.MemTimeline = peakMemory(sched, in.Stages, states, in.CaptureMemory)
	if in.CaptureTimeline {
		sort.Slice(res.Timeline, func(i, j int) bool {
			if res.Timeline[i].Start != res.Timeline[j].Start {
				return res.Timeline[i].Start < res.Timeline[j].Start
			}
			return res.Timeline[i].Device < res.Timeline[j].Device
		})
	}
	return res, nil
}

// peakMemory computes per-device peaks: static memory of the hosted stages
// (both pipelines for bidirectional schedules) plus the high-water mark of
// live activations, where a micro-batch's activations are pinned from the end
// of its forward to the end of its backward at that stage.
func peakMemory(sched *schedule.Schedule, stages []StageCost, states [][]opState, capture bool) ([]int64, [][]MemPoint) {
	devices := sched.Devices()
	type point struct {
		t     float64
		delta int64
	}
	points := make([][]point, devices)
	static := make([]int64, devices)
	seen := make([][]bool, devices)
	seenAny := make([]bool, devices)
	for d := 0; d < devices; d++ {
		seen[d] = make([]bool, sched.Stages+1)
	}
	for d := 0; d < devices; d++ {
		for i := range states[d] {
			st := &states[d][i]
			per := stages[st.op.Stage].SavedPerMicro * int64(len(st.op.Micros))
			if st.op.Kind == schedule.Forward {
				points[d] = append(points[d], point{st.end, per})
			} else {
				points[d] = append(points[d], point{st.end, -stages[st.op.Stage].SavedPerMicro * int64(len(st.op.Micros))})
			}
			if !seen[d][st.op.Stage] {
				seen[d][st.op.Stage] = true
				c := stages[st.op.Stage]
				add := c.Static
				if sched.Bidirectional {
					// Optimizer states re-shard across the two
					// pipeline replicas.
					add -= c.StaticSharded / 2
				}
				// Framework overhead is per device, not per hosted
				// stage (bidirectional and interleaved schedules
				// host several stages per device).
				if seenAny[d] {
					add -= c.StaticOverhead
				}
				seenAny[d] = true
				static[d] += add
			}
		}
	}
	peaks := make([]int64, devices)
	var curves [][]MemPoint
	if capture {
		curves = make([][]MemPoint, devices)
	}
	for d := 0; d < devices; d++ {
		sort.Slice(points[d], func(i, j int) bool {
			if points[d][i].t != points[d][j].t {
				return points[d][i].t < points[d][j].t
			}
			// Releases before acquisitions at identical instants: the
			// backward that frees memory completes before the next
			// forward's allocation lands.
			return points[d][i].delta < points[d][j].delta
		})
		var live, peak int64
		if capture {
			curves[d] = append(curves[d], MemPoint{Time: 0, Bytes: static[d]})
		}
		for _, pt := range points[d] {
			live += pt.delta
			if live > peak {
				peak = live
			}
			if capture {
				curves[d] = append(curves[d], MemPoint{Time: pt.t, Bytes: static[d] + live})
			}
		}
		peaks[d] = static[d] + peak
	}
	return peaks, curves
}
