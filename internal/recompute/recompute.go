// Package recompute solves the adaptive-recomputation problem of §4.3: given
// the computation units of one pipeline stage and a memory budget for saved
// intermediates, choose the save/recompute set that minimizes backward time.
//
// Minimizing backward time is equivalent to maximizing the total forward time
// of the *saved* units (Equation 1), a 0/1 knapsack. Transformer stages
// contain many isomorphic layers, so units arrive as groups of identical
// copies and the knapsack is bounded rather than 0/1; binary splitting keeps
// the item count logarithmic in the copy count. Following §5.3, unit sizes
// are divided by their greatest common divisor (after conservative rounding
// up to a quantum) to shrink the DP capacity.
package recompute

import (
	"fmt"
	"sort"

	"adapipe/internal/obs"
)

// Group describes one class of identical computation units within a stage
// (e.g. "every FFNUp GEMM of the stage's 12 FFN layers").
type Group struct {
	// Key identifies the group, e.g. "Attention/FFNUp".
	Key string
	// FwdTime is Time_f(U) of one copy in seconds — the recomputation cost
	// avoided per saved copy.
	FwdTime float64
	// Bytes is Mem(U) of one copy per micro-batch.
	Bytes int64
	// Count is the number of identical copies in the stage.
	Count int
	// AlwaysSaved marks units that are saved unconditionally (§4.2:
	// Attention/FFN layer outputs); they consume budget but are not
	// searched.
	AlwaysSaved bool
}

// Solution is the result of the knapsack search.
type Solution struct {
	// Feasible is false when even maximum recomputation (only AlwaysSaved
	// units kept) exceeds the budget.
	Feasible bool
	// SavedTime is Σ Time_f over the saved optional copies — the T̃_{s,N}(M)
	// of Equation 1.
	SavedTime float64
	// SavedBytes is the per-micro-batch activation footprint of the chosen
	// strategy, including AlwaysSaved units.
	SavedBytes int64
	// Saved maps group key to the number of copies saved (including
	// AlwaysSaved groups at full count).
	Saved map[string]int
	// SavedUnits is the total number of saved copies.
	SavedUnits int
	// TotalUnits is the total number of copies in the stage.
	TotalUnits int
	// QuantaBeforeGCD and QuantaAfterGCD report the DP capacity in rounding
	// quanta before and after the §5.3 GCD reduction; their ratio is the
	// capacity shrink the reduction bought. Both are zero when the solve
	// short-circuited without running the DP (everything fit, nothing
	// optional, or no usable budget).
	QuantaBeforeGCD, QuantaAfterGCD int64
	// DPCells is the size of the knapsack table actually filled
	// (pseudo-items × capacity states); zero when no DP ran.
	DPCells int64
}

// Options tunes the solver.
type Options struct {
	// Quantum is the conservative rounding granularity in bytes: unit
	// sizes are rounded up to a multiple before the DP, so a solution
	// never exceeds the real budget. Zero selects 1 MiB.
	Quantum int64
	// DisableGCD turns off the §5.3 GCD capacity reduction (kept for the
	// ablation benchmark).
	DisableGCD bool
	// Exact solves without quantum rounding (Quantum=1). Exponentially
	// slower on real budgets; intended for tests.
	Exact bool
}

const defaultQuantum = int64(1) << 20

// Solver runs knapsack solves with reusable scratch buffers. The DP table,
// pseudo-item list and choice-tracking matrix dominate the allocation profile
// of a full planner search (thousands of solves, each discarding megabytes of
// scratch), so callers running many solves — one planner worker, a benchmark
// loop — hold one Solver per goroutine and amortize the buffers across
// solves. The zero value is ready to use. A Solver is NOT safe for concurrent
// use; give each worker its own.
//
// Solver.Optimize returns results bit-identical to the package-level Optimize
// (same iteration orders, same tie-breaking); the scratch reuse is invisible.
type Solver struct {
	dp     []float64
	taken  []bool // len(items) × (w+1), row-major
	items  []item
	scaled []int64
	counts []int

	// Trace, when non-nil, records one obs.CatSolve span per Optimize call
	// on track Tid — the deepest level of a request trace. The owner of the
	// request wires it (the planner's prefill workers attach their tracer
	// here); the nil check lives inside Tracer.Start, so an untraced solve
	// pays a pointer test and zero allocations.
	Trace *obs.Tracer
	// Tid is the trace track solve spans render on.
	Tid int
}

// item is one 0/1 pseudo-item of the binary-split bounded knapsack.
type item struct {
	group  int
	copies int
	weight int64
	value  float64
}

// NewSolver returns an empty Solver (equivalent to new(Solver)).
func NewSolver() *Solver { return &Solver{} }

// Optimize solves the bounded knapsack for one stage. capacity is the
// per-micro-batch budget for saved intermediates: the caller subtracts the
// static consumption from device memory and divides by the in-flight
// micro-batch count p−s (§4.2 multiplies the other way; the two are
// equivalent and per-micro budgets keep the DP capacity small).
func Optimize(groups []Group, capacity int64, opts Options) Solution {
	return new(Solver).Optimize(groups, capacity, opts)
}

// Optimize is the package-level Optimize running on the solver's reused
// scratch buffers.
func (sv *Solver) Optimize(groups []Group, capacity int64, opts Options) Solution {
	// The span name is a constant so traced and untraced solves allocate
	// identically.
	sp := sv.Trace.Start("knapsack", obs.CatSolve, sv.Tid)
	defer sp.End()
	sol := Solution{Saved: make(map[string]int, len(groups))}
	quantum := opts.Quantum
	if quantum <= 0 {
		quantum = defaultQuantum
	}
	if opts.Exact {
		quantum = 1
	}

	// Mandatory units first.
	remaining := capacity
	for _, g := range groups {
		sol.TotalUnits += g.Count
		if g.AlwaysSaved {
			remaining -= roundUp(g.Bytes, quantum) * int64(g.Count)
			sol.Saved[g.Key] = g.Count
			sol.SavedUnits += g.Count
			sol.SavedBytes += g.Bytes * int64(g.Count)
		}
	}
	if remaining < 0 {
		return Solution{Saved: sol.Saved, TotalUnits: sol.TotalUnits}
	}
	sol.Feasible = true

	// Optional groups, zero-size copies saved for free.
	var opt []Group
	for _, g := range groups {
		if g.AlwaysSaved || g.Count <= 0 {
			continue
		}
		if g.Bytes <= 0 {
			sol.Saved[g.Key] += g.Count
			sol.SavedUnits += g.Count
			sol.SavedTime += g.FwdTime * float64(g.Count)
			continue
		}
		opt = append(opt, g)
	}
	if len(opt) == 0 || remaining == 0 {
		return sol
	}

	// Round sizes up conservatively, then shrink by the GCD (§5.3).
	scaled := sv.scaledBuf(len(opt))
	g := int64(0)
	var roundedTotal int64
	for i, grp := range opt {
		scaled[i] = roundUp(grp.Bytes, quantum)
		roundedTotal += scaled[i] * int64(grp.Count)
		g = gcd64(g, scaled[i])
	}
	// Everything fits: no search needed (also keeps the DP table bounded
	// for effectively unlimited budgets).
	if roundedTotal <= remaining {
		for _, grp := range opt {
			sol.Saved[grp.Key] += grp.Count
			sol.SavedUnits += grp.Count
			sol.SavedTime += grp.FwdTime * float64(grp.Count)
			sol.SavedBytes += grp.Bytes * int64(grp.Count)
		}
		return sol
	}
	// Budget beyond the total rounded footprint is unusable.
	if remaining > roundedTotal {
		remaining = roundedTotal
	}
	if opts.DisableGCD {
		g = 1
		if !opts.Exact {
			g = quantum
		}
	}
	w := remaining / g
	if w <= 0 {
		return sol
	}
	sol.QuantaBeforeGCD = remaining / quantum
	sol.QuantaAfterGCD = w
	for i := range scaled {
		scaled[i] /= g
	}

	// Binary-split bounded groups into 0/1 pseudo-items.
	items := sv.items[:0]
	for i, grp := range opt {
		c := grp.Count
		for k := 1; c > 0; k *= 2 {
			take := k
			if take > c {
				take = c
			}
			items = append(items, item{
				group:  i,
				copies: take,
				weight: scaled[i] * int64(take),
				value:  grp.FwdTime * float64(take),
			})
			c -= take
		}
	}
	sv.items = items

	// 0/1 knapsack with choice tracking. taken is row-major: row i holds the
	// w+1 choice bits of pseudo-item i.
	sol.DPCells = int64(len(items)) * (w + 1)
	dp := sv.dpBuf(w + 1)
	taken := sv.takenBuf(int64(len(items)) * (w + 1))
	stride := w + 1
	for i, it := range items {
		if it.weight > w {
			continue
		}
		row := taken[int64(i)*stride : int64(i+1)*stride]
		for c := w; c >= it.weight; c-- {
			if v := dp[c-it.weight] + it.value; v > dp[c] {
				dp[c] = v
				row[c] = true
			}
		}
	}

	// Reconstruct.
	bestCap := int64(0)
	best := dp[0]
	for c := int64(1); c <= w; c++ {
		if dp[c] > best {
			best = dp[c]
			bestCap = c
		}
	}
	counts := sv.countsBuf(len(opt))
	for i := len(items) - 1; i >= 0; i-- {
		if taken[int64(i)*stride+bestCap] {
			counts[items[i].group] += items[i].copies
			bestCap -= items[i].weight
		}
	}
	for i, grp := range opt {
		if counts[i] == 0 {
			continue
		}
		sol.Saved[grp.Key] += counts[i]
		sol.SavedUnits += counts[i]
		sol.SavedTime += grp.FwdTime * float64(counts[i])
		sol.SavedBytes += grp.Bytes * int64(counts[i])
	}
	return sol
}

// dpBuf returns a zeroed float64 scratch slice of length n.
func (sv *Solver) dpBuf(n int64) []float64 {
	if int64(cap(sv.dp)) < n {
		sv.dp = make([]float64, n)
	}
	sv.dp = sv.dp[:n]
	for i := range sv.dp {
		sv.dp[i] = 0
	}
	return sv.dp
}

// takenBuf returns a zeroed bool scratch slice of length n.
func (sv *Solver) takenBuf(n int64) []bool {
	if int64(cap(sv.taken)) < n {
		sv.taken = make([]bool, n)
	}
	sv.taken = sv.taken[:n]
	for i := range sv.taken {
		sv.taken[i] = false
	}
	return sv.taken
}

// scaledBuf returns an int64 scratch slice of length n (contents overwritten
// by the caller).
func (sv *Solver) scaledBuf(n int) []int64 {
	if cap(sv.scaled) < n {
		sv.scaled = make([]int64, n)
	}
	sv.scaled = sv.scaled[:n]
	return sv.scaled
}

// countsBuf returns a zeroed int scratch slice of length n.
func (sv *Solver) countsBuf(n int) []int {
	if cap(sv.counts) < n {
		sv.counts = make([]int, n)
	}
	sv.counts = sv.counts[:n]
	for i := range sv.counts {
		sv.counts[i] = 0
	}
	return sv.counts
}

// BruteForce solves the same problem by exhaustive enumeration over per-copy
// decisions. It is exponential and exists as the test oracle. Sizes are not
// rounded (exact bytes).
func BruteForce(groups []Group, capacity int64) Solution {
	sol := Solution{Saved: make(map[string]int, len(groups))}
	remaining := capacity
	var opt []Group
	for _, g := range groups {
		sol.TotalUnits += g.Count
		if g.AlwaysSaved {
			remaining -= g.Bytes * int64(g.Count)
			sol.Saved[g.Key] = g.Count
			sol.SavedUnits += g.Count
			sol.SavedBytes += g.Bytes * int64(g.Count)
			continue
		}
		for i := 0; i < g.Count; i++ {
			opt = append(opt, Group{Key: g.Key, FwdTime: g.FwdTime, Bytes: g.Bytes, Count: 1})
		}
	}
	if remaining < 0 {
		return Solution{Saved: sol.Saved, TotalUnits: sol.TotalUnits}
	}
	sol.Feasible = true
	if len(opt) > 24 {
		panic(fmt.Sprintf("recompute: BruteForce limited to 24 optional copies, got %d", len(opt)))
	}
	bestMask, bestVal := 0, -1.0
	for mask := 0; mask < 1<<len(opt); mask++ {
		var bytes int64
		var val float64
		for i, g := range opt {
			if mask&(1<<i) != 0 {
				bytes += g.Bytes
				val += g.FwdTime
			}
		}
		if bytes <= remaining && val > bestVal {
			bestVal = val
			bestMask = mask
		}
	}
	for i, g := range opt {
		if bestMask&(1<<i) != 0 {
			sol.Saved[g.Key]++
			sol.SavedUnits++
			sol.SavedTime += g.FwdTime
			sol.SavedBytes += g.Bytes
		}
	}
	return sol
}

// TotalOptionalTime returns Σ Time_f over all optional copies — the maximum
// possible SavedTime.
func TotalOptionalTime(groups []Group) float64 {
	var t float64
	for _, g := range groups {
		if !g.AlwaysSaved {
			t += g.FwdTime * float64(g.Count)
		}
	}
	return t
}

// SortGroups orders groups deterministically by key (for stable output).
func SortGroups(groups []Group) {
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
}

func roundUp(v, q int64) int64 {
	if q <= 1 {
		return v
	}
	return (v + q - 1) / q * q
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
