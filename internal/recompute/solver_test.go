package recompute

import (
	"math"
	"testing"
)

// TestSolverReuseMatchesOptimize runs one Solver across a sequence of solves
// with growing and shrinking problem sizes and checks each result against a
// fresh package-level Optimize: scratch reuse must be invisible, including
// when a large solve leaves stale bytes behind for a smaller one.
func TestSolverReuseMatchesOptimize(t *testing.T) {
	sv := NewSolver()
	cases := []struct {
		groups   []Group
		capacity int64
	}{
		{[]Group{
			{Key: "a", FwdTime: 3, Bytes: 4, Count: 7},
			{Key: "b", FwdTime: 2, Bytes: 3, Count: 5},
			{Key: "c", FwdTime: 9, Bytes: 8, Count: 2, AlwaysSaved: true},
		}, 40},
		{[]Group{
			{Key: "big", FwdTime: 1.5, Bytes: 64, Count: 31},
			{Key: "mid", FwdTime: 0.5, Bytes: 48, Count: 17},
			{Key: "sml", FwdTime: 0.1, Bytes: 16, Count: 9},
		}, 900},
		{[]Group{
			{Key: "one", FwdTime: 2, Bytes: 5, Count: 1},
		}, 3},
		{[]Group{
			{Key: "zero", FwdTime: 4, Bytes: 0, Count: 3},
			{Key: "fat", FwdTime: 1, Bytes: 1000, Count: 2},
		}, 10},
		{[]Group{
			{Key: "again", FwdTime: 3, Bytes: 4, Count: 7},
			{Key: "more", FwdTime: 2, Bytes: 3, Count: 5},
		}, 25},
	}
	for _, exact := range []bool{true, false} {
		opts := Options{Exact: exact, Quantum: 2}
		for ci, c := range cases {
			got := sv.Optimize(c.groups, c.capacity, opts)
			want := Optimize(c.groups, c.capacity, opts)
			if got.Feasible != want.Feasible {
				t.Fatalf("case %d exact=%v: feasible %v vs %v", ci, exact, got.Feasible, want.Feasible)
			}
			if math.Abs(got.SavedTime-want.SavedTime) > 0 {
				t.Errorf("case %d exact=%v: saved time %g vs %g", ci, exact, got.SavedTime, want.SavedTime)
			}
			if got.SavedBytes != want.SavedBytes || got.SavedUnits != want.SavedUnits {
				t.Errorf("case %d exact=%v: bytes/units %d/%d vs %d/%d",
					ci, exact, got.SavedBytes, got.SavedUnits, want.SavedBytes, want.SavedUnits)
			}
			if got.DPCells != want.DPCells || got.QuantaAfterGCD != want.QuantaAfterGCD {
				t.Errorf("case %d exact=%v: counters differ: %+v vs %+v", ci, exact, got, want)
			}
			for k, v := range want.Saved {
				if got.Saved[k] != v {
					t.Errorf("case %d exact=%v: saved[%s] = %d, want %d", ci, exact, k, got.Saved[k], v)
				}
			}
		}
	}
}

// TestSolverDoesNotAllocateSteadyState pins the point of the Solver: after
// warmup, repeated solves reuse scratch instead of reallocating the DP table
// and choice matrix.
func TestSolverDoesNotAllocateSteadyState(t *testing.T) {
	groups := []Group{
		{Key: "a", FwdTime: 3e-3, Bytes: 50 << 20, Count: 12},
		{Key: "b", FwdTime: 9e-3, Bytes: 51 << 20, Count: 12},
		{Key: "c", FwdTime: 1.2e-2, Bytes: 200 << 20, Count: 12},
		{Key: "d", FwdTime: 3e-3, Bytes: 50 << 20, Count: 12, AlwaysSaved: true},
	}
	sv := NewSolver()
	opts := Options{Quantum: 1 << 20}
	sv.Optimize(groups, 4<<30, opts) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		sv.Optimize(groups, 4<<30, opts)
	})
	// The Solution map and opt slice still allocate; the big scratch must not.
	// Fresh Optimize allocates the full DP table + choice matrix every call.
	fresh := testing.AllocsPerRun(20, func() {
		Optimize(groups, 4<<30, opts)
	})
	if allocs >= fresh {
		t.Errorf("solver reuse allocs/run %.0f, fresh %.0f — scratch not reused", allocs, fresh)
	}
}
