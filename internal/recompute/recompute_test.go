package recompute

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestOptimizeMatchesBruteForce(t *testing.T) {
	groups := []Group{
		{Key: "a", FwdTime: 3, Bytes: 4, Count: 2},
		{Key: "b", FwdTime: 5, Bytes: 7, Count: 1},
		{Key: "c", FwdTime: 2, Bytes: 3, Count: 3},
		{Key: "out", FwdTime: 1, Bytes: 2, Count: 2, AlwaysSaved: true},
	}
	for _, capacity := range []int64{0, 4, 5, 10, 15, 25, 100} {
		got := Optimize(groups, capacity, Options{Exact: true})
		want := BruteForce(groups, capacity)
		if got.Feasible != want.Feasible {
			t.Fatalf("cap %d: feasible %v vs brute %v", capacity, got.Feasible, want.Feasible)
		}
		if !approxEq(got.SavedTime, want.SavedTime) {
			t.Errorf("cap %d: saved time %g, brute force %g", capacity, got.SavedTime, want.SavedTime)
		}
	}
}

func TestOptimizeBruteForceProperty(t *testing.T) {
	f := func(times [4]uint8, sizes [4]uint8, counts [4]uint8, cap16 uint16) bool {
		var groups []Group
		keys := []string{"a", "b", "c", "d"}
		total := 0
		for i := range times {
			c := int(counts[i]%3) + 1
			if total+c > 10 {
				c = 1
			}
			total += c
			groups = append(groups, Group{
				Key:     keys[i],
				FwdTime: float64(times[i]%50) + 1,
				Bytes:   int64(sizes[i]%40) + 1,
				Count:   c,
			})
		}
		capacity := int64(cap16 % 200)
		got := Optimize(groups, capacity, Options{Exact: true})
		want := BruteForce(groups, capacity)
		return got.Feasible == want.Feasible && approxEq(got.SavedTime, want.SavedTime)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolutionInternalConsistency(t *testing.T) {
	f := func(times [3]uint8, sizes [3]uint8, cap16 uint16) bool {
		groups := []Group{
			{Key: "x", FwdTime: float64(times[0]) + 1, Bytes: int64(sizes[0]) + 1, Count: 4},
			{Key: "y", FwdTime: float64(times[1]) + 1, Bytes: int64(sizes[1]) + 1, Count: 3},
			{Key: "z", FwdTime: float64(times[2]) + 1, Bytes: int64(sizes[2]) + 1, Count: 2, AlwaysSaved: true},
		}
		capacity := int64(cap16%2000) + 2*(int64(sizes[2])+1)
		sol := Optimize(groups, capacity, Options{Exact: true})
		if !sol.Feasible {
			return true
		}
		// Reconstruct totals from the Saved map.
		var bytes int64
		var time float64
		units := 0
		for _, g := range groups {
			c := sol.Saved[g.Key]
			if c < 0 || c > g.Count {
				return false
			}
			units += c
			bytes += g.Bytes * int64(c)
			if !g.AlwaysSaved {
				time += g.FwdTime * float64(c)
			}
		}
		return units == sol.SavedUnits && bytes == sol.SavedBytes &&
			approxEq(time, sol.SavedTime) && sol.SavedBytes <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAlwaysSavedOverflow(t *testing.T) {
	groups := []Group{
		{Key: "big", FwdTime: 1, Bytes: 100, Count: 2, AlwaysSaved: true},
		{Key: "opt", FwdTime: 1, Bytes: 1, Count: 1},
	}
	sol := Optimize(groups, 150, Options{Exact: true})
	if sol.Feasible {
		t.Fatal("mandatory units exceed capacity but solution is feasible")
	}
	if sol.TotalUnits != 3 {
		t.Errorf("total units = %d, want 3", sol.TotalUnits)
	}
}

func TestZeroByteUnitsSavedFree(t *testing.T) {
	groups := []Group{
		{Key: "free", FwdTime: 10, Bytes: 0, Count: 5},
		{Key: "paid", FwdTime: 1, Bytes: 10, Count: 1},
	}
	sol := Optimize(groups, 0, Options{Exact: true})
	if !sol.Feasible {
		t.Fatal("infeasible")
	}
	if sol.Saved["free"] != 5 || sol.SavedTime != 50 {
		t.Errorf("zero-byte units not saved for free: %+v", sol)
	}
	if sol.Saved["paid"] != 0 {
		t.Error("paid unit saved with zero budget")
	}
}

func TestMonotoneInCapacity(t *testing.T) {
	groups := []Group{
		{Key: "a", FwdTime: 3, Bytes: 5, Count: 6},
		{Key: "b", FwdTime: 7, Bytes: 11, Count: 4},
		{Key: "c", FwdTime: 2, Bytes: 2, Count: 8},
	}
	prev := -1.0
	for capacity := int64(0); capacity <= 120; capacity += 3 {
		sol := Optimize(groups, capacity, Options{Exact: true})
		if sol.SavedTime < prev {
			t.Fatalf("capacity %d: saved time %g dropped below %g", capacity, sol.SavedTime, prev)
		}
		prev = sol.SavedTime
	}
	// Unlimited capacity saves everything.
	sol := Optimize(groups, 1<<40, Options{Exact: true})
	if sol.SavedTime != TotalOptionalTime(groups) {
		t.Errorf("unlimited capacity saved %g, want %g", sol.SavedTime, TotalOptionalTime(groups))
	}
}

func TestGCDReductionLossless(t *testing.T) {
	// Sizes sharing a large GCD must give identical results with the
	// reduction on and off (§5.3: the reduction is exact).
	groups := []Group{
		{Key: "a", FwdTime: 3, Bytes: 4 << 20, Count: 5},
		{Key: "b", FwdTime: 9, Bytes: 12 << 20, Count: 3},
		{Key: "c", FwdTime: 4, Bytes: 8 << 20, Count: 4},
	}
	for _, capacity := range []int64{10 << 20, 33 << 20, 100 << 20} {
		on := Optimize(groups, capacity, Options{Quantum: 1 << 20})
		off := Optimize(groups, capacity, Options{Quantum: 1 << 20, DisableGCD: true})
		if !approxEq(on.SavedTime, off.SavedTime) {
			t.Errorf("cap %d: GCD on %g vs off %g", capacity, on.SavedTime, off.SavedTime)
		}
	}
}

func TestQuantumRoundingIsConservative(t *testing.T) {
	// With rounding, the chosen set must still fit when sizes are rounded
	// up — i.e. the *rounded* footprint respects capacity, so the true
	// footprint always does.
	f := func(sz [3]uint16, cap32 uint32) bool {
		groups := []Group{
			{Key: "a", FwdTime: 2, Bytes: int64(sz[0]) + 1, Count: 7},
			{Key: "b", FwdTime: 3, Bytes: int64(sz[1]) + 1, Count: 5},
			{Key: "c", FwdTime: 5, Bytes: int64(sz[2]) + 1, Count: 3},
		}
		capacity := int64(cap32 % 100000)
		const q = 128
		sol := Optimize(groups, capacity, Options{Quantum: q})
		if !sol.Feasible {
			return true
		}
		var rounded int64
		for _, g := range groups {
			r := (g.Bytes + q - 1) / q * q
			rounded += r * int64(sol.Saved[g.Key])
		}
		return rounded <= capacity && sol.SavedBytes <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantumNeverBeatsExact(t *testing.T) {
	groups := []Group{
		{Key: "a", FwdTime: 2, Bytes: 100, Count: 7},
		{Key: "b", FwdTime: 3, Bytes: 130, Count: 5},
		{Key: "c", FwdTime: 5, Bytes: 260, Count: 3},
	}
	for _, capacity := range []int64{500, 1000, 2000} {
		exact := Optimize(groups, capacity, Options{Exact: true})
		rounded := Optimize(groups, capacity, Options{Quantum: 128})
		if rounded.SavedTime > exact.SavedTime+1e-9 {
			t.Errorf("cap %d: rounded %g beats exact %g", capacity, rounded.SavedTime, exact.SavedTime)
		}
	}
}

func TestBruteForcePanicsOnLargeInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BruteForce accepted 25 optional copies")
		}
	}()
	BruteForce([]Group{{Key: "a", FwdTime: 1, Bytes: 1, Count: 25}}, 100)
}

func TestSortGroups(t *testing.T) {
	gs := []Group{{Key: "b"}, {Key: "a"}, {Key: "c"}}
	SortGroups(gs)
	if gs[0].Key != "a" || gs[1].Key != "b" || gs[2].Key != "c" {
		t.Errorf("not sorted: %v", gs)
	}
}

func TestTotalOptionalTime(t *testing.T) {
	gs := []Group{
		{Key: "a", FwdTime: 2, Count: 3},
		{Key: "b", FwdTime: 5, Count: 1, AlwaysSaved: true},
	}
	if got := TotalOptionalTime(gs); got != 6 {
		t.Errorf("TotalOptionalTime = %g, want 6", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	sol := Optimize(nil, 100, Options{})
	if !sol.Feasible || sol.SavedUnits != 0 {
		t.Errorf("empty input: %+v", sol)
	}
	sol = Optimize([]Group{{Key: "a", FwdTime: 1, Bytes: 5, Count: 0}}, 100, Options{})
	if !sol.Feasible || sol.SavedUnits != 0 {
		t.Errorf("zero-count group: %+v", sol)
	}
	// Negative capacity with nothing mandatory is infeasible.
	sol = Optimize([]Group{{Key: "a", FwdTime: 1, Bytes: 5, Count: 1}}, -1, Options{})
	if sol.Feasible {
		t.Error("negative capacity feasible")
	}
}

func TestSolutionCountsSearchEffort(t *testing.T) {
	groups := []Group{
		{Key: "a", FwdTime: 3, Bytes: 4096, Count: 4},
		{Key: "b", FwdTime: 5, Bytes: 8192, Count: 2},
	}
	// Capacity below the total footprint forces the DP to run.
	sol := Optimize(groups, 3*4096, Options{Quantum: 4096})
	if !sol.Feasible {
		t.Fatal("infeasible")
	}
	if sol.DPCells <= 0 {
		t.Error("DP ran but DPCells is zero")
	}
	if sol.QuantaBeforeGCD <= 0 || sol.QuantaAfterGCD <= 0 {
		t.Errorf("quanta not counted: before %d, after %d", sol.QuantaBeforeGCD, sol.QuantaAfterGCD)
	}
	if sol.QuantaAfterGCD > sol.QuantaBeforeGCD {
		t.Errorf("GCD reduction grew capacity: %d -> %d", sol.QuantaBeforeGCD, sol.QuantaAfterGCD)
	}

	// Short-circuit paths report no DP work: everything fits.
	sol = Optimize(groups, 1<<40, Options{Quantum: 4096})
	if !sol.Feasible {
		t.Fatal("infeasible at huge capacity")
	}
	if sol.DPCells != 0 || sol.QuantaBeforeGCD != 0 || sol.QuantaAfterGCD != 0 {
		t.Errorf("short-circuited solve reported DP effort: %+v", sol)
	}
}
