package recompute

import (
	"math"
	"testing"
)

// FuzzOptimizeAgainstBruteForce feeds arbitrary small knapsack instances to
// the production solver and the exponential oracle, asserting equal optimal
// values and internally consistent solutions.
func FuzzOptimizeAgainstBruteForce(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2), uint8(7), uint8(1), uint8(5), uint16(20))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint16(0))
	f.Add(uint8(250), uint8(3), uint8(9), uint8(200), uint8(50), uint8(2), uint16(300))
	f.Fuzz(func(t *testing.T, t1, s1, t2, s2, t3, s3 uint8, capacity uint16) {
		groups := []Group{
			{Key: "a", FwdTime: float64(t1%60) + 1, Bytes: int64(s1%50) + 1, Count: 3},
			{Key: "b", FwdTime: float64(t2%60) + 1, Bytes: int64(s2%50) + 1, Count: 2},
			{Key: "c", FwdTime: float64(t3%60) + 1, Bytes: int64(s3%50) + 1, Count: 2, AlwaysSaved: true},
		}
		cap := int64(capacity % 400)
		got := Optimize(groups, cap, Options{Exact: true})
		want := BruteForce(groups, cap)
		if got.Feasible != want.Feasible {
			t.Fatalf("feasibility mismatch: %v vs %v", got.Feasible, want.Feasible)
		}
		if !got.Feasible {
			return
		}
		if math.Abs(got.SavedTime-want.SavedTime) > 1e-9 {
			t.Fatalf("saved time %g, oracle %g", got.SavedTime, want.SavedTime)
		}
		if got.SavedBytes > cap {
			t.Fatalf("solution uses %d bytes over capacity %d", got.SavedBytes, cap)
		}
	})
}
