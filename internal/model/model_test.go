package model

import (
	"strings"
	"testing"
)

func TestGPT3ParamCount(t *testing.T) {
	cfg := GPT3_175B()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := cfg.ParamCount()
	// GPT-3 has ~175 billion parameters.
	if n < 174e9 || n > 177e9 {
		t.Fatalf("GPT-3 param count = %d, want ~175e9", n)
	}
}

func TestLlama2ParamCount(t *testing.T) {
	cfg := Llama2_70B()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := cfg.ParamCount()
	if n < 68e9 || n > 71e9 {
		t.Fatalf("Llama 2 param count = %d, want ~70e9", n)
	}
}

func TestParamCountIsSumOfLayers(t *testing.T) {
	for _, cfg := range []Config{GPT3_175B(), Llama2_70B(), Tiny(3)} {
		var sum int64
		for _, l := range cfg.LayerSequence() {
			sum += cfg.LayerParams(l.Kind)
		}
		if sum != cfg.ParamCount() {
			t.Errorf("%s: layer sum %d != ParamCount %d", cfg.Name, sum, cfg.ParamCount())
		}
	}
}

func TestLayerSequenceStructure(t *testing.T) {
	cfg := Tiny(5)
	seq := cfg.LayerSequence()
	if len(seq) != 2*5+2 {
		t.Fatalf("sequence length = %d, want %d", len(seq), 2*5+2)
	}
	if seq[0].Kind != Embedding {
		t.Errorf("first layer = %v, want Embedding", seq[0].Kind)
	}
	if seq[len(seq)-1].Kind != Head {
		t.Errorf("last layer = %v, want Head", seq[len(seq)-1].Kind)
	}
	for i := 1; i < len(seq)-1; i++ {
		want := Attention
		if i%2 == 0 {
			want = FFN
		}
		if seq[i].Kind != want {
			t.Errorf("layer %d = %v, want %v", i, seq[i].Kind, want)
		}
		if seq[i].Index != i {
			t.Errorf("layer %d has Index %d", i, seq[i].Index)
		}
	}
}

func TestAttentionUnits(t *testing.T) {
	cfg := GPT3_175B()
	units := cfg.Units(Attention)
	kinds := []UnitKind{UnitLayerNorm, UnitQProj, UnitKProj, UnitVProj, UnitCoreAttention, UnitOutProj}
	if len(units) != len(kinds) {
		t.Fatalf("attention has %d units, want %d", len(units), len(kinds))
	}
	for i, u := range units {
		if u.Kind != kinds[i] {
			t.Errorf("unit %d = %v, want %v", i, u.Kind, kinds[i])
		}
		if u.Layer != Attention {
			t.Errorf("unit %d layer = %v", i, u.Layer)
		}
	}
	// Only the output projection is always saved (§4.2).
	for _, u := range units {
		want := u.Kind == UnitOutProj
		if u.AlwaysSaved != want {
			t.Errorf("unit %v AlwaysSaved = %v, want %v", u.Kind, u.AlwaysSaved, want)
		}
	}
}

func TestFFNUnitsGated(t *testing.T) {
	plain := GPT3_175B().Units(FFN)
	gated := Llama2_70B().Units(FFN)
	if len(gated) != len(plain)+1 {
		t.Fatalf("gated FFN has %d units, plain has %d; want exactly one more", len(gated), len(plain))
	}
	found := false
	for _, u := range gated {
		if u.Kind == UnitFFNGate {
			found = true
		}
	}
	if !found {
		t.Error("gated FFN missing UnitFFNGate")
	}
	for _, u := range gated {
		want := u.Kind == UnitFFNDown
		if u.AlwaysSaved != want {
			t.Errorf("unit %v AlwaysSaved = %v, want %v", u.Kind, u.AlwaysSaved, want)
		}
	}
}

func TestEmbeddingAndHeadUnits(t *testing.T) {
	cfg := Tiny(2)
	emb := cfg.Units(Embedding)
	if len(emb) != 1 || emb[0].Kind != UnitEmbedLookup || !emb[0].AlwaysSaved {
		t.Errorf("embedding units = %+v", emb)
	}
	head := cfg.Units(Head)
	if len(head) != 2 || head[0].Kind != UnitHeadNorm || head[1].Kind != UnitHeadProj {
		t.Errorf("head units = %+v", head)
	}
	if !head[1].AlwaysSaved {
		t.Error("head projection must be always saved")
	}
}

func TestKVWidthGQA(t *testing.T) {
	cfg := Llama2_70B()
	if got := cfg.KVWidth(); got != 1024 {
		t.Errorf("Llama 2 KV width = %d, want 1024 (8 KV heads x 128)", got)
	}
	if got := cfg.HeadDim(); got != 128 {
		t.Errorf("Llama 2 head dim = %d, want 128", got)
	}
	mha := GPT3_175B()
	if mha.KVWidth() != mha.Hidden {
		t.Errorf("MHA KV width = %d, want Hidden %d", mha.KVWidth(), mha.Hidden)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Tiny(2)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero layers", func(c *Config) { c.DecoderLayers = 0 }},
		{"zero hidden", func(c *Config) { c.Hidden = 0 }},
		{"zero vocab", func(c *Config) { c.Vocab = 0 }},
		{"zero heads", func(c *Config) { c.Heads = 0 }},
		{"kv heads exceed heads", func(c *Config) { c.KVHeads = c.Heads * 2 }},
		{"heads not multiple of kv", func(c *Config) { c.Heads = 6; c.KVHeads = 4 }},
		{"hidden not divisible by heads", func(c *Config) { c.Hidden = 510 }},
		{"zero bytes per value", func(c *Config) { c.BytesPerValue = 0 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []LayerKind{Embedding, Attention, FFN, Head} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "LayerKind") {
			t.Errorf("LayerKind %d has bad String %q", int(k), s)
		}
	}
	if s := LayerKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown layer kind String = %q", s)
	}
	for k := UnitLayerNorm; k <= UnitHeadProj; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "UnitKind") {
			t.Errorf("UnitKind %d has bad String %q", int(k), s)
		}
	}
	if s := UnitKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown unit kind String = %q", s)
	}
}

func TestUnitsUnknownKind(t *testing.T) {
	if u := Tiny(1).Units(LayerKind(42)); u != nil {
		t.Errorf("unknown layer kind returned units %v", u)
	}
	if n := Tiny(1).LayerParams(LayerKind(42)); n != 0 {
		t.Errorf("unknown layer kind has %d params", n)
	}
}

func TestGatedFFNParamCount(t *testing.T) {
	cfg := Tiny(1)
	plain := cfg.LayerParams(FFN)
	cfg.GatedFFN = true
	gated := cfg.LayerParams(FFN)
	if gated-plain != int64(cfg.Hidden)*int64(cfg.FFNHidden) {
		t.Errorf("gate projection adds %d params, want %d", gated-plain, int64(cfg.Hidden)*int64(cfg.FFNHidden))
	}
}

func TestBERTLarge(t *testing.T) {
	cfg := BERTLarge()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := cfg.ParamCount()
	// BERT-Large is ~340M parameters (ours counts an untied LM head).
	if n < 300e6 || n > 420e6 {
		t.Errorf("BERT-Large param count = %d, want ~340e6", n)
	}
	// Same unit structure as GPT-style decoders (§4.1).
	if len(cfg.Units(Attention)) != len(GPT3_175B().Units(Attention)) {
		t.Error("BERT attention unit division differs from GPT")
	}
}
