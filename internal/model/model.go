// Package model describes transformer architectures at the granularity the
// AdaPipe search engine needs: a sequence of pipeline-partitionable layers
// (Embedding, Attention, Feed-Forward, Decoding Head — paper §5) where each
// Attention/FFN layer splits into the computation units of Figure 4, the
// minimal operator groups that are saved or recomputed together.
package model

import "fmt"

// LayerKind classifies the partitionable layers of §5.
type LayerKind int

const (
	// Embedding is the token-embedding layer at the front of the model.
	Embedding LayerKind = iota
	// Attention is a self-attention sub-layer (with its input LayerNorm and
	// residual connection).
	Attention
	// FFN is a feed-forward sub-layer (with its input LayerNorm and
	// residual connection).
	FFN
	// Head is the final LayerNorm plus vocabulary projection.
	Head
)

// String returns the layer-kind name.
func (k LayerKind) String() string {
	switch k {
	case Embedding:
		return "Embedding"
	case Attention:
		return "Attention"
	case FFN:
		return "FFN"
	case Head:
		return "Head"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Layer is one element of the partitionable layer sequence.
type Layer struct {
	// Kind is the layer class.
	Kind LayerKind
	// Index is the position in the full sequence (0-based).
	Index int
}

// UnitKind classifies computation units within a layer (Figure 4).
type UnitKind int

const (
	// UnitLayerNorm is a pre-attention or pre-FFN LayerNorm (plus the
	// residual addition fused with it).
	UnitLayerNorm UnitKind = iota
	// UnitQProj is the query projection GEMM (plus fused transpose/scale).
	UnitQProj
	// UnitKProj is the key projection GEMM.
	UnitKProj
	// UnitVProj is the value projection GEMM.
	UnitVProj
	// UnitCoreAttention is the fused flash-attention kernel; it saves its
	// output and a small internal log-sum-exp tensor.
	UnitCoreAttention
	// UnitOutProj is the attention output projection GEMM. Its output is
	// the Attention layer's result and is always saved (§4.2 restriction).
	UnitOutProj
	// UnitFFNUp is the first FFN GEMM (hidden → ffn).
	UnitFFNUp
	// UnitFFNGate is the gate GEMM of gated FFNs (SwiGLU, Llama 2 only).
	UnitFFNGate
	// UnitFFNAct is the element-wise activation (GeLU or SiLU·gate).
	UnitFFNAct
	// UnitFFNDown is the second FFN GEMM (ffn → hidden). Its output is the
	// FFN layer's result and is always saved (§4.2 restriction).
	UnitFFNDown
	// UnitEmbedLookup is the embedding table lookup.
	UnitEmbedLookup
	// UnitHeadNorm is the final LayerNorm before the head projection.
	UnitHeadNorm
	// UnitHeadProj is the vocabulary projection GEMM producing logits.
	UnitHeadProj
)

// String returns the unit-kind name.
func (k UnitKind) String() string {
	switch k {
	case UnitLayerNorm:
		return "LayerNorm"
	case UnitQProj:
		return "QProj"
	case UnitKProj:
		return "KProj"
	case UnitVProj:
		return "VProj"
	case UnitCoreAttention:
		return "CoreAttention"
	case UnitOutProj:
		return "OutProj"
	case UnitFFNUp:
		return "FFNUp"
	case UnitFFNGate:
		return "FFNGate"
	case UnitFFNAct:
		return "FFNAct"
	case UnitFFNDown:
		return "FFNDown"
	case UnitEmbedLookup:
		return "EmbedLookup"
	case UnitHeadNorm:
		return "HeadNorm"
	case UnitHeadProj:
		return "HeadProj"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// Unit is one computation unit of a layer.
type Unit struct {
	// Kind is the unit class.
	Kind UnitKind
	// Layer is the kind of the layer the unit belongs to.
	Layer LayerKind
	// AlwaysSaved marks units whose outputs AdaPipe keeps unconditionally:
	// the last GEMM of each Attention and FFN layer (§4.2), the embedding
	// output (the pipeline boundary tensor) and the head output (consumed
	// immediately by the loss).
	AlwaysSaved bool
}

// Config describes a transformer model.
type Config struct {
	// Name identifies the model.
	Name string
	// DecoderLayers is the number of decoder blocks; the partitionable
	// sequence contains one Attention and one FFN layer per block.
	DecoderLayers int
	// Hidden is the model width.
	Hidden int
	// Heads is the attention head count.
	Heads int
	// KVHeads is the key/value head count (grouped-query attention when
	// smaller than Heads; Llama 2 70B uses 8).
	KVHeads int
	// FFNHidden is the feed-forward inner width.
	FFNHidden int
	// Vocab is the vocabulary size.
	Vocab int
	// GatedFFN selects a SwiGLU-style FFN with a gate projection.
	GatedFFN bool
	// BytesPerValue is the activation/parameter element size (2 for fp16).
	BytesPerValue int
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.DecoderLayers <= 0:
		return fmt.Errorf("model: %s: DecoderLayers must be positive", c.Name)
	case c.Hidden <= 0 || c.FFNHidden <= 0 || c.Vocab <= 0:
		return fmt.Errorf("model: %s: dimensions must be positive", c.Name)
	case c.Heads <= 0 || c.KVHeads <= 0 || c.KVHeads > c.Heads:
		return fmt.Errorf("model: %s: need 0 < KVHeads <= Heads", c.Name)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model: %s: Heads must be a multiple of KVHeads", c.Name)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model: %s: Hidden must be divisible by Heads", c.Name)
	case c.BytesPerValue <= 0:
		return fmt.Errorf("model: %s: BytesPerValue must be positive", c.Name)
	}
	return nil
}

// HeadDim returns the per-head width.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// KVWidth returns the total key/value projection width (Hidden scaled by the
// GQA ratio).
func (c Config) KVWidth() int { return c.HeadDim() * c.KVHeads }

// LayerSequence returns the partitionable layer sequence:
// Embedding, (Attention, FFN) × DecoderLayers, Head.
func (c Config) LayerSequence() []Layer {
	seq := make([]Layer, 0, 2*c.DecoderLayers+2)
	seq = append(seq, Layer{Kind: Embedding, Index: 0})
	for i := 0; i < c.DecoderLayers; i++ {
		seq = append(seq, Layer{Kind: Attention, Index: len(seq)})
		seq = append(seq, Layer{Kind: FFN, Index: len(seq)})
	}
	seq = append(seq, Layer{Kind: Head, Index: len(seq)})
	return seq
}

// Units returns the computation units of a layer of the given kind, in
// execution order (Figure 4).
func (c Config) Units(kind LayerKind) []Unit {
	switch kind {
	case Embedding:
		return []Unit{{Kind: UnitEmbedLookup, Layer: Embedding, AlwaysSaved: true}}
	case Attention:
		return []Unit{
			{Kind: UnitLayerNorm, Layer: Attention},
			{Kind: UnitQProj, Layer: Attention},
			{Kind: UnitKProj, Layer: Attention},
			{Kind: UnitVProj, Layer: Attention},
			{Kind: UnitCoreAttention, Layer: Attention},
			{Kind: UnitOutProj, Layer: Attention, AlwaysSaved: true},
		}
	case FFN:
		units := []Unit{
			{Kind: UnitLayerNorm, Layer: FFN},
			{Kind: UnitFFNUp, Layer: FFN},
		}
		if c.GatedFFN {
			units = append(units, Unit{Kind: UnitFFNGate, Layer: FFN})
		}
		units = append(units,
			Unit{Kind: UnitFFNAct, Layer: FFN},
			Unit{Kind: UnitFFNDown, Layer: FFN, AlwaysSaved: true},
		)
		return units
	case Head:
		return []Unit{
			{Kind: UnitHeadNorm, Layer: Head},
			{Kind: UnitHeadProj, Layer: Head, AlwaysSaved: true},
		}
	default:
		return nil
	}
}

// LayerParams returns the parameter count of one layer of the given kind.
func (c Config) LayerParams(kind LayerKind) int64 {
	h := int64(c.Hidden)
	f := int64(c.FFNHidden)
	kv := int64(c.KVWidth())
	v := int64(c.Vocab)
	switch kind {
	case Embedding:
		return v * h
	case Attention:
		// LN + Q + K + V + output projection.
		return 2*h + h*h + 2*h*kv + h*h
	case FFN:
		n := 2*h + h*f + f*h
		if c.GatedFFN {
			n += h * f
		}
		return n
	case Head:
		// Final LN + untied vocabulary projection.
		return 2*h + v*h
	default:
		return 0
	}
}

// ParamCount returns the total parameter count of the model.
func (c Config) ParamCount() int64 {
	var n int64
	for _, l := range c.LayerSequence() {
		n += c.LayerParams(l.Kind)
	}
	return n
}

// GPT3_175B returns the GPT-3 175B configuration evaluated in the paper.
func GPT3_175B() Config {
	return Config{
		Name:          "GPT-3 175B",
		DecoderLayers: 96,
		Hidden:        12288,
		Heads:         96,
		KVHeads:       96,
		FFNHidden:     4 * 12288,
		Vocab:         50257,
		BytesPerValue: 2,
	}
}

// Llama2_70B returns the Llama 2 70B configuration evaluated in the paper
// (grouped-query attention with 8 KV heads and a SwiGLU FFN).
func Llama2_70B() Config {
	return Config{
		Name:          "Llama 2 70B",
		DecoderLayers: 80,
		Hidden:        8192,
		Heads:         64,
		KVHeads:       8,
		FFNHidden:     28672,
		Vocab:         32000,
		GatedFFN:      true,
		BytesPerValue: 2,
	}
}

// BERTLarge returns the BERT-Large configuration. §4.1 notes the Figure 4
// computation-unit division adapts to BERT-style encoders; the planner
// treats it identically (the causal/bidirectional distinction does not
// change unit structure, sizes or FLOPs at this granularity).
func BERTLarge() Config {
	return Config{
		Name:          "BERT-Large",
		DecoderLayers: 24,
		Hidden:        1024,
		Heads:         16,
		KVHeads:       16,
		FFNHidden:     4096,
		Vocab:         30522,
		BytesPerValue: 2,
	}
}

// Tiny returns a small configuration for tests and examples. layers is the
// decoder-block count.
func Tiny(layers int) Config {
	return Config{
		Name:          fmt.Sprintf("Tiny-%dL", layers),
		DecoderLayers: layers,
		Hidden:        512,
		Heads:         8,
		KVHeads:       8,
		FFNHidden:     2048,
		Vocab:         1024,
		BytesPerValue: 2,
	}
}
