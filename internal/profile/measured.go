package profile

import (
	"fmt"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// Measurement is one profiled computation unit, as the paper's search engine
// obtains it from a 5–10 iteration preliminary run (§4.2): forward and
// backward wall time plus the bytes the unit pins when saved.
type Measurement struct {
	// FwdSeconds is the measured forward time of the unit.
	FwdSeconds float64
	// BwdSeconds is the measured backward time (without recomputation).
	BwdSeconds float64
	// SavedBytes is the activation footprint when the unit is saved.
	SavedBytes int64
}

// MeasurementKey identifies a computation unit within a layer kind.
type MeasurementKey struct {
	// Layer is the layer kind.
	Layer model.LayerKind
	// Unit is the unit kind.
	Unit model.UnitKind
}

// FromMeasurements builds a Profile from real profiling data instead of the
// analytical roofline, preserving the paper's deployment path: run a few
// iterations on the actual cluster, record per-unit timestamps and sizes,
// then search. Every unit of every layer kind present in the model must be
// covered. boundaryBytes is the stage-boundary activation payload (per
// micro-batch, per TP rank); commBandwidth/latency may be zero if the
// caller models communication elsewhere.
func FromMeasurements(cfg model.Config, strat parallel.Strategy, seqLen, microBatch int,
	measurements map[MeasurementKey]Measurement, boundaryBytes int64) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := strat.Validate(); err != nil {
		return nil, err
	}
	if seqLen <= 0 || microBatch <= 0 {
		return nil, fmt.Errorf("profile: seqLen and microBatch must be positive (got %d, %d)", seqLen, microBatch)
	}
	if boundaryBytes <= 0 {
		return nil, fmt.Errorf("profile: boundaryBytes must be positive, got %d", boundaryBytes)
	}
	p := &Profile{
		Model:      cfg,
		Device:     hardware.Device{Name: "measured"},
		Strategy:   strat,
		SeqLen:     seqLen,
		MicroBatch: microBatch,
		Layers:     make(map[model.LayerKind]LayerCost, 4),
		CommBytes:  boundaryBytes,
	}
	for _, kind := range []model.LayerKind{model.Embedding, model.Attention, model.FFN, model.Head} {
		lc := LayerCost{Kind: kind, BoundaryBytes: boundaryBytes}
		for _, u := range cfg.Units(kind) {
			m, ok := measurements[MeasurementKey{Layer: kind, Unit: u.Kind}]
			if !ok {
				return nil, fmt.Errorf("profile: missing measurement for %v/%v", kind, u.Kind)
			}
			if m.FwdSeconds <= 0 || m.BwdSeconds <= 0 || m.SavedBytes <= 0 {
				return nil, fmt.Errorf("profile: non-positive measurement for %v/%v: %+v", kind, u.Kind, m)
			}
			uc := UnitCost{Unit: u, FwdTime: m.FwdSeconds, BwdTime: m.BwdSeconds, SavedBytes: m.SavedBytes}
			lc.Units = append(lc.Units, uc)
			lc.FwdTime += uc.FwdTime
			lc.BwdTime += uc.BwdTime
			lc.SavedBytesAll += uc.SavedBytes
			if u.AlwaysSaved {
				lc.SavedBytesMin += uc.SavedBytes
			}
		}
		p.Layers[kind] = lc
	}
	return p, nil
}

// Measurements extracts this profile's unit costs in measurement form — the
// inverse of FromMeasurements, useful for persisting a profile or perturbing
// it in calibration tests.
func (p *Profile) Measurements() map[MeasurementKey]Measurement {
	out := make(map[MeasurementKey]Measurement)
	for kind, lc := range p.Layers {
		for _, uc := range lc.Units {
			out[MeasurementKey{Layer: kind, Unit: uc.Unit.Kind}] = Measurement{
				FwdSeconds: uc.FwdTime,
				BwdSeconds: uc.BwdTime,
				SavedBytes: uc.SavedBytes,
			}
		}
	}
	return out
}
