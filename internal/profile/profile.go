// Package profile synthesizes the per-computation-unit costs the AdaPipe
// search engine consumes: forward time Time_f(U), backward time Time_b(U) and
// the activation bytes Mem(U) a unit occupies when configured as saved (§4.2).
//
// The paper obtains these numbers by profiling 5–10 training iterations on
// the real cluster. Without that hardware, this package derives them
// analytically from a roofline model: dense GEMMs and the fused attention
// kernel are compute-bound (FLOPs / effective FLOP/s) while element-wise
// kernels (LayerNorm, activations, embedding lookup) are bandwidth-bound
// (bytes moved / effective bandwidth). The search only depends on the
// relative cost structure — which units are memory-heavy but cheap to
// recompute — and the roofline reproduces exactly that structure.
package profile

import (
	"fmt"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// UnitCost is the profiled cost of one computation unit.
type UnitCost struct {
	// Unit identifies the computation unit.
	Unit model.Unit
	// FwdTime is the forward execution time in seconds.
	FwdTime float64
	// BwdTime is the gradient-computation time in seconds, excluding any
	// recomputation (the recomputation DP adds FwdTime for recomputed
	// units).
	BwdTime float64
	// SavedBytes is the activation memory the unit pins per micro-batch
	// when configured as saved: its output tensor plus internally saved
	// tensors (e.g. the flash-attention log-sum-exp).
	SavedBytes int64
}

// LayerCost aggregates the unit costs of one layer kind. Transformer layers
// of the same kind are homogeneous (§4), so a single LayerCost describes
// every instance.
type LayerCost struct {
	// Kind is the layer kind the costs describe.
	Kind model.LayerKind
	// Units are the per-unit costs in execution order.
	Units []UnitCost
	// FwdTime is the total forward time of the layer.
	FwdTime float64
	// BwdTime is the total backward time of the layer (no recomputation).
	BwdTime float64
	// SavedBytesAll is the activation memory with every unit saved.
	SavedBytesAll int64
	// SavedBytesMin is the activation memory with only the AlwaysSaved
	// units kept (AdaPipe's maximum-recomputation floor).
	SavedBytesMin int64
	// BoundaryBytes is the size of the layer's output tensor — what
	// classic full recomputation saves, and what flows between pipeline
	// stages at layer boundaries.
	BoundaryBytes int64
}

// Profile holds the synthesized costs for one (model, device, strategy,
// sequence length, micro-batch) tuple.
type Profile struct {
	// Model is the profiled architecture.
	Model model.Config
	// Device is the accelerator model.
	Device hardware.Device
	// Strategy is the 3D parallelism configuration.
	Strategy parallel.Strategy
	// SeqLen is the sequence length in tokens.
	SeqLen int
	// MicroBatch is the micro-batch size in samples.
	MicroBatch int
	// Layers maps each layer kind to its cost description.
	Layers map[model.LayerKind]LayerCost
	// CommBytes is the per-micro-batch activation payload crossing a
	// pipeline-stage boundary (one boundary tensor shard per TP rank).
	CommBytes int64
	// TPBandwidth is the intra-node link bandwidth used for tensor-parallel
	// collectives, bytes/s; zero disables TP communication modeling.
	TPBandwidth float64
}

// New synthesizes a Profile without tensor-parallel communication costs
// (equivalent to NewWithComm with zero bandwidth).
func New(cfg model.Config, dev hardware.Device, strat parallel.Strategy, seqLen, microBatch int) (*Profile, error) {
	return NewWithComm(cfg, dev, strat, seqLen, microBatch, 0)
}

// NewWithComm synthesizes a Profile including tensor-parallel collective
// time. With sequence parallelism each Attention/FFN layer performs one
// all-gather entering and one reduce-scatter leaving its GEMM region, moving
// the full activation tensor with a (t−1)/t ring factor over the intra-node
// links; the backward pass mirrors it. This is what makes very large TP lose
// to mid-size TP in Table 3 despite its smaller bubble ratio.
func NewWithComm(cfg model.Config, dev hardware.Device, strat parallel.Strategy, seqLen, microBatch int, tpBandwidth float64) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if err := strat.Validate(); err != nil {
		return nil, err
	}
	if seqLen <= 0 || microBatch <= 0 {
		return nil, fmt.Errorf("profile: seqLen and microBatch must be positive (got %d, %d)", seqLen, microBatch)
	}
	p := &Profile{
		Model:       cfg,
		Device:      dev,
		Strategy:    strat,
		SeqLen:      seqLen,
		MicroBatch:  microBatch,
		Layers:      make(map[model.LayerKind]LayerCost, 4),
		TPBandwidth: tpBandwidth,
	}
	for _, kind := range []model.LayerKind{model.Embedding, model.Attention, model.FFN, model.Head} {
		p.Layers[kind] = p.layerCost(kind)
	}
	// The boundary tensor between stages is the hidden-state activation,
	// sharded across TP ranks by sequence parallelism.
	p.CommBytes = p.hiddenBytes()
	return p, nil
}

// hiddenBytes is the size of one [micro-batch, seq, hidden] activation shard.
func (p *Profile) hiddenBytes() int64 {
	return int64(p.MicroBatch) * int64(p.SeqLen) * int64(p.Model.Hidden) * int64(p.Model.BytesPerValue) / int64(p.Strategy.TP)
}

// ffnBytes is the size of one [micro-batch, seq, ffn] activation shard.
func (p *Profile) ffnBytes() int64 {
	return int64(p.MicroBatch) * int64(p.SeqLen) * int64(p.Model.FFNHidden) * int64(p.Model.BytesPerValue) / int64(p.Strategy.TP)
}

// kvBytes is the size of one [micro-batch, seq, kv-width] activation shard.
func (p *Profile) kvBytes() int64 {
	return int64(p.MicroBatch) * int64(p.SeqLen) * int64(p.Model.KVWidth()) * int64(p.Model.BytesPerValue) / int64(p.Strategy.TP)
}

// shardEfficiency models how kernel efficiency degrades as tensor
// parallelism shrinks per-rank tensor shapes (§7.3: "smaller TP ... enhances
// the computation efficiency of operators as tensors have larger shapes").
// Each doubling of TP costs about 4%.
func (p *Profile) shardEfficiency() float64 {
	eff := 1.0
	for t := 1; t < p.Strategy.TP; t *= 2 {
		eff *= 0.96
	}
	return eff
}

// gemmTime converts GEMM FLOPs into seconds on the device.
func (p *Profile) gemmTime(flops float64) float64 {
	return flops / (p.Device.EffectiveGEMMFLOPS() * p.shardEfficiency())
}

// attnTime converts fused-attention FLOPs into seconds on the device.
func (p *Profile) attnTime(flops float64) float64 {
	return flops / (p.Device.EffectiveAttnFLOPS() * p.shardEfficiency())
}

// memTime converts bytes moved into seconds on the device.
func (p *Profile) memTime(bytes float64) float64 {
	return bytes / p.Device.EffectiveBandwidth()
}

// unitCost synthesizes the cost of one computation unit.
func (p *Profile) unitCost(u model.Unit) UnitCost {
	b := float64(p.MicroBatch)
	s := float64(p.SeqLen)
	h := float64(p.Model.Hidden)
	f := float64(p.Model.FFNHidden)
	kv := float64(p.Model.KVWidth())
	v := float64(p.Model.Vocab)
	t := float64(p.Strategy.TP)
	elem := float64(p.Model.BytesPerValue)

	c := UnitCost{Unit: u}
	switch u.Kind {
	case model.UnitLayerNorm, model.UnitHeadNorm:
		// Residual add + LayerNorm: read input twice, write output.
		moved := 3 * b * s * h * elem / t
		c.FwdTime = p.memTime(moved)
		c.BwdTime = p.memTime(moved)
		c.SavedBytes = p.hiddenBytes()
	case model.UnitQProj, model.UnitOutProj:
		fl := 2 * b * s * h * h / t
		c.FwdTime = p.gemmTime(fl)
		c.BwdTime = 2 * c.FwdTime // dgrad + wgrad
		c.SavedBytes = p.hiddenBytes()
	case model.UnitKProj, model.UnitVProj:
		fl := 2 * b * s * h * kv / t
		c.FwdTime = p.gemmTime(fl)
		c.BwdTime = 2 * c.FwdTime
		c.SavedBytes = p.kvBytes()
	case model.UnitCoreAttention:
		// QKᵀ and PV batched matmuls: 4·b·s²·h multiply-adds total,
		// causal masking halves the work.
		fl := 4 * b * s * s * h / t / 2
		c.FwdTime = p.attnTime(fl)
		// Flash attention recomputes the score matrix in its own
		// backward, making it ~2.5× the forward.
		c.BwdTime = 2.5 * c.FwdTime
		// Output plus the fp32 log-sum-exp the kernel saves internally.
		lse := b * s * float64(p.Model.Heads) * 4 / t
		c.SavedBytes = p.hiddenBytes() + int64(lse)
	case model.UnitFFNUp, model.UnitFFNGate:
		fl := 2 * b * s * h * f / t
		c.FwdTime = p.gemmTime(fl)
		c.BwdTime = 2 * c.FwdTime
		c.SavedBytes = p.ffnBytes()
	case model.UnitFFNAct:
		reads := 2.0
		if p.Model.GatedFFN {
			reads = 3.0 // up and gate inputs
		}
		moved := reads * b * s * f * elem / t
		c.FwdTime = p.memTime(moved)
		c.BwdTime = p.memTime(moved)
		c.SavedBytes = p.ffnBytes()
	case model.UnitFFNDown:
		fl := 2 * b * s * f * h / t
		c.FwdTime = p.gemmTime(fl)
		c.BwdTime = 2 * c.FwdTime
		c.SavedBytes = p.hiddenBytes()
	case model.UnitEmbedLookup:
		moved := 2 * b * s * h * elem / t
		c.FwdTime = p.memTime(moved)
		c.BwdTime = p.memTime(moved)
		c.SavedBytes = p.hiddenBytes()
	case model.UnitHeadProj:
		fl := 2 * b * s * h * v / t
		c.FwdTime = p.gemmTime(fl)
		c.BwdTime = 2 * c.FwdTime
		// Logits shard; large, but in-flight only at the last stage.
		c.SavedBytes = int64(b * s * v * elem / t)
	}
	return c
}

// tpCommTime returns the per-layer tensor-parallel collective time: one
// all-gather plus one reduce-scatter of the full activation tensor per pass.
func (p *Profile) tpCommTime(kind model.LayerKind) float64 {
	t := p.Strategy.TP
	if p.TPBandwidth <= 0 || t <= 1 {
		return 0
	}
	switch kind {
	case model.Attention, model.FFN, model.Head:
		full := float64(p.MicroBatch) * float64(p.SeqLen) * float64(p.Model.Hidden) * float64(p.Model.BytesPerValue)
		ring := float64(t-1) / float64(t)
		return 2 * full * ring / p.TPBandwidth
	default:
		return 0
	}
}

// layerCost aggregates the unit costs of one layer kind.
func (p *Profile) layerCost(kind model.LayerKind) LayerCost {
	lc := LayerCost{Kind: kind, BoundaryBytes: p.hiddenBytes()}
	for _, u := range p.Model.Units(kind) {
		uc := p.unitCost(u)
		lc.Units = append(lc.Units, uc)
		lc.FwdTime += uc.FwdTime
		lc.BwdTime += uc.BwdTime
		lc.SavedBytesAll += uc.SavedBytes
		if u.AlwaysSaved {
			lc.SavedBytesMin += uc.SavedBytes
		}
	}
	comm := p.tpCommTime(kind)
	lc.FwdTime += comm
	lc.BwdTime += comm
	return lc
}

// RangeFwdTime returns the forward time of a contiguous layer range.
func (p *Profile) RangeFwdTime(layers []model.Layer) float64 {
	var t float64
	for _, l := range layers {
		t += p.Layers[l.Kind].FwdTime
	}
	return t
}

// RangeBwdTime returns the backward time of a contiguous layer range with no
// recomputation.
func (p *Profile) RangeBwdTime(layers []model.Layer) float64 {
	var t float64
	for _, l := range layers {
		t += p.Layers[l.Kind].BwdTime
	}
	return t
}

// CommTime returns the stage-boundary transfer time of one micro-batch
// activation given a link bandwidth and latency.
func (p *Profile) CommTime(bandwidth, latency float64) float64 {
	if bandwidth <= 0 {
		return 0
	}
	return latency + float64(p.CommBytes)/bandwidth
}
