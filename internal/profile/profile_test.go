package profile

import (
	"testing"
	"testing/quick"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

func mustProfile(t *testing.T, cfg model.Config, strat parallel.Strategy, seq int) *Profile {
	t.Helper()
	p, err := New(cfg, hardware.A100(), strat, seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllCostsPositive(t *testing.T) {
	for _, cfg := range []model.Config{model.GPT3_175B(), model.Llama2_70B(), model.Tiny(4)} {
		p := mustProfile(t, cfg, parallel.Strategy{TP: 8, PP: 8, DP: 1}, 4096)
		for kind, lc := range p.Layers {
			if lc.FwdTime <= 0 || lc.BwdTime <= 0 {
				t.Errorf("%s %v: non-positive times %g/%g", cfg.Name, kind, lc.FwdTime, lc.BwdTime)
			}
			if lc.SavedBytesAll <= 0 || lc.BoundaryBytes <= 0 {
				t.Errorf("%s %v: non-positive memory", cfg.Name, kind)
			}
			for _, uc := range lc.Units {
				if uc.FwdTime <= 0 || uc.BwdTime <= 0 || uc.SavedBytes <= 0 {
					t.Errorf("%s %v/%v: non-positive cost", cfg.Name, kind, uc.Unit.Kind)
				}
			}
		}
	}
}

func TestBackwardAtLeastForward(t *testing.T) {
	p := mustProfile(t, model.GPT3_175B(), parallel.Strategy{TP: 8, PP: 8, DP: 1}, 8192)
	for kind, lc := range p.Layers {
		if lc.BwdTime < lc.FwdTime {
			t.Errorf("%v: backward %g < forward %g", kind, lc.BwdTime, lc.FwdTime)
		}
	}
}

func TestSavedMinBelowAll(t *testing.T) {
	p := mustProfile(t, model.GPT3_175B(), parallel.Strategy{TP: 8, PP: 8, DP: 1}, 4096)
	for _, kind := range []model.LayerKind{model.Attention, model.FFN} {
		lc := p.Layers[kind]
		if lc.SavedBytesMin >= lc.SavedBytesAll {
			t.Errorf("%v: min saved %d >= all saved %d", kind, lc.SavedBytesMin, lc.SavedBytesAll)
		}
		if lc.SavedBytesMin <= 0 {
			t.Errorf("%v: no always-saved units", kind)
		}
	}
}

func TestAttentionScalesQuadratically(t *testing.T) {
	strat := parallel.Strategy{TP: 8, PP: 8, DP: 1}
	short := mustProfile(t, model.GPT3_175B(), strat, 4096)
	long := mustProfile(t, model.GPT3_175B(), strat, 8192)
	coreTime := func(p *Profile) float64 {
		for _, uc := range p.Layers[model.Attention].Units {
			if uc.Unit.Kind == model.UnitCoreAttention {
				return uc.FwdTime
			}
		}
		t.Fatal("no core attention unit")
		return 0
	}
	ratio := coreTime(long) / coreTime(short)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("core attention time ratio for 2x sequence = %g, want ~4 (quadratic)", ratio)
	}
	// GEMM units scale linearly.
	gemm := func(p *Profile) float64 {
		for _, uc := range p.Layers[model.Attention].Units {
			if uc.Unit.Kind == model.UnitQProj {
				return uc.FwdTime
			}
		}
		return 0
	}
	ratio = gemm(long) / gemm(short)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("QProj time ratio for 2x sequence = %g, want ~2 (linear)", ratio)
	}
}

func TestTensorParallelShardsMemory(t *testing.T) {
	cfg := model.GPT3_175B()
	t4 := mustProfile(t, cfg, parallel.Strategy{TP: 4, PP: 8, DP: 1}, 4096)
	t8 := mustProfile(t, cfg, parallel.Strategy{TP: 8, PP: 8, DP: 1}, 4096)
	if t8.Layers[model.Attention].SavedBytesAll*2 != t4.Layers[model.Attention].SavedBytesAll {
		t.Errorf("doubling TP should halve attention activation bytes: t4=%d t8=%d",
			t4.Layers[model.Attention].SavedBytesAll, t8.Layers[model.Attention].SavedBytesAll)
	}
	if t8.CommBytes*2 != t4.CommBytes {
		t.Errorf("doubling TP should halve boundary bytes: t4=%d t8=%d", t4.CommBytes, t8.CommBytes)
	}
}

func TestGQAShrinksKVProjections(t *testing.T) {
	p := mustProfile(t, model.Llama2_70B(), parallel.Strategy{TP: 8, PP: 8, DP: 1}, 4096)
	var q, k int64
	for _, uc := range p.Layers[model.Attention].Units {
		switch uc.Unit.Kind {
		case model.UnitQProj:
			q = uc.SavedBytes
		case model.UnitKProj:
			k = uc.SavedBytes
		}
	}
	if k*8 != q {
		t.Errorf("Llama 2 GQA: K bytes %d, Q bytes %d, want 1:8 ratio", k, q)
	}
}

func TestCommTime(t *testing.T) {
	p := mustProfile(t, model.GPT3_175B(), parallel.Strategy{TP: 8, PP: 8, DP: 1}, 4096)
	if got := p.CommTime(0, 1e-6); got != 0 {
		t.Errorf("zero-bandwidth comm time = %g, want 0", got)
	}
	ct := p.CommTime(100e9, 5e-6)
	if ct <= 5e-6 {
		t.Errorf("comm time %g should exceed the latency", ct)
	}
	want := 5e-6 + float64(p.CommBytes)/100e9
	if ct != want {
		t.Errorf("comm time = %g, want %g", ct, want)
	}
}

func TestTPCommunicationCost(t *testing.T) {
	cfg := model.GPT3_175B()
	noComm, err := New(cfg, hardware.A100(), parallel.Strategy{TP: 8, PP: 8, DP: 1}, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	withComm, err := NewWithComm(cfg, hardware.A100(), parallel.Strategy{TP: 8, PP: 8, DP: 1}, 4096, 1, 300e9)
	if err != nil {
		t.Fatal(err)
	}
	if withComm.Layers[model.Attention].FwdTime <= noComm.Layers[model.Attention].FwdTime {
		t.Error("TP collectives should add forward time")
	}
	// TP=1 pays no collective cost even with bandwidth configured.
	tp1, err := NewWithComm(cfg, hardware.A100(), parallel.Strategy{TP: 1, PP: 8, DP: 8}, 4096, 1, 300e9)
	if err != nil {
		t.Fatal(err)
	}
	tp1Plain, err := New(cfg, hardware.A100(), parallel.Strategy{TP: 1, PP: 8, DP: 8}, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tp1.Layers[model.FFN].FwdTime != tp1Plain.Layers[model.FFN].FwdTime {
		t.Error("TP=1 should pay no collective cost")
	}
}

func TestRangeTimes(t *testing.T) {
	p := mustProfile(t, model.Tiny(4), parallel.Strategy{TP: 1, PP: 2, DP: 1}, 1024)
	seq := model.Tiny(4).LayerSequence()
	full := p.RangeFwdTime(seq)
	var sum float64
	for _, l := range seq {
		sum += p.Layers[l.Kind].FwdTime
	}
	if full != sum {
		t.Errorf("RangeFwdTime = %g, want %g", full, sum)
	}
	if p.RangeBwdTime(seq) <= full {
		t.Error("range backward should exceed range forward")
	}
	if p.RangeFwdTime(nil) != 0 {
		t.Error("empty range has non-zero time")
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	cfg := model.Tiny(2)
	if _, err := New(cfg, hardware.A100(), parallel.Strategy{TP: 1, PP: 1, DP: 1}, 0, 1); err == nil {
		t.Error("zero sequence accepted")
	}
	if _, err := New(cfg, hardware.A100(), parallel.Strategy{TP: 1, PP: 1, DP: 1}, 128, 0); err == nil {
		t.Error("zero micro-batch accepted")
	}
	if _, err := New(cfg, hardware.A100(), parallel.Strategy{TP: 0, PP: 1, DP: 1}, 128, 1); err == nil {
		t.Error("invalid strategy accepted")
	}
	bad := cfg
	bad.Hidden = 0
	if _, err := New(bad, hardware.A100(), parallel.Strategy{TP: 1, PP: 1, DP: 1}, 128, 1); err == nil {
		t.Error("invalid model accepted")
	}
	dev := hardware.A100()
	dev.PeakFLOPS = 0
	if _, err := New(cfg, dev, parallel.Strategy{TP: 1, PP: 1, DP: 1}, 128, 1); err == nil {
		t.Error("invalid device accepted")
	}
}

// Property: sequence length scaling never reduces any cost, over a grid of
// random sequence lengths and TP sizes.
func TestMonotoneInSequenceLength(t *testing.T) {
	cfg := model.Tiny(2)
	f := func(a, b uint8, tpSel uint8) bool {
		s1 := 64 * (1 + int(a%16))
		s2 := 64 * (1 + int(b%16))
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		tp := 1 << (tpSel % 3)
		strat := parallel.Strategy{TP: tp, PP: 2, DP: 1}
		p1, err1 := New(cfg, hardware.A100(), strat, s1, 1)
		p2, err2 := New(cfg, hardware.A100(), strat, s2, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, kind := range []model.LayerKind{model.Attention, model.FFN} {
			if p2.Layers[kind].FwdTime < p1.Layers[kind].FwdTime {
				return false
			}
			if p2.Layers[kind].SavedBytesAll < p1.Layers[kind].SavedBytesAll {
				return false
			}
		}
		return p2.CommBytes >= p1.CommBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromMeasurementsRoundTrip(t *testing.T) {
	cfg := model.Tiny(2)
	strat := parallel.Strategy{TP: 1, PP: 2, DP: 1}
	analytic := mustProfile(t, cfg, strat, 1024)
	measured, err := FromMeasurements(cfg, strat, 1024, 1, analytic.Measurements(), analytic.CommBytes)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []model.LayerKind{model.Embedding, model.Attention, model.FFN, model.Head} {
		a, m := analytic.Layers[kind], measured.Layers[kind]
		if a.FwdTime != m.FwdTime || a.BwdTime != m.BwdTime {
			t.Errorf("%v: times not round-tripped", kind)
		}
		if a.SavedBytesAll != m.SavedBytesAll || a.SavedBytesMin != m.SavedBytesMin {
			t.Errorf("%v: memory not round-tripped", kind)
		}
	}
}

func TestFromMeasurementsValidation(t *testing.T) {
	cfg := model.Tiny(2)
	strat := parallel.Strategy{TP: 1, PP: 2, DP: 1}
	analytic := mustProfile(t, cfg, strat, 1024)
	full := analytic.Measurements()

	// Missing unit.
	partial := map[MeasurementKey]Measurement{}
	for k, v := range full {
		partial[k] = v
	}
	delete(partial, MeasurementKey{Layer: model.Attention, Unit: model.UnitQProj})
	if _, err := FromMeasurements(cfg, strat, 1024, 1, partial, analytic.CommBytes); err == nil {
		t.Error("missing measurement accepted")
	}
	// Non-positive measurement.
	bad := map[MeasurementKey]Measurement{}
	for k, v := range full {
		bad[k] = v
	}
	k := MeasurementKey{Layer: model.FFN, Unit: model.UnitFFNUp}
	m := bad[k]
	m.FwdSeconds = 0
	bad[k] = m
	if _, err := FromMeasurements(cfg, strat, 1024, 1, bad, analytic.CommBytes); err == nil {
		t.Error("zero forward time accepted")
	}
	if _, err := FromMeasurements(cfg, strat, 1024, 1, full, 0); err == nil {
		t.Error("zero boundary bytes accepted")
	}
	if _, err := FromMeasurements(cfg, strat, 0, 1, full, 1); err == nil {
		t.Error("zero sequence accepted")
	}
}
