package train

import "adapipe/internal/tensor"

// Corpus is a deterministic synthetic character stream standing in for the
// paper's Enwik8 dataset: a second-order Markov chain over a small alphabet
// with word- and sentence-like structure, so a language model has real
// statistical signal to learn (the loss curve of Figure 10 must actually
// descend).
type Corpus struct {
	// Vocab is the alphabet size.
	Vocab int
	data  []int
}

// NewCorpus synthesizes length tokens over the given vocabulary.
func NewCorpus(vocab, length int, seed uint64) *Corpus {
	rng := tensor.NewRNG(seed)
	c := &Corpus{Vocab: vocab, data: make([]int, length)}
	// Build a sparse bigram transition table: each (prev, cur) context
	// prefers a small set of successors, giving learnable structure.
	succ := make([][]int, vocab*vocab)
	for i := range succ {
		k := 2 + rng.Intn(3)
		succ[i] = make([]int, k)
		for j := range succ[i] {
			succ[i][j] = rng.Intn(vocab)
		}
	}
	prev, cur := 0, 1%vocab
	for i := range c.data {
		var next int
		if rng.Float64() < 0.9 {
			s := succ[prev*vocab+cur]
			next = s[rng.Intn(len(s))]
		} else {
			next = rng.Intn(vocab)
		}
		c.data[i] = next
		prev, cur = cur, next
	}
	return c
}

// Len returns the token count.
func (c *Corpus) Len() int { return len(c.data) }

// Sample returns a (input, target) pair of length seq starting at a
// deterministic pseudo-random offset drawn from rng.
func (c *Corpus) Sample(seq int, rng *tensor.RNG) (tokens, targets []int) {
	if seq+1 > len(c.data) {
		panic("train: corpus shorter than sequence length")
	}
	off := rng.Intn(len(c.data) - seq - 1)
	tokens = c.data[off : off+seq]
	targets = c.data[off+1 : off+seq+1]
	return tokens, targets
}

// Batch is one micro-batch of token sequences (micro-batch size 1, matching
// the paper's setting: one sequence per micro-batch).
type Batch struct {
	// Tokens is the input sequence.
	Tokens []int
	// Targets is the next-token target sequence.
	Targets []int
}

// Batches draws n micro-batches.
func (c *Corpus) Batches(n, seq int, rng *tensor.RNG) []Batch {
	out := make([]Batch, n)
	for i := range out {
		tok, tgt := c.Sample(seq, rng)
		out[i] = Batch{Tokens: tok, Targets: tgt}
	}
	return out
}
