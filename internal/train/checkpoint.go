package train

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"adapipe/internal/tensor"
)

// checkpointFile is the serialized form of a network's parameters and the
// per-stage optimizer states, keyed by parameter name so a checkpoint can be
// restored into a re-partitioned network (the stage layout does not affect
// which parameters exist).
type checkpointFile struct {
	Step   int
	Params map[string]checkpointTensor
	AdamM  map[string]checkpointTensor
	AdamV  map[string]checkpointTensor
}

type checkpointTensor struct {
	Rows, Cols int
	Data       []float64
}

func toCheckpoint(m *tensor.Mat) checkpointTensor {
	return checkpointTensor{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

func (c checkpointTensor) restoreInto(m *tensor.Mat) error {
	if m.Rows != c.Rows || m.Cols != c.Cols {
		return fmt.Errorf("train: checkpoint tensor is %dx%d, target is %dx%d", c.Rows, c.Cols, m.Rows, m.Cols)
	}
	copy(m.Data, c.Data)
	return nil
}

// SaveCheckpoint serializes the pipeline's parameters and optimizer states.
// step records how many optimizer steps have been applied (Adam bias
// correction depends on it).
func (p *Pipeline) SaveCheckpoint(w io.Writer, step int) error {
	ck := checkpointFile{
		Step:   step,
		Params: map[string]checkpointTensor{},
		AdamM:  map[string]checkpointTensor{},
		AdamV:  map[string]checkpointTensor{},
	}
	for si, stage := range p.Stages {
		opt := p.opts[si]
		for pi, param := range stage.Params() {
			if _, dup := ck.Params[param.Name]; dup {
				return fmt.Errorf("train: duplicate parameter name %q", param.Name)
			}
			ck.Params[param.Name] = toCheckpoint(param.W)
			ck.AdamM[param.Name] = toCheckpoint(opt.m[pi])
			ck.AdamV[param.Name] = toCheckpoint(opt.v[pi])
		}
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadCheckpoint restores parameters and optimizer states saved by
// SaveCheckpoint. The pipeline may be partitioned differently from the one
// that saved the checkpoint; parameters are matched by name and every
// parameter must be present.
func (p *Pipeline) LoadCheckpoint(r io.Reader) (step int, err error) {
	var ck checkpointFile
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("train: decoding checkpoint: %w", err)
	}
	for si, stage := range p.Stages {
		opt := p.opts[si]
		for pi, param := range stage.Params() {
			w, ok := ck.Params[param.Name]
			if !ok {
				return 0, fmt.Errorf("train: checkpoint missing parameter %q", param.Name)
			}
			if err := w.restoreInto(param.W); err != nil {
				return 0, err
			}
			if err := ck.AdamM[param.Name].restoreInto(opt.m[pi]); err != nil {
				return 0, err
			}
			if err := ck.AdamV[param.Name].restoreInto(opt.v[pi]); err != nil {
				return 0, err
			}
			param.G.Zero()
		}
		opt.step = ck.Step
	}
	return ck.Step, nil
}

// CheckpointBytes is a convenience wrapper returning the serialized
// checkpoint as a byte slice.
func (p *Pipeline) CheckpointBytes(step int) ([]byte, error) {
	var buf bytes.Buffer
	if err := p.SaveCheckpoint(&buf, step); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
