package train

import (
	"math"
	"testing"

	"adapipe/internal/tensor"
)

func mkReplica(t *testing.T, cfg Config, bounds []int, lr float64) func() (*Pipeline, error) {
	t.Helper()
	return func() (*Pipeline, error) {
		net, err := NewNet(cfg)
		if err != nil {
			return nil, err
		}
		stages, err := Split(net, bounds, nil)
		if err != nil {
			return nil, err
		}
		return NewPipeline(stages, lr), nil
	}
}

func TestDataParallelMatchesSingleReplica(t *testing.T) {
	cfg := Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 13}
	const lr = 2e-3
	corpus := NewCorpus(cfg.Vocab, 1<<14, 9)

	dp1, err := NewDataParallel(1, mkReplica(t, cfg, []int{0, 3, 6}, lr))
	if err != nil {
		t.Fatal(err)
	}
	dp2, err := NewDataParallel(2, mkReplica(t, cfg, []int{0, 3, 6}, lr))
	if err != nil {
		t.Fatal(err)
	}
	rngA := tensor.NewRNG(5)
	rngB := tensor.NewRNG(5)
	for step := 0; step < 5; step++ {
		batches1 := corpus.Batches(8, cfg.Seq, rngA)
		batches2 := corpus.Batches(8, cfg.Seq, rngB)
		l1, err := dp1.Step(batches1)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := dp2.Step(batches2)
		if err != nil {
			t.Fatal(err)
		}
		// Same global batch: identical mean loss; parameters agree up to
		// gradient-summation reassociation.
		if math.Abs(l1-l2) > 1e-12 {
			t.Fatalf("step %d: DP1 loss %.17g, DP2 loss %.17g", step, l1, l2)
		}
	}
	p1 := paramsOf(dp1.Replicas[0])
	p2 := paramsOf(dp2.Replicas[0])
	for i := range p1 {
		if d := tensor.MaxAbsDiff(p1[i].W, p2[i].W); d > 1e-9 {
			t.Fatalf("param %s diverged by %g between DP=1 and DP=2", p1[i].Name, d)
		}
	}
}

func TestDataParallelReplicasStayInSync(t *testing.T) {
	cfg := Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 21}
	dp, err := NewDataParallel(4, mkReplica(t, cfg, []int{0, 6}, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if got := dp.InSync(); got != 0 {
		t.Fatalf("replicas differ at initialization: %g", got)
	}
	corpus := NewCorpus(cfg.Vocab, 1<<14, 2)
	rng := tensor.NewRNG(3)
	for step := 0; step < 4; step++ {
		if _, err := dp.Step(corpus.Batches(8, cfg.Seq, rng)); err != nil {
			t.Fatal(err)
		}
	}
	// Synchronous all-reduce keeps parameters bit-identical across
	// replicas (every replica applies the same summed gradient).
	if got := dp.InSync(); got != 0 {
		t.Fatalf("replicas diverged after training: %g", got)
	}
}

func TestDataParallelValidation(t *testing.T) {
	cfg := Config{Layers: 1, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 1}
	if _, err := NewDataParallel(0, mkReplica(t, cfg, []int{0, 4}, 1e-3)); err == nil {
		t.Error("zero replicas accepted")
	}
	dp, err := NewDataParallel(2, mkReplica(t, cfg, []int{0, 4}, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(cfg.Vocab, 1<<12, 1)
	rng := tensor.NewRNG(1)
	if _, err := dp.Step(corpus.Batches(3, cfg.Seq, rng)); err == nil {
		t.Error("non-divisible batch count accepted")
	}
	// Mismatched replica construction is rejected.
	alt := cfg
	alt.Dim = 32
	calls := 0
	mixed := func() (*Pipeline, error) {
		calls++
		use := cfg
		if calls > 1 {
			use = alt
		}
		net, err := NewNet(use)
		if err != nil {
			return nil, err
		}
		stages, err := Split(net, []int{0, 4}, nil)
		if err != nil {
			return nil, err
		}
		return NewPipeline(stages, 1e-3), nil
	}
	if _, err := NewDataParallel(2, mixed); err == nil {
		t.Error("mismatched replicas accepted")
	}
}
