package train

import (
	"fmt"

	"adapipe/internal/model"
	"adapipe/internal/tensor"
)

// Config sizes the trainable micro-transformer.
type Config struct {
	// Layers is the decoder-block count (each block = Attention + FFN).
	Layers int
	// Dim is the model width.
	Dim int
	// Heads is the attention head count.
	Heads int
	// FFN is the feed-forward inner width.
	FFN int
	// Vocab is the vocabulary size.
	Vocab int
	// Seq is the training sequence length.
	Seq int
	// GatedFFN selects SwiGLU feed-forward blocks (Llama-2 style).
	GatedFFN bool
	// Seed seeds parameter initialization; identical seeds give identical
	// parameters regardless of how the network is later partitioned.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.Dim <= 0 || c.Heads <= 0 || c.FFN <= 0 || c.Vocab <= 0 || c.Seq <= 0:
		return fmt.Errorf("train: all dimensions must be positive: %+v", c)
	case c.Dim%c.Heads != 0:
		return fmt.Errorf("train: Dim %d must be divisible by Heads %d", c.Dim, c.Heads)
	}
	return nil
}

// Net is the complete micro-transformer.
type Net struct {
	// Cfg echoes the construction config.
	Cfg Config
	// Embed is the token+position embedding.
	Embed *Embedding
	// Blocks alternates Attention and FFN sub-layers (2×Layers entries).
	Blocks []Block
	// HeadLN is the final LayerNorm.
	HeadLN *LayerNorm
	// HeadProj is the vocabulary projection.
	HeadProj *Linear
}

// NewNet builds and initializes the network. Each component draws from its
// own deterministic RNG stream derived from (seed, component index), so
// parameters do not depend on construction order or partitioning.
func NewNet(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream := func(i int) *tensor.RNG { return tensor.NewRNG(cfg.Seed*1000003 + uint64(i)*97 + 1) }
	n := &Net{Cfg: cfg}
	n.Embed = NewEmbedding("embed", cfg.Vocab, cfg.Seq, cfg.Dim, 0.02, stream(0))
	for i := 0; i < cfg.Layers; i++ {
		n.Blocks = append(n.Blocks, NewAttnBlock(fmt.Sprintf("b%d.attn", i), cfg.Dim, cfg.Heads, stream(1+2*i)))
		if cfg.GatedFFN {
			n.Blocks = append(n.Blocks, NewGatedFFNBlock(fmt.Sprintf("b%d.ffn", i), cfg.Dim, cfg.FFN, stream(2+2*i)))
		} else {
			n.Blocks = append(n.Blocks, NewFFNBlock(fmt.Sprintf("b%d.ffn", i), cfg.Dim, cfg.FFN, stream(2+2*i)))
		}
	}
	n.HeadLN = NewLayerNorm("head.ln", cfg.Dim)
	n.HeadProj = NewLinear("head.proj", cfg.Dim, cfg.Vocab, 0.02, stream(1+2*cfg.Layers))
	return n, nil
}

// Params returns every trainable parameter.
func (n *Net) Params() []*Param {
	ps := n.Embed.Params()
	for _, b := range n.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, n.HeadLN.Params()...)
	ps = append(ps, n.HeadProj.Params()...)
	return ps
}

// LayerSequence returns the partitionable layer sequence matching
// model.Config.LayerSequence for the same decoder count, so core.Plan layer
// ranges map 1:1 onto engine stages.
func (n *Net) LayerSequence() []model.Layer {
	seq := []model.Layer{{Kind: model.Embedding, Index: 0}}
	for i, b := range n.Blocks {
		seq = append(seq, model.Layer{Kind: b.Kind(), Index: i + 1})
	}
	seq = append(seq, model.Layer{Kind: model.Head, Index: len(seq)})
	return seq
}

// Stage owns a contiguous slice of the network: optionally the embedding,
// a run of blocks, and optionally the head.
type Stage struct {
	// Index is the pipeline stage id.
	Index int
	// Embed is non-nil on the first stage.
	Embed *Embedding
	// Blocks are the decoder sub-layers of the stage.
	Blocks []Block
	// Saves holds one SaveSpec per block (the stage's recomputation
	// strategy from the planner).
	Saves []SaveSpec
	// HeadLN and HeadProj are non-nil on the last stage.
	HeadLN   *LayerNorm
	HeadProj *Linear
	// SaveHeadLN keeps the head LayerNorm input/stats instead of
	// recomputing them.
	SaveHeadLN bool
}

// Params returns the stage's trainable parameters.
func (s *Stage) Params() []*Param {
	var ps []*Param
	if s.Embed != nil {
		ps = append(ps, s.Embed.Params()...)
	}
	for _, b := range s.Blocks {
		ps = append(ps, b.Params()...)
	}
	if s.HeadLN != nil {
		ps = append(ps, s.HeadLN.Params()...)
	}
	if s.HeadProj != nil {
		ps = append(ps, s.HeadProj.Params()...)
	}
	return ps
}

// StageCtx is the saved state of one micro-batch's forward pass through a
// stage.
type StageCtx struct {
	tokens []int
	input  *tensor.Mat // boundary input for non-first stages
	blocks []BlockCtx
	// head state (last stage only)
	headIn   *tensor.Mat
	headLn   *tensor.Mat
	headLnSt *lnCtx
	logits   *tensor.Mat
}

// SavedBytes reports the activation memory the context pins.
func (c *StageCtx) SavedBytes() int64 {
	var n int64
	if c.input != nil {
		n += c.input.Bytes()
	}
	for _, b := range c.blocks {
		n += b.SavedBytes()
	}
	for _, m := range []*tensor.Mat{c.headIn, c.headLn, c.logits} {
		if m != nil {
			n += m.Bytes()
		}
	}
	return n
}

// Forward runs one micro-batch through the stage. The first stage consumes
// tokens; later stages consume the boundary activation x. The last stage
// returns logits.
func (s *Stage) Forward(tokens []int, x *tensor.Mat) (*tensor.Mat, *StageCtx) {
	ctx := &StageCtx{tokens: tokens}
	if s.Embed != nil {
		x = s.Embed.Forward(tokens)
	} else {
		ctx.input = x
	}
	ctx.blocks = make([]BlockCtx, len(s.Blocks))
	for i, b := range s.Blocks {
		x, ctx.blocks[i] = b.Forward(x, s.Saves[i])
	}
	if s.HeadProj != nil {
		ctx.headIn = x
		ln, st := s.HeadLN.Forward(x)
		if s.SaveHeadLN {
			ctx.headLn, ctx.headLnSt = ln, &st
		}
		logits := s.HeadProj.Forward(ln)
		ctx.logits = logits
		return logits, ctx
	}
	return x, ctx
}

// Backward propagates dy through the stage, accumulating parameter gradients
// and returning the gradient of the stage input (nil on the first stage).
func (s *Stage) Backward(ctx *StageCtx, dy *tensor.Mat) *tensor.Mat {
	if s.HeadProj != nil {
		ln, lnSt := ctx.headLn, ctx.headLnSt
		if ln == nil {
			l, st := s.HeadLN.Forward(ctx.headIn)
			ln, lnSt = l, &st
		}
		dln := s.HeadProj.Backward(ln, dy)
		dy = s.HeadLN.Backward(*lnSt, dln)
	}
	for i := len(s.Blocks) - 1; i >= 0; i-- {
		dy = s.Blocks[i].Backward(ctx.blocks[i], dy)
	}
	if s.Embed != nil {
		s.Embed.Backward(ctx.tokens, dy)
		return nil
	}
	return dy
}

// Split partitions the network into p stages at the given layer bounds
// (p+1 entries over the LayerSequence indices, as produced by the planner or
// partition.Even). saves supplies one SaveSpec per block per stage; nil
// means save everything.
func Split(n *Net, bounds []int, saves [][]SaveSpec) ([]*Stage, error) {
	seq := n.LayerSequence()
	p := len(bounds) - 1
	if bounds[0] != 0 || bounds[p] != len(seq) {
		return nil, fmt.Errorf("train: bounds must span the %d-layer sequence, got %v", len(seq), bounds)
	}
	stages := make([]*Stage, p)
	for s := 0; s < p; s++ {
		if bounds[s+1] <= bounds[s] {
			return nil, fmt.Errorf("train: stage %d is empty (bounds %v)", s, bounds)
		}
		st := &Stage{Index: s, SaveHeadLN: true}
		blockIdx := 0
		for li := bounds[s]; li < bounds[s+1]; li++ {
			switch seq[li].Kind {
			case model.Embedding:
				st.Embed = n.Embed
			case model.Head:
				st.HeadLN = n.HeadLN
				st.HeadProj = n.HeadProj
			default:
				// Block index in n.Blocks is li-1 (embedding first).
				st.Blocks = append(st.Blocks, n.Blocks[li-1])
				var spec SaveSpec
				if saves != nil && s < len(saves) && blockIdx < len(saves[s]) {
					spec = saves[s][blockIdx]
				}
				if spec == nil {
					spec = SaveAll()
				}
				st.Saves = append(st.Saves, spec)
				blockIdx++
			}
		}
		stages[s] = st
	}
	return stages, nil
}
