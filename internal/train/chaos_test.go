package train

import (
	"bytes"
	"errors"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"adapipe/internal/fault"
	"adapipe/internal/tensor"
)

// chaosCfg is the shared toy model for the fault-injection tests: 2 decoder
// layers (layer sequence length 6), 3 stages.
var chaosCfg = Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 5}

func chaosBatches(t *testing.T, n int) []Batch {
	t.Helper()
	corpus := NewCorpus(chaosCfg.Vocab, 1<<14, 11)
	return corpus.Batches(n, chaosCfg.Seq, tensor.NewRNG(3))
}

// TestChaosPanicMidIterationReturnsError is the regression test for the
// live deadlock bug: a stage panicking mid-iteration must cancel its peers
// and surface as an error, not hang wg.Wait forever. The watchdog is only a
// backstop here — cancellation alone must unblock everything long before it.
func TestChaosPanicMidIterationReturnsError(t *testing.T) {
	pipe := buildPipe(t, chaosCfg, []int{0, 2, 4, 6})
	pipe.Fault = fault.MustNew(1, fault.On(fault.Panic).AtStage(1).AtMicro(1).OnPhase(fault.PhaseBackward))
	pipe.Watchdog = 10 * time.Second

	start := time.Now()
	_, err := pipe.Accumulate(chaosBatches(t, 4))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Accumulate succeeded despite an injected stage panic")
	}
	if !strings.Contains(err.Error(), "fault: injected panic") {
		t.Fatalf("error %q does not identify the injected panic", err)
	}
	if errors.Is(err, ErrWatchdog) {
		t.Fatalf("panic was only caught by the watchdog backstop: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s; peers were not unblocked promptly", elapsed)
	}
}

// TestChaosWatchdogTrips: a straggler delay far beyond the watchdog budget
// cancels the iteration with ErrWatchdog, and the cancellable injector sleep
// means the call returns in watchdog time, not delay time.
func TestChaosWatchdogTrips(t *testing.T) {
	pipe := buildPipe(t, chaosCfg, []int{0, 3, 6})
	pipe.Fault = fault.MustNew(1, fault.On(fault.Straggler).AtStage(0).AtMicro(0).WithDelay(time.Minute))
	pipe.Watchdog = 100 * time.Millisecond

	start := time.Now()
	_, err := pipe.Accumulate(chaosBatches(t, 4))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("watchdog return took %s; the injected delay was not cancelled", elapsed)
	}
}

// TestChaosRetryBitIdentical: with retry enabled, a run whose step is killed
// by a transient panic converges to bit-identical losses as a fault-free run
// of the same DataSeed — retry restores the snapshot and replays the same
// batches, and the transient rule does not re-fire on the retry attempt.
func TestChaosRetryBitIdentical(t *testing.T) {
	rc := RunConfig{
		Net: chaosCfg, Bounds: []int{0, 2, 4, 6},
		Steps: 5, MicroBatches: 4, LR: 2e-3, DataSeed: 17,
	}
	clean, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}

	faulted := rc
	faulted.Fault = fault.MustNew(1, fault.On(fault.Panic).AtStage(2).AtAttempt(2))
	faulted.Watchdog = 10 * time.Second
	faulted.Recovery = Recovery{MaxRetries: 2}
	res, err := Run(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.Panics != 1 || res.Fault.Retries != 1 {
		t.Fatalf("fault counters = %+v, want 1 panic and 1 retry", res.Fault)
	}
	if len(res.Losses) != len(clean.Losses) {
		t.Fatalf("faulted run has %d losses, clean run %d", len(res.Losses), len(clean.Losses))
	}
	for i := range clean.Losses {
		if res.Losses[i] != clean.Losses[i] {
			t.Fatalf("step %d: faulted loss %v != clean loss %v", i, res.Losses[i], clean.Losses[i])
		}
	}
}

// TestNonFiniteGuardSkipsStep: an injected NaN/Inf corruption with no retry
// budget makes the guard skip the optimizer step — the run completes, the
// poisoned step's loss is recorded as non-finite, and parameters continue
// from the last good step (later losses are finite again).
func TestNonFiniteGuardSkipsStep(t *testing.T) {
	rc := RunConfig{
		Net: chaosCfg, Bounds: []int{0, 3, 6},
		Steps: 4, MicroBatches: 4, LR: 2e-3, DataSeed: 23,
		Fault:    fault.MustNew(1, fault.On(fault.Corrupt).AtStage(1).AtAttempt(1).OnPhase(fault.PhaseForward)),
		Recovery: Recovery{GuardNonFinite: true},
	}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.SkippedSteps != 1 {
		t.Fatalf("skipped steps = %d, want 1", res.Fault.SkippedSteps)
	}
	if res.Fault.Corruptions == 0 {
		t.Fatal("no corruption was injected")
	}
	if len(res.Losses) != rc.Steps {
		t.Fatalf("got %d losses, want %d (skipped steps still complete)", len(res.Losses), rc.Steps)
	}
	for i, l := range res.Losses {
		finite := !math.IsNaN(l) && !math.IsInf(l, 0)
		if i == 1 && finite {
			t.Fatalf("step 1 loss %v should be the recorded non-finite value", l)
		}
		if i != 1 && !finite {
			t.Fatalf("step %d loss %v is non-finite; corruption leaked past the guard", i, l)
		}
	}

	// The same corruption with retry budget heals completely: bit-identical
	// to a fault-free run.
	clean, err := Run(RunConfig{
		Net: chaosCfg, Bounds: []int{0, 3, 6},
		Steps: 4, MicroBatches: 4, LR: 2e-3, DataSeed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	healed := rc
	healed.Fault = fault.MustNew(1, fault.On(fault.Corrupt).AtStage(1).AtAttempt(1).OnPhase(fault.PhaseForward))
	healed.Recovery = Recovery{MaxRetries: 1, GuardNonFinite: true}
	hres, err := Run(healed)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Fault.Retries != 1 || hres.Fault.SkippedSteps != 0 {
		t.Fatalf("healed counters = %+v, want 1 retry and 0 skips", hres.Fault)
	}
	for i := range clean.Losses {
		if hres.Losses[i] != clean.Losses[i] {
			t.Fatalf("step %d: healed loss %v != clean loss %v", i, hres.Losses[i], clean.Losses[i])
		}
	}
}

// TestRunTrimsLossesOnError: a mid-run failure with no recovery returns only
// the completed steps' losses, never a zero-padded tail.
func TestRunTrimsLossesOnError(t *testing.T) {
	res, err := Run(RunConfig{
		Net: chaosCfg, Bounds: []int{0, 3, 6},
		Steps: 6, MicroBatches: 4, LR: 2e-3, DataSeed: 29,
		Fault:    fault.MustNew(1, fault.On(fault.Panic).AtAttempt(2)),
		Watchdog: 10 * time.Second,
	})
	if err == nil {
		t.Fatal("run succeeded despite an unrecovered stage panic")
	}
	if len(res.Losses) != 2 {
		t.Fatalf("got %d losses after failing at step 2, want exactly the 2 completed steps", len(res.Losses))
	}
	for i, l := range res.Losses {
		if l == 0 {
			t.Fatalf("completed step %d has zero loss; tail padding leaked", i)
		}
	}
	if res.Fault.Panics != 1 {
		t.Fatalf("fault counters = %+v, want 1 panic", res.Fault)
	}
}

// TestRecoveryAcrossRepartition: supervised training survives a mid-run
// Rebind onto a differently-partitioned pipeline bit-identically — the
// checkpoint-based handoff used when a replan is adopted.
func TestRecoveryAcrossRepartition(t *testing.T) {
	const steps, micros = 6, 4
	corpus := NewCorpus(chaosCfg.Vocab, 1<<14, 11)

	straight := buildPipe(t, chaosCfg, []int{0, 3, 6})
	rngA := tensor.NewRNG(8)
	var want []float64
	for step := 0; step < steps; step++ {
		l, err := straight.Step(corpus.Batches(micros, chaosCfg.Seq, rngA))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, l)
	}

	sup, err := NewSupervisor(buildPipe(t, chaosCfg, []int{0, 3, 6}), Recovery{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	rngB := tensor.NewRNG(8)
	var got []float64
	for step := 0; step < steps; step++ {
		if step == 3 {
			// Adopt a new partitioning mid-run, as a replan would. The new
			// pipeline is built with a different construction seed to prove
			// the handoff alone determines the state.
			other := chaosCfg
			other.Seed = 77
			if err := sup.Rebind(buildPipe(t, other, []int{0, 2, 4, 6})); err != nil {
				t.Fatal(err)
			}
		}
		l, err := sup.Step(corpus.Batches(micros, chaosCfg.Seq, rngB))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, l)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: rebound loss %v != straight loss %v", i, got[i], want[i])
		}
	}
	if sup.StepsCompleted() != steps {
		t.Fatalf("supervisor completed %d steps, want %d", sup.StepsCompleted(), steps)
	}
}

// TestChaosSeededSurvival is the seed-matrix property test make chaos runs:
// under probabilistic panic, corruption and straggler rules, a run with full
// recovery either completes with exactly Steps losses whose non-finite count
// equals the skipped-step count, or fails with a trimmed loss slice — and
// whenever it completes, its finite prefix losses match a fault-free run
// wherever no step was skipped. Seed via ADAPIPE_CHAOS_SEED (default 1).
func TestChaosSeededSurvival(t *testing.T) {
	seed := uint64(1)
	if env := os.Getenv("ADAPIPE_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("ADAPIPE_CHAOS_SEED=%q: %v", env, err)
		}
		seed = v
	}
	rc := RunConfig{
		Net: chaosCfg, Bounds: []int{0, 2, 4, 6},
		Steps: 6, MicroBatches: 4, LR: 2e-3, DataSeed: 41,
		Watchdog: 30 * time.Second,
		Recovery: Recovery{MaxRetries: 6, GuardNonFinite: true},
	}
	rc.Fault = fault.MustNew(seed,
		fault.On(fault.Panic).WithProb(0.01),
		fault.On(fault.Corrupt).WithProb(0.01),
		fault.On(fault.Straggler).WithProb(0.05).WithDelay(time.Millisecond),
	)
	res, err := Run(rc)
	if err != nil {
		if len(res.Losses) >= rc.Steps {
			t.Fatalf("failed run returned %d losses for %d steps; tail not trimmed", len(res.Losses), rc.Steps)
		}
		t.Logf("seed %d exhausted the retry budget after %d steps: %v (counters %+v)",
			seed, len(res.Losses), err, res.Fault)
		return
	}
	if len(res.Losses) != rc.Steps {
		t.Fatalf("completed run has %d losses, want %d", len(res.Losses), rc.Steps)
	}
	var nonFinite int64
	for _, l := range res.Losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			nonFinite++
		}
	}
	if nonFinite != res.Fault.SkippedSteps {
		t.Fatalf("%d non-finite losses but %d skipped steps", nonFinite, res.Fault.SkippedSteps)
	}

	clean, err := Run(RunConfig{
		Net: chaosCfg, Bounds: []int{0, 2, 4, 6},
		Steps: 6, MicroBatches: 4, LR: 2e-3, DataSeed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.SkippedSteps == 0 {
		for i := range clean.Losses {
			if res.Losses[i] != clean.Losses[i] {
				t.Fatalf("step %d: survived loss %v != fault-free loss %v (seed %d, counters %+v)",
					i, res.Losses[i], clean.Losses[i], seed, res.Fault)
			}
		}
	} else {
		// A skipped step changes the trajectory; the steps before the first
		// skip must still match exactly.
		for i := range clean.Losses {
			if math.IsNaN(res.Losses[i]) || math.IsInf(res.Losses[i], 0) {
				break
			}
			if res.Losses[i] != clean.Losses[i] {
				t.Fatalf("pre-skip step %d: survived loss %v != fault-free loss %v", i, res.Losses[i], clean.Losses[i])
			}
		}
	}
	t.Logf("seed %d survived: counters %+v", seed, res.Fault)
}

// TestChaosElasticNodeLossContinuity is the elastic-recovery acceptance test:
// a permanent node loss mid-run is detected by the membership model, the
// supervisor restores the last snapshot, rebuilds the surviving 2-stage shape
// and rebinds training state onto it exactly. Continuity is asserted on both
// sides of the resize — pre-loss losses bit-identical to a fault-free run on
// the old shape, post-resize losses bit-identical to a clean from-checkpoint
// run on the new shape.
func TestChaosElasticNodeLossContinuity(t *testing.T) {
	const steps, micros = 6, 4
	corpus := NewCorpus(chaosCfg.Vocab, 1<<14, 11)

	// Run A — fault-free on the original 3-stage shape, capturing the
	// checkpoint after step 2 (the state elastic recovery resumes from).
	clean := buildPipe(t, chaosCfg, []int{0, 2, 4, 6})
	rngA := tensor.NewRNG(8)
	var cleanLosses []float64
	var blob []byte
	for step := 0; step < steps; step++ {
		l, err := clean.Step(corpus.Batches(micros, chaosCfg.Seq, rngA))
		if err != nil {
			t.Fatal(err)
		}
		cleanLosses = append(cleanLosses, l)
		if step == 2 {
			if blob, err = clean.CheckpointBytes(3); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Run C — clean from-checkpoint run on the NEW 2-stage shape: restore
	// A's step-2 checkpoint into a fresh 2-stage pipeline and train steps
	// 3..5 (advancing the data stream past the consumed batches first).
	otherSeed := chaosCfg
	otherSeed.Seed = 99
	resumed := buildPipe(t, otherSeed, []int{0, 3, 6})
	if _, err := resumed.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	rngC := tensor.NewRNG(8)
	for step := 0; step < 3; step++ {
		corpus.Batches(micros, chaosCfg.Seq, rngC)
	}
	var tailLosses []float64
	for step := 3; step < steps; step++ {
		l, err := resumed.Step(corpus.Batches(micros, chaosCfg.Seq, rngC))
		if err != nil {
			t.Fatal(err)
		}
		tailLosses = append(tailLosses, l)
	}

	// Run B — elastic: stage 1's node dies permanently at attempt 3 (step 3),
	// so the step fails, is retried once (a dead node cannot be outrun), the
	// membership threshold of 2 declares the node lost, and the supervisor
	// resizes onto the 2-stage shape built by Rebuild.
	pipe := buildPipe(t, chaosCfg, []int{0, 2, 4, 6})
	pipe.Fault = fault.MustNew(1, fault.On(fault.NodeLoss).AtStage(1).AtAttempt(3))
	pipe.Watchdog = 30 * time.Second
	sup, err := NewSupervisor(pipe, Recovery{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	health, err := fault.NewMembership(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilds int
	sup.Elastic = Elastic{
		Health: health,
		Rebuild: func(downStage int) (*Pipeline, error) {
			rebuilds++
			if downStage != 1 {
				t.Errorf("rebuild blamed stage %d, want 1", downStage)
			}
			other := chaosCfg
			other.Seed = 77 // a different construction seed proves Rebind alone determines the state
			next := buildPipe(t, other, []int{0, 3, 6})
			next.Fault = fault.MustNew(1) // fresh injector: the old shape's rules died with its nodes
			return next, nil
		},
	}
	rngB := tensor.NewRNG(8)
	var got []float64
	for step := 0; step < steps; step++ {
		l, err := sup.Step(corpus.Batches(micros, chaosCfg.Seq, rngB))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, l)
	}

	// Continuity: bit-identical on both sides of the resize.
	for i := 0; i < 3; i++ {
		if got[i] != cleanLosses[i] {
			t.Fatalf("pre-loss step %d: elastic loss %v != fault-free loss %v", i, got[i], cleanLosses[i])
		}
	}
	for i := 3; i < steps; i++ {
		if got[i] != tailLosses[i-3] {
			t.Fatalf("post-resize step %d: elastic loss %v != from-checkpoint loss %v", i, got[i], tailLosses[i-3])
		}
	}

	if rebuilds != 1 {
		t.Fatalf("rebuilt %d times, want exactly 1", rebuilds)
	}
	if len(sup.Pipe.Stages) != 2 {
		t.Fatalf("supervised pipeline has %d stages after the resize, want 2", len(sup.Pipe.Stages))
	}
	if sup.StepsCompleted() != steps {
		t.Fatalf("completed %d steps, want %d", sup.StepsCompleted(), steps)
	}
	c := sup.Counters()
	if c.Resizes != 1 || c.LossesDetected != 1 || c.Retries != 1 {
		t.Fatalf("counters = %+v, want 1 resize, 1 loss detected, 1 retry", c)
	}
	// The dead node killed the step twice (original + retry); the retired
	// injector's counts were folded into Stats at rebind.
	if c.NodeLosses != 2 {
		t.Fatalf("node-loss count = %d, want 2", c.NodeLosses)
	}
	if c.ReplanWallNanos <= 0 {
		t.Fatalf("resize wall time %d ns, want > 0", c.ReplanWallNanos)
	}
	if health.Stages() != 2 || health.LostNodes() != 1 {
		t.Fatalf("health model: %d stages, %d lost nodes; want 2 and 1", health.Stages(), health.LostNodes())
	}
}

// TestChaosElasticScaleUpGrow: a scale-up arrival after step 1 is offered to
// the Grow hook, which moves training onto a deeper pipeline mid-run; losses
// stay bit-identical to a fault-free run (partitioning never changes the
// math), and the adopted arrivals are not re-offered.
func TestChaosElasticScaleUpGrow(t *testing.T) {
	const steps, micros = 5, 4
	clean, err := Run(RunConfig{
		Net: chaosCfg, Bounds: []int{0, 3, 6},
		Steps: steps, MicroBatches: micros, LR: 2e-3, DataSeed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}

	pipe := buildPipe(t, chaosCfg, []int{0, 3, 6})
	pipe.Fault = fault.MustNew(1, fault.On(fault.ScaleUp).AtAttempt(2))
	sup, err := NewSupervisor(pipe, Recovery{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	var offers []int
	sup.Elastic = Elastic{
		Grow: func(arrived int) (*Pipeline, error) {
			offers = append(offers, arrived)
			other := chaosCfg
			other.Seed = 99
			return buildPipe(t, other, []int{0, 2, 4, 6}), nil
		},
	}
	corpus := NewCorpus(chaosCfg.Vocab, 1<<16, 53+7)
	rng := tensor.NewRNG(53)
	var got []float64
	for step := 0; step < steps; step++ {
		l, err := sup.Step(corpus.Batches(micros, chaosCfg.Seq, rng))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, l)
	}

	if len(offers) != 1 || offers[0] != 1 {
		t.Fatalf("grow offers = %v, want exactly one offer of 1 node", offers)
	}
	if len(sup.Pipe.Stages) != 3 {
		t.Fatalf("pipeline has %d stages after the grow, want 3", len(sup.Pipe.Stages))
	}
	for i := range clean.Losses {
		if got[i] != clean.Losses[i] {
			t.Fatalf("step %d: grown loss %v != fault-free loss %v", i, got[i], clean.Losses[i])
		}
	}
	if c := sup.Counters(); c.Resizes != 1 || c.LossesDetected != 0 {
		t.Fatalf("counters = %+v, want 1 resize and 0 losses detected", c)
	}
}

// TestChaosElasticGrowDeclined: a Grow hook returning a nil pipeline declines
// the offer; the arrivals stay recorded so the offer is not repeated.
func TestChaosElasticGrowDeclined(t *testing.T) {
	pipe := buildPipe(t, chaosCfg, []int{0, 3, 6})
	pipe.Fault = fault.MustNew(1, fault.On(fault.ScaleUp).AtAttempt(1))
	sup, err := NewSupervisor(pipe, Recovery{})
	if err != nil {
		t.Fatal(err)
	}
	offers := 0
	sup.Elastic = Elastic{Grow: func(arrived int) (*Pipeline, error) { offers++; return nil, nil }}
	for step := 0; step < 4; step++ {
		if _, err := sup.Step(chaosBatches(t, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if offers != 1 {
		t.Fatalf("declined offer repeated %d times, want 1", offers)
	}
	if c := sup.Counters(); c.Resizes != 0 {
		t.Fatalf("declined grow still counted a resize: %+v", c)
	}
}

// TestChaosElasticRequiresRebuild: detecting a down stage with no Rebuild
// hook is a hard, descriptive error — not a silent retry loop.
func TestChaosElasticRequiresRebuild(t *testing.T) {
	pipe := buildPipe(t, chaosCfg, []int{0, 3, 6})
	pipe.Fault = fault.MustNew(1, fault.On(fault.NodeLoss).AtStage(0))
	pipe.Watchdog = 30 * time.Second
	sup, err := NewSupervisor(pipe, Recovery{MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	health, err := fault.NewMembership(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sup.Elastic = Elastic{Health: health}
	_, err = sup.Step(chaosBatches(t, 4))
	if err == nil || !strings.Contains(err.Error(), "no elastic Rebuild") {
		t.Fatalf("err = %v, want a missing-Rebuild error", err)
	}
}

// TestRecoveryRebindErrors: Rebind rejects a nil pipeline and a layer-count
// mismatch with descriptive errors, and a rejected rebind leaves the
// supervisor fully operational on its old pipeline.
func TestRecoveryRebindErrors(t *testing.T) {
	sup, err := NewSupervisor(buildPipe(t, chaosCfg, []int{0, 3, 6}), Recovery{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Rebind(nil); err == nil || !strings.Contains(err.Error(), "nil pipeline") {
		t.Fatalf("Rebind(nil) err = %v", err)
	}
	small := chaosCfg
	small.Layers = 1
	if err := sup.Rebind(buildPipe(t, small, []int{0, 2, 4})); err == nil || !strings.Contains(err.Error(), "layer-count mismatch") {
		t.Fatalf("mismatched rebind err = %v", err)
	}
	if _, err := sup.Step(chaosBatches(t, 4)); err != nil {
		t.Fatalf("supervisor broken after rejected rebinds: %v", err)
	}
}

// TestRecoveryBackoffUsesClock: retry backoff sleeps on the supervisor's
// injected clock, so a fake clock makes an hour-scale backoff complete
// instantly in wall time.
func TestRecoveryBackoffUsesClock(t *testing.T) {
	pipe := buildPipe(t, chaosCfg, []int{0, 3, 6})
	pipe.Fault = fault.MustNew(1, fault.On(fault.Panic).AtAttempt(0))
	pipe.Watchdog = 30 * time.Second
	sup, err := NewSupervisor(pipe, Recovery{MaxRetries: 2, Backoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	now := time.Unix(0, 0)
	sup.Clock = func() time.Time {
		reads++
		now = now.Add(4 * time.Hour)
		return now
	}
	start := time.Now()
	if _, err := sup.Step(chaosBatches(t, 4)); err != nil {
		t.Fatal(err)
	}
	if reads == 0 {
		t.Fatal("backoff never consulted the injected clock")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hour-scale backoff took %s of wall time under a fake clock", elapsed)
	}
}
