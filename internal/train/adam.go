package train

import (
	"math"

	"adapipe/internal/tensor"
)

// Adam is the FP32 Adam optimizer of the evaluation setup (§4.2), one
// instance per pipeline stage over that stage's parameters.
type Adam struct {
	// LR is the learning rate.
	LR float64
	// Beta1 and Beta2 are the moment decay rates.
	Beta1, Beta2 float64
	// Eps is the denominator epsilon.
	Eps float64

	params []*Param
	m, v   []*tensor.Mat
	step   int
}

// NewAdam builds an optimizer over the given parameters.
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, tensor.New(p.W.Rows, p.W.Cols))
		a.v = append(a.v, tensor.New(p.W.Rows, p.W.Cols))
	}
	return a
}

// Step applies one update from the accumulated gradients scaled by
// 1/gradScale (the micro-batch count for mean-of-micro-batches semantics),
// then zeroes the gradients.
func (a *Adam) Step(gradScale float64) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	inv := 1.0
	if gradScale != 0 {
		inv = 1 / gradScale
	}
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.W.Data {
			g := p.G.Data[j] * inv
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / c1
			vh := v.Data[j] / c2
			p.W.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.G.Data[j] = 0
		}
	}
}

// StateBytes reports the optimizer-state footprint (two fp64 moments per
// parameter), used by the engine memory accounting tests.
func (a *Adam) StateBytes() int64 {
	var n int64
	for i := range a.m {
		n += a.m[i].Bytes() + a.v[i].Bytes()
	}
	return n
}
