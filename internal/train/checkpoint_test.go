package train

import (
	"bytes"
	"testing"

	"adapipe/internal/tensor"
)

func buildPipe(t *testing.T, cfg Config, bounds []int) *Pipeline {
	t.Helper()
	net, err := NewNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := Split(net, bounds, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewPipeline(stages, 2e-3)
}

// TestCheckpointResumeIsExact: training 6 steps straight equals training 3,
// checkpointing, restoring into a fresh pipeline and training 3 more —
// bit-identical losses.
func TestCheckpointResumeIsExact(t *testing.T) {
	cfg := Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 31}
	bounds := []int{0, 3, 6}
	corpus := NewCorpus(cfg.Vocab, 1<<14, 4)

	// Straight run.
	straight := buildPipe(t, cfg, bounds)
	rngA := tensor.NewRNG(8)
	var straightLosses []float64
	for step := 0; step < 6; step++ {
		l, err := straight.Step(corpus.Batches(4, cfg.Seq, rngA))
		if err != nil {
			t.Fatal(err)
		}
		straightLosses = append(straightLosses, l)
	}

	// Interrupted run.
	first := buildPipe(t, cfg, bounds)
	rngB := tensor.NewRNG(8)
	for step := 0; step < 3; step++ {
		if _, err := first.Step(corpus.Batches(4, cfg.Seq, rngB)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := first.CheckpointBytes(3)
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a fresh pipeline with a DIFFERENT seed (proving the
	// checkpoint fully determines the state) and a different partitioning.
	other := cfg
	other.Seed = 99
	resumed := buildPipe(t, other, []int{0, 2, 4, 6})
	step, err := resumed.LoadCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if step != 3 {
		t.Fatalf("restored step = %d", step)
	}
	for s := 3; s < 6; s++ {
		l, err := resumed.Step(corpus.Batches(4, cfg.Seq, rngB))
		if err != nil {
			t.Fatal(err)
		}
		if l != straightLosses[s] {
			t.Fatalf("step %d: resumed loss %.17g, straight %.17g", s, l, straightLosses[s])
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 1}
	src := buildPipe(t, cfg, []int{0, 6})
	blob, err := src.CheckpointBytes(1)
	if err != nil {
		t.Fatal(err)
	}
	// Different architecture: shape mismatch.
	wide := cfg
	wide.Dim = 32
	dst := buildPipe(t, wide, []int{0, 6})
	if _, err := dst.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Error("shape mismatch accepted")
	}
	// More layers: missing parameters.
	deep := cfg
	deep.Layers = 3
	dst2 := buildPipe(t, deep, []int{0, 8})
	if _, err := dst2.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Error("missing parameters accepted")
	}
	// Garbage input.
	if _, err := src.LoadCheckpoint(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage checkpoint accepted")
	}
}
