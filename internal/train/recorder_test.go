package train

import (
	"testing"

	"adapipe/internal/schedule"
)

// TestRecorderCapturesPipeline attaches the op recorder to the same 4-stage ×
// 8-micro-batch run the race stress test uses and checks the measured trace's
// structural invariants. Run with `go test -race` (the CI race target) to
// verify the recording path itself is race-free.
func TestRecorderCapturesPipeline(t *testing.T) {
	const stages, micros = 4, 8
	rc := RunConfig{
		Net:          Config{Layers: 3, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 11},
		Bounds:       []int{0, 2, 4, 6, 8},
		Steps:        2,
		MicroBatches: micros,
		LR:           1e-3,
		DataSeed:     13,
		Record:       true,
	}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Record was set but RunResult.Trace is nil")
	}

	// Every op of the schedule appears exactly once: one forward and one
	// backward per (stage, micro-batch).
	if want := 2 * stages * micros; len(tr.Spans) != want {
		t.Fatalf("got %d spans, want %d", len(tr.Spans), want)
	}
	perStage := make([]int, stages)
	fwdSeen := make([]map[int]bool, stages)
	bwdSeen := make([]map[int]bool, stages)
	for s := range fwdSeen {
		fwdSeen[s] = make(map[int]bool)
		bwdSeen[s] = make(map[int]bool)
	}
	for _, sp := range tr.Spans {
		if sp.Stage < 0 || sp.Stage >= stages {
			t.Fatalf("span with out-of-range stage %d", sp.Stage)
		}
		perStage[sp.Stage]++
		m := sp.Op.Micros[0]
		if sp.Op.Kind == schedule.Forward {
			fwdSeen[sp.Stage][m] = true
		} else {
			bwdSeen[sp.Stage][m] = true
		}
	}
	for s := 0; s < stages; s++ {
		if perStage[s] != 2*micros {
			t.Errorf("stage %d has %d spans, want %d", s, perStage[s], 2*micros)
		}
		if len(fwdSeen[s]) != micros || len(bwdSeen[s]) != micros {
			t.Errorf("stage %d covers %d fwd / %d bwd micros, want %d each",
				s, len(fwdSeen[s]), len(bwdSeen[s]), micros)
		}
	}

	// A stage goroutine executes its ops serially, so per-device compute
	// spans must be monotone and non-overlapping.
	lastEnd := make([]float64, stages)
	for _, sp := range tr.Spans { // Spans are sorted by (Start, Stage)
		if sp.End < sp.Start {
			t.Fatalf("stage %d span ends before it starts: [%g, %g]", sp.Stage, sp.Start, sp.End)
		}
		if sp.Start < lastEnd[sp.Stage] {
			t.Errorf("stage %d spans overlap: start %g < previous end %g",
				sp.Stage, sp.Start, lastEnd[sp.Stage])
		}
		lastEnd[sp.Stage] = sp.End
	}

	// Compute + stall partition each stage's wall time: the goroutine is
	// either computing or blocked on a channel. The residue (span bookkeeping,
	// scheduler delays) must stay small, but CI machines are noisy — only the
	// structural bound (busy+stall ≤ wall) is tight.
	if tr.WallTime <= 0 {
		t.Fatalf("non-positive wall time %g", tr.WallTime)
	}
	for s := 0; s < stages; s++ {
		busyStall := tr.Busy[s] + tr.Stall[s]
		if busyStall > tr.WallTime*1.001 {
			t.Errorf("stage %d busy+stall %g exceeds wall %g", s, busyStall, tr.WallTime)
		}
		if busyStall < tr.WallTime*0.25 {
			t.Errorf("stage %d busy+stall %g is under 25%% of wall %g — instrumentation lost time",
				s, busyStall, tr.WallTime)
		}
		if tr.PeakBytes[s] <= 0 {
			t.Errorf("stage %d recorded no live activation bytes", s)
		}
	}

	// The conversion to sim.Result preserves the span population and renders
	// through the existing tooling.
	simRes := tr.Result()
	if len(simRes.Timeline) != len(tr.Spans) {
		t.Fatalf("Result timeline has %d events, want %d", len(simRes.Timeline), len(tr.Spans))
	}
	if len(simRes.Busy) != stages || len(simRes.Bubble) != stages {
		t.Fatalf("Result device arrays sized %d/%d, want %d", len(simRes.Busy), len(simRes.Bubble), stages)
	}
	for s := 0; s < stages; s++ {
		if simRes.Bubble[s] < 0 {
			t.Errorf("stage %d negative bubble %g", s, simRes.Bubble[s])
		}
	}
}

// TestRecorderOffByDefault confirms a run without Record carries no trace and
// the pipeline's recorder stays nil.
func TestRecorderOffByDefault(t *testing.T) {
	res, err := Run(RunConfig{
		Net:          Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 3},
		Bounds:       []int{0, 3, 6},
		Steps:        1,
		MicroBatches: 4,
		LR:           1e-3,
		DataSeed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace captured without Record")
	}
}
