package train

import (
	"fmt"
	"sync"
	"time"

	"adapipe/internal/obs"
	"adapipe/internal/schedule"
	"adapipe/internal/tensor"
)

// Trace is a measured pipeline iteration: per-op wall-clock spans, per-stage
// channel-wait (stall) time and live-activation curves, structurally
// compatible with sim.Result via Trace.Result so the trace-package renderers
// work on measured runs.
type Trace = obs.Trace

// Pipeline executes synchronous 1F1B pipeline-parallel training: one
// goroutine per stage, activations flowing forward and gradients backward
// over channels, with per-stage gradient accumulation and a per-stage Adam
// optimizer — the execution engine of §6 in miniature.
type Pipeline struct {
	// Stages are the partitioned model stages.
	Stages []*Stage
	opts   []*Adam
	// PeakActBytes records, per stage, the high-water mark of live
	// activation contexts across all steps — the engine-level counterpart
	// of the memory model's (p−s)·Mem(R) term.
	PeakActBytes []int64
	// Recorder, when non-nil, captures per-op wall-clock spans, channel-wait
	// stall time and live-byte curves for the *current* iteration (each
	// Accumulate resets it). Nil — the default — keeps the hot path free of
	// clock reads and recording allocations.
	Recorder *obs.Recorder
}

// NewPipeline wraps stages with per-stage Adam optimizers.
func NewPipeline(stages []*Stage, lr float64) *Pipeline {
	p := &Pipeline{Stages: stages, PeakActBytes: make([]int64, len(stages))}
	for _, s := range stages {
		p.opts = append(p.opts, NewAdam(s.Params(), lr))
	}
	return p
}

type flowMsg struct {
	micro int
	m     *tensor.Mat
}

// Step runs one training iteration over the given micro-batches under 1F1B
// scheduling and applies the optimizer. It returns the mean loss across
// micro-batches.
func (p *Pipeline) Step(batches []Batch) (float64, error) {
	loss, err := p.Accumulate(batches)
	if err != nil {
		return 0, err
	}
	p.ApplyOptimizer(float64(len(batches)))
	return loss, nil
}

// ApplyOptimizer applies one optimizer step from the accumulated gradients,
// scaled by 1/gradScale, then zeroes them. Data-parallel training sums
// replica gradients first and passes the global micro-batch count.
func (p *Pipeline) ApplyOptimizer(gradScale float64) {
	for _, opt := range p.opts {
		opt.Step(gradScale)
	}
}

// Accumulate runs the forward and backward passes of one iteration under
// 1F1B scheduling, accumulating gradients without applying the optimizer.
// It returns the mean loss across micro-batches.
func (p *Pipeline) Accumulate(batches []Batch) (float64, error) {
	n := len(batches)
	np := len(p.Stages)
	if n < np {
		return 0, fmt.Errorf("train: %d micro-batches cannot fill a %d-stage pipeline", n, np)
	}
	sched, err := schedule.OneFOneB(np, n)
	if err != nil {
		return 0, err
	}
	rec := p.Recorder
	if rec != nil {
		rec.Reset(np)
	}

	fwd := make([]chan flowMsg, np-1)
	bwd := make([]chan flowMsg, np-1)
	for i := range fwd {
		fwd[i] = make(chan flowMsg, n)
		bwd[i] = make(chan flowMsg, n)
	}
	losses := make([]float64, n)
	errs := make([]error, np)

	var wg sync.WaitGroup
	for s := 0; s < np; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[s] = fmt.Errorf("train: stage %d: %v", s, r)
				}
			}()
			stage := p.Stages[s]
			var sr *obs.StageRecorder
			if rec != nil {
				sr = rec.Stage(s)
			}
			ctxs := make(map[int]*StageCtx, np)
			dlogits := make(map[int]*tensor.Mat, np)
			var live int64
			for _, op := range sched.Ops[s] {
				m := op.Micros[0]
				// Recording brackets each op: the channel receive is
				// timed as stall, everything after it as compute. Every
				// recording call sits behind a nil check so the default
				// (nil recorder) hot path reads no clocks and allocates
				// nothing extra.
				var opWait time.Duration
				var opStart, waitStart time.Time
				switch op.Kind {
				case schedule.Forward:
					var x *tensor.Mat
					if s > 0 {
						if sr != nil {
							waitStart = time.Now()
						}
						msg := <-fwd[s-1]
						if sr != nil {
							opWait = time.Since(waitStart)
						}
						if msg.micro != m {
							panic(fmt.Sprintf("forward order violation: got micro %d want %d", msg.micro, m))
						}
						x = msg.m
					}
					if sr != nil {
						opStart = time.Now()
					}
					y, ctx := stage.Forward(batches[m].Tokens, x)
					ctxs[m] = ctx
					live += ctx.SavedBytes()
					if live > p.PeakActBytes[s] {
						p.PeakActBytes[s] = live
					}
					if s == np-1 {
						if stage.HeadProj == nil {
							panic("last stage has no head")
						}
						loss, dl := CrossEntropy(y, batches[m].Targets)
						losses[m] = loss
						dlogits[m] = dl
					} else {
						fwd[s] <- flowMsg{micro: m, m: y}
					}
					if sr != nil {
						sr.Record(op, opStart, time.Now(), opWait, live)
					}
				case schedule.Backward:
					var dy *tensor.Mat
					if s == np-1 {
						dy = dlogits[m]
						delete(dlogits, m)
					} else {
						if sr != nil {
							waitStart = time.Now()
						}
						msg := <-bwd[s]
						if sr != nil {
							opWait = time.Since(waitStart)
						}
						if msg.micro != m {
							panic(fmt.Sprintf("backward order violation: got micro %d want %d", msg.micro, m))
						}
						dy = msg.m
					}
					if sr != nil {
						opStart = time.Now()
					}
					ctx := ctxs[m]
					live -= ctx.SavedBytes()
					delete(ctxs, m)
					dx := stage.Backward(ctx, dy)
					if s > 0 {
						bwd[s-1] <- flowMsg{micro: m, m: dx}
					}
					if sr != nil {
						sr.Record(op, opStart, time.Now(), opWait, live)
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, e
		}
	}
	var mean float64
	for _, l := range losses {
		mean += l
	}
	return mean / float64(n), nil
}

// RunConfig describes a full training run.
type RunConfig struct {
	// Net sizes the model.
	Net Config
	// Bounds are the stage layer bounds over the layer sequence
	// (len = stages+1).
	Bounds []int
	// Saves holds per-stage, per-block recomputation strategies; nil saves
	// everything.
	Saves [][]SaveSpec
	// Steps is the iteration count.
	Steps int
	// MicroBatches is n, the micro-batches per iteration.
	MicroBatches int
	// LR is the Adam learning rate.
	LR float64
	// DataSeed seeds corpus sampling (identical seeds give identical
	// batches regardless of partitioning).
	DataSeed uint64
	// Record attaches an op recorder to the pipeline; the run result then
	// carries the measured Trace of the final step (the steady-state
	// iteration, free of allocator warm-up). Off by default: recording
	// reads two clocks per channel op and allocates span buffers.
	Record bool
}

// RunResult is a completed training run.
type RunResult struct {
	// Losses is the per-step mean loss (the Figure 10 curve).
	Losses []float64
	// PeakActBytes is the per-stage live-activation high-water mark.
	PeakActBytes []int64
	// Trace is the measured trace of the final step when RunConfig.Record
	// was set; nil otherwise.
	Trace *Trace
}

// Run builds a network, partitions it, and trains it on a synthetic corpus.
func Run(rc RunConfig) (RunResult, error) {
	net, err := NewNet(rc.Net)
	if err != nil {
		return RunResult{}, err
	}
	stages, err := Split(net, rc.Bounds, rc.Saves)
	if err != nil {
		return RunResult{}, err
	}
	pipe := NewPipeline(stages, rc.LR)
	if rc.Record {
		pipe.Recorder = obs.NewRecorder()
	}
	corpus := NewCorpus(rc.Net.Vocab, 1<<16, rc.DataSeed+7)
	rng := tensor.NewRNG(rc.DataSeed)
	res := RunResult{Losses: make([]float64, rc.Steps)}
	for step := 0; step < rc.Steps; step++ {
		batches := corpus.Batches(rc.MicroBatches, rc.Net.Seq, rng)
		loss, err := pipe.Step(batches)
		if err != nil {
			return res, err
		}
		res.Losses[step] = loss
	}
	res.PeakActBytes = pipe.PeakActBytes
	if pipe.Recorder != nil {
		res.Trace = pipe.Recorder.Trace()
	}
	return res, nil
}
