package train

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"adapipe/internal/obs"
	"adapipe/internal/schedule"
	"adapipe/internal/tensor"
)

// Trace is a measured pipeline iteration: per-op wall-clock spans, per-stage
// channel-wait (stall) time and live-activation curves, structurally
// compatible with sim.Result via Trace.Result so the trace-package renderers
// work on measured runs.
type Trace = obs.Trace

// ErrWatchdog is wrapped by Accumulate when the watchdog timeout expires
// before the iteration completes; test with errors.Is.
var ErrWatchdog = errors.New("train: pipeline watchdog timeout")

// FaultInjector is the hook the executor consults around every scheduled op.
// *fault.Injector satisfies it; the executor depends only on this interface
// so the fault package stays engine-agnostic (and train stays free of a
// fault import). All methods must be safe for concurrent use from every
// stage goroutine.
type FaultInjector interface {
	// OpStart runs pre-op faults (straggler delay, injected panic) for the
	// identified op. cancel closes when the iteration is canceled, so
	// injected delays must not outlive the pipeline.
	OpStart(attempt, stage, micro int, backward bool, cancel <-chan struct{})
	// Corrupt may overwrite elements of the op's output boundary tensor.
	Corrupt(attempt, stage, micro int, backward bool, data []float64)
	// InjectedCounts reports how many faults of each kind have fired.
	InjectedCounts() (stragglers, panics, corruptions, nodeLosses int64)
}

// StageError is the error a stage goroutine's recovered panic becomes. It
// preserves which stage failed and the original panic payload so the
// supervisor's health model can attribute blame (a dead node manifests as the
// same stage failing attempt after attempt) instead of parsing error text.
type StageError struct {
	// Stage is the pipeline stage whose goroutine panicked.
	Stage int
	// Cause is the recovered panic payload (e.g. fault.InjectedPanic or
	// fault.InjectedNodeLoss for injected faults).
	Cause any
}

func (e *StageError) Error() string {
	return fmt.Sprintf("train: stage %d: %v", e.Stage, e.Cause)
}

// Pipeline executes synchronous 1F1B pipeline-parallel training: one
// goroutine per stage, activations flowing forward and gradients backward
// over channels, with per-stage gradient accumulation and a per-stage Adam
// optimizer — the execution engine of §6 in miniature.
type Pipeline struct {
	// Stages are the partitioned model stages.
	Stages []*Stage
	opts   []*Adam
	// PeakActBytes records, per stage, the high-water mark of live
	// activation contexts across all steps — the engine-level counterpart
	// of the memory model's (p−s)·Mem(R) term.
	PeakActBytes []int64
	// Recorder, when non-nil, captures per-op wall-clock spans, channel-wait
	// stall time and live-byte curves for the *current* iteration (each
	// Accumulate resets it). Nil — the default — keeps the hot path free of
	// clock reads and recording allocations.
	Recorder *obs.Recorder
	// Fault, when non-nil, is consulted around every scheduled op and may
	// delay it, panic it, or corrupt its output tensor. Nil — the default —
	// costs one pointer check per op.
	Fault FaultInjector
	// Watchdog bounds one Accumulate call; past it the iteration is
	// canceled and ErrWatchdog returned. Zero disables the watchdog. The
	// cancellation protocol (every channel op selects on the done channel,
	// injected delays select on it too) guarantees all stage goroutines
	// exit promptly once canceled, so firing never leaks goroutines.
	Watchdog time.Duration
	// attempt counts Accumulate calls, including retries of the same step,
	// so attempt-targeted fault rules model transient failures: the fault
	// fires once and the retry runs clean.
	attempt int
}

// NewPipeline wraps stages with per-stage Adam optimizers.
func NewPipeline(stages []*Stage, lr float64) *Pipeline {
	p := &Pipeline{Stages: stages, PeakActBytes: make([]int64, len(stages))}
	for _, s := range stages {
		p.opts = append(p.opts, NewAdam(s.Params(), lr))
	}
	return p
}

// Attempts reports how many Accumulate calls (including retries) have run —
// the attempt counter fault rules target and the clock elastic scale-up
// arrivals are measured against.
func (p *Pipeline) Attempts() int { return p.attempt }

// LayerCount is the total model layer count across all stages (embedding +
// blocks + head), the invariant Rebind checks before migrating state between
// pipelines of different stage counts: repartitioning moves layer boundaries,
// it never creates or destroys layers.
func (p *Pipeline) LayerCount() int {
	n := 0
	for _, s := range p.Stages {
		if s.Embed != nil {
			n++
		}
		n += len(s.Blocks)
		if s.HeadProj != nil {
			n++
		}
	}
	return n
}

type flowMsg struct {
	micro int
	m     *tensor.Mat
}

// Step runs one training iteration over the given micro-batches under 1F1B
// scheduling and applies the optimizer. It returns the mean loss across
// micro-batches.
func (p *Pipeline) Step(batches []Batch) (float64, error) {
	loss, err := p.Accumulate(batches)
	if err != nil {
		return 0, err
	}
	p.ApplyOptimizer(float64(len(batches)))
	return loss, nil
}

// ApplyOptimizer applies one optimizer step from the accumulated gradients,
// scaled by 1/gradScale, then zeroes them. Data-parallel training sums
// replica gradients first and passes the global micro-batch count.
func (p *Pipeline) ApplyOptimizer(gradScale float64) {
	for _, opt := range p.opts {
		opt.Step(gradScale)
	}
}

// ZeroGrads discards accumulated gradients on every stage without touching
// parameters or optimizer state — how a failed or skipped iteration is
// erased (parameters only ever change in ApplyOptimizer).
func (p *Pipeline) ZeroGrads() {
	for _, s := range p.Stages {
		for _, prm := range s.Params() {
			prm.G.Zero()
		}
	}
}

// Accumulate runs the forward and backward passes of one iteration under
// 1F1B scheduling, accumulating gradients without applying the optimizer.
// It returns the mean loss across micro-batches.
//
// Accumulate is cancellable: every channel operation in the stage goroutines
// selects on a per-iteration done channel, so when one stage panics (or the
// watchdog fires) its peers unblock and exit instead of deadlocking
// wg.Wait on a counterpart that will never send. On any failure the
// accumulated gradients are partial garbage; callers must ZeroGrads (or
// restore a checkpoint) before retrying — Supervisor does both.
func (p *Pipeline) Accumulate(batches []Batch) (float64, error) {
	n := len(batches)
	np := len(p.Stages)
	if n < np {
		return 0, fmt.Errorf("train: %d micro-batches cannot fill a %d-stage pipeline", n, np)
	}
	sched, err := schedule.OneFOneB(np, n)
	if err != nil {
		return 0, err
	}
	rec := p.Recorder
	if rec != nil {
		rec.Reset(np)
	}
	attempt := p.attempt
	p.attempt++

	run := &iterRun{
		pipe:    p,
		sched:   sched,
		batches: batches,
		attempt: attempt,
		fwd:     make([]chan flowMsg, np-1),
		bwd:     make([]chan flowMsg, np-1),
		losses:  make([]float64, n),
		errs:    make([]error, np),
		done:    make(chan struct{}),
	}
	for i := range run.fwd {
		run.fwd[i] = make(chan flowMsg, n)
		run.bwd[i] = make(chan flowMsg, n)
	}

	var wg sync.WaitGroup
	for s := 0; s < np; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			run.stage(s)
		}(s)
	}

	if p.Watchdog > 0 {
		waited := make(chan struct{})
		go func() {
			wg.Wait()
			close(waited)
		}()
		timer := time.NewTimer(p.Watchdog)
		defer timer.Stop()
		select {
		case <-waited:
		case <-timer.C:
			// Cancel and then wait for every stage goroutine to exit: the
			// done-channel selects make that prompt, and returning only
			// after wg.Wait means no goroutine outlives the call to race
			// on losses/PeakActBytes.
			run.cancel()
			<-waited
			if err := firstErr(run.errs); err != nil {
				return 0, err
			}
			return 0, fmt.Errorf("train: iteration exceeded %s: %w", p.Watchdog, ErrWatchdog)
		}
	} else {
		wg.Wait()
	}
	if err := firstErr(run.errs); err != nil {
		return 0, err
	}
	var mean float64
	for _, l := range run.losses {
		mean += l
	}
	return mean / float64(n), nil
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// iterRun is the shared state of one Accumulate call: the schedule, the
// inter-stage channels, and the cancellation plumbing.
type iterRun struct {
	pipe    *Pipeline
	sched   *schedule.Schedule
	batches []Batch
	attempt int
	fwd     []chan flowMsg
	bwd     []chan flowMsg
	losses  []float64
	errs    []error
	done    chan struct{}
	once    sync.Once
}

// cancel unblocks every stage goroutine; idempotent.
func (r *iterRun) cancel() {
	r.once.Do(func() { close(r.done) })
}

// recv receives from ch unless the iteration is canceled first.
func (r *iterRun) recv(ch chan flowMsg) (flowMsg, bool) {
	select {
	case msg := <-ch:
		return msg, true
	case <-r.done:
		return flowMsg{}, false
	}
}

// send sends on ch unless the iteration is canceled first.
func (r *iterRun) send(ch chan flowMsg, msg flowMsg) bool {
	select {
	case ch <- msg:
		return true
	case <-r.done:
		return false
	}
}

// stage runs stage s's schedule row. A panic (a real executor bug or an
// injected fault) is recovered into errs[s] and cancels the iteration so
// peer stages blocked on this one unblock and exit.
func (r *iterRun) stage(s int) {
	defer func() {
		if rec := recover(); rec != nil {
			r.errs[s] = &StageError{Stage: s, Cause: rec}
			r.cancel()
		}
	}()
	p := r.pipe
	np := len(p.Stages)
	stage := p.Stages[s]
	fi := p.Fault
	var sr *obs.StageRecorder
	if p.Recorder != nil {
		sr = p.Recorder.Stage(s)
	}
	ctxs := make(map[int]*StageCtx, np)
	dlogits := make(map[int]*tensor.Mat, np)
	var live int64
	for _, op := range r.sched.Ops[s] {
		m := op.Micros[0]
		// Recording brackets each op: the channel receive is timed as
		// stall, everything after it as compute. Every recording call sits
		// behind a nil check so the default (nil recorder) hot path reads
		// no clocks and allocates nothing extra. Injected faults run
		// inside the compute bracket, so straggler delay is indistinguishable
		// from slow compute — which is what the straggler detector keys on.
		var opWait time.Duration
		var opStart, waitStart time.Time
		switch op.Kind {
		case schedule.Forward:
			var x *tensor.Mat
			if s > 0 {
				if sr != nil {
					waitStart = time.Now()
				}
				msg, ok := r.recv(r.fwd[s-1])
				if !ok {
					return
				}
				if sr != nil {
					opWait = time.Since(waitStart)
				}
				if msg.micro != m {
					panic(fmt.Sprintf("forward order violation: got micro %d want %d", msg.micro, m))
				}
				x = msg.m
			}
			if sr != nil {
				opStart = time.Now()
			}
			if fi != nil {
				fi.OpStart(r.attempt, s, m, false, r.done)
			}
			y, ctx := stage.Forward(r.batches[m].Tokens, x)
			if fi != nil {
				fi.Corrupt(r.attempt, s, m, false, y.Data)
			}
			ctxs[m] = ctx
			live += ctx.SavedBytes()
			if live > p.PeakActBytes[s] {
				p.PeakActBytes[s] = live
			}
			if s == np-1 {
				if stage.HeadProj == nil {
					panic("last stage has no head")
				}
				loss, dl := CrossEntropy(y, r.batches[m].Targets)
				r.losses[m] = loss
				dlogits[m] = dl
			} else {
				if !r.send(r.fwd[s], flowMsg{micro: m, m: y}) {
					return
				}
			}
			if sr != nil {
				sr.Record(op, opStart, time.Now(), opWait, live)
			}
		case schedule.Backward:
			var dy *tensor.Mat
			if s == np-1 {
				dy = dlogits[m]
				delete(dlogits, m)
			} else {
				if sr != nil {
					waitStart = time.Now()
				}
				msg, ok := r.recv(r.bwd[s])
				if !ok {
					return
				}
				if sr != nil {
					opWait = time.Since(waitStart)
				}
				if msg.micro != m {
					panic(fmt.Sprintf("backward order violation: got micro %d want %d", msg.micro, m))
				}
				dy = msg.m
			}
			if sr != nil {
				opStart = time.Now()
			}
			if fi != nil {
				fi.OpStart(r.attempt, s, m, true, r.done)
			}
			ctx := ctxs[m]
			live -= ctx.SavedBytes()
			delete(ctxs, m)
			dx := stage.Backward(ctx, dy)
			if s > 0 {
				if fi != nil {
					fi.Corrupt(r.attempt, s, m, true, dx.Data)
				}
				if !r.send(r.bwd[s-1], flowMsg{micro: m, m: dx}) {
					return
				}
			}
			if sr != nil {
				sr.Record(op, opStart, time.Now(), opWait, live)
			}
		}
	}
}

// RunConfig describes a full training run.
type RunConfig struct {
	// Net sizes the model.
	Net Config
	// Bounds are the stage layer bounds over the layer sequence
	// (len = stages+1).
	Bounds []int
	// Saves holds per-stage, per-block recomputation strategies; nil saves
	// everything.
	Saves [][]SaveSpec
	// Steps is the iteration count.
	Steps int
	// MicroBatches is n, the micro-batches per iteration.
	MicroBatches int
	// LR is the Adam learning rate.
	LR float64
	// DataSeed seeds corpus sampling (identical seeds give identical
	// batches regardless of partitioning).
	DataSeed uint64
	// Record attaches an op recorder to the pipeline; the run result then
	// carries the measured Trace of the final step (the steady-state
	// iteration, free of allocator warm-up). Off by default: recording
	// reads two clocks per channel op and allocates span buffers.
	Record bool
	// Fault optionally injects faults into every iteration (see
	// internal/fault). Nil disables injection.
	Fault FaultInjector
	// Watchdog bounds each iteration's wall time; zero disables it.
	Watchdog time.Duration
	// Recovery configures step-level retry and the non-finite guard; the
	// zero value disables both (failures abort the run).
	Recovery Recovery
}

// RunResult is a completed training run.
type RunResult struct {
	// Losses is the per-step mean loss (the Figure 10 curve). On a mid-run
	// error it holds only the completed steps, so the tail cannot be
	// mistaken for converged loss.
	Losses []float64
	// PeakActBytes is the per-stage live-activation high-water mark.
	PeakActBytes []int64
	// Trace is the measured trace of the final step when RunConfig.Record
	// was set; nil otherwise.
	Trace *Trace
	// Fault counts injected faults and recovery actions over the run.
	Fault obs.FaultCounters
}

// Run builds a network, partitions it, and trains it on a synthetic corpus.
func Run(rc RunConfig) (RunResult, error) {
	return RunContext(context.Background(), rc)
}

// RunContext is Run with cooperative cancellation checked between optimizer
// steps: a cancelled run returns the losses of the steps that completed plus
// ctx.Err(), exactly like any other mid-run failure (the tail is never
// zero-padded). Steps themselves are atomic — cancellation never tears one.
func RunContext(ctx context.Context, rc RunConfig) (RunResult, error) {
	net, err := NewNet(rc.Net)
	if err != nil {
		return RunResult{}, err
	}
	stages, err := Split(net, rc.Bounds, rc.Saves)
	if err != nil {
		return RunResult{}, err
	}
	pipe := NewPipeline(stages, rc.LR)
	pipe.Fault = rc.Fault
	pipe.Watchdog = rc.Watchdog
	if rc.Record {
		pipe.Recorder = obs.NewRecorder()
	}
	sup, err := NewSupervisor(pipe, rc.Recovery)
	if err != nil {
		return RunResult{}, err
	}
	corpus := NewCorpus(rc.Net.Vocab, 1<<16, rc.DataSeed+7)
	rng := tensor.NewRNG(rc.DataSeed)
	var res RunResult
	finish := func() {
		res.PeakActBytes = pipe.PeakActBytes
		res.Fault = sup.Counters()
		if pipe.Recorder != nil {
			res.Trace = pipe.Recorder.Trace()
		}
	}
	for step := 0; step < rc.Steps; step++ {
		if err := ctx.Err(); err != nil {
			finish()
			return res, err
		}
		batches := corpus.Batches(rc.MicroBatches, rc.Net.Seq, rng)
		loss, err := sup.Step(batches)
		if err != nil {
			finish()
			return res, err
		}
		res.Losses = append(res.Losses, loss)
	}
	finish()
	return res, nil
}
