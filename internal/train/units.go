// Package train is the execution-engine substrate of the reproduction: a
// pure-Go transformer trainer with genuine unit-level recomputation and a
// multi-goroutine 1F1B pipeline executor. It stands in for the paper's
// Megatron-LM/MindSpore engines (§6) and backs the convergence validation of
// Figure 10: recomputation drops intermediates in the forward pass and
// replays the exact same floating-point operations before backward, so
// gradients — and therefore loss curves — are bit-identical to training
// without recomputation.
package train

import (
	"fmt"
	"math"

	"adapipe/internal/tensor"
)

// Param is one trainable matrix with its gradient accumulator.
type Param struct {
	// Name identifies the parameter for debugging and checkpoint tests.
	Name string
	// W is the weight matrix.
	W *tensor.Mat
	// G is the gradient accumulator, zeroed by the optimizer step.
	G *tensor.Mat
}

func newParam(name string, w *tensor.Mat) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Rows, w.Cols)}
}

// Linear is a dense layer y = x·W + b.
type Linear struct {
	// W is the [in, out] weight parameter.
	W *Param
	// B is the [1, out] bias parameter.
	B *Param
}

// NewLinear initializes a Linear with N(0, std²) weights and zero bias.
func NewLinear(name string, in, out int, std float64, rng *tensor.RNG) *Linear {
	return &Linear{
		W: newParam(name+".W", tensor.RandNorm(rng, in, out, std)),
		B: newParam(name+".B", tensor.New(1, out)),
	}
}

// Forward computes y = x·W + b.
func (l *Linear) Forward(x *tensor.Mat) *tensor.Mat {
	y := tensor.MatMul(x, l.W.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Data[i*y.Cols : (i+1)*y.Cols]
		for j := range row {
			row[j] += l.B.W.Data[j]
		}
	}
	return y
}

// Backward accumulates parameter gradients and returns dx. x must be the
// forward input (saved or recomputed).
func (l *Linear) Backward(x, dy *tensor.Mat) *tensor.Mat {
	tensor.AddInPlace(l.W.G, tensor.TMatMul(x, dy))
	for i := 0; i < dy.Rows; i++ {
		row := dy.Data[i*dy.Cols : (i+1)*dy.Cols]
		for j := range row {
			l.B.G.Data[j] += row[j]
		}
	}
	return tensor.MatMulT(dy, l.W.W)
}

// Params returns the trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned gain and bias.
type LayerNorm struct {
	// G is the [1, dim] gain.
	G *Param
	// B is the [1, dim] bias.
	B *Param
	// Eps is the variance epsilon.
	Eps float64
}

// NewLayerNorm initializes gain 1, bias 0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	g := tensor.New(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{G: newParam(name+".G", g), B: newParam(name+".B", tensor.New(1, dim)), Eps: 1e-5}
}

// lnCtx holds the per-row statistics LayerNorm's backward needs.
type lnCtx struct {
	xhat *tensor.Mat // normalized input
	rstd []float64   // per-row 1/σ
}

// Forward returns the normalized output and its backward context.
func (l *LayerNorm) Forward(x *tensor.Mat) (*tensor.Mat, lnCtx) {
	y := tensor.New(x.Rows, x.Cols)
	ctx := lnCtx{xhat: tensor.New(x.Rows, x.Cols), rstd: make([]float64, x.Rows)}
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varsum float64
		for _, v := range row {
			d := v - mean
			varsum += d * d
		}
		rstd := 1 / math.Sqrt(varsum/float64(len(row))+l.Eps)
		ctx.rstd[i] = rstd
		xh := ctx.xhat.Data[i*x.Cols : (i+1)*x.Cols]
		yr := y.Data[i*x.Cols : (i+1)*x.Cols]
		for j, v := range row {
			xh[j] = (v - mean) * rstd
			yr[j] = xh[j]*l.G.W.Data[j] + l.B.W.Data[j]
		}
	}
	return y, ctx
}

// Backward accumulates gain/bias gradients and returns dx.
func (l *LayerNorm) Backward(ctx lnCtx, dy *tensor.Mat) *tensor.Mat {
	dx := tensor.New(dy.Rows, dy.Cols)
	n := float64(dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Data[i*dy.Cols : (i+1)*dy.Cols]
		xh := ctx.xhat.Data[i*dy.Cols : (i+1)*dy.Cols]
		var sumDy, sumDyXh float64
		for j, v := range dyr {
			g := v * l.G.W.Data[j]
			sumDy += g
			sumDyXh += g * xh[j]
			l.G.G.Data[j] += v * xh[j]
			l.B.G.Data[j] += v
		}
		dxr := dx.Data[i*dy.Cols : (i+1)*dy.Cols]
		for j, v := range dyr {
			g := v * l.G.W.Data[j]
			dxr[j] = (g - sumDy/n - xh[j]*sumDyXh/n) * ctx.rstd[i]
		}
	}
	return dx
}

// Params returns the trainable parameters.
func (l *LayerNorm) Params() []*Param { return []*Param{l.G, l.B} }

// geluForward applies the tanh-approximated GELU element-wise.
func geluForward(x *tensor.Mat) *tensor.Mat {
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 0.5 * v * (1 + math.Tanh(geluK*(v+geluC*v*v*v)))
	}
	return y
}

const (
	geluK = 0.7978845608028654 // √(2/π)
	geluC = 0.044715
)

// geluBackward returns dx given the forward input.
func geluBackward(x, dy *tensor.Mat) *tensor.Mat {
	dx := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		inner := geluK * (v + geluC*v*v*v)
		t := math.Tanh(inner)
		dinner := geluK * (1 + 3*geluC*v*v)
		dx.Data[i] = dy.Data[i] * (0.5*(1+t) + 0.5*v*(1-t*t)*dinner)
	}
	return dx
}

// attentionCore computes multi-head causal attention O = softmax(QKᵀ/√dh)·V
// head by head. It is the naive counterpart of the paper's FlashAttention
// unit; the per-head probability matrices are its "internally saved tensors".
type coreCtx struct {
	probs []*tensor.Mat // per-head [T, T] softmax outputs
}

func attentionCore(q, k, v *tensor.Mat, heads int) (*tensor.Mat, coreCtx) {
	T := q.Rows
	dh := q.Cols / heads
	out := tensor.New(T, q.Cols)
	ctx := coreCtx{probs: make([]*tensor.Mat, heads)}
	scale := 1 / math.Sqrt(float64(dh))
	for h := 0; h < heads; h++ {
		qh := headView(q, h, dh)
		kh := headView(k, h, dh)
		vh := headView(v, h, dh)
		scores := tensor.MatMulT(qh, kh)
		for i := 0; i < T; i++ {
			for j := 0; j <= i; j++ {
				scores.Set(i, j, scores.At(i, j)*scale)
			}
			for j := i + 1; j < T; j++ {
				scores.Set(i, j, math.Inf(-1))
			}
		}
		p := tensor.SoftmaxRows(scores)
		ctx.probs[h] = p
		oh := tensor.MatMul(p, vh)
		writeHead(out, oh, h, dh)
	}
	return out, ctx
}

// attentionCoreBackward returns dq, dk, dv given the forward inputs and the
// saved probability matrices.
func attentionCoreBackward(ctx coreCtx, q, k, v, dout *tensor.Mat, heads int) (dq, dk, dv *tensor.Mat) {
	T := q.Rows
	dh := q.Cols / heads
	dq = tensor.New(T, q.Cols)
	dk = tensor.New(T, q.Cols)
	dv = tensor.New(T, q.Cols)
	scale := 1 / math.Sqrt(float64(dh))
	for h := 0; h < heads; h++ {
		qh := headView(q, h, dh)
		kh := headView(k, h, dh)
		vh := headView(v, h, dh)
		doh := headView(dout, h, dh)
		p := ctx.probs[h]
		dvh := tensor.TMatMul(p, doh)
		dp := tensor.MatMulT(doh, vh)
		// Softmax backward: dS = P ⊙ (dP − rowsum(dP⊙P)).
		ds := tensor.New(T, T)
		for i := 0; i < T; i++ {
			var dot float64
			for j := 0; j <= i; j++ {
				dot += dp.At(i, j) * p.At(i, j)
			}
			for j := 0; j <= i; j++ {
				ds.Set(i, j, p.At(i, j)*(dp.At(i, j)-dot)*scale)
			}
		}
		dqh := tensor.MatMul(ds, kh)
		dkh := tensor.TMatMul(ds, qh)
		writeHead(dq, dqh, h, dh)
		writeHead(dk, dkh, h, dh)
		writeHead(dv, dvh, h, dh)
	}
	return dq, dk, dv
}

// headView copies head h's columns into a [T, dh] matrix.
func headView(m *tensor.Mat, h, dh int) *tensor.Mat {
	out := tensor.New(m.Rows, dh)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*dh:(i+1)*dh], m.Data[i*m.Cols+h*dh:i*m.Cols+(h+1)*dh])
	}
	return out
}

// writeHead copies a [T, dh] matrix into head h's columns of m.
func writeHead(m, src *tensor.Mat, h, dh int) {
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[i*m.Cols+h*dh:i*m.Cols+(h+1)*dh], src.Data[i*dh:(i+1)*dh])
	}
}

// Embedding maps token ids to vectors, with learned positional embeddings.
type Embedding struct {
	// Tok is the [vocab, dim] token table.
	Tok *Param
	// Pos is the [maxSeq, dim] position table.
	Pos *Param
}

// NewEmbedding initializes both tables with N(0, std²).
func NewEmbedding(name string, vocab, maxSeq, dim int, std float64, rng *tensor.RNG) *Embedding {
	return &Embedding{
		Tok: newParam(name+".Tok", tensor.RandNorm(rng, vocab, dim, std)),
		Pos: newParam(name+".Pos", tensor.RandNorm(rng, maxSeq, dim, std)),
	}
}

// Forward returns the [len(tokens), dim] embedded sequence.
func (e *Embedding) Forward(tokens []int) *tensor.Mat {
	dim := e.Tok.W.Cols
	out := tensor.New(len(tokens), dim)
	for i, t := range tokens {
		if t < 0 || t >= e.Tok.W.Rows {
			panic(fmt.Sprintf("train: token %d out of vocab %d", t, e.Tok.W.Rows))
		}
		for j := 0; j < dim; j++ {
			out.Data[i*dim+j] = e.Tok.W.At(t, j) + e.Pos.W.At(i, j)
		}
	}
	return out
}

// Backward accumulates table gradients from dy.
func (e *Embedding) Backward(tokens []int, dy *tensor.Mat) {
	dim := e.Tok.W.Cols
	for i, t := range tokens {
		for j := 0; j < dim; j++ {
			g := dy.Data[i*dim+j]
			e.Tok.G.Data[t*dim+j] += g
			e.Pos.G.Data[i*dim+j] += g
		}
	}
}

// Params returns the trainable parameters.
func (e *Embedding) Params() []*Param { return []*Param{e.Tok, e.Pos} }

// CrossEntropy computes the mean next-token loss and the logits gradient.
func CrossEntropy(logits *tensor.Mat, targets []int) (float64, *tensor.Mat) {
	if len(targets) != logits.Rows {
		panic(fmt.Sprintf("train: %d targets for %d logit rows", len(targets), logits.Rows))
	}
	probs := tensor.SoftmaxRows(logits)
	dlogits := probs.Clone()
	var loss float64
	inv := 1 / float64(len(targets))
	for i, t := range targets {
		p := probs.At(i, t)
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		dlogits.Set(i, t, dlogits.At(i, t)-1)
	}
	for i := range dlogits.Data {
		dlogits.Data[i] *= inv
	}
	return loss * inv, dlogits
}
