package train

import (
	"fmt"
	"sync"

	"adapipe/internal/tensor"
)

// DataParallel trains d replicated pipelines with synchronous gradient
// all-reduce, the DP dimension of the paper's 3D parallelism (§3). Every
// replica holds an identical copy of the model (same construction seed);
// each iteration splits the global micro-batches across replicas, sums the
// replica gradients, and applies identical optimizer updates, so parameters
// stay bit-identical across replicas.
type DataParallel struct {
	// Replicas are the per-replica pipelines.
	Replicas []*Pipeline
}

// NewDataParallel wraps d pipelines built by mk (which must construct
// identically-initialized stages, e.g. from the same Config seed).
func NewDataParallel(d int, mk func() (*Pipeline, error)) (*DataParallel, error) {
	if d < 1 {
		return nil, fmt.Errorf("train: need at least one replica, got %d", d)
	}
	dp := &DataParallel{}
	for r := 0; r < d; r++ {
		pipe, err := mk()
		if err != nil {
			return nil, err
		}
		dp.Replicas = append(dp.Replicas, pipe)
	}
	// All replicas must agree on the parameter layout.
	ref := paramsOf(dp.Replicas[0])
	for r := 1; r < d; r++ {
		ps := paramsOf(dp.Replicas[r])
		if len(ps) != len(ref) {
			return nil, fmt.Errorf("train: replica %d has %d params, replica 0 has %d", r, len(ps), len(ref))
		}
		for i := range ps {
			if !ps[i].W.SameShape(ref[i].W) {
				return nil, fmt.Errorf("train: replica %d param %s shape mismatch", r, ps[i].Name)
			}
		}
	}
	return dp, nil
}

func paramsOf(p *Pipeline) []*Param {
	var out []*Param
	for _, s := range p.Stages {
		out = append(out, s.Params()...)
	}
	return out
}

// Step runs one globally-synchronous iteration: the batches are split evenly
// across replicas (len(batches) must divide by the replica count), gradients
// are all-reduced, and every replica applies the same optimizer update. The
// returned loss is the mean over all micro-batches.
func (dp *DataParallel) Step(batches []Batch) (float64, error) {
	d := len(dp.Replicas)
	if len(batches)%d != 0 {
		return 0, fmt.Errorf("train: %d micro-batches not divisible by %d replicas", len(batches), d)
	}
	per := len(batches) / d

	losses := make([]float64, d)
	errs := make([]error, d)
	var wg sync.WaitGroup
	for r := 0; r < d; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			losses[r], errs[r] = dp.Replicas[r].Accumulate(batches[r*per : (r+1)*per])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}

	// All-reduce: sum gradients into replica 0's buffers, then broadcast.
	replicaParams := make([][]*Param, d)
	for r := 0; r < d; r++ {
		replicaParams[r] = paramsOf(dp.Replicas[r])
	}
	for i := range replicaParams[0] {
		g0 := replicaParams[0][i].G
		for r := 1; r < d; r++ {
			for j := range g0.Data {
				g0.Data[j] += replicaParams[r][i].G.Data[j]
			}
		}
		for r := 1; r < d; r++ {
			copy(replicaParams[r][i].G.Data, g0.Data)
		}
	}
	for r := 0; r < d; r++ {
		dp.Replicas[r].ApplyOptimizer(float64(len(batches)))
	}

	var mean float64
	for _, l := range losses {
		mean += l
	}
	return mean / float64(d), nil
}

// InSync reports the maximum absolute parameter divergence across replicas
// (zero when DP is working correctly).
func (dp *DataParallel) InSync() float64 {
	if len(dp.Replicas) < 2 {
		return 0
	}
	ref := paramsOf(dp.Replicas[0])
	var worst float64
	for r := 1; r < len(dp.Replicas); r++ {
		ps := paramsOf(dp.Replicas[r])
		for i := range ps {
			for j := range ps[i].W.Data {
				if d := ps[i].W.Data[j] - ref[i].W.Data[j]; d > worst {
					worst = d
				} else if -d > worst {
					worst = -d
				}
			}
		}
	}
	return worst
}

// RunDataParallel is Run with d synchronized replicas: each step's
// MicroBatches are split across replicas and gradients are all-reduced.
func RunDataParallel(d int, rc RunConfig) (RunResult, error) {
	mk := func() (*Pipeline, error) {
		net, err := NewNet(rc.Net)
		if err != nil {
			return nil, err
		}
		stages, err := Split(net, rc.Bounds, rc.Saves)
		if err != nil {
			return nil, err
		}
		return NewPipeline(stages, rc.LR), nil
	}
	dp, err := NewDataParallel(d, mk)
	if err != nil {
		return RunResult{}, err
	}
	corpus := NewCorpus(rc.Net.Vocab, 1<<16, rc.DataSeed+7)
	rng := tensor.NewRNG(rc.DataSeed)
	var res RunResult
	for step := 0; step < rc.Steps; step++ {
		batches := corpus.Batches(rc.MicroBatches, rc.Net.Seq, rng)
		loss, err := dp.Step(batches)
		if err != nil {
			// Losses holds only the completed steps; the caller must not
			// mistake a zero tail for converged loss.
			res.PeakActBytes = dp.Replicas[0].PeakActBytes
			return res, err
		}
		res.Losses = append(res.Losses, loss)
	}
	res.PeakActBytes = dp.Replicas[0].PeakActBytes
	return res, nil
}
