package train

import "testing"

// TestPipelineRaceStress drives the concurrent 1F1B executor hard enough for
// the race detector to observe every cross-stage handoff: 4 stages deep, 8
// micro-batches in flight, several optimizer steps. Run with `go test -race`
// (the CI race target); without -race it still verifies run-to-run
// determinism of the losses.
func TestPipelineRaceStress(t *testing.T) {
	cfg := Config{Layers: 3, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 11}
	// Layer sequence length 8: Embedding + 6 half-blocks + Head, split into
	// 4 stages of 2 layers each.
	rc := RunConfig{
		Net:          cfg,
		Bounds:       []int{0, 2, 4, 6, 8},
		Steps:        4,
		MicroBatches: 8,
		LR:           1e-3,
		DataSeed:     13,
	}
	first, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Losses {
		if first.Losses[i] != second.Losses[i] {
			t.Fatalf("step %d: run-to-run loss drift %.17g vs %.17g", i, first.Losses[i], second.Losses[i])
		}
	}
	for s, b := range first.PeakActBytes {
		if b <= 0 {
			t.Errorf("stage %d recorded no live activations", s)
		}
	}
}
