package train

import (
	"adapipe/internal/model"
	"adapipe/internal/tensor"
)

// SaveSpec selects which computation units of a sub-layer keep their
// activations after the forward pass. Units left false are recomputed from
// the layer's input boundary right before the backward pass — the exact
// mechanism of §4.1. The final GEMM output of each sub-layer (the boundary
// tensor) is always saved, mirroring the planner's AlwaysSaved restriction.
type SaveSpec map[model.UnitKind]bool

// SaveAll returns a spec saving every unit (no recomputation).
func SaveAll() SaveSpec {
	return SaveSpec{
		model.UnitLayerNorm: true, model.UnitQProj: true, model.UnitKProj: true,
		model.UnitVProj: true, model.UnitCoreAttention: true,
		model.UnitFFNUp: true, model.UnitFFNAct: true,
	}
}

// SaveNone returns a spec recomputing every optional unit (the full-
// recomputation baseline at unit granularity).
func SaveNone() SaveSpec { return SaveSpec{} }

// Block is a pipeline-partitionable sub-layer: an Attention or FFN block with
// pre-LayerNorm and a residual connection.
type Block interface {
	// Kind reports the block's layer kind.
	Kind() model.LayerKind
	// Forward runs the block, saving activations per spec. The returned
	// context is passed to Backward.
	Forward(x *tensor.Mat, save SaveSpec) (*tensor.Mat, BlockCtx)
	// Backward recomputes dropped activations, accumulates parameter
	// gradients and returns dx.
	Backward(ctx BlockCtx, dy *tensor.Mat) *tensor.Mat
	// Params returns the trainable parameters.
	Params() []*Param
}

// BlockCtx is the saved state of one forward pass of one micro-batch.
type BlockCtx interface {
	// SavedBytes reports the activation memory the context pins, used by
	// the engine's live-memory accounting tests.
	SavedBytes() int64
}

// AttnBlock is a causal self-attention sub-layer:
// y = x + Out(core(Q(ln), K(ln), V(ln))).
type AttnBlock struct {
	LN    *LayerNorm
	Q     *Linear
	K     *Linear
	V     *Linear
	Out   *Linear
	Heads int
}

// NewAttnBlock builds an attention sub-layer with the given width.
func NewAttnBlock(name string, dim, heads int, rng *tensor.RNG) *AttnBlock {
	std := 0.02
	return &AttnBlock{
		LN:    NewLayerNorm(name+".ln", dim),
		Q:     NewLinear(name+".q", dim, dim, std, rng),
		K:     NewLinear(name+".k", dim, dim, std, rng),
		V:     NewLinear(name+".v", dim, dim, std, rng),
		Out:   NewLinear(name+".out", dim, dim, std, rng),
		Heads: heads,
	}
}

// Kind returns model.Attention.
func (b *AttnBlock) Kind() model.LayerKind { return model.Attention }

// Params returns all trainable parameters of the block.
func (b *AttnBlock) Params() []*Param {
	var ps []*Param
	for _, u := range []interface{ Params() []*Param }{b.LN, b.Q, b.K, b.V, b.Out} {
		ps = append(ps, u.Params()...)
	}
	return ps
}

type attnCtx struct {
	x    *tensor.Mat // input boundary, always kept
	ln   *tensor.Mat
	lnSt *lnCtx
	q    *tensor.Mat
	k    *tensor.Mat
	v    *tensor.Mat
	att  *tensor.Mat
	core *coreCtx
}

// SavedBytes sums the pinned activation payloads.
func (c *attnCtx) SavedBytes() int64 {
	var n int64
	for _, m := range []*tensor.Mat{c.x, c.ln, c.q, c.k, c.v, c.att} {
		if m != nil {
			n += m.Bytes()
		}
	}
	if c.lnSt != nil {
		n += c.lnSt.xhat.Bytes() + int64(len(c.lnSt.rstd))*8
	}
	if c.core != nil {
		for _, p := range c.core.probs {
			n += p.Bytes()
		}
	}
	return n
}

// Forward runs the sub-layer keeping only the units selected by save.
func (b *AttnBlock) Forward(x *tensor.Mat, save SaveSpec) (*tensor.Mat, BlockCtx) {
	ctx := &attnCtx{x: x}
	ln, lnSt := b.LN.Forward(x)
	q := b.Q.Forward(ln)
	k := b.K.Forward(ln)
	v := b.V.Forward(ln)
	att, core := attentionCore(q, k, v, b.Heads)
	y := tensor.Add(x, b.Out.Forward(att))
	if save[model.UnitLayerNorm] {
		ctx.ln, ctx.lnSt = ln, &lnSt
	}
	if save[model.UnitQProj] {
		ctx.q = q
	}
	if save[model.UnitKProj] {
		ctx.k = k
	}
	if save[model.UnitVProj] {
		ctx.v = v
	}
	if save[model.UnitCoreAttention] {
		ctx.att, ctx.core = att, &core
	}
	return y, ctx
}

// Backward replays any dropped unit from the saved boundary, then runs the
// gradient computation. The replay executes the identical float operations
// as the original forward, so gradients are bit-identical to the no-
// recomputation path.
func (b *AttnBlock) Backward(bc BlockCtx, dy *tensor.Mat) *tensor.Mat {
	ctx := bc.(*attnCtx)
	ln, lnSt := ctx.ln, ctx.lnSt
	if ln == nil {
		l, st := b.LN.Forward(ctx.x)
		ln, lnSt = l, &st
	}
	q := ctx.q
	if q == nil {
		q = b.Q.Forward(ln)
	}
	k := ctx.k
	if k == nil {
		k = b.K.Forward(ln)
	}
	v := ctx.v
	if v == nil {
		v = b.V.Forward(ln)
	}
	att, core := ctx.att, ctx.core
	if att == nil {
		a, c := attentionCore(q, k, v, b.Heads)
		att, core = a, &c
	}

	// y = x + Out(att): residual passes dy through.
	datt := b.Out.Backward(att, dy)
	dq, dk, dv := attentionCoreBackward(*core, q, k, v, datt, b.Heads)
	dln := b.Q.Backward(ln, dq)
	tensor.AddInPlace(dln, b.K.Backward(ln, dk))
	tensor.AddInPlace(dln, b.V.Backward(ln, dv))
	dx := b.LN.Backward(*lnSt, dln)
	tensor.AddInPlace(dx, dy)
	return dx
}

// FFNBlock is a feed-forward sub-layer: y = x + Down(gelu(Up(ln))).
type FFNBlock struct {
	LN   *LayerNorm
	Up   *Linear
	Down *Linear
}

// NewFFNBlock builds a feed-forward sub-layer.
func NewFFNBlock(name string, dim, ffn int, rng *tensor.RNG) *FFNBlock {
	std := 0.02
	return &FFNBlock{
		LN:   NewLayerNorm(name+".ln", dim),
		Up:   NewLinear(name+".up", dim, ffn, std, rng),
		Down: NewLinear(name+".down", ffn, dim, std, rng),
	}
}

// Kind returns model.FFN.
func (b *FFNBlock) Kind() model.LayerKind { return model.FFN }

// Params returns all trainable parameters of the block.
func (b *FFNBlock) Params() []*Param {
	var ps []*Param
	for _, u := range []interface{ Params() []*Param }{b.LN, b.Up, b.Down} {
		ps = append(ps, u.Params()...)
	}
	return ps
}

type ffnCtx struct {
	x    *tensor.Mat
	ln   *tensor.Mat
	lnSt *lnCtx
	up   *tensor.Mat
	act  *tensor.Mat
}

// SavedBytes sums the pinned activation payloads.
func (c *ffnCtx) SavedBytes() int64 {
	var n int64
	for _, m := range []*tensor.Mat{c.x, c.ln, c.up, c.act} {
		if m != nil {
			n += m.Bytes()
		}
	}
	if c.lnSt != nil {
		n += c.lnSt.xhat.Bytes() + int64(len(c.lnSt.rstd))*8
	}
	return n
}

// Forward runs the sub-layer keeping only the units selected by save.
func (b *FFNBlock) Forward(x *tensor.Mat, save SaveSpec) (*tensor.Mat, BlockCtx) {
	ctx := &ffnCtx{x: x}
	ln, lnSt := b.LN.Forward(x)
	up := b.Up.Forward(ln)
	act := geluForward(up)
	y := tensor.Add(x, b.Down.Forward(act))
	if save[model.UnitLayerNorm] {
		ctx.ln, ctx.lnSt = ln, &lnSt
	}
	if save[model.UnitFFNUp] {
		ctx.up = up
	}
	if save[model.UnitFFNAct] {
		ctx.act = act
	}
	return y, ctx
}

// Backward replays dropped units and computes gradients.
func (b *FFNBlock) Backward(bc BlockCtx, dy *tensor.Mat) *tensor.Mat {
	ctx := bc.(*ffnCtx)
	ln, lnSt := ctx.ln, ctx.lnSt
	if ln == nil {
		l, st := b.LN.Forward(ctx.x)
		ln, lnSt = l, &st
	}
	up := ctx.up
	if up == nil {
		up = b.Up.Forward(ln)
	}
	act := ctx.act
	if act == nil {
		act = geluForward(up)
	}

	dact := b.Down.Backward(act, dy)
	dup := geluBackward(up, dact)
	dln := b.Up.Backward(ln, dup)
	dx := b.LN.Backward(*lnSt, dln)
	tensor.AddInPlace(dx, dy)
	return dx
}
