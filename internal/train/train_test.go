package train

import (
	"math"
	"testing"
	"testing/quick"

	"adapipe/internal/model"
	"adapipe/internal/tensor"
)

func tinyNet(t *testing.T, layers int, seed uint64) *Net {
	t.Helper()
	n, err := NewNet(Config{Layers: layers, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// cloneGrads snapshots every parameter gradient of a stage list.
func cloneGrads(stages []*Stage) [][]float64 {
	var out [][]float64
	for _, s := range stages {
		for _, p := range s.Params() {
			out = append(out, append([]float64(nil), p.G.Data...))
		}
	}
	return out
}

func zeroGrads(stages []*Stage) {
	for _, s := range stages {
		for _, p := range s.Params() {
			p.G.Zero()
		}
	}
}

// runOnce performs one forward+backward of a single micro-batch through a
// stage chain and returns the loss.
func runOnce(t *testing.T, stages []*Stage, tokens, targets []int) float64 {
	t.Helper()
	var x *tensor.Mat
	ctxs := make([]*StageCtx, len(stages))
	for i, s := range stages {
		x, ctxs[i] = s.Forward(tokens, x)
	}
	loss, dy := CrossEntropy(x, targets)
	for i := len(stages) - 1; i >= 0; i-- {
		dy = stages[i].Backward(ctxs[i], dy)
	}
	return loss
}

// TestRecomputationIsExact is the central invariant of §7.5: dropping and
// replaying activations must leave every gradient bit-identical, for every
// random save/recompute configuration.
func TestRecomputationIsExact(t *testing.T) {
	kinds := []model.UnitKind{
		model.UnitLayerNorm, model.UnitQProj, model.UnitKProj, model.UnitVProj,
		model.UnitCoreAttention, model.UnitFFNUp, model.UnitFFNAct,
	}
	f := func(mask uint16, seed uint16) bool {
		net := mustNet(Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: uint64(seed) + 1})
		netRef := mustNet(Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: uint64(seed) + 1})

		// Random per-block save specs from the mask bits.
		saves := make([][]SaveSpec, 1)
		for b := 0; b < 4; b++ {
			spec := SaveSpec{}
			for ki, k := range kinds {
				if mask>>(uint(b*3+ki)%16)&1 == 1 {
					spec[k] = true
				}
			}
			saves[0] = append(saves[0], spec)
		}
		stages, err := Split(net, []int{0, 6}, saves)
		if err != nil {
			return false
		}
		ref, err := Split(netRef, []int{0, 6}, nil) // save everything
		if err != nil {
			return false
		}
		corpus := NewCorpus(20, 4096, 5)
		rng := tensor.NewRNG(uint64(seed)*31 + 7)
		tokens, targets := corpus.Sample(12, rng)

		l1 := runOnceQuick(stages, tokens, targets)
		l2 := runOnceQuick(ref, tokens, targets)
		if l1 != l2 {
			return false
		}
		g1 := cloneGrads(stages)
		g2 := cloneGrads(ref)
		for i := range g1 {
			for j := range g1[i] {
				if g1[i][j] != g2[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func mustNet(cfg Config) *Net {
	n, err := NewNet(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

func runOnceQuick(stages []*Stage, tokens, targets []int) float64 {
	var x *tensor.Mat
	ctxs := make([]*StageCtx, len(stages))
	for i, s := range stages {
		x, ctxs[i] = s.Forward(tokens, x)
	}
	loss, dy := CrossEntropy(x, targets)
	for i := len(stages) - 1; i >= 0; i-- {
		dy = stages[i].Backward(ctxs[i], dy)
	}
	return loss
}

func TestPipelineMatchesSingleStage(t *testing.T) {
	// The multi-goroutine 1F1B executor must produce exactly the losses of
	// a sequential single-stage run on the same seeds.
	cfg := Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 3}
	single, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 6}, Steps: 10, MicroBatches: 4, LR: 2e-3, DataSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 3, 6}, Steps: 10, MicroBatches: 4, LR: 2e-3, DataSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Losses {
		if single.Losses[i] != multi.Losses[i] {
			t.Fatalf("step %d: single %.17g, pipelined %.17g", i, single.Losses[i], multi.Losses[i])
		}
	}
}

func TestThreeAndFourStagePipelines(t *testing.T) {
	cfg := Config{Layers: 3, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 9}
	// Layer sequence length 8: Embedding + 6 blocks + Head.
	ref, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 8}, Steps: 5, MicroBatches: 4, LR: 1e-3, DataSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, bounds := range [][]int{{0, 3, 6, 8}, {0, 2, 4, 6, 8}} {
		got, err := Run(RunConfig{Net: cfg, Bounds: bounds, Steps: 5, MicroBatches: 4, LR: 1e-3, DataSeed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Losses {
			if ref.Losses[i] != got.Losses[i] {
				t.Fatalf("bounds %v step %d: %.17g vs %.17g", bounds, i, got.Losses[i], ref.Losses[i])
			}
		}
	}
}

func TestLossDescends(t *testing.T) {
	cfg := Config{Layers: 2, Dim: 32, Heads: 4, FFN: 64, Vocab: 32, Seq: 24, Seed: 42}
	res, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 3, 6}, Steps: 60, MicroBatches: 4, LR: 3e-3, DataSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	first := avg(res.Losses[:10])
	last := avg(res.Losses[len(res.Losses)-10:])
	if last >= first {
		t.Errorf("loss did not descend: first-10 avg %.4f, last-10 avg %.4f", first, last)
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRecomputationCutsPeakActivations(t *testing.T) {
	cfg := Config{Layers: 2, Dim: 32, Heads: 4, FFN: 64, Vocab: 32, Seq: 24, Seed: 1}
	saveAll, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 3, 6}, Steps: 2, MicroBatches: 4, LR: 1e-3, DataSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	saves := [][]SaveSpec{{SaveNone(), SaveNone()}, {SaveNone(), SaveNone()}}
	recompute, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 3, 6}, Saves: saves, Steps: 2, MicroBatches: 4, LR: 1e-3, DataSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s := range saveAll.PeakActBytes {
		if recompute.PeakActBytes[s] >= saveAll.PeakActBytes[s] {
			t.Errorf("stage %d: recompute peak %d >= save-all peak %d",
				s, recompute.PeakActBytes[s], saveAll.PeakActBytes[s])
		}
	}
	// 1F1B imbalance: stage 0 holds more in-flight activations.
	if saveAll.PeakActBytes[0] <= saveAll.PeakActBytes[1] {
		t.Errorf("stage 0 peak %d should exceed stage 1 peak %d (in-flight imbalance)",
			saveAll.PeakActBytes[0], saveAll.PeakActBytes[1])
	}
}

func TestSplitValidation(t *testing.T) {
	net := tinyNet(t, 2, 1)
	if _, err := Split(net, []int{0, 6}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Split(net, []int{1, 6}, nil); err == nil {
		t.Error("bounds not starting at 0 accepted")
	}
	if _, err := Split(net, []int{0, 5}, nil); err == nil {
		t.Error("bounds not covering the sequence accepted")
	}
	if _, err := Split(net, []int{0, 3, 3, 6}, nil); err == nil {
		t.Error("empty stage accepted")
	}
}

func TestSplitAssignsComponents(t *testing.T) {
	net := tinyNet(t, 2, 1)
	stages, err := Split(net, []int{0, 3, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stages[0].Embed == nil || stages[0].HeadProj != nil {
		t.Error("stage 0 should hold the embedding only")
	}
	if stages[1].Embed != nil || stages[1].HeadProj == nil || stages[1].HeadLN == nil {
		t.Error("stage 1 should hold the head only")
	}
	if len(stages[0].Blocks)+len(stages[1].Blocks) != 4 {
		t.Errorf("blocks split %d+%d, want 4 total", len(stages[0].Blocks), len(stages[1].Blocks))
	}
	// Every parameter appears in exactly one stage.
	all := map[*Param]bool{}
	for _, p := range net.Params() {
		all[p] = true
	}
	seen := map[*Param]int{}
	for _, s := range stages {
		for _, p := range s.Params() {
			seen[p]++
		}
	}
	if len(seen) != len(all) {
		t.Errorf("stages carry %d params, net has %d", len(seen), len(all))
	}
	for p, c := range seen {
		if c != 1 {
			t.Errorf("param %s owned by %d stages", p.Name, c)
		}
	}
}

func TestSaveSpecControlsContextSize(t *testing.T) {
	rng := tensor.NewRNG(33)
	b := NewAttnBlock("b", 16, 2, rng)
	x := tensor.RandNorm(rng, 8, 16, 1)
	_, full := b.Forward(x, SaveAll())
	_, none := b.Forward(x, SaveNone())
	if none.SavedBytes() >= full.SavedBytes() {
		t.Errorf("SaveNone ctx %d >= SaveAll ctx %d", none.SavedBytes(), full.SavedBytes())
	}
	// The boundary input is always retained.
	if none.SavedBytes() < x.Bytes() {
		t.Errorf("ctx %d smaller than the pinned input %d", none.SavedBytes(), x.Bytes())
	}
	// Core attention dominates: saving it costs at least the per-head
	// probability matrices.
	_, coreOnly := b.Forward(x, SaveSpec{model.UnitCoreAttention: true})
	if coreOnly.SavedBytes() <= none.SavedBytes() {
		t.Error("saving core attention did not grow the context")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w||² directly through the optimizer plumbing.
	w := newParam("w", tensor.FromSlice(1, 3, []float64{5, -3, 2}))
	opt := NewAdam([]*Param{w}, 0.05)
	for i := 0; i < 2000; i++ {
		for j := range w.W.Data {
			w.G.Data[j] = 2 * w.W.Data[j]
		}
		opt.Step(1)
	}
	if n := tensor.Frobenius(w.W); n > 1e-3 {
		t.Errorf("Adam failed to minimize a quadratic: |w| = %g", n)
	}
	if opt.StateBytes() != 2*3*8 {
		t.Errorf("state bytes = %d", opt.StateBytes())
	}
}

func TestAdamGradScale(t *testing.T) {
	mk := func() (*Param, *Adam) {
		w := newParam("w", tensor.FromSlice(1, 1, []float64{1}))
		return w, NewAdam([]*Param{w}, 0.1)
	}
	// Accumulating g over 4 micro-batches then scaling by 4 equals a
	// single micro-batch with gradient g.
	w1, o1 := mk()
	w1.G.Data[0] = 4 * 0.5
	o1.Step(4)
	w2, o2 := mk()
	w2.G.Data[0] = 0.5
	o2.Step(1)
	if w1.W.Data[0] != w2.W.Data[0] {
		t.Errorf("grad scaling mismatch: %g vs %g", w1.W.Data[0], w2.W.Data[0])
	}
	if w1.G.Data[0] != 0 {
		t.Error("gradients not zeroed after step")
	}
}

func TestCorpusProperties(t *testing.T) {
	c := NewCorpus(32, 1<<17, 11)
	if c.Len() != 1<<17 {
		t.Fatalf("len = %d", c.Len())
	}
	for i, v := range c.data {
		if v < 0 || v >= 32 {
			t.Fatalf("token %d at %d out of range", v, i)
		}
	}
	// Deterministic.
	c2 := NewCorpus(32, 1<<17, 11)
	for i := range c.data {
		if c.data[i] != c2.data[i] {
			t.Fatal("corpus not deterministic")
		}
	}
	// Markov structure: the conditional next-token distribution must be
	// far from uniform (otherwise there is nothing to learn).
	counts := map[[3]int]int{}
	pair := map[[2]int]int{}
	for i := 2; i < c.Len(); i++ {
		counts[[3]int{c.data[i-2], c.data[i-1], c.data[i]}]++
		pair[[2]int{c.data[i-2], c.data[i-1]}]++
	}
	var peaked int
	var contexts int
	for k, n := range pair {
		if n < 20 {
			continue
		}
		contexts++
		best := 0
		for next := 0; next < 32; next++ {
			if c := counts[[3]int{k[0], k[1], next}]; c > best {
				best = c
			}
		}
		if float64(best)/float64(n) > 0.25 { // uniform would be ~1/32
			peaked++
		}
	}
	if contexts == 0 || peaked*2 < contexts {
		t.Errorf("corpus lacks learnable structure: %d/%d peaked contexts", peaked, contexts)
	}
	// Sampling: targets shifted by one.
	rng := tensor.NewRNG(1)
	tok, tgt := c.Sample(16, rng)
	for i := 0; i < 15; i++ {
		if tok[i+1] != tgt[i] {
			t.Fatal("targets are not the shifted input")
		}
	}
	batches := c.Batches(3, 8, rng)
	if len(batches) != 3 || len(batches[0].Tokens) != 8 {
		t.Fatal("bad batch shape")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := Config{Layers: 1, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 1}
	if _, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 2, 4}, Steps: 1, MicroBatches: 1, LR: 1e-3}); err == nil {
		t.Error("n < stages accepted")
	}
	bad := cfg
	bad.Dim = 15
	if _, err := Run(RunConfig{Net: bad, Bounds: []int{0, 4}, Steps: 1, MicroBatches: 1, LR: 1e-3}); err == nil {
		t.Error("invalid net config accepted")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
}

func TestInitializationIndependentOfPartitioning(t *testing.T) {
	// The same seed yields identical parameters regardless of how the net
	// is later split, which is what makes cross-partitioning loss curves
	// comparable bit-for-bit.
	a := mustNet(Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 7})
	b := mustNet(Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 7})
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param count mismatch")
	}
	for i := range pa {
		if tensor.MaxAbsDiff(pa[i].W, pb[i].W) != 0 {
			t.Fatalf("param %s differs across constructions", pa[i].Name)
		}
	}
	c := mustNet(Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 8})
	if tensor.MaxAbsDiff(a.Params()[0].W, c.Params()[0].W) == 0 {
		t.Error("different seeds produced identical embeddings")
	}
}

func TestHeadLNRecompute(t *testing.T) {
	// The head LayerNorm can also be recomputed; the logits must match.
	net := tinyNet(t, 1, 5)
	stages, err := Split(net, []int{0, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	corpus := NewCorpus(20, 1024, 3)
	rng := tensor.NewRNG(4)
	tokens, targets := corpus.Sample(12, rng)

	stages[0].SaveHeadLN = true
	l1 := runOnce(t, stages, tokens, targets)
	g1 := cloneGrads(stages)
	zeroGrads(stages)
	stages[0].SaveHeadLN = false
	l2 := runOnce(t, stages, tokens, targets)
	g2 := cloneGrads(stages)
	if l1 != l2 {
		t.Fatalf("head LN recompute changed the loss: %.17g vs %.17g", l1, l2)
	}
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatal("head LN recompute changed a gradient")
			}
		}
	}
}

func TestLayerSequenceMatchesModelPackage(t *testing.T) {
	net := tinyNet(t, 3, 1)
	seq := net.LayerSequence()
	want := model.Config{Name: "x", DecoderLayers: 3, Hidden: 16, Heads: 2, KVHeads: 2, FFNHidden: 32, Vocab: 20, BytesPerValue: 2}.LayerSequence()
	if len(seq) != len(want) {
		t.Fatalf("length %d vs %d", len(seq), len(want))
	}
	for i := range seq {
		if seq[i].Kind != want[i].Kind {
			t.Errorf("layer %d kind %v vs %v", i, seq[i].Kind, want[i].Kind)
		}
	}
}

func TestPeakActivationAccounting(t *testing.T) {
	// With n micro-batches and 2 stages, stage 0 holds at most 2 contexts
	// live under 1F1B, so its peak is below 2x a single context plus
	// rounding; verify it is strictly below n contexts (the GPipe bound).
	cfg := Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 1}
	res, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 3, 6}, Steps: 1, MicroBatches: 8, LR: 1e-3, DataSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := mustNet(cfg)
	stages, _ := Split(net, []int{0, 3, 6}, nil)
	corpus := NewCorpus(20, 4096, 8)
	rng := tensor.NewRNG(1)
	tokens, _ := corpus.Sample(12, rng)
	_, ctx := stages[0].Forward(tokens, nil)
	oneCtx := ctx.SavedBytes()
	if res.PeakActBytes[0] > 3*oneCtx {
		t.Errorf("stage 0 peak %d exceeds the 1F1B in-flight bound (~2 contexts of %d)", res.PeakActBytes[0], oneCtx)
	}
	if math.MaxInt64 == res.PeakActBytes[0] {
		t.Fatal("unreachable")
	}
}

// TestPipelinePartitionInvariance is the engine-level counterpart of the
// §7.5 validation as a property test: for random stage counts and split
// points, pipelined training produces bit-identical losses to the
// single-stage run.
func TestPipelinePartitionInvariance(t *testing.T) {
	cfg := Config{Layers: 3, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 11}
	ref, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 8}, Steps: 3, MicroBatches: 4, LR: 1e-3, DataSeed: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(cut1, cut2 uint8) bool {
		// Layer sequence has 8 entries; random 2- or 3-stage splits.
		a := 1 + int(cut1%7) // 1..7
		bounds := []int{0, a, 8}
		if b := 1 + int(cut2%7); b != a {
			if b < a {
				a, b = b, a
			}
			bounds = []int{0, a, b, 8}
		}
		n := 4
		if n < len(bounds)-1 {
			return true // cannot fill the pipeline; skip
		}
		got, err := Run(RunConfig{Net: cfg, Bounds: bounds, Steps: 3, MicroBatches: n, LR: 1e-3, DataSeed: 6})
		if err != nil {
			return false
		}
		for i := range ref.Losses {
			if got.Losses[i] != ref.Losses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
