package train

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"time"

	"adapipe/internal/core"
	"adapipe/internal/obs"
)

// ErrNonFinite is wrapped by the supervisor's guard when a step produces a
// NaN/Inf loss or gradient; test with errors.Is.
var ErrNonFinite = errors.New("train: non-finite loss or gradient")

// Recovery is the step-level failure policy. The zero value disables
// recovery entirely: any iteration failure aborts the run, matching the
// pre-recovery engine.
type Recovery struct {
	// MaxRetries bounds how many times one step is retried after an
	// iteration error or guard trip. Each retry restores parameters and
	// Adam state from the in-memory snapshot of the last completed step,
	// so a successful retry is bit-identical to a fault-free step.
	MaxRetries int
	// Backoff is the base sleep before retry k sleeps Backoff << k;
	// zero retries immediately.
	Backoff time.Duration
	// GuardNonFinite scans the loss and every accumulated gradient before
	// the optimizer step; a NaN/Inf triggers a retry, and once the retry
	// budget is spent the step is skipped (gradients discarded, parameters
	// untouched) instead of poisoning the model.
	GuardNonFinite bool
}

func (r Recovery) enabled() bool { return r.MaxRetries > 0 || r.GuardNonFinite }

// HealthModel classifies step failures into transient faults and permanent
// node losses. *fault.Membership satisfies it; the supervisor depends only on
// this interface so train stays free of a fault import. The policy knob it
// embodies (how many consecutive failures before a node is declared dead) is
// deliberately distinct from Recovery.MaxRetries: retries answer "how often
// do we replay a step", the health threshold answers "when do we stop
// believing the node will come back".
type HealthModel interface {
	// ObserveFailure attributes one failed step to a stage. lost reports a
	// node newly declared permanently dead; down reports that the stage has
	// no backing left and the pipeline must be resized.
	ObserveFailure(stage int) (lost, down bool)
	// ObserveSuccess records a healthy step, clearing failure evidence.
	ObserveSuccess()
	// Resize reinstalls the model for a new pipeline shape after a resize.
	Resize(stages int) error
}

// Elastic configures elastic recovery: surviving permanent node loss (and
// optionally adopting scale-up arrivals) by replanning the surviving cluster
// shape and migrating training state onto it exactly. The zero value disables
// elasticity, matching the pre-elastic supervisor.
type Elastic struct {
	// Health classifies step failures; nil disables loss detection.
	Health HealthModel
	// Rebuild builds a pipeline for the cluster without the down stage's
	// backing (typically: hardware.Cluster.Resize, core.ReplanWithShape,
	// then Split a fresh net on the new bounds). The supervisor restores
	// the last snapshot and migrates state into the result via Rebind, so
	// Rebuild only plans and allocates — it never touches training state.
	// Required when Health is set: detecting a down stage with no way to
	// rebuild is a hard error.
	Rebuild func(downStage int) (*Pipeline, error)
	// Grow, when non-nil, is offered the injector's cumulative scale-up
	// arrival count after each completed step. Returning a nil pipeline
	// declines the offer (e.g. the planner found no faster shape); either
	// way the arrivals are recorded and not re-offered.
	Grow func(arrived int) (*Pipeline, error)
}

// Supervisor drives a pipeline step-by-step and applies the Recovery policy:
// snapshot after every completed step, guard before every optimizer step,
// bounded retry-with-backoff from the snapshot on failure. With an Elastic
// policy it additionally classifies repeated same-stage failures as permanent
// node loss and resizes the pipeline onto the surviving shape. It is the
// engine half of the fault-tolerance layer (internal/fault is the attack
// half).
type Supervisor struct {
	// Pipe is the supervised pipeline; Rebind swaps it mid-run.
	Pipe *Pipeline
	// Policy is the recovery policy, fixed at construction.
	Policy Recovery
	// Elastic is the elastic recovery policy; the zero value disables it.
	Elastic Elastic
	// Clock injects time for retry backoff and resize wall-time accounting;
	// nil uses core.RealClock().
	Clock obs.Clock
	// Stats counts recovery actions (retries, skips, watchdog trips,
	// losses detected, resizes). Injected-fault counts live in the
	// injector; Counters merges both.
	Stats obs.FaultCounters

	snapshot []byte
	step     int
	// arrived is the scale-up arrival count already offered to Grow.
	arrived int
}

// NewSupervisor wraps a pipeline. With retries enabled it snapshots the
// initial parameters and optimizer state so even step 0 can be retried.
func NewSupervisor(p *Pipeline, policy Recovery) (*Supervisor, error) {
	sup := &Supervisor{Pipe: p, Policy: policy}
	if policy.MaxRetries > 0 {
		if err := sup.snap(); err != nil {
			return nil, err
		}
	}
	return sup, nil
}

// StepsCompleted reports how many steps have finished (applied or skipped).
func (sup *Supervisor) StepsCompleted() int { return sup.step }

// Counters returns recovery stats merged with the injector's fault counts.
// Counts from injectors retired by an elastic Rebind are folded into Stats at
// rebind time, so the sum stays lifetime-accurate across resizes.
func (sup *Supervisor) Counters() obs.FaultCounters {
	c := sup.Stats
	if fi := sup.Pipe.Fault; fi != nil {
		s, p, cr, nl := fi.InjectedCounts()
		c.Stragglers += s
		c.Panics += p
		c.Corruptions += cr
		c.NodeLosses += nl
	}
	return c
}

// Step runs one training iteration under the recovery policy. On success the
// optimizer is applied and a fresh snapshot taken. An iteration error or
// guard trip is retried up to MaxRetries times from the snapshot; a guard
// trip that exhausts the budget skips the optimizer step (returning the
// non-finite loss and a nil error so the run continues); an iteration error
// that exhausts the budget is returned.
//
// With an Elastic policy, every failure is also reported to the health model.
// When the blamed stage's backing is exhausted the supervisor resizes —
// restore the snapshot, Rebuild the surviving shape, Rebind onto it — and
// restarts the step with a fresh retry budget: no number of retries on the
// old shape can outrun a dead node, so the resize must not be charged
// against the transient-failure budget.
func (sup *Supervisor) Step(batches []Batch) (float64, error) {
	for try := 0; ; try++ {
		loss, err := sup.Pipe.Accumulate(batches)
		if err == nil {
			if !sup.Policy.GuardNonFinite || sup.finite(loss) {
				if sup.Elastic.Health != nil {
					sup.Elastic.Health.ObserveSuccess()
				}
				sup.Pipe.ApplyOptimizer(float64(len(batches)))
				sup.step++
				if sup.Policy.MaxRetries > 0 {
					if serr := sup.snap(); serr != nil {
						return loss, serr
					}
				}
				if gerr := sup.checkArrivals(); gerr != nil {
					return loss, gerr
				}
				return loss, nil
			}
			err = fmt.Errorf("train: step %d: %w", sup.step, ErrNonFinite)
		}
		if errors.Is(err, ErrWatchdog) {
			sup.Stats.WatchdogTrips++
		}
		if resized, herr := sup.observeFailure(err); herr != nil {
			return 0, herr
		} else if resized {
			try = -1 // fresh budget on the new shape (the loop's try++ makes it 0)
			continue
		}
		if try < sup.Policy.MaxRetries {
			sup.Stats.Retries++
			if rerr := sup.restore(); rerr != nil {
				return 0, rerr
			}
			if sup.Policy.Backoff > 0 {
				sup.sleep(sup.Policy.Backoff << try)
			}
			continue
		}
		if errors.Is(err, ErrNonFinite) {
			// Retry budget spent on a numeric blow-up: discard the poisoned
			// gradients and move on. Parameters are untouched (they only
			// change in ApplyOptimizer), so training continues from the
			// last good step; the recorded loss is the non-finite one.
			sup.Pipe.ZeroGrads()
			sup.Stats.SkippedSteps++
			sup.step++
			return loss, nil
		}
		return 0, err
	}
}

// observeFailure feeds a step failure to the elastic health model and, once
// the blamed stage's backing is exhausted, runs the resize. It reports
// whether a resize happened, in which case the caller restarts the step with
// a fresh retry budget.
func (sup *Supervisor) observeFailure(err error) (resized bool, _ error) {
	if sup.Elastic.Health == nil {
		return false, nil
	}
	var se *StageError
	if !errors.As(err, &se) {
		return false, nil
	}
	lost, down := sup.Elastic.Health.ObserveFailure(se.Stage)
	if lost {
		sup.Stats.LossesDetected++
	}
	if !down {
		return false, nil
	}
	return true, sup.resize(se.Stage)
}

// resize survives a permanent node loss: restore the last snapshot, Rebuild
// a pipeline for the surviving cluster shape, Rebind training state onto it
// exactly, and reinstall the health model for the new stage count. The wall
// time of the whole cycle lands in Stats.ReplanWallNanos.
func (sup *Supervisor) resize(downStage int) error {
	if sup.Elastic.Rebuild == nil {
		return fmt.Errorf("train: stage %d is permanently down and no elastic Rebuild is configured", downStage)
	}
	start := sup.clock()()
	if err := sup.restore(); err != nil {
		return err
	}
	next, err := sup.Elastic.Rebuild(downStage)
	if err != nil {
		return fmt.Errorf("train: elastic rebuild after stage %d loss: %w", downStage, err)
	}
	if err := sup.Rebind(next); err != nil {
		return err
	}
	if err := sup.Elastic.Health.Resize(len(next.Stages)); err != nil {
		return err
	}
	sup.Stats.Resizes++
	sup.Stats.ReplanWallNanos += sup.clock()().Sub(start).Nanoseconds()
	return nil
}

// nodeArrivals is the optional injector capability elastic scale-up keys on;
// *fault.Injector implements it.
type nodeArrivals interface{ ArrivedNodes(attempt int) int }

// checkArrivals polls the injector for scale-up arrivals after a completed
// step and offers newly arrived nodes to the Grow hook.
func (sup *Supervisor) checkArrivals() error {
	if sup.Elastic.Grow == nil {
		return nil
	}
	na, ok := sup.Pipe.Fault.(nodeArrivals)
	if !ok {
		return nil
	}
	arrived := na.ArrivedNodes(sup.Pipe.Attempts())
	if arrived <= sup.arrived {
		return nil
	}
	start := sup.clock()()
	next, err := sup.Elastic.Grow(arrived)
	if err != nil {
		return fmt.Errorf("train: elastic grow to %d arrived nodes: %w", arrived, err)
	}
	sup.arrived = arrived
	if next == nil {
		return nil // declined; the arrivals stay recorded so they are not re-offered
	}
	if err := sup.Rebind(next); err != nil {
		return err
	}
	if sup.Elastic.Health != nil {
		if err := sup.Elastic.Health.Resize(len(next.Stages)); err != nil {
			return err
		}
	}
	sup.Stats.Resizes++
	sup.Stats.ReplanWallNanos += sup.clock()().Sub(start).Nanoseconds()
	return nil
}

// Rebind moves supervised training onto a re-partitioned pipeline: the
// current parameters and optimizer state are checkpointed out of the old
// pipeline and restored (by parameter name) into the new one. The new
// pipeline inherits the fault injector, watchdog and recorder only where it
// has none of its own, so an elastic Rebuild can install a fresh injector
// for the new shape; when an injector is retired this way its fault counts
// are folded into Stats first. This is how straggler-driven replans and
// elastic resizes are adopted mid-run without losing progress.
func (sup *Supervisor) Rebind(next *Pipeline) error {
	if next == nil {
		return errors.New("train: cannot rebind to a nil pipeline")
	}
	if got, want := next.LayerCount(), sup.Pipe.LayerCount(); got != want {
		return fmt.Errorf("train: rebind layer-count mismatch: next pipeline holds %d layers, current holds %d (repartitioning moves boundaries, it cannot create or destroy layers)", got, want)
	}
	b, err := sup.Pipe.CheckpointBytes(sup.step)
	if err != nil {
		return err
	}
	if _, err := next.LoadCheckpoint(bytes.NewReader(b)); err != nil {
		return err
	}
	if next.Fault == nil {
		next.Fault = sup.Pipe.Fault
	} else if old := sup.Pipe.Fault; old != nil && old != next.Fault {
		s, p, cr, nl := old.InjectedCounts()
		sup.Stats.Stragglers += s
		sup.Stats.Panics += p
		sup.Stats.Corruptions += cr
		sup.Stats.NodeLosses += nl
	}
	if next.Watchdog == 0 {
		next.Watchdog = sup.Pipe.Watchdog
	}
	if next.Recorder == nil {
		next.Recorder = sup.Pipe.Recorder
	}
	sup.Pipe = next
	if sup.Policy.MaxRetries > 0 {
		sup.snapshot = b
	}
	return nil
}

// clock returns the supervisor's time source (Clock, or the real clock).
func (sup *Supervisor) clock() obs.Clock {
	if sup.Clock != nil {
		return sup.Clock
	}
	return core.RealClock()
}

// sleep pauses for d as measured on the supervisor's clock. Under the real
// clock this is a single time.Sleep; under a fake clock that advances on
// read it returns as soon as the clock passes the deadline, so backoff tests
// spend no wall time.
func (sup *Supervisor) sleep(d time.Duration) {
	clock := sup.clock()
	deadline := clock().Add(d)
	for {
		rem := deadline.Sub(clock())
		if rem <= 0 {
			return
		}
		time.Sleep(rem)
	}
}

// snap captures the post-step parameters and optimizer state in memory.
func (sup *Supervisor) snap() error {
	b, err := sup.Pipe.CheckpointBytes(sup.step)
	if err != nil {
		return err
	}
	sup.snapshot = b
	return nil
}

// restore rewinds to the last snapshot. Without one (guard-only policy)
// discarding gradients is sufficient: a failed Accumulate never touches
// parameters or optimizer state.
func (sup *Supervisor) restore() error {
	if sup.snapshot == nil {
		sup.Pipe.ZeroGrads()
		return nil
	}
	if _, err := sup.Pipe.LoadCheckpoint(bytes.NewReader(sup.snapshot)); err != nil {
		return err
	}
	return nil
}

// finite reports whether the loss and every accumulated gradient are finite.
func (sup *Supervisor) finite(loss float64) bool {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return false
	}
	for _, s := range sup.Pipe.Stages {
		for _, prm := range s.Params() {
			for _, v := range prm.G.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
	}
	return true
}
