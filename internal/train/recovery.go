package train

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"time"

	"adapipe/internal/obs"
)

// ErrNonFinite is wrapped by the supervisor's guard when a step produces a
// NaN/Inf loss or gradient; test with errors.Is.
var ErrNonFinite = errors.New("train: non-finite loss or gradient")

// Recovery is the step-level failure policy. The zero value disables
// recovery entirely: any iteration failure aborts the run, matching the
// pre-recovery engine.
type Recovery struct {
	// MaxRetries bounds how many times one step is retried after an
	// iteration error or guard trip. Each retry restores parameters and
	// Adam state from the in-memory snapshot of the last completed step,
	// so a successful retry is bit-identical to a fault-free step.
	MaxRetries int
	// Backoff is the base sleep before retry k sleeps Backoff << k;
	// zero retries immediately.
	Backoff time.Duration
	// GuardNonFinite scans the loss and every accumulated gradient before
	// the optimizer step; a NaN/Inf triggers a retry, and once the retry
	// budget is spent the step is skipped (gradients discarded, parameters
	// untouched) instead of poisoning the model.
	GuardNonFinite bool
}

func (r Recovery) enabled() bool { return r.MaxRetries > 0 || r.GuardNonFinite }

// Supervisor drives a pipeline step-by-step and applies the Recovery policy:
// snapshot after every completed step, guard before every optimizer step,
// bounded retry-with-backoff from the snapshot on failure. It is the engine
// half of the fault-tolerance layer (internal/fault is the attack half).
type Supervisor struct {
	// Pipe is the supervised pipeline; Rebind swaps it mid-run.
	Pipe *Pipeline
	// Policy is the recovery policy, fixed at construction.
	Policy Recovery
	// Stats counts recovery actions (retries, skips, watchdog trips).
	// Injected-fault counts live in the injector; Counters merges both.
	Stats obs.FaultCounters

	snapshot []byte
	step     int
}

// NewSupervisor wraps a pipeline. With retries enabled it snapshots the
// initial parameters and optimizer state so even step 0 can be retried.
func NewSupervisor(p *Pipeline, policy Recovery) (*Supervisor, error) {
	sup := &Supervisor{Pipe: p, Policy: policy}
	if policy.MaxRetries > 0 {
		if err := sup.snap(); err != nil {
			return nil, err
		}
	}
	return sup, nil
}

// StepsCompleted reports how many steps have finished (applied or skipped).
func (sup *Supervisor) StepsCompleted() int { return sup.step }

// Counters returns recovery stats merged with the injector's fault counts.
func (sup *Supervisor) Counters() obs.FaultCounters {
	c := sup.Stats
	if fi := sup.Pipe.Fault; fi != nil {
		c.Stragglers, c.Panics, c.Corruptions = fi.InjectedCounts()
	}
	return c
}

// Step runs one training iteration under the recovery policy. On success the
// optimizer is applied and a fresh snapshot taken. An iteration error or
// guard trip is retried up to MaxRetries times from the snapshot; a guard
// trip that exhausts the budget skips the optimizer step (returning the
// non-finite loss and a nil error so the run continues); an iteration error
// that exhausts the budget is returned.
func (sup *Supervisor) Step(batches []Batch) (float64, error) {
	for try := 0; ; try++ {
		loss, err := sup.Pipe.Accumulate(batches)
		if err == nil {
			if !sup.Policy.GuardNonFinite || sup.finite(loss) {
				sup.Pipe.ApplyOptimizer(float64(len(batches)))
				sup.step++
				if sup.Policy.MaxRetries > 0 {
					if serr := sup.snap(); serr != nil {
						return loss, serr
					}
				}
				return loss, nil
			}
			err = fmt.Errorf("train: step %d: %w", sup.step, ErrNonFinite)
		}
		if errors.Is(err, ErrWatchdog) {
			sup.Stats.WatchdogTrips++
		}
		if try < sup.Policy.MaxRetries {
			sup.Stats.Retries++
			if rerr := sup.restore(); rerr != nil {
				return 0, rerr
			}
			if sup.Policy.Backoff > 0 {
				time.Sleep(sup.Policy.Backoff << try)
			}
			continue
		}
		if errors.Is(err, ErrNonFinite) {
			// Retry budget spent on a numeric blow-up: discard the poisoned
			// gradients and move on. Parameters are untouched (they only
			// change in ApplyOptimizer), so training continues from the
			// last good step; the recorded loss is the non-finite one.
			sup.Pipe.ZeroGrads()
			sup.Stats.SkippedSteps++
			sup.step++
			return loss, nil
		}
		return 0, err
	}
}

// Rebind moves supervised training onto a re-partitioned pipeline: the
// current parameters and optimizer state are checkpointed out of the old
// pipeline and restored (by parameter name) into the new one, which then
// inherits the fault injector, watchdog and recorder. This is how a
// straggler-driven replan is adopted mid-run without losing progress.
func (sup *Supervisor) Rebind(next *Pipeline) error {
	b, err := sup.Pipe.CheckpointBytes(sup.step)
	if err != nil {
		return err
	}
	if _, err := next.LoadCheckpoint(bytes.NewReader(b)); err != nil {
		return err
	}
	next.Fault = sup.Pipe.Fault
	next.Watchdog = sup.Pipe.Watchdog
	next.Recorder = sup.Pipe.Recorder
	sup.Pipe = next
	if sup.Policy.MaxRetries > 0 {
		sup.snapshot = b
	}
	return nil
}

// snap captures the post-step parameters and optimizer state in memory.
func (sup *Supervisor) snap() error {
	b, err := sup.Pipe.CheckpointBytes(sup.step)
	if err != nil {
		return err
	}
	sup.snapshot = b
	return nil
}

// restore rewinds to the last snapshot. Without one (guard-only policy)
// discarding gradients is sufficient: a failed Accumulate never touches
// parameters or optimizer state.
func (sup *Supervisor) restore() error {
	if sup.snapshot == nil {
		sup.Pipe.ZeroGrads()
		return nil
	}
	if _, err := sup.Pipe.LoadCheckpoint(bytes.NewReader(sup.snapshot)); err != nil {
		return err
	}
	return nil
}

// finite reports whether the loss and every accumulated gradient are finite.
func (sup *Supervisor) finite(loss float64) bool {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return false
	}
	for _, s := range sup.Pipe.Stages {
		for _, prm := range s.Params() {
			for _, v := range prm.G.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
	}
	return true
}
