package train

import (
	"math"

	"adapipe/internal/model"
	"adapipe/internal/tensor"
)

// GatedFFNBlock is a SwiGLU feed-forward sub-layer (Llama-2 style):
// y = x + Down(SiLU(Gate(ln)) ⊙ Up(ln)).
type GatedFFNBlock struct {
	LN   *LayerNorm
	Up   *Linear
	Gate *Linear
	Down *Linear
}

// NewGatedFFNBlock builds a gated feed-forward sub-layer.
func NewGatedFFNBlock(name string, dim, ffn int, rng *tensor.RNG) *GatedFFNBlock {
	std := 0.02
	return &GatedFFNBlock{
		LN:   NewLayerNorm(name+".ln", dim),
		Up:   NewLinear(name+".up", dim, ffn, std, rng),
		Gate: NewLinear(name+".gate", dim, ffn, std, rng),
		Down: NewLinear(name+".down", ffn, dim, std, rng),
	}
}

// Kind returns model.FFN (gated and plain FFN layers partition identically).
func (b *GatedFFNBlock) Kind() model.LayerKind { return model.FFN }

// Params returns all trainable parameters of the block.
func (b *GatedFFNBlock) Params() []*Param {
	var ps []*Param
	for _, u := range []interface{ Params() []*Param }{b.LN, b.Up, b.Gate, b.Down} {
		ps = append(ps, u.Params()...)
	}
	return ps
}

type gatedCtx struct {
	x    *tensor.Mat
	ln   *tensor.Mat
	lnSt *lnCtx
	up   *tensor.Mat
	gate *tensor.Mat
	act  *tensor.Mat // SiLU(gate) ⊙ up
}

// SavedBytes sums the pinned activation payloads.
func (c *gatedCtx) SavedBytes() int64 {
	var n int64
	for _, m := range []*tensor.Mat{c.x, c.ln, c.up, c.gate, c.act} {
		if m != nil {
			n += m.Bytes()
		}
	}
	if c.lnSt != nil {
		n += c.lnSt.xhat.Bytes() + int64(len(c.lnSt.rstd))*8
	}
	return n
}

// siluForward applies x·σ(x) element-wise.
func siluForward(x *tensor.Mat) *tensor.Mat {
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = v / (1 + math.Exp(-v))
	}
	return y
}

// gatedAct computes SiLU(gate) ⊙ up.
func gatedAct(up, gate *tensor.Mat) *tensor.Mat {
	return tensor.Mul(siluForward(gate), up)
}

// gatedActBackward returns (dup, dgate) given the forward inputs.
func gatedActBackward(up, gate, dy *tensor.Mat) (*tensor.Mat, *tensor.Mat) {
	dup := tensor.New(up.Rows, up.Cols)
	dgate := tensor.New(up.Rows, up.Cols)
	for i := range up.Data {
		g := gate.Data[i]
		sig := 1 / (1 + math.Exp(-g))
		silu := g * sig
		dup.Data[i] = dy.Data[i] * silu
		// d(silu)/dg = σ(g)·(1 + g·(1−σ(g)))
		dgate.Data[i] = dy.Data[i] * up.Data[i] * sig * (1 + g*(1-sig))
	}
	return dup, dgate
}

// Forward runs the sub-layer keeping only the units selected by save.
func (b *GatedFFNBlock) Forward(x *tensor.Mat, save SaveSpec) (*tensor.Mat, BlockCtx) {
	ctx := &gatedCtx{x: x}
	ln, lnSt := b.LN.Forward(x)
	up := b.Up.Forward(ln)
	gate := b.Gate.Forward(ln)
	act := gatedAct(up, gate)
	y := tensor.Add(x, b.Down.Forward(act))
	if save[model.UnitLayerNorm] {
		ctx.ln, ctx.lnSt = ln, &lnSt
	}
	if save[model.UnitFFNUp] {
		ctx.up = up
	}
	if save[model.UnitFFNGate] {
		ctx.gate = gate
	}
	if save[model.UnitFFNAct] {
		ctx.act = act
	}
	return y, ctx
}

// Backward replays dropped units and computes gradients.
func (b *GatedFFNBlock) Backward(bc BlockCtx, dy *tensor.Mat) *tensor.Mat {
	ctx := bc.(*gatedCtx)
	ln, lnSt := ctx.ln, ctx.lnSt
	if ln == nil {
		l, st := b.LN.Forward(ctx.x)
		ln, lnSt = l, &st
	}
	up := ctx.up
	if up == nil {
		up = b.Up.Forward(ln)
	}
	gate := ctx.gate
	if gate == nil {
		gate = b.Gate.Forward(ln)
	}
	act := ctx.act
	if act == nil {
		act = gatedAct(up, gate)
	}

	dact := b.Down.Backward(act, dy)
	dup, dgate := gatedActBackward(up, gate, dact)
	dln := b.Up.Backward(ln, dup)
	tensor.AddInPlace(dln, b.Gate.Backward(ln, dgate))
	dx := b.LN.Backward(*lnSt, dln)
	tensor.AddInPlace(dx, dy)
	return dx
}
