package train

import (
	"math"
	"testing"

	"adapipe/internal/tensor"
)

// numericGrad perturbs each entry of data and evaluates loss() centrally.
func numericGrad(loss func() float64, data []float64) []float64 {
	const h = 1e-6
	out := make([]float64, len(data))
	for i := range data {
		orig := data[i]
		data[i] = orig + h
		lp := loss()
		data[i] = orig - h
		lm := loss()
		data[i] = orig
		out[i] = (lp - lm) / (2 * h)
	}
	return out
}

// maxRelErr compares gradients with a mixed absolute/relative metric: the
// 1e-3 floor keeps the finite-difference roundoff (~1e-9 absolute) from
// dominating near-zero entries, while real backward bugs show errors of
// order one.
func maxRelErr(analytic, numeric []float64) float64 {
	var worst float64
	for i := range analytic {
		scale := math.Abs(analytic[i]) + math.Abs(numeric[i]) + 1e-3
		if e := math.Abs(analytic[i]-numeric[i]) / scale; e > worst {
			worst = e
		}
	}
	return worst
}

// projLoss is a fixed random linear functional of the output, giving a
// scalar loss whose output gradient is the projection itself.
func projLoss(y, proj *tensor.Mat) float64 {
	var s float64
	for i := range y.Data {
		s += y.Data[i] * proj.Data[i]
	}
	return s
}

const gradTol = 1e-5

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(11)
	l := NewLinear("l", 5, 4, 0.5, rng)
	x := tensor.RandNorm(rng, 3, 5, 1)
	proj := tensor.RandNorm(rng, 3, 4, 1)
	loss := func() float64 { return projLoss(l.Forward(x), proj) }

	l.W.G.Zero()
	l.B.G.Zero()
	dx := l.Backward(x, proj)

	if e := maxRelErr(l.W.G.Data, numericGrad(loss, l.W.W.Data)); e > gradTol {
		t.Errorf("dW rel err %g", e)
	}
	if e := maxRelErr(l.B.G.Data, numericGrad(loss, l.B.W.Data)); e > gradTol {
		t.Errorf("dB rel err %g", e)
	}
	if e := maxRelErr(dx.Data, numericGrad(loss, x.Data)); e > gradTol {
		t.Errorf("dx rel err %g", e)
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := tensor.NewRNG(12)
	l := NewLayerNorm("ln", 6)
	// Non-trivial gain/bias so their gradients are exercised.
	for i := range l.G.W.Data {
		l.G.W.Data[i] = 1 + 0.3*rng.Norm()
		l.B.W.Data[i] = 0.2 * rng.Norm()
	}
	x := tensor.RandNorm(rng, 4, 6, 1)
	proj := tensor.RandNorm(rng, 4, 6, 1)
	loss := func() float64 {
		y, _ := l.Forward(x)
		return projLoss(y, proj)
	}
	l.G.G.Zero()
	l.B.G.Zero()
	_, ctx := l.Forward(x)
	dx := l.Backward(ctx, proj)

	if e := maxRelErr(dx.Data, numericGrad(loss, x.Data)); e > gradTol {
		t.Errorf("dx rel err %g", e)
	}
	if e := maxRelErr(l.G.G.Data, numericGrad(loss, l.G.W.Data)); e > gradTol {
		t.Errorf("dGain rel err %g", e)
	}
	if e := maxRelErr(l.B.G.Data, numericGrad(loss, l.B.W.Data)); e > gradTol {
		t.Errorf("dBias rel err %g", e)
	}
}

func TestGELUGradients(t *testing.T) {
	rng := tensor.NewRNG(13)
	x := tensor.RandNorm(rng, 3, 7, 2)
	proj := tensor.RandNorm(rng, 3, 7, 1)
	loss := func() float64 { return projLoss(geluForward(x), proj) }
	dx := geluBackward(x, proj)
	if e := maxRelErr(dx.Data, numericGrad(loss, x.Data)); e > gradTol {
		t.Errorf("gelu dx rel err %g", e)
	}
}

func TestAttentionCoreGradients(t *testing.T) {
	rng := tensor.NewRNG(14)
	const T, dim, heads = 5, 8, 2
	q := tensor.RandNorm(rng, T, dim, 1)
	k := tensor.RandNorm(rng, T, dim, 1)
	v := tensor.RandNorm(rng, T, dim, 1)
	proj := tensor.RandNorm(rng, T, dim, 1)
	loss := func() float64 {
		y, _ := attentionCore(q, k, v, heads)
		return projLoss(y, proj)
	}
	_, ctx := attentionCore(q, k, v, heads)
	dq, dk, dv := attentionCoreBackward(ctx, q, k, v, proj, heads)
	if e := maxRelErr(dq.Data, numericGrad(loss, q.Data)); e > gradTol {
		t.Errorf("dq rel err %g", e)
	}
	if e := maxRelErr(dk.Data, numericGrad(loss, k.Data)); e > gradTol {
		t.Errorf("dk rel err %g", e)
	}
	if e := maxRelErr(dv.Data, numericGrad(loss, v.Data)); e > gradTol {
		t.Errorf("dv rel err %g", e)
	}
}

func TestAttentionCausality(t *testing.T) {
	rng := tensor.NewRNG(15)
	const T, dim, heads = 6, 8, 2
	q := tensor.RandNorm(rng, T, dim, 1)
	k := tensor.RandNorm(rng, T, dim, 1)
	v := tensor.RandNorm(rng, T, dim, 1)
	y1, _ := attentionCore(q, k, v, heads)
	// Perturbing a future position must not change earlier outputs.
	k.Set(T-1, 0, k.At(T-1, 0)+10)
	v.Set(T-1, 3, v.At(T-1, 3)-7)
	y2, _ := attentionCore(q, k, v, heads)
	for i := 0; i < T-1; i++ {
		for j := 0; j < dim; j++ {
			if y1.At(i, j) != y2.At(i, j) {
				t.Fatalf("output at position %d changed after perturbing position %d", i, T-1)
			}
		}
	}
}

func TestEmbeddingGradients(t *testing.T) {
	rng := tensor.NewRNG(16)
	e := NewEmbedding("e", 10, 8, 4, 0.5, rng)
	tokens := []int{3, 1, 3, 7}
	proj := tensor.RandNorm(rng, 4, 4, 1)
	loss := func() float64 { return projLoss(e.Forward(tokens), proj) }
	e.Tok.G.Zero()
	e.Pos.G.Zero()
	e.Backward(tokens, proj)
	if err := maxRelErr(e.Tok.G.Data, numericGrad(loss, e.Tok.W.Data)); err > gradTol {
		t.Errorf("dTok rel err %g", err)
	}
	if err := maxRelErr(e.Pos.G.Data, numericGrad(loss, e.Pos.W.Data)); err > gradTol {
		t.Errorf("dPos rel err %g", err)
	}
	// Repeated token 3 must accumulate two contributions.
	var rowSum float64
	for j := 0; j < 4; j++ {
		rowSum += math.Abs(e.Tok.G.At(3, j))
	}
	if rowSum == 0 {
		t.Error("repeated token has zero gradient")
	}
}

func TestCrossEntropyGradients(t *testing.T) {
	rng := tensor.NewRNG(17)
	logits := tensor.RandNorm(rng, 4, 6, 1)
	targets := []int{2, 0, 5, 1}
	loss := func() float64 {
		l, _ := CrossEntropy(logits, targets)
		return l
	}
	_, dlogits := CrossEntropy(logits, targets)
	if e := maxRelErr(dlogits.Data, numericGrad(loss, logits.Data)); e > gradTol {
		t.Errorf("dlogits rel err %g", e)
	}
	// Loss of a uniform distribution is log(vocab).
	uniform := tensor.New(2, 8)
	l, _ := CrossEntropy(uniform, []int{0, 3})
	if math.Abs(l-math.Log(8)) > 1e-12 {
		t.Errorf("uniform CE = %g, want log 8 = %g", l, math.Log(8))
	}
}

func TestAttnBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(18)
	b := NewAttnBlock("b", 8, 2, rng)
	x := tensor.RandNorm(rng, 4, 8, 1)
	proj := tensor.RandNorm(rng, 4, 8, 1)
	loss := func() float64 {
		y, _ := b.Forward(x, SaveAll())
		return projLoss(y, proj)
	}
	_, ctx := b.Forward(x, SaveAll())
	dx := b.Backward(ctx, proj)
	if e := maxRelErr(dx.Data, numericGrad(loss, x.Data)); e > gradTol {
		t.Errorf("attn block dx rel err %g", e)
	}
	for _, p := range b.Params() {
		analytic := append([]float64(nil), p.G.Data...)
		for i := range p.G.Data {
			p.G.Data[i] = 0
		}
		if e := maxRelErr(analytic, numericGrad(loss, p.W.Data)); e > gradTol {
			t.Errorf("attn block %s rel err %g", p.Name, e)
		}
	}
}

func TestFFNBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(19)
	b := NewFFNBlock("b", 6, 12, rng)
	x := tensor.RandNorm(rng, 3, 6, 1)
	proj := tensor.RandNorm(rng, 3, 6, 1)
	loss := func() float64 {
		y, _ := b.Forward(x, SaveAll())
		return projLoss(y, proj)
	}
	_, ctx := b.Forward(x, SaveAll())
	dx := b.Backward(ctx, proj)
	if e := maxRelErr(dx.Data, numericGrad(loss, x.Data)); e > gradTol {
		t.Errorf("ffn block dx rel err %g", e)
	}
	for _, p := range b.Params() {
		analytic := append([]float64(nil), p.G.Data...)
		for i := range p.G.Data {
			p.G.Data[i] = 0
		}
		if e := maxRelErr(analytic, numericGrad(loss, p.W.Data)); e > gradTol {
			t.Errorf("ffn block %s rel err %g", p.Name, e)
		}
	}
}

func TestGatedFFNBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(21)
	b := NewGatedFFNBlock("b", 6, 12, rng)
	x := tensor.RandNorm(rng, 3, 6, 1)
	proj := tensor.RandNorm(rng, 3, 6, 1)
	loss := func() float64 {
		y, _ := b.Forward(x, SaveAll())
		return projLoss(y, proj)
	}
	_, ctx := b.Forward(x, SaveAll())
	dx := b.Backward(ctx, proj)
	if e := maxRelErr(dx.Data, numericGrad(loss, x.Data)); e > gradTol {
		t.Errorf("gated ffn dx rel err %g", e)
	}
	for _, p := range b.Params() {
		analytic := append([]float64(nil), p.G.Data...)
		for i := range p.G.Data {
			p.G.Data[i] = 0
		}
		if e := maxRelErr(analytic, numericGrad(loss, p.W.Data)); e > gradTol {
			t.Errorf("gated ffn %s rel err %g", p.Name, e)
		}
	}
}

func TestGatedFFNRecomputeExact(t *testing.T) {
	mk := func() []*Stage {
		net := mustNet(Config{Layers: 2, Dim: 16, Heads: 2, FFN: 32, Vocab: 20, Seq: 12, Seed: 5, GatedFFN: true})
		stages, err := Split(net, []int{0, 6}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stages
	}
	corpus := NewCorpus(20, 2048, 3)
	rng := tensor.NewRNG(2)
	tokens, targets := corpus.Sample(12, rng)

	ref := mk()
	l1 := runOnceQuick(ref, tokens, targets)
	g1 := cloneGrads(ref)

	rec := mk()
	for i := range rec[0].Saves {
		rec[0].Saves[i] = SaveNone()
	}
	l2 := runOnceQuick(rec, tokens, targets)
	g2 := cloneGrads(rec)

	if l1 != l2 {
		t.Fatalf("gated recompute changed loss: %.17g vs %.17g", l1, l2)
	}
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatal("gated recompute changed a gradient")
			}
		}
	}
}

func TestGatedNetTrains(t *testing.T) {
	cfg := Config{Layers: 2, Dim: 32, Heads: 4, FFN: 48, Vocab: 32, Seq: 24, Seed: 4, GatedFFN: true}
	res, err := Run(RunConfig{Net: cfg, Bounds: []int{0, 3, 6}, Steps: 40, MicroBatches: 4, LR: 3e-3, DataSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Errorf("gated net loss did not descend: %v", res.Losses[:3])
	}
}
