package memory

import (
	"testing"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
	"adapipe/internal/profile"
)

func setup(t *testing.T, strat parallel.Strategy, seq int) (model.Config, *profile.Profile) {
	t.Helper()
	cfg := model.GPT3_175B()
	p, err := profile.New(cfg, hardware.A100(), strat, seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, p
}

func TestInFlight(t *testing.T) {
	// 1F1B: stage s of p holds p−s micro-batches (§2.1).
	cases := []struct{ p, s, want int }{
		{8, 0, 8}, {8, 7, 1}, {4, 2, 2}, {1, 0, 1},
		{4, -1, 0}, {4, 4, 0},
	}
	for _, c := range cases {
		if got := InFlight(c.p, c.s); got != c.want {
			t.Errorf("InFlight(%d, %d) = %d, want %d", c.p, c.s, got, c.want)
		}
	}
}

func TestBreakdownTotals(t *testing.T) {
	b := Breakdown{Params: 10, Grads: 20, Optimizer: 30, Buffer: 5, Overhead: 2, SavedPerMicro: 7, InFlight: 3}
	if got := b.Static(); got != 67 {
		t.Errorf("Static = %d, want 67", got)
	}
	if got := b.Activations(); got != 21 {
		t.Errorf("Activations = %d, want 21", got)
	}
	if got := b.Total(); got != 88 {
		t.Errorf("Total = %d, want 88", got)
	}
}

func TestStageStaticScaling(t *testing.T) {
	strat := parallel.Strategy{TP: 8, PP: 8, DP: 2}
	cfg, prof := setup(t, strat, 4096)
	layers := cfg.LayerSequence()[1:25]
	opts := Default()
	b := StageStatic(cfg, prof, strat, layers, opts)
	n := StageParams(cfg, layers)
	if b.Params != 2*n/8 {
		t.Errorf("params = %d, want %d", b.Params, 2*n/8)
	}
	if b.Grads != 2*n/8 {
		t.Errorf("grads = %d, want %d", b.Grads, 2*n/8)
	}
	if b.Optimizer != 12*n/16 {
		t.Errorf("optimizer = %d, want %d (ZeRO-1 shards over t*d)", b.Optimizer, 12*n/16)
	}
	if b.Overhead != opts.OverheadBytes {
		t.Errorf("overhead = %d, want %d", b.Overhead, opts.OverheadBytes)
	}

	// Doubling DP halves only the optimizer states.
	strat2 := parallel.Strategy{TP: 8, PP: 8, DP: 4}
	b2 := StageStatic(cfg, prof, strat2, layers, opts)
	if b2.Optimizer*2 != b.Optimizer {
		t.Errorf("doubling DP: optimizer %d -> %d, want halved", b.Optimizer, b2.Optimizer)
	}
	if b2.Params != b.Params || b2.Grads != b.Grads {
		t.Error("doubling DP must not change params/grads")
	}
}

func TestSavedOrdering(t *testing.T) {
	strat := parallel.Strategy{TP: 8, PP: 8, DP: 1}
	cfg, prof := setup(t, strat, 4096)
	layers := cfg.LayerSequence()[1:9] // 4 decoder blocks
	all := SavedAll(prof, layers)
	boundary := SavedBoundary(prof, layers)
	min := SavedMin(prof, layers)
	if !(all > min && min > boundary && boundary > 0) {
		t.Errorf("want all (%d) > min (%d) > boundary (%d) > 0", all, min, boundary)
	}
}

func TestRecomputeBuffer(t *testing.T) {
	strat := parallel.Strategy{TP: 8, PP: 8, DP: 1}
	cfg, prof := setup(t, strat, 4096)
	seq := cfg.LayerSequence()
	// A stage with both layer kinds buffers one full decoder block.
	both := RecomputeBuffer(prof, seq[1:5])
	want := prof.Layers[model.Attention].SavedBytesAll + prof.Layers[model.FFN].SavedBytesAll
	if both != want {
		t.Errorf("buffer = %d, want %d", both, want)
	}
	// Embedding-only ranges need no buffer.
	if got := RecomputeBuffer(prof, seq[:1]); got != 0 {
		t.Errorf("embedding-only buffer = %d, want 0", got)
	}
	// Buffer does not grow with more layers of the same kinds.
	if RecomputeBuffer(prof, seq[1:21]) != both {
		t.Error("buffer must not grow with layer count (it is reused across layers)")
	}
}

func TestStageBreakdownInFlight(t *testing.T) {
	strat := parallel.Strategy{TP: 8, PP: 8, DP: 1}
	cfg, prof := setup(t, strat, 4096)
	layers := cfg.LayerSequence()[1:25]
	b0 := Stage(cfg, prof, strat, layers, 0, 1<<20, Default())
	b7 := Stage(cfg, prof, strat, layers, 7, 1<<20, Default())
	if b0.InFlight != 8 || b7.InFlight != 1 {
		t.Errorf("in-flight = %d/%d, want 8/1", b0.InFlight, b7.InFlight)
	}
	if b0.Total()-b0.Static() != 8<<20 {
		t.Errorf("stage 0 activations = %d, want %d", b0.Total()-b0.Static(), 8<<20)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.ParamBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero param bytes accepted")
	}
	bad = Default()
	bad.OverheadBytes = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative overhead accepted")
	}
}

// TestFigure1Shape verifies the motivating observation of §1: without
// recomputation the per-stage memory need decreases with the stage id and
// overflows an 80 GiB device at long sequence lengths, while full
// recomputation stays far below the limit.
func TestFigure1Shape(t *testing.T) {
	strat := parallel.Strategy{TP: 8, PP: 8, DP: 1}
	cfg, prof := setup(t, strat, 16384)
	seq := cfg.LayerSequence()
	per := len(seq) / 8
	var nonTotals []int64
	for s := 0; s < 8; s++ {
		layers := seq[s*per : (s+1)*per]
		saved := SavedAll(prof, layers)
		b := Stage(cfg, prof, strat, layers, s, saved, Default())
		nonTotals = append(nonTotals, b.Total())
	}
	for s := 1; s < 8; s++ {
		if nonTotals[s] >= nonTotals[s-1] {
			t.Errorf("no-recompute memory should decrease with stage: stage %d %d >= stage %d %d",
				s, nonTotals[s], s-1, nonTotals[s-1])
		}
	}
	if nonTotals[0] <= 80<<30 {
		t.Errorf("stage 0 without recomputation = %d, want > 80 GiB at seq 16384", nonTotals[0])
	}
	full := Stage(cfg, prof, strat, seq[:per], 0, SavedBoundary(prof, seq[:per]), Default())
	if full.Total() >= 80<<30 {
		t.Errorf("full recomputation = %d, want < 80 GiB", full.Total())
	}
}
