// Package memory implements the three-part memory model of §4.2: static
// consumption (parameters, gradients, optimizer states), the recomputation
// buffer reused across decoder layers in the backward pass, and the saved
// intermediate results multiplied by the 1F1B in-flight micro-batch count.
package memory

import (
	"fmt"

	"adapipe/internal/model"
	"adapipe/internal/parallel"
	"adapipe/internal/profile"
)

// Options selects the precision regime of the static memory model.
type Options struct {
	// ParamBytes is bytes per parameter for the live weights (2 for fp16).
	ParamBytes int
	// GradBytes is bytes per parameter for gradients (2 for fp16, 4 when
	// the framework accumulates gradients in fp32 — §4.2).
	GradBytes int
	// OptimizerBytes is bytes per parameter for optimizer state, sharded
	// across t·d ranks by ZeRO-1. For the paper's FP32 Adam under a
	// Megatron-style distributed optimizer this is 4 (m) + 4 (v) + 4
	// (fp32 master weights) = 12 (§4.2 notes frameworks that update
	// parameters in FP32 before converting to half precision).
	OptimizerBytes int
	// OverheadBytes is the fixed per-device framework overhead: CUDA/NPU
	// context, communication buffers, kernel workspaces and allocator
	// fragmentation. Real frameworks lose several GiB to it, and it is
	// what separates the paper's marginal OOM configurations from the
	// feasible ones.
	OverheadBytes int64
}

// Default returns the regime used in the evaluation: fp16 weights and
// gradients, fp32 Adam with fp32 master weights under ZeRO-1 (k = 12), and
// 4 GiB framework overhead.
func Default() Options {
	return Options{ParamBytes: 2, GradBytes: 2, OptimizerBytes: 12, OverheadBytes: 4 << 30}
}

// Validate reports whether the options are meaningful.
func (o Options) Validate() error {
	if o.ParamBytes <= 0 || o.GradBytes <= 0 || o.OptimizerBytes <= 0 {
		return fmt.Errorf("memory: all byte sizes must be positive: %+v", o)
	}
	if o.OverheadBytes < 0 {
		return fmt.Errorf("memory: OverheadBytes must be non-negative: %+v", o)
	}
	return nil
}

// Breakdown is the modeled peak memory of one pipeline stage.
type Breakdown struct {
	// Params is the live-weight memory in bytes.
	Params int64
	// Grads is the gradient memory in bytes.
	Grads int64
	// Optimizer is the ZeRO-1-sharded optimizer-state memory in bytes.
	Optimizer int64
	// Buffer is the recomputation buffer: large enough for all
	// intermediates of one decoder layer (§4.2 restriction keeps it
	// bounded by that).
	Buffer int64
	// Overhead is the fixed framework overhead.
	Overhead int64
	// SavedPerMicro is the activation memory pinned per in-flight
	// micro-batch under the chosen recomputation strategy.
	SavedPerMicro int64
	// InFlight is the maximum number of simultaneously live micro-batches
	// (p − s under 1F1B).
	InFlight int
}

// Static returns the activation-independent portion (the Const of §4.2).
func (b Breakdown) Static() int64 {
	return b.Params + b.Grads + b.Optimizer + b.Buffer + b.Overhead
}

// Activations returns the saved-intermediate portion.
func (b Breakdown) Activations() int64 { return b.SavedPerMicro * int64(b.InFlight) }

// Total returns the modeled peak memory.
func (b Breakdown) Total() int64 { return b.Static() + b.Activations() }

// InFlight returns the maximum number of micro-batches stage s (0-based) of a
// p-stage 1F1B pipeline holds live at once: stage s performs p−s warmup
// forward passes before its first backward (§2.1).
func InFlight(p, s int) int {
	if s < 0 || s >= p {
		return 0
	}
	return p - s
}

// StageParams returns the parameter count assigned to a stage covering the
// given layer range.
func StageParams(cfg model.Config, layers []model.Layer) int64 {
	var n int64
	for _, l := range layers {
		n += cfg.LayerParams(l.Kind)
	}
	return n
}

// RecomputeBuffer returns the backward-pass buffer size for a stage: the
// intermediates of one decoder layer (one Attention plus one FFN layer), per
// §4.2 — the restriction that layer outputs are always saved bounds the
// buffer by a single layer's intermediates regardless of strategy.
func RecomputeBuffer(prof *profile.Profile, layers []model.Layer) int64 {
	var att, ffn int64
	for _, l := range layers {
		switch l.Kind {
		case model.Attention:
			att = prof.Layers[model.Attention].SavedBytesAll
		case model.FFN:
			ffn = prof.Layers[model.FFN].SavedBytesAll
		}
	}
	return att + ffn
}

// StageStatic computes the Const part of the memory model for a stage.
func StageStatic(cfg model.Config, prof *profile.Profile, strat parallel.Strategy, layers []model.Layer, opts Options) Breakdown {
	n := StageParams(cfg, layers)
	t := int64(strat.TP)
	td := int64(strat.TP) * int64(strat.DP)
	return Breakdown{
		Params:    int64(opts.ParamBytes) * n / t,
		Grads:     int64(opts.GradBytes) * n / t,
		Optimizer: int64(opts.OptimizerBytes) * n / td,
		Buffer:    RecomputeBuffer(prof, layers),
		Overhead:  opts.OverheadBytes,
	}
}

// Stage computes the full breakdown for stage s of p given the activation
// bytes pinned per micro-batch under the chosen recomputation strategy.
func Stage(cfg model.Config, prof *profile.Profile, strat parallel.Strategy, layers []model.Layer, s int, savedPerMicro int64, opts Options) Breakdown {
	b := StageStatic(cfg, prof, strat, layers, opts)
	b.SavedPerMicro = savedPerMicro
	b.InFlight = InFlight(strat.PP, s)
	return b
}

// SavedAll returns the per-micro-batch activation bytes of a layer range with
// every unit saved (no recomputation).
func SavedAll(prof *profile.Profile, layers []model.Layer) int64 {
	var n int64
	for _, l := range layers {
		n += prof.Layers[l.Kind].SavedBytesAll
	}
	return n
}

// SavedMin returns the per-micro-batch activation bytes with only the
// AlwaysSaved units kept — AdaPipe's maximum-recomputation floor, which is
// slightly above classic full recomputation (§7.3).
func SavedMin(prof *profile.Profile, layers []model.Layer) int64 {
	var n int64
	for _, l := range layers {
		n += prof.Layers[l.Kind].SavedBytesMin
	}
	return n
}

// SavedBoundary returns the per-micro-batch activation bytes of classic full
// recomputation, which saves only the input of each decoder block (one
// tensor per Attention+FFN pair) — half of AdaPipe's always-saved floor,
// which keeps both sub-layer outputs (§7.3). Embedding and Head layers keep
// their full activations (they are not recomputed).
func SavedBoundary(prof *profile.Profile, layers []model.Layer) int64 {
	var n int64
	for _, l := range layers {
		switch l.Kind {
		case model.Attention:
			n += prof.Layers[l.Kind].BoundaryBytes
		case model.Embedding, model.Head:
			n += prof.Layers[l.Kind].SavedBytesAll
		}
	}
	return n
}
