package request

import (
	"encoding/json"
	"fmt"
)

// Canonical machine-readable error codes of the v1 HTTP API. Every /v1/*
// failure response carries exactly one of these in its envelope; clients
// branch on the code, never on the human-readable message.
const (
	// ErrCodeInvalidRequest marks a request the server could not parse or
	// validate (HTTP 400).
	ErrCodeInvalidRequest = "invalid_request"
	// ErrCodeMethodNotAllowed marks a request using the wrong HTTP method
	// (HTTP 405).
	ErrCodeMethodNotAllowed = "method_not_allowed"
	// ErrCodePayloadTooLarge marks a request body over the 1 MiB bound
	// (HTTP 413).
	ErrCodePayloadTooLarge = "payload_too_large"
	// ErrCodeNotFound marks a missing resource, e.g. an expired trace id
	// (HTTP 404).
	ErrCodeNotFound = "not_found"
	// ErrCodeInfeasible marks a valid request whose configuration the
	// search rejected — OOM under every partitioning (HTTP 422).
	ErrCodeInfeasible = "infeasible"
	// ErrCodeOverCapacity marks a request that timed out queueing for an
	// admission slot (HTTP 503).
	ErrCodeOverCapacity = "over_capacity"
	// ErrCodeTimeout marks a search that exceeded the request deadline
	// (HTTP 504).
	ErrCodeTimeout = "timeout"
	// ErrCodeShuttingDown marks a request interrupted by server shutdown
	// (HTTP 503).
	ErrCodeShuttingDown = "shutting_down"
	// ErrCodeInternal marks an unexpected server-side failure (HTTP 500).
	ErrCodeInternal = "internal"
)

// ErrorInfo is the canonical error body every v1 endpoint returns on every
// failure path: a stable machine-readable code, a human-readable message and
// the HTTP status echoed into the body (so the error survives proxies that
// rewrite statuses).
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

// ErrorResponse is the canonical error envelope: {"error": {...}}.
type ErrorResponse struct {
	Err ErrorInfo `json:"error"`
}

// NewErrorResponse assembles the canonical envelope.
func NewErrorResponse(code, message string, status int) ErrorResponse {
	return ErrorResponse{Err: ErrorInfo{Code: code, Message: message, Status: status}}
}

// Encode returns the envelope's JSON encoding with a trailing newline.
// Encoding an ErrorResponse cannot fail (plain strings and an int), so the
// result is usable unconditionally.
func (e ErrorResponse) Encode() []byte {
	body, err := json.Marshal(e)
	if err != nil {
		// Unreachable for this shape; keep a valid envelope either way.
		body = []byte(`{"error":{"code":"internal","message":"encoding error envelope","status":500}}`)
	}
	return append(body, '\n')
}

// ParseErrorResponse decodes a canonical error envelope, rejecting bodies
// that do not carry one (so clients can distinguish "the server failed" from
// "something that is not this API answered").
func ParseErrorResponse(data []byte) (ErrorResponse, error) {
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		return e, fmt.Errorf("request: decoding error envelope: %w", err)
	}
	if e.Err.Code == "" {
		return e, fmt.Errorf("request: response carries no error envelope")
	}
	return e, nil
}
