package request

import (
	"encoding/json"
	"strings"
	"testing"
)

func tinySweep() SweepRequest {
	return SweepRequest{Base: tinyReq(), Axes: SweepAxes{GlobalBatch: []int{8, 16}}}
}

func TestErrorEnvelopeRoundTrip(t *testing.T) {
	e := NewErrorResponse(ErrCodeInfeasible, "no feasible partition", 422)
	data := e.Encode()
	if data[len(data)-1] != '\n' {
		t.Fatal("encoded envelope lacks trailing newline")
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	inner, ok := generic["error"].(map[string]any)
	if !ok {
		t.Fatalf("envelope top-level key is not \"error\": %s", data)
	}
	for _, k := range []string{"code", "message", "status"} {
		if _, ok := inner[k]; !ok {
			t.Errorf("envelope missing %q: %s", k, data)
		}
	}
	back, err := ParseErrorResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Err.Code != ErrCodeInfeasible || back.Err.Status != 422 || back.Err.Message != "no feasible partition" {
		t.Fatalf("round trip lost fields: %+v", back.Err)
	}
	if _, err := ParseErrorResponse([]byte(`{"error":{"message":"x"}}`)); err == nil {
		t.Fatal("ParseErrorResponse accepted an envelope with no code")
	}
	if _, err := ParseErrorResponse([]byte(`{"detail":"x"}`)); err == nil {
		t.Fatal("ParseErrorResponse accepted a non-envelope body")
	}
}

func TestResponseEnvelopeFields(t *testing.T) {
	n, err := tinyReq().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewResponseEnvelope(n)
	if err != nil {
		t.Fatal(err)
	}
	resp := PlanResponse{ResponseEnvelope: env, Plan: []byte(`{"modeled_total_sec":1}`)}
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	if generic["version"] != float64(Version) {
		t.Errorf("version = %v, want %d", generic["version"], Version)
	}
	wantHash, err := n.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if generic["request_hash"] != wantHash {
		t.Errorf("request_hash = %v, want %s", generic["request_hash"], wantHash)
	}
	if generic["method"] != n.Method {
		t.Errorf("method = %v, want %s", generic["method"], n.Method)
	}
	// Envelope keys serialize before the payload: field order is part of the
	// byte-stable contract.
	idx := func(key string) int { return strings.Index(string(data), `"`+key+`"`) }
	if !(idx("version") < idx("request_hash") && idx("request_hash") < idx("method") && idx("method") < idx("plan")) {
		t.Errorf("envelope fields out of order: %s", data)
	}
}

func TestMemoryReserveNormalizeAndHash(t *testing.T) {
	// Zero reserve keeps the pre-field canonical bytes: existing cache keys
	// survive the schema addition.
	base, err := tinyReq().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(base), "memory_reserve") {
		t.Fatalf("zero memory_reserve leaked into canonical form: %s", base)
	}

	r := tinyReq()
	r.MemoryReserve = 0.3
	n, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.MemoryReserve != 0.3 {
		t.Fatalf("reserve not preserved: %+v", n)
	}
	withReserve, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := tinyReq().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if withReserve == plain {
		t.Fatal("memory_reserve does not separate request identities")
	}
	opts, err := n.Options(1)
	if err != nil {
		t.Fatal(err)
	}
	if opts.MemoryReserve != 0.3 {
		t.Fatalf("Options did not apply the reserve: %+v", opts)
	}

	for _, bad := range []float64{-0.1, 1.0, 2.5} {
		r := tinyReq()
		r.MemoryReserve = bad
		if _, err := r.Normalize(); err == nil || !strings.Contains(err.Error(), "memory_reserve") {
			t.Errorf("reserve %g: want memory_reserve error, got %v", bad, err)
		}
	}
}

func TestSweepNormalize(t *testing.T) {
	n, err := tinySweep().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Version != Version || n.Base.Method != "AdaPipe" {
		t.Fatalf("normalization incomplete: %+v", n)
	}

	// Present-but-empty axis is rejected; a nil axis is fine.
	s := tinySweep()
	s.Axes.TP = []int{}
	if _, err := s.Normalize(); err == nil || !strings.Contains(err.Error(), `axis "tp" is empty`) {
		t.Errorf("empty axis: got %v", err)
	}

	// Grid cap.
	s = tinySweep()
	s.Axes.GlobalBatch = make([]int, 20)
	s.Axes.SeqLen = make([]int, 20)
	for i := range s.Axes.GlobalBatch {
		s.Axes.GlobalBatch[i] = 8 * (i + 1)
		s.Axes.SeqLen[i] = 128 * (i + 1)
	}
	if _, err := s.Normalize(); err == nil || !strings.Contains(err.Error(), "cap is 256") {
		t.Errorf("oversized grid: got %v", err)
	}

	// Negative TopK.
	s = tinySweep()
	s.TopK = -1
	if _, err := s.Normalize(); err == nil || !strings.Contains(err.Error(), "top_k") {
		t.Errorf("negative top_k: got %v", err)
	}

	// Invalid base is reported as the sweep base.
	s = tinySweep()
	s.Base.Model = ""
	if _, err := s.Normalize(); err == nil || !strings.Contains(err.Error(), "sweep base") {
		t.Errorf("bad base: got %v", err)
	}
}

func TestSweepExpandOrder(t *testing.T) {
	s := tinySweep()
	s.Axes.GlobalBatch = []int{8, 16}
	s.Axes.MemoryReserve = []float64{0.1, 0.2}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("expanded %d points, want 4", len(pts))
	}
	// memory_reserve is the innermost axis: it varies fastest.
	want := []struct {
		gb int
		mr float64
	}{{8, 0.1}, {8, 0.2}, {16, 0.1}, {16, 0.2}}
	for i, w := range want {
		if pts[i].GlobalBatch != w.gb || pts[i].MemoryReserve != w.mr {
			t.Errorf("point %d = (gb=%d, mr=%g), want (gb=%d, mr=%g)",
				i, pts[i].GlobalBatch, pts[i].MemoryReserve, w.gb, w.mr)
		}
	}
	// Non-swept base fields carry through.
	for i, p := range pts {
		if p.Model != "tiny" || p.PP != 4 || p.Method != "AdaPipe" {
			t.Errorf("point %d lost base fields: %+v", i, p)
		}
	}
}

func TestSweepExpandNoAxes(t *testing.T) {
	s := SweepRequest{Base: tinyReq()}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("axis-free sweep expanded to %d points, want 1 (the base)", len(pts))
	}
	nb, err := tinyReq().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0] != nb {
		t.Fatalf("single point %+v differs from normalized base %+v", pts[0], nb)
	}
}

func TestParseSweepRequestStrict(t *testing.T) {
	good := []byte(`{"base":{"model":"tiny","tp":1,"pp":4,"dp":1,"seq_len":2048,"global_batch":8},"axes":{"global_batch":[8,16]}}`)
	s, err := ParseSweepRequest(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != Version || len(s.Axes.GlobalBatch) != 2 {
		t.Fatalf("parsed sweep: %+v", s)
	}
	if _, err := ParseSweepRequest([]byte(`{"base":{"model":"tiny","tp":1,"pp":4,"dp":1,"seq_len":2048,"global_batch":8},"axis":{}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSweepRequest(append(good, []byte(`{"more":1}`)...)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := ParseSweepRequest([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSweepHashSeparates(t *testing.T) {
	a, err := tinySweep().Hash()
	if err != nil {
		t.Fatal(err)
	}
	s := tinySweep()
	s.Axes.GlobalBatch = []int{8, 32}
	b, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different grids share one hash")
	}
	// Hash is stable across re-normalization.
	n, err := tinySweep().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	again, err := n.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if again != a {
		t.Fatal("hash changed after normalization")
	}
}

func TestPlanIterSec(t *testing.T) {
	got, err := PlanIterSec([]byte(`{"modeled_total_sec":2.75,"stages":[]}`))
	if err != nil || got != 2.75 {
		t.Fatalf("PlanIterSec = %g, %v", got, err)
	}
	if _, err := PlanIterSec([]byte(`{broken`)); err == nil {
		t.Fatal("PlanIterSec accepted broken JSON")
	}
}

func TestSweepResponseRoundTrip(t *testing.T) {
	s, err := tinySweep().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	resp := SweepResponse{
		ResponseEnvelope: ResponseEnvelope{Version: Version, RequestHash: hash, Method: s.Base.Method},
		Points: []SweepPointResult{
			{Index: 0, Request: s.Base, RequestHash: "h0", IterSec: 1.5, Plan: []byte(`{"modeled_total_sec":1.5}`)},
			{Index: 1, Request: s.Base, Error: &ErrorInfo{Code: ErrCodeInfeasible, Message: "nope", Status: 422}},
		},
		Ranking: []int{0},
		Stats:   SweepStats{Points: 2, Planned: 1, Failed: 1},
	}
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSweepResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.RequestHash != hash || len(back.Points) != 2 || back.Points[1].Error.Code != ErrCodeInfeasible {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if _, err := ParseSweepResponse([]byte(`{"version":99}`)); err == nil {
		t.Fatal("version skew accepted")
	}
}
