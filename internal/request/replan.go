package request

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ReplanRequest is one straggler-driven replanning request, schema version
// 1: the plan request identifying the search space (and, via its hash, the
// daemon's warm planner for it) plus the observed per-stage compute-cost
// multipliers. Scale must carry exactly request.PP entries, each finite and
// > 0 — a scale of 1 means "stage runs at nominal speed".
type ReplanRequest struct {
	// Version is the schema version; 0 means "current" and normalizes to 1.
	Version int `json:"version"`
	// Request identifies the search the incumbent plan came from. Its hash
	// is the identity the daemon keys warm planners on, so two replans for
	// one training run always reach the same incremental state.
	Request PlanRequest `json:"request"`
	// Scale holds the per-stage forward/backward multipliers, indexed by
	// pipeline stage.
	Scale []float64 `json:"scale"`
}

// Normalize applies schema defaults and validates every field, returning
// the normalized copy. Like PlanRequest.Normalize it is idempotent.
func (r ReplanRequest) Normalize() (ReplanRequest, error) {
	if r.Version == 0 {
		r.Version = Version
	}
	if r.Version != Version {
		return r, fmt.Errorf("request: unsupported schema version %d (this build speaks %d)", r.Version, Version)
	}
	n, err := r.Request.Normalize()
	if err != nil {
		return r, err
	}
	r.Request = n
	if len(r.Scale) != n.PP {
		return r, fmt.Errorf("request: scale has %d entries, strategy has %d pipeline stages", len(r.Scale), n.PP)
	}
	for s, v := range r.Scale {
		if !(v > 0) || math.IsInf(v, 1) {
			return r, fmt.Errorf("request: stage %d scale %g, want a finite value > 0", s, v)
		}
	}
	return r, nil
}

// ParseReplanRequest decodes and validates a replan request from its JSON
// encoding. Unknown fields and trailing data are rejected, mirroring
// ParsePlanRequest.
func ParseReplanRequest(data []byte) (ReplanRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r ReplanRequest
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("request: decoding replan request: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return r, fmt.Errorf("request: trailing data after replan request")
	}
	return r.Normalize()
}

// ReplanResponse is the versioned reply to a replan request: the adoption
// verdict, the search-effort evidence for the fast path, and the plan the
// caller should run next (the re-searched plan when Adopted, otherwise the
// repriced incumbent — replanning never makes things worse).
type ReplanResponse struct {
	// ResponseEnvelope carries the inner plan request's content hash — the
	// key the daemon's warm-planner store used — and its method label.
	ResponseEnvelope
	// Adopted reports whether the re-searched plan's simulated iteration
	// strictly beat the repriced incumbent's.
	Adopted bool `json:"adopted"`
	// Incremental reports whether the re-search warm-started from the
	// planner's previous search. True even on the first replan for a hash:
	// the cold search that seeds the warm planner installs the partition-DP
	// memo the replan then reuses (the X-Adapipe-Replan header is what
	// distinguishes a seeding request from a fully warm one).
	Incremental bool `json:"incremental"`
	// InvalidatedIsoClasses and WarmStartCells quantify the incremental
	// search: iso-classes repriced by the scale change, and DP cells reused
	// from the incumbent search's memo. Both zero when Incremental is false.
	InvalidatedIsoClasses int `json:"invalidated_iso_classes"`
	WarmStartCells        int `json:"warm_start_cells"`
	// OldIterSec and NewIterSec are the simulated 1F1B iteration times of
	// the repriced incumbent and the re-searched plan.
	OldIterSec float64 `json:"old_iter_sec"`
	NewIterSec float64 `json:"new_iter_sec"`
	// Plan embeds the deterministic JSON of the plan to run next.
	Plan json.RawMessage `json:"plan"`
}

// Encode marshals the response.
func (rr ReplanResponse) Encode() ([]byte, error) { return json.Marshal(rr) }

// ParseReplanResponse decodes a replan response, checking the schema
// version.
func ParseReplanResponse(data []byte) (ReplanResponse, error) {
	var rr ReplanResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return rr, fmt.Errorf("request: decoding replan response: %w", err)
	}
	if rr.Version != Version {
		return rr, fmt.Errorf("request: unsupported response version %d (this build speaks %d)", rr.Version, Version)
	}
	return rr, nil
}
