package request

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
)

func tinyReq() PlanRequest {
	return PlanRequest{Model: "tiny", TP: 1, PP: 4, DP: 1, SeqLen: 2048, GlobalBatch: 8}
}

// newPositional is the scattered five-argument constructor the request path
// replaces; the differential test below keeps the two in lockstep.
func newPositional(cfg model.Config, cl hardware.Cluster, r PlanRequest, opts core.Options) (*core.Planner, error) {
	return core.NewPlanner(cfg, cl, r.Strategy(), r.TrainingConfig(), opts)
}

func TestNormalizeAppliesDefaults(t *testing.T) {
	n, err := tinyReq().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Version != 1 || n.Cluster != "a" || n.Method != "AdaPipe" || n.MicroBatch != 1 || n.TinyLayers != 8 {
		t.Fatalf("defaults not applied: %+v", n)
	}
	// Idempotent.
	again, err := n.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if again != n {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", again, n)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*PlanRequest)
		want string
	}{
		{"version", func(r *PlanRequest) { r.Version = 2 }, "unsupported schema version"},
		{"model", func(r *PlanRequest) { r.Model = "bert" }, "unknown model"},
		{"no model", func(r *PlanRequest) { r.Model = "" }, "model is required"},
		{"cluster", func(r *PlanRequest) { r.Cluster = "c" }, "unknown cluster"},
		{"method", func(r *PlanRequest) { r.Method = "MagicPipe" }, "unknown method"},
		{"strategy", func(r *PlanRequest) { r.PP = 0 }, "must be >= 1"},
		{"seq", func(r *PlanRequest) { r.SeqLen = 0 }, "seq_len"},
		{"divisibility", func(r *PlanRequest) { r.GlobalBatch = 7; r.DP = 2; r.TP = 1 }, "not divisible"},
		{"tiny layers on gpt3", func(r *PlanRequest) { r.Model = "gpt3"; r.TinyLayers = 4 }, "tiny_layers"},
	}
	for _, c := range cases {
		r := tinyReq()
		c.mut(&r)
		if _, err := r.Normalize(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.want, err)
		}
	}
}

func TestParsePlanRequestStrict(t *testing.T) {
	good := []byte(`{"model":"tiny","tp":1,"pp":4,"dp":1,"seq_len":2048,"global_batch":8}`)
	r, err := ParsePlanRequest(good)
	if err != nil {
		t.Fatal(err)
	}
	if r.Method != "AdaPipe" {
		t.Fatalf("parsed request not normalized: %+v", r)
	}
	if _, err := ParsePlanRequest([]byte(`{"model":"tiny","tpp":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParsePlanRequest(append(good, []byte(`{"more":true}`)...)); err == nil {
		t.Fatal("trailing JSON accepted")
	}
	if _, err := ParsePlanRequest(append(good, []byte(`garbage`)...)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestCanonicalIsRepresentationFree pins the core cache-identity property:
// field order, whitespace and elided defaults must not change the canonical
// bytes or the hash.
func TestCanonicalIsRepresentationFree(t *testing.T) {
	a, err := ParsePlanRequest([]byte(`{"model":"tiny","tp":1,"pp":4,"dp":1,"seq_len":2048,"global_batch":8}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParsePlanRequest([]byte(`{
		"global_batch": 8, "seq_len": 2048,
		"dp": 1, "pp": 4, "tp": 1,
		"micro_batch": 1, "method": "AdaPipe", "cluster": "a",
		"tiny_layers": 8, "model": "tiny", "version": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical bytes differ:\n%s\n%s", ca, cb)
	}
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb || len(ha) != 64 {
		t.Fatalf("hashes differ or malformed: %s vs %s", ha, hb)
	}
	// Keys must come out sorted.
	var keys []string
	dec := json.NewDecoder(bytes.NewReader(ca))
	dec.Token() // {
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := tok.(string); ok {
			keys = append(keys, k)
			var v any
			dec.Decode(&v)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("canonical keys not sorted: %v", keys)
		}
	}
}

func TestHashSeparatesDifferentSearches(t *testing.T) {
	base := tinyReq()
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	muts := []func(*PlanRequest){
		func(r *PlanRequest) { r.PP = 2 },
		func(r *PlanRequest) { r.SeqLen = 4096 },
		func(r *PlanRequest) { r.Method = "DAPPLE-Full" },
		func(r *PlanRequest) { r.Cluster = "b" },
		func(r *PlanRequest) { r.GlobalBatch = 16 },
		func(r *PlanRequest) { r.TinyLayers = 6 },
	}
	for i, mut := range muts {
		r := base
		mut(&r)
		h, err := r.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h == h0 {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

// TestNewPlannerMatchesPositionalPath proves the request-driven constructor
// and the classic positional path build the same search: byte-identical plans.
func TestNewPlannerMatchesPositionalPath(t *testing.T) {
	req := PlanRequest{Model: "gpt3", Cluster: "a", TP: 8, PP: 8, DP: 1, SeqLen: 16384, GlobalBatch: 32}
	pl, err := req.NewPlanner(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := req.ModelConfig()
	cl, _ := req.ClusterConfig()
	opts, _ := req.Options(0)
	pl2, err := newPositional(cfg, cl, req, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pl2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(p1)
	j2, _ := json.Marshal(p2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("request-driven plan differs from positional plan:\n%s\n%s", j1, j2)
	}
}

func TestPlanResponseRoundTrip(t *testing.T) {
	req := tinyReq()
	pl, err := req.NewPlanner(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewPlanResponse(req, p)
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlanResponse(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("response encoding not stable across a round trip")
	}
	wantHash, _ := req.Hash()
	if back.RequestHash != wantHash {
		t.Fatalf("request hash %s, want %s", back.RequestHash, wantHash)
	}
	planBytes, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Plan, planBytes) {
		t.Fatal("embedded plan bytes differ from the plan's own serialization")
	}
	if _, err := ParsePlanResponse([]byte(`{"version":99}`)); err == nil {
		t.Fatal("future response version accepted")
	}
}

func TestCanonicalizeJSONGeneric(t *testing.T) {
	in := []byte(`{"b": [2, 1, {"z": null, "a": true}], "a": "x", "c": 1.50}`)
	want := `{"a":"x","b":[2,1,{"a":true,"z":null}],"c":1.50}`
	got, err := CanonicalizeJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("canonical = %s, want %s", got, want)
	}
	// Stable under repetition.
	again, err := CanonicalizeJSON(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, got) {
		t.Fatal("canonicalization not idempotent")
	}
}
