package request

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// MaxSweepPoints bounds the server-side grid expansion of one sweep request.
// The cap is validated at normalization time so an oversized grid is an
// invalid_request, never a half-planned response.
const MaxSweepPoints = 256

// SweepAxes lists the per-field value grids of a sweep. A nil axis keeps the
// base request's value; a present-but-empty axis is an error (an explicitly
// empty grid has no meaning — reject it rather than silently planning
// nothing). Axis values are validated per expanded point, not per axis: a
// value that yields an invalid point (say a strategy exceeding the cluster)
// fails that point only, so one bad grid line never sinks the sweep.
type SweepAxes struct {
	Cluster       []string  `json:"cluster,omitempty"`
	Method        []string  `json:"method,omitempty"`
	TP            []int     `json:"tp,omitempty"`
	PP            []int     `json:"pp,omitempty"`
	DP            []int     `json:"dp,omitempty"`
	SeqLen        []int     `json:"seq_len,omitempty"`
	GlobalBatch   []int     `json:"global_batch,omitempty"`
	MicroBatch    []int     `json:"micro_batch,omitempty"`
	MemoryReserve []float64 `json:"memory_reserve,omitempty"`
}

// grid returns the expansion size: the product of axis lengths, absent axes
// counting 1.
func (a SweepAxes) grid() int {
	n := 1
	for _, l := range []int{
		len(a.Cluster), len(a.Method), len(a.TP), len(a.PP), len(a.DP),
		len(a.SeqLen), len(a.GlobalBatch), len(a.MicroBatch), len(a.MemoryReserve),
	} {
		if l > 0 {
			n *= l
		}
	}
	return n
}

// SweepRequest is one grid-planning request, schema version 1: a base
// PlanRequest plus axes of values to substitute over it. The base must itself
// be a valid plan request — axes override its fields point by point, in the
// fixed expansion order cluster, method, tp, pp, dp, seq_len, global_batch,
// micro_batch, memory_reserve (last axis varies fastest). TopK > 0 truncates
// the ranked summary; 0 ranks every feasible point.
type SweepRequest struct {
	// Version is the schema version; 0 means "current" and normalizes to 1.
	Version int `json:"version"`
	// Base is the plan request every grid point starts from.
	Base PlanRequest `json:"base"`
	// Axes are the value grids substituted over the base.
	Axes SweepAxes `json:"axes"`
	// TopK bounds the ranking length (0 = unbounded).
	TopK int `json:"top_k,omitempty"`
}

// Normalize applies schema defaults and validates the sweep shape: the base
// request, every axis (present axes must be non-empty), the grid-size cap and
// TopK. Axis values themselves are validated per expanded point.
func (r SweepRequest) Normalize() (SweepRequest, error) {
	if r.Version == 0 {
		r.Version = Version
	}
	if r.Version != Version {
		return r, fmt.Errorf("request: unsupported schema version %d (this build speaks %d)", r.Version, Version)
	}
	base, err := r.Base.Normalize()
	if err != nil {
		return r, fmt.Errorf("request: sweep base: %w", err)
	}
	r.Base = base
	for _, ax := range []struct {
		name    string
		present bool
		empty   bool
	}{
		{"cluster", r.Axes.Cluster != nil, len(r.Axes.Cluster) == 0},
		{"method", r.Axes.Method != nil, len(r.Axes.Method) == 0},
		{"tp", r.Axes.TP != nil, len(r.Axes.TP) == 0},
		{"pp", r.Axes.PP != nil, len(r.Axes.PP) == 0},
		{"dp", r.Axes.DP != nil, len(r.Axes.DP) == 0},
		{"seq_len", r.Axes.SeqLen != nil, len(r.Axes.SeqLen) == 0},
		{"global_batch", r.Axes.GlobalBatch != nil, len(r.Axes.GlobalBatch) == 0},
		{"micro_batch", r.Axes.MicroBatch != nil, len(r.Axes.MicroBatch) == 0},
		{"memory_reserve", r.Axes.MemoryReserve != nil, len(r.Axes.MemoryReserve) == 0},
	} {
		if ax.present && ax.empty {
			return r, fmt.Errorf("request: sweep axis %q is empty (omit the axis to keep the base value)", ax.name)
		}
	}
	if n := r.Axes.grid(); n > MaxSweepPoints {
		return r, fmt.Errorf("request: sweep expands to %d points, cap is %d", n, MaxSweepPoints)
	}
	if r.TopK < 0 {
		return r, fmt.Errorf("request: top_k must be >= 0, got %d", r.TopK)
	}
	return r, nil
}

// ParseSweepRequest decodes and validates a sweep request from its JSON
// encoding. Unknown fields and trailing data are rejected, mirroring
// ParsePlanRequest.
func ParseSweepRequest(data []byte) (SweepRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r SweepRequest
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("request: decoding sweep request: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return r, fmt.Errorf("request: trailing data after sweep request")
	}
	return r.Normalize()
}

// Expand materializes the grid in the fixed expansion order. The returned
// points are raw substitutions over the normalized base — each point is
// normalized (and possibly rejected) individually by the caller, so one
// invalid combination fails that point alone.
func (r SweepRequest) Expand() ([]PlanRequest, error) {
	n, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	clusters := orStrings(n.Axes.Cluster, n.Base.Cluster)
	methods := orStrings(n.Axes.Method, n.Base.Method)
	tps := orInts(n.Axes.TP, n.Base.TP)
	pps := orInts(n.Axes.PP, n.Base.PP)
	dps := orInts(n.Axes.DP, n.Base.DP)
	seqs := orInts(n.Axes.SeqLen, n.Base.SeqLen)
	gbs := orInts(n.Axes.GlobalBatch, n.Base.GlobalBatch)
	mbs := orInts(n.Axes.MicroBatch, n.Base.MicroBatch)
	reserves := orFloats(n.Axes.MemoryReserve, n.Base.MemoryReserve)

	points := make([]PlanRequest, 0, n.Axes.grid())
	for _, cl := range clusters {
		for _, m := range methods {
			for _, tp := range tps {
				for _, pp := range pps {
					for _, dp := range dps {
						for _, sl := range seqs {
							for _, gb := range gbs {
								for _, mb := range mbs {
									for _, mr := range reserves {
										pt := n.Base
										pt.Cluster = cl
										pt.Method = m
										pt.TP = tp
										pt.PP = pp
										pt.DP = dp
										pt.SeqLen = sl
										pt.GlobalBatch = gb
										pt.MicroBatch = mb
										pt.MemoryReserve = mr
										points = append(points, pt)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return points, nil
}

func orStrings(axis []string, base string) []string {
	if axis == nil {
		return []string{base}
	}
	return axis
}

func orInts(axis []int, base int) []int {
	if axis == nil {
		return []int{base}
	}
	return axis
}

func orFloats(axis []float64, base float64) []float64 {
	if axis == nil {
		return []float64{base}
	}
	return axis
}

// Canonical returns the canonical JSON encoding of the normalized sweep,
// mirroring PlanRequest.Canonical.
func (r SweepRequest) Canonical() ([]byte, error) {
	n, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(n)
	if err != nil {
		return nil, err
	}
	return CanonicalizeJSON(raw)
}

// Hash returns the sweep's content identity: the lowercase-hex SHA-256 of its
// canonical encoding — the key the daemon's response cache and request
// coalescing use for whole sweeps.
func (r SweepRequest) Hash() (string, error) {
	c, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// SweepPointResult is the outcome of one grid point: the substituted request,
// and either its plan (with the content hash and modeled iteration time) or a
// canonical per-point error. Exactly one of Plan and Error is set.
type SweepPointResult struct {
	// Index is the point's position in the fixed expansion order.
	Index int `json:"index"`
	// Request is the substituted (raw, pre-normalization) plan request.
	Request PlanRequest `json:"request"`
	// RequestHash is the point's canonical hash — the identity its plan was
	// cached and deduplicated under. Empty when the point failed before
	// normalization.
	RequestHash string `json:"request_hash,omitempty"`
	// IterSec is the plan's modeled steady-state iteration time in seconds,
	// the ranking key.
	IterSec float64 `json:"iter_sec,omitempty"`
	// Plan embeds the point's plan exactly as /v1/plan would return it: a
	// single-point sweep yields byte-identical plan bytes to /v1/plan.
	Plan json.RawMessage `json:"plan,omitempty"`
	// Error carries the point's canonical failure when planning it failed.
	Error *ErrorInfo `json:"error,omitempty"`
}

// SweepStats counts the server-side work of one sweep — the amortization
// evidence: Planned (searches actually run) plus Deduped (duplicate grid
// points served by copying an earlier point) plus Cached (points served from
// the daemon's response cache) equals Points minus Failed.
type SweepStats struct {
	Points  int `json:"points"`
	Planned int `json:"planned"`
	Deduped int `json:"deduped"`
	Cached  int `json:"cached"`
	Failed  int `json:"failed"`
}

// SweepResponse is the versioned reply to a sweep request: every point's
// outcome in expansion order, the feasible points ranked by modeled iteration
// time, and the work counters. The envelope's RequestHash is the sweep's own
// content hash; Method echoes the base request's method (points may override
// it via the method axis).
type SweepResponse struct {
	ResponseEnvelope
	// Points holds one result per grid point, in expansion order.
	Points []SweepPointResult `json:"points"`
	// Ranking lists the indices of feasible points sorted by ascending
	// IterSec (ties broken by index), truncated to TopK when TopK > 0.
	Ranking []int `json:"ranking"`
	// Stats counts the planning work the sweep actually performed.
	Stats SweepStats `json:"stats"`
}

// Encode marshals the response.
func (sr SweepResponse) Encode() ([]byte, error) { return json.Marshal(sr) }

// ParseSweepResponse decodes a sweep response, checking the schema version.
func ParseSweepResponse(data []byte) (SweepResponse, error) {
	var sr SweepResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return sr, fmt.Errorf("request: decoding sweep response: %w", err)
	}
	if sr.Version != Version {
		return sr, fmt.Errorf("request: unsupported response version %d (this build speaks %d)", sr.Version, Version)
	}
	return sr, nil
}

// PlanIterSec extracts the modeled steady-state iteration time from a plan's
// stable JSON encoding — the sweep's ranking key, read without decoding the
// full plan.
func PlanIterSec(plan json.RawMessage) (float64, error) {
	var p struct {
		ModeledTotalSec float64 `json:"modeled_total_sec"`
	}
	if err := json.Unmarshal(plan, &p); err != nil {
		return 0, fmt.Errorf("request: reading modeled_total_sec: %w", err)
	}
	return p.ModeledTotalSec, nil
}
