// Package request defines the versioned, machine-readable planning API every
// entry point shares: the adapipe CLI, the planbench harness and the adapiped
// daemon all construct planners from one PlanRequest schema, so the flag
// surface and the HTTP surface can never drift. Requests have a canonical
// (sorted-key, deterministic) JSON encoding and a content hash over it — the
// identity the daemon's plan cache and request coalescing key on.
package request

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"adapipe/internal/baseline"
	"adapipe/internal/core"
	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// Version is the current request/response schema version. Consumers must
// reject versions they do not understand instead of guessing.
const Version = 1

// PlanRequest is one plan-search request, schema version 1. The zero values
// of Version, Cluster, Method, MicroBatch and TinyLayers are normalized to
// their defaults by Normalize (and by ParsePlanRequest); everything else is
// required. Two requests that normalize to the same value are the same
// search — Hash is defined over the normalized canonical encoding.
type PlanRequest struct {
	// Version is the schema version; 0 means "current" and normalizes to 1.
	Version int `json:"version"`
	// Model selects the architecture: "gpt3", "llama2" or "tiny".
	Model string `json:"model"`
	// TinyLayers is the decoder-layer count of the tiny model (default 8).
	// It must be zero for the fixed-size paper models.
	TinyLayers int `json:"tiny_layers,omitempty"`
	// Cluster selects the hardware model: "a" (64×A100), "b" (256×Ascend
	// 910) or "b-large" (2048×Ascend 910). Default "a".
	Cluster string `json:"cluster"`
	// Method is an evaluation method label ("AdaPipe", "DAPPLE-Full", ...);
	// it fixes the recomputation mode, partitioning mode and pipeline
	// schedule. Default "AdaPipe".
	Method string `json:"method"`
	// TP, PP, DP form the 3D parallelism strategy.
	TP int `json:"tp"`
	PP int `json:"pp"`
	DP int `json:"dp"`
	// SeqLen is the sequence length in tokens.
	SeqLen int `json:"seq_len"`
	// GlobalBatch is the global batch size; MicroBatch the per-micro-batch
	// sample count (default 1, the paper's setting).
	GlobalBatch int `json:"global_batch"`
	MicroBatch  int `json:"micro_batch"`
	// MemoryReserve optionally overrides the fraction of device memory
	// withheld from the planner's budget, in (0, 1). Zero (or omitted)
	// keeps the evaluation default; omitempty keeps the canonical encoding
	// — and therefore every existing request hash — unchanged in that case.
	MemoryReserve float64 `json:"memory_reserve,omitempty"`
}

// Normalize applies schema defaults and validates every field, returning the
// normalized copy. It is idempotent; Hash, Canonical and the planner
// constructors all normalize internally, so callers building requests by
// struct literal get defaults applied automatically.
func (r PlanRequest) Normalize() (PlanRequest, error) {
	if r.Version == 0 {
		r.Version = Version
	}
	if r.Version != Version {
		return r, fmt.Errorf("request: unsupported schema version %d (this build speaks %d)", r.Version, Version)
	}
	switch r.Model {
	case "gpt3", "llama2":
		if r.TinyLayers != 0 {
			return r, fmt.Errorf("request: tiny_layers is only valid for model \"tiny\", got model %q", r.Model)
		}
	case "tiny":
		if r.TinyLayers == 0 {
			r.TinyLayers = 8
		}
		if r.TinyLayers < 1 {
			return r, fmt.Errorf("request: tiny_layers must be >= 1, got %d", r.TinyLayers)
		}
	case "":
		return r, fmt.Errorf("request: model is required (gpt3, llama2 or tiny)")
	default:
		return r, fmt.Errorf("request: unknown model %q (want gpt3, llama2 or tiny)", r.Model)
	}
	if r.Cluster == "" {
		r.Cluster = "a"
	}
	switch r.Cluster {
	case "a", "b", "b-large":
	default:
		return r, fmt.Errorf("request: unknown cluster %q (want a, b or b-large)", r.Cluster)
	}
	if r.Method == "" {
		r.Method = "AdaPipe"
	}
	if _, err := baseline.MethodByName(r.Method); err != nil {
		return r, err
	}
	if err := (parallel.Strategy{TP: r.TP, PP: r.PP, DP: r.DP}).Validate(); err != nil {
		return r, err
	}
	if r.SeqLen < 1 {
		return r, fmt.Errorf("request: seq_len must be >= 1, got %d", r.SeqLen)
	}
	if r.MicroBatch == 0 {
		r.MicroBatch = 1
	}
	if _, err := r.TrainingConfig().MicroBatches(r.Strategy()); err != nil {
		return r, err
	}
	if r.MemoryReserve < 0 || r.MemoryReserve >= 1 {
		return r, fmt.Errorf("request: memory_reserve must be in [0, 1), got %g", r.MemoryReserve)
	}
	return r, nil
}

// ParsePlanRequest decodes and validates a request from its JSON encoding.
// Unknown fields are rejected (a typoed field name must not silently select a
// default), and the returned request is normalized.
func ParsePlanRequest(data []byte) (PlanRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r PlanRequest
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("request: decoding plan request: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return r, fmt.Errorf("request: trailing data after plan request")
	}
	return r.Normalize()
}

// Canonical returns the canonical JSON encoding of the normalized request:
// object keys sorted bytewise, no insignificant whitespace, default values
// materialized. Equal requests — including ones that differ only in field
// order, whitespace or elided defaults — have equal canonical bytes, which is
// what makes Hash a cache identity rather than a representation artifact.
func (r PlanRequest) Canonical() ([]byte, error) {
	n, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(n)
	if err != nil {
		return nil, err
	}
	return CanonicalizeJSON(raw)
}

// Hash returns the request's content identity: the lowercase-hex SHA-256 of
// its canonical encoding.
func (r PlanRequest) Hash() (string, error) {
	c, err := r.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Strategy returns the 3D parallelism strategy of the request.
func (r PlanRequest) Strategy() parallel.Strategy {
	return parallel.Strategy{TP: r.TP, PP: r.PP, DP: r.DP}
}

// TrainingConfig returns the training configuration of the request.
func (r PlanRequest) TrainingConfig() parallel.Config {
	mb := r.MicroBatch
	if mb == 0 {
		mb = 1
	}
	return parallel.Config{GlobalBatch: r.GlobalBatch, MicroBatch: mb, SeqLen: r.SeqLen}
}

// ModelConfig resolves the architecture the request names.
func (r PlanRequest) ModelConfig() (model.Config, error) {
	n, err := r.Normalize()
	if err != nil {
		return model.Config{}, err
	}
	switch n.Model {
	case "gpt3":
		return model.GPT3_175B(), nil
	case "llama2":
		return model.Llama2_70B(), nil
	default: // "tiny"; Normalize already rejected everything else
		return model.Tiny(n.TinyLayers), nil
	}
}

// ClusterConfig resolves the hardware model the request names.
func (r PlanRequest) ClusterConfig() (hardware.Cluster, error) {
	n, err := r.Normalize()
	if err != nil {
		return hardware.Cluster{}, err
	}
	switch n.Cluster {
	case "a":
		return hardware.ClusterA(), nil
	case "b":
		return hardware.ClusterB(), nil
	default: // "b-large"
		return hardware.ClusterBLarge(), nil
	}
}

// MethodConfig resolves the evaluation method the request names.
func (r PlanRequest) MethodConfig() (baseline.Method, error) {
	n, err := r.Normalize()
	if err != nil {
		return baseline.Method{}, err
	}
	return baseline.MethodByName(n.Method)
}

// Options builds the planner options the request implies: the evaluation
// defaults with the method's recomputation and partitioning modes applied.
// workers sizes the search worker pool (an execution knob — deliberately not
// part of the request schema or its hash, because plans are byte-identical
// for every worker count).
func (r PlanRequest) Options(workers int) (core.Options, error) {
	m, err := r.MethodConfig()
	if err != nil {
		return core.Options{}, err
	}
	opts := core.DefaultOptions()
	opts.Recompute = m.Recompute
	opts.Partition = m.Partition
	opts.IgnoreMemoryLimit = !m.Adaptive()
	opts.Workers = workers
	if r.MemoryReserve > 0 {
		opts.MemoryReserve = r.MemoryReserve
	}
	return opts, nil
}

// NewPlanner constructs the planner the request describes — the single
// request-driven construction path the CLI, benchmarks and daemon share.
func (r PlanRequest) NewPlanner(workers int) (*core.Planner, error) {
	n, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	cfg, err := n.ModelConfig()
	if err != nil {
		return nil, err
	}
	cl, err := n.ClusterConfig()
	if err != nil {
		return nil, err
	}
	opts, err := n.Options(workers)
	if err != nil {
		return nil, err
	}
	return core.NewPlanner(cfg, cl, n.Strategy(), n.TrainingConfig(), opts)
}

// ResponseEnvelope is the shared leading section of every v1 success
// response: the schema version, the content hash of the normalized request
// that produced it, and the normalized method label. Embedding it first keeps
// the three fields leading every response body, so clients can decode the
// envelope alone to verify version and routing before touching the payload.
type ResponseEnvelope struct {
	// Version is the schema version of this response.
	Version int `json:"version"`
	// RequestHash is the canonical hash of the request that produced the
	// payload — the daemon's cache key, echoed so clients can verify routing.
	RequestHash string `json:"request_hash"`
	// Method echoes the normalized method label of the underlying request.
	Method string `json:"method"`
}

// NewResponseEnvelope assembles the envelope for a normalized request.
func NewResponseEnvelope(r PlanRequest) (ResponseEnvelope, error) {
	n, err := r.Normalize()
	if err != nil {
		return ResponseEnvelope{}, err
	}
	hash, err := n.Hash()
	if err != nil {
		return ResponseEnvelope{}, err
	}
	return ResponseEnvelope{Version: n.Version, RequestHash: hash, Method: n.Method}, nil
}

// PlanResponse is the versioned reply to a plan request. Its encoding is
// deterministic (the embedded plan bytes come from the plan's own
// deterministic serialization), so cached replies are byte-identical to cold
// ones and a response can itself be content-addressed.
type PlanResponse struct {
	ResponseEnvelope
	// Plan is the plan in its stable execution-engine JSON encoding,
	// embedded verbatim: extracting this field yields exactly the bytes
	// `adapipe -o plan.json` writes for the same request.
	Plan json.RawMessage `json:"plan"`
}

// NewPlanResponse assembles the response for a solved request.
func NewPlanResponse(r PlanRequest, p *core.Plan) (PlanResponse, error) {
	env, err := NewResponseEnvelope(r)
	if err != nil {
		return PlanResponse{}, err
	}
	planJSON, err := json.Marshal(p)
	if err != nil {
		return PlanResponse{}, err
	}
	return PlanResponse{ResponseEnvelope: env, Plan: planJSON}, nil
}

// Encode returns the response's deterministic JSON encoding.
func (pr PlanResponse) Encode() ([]byte, error) { return json.Marshal(pr) }

// ParsePlanResponse decodes a response, checking the schema version.
func ParsePlanResponse(data []byte) (PlanResponse, error) {
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		return pr, fmt.Errorf("request: decoding plan response: %w", err)
	}
	if pr.Version != Version {
		return pr, fmt.Errorf("request: unsupported response version %d (this build speaks %d)", pr.Version, Version)
	}
	return pr, nil
}

// SimulateResponse is the versioned reply to a simulate request: the plan
// plus its simulated execution under the method's pipeline schedule.
type SimulateResponse struct {
	ResponseEnvelope
	// Schedule names the pipeline mechanism simulated ("1f1b", "gpipe",
	// "chimera" or "chimerad").
	Schedule string `json:"schedule"`
	// IterSec is the simulated iteration time in seconds; BubbleRatio the
	// idle share of device time.
	IterSec     float64 `json:"iter_sec"`
	BubbleRatio float64 `json:"bubble_ratio"`
	// PeakBytes is the simulated per-device peak memory.
	PeakBytes []int64 `json:"peak_bytes"`
	// OOM reports that the simulated peak exceeds device capacity.
	OOM bool `json:"oom"`
	// Plan is the underlying plan, embedded exactly as in PlanResponse.
	Plan json.RawMessage `json:"plan"`
}

// ScheduleName returns the wire label of a schedule kind.
func ScheduleName(k baseline.ScheduleKind) string {
	switch k {
	case baseline.Sched1F1B:
		return "1f1b"
	case baseline.SchedGPipe:
		return "gpipe"
	case baseline.SchedChimera:
		return "chimera"
	case baseline.SchedChimeraD:
		return "chimerad"
	default:
		return "unknown"
	}
}

// CanonicalizeJSON rewrites a JSON document into canonical form: object keys
// sorted bytewise, arrays in place, no insignificant whitespace, numbers kept
// in their original textual form (so no float round-trip can perturb bytes).
func CanonicalizeJSON(data []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("request: canonicalizing: %w", err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(x.String())
	case string:
		sb, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(sb)
	case bool:
		buf.WriteString(strconv.FormatBool(x))
	case nil:
		buf.WriteString("null")
	default:
		return fmt.Errorf("request: canonicalizing unexpected type %T", v)
	}
	return nil
}
