// Package trace renders simulated pipeline timelines as ASCII Gantt charts
// in the style of the paper's Figure 2/3 schedules, and exports them as
// Chrome-trace JSON for interactive inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// Gantt renders the timeline as one text row per device. width is the chart
// width in characters; each op is drawn as a run of cells labeled with its
// micro-batch id (lowercase letters beyond 9), uppercase F rows on top.
// Idle time renders as '.'.
func Gantt(res sim.Result, devices int, width int) string {
	if len(res.Timeline) == 0 {
		return "(timeline not captured)\n"
	}
	makespan := res.IterTime
	if makespan <= 0 {
		return "(empty timeline)\n"
	}
	rows := make([][]byte, devices)
	for d := range rows {
		rows[d] = []byte(strings.Repeat(".", width))
	}
	for _, ev := range res.Timeline {
		lo := int(ev.Start / makespan * float64(width))
		hi := int(ev.End / makespan * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		ch := cellLabel(ev.Op)
		for c := lo; c < hi; c++ {
			rows[ev.Device][c] = ch
		}
	}
	var b strings.Builder
	for d := 0; d < devices; d++ {
		fmt.Fprintf(&b, "dev %2d |%s|\n", d, rows[d])
	}
	// The footer right-aligns the makespan under the chart's right edge; for
	// charts narrower than the label the padding would go negative.
	pad := width - len(fmt.Sprintf("%.3fs", makespan))
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(&b, "        0%s%.3fs\n", strings.Repeat(" ", pad), makespan)
	return b.String()
}

// cellLabel picks the drawing character of an op: digits (then letters) for
// forward passes, and the same micro id on backward passes rendered in a
// distinct alphabet ('A'… for micros 0…) so F/B phases are distinguishable.
func cellLabel(op schedule.Op) byte {
	if len(op.Micros) == 0 {
		return '?'
	}
	m := op.Micros[0] % 36
	if op.Kind == schedule.Forward {
		if m < 10 {
			return byte('0' + m)
		}
		return byte('a' + m - 10)
	}
	if m < 26 {
		return byte('A' + m)
	}
	return '#'
}

// MemoryCSV renders captured per-device memory curves as CSV
// (device,time_sec,bytes), the format the paper's artifact logs per
// forward/backward pass for its memory analysis.
func MemoryCSV(res sim.Result) string {
	var b strings.Builder
	b.WriteString("device,time_sec,bytes\n")
	for d, curve := range res.MemTimeline {
		for _, pt := range curve {
			fmt.Fprintf(&b, "%d,%.9f,%d\n", d, pt.Time, pt.Bytes)
		}
	}
	return b.String()
}

// chromeEvent is one Chrome-trace "complete" event.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// ChromeTrace serializes the timeline in the Chrome trace-event format
// (load via chrome://tracing or Perfetto).
func ChromeTrace(res sim.Result) ([]byte, error) {
	events := make([]chromeEvent, 0, len(res.Timeline))
	for _, ev := range res.Timeline {
		cat := "forward"
		if ev.Op.Kind == schedule.Backward {
			cat = "backward"
		}
		events = append(events, chromeEvent{
			Name: ev.Op.String(),
			Cat:  cat,
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  (ev.End - ev.Start) * 1e6,
			Pid:  0,
			Tid:  ev.Device,
		})
	}
	return marshalChrome(events)
}

// SpanEvent is one completed interval of a request-scoped trace, expressed
// in seconds from the trace origin. It is the renderer-facing shape of an
// obs tracer span (the obs package converts; trace cannot import obs without
// a cycle through core).
type SpanEvent struct {
	// Name labels the interval; Cat is its category (request/phase/...).
	Name, Cat string
	// Start and Dur position the interval, in seconds from the origin.
	Start, Dur float64
	// Tid is the logical track the interval renders on.
	Tid int
}

// ChromeSpans serializes request-scoped spans through the same Chrome
// trace-event path as the simulated timelines, so a stored request trace
// renders byte-identically on every export.
func ChromeSpans(spans []SpanEvent) ([]byte, error) {
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			Ts:   sp.Start * 1e6,
			Dur:  sp.Dur * 1e6,
			Pid:  0,
			Tid:  sp.Tid,
		})
	}
	return marshalChrome(events)
}

// marshalChrome orders events deterministically and renders the trace
// document. Stable sort with a full tie-break: events at equal timestamps
// (common in simulated timelines) must serialize identically across runs.
func marshalChrome(events []chromeEvent) ([]byte, error) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Name < events[j].Name
	})
	return json.MarshalIndent(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}, "", "  ")
}
