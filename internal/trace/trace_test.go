package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

func captured(t *testing.T) sim.Result {
	t.Helper()
	s, err := schedule.OneFOneB(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]sim.StageCost, 3)
	for i := range costs {
		costs[i] = sim.StageCost{Fwd: 1, Bwd: 2}
	}
	r, err := sim.Run(sim.Input{Sched: s, Stages: costs, CaptureTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGanttShape(t *testing.T) {
	r := captured(t)
	out := Gantt(r, 3, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 device rows + time axis
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for d := 0; d < 3; d++ {
		if !strings.HasPrefix(lines[d], "dev ") {
			t.Errorf("row %d = %q", d, lines[d])
		}
		bar := lines[d][strings.Index(lines[d], "|")+1 : strings.LastIndex(lines[d], "|")]
		if len(bar) != 60 {
			t.Errorf("row %d bar width = %d, want 60", d, len(bar))
		}
	}
	// Stage 0 starts at time zero (no leading idle); the last stage idles
	// until the first forward propagates down the pipeline.
	if strings.HasPrefix(lines[0][strings.Index(lines[0], "|")+1:], ".") {
		t.Error("stage 0 should start at time zero")
	}
	if !strings.HasPrefix(lines[2][strings.Index(lines[2], "|")+1:], ".") {
		t.Error("last stage should wait for the pipeline to fill")
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := Gantt(sim.Result{}, 2, 40); !strings.Contains(out, "not captured") {
		t.Errorf("empty timeline output = %q", out)
	}
}

func TestGanttNarrowWidth(t *testing.T) {
	// The time-axis label ("12.000s" etc.) can be wider than the chart;
	// the footer padding used to underflow and panic in strings.Repeat.
	r := captured(t)
	for _, width := range []int{1, 2, 5, 7} {
		out := Gantt(r, 3, width)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 4 {
			t.Fatalf("width %d: got %d lines:\n%s", width, len(lines), out)
		}
		if !strings.Contains(lines[3], "s") {
			t.Errorf("width %d: footer %q lacks makespan", width, lines[3])
		}
	}
}

func TestGanttLabels(t *testing.T) {
	fwd := cellLabel(schedule.Op{Kind: schedule.Forward, Micros: []int{3}})
	if fwd != '3' {
		t.Errorf("forward label = %c", fwd)
	}
	if got := cellLabel(schedule.Op{Kind: schedule.Forward, Micros: []int{11}}); got != 'b' {
		t.Errorf("forward label for micro 11 = %c, want b", got)
	}
	bwd := cellLabel(schedule.Op{Kind: schedule.Backward, Micros: []int{2}})
	if bwd != 'C' {
		t.Errorf("backward label = %c, want C", bwd)
	}
	if got := cellLabel(schedule.Op{Kind: schedule.Backward, Micros: []int{30}}); got != '#' {
		t.Errorf("backward label for micro 30 = %c, want #", got)
	}
	if got := cellLabel(schedule.Op{Kind: schedule.Forward}); got != '?' {
		t.Errorf("label for op without micros = %c, want ?", got)
	}
}

func TestChromeTrace(t *testing.T) {
	r := captured(t)
	data, err := ChromeTrace(r)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3*2*6 {
		t.Fatalf("%d events, want 36", len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur <= 0 {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
		if ev.Cat != "forward" && ev.Cat != "backward" {
			t.Errorf("event %d category %q", i, ev.Cat)
		}
		if i > 0 && ev.Ts < doc.TraceEvents[i-1].Ts {
			t.Error("events not sorted by start time")
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	// Simulated timelines routinely contain events with identical start
	// times (e.g. different stages kicking off at t=0). The serialization
	// must not depend on the incoming event order.
	mkOp := func(kind schedule.Kind, stage, micro int) schedule.Op {
		return schedule.Op{Kind: kind, Stage: stage, Micros: []int{micro}}
	}
	events := []sim.Event{
		{Device: 1, Op: mkOp(schedule.Forward, 1, 0), Start: 0, End: 1},
		{Device: 0, Op: mkOp(schedule.Forward, 0, 0), Start: 0, End: 1},
		{Device: 0, Op: mkOp(schedule.Forward, 0, 1), Start: 1, End: 2},
		{Device: 1, Op: mkOp(schedule.Backward, 1, 0), Start: 1, End: 3},
	}
	base := sim.Result{Timeline: events, IterTime: 3}
	want, err := ChromeTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the event order; the serialized bytes must not move.
	rev := make([]sim.Event, len(events))
	for i, ev := range events {
		rev[len(events)-1-i] = ev
	}
	got, err := ChromeTrace(sim.Result{Timeline: rev, IterTime: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("ChromeTrace depends on event order:\n%s\nvs\n%s", want, got)
	}
	// And repeated runs on the same input are byte-identical.
	again, err := ChromeTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, again) {
		t.Error("ChromeTrace not reproducible on identical input")
	}
}

func TestChromeSpans(t *testing.T) {
	spans := []SpanEvent{
		{Name: "request", Cat: "request", Start: 0, Dur: 0.010, Tid: 0},
		{Name: "search", Cat: "phase", Start: 0.002, Dur: 0.007, Tid: 0},
		{Name: "knapsack", Cat: "solve", Start: 0.003, Dur: 0.001, Tid: 1},
		{Name: "knapsack", Cat: "solve", Start: 0.003, Dur: 0.002, Tid: 2},
	}
	data, err := ChromeSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(doc.TraceEvents))
	}
	// Seconds convert to Chrome's microseconds; complete events throughout.
	if ev := doc.TraceEvents[0]; ev.Name != "request" || ev.Ph != "X" || ev.Ts != 0 || ev.Dur != 10000 {
		t.Errorf("first event = %+v, want the request span at ts=0 dur=10000us", ev)
	}
	// Equal-Ts events tie-break on Tid: the two knapsack solves keep their
	// track order.
	if doc.TraceEvents[2].Tid != 1 || doc.TraceEvents[3].Tid != 2 {
		t.Errorf("equal-timestamp solves out of track order: %+v", doc.TraceEvents[2:])
	}

	// Byte-determinism: reversed input order must serialize identically.
	rev := make([]SpanEvent, len(spans))
	for i, sp := range spans {
		rev[len(spans)-1-i] = sp
	}
	again, err := ChromeSpans(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("ChromeSpans depends on input order")
	}
}

func TestMemoryCSV(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 3)
	costs := []sim.StageCost{{Fwd: 1, Bwd: 2, SavedPerMicro: 5, Static: 50}, {Fwd: 1, Bwd: 2, SavedPerMicro: 5, Static: 50}}
	r, err := sim.Run(sim.Input{Sched: s, Stages: costs, CaptureMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	out := MemoryCSV(r)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "device,time_sec,bytes" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+2*(2*3+1) {
		t.Errorf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Errorf("first row = %q", lines[1])
	}
}
