// Package core implements the AdaPipe search engine (§6): it profiles a model
// analytically, runs the two-level dynamic program — per-stage adaptive
// recomputation (§4) inside adaptive stage partitioning (§5) — and produces
// an executable Plan with a per-stage layer range, save/recompute strategy,
// memory breakdown and modeled phase times.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"adapipe/internal/coststore"
	"adapipe/internal/hardware"
	"adapipe/internal/memory"
	"adapipe/internal/model"
	"adapipe/internal/obs"
	"adapipe/internal/parallel"
	"adapipe/internal/partition"
	"adapipe/internal/profile"
	"adapipe/internal/recompute"
)

// RecomputeMode selects the recomputation policy.
type RecomputeMode int

const (
	// RecomputeAdaptive searches the per-stage save set with the §4 DP.
	RecomputeAdaptive RecomputeMode = iota
	// RecomputeFull always recomputes decoder layers, saving only each
	// layer's input (the -Full baselines).
	RecomputeFull
	// RecomputeNone saves every intermediate (the -Non baselines).
	RecomputeNone
	// RecomputeLayerLevel searches save/recompute decisions at whole-layer
	// granularity, the coarse policy of prior work (vPipe-style, §2.2):
	// each Attention/FFN layer either keeps all its intermediates or
	// recomputes all of them. An ablation quantifying the value of
	// AdaPipe's unit granularity.
	RecomputeLayerLevel
)

// String returns the mode name.
func (m RecomputeMode) String() string {
	switch m {
	case RecomputeAdaptive:
		return "adaptive"
	case RecomputeFull:
		return "full"
	case RecomputeNone:
		return "none"
	case RecomputeLayerLevel:
		return "layer"
	default:
		return fmt.Sprintf("RecomputeMode(%d)", int(m))
	}
}

// PartitionMode selects the stage-partitioning policy.
type PartitionMode int

const (
	// PartitionAdaptive runs Algorithm 1.
	PartitionAdaptive PartitionMode = iota
	// PartitionEven splits the layer sequence uniformly (the baselines and
	// the Even Partitioning configuration of §7).
	PartitionEven
	// PartitionExact runs the Pareto-frontier variant of Algorithm 1,
	// which is globally optimal under the §5.1 cost model (an extension:
	// it quantifies how close the paper's near-optimal DP gets).
	PartitionExact
)

// String returns the mode name.
func (m PartitionMode) String() string {
	switch m {
	case PartitionAdaptive:
		return "adaptive"
	case PartitionEven:
		return "even"
	case PartitionExact:
		return "exact"
	default:
		return fmt.Sprintf("PartitionMode(%d)", int(m))
	}
}

// Options configures the planner.
type Options struct {
	// Memory selects the precision regime of the static memory model.
	Memory memory.Options
	// MemoryReserve is the fraction of device memory withheld from the
	// adaptive-recomputation budget — the paper runs the DP against a
	// conservative 70 GB of the 80 GB capacity (§7.4). Baselines are
	// checked against the full capacity.
	MemoryReserve float64
	// Quantum is the minimum knapsack rounding granularity in bytes.
	Quantum int64
	// MaxDPStates caps the knapsack capacity in quanta; the quantum grows
	// (in powers of two) until the budget fits, trading a little precision
	// for search speed. Zero selects 4096.
	MaxDPStates int64
	// DisableGCD turns off the §5.3 GCD reduction (ablation).
	DisableGCD bool
	// DisableIsomorphism turns off the §5.3 isomorphic-range cache
	// (ablation): every (s,i,j) range is solved independently.
	DisableIsomorphism bool
	// Recompute selects the recomputation policy.
	Recompute RecomputeMode
	// Partition selects the partitioning policy.
	Partition PartitionMode
	// MaxFrontier caps the Pareto frontier of PartitionExact per DP cell
	// (zero selects 128). Larger values approach true optimality at the
	// cost of search time.
	MaxFrontier int
	// IgnoreMemoryLimit plans full/no-recomputation baselines even when
	// their modeled memory exceeds capacity, so the simulator can estimate
	// the peak consumption of OOM configurations (Figure 8). It has no
	// effect on the adaptive search, which needs the constraint.
	IgnoreMemoryLimit bool
	// Workers bounds the planner's worker pool: the independent per-
	// (stage, iso-class) knapsack solves are fanned across Workers
	// goroutines before the partition DP runs, and the DP's per-level cells
	// are sharded the same way. 0 or 1 selects the fully serial search.
	// Plans are byte-identical for every value — parallelism changes wall
	// time only, never the result (see TestParallelPlanMatchesSerial).
	Workers int
}

// DefaultOptions returns the configuration used in the evaluation.
func DefaultOptions() Options {
	return Options{
		Memory:        memory.Default(),
		MemoryReserve: 0.15, // ~68 of 80 GB, the paper's conservative 70 GB setting
		MaxDPStates:   4096,
	}
}

// StagePlan is the plan of one pipeline stage.
type StagePlan struct {
	// Stage is the stage index (0-based).
	Stage int
	// LayerLo and LayerHi delimit the half-open layer range [lo, hi).
	LayerLo, LayerHi int
	// Fwd and Bwd are the modeled per-micro-batch times in seconds; Bwd
	// includes the recomputation overhead of the chosen strategy.
	Fwd, Bwd float64
	// Recompute is the chosen save/recompute strategy.
	Recompute recompute.Solution
	// Mem is the modeled peak memory.
	Mem memory.Breakdown
}

// Layers returns the number of layers assigned to the stage.
func (sp StagePlan) Layers() int { return sp.LayerHi - sp.LayerLo }

// Plan is a complete AdaPipe execution plan.
type Plan struct {
	// Model names the planned architecture.
	Model string
	// Strategy is the 3D parallelism configuration.
	Strategy parallel.Strategy
	// SeqLen and MicroBatch echo the training configuration.
	SeqLen, MicroBatch int
	// MicroBatches is n, the per-replica micro-batch count.
	MicroBatches int
	// Recompute and Partition record the planning modes.
	Recompute RecomputeMode
	// Partition records the partitioning mode.
	Partition PartitionMode
	// Stages holds one entry per pipeline stage.
	Stages []StagePlan
	// Total, W, E, M are the modeled iteration time and phase values of
	// the §5.1 cost model (communication excluded; the simulator adds it).
	Total, W, E, M float64
	// CommFwd and CommBwd are the per-micro-batch stage-boundary transfer
	// times the simulator charges.
	CommFwd, CommBwd float64
	// Search is a snapshot of the planner's search-effort counters at the
	// time this plan was produced. Excluded from plan serialization (it
	// carries wall-clock time, which is not deterministic).
	Search SearchStats
}

// Fwd returns the per-stage forward times.
func (p *Plan) Fwd() []float64 {
	out := make([]float64, len(p.Stages))
	for i, s := range p.Stages {
		out[i] = s.Fwd
	}
	return out
}

// Bwd returns the per-stage backward times (including recomputation).
func (p *Plan) Bwd() []float64 {
	out := make([]float64, len(p.Stages))
	for i, s := range p.Stages {
		out[i] = s.Bwd
	}
	return out
}

// SavedPerMicro returns the per-stage activation bytes pinned per in-flight
// micro-batch.
func (p *Plan) SavedPerMicro() []int64 {
	out := make([]int64, len(p.Stages))
	for i, s := range p.Stages {
		out[i] = s.Mem.SavedPerMicro
	}
	return out
}

// StaticMem returns the per-stage static memory (params, grads, optimizer
// states, recompute buffer).
func (p *Plan) StaticMem() []int64 {
	out := make([]int64, len(p.Stages))
	for i, s := range p.Stages {
		out[i] = s.Mem.Static()
	}
	return out
}

// Planner runs the AdaPipe search for one (model, cluster, strategy,
// training-config) tuple.
type Planner struct {
	cfg     model.Config
	cluster hardware.Cluster
	strat   parallel.Strategy
	train   parallel.Config
	opts    Options

	prof   *profile.Profile
	layers []model.Layer
	n      int
	// clock times the search's wall counters (SearchWall, ParallelWall,
	// per-worker busy time). RealClock() at construction; SetClock swaps in
	// a fake for deterministic tests. Immutable once planning starts.
	clock obs.Clock

	// mu guards cache, Stats, scale and solver. Everything above it is
	// immutable after construction. Concurrent Plan/CostFor calls on one
	// planner are safe (TestPlannerConcurrent); the heavy solves run
	// outside the lock in the prefill workers.
	mu sync.Mutex
	// cache memoizes per-range stage costs across Plan calls. It is the
	// first-level cache even when a shared CostSource is attached: local
	// lookups stay a plain map access, and only misses pay for key hashing.
	// guarded by mu
	cache map[costKey]stageCost
	// source, when non-nil, is the shared second-level cost store consulted
	// on local cache misses (SetCostSource); family is the 32-byte
	// fingerprint prefixing this planner's store keys. Both are set before
	// the first Plan and never change while a search runs.
	// guarded by mu
	source CostSource
	// family is the cost-family fingerprint of this planner's store keys.
	// guarded by mu
	family []byte
	// scale holds per-stage compute-cost multipliers (nil = all 1), set by
	// SetStageScale when a live run observes a degraded stage. Applied on
	// top of the cache, which stores nominal costs only. The slice is
	// replaced wholesale, never mutated in place, so a reference read under
	// mu stays consistent after unlock.
	// guarded by mu
	scale []float64
	// solver is the serial-path knapsack scratch arena; prefill workers
	// borrow theirs from solverPool.
	// guarded by mu
	solver *recompute.Solver
	// solverPool holds idle prefill knapsack solvers, reused across Plan
	// calls so the parallel path stops rebuilding per-worker scratch arenas
	// on every request.
	// guarded by mu
	solverPool []*recompute.Solver
	// partMemo and exactMemo hold the partition-DP tables of the last
	// completed search, kept to warm-start the next one; nil while a solve
	// has one checked out or before the first search completes.
	// guarded by mu
	partMemo *partition.Memo
	// exactMemo is partMemo's counterpart for PartitionExact.
	// guarded by mu
	exactMemo *partition.ExactMemo
	// memoScale is the stage-scale vector the memos were computed under
	// (nil = nominal), compared bit-wise against scale to decide which DP
	// levels a warm-started search must recompute.
	// guarded by mu
	memoScale []float64
	// dense is the pooled cost-snapshot buffer of the incremental fast
	// path, filled under mu and read lock-free during the solve; nil while
	// a warm-started solve has it checked out.
	// guarded by mu
	dense []denseEntry
	// Stats accumulates search-effort counters across Plan calls (the cost
	// cache persists, so the counters do too); each Plan carries a snapshot.
	// Read it only after all concurrent Plan calls have returned.
	// guarded by mu
	Stats SearchStats
}

type costKey struct {
	s, i, j int
}

type stageCost struct {
	fwd, bwd float64
	sol      recompute.Solution
	mem      memory.Breakdown
	ok       bool
}

// NewPlanner validates the inputs, profiles the model analytically and
// returns a planner.
func NewPlanner(cfg model.Config, cluster hardware.Cluster, strat parallel.Strategy, train parallel.Config, opts Options) (*Planner, error) {
	prof, err := profile.NewWithComm(cfg, cluster.Device, strat, train.SeqLen, train.MicroBatch, cluster.IntraNodeBandwidth)
	if err != nil {
		return nil, err
	}
	return NewPlannerWithProfile(cfg, cluster, strat, train, prof, opts)
}

// NewPlannerWithProfile builds a planner around an existing cost profile —
// typically one assembled from real cluster measurements via
// profile.FromMeasurements, the paper's deployment path (§6: the search
// engine "first profiles the forward time and backward time of each
// computation unit").
func NewPlannerWithProfile(cfg model.Config, cluster hardware.Cluster, strat parallel.Strategy, train parallel.Config, prof *profile.Profile, opts Options) (*Planner, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Memory.Validate(); err != nil {
		return nil, err
	}
	if opts.MemoryReserve < 0 || opts.MemoryReserve >= 1 {
		return nil, fmt.Errorf("core: MemoryReserve must be in [0,1), got %g", opts.MemoryReserve)
	}
	if strat.Devices() > cluster.Devices() {
		return nil, fmt.Errorf("core: strategy %s needs %d devices, cluster %s has %d",
			strat, strat.Devices(), cluster.Name, cluster.Devices())
	}
	if prof == nil {
		return nil, fmt.Errorf("core: nil profile")
	}
	n, err := train.MicroBatches(strat)
	if err != nil {
		return nil, err
	}
	if n < strat.PP {
		return nil, fmt.Errorf("core: %d micro-batches cannot fill a %d-stage 1F1B pipeline", n, strat.PP)
	}
	return &Planner{
		cfg:     cfg,
		cluster: cluster,
		strat:   strat,
		train:   train,
		opts:    opts,
		prof:    prof,
		layers:  cfg.LayerSequence(),
		n:       n,
		clock:   RealClock(),
		cache:   make(map[costKey]stageCost),
		solver:  recompute.NewSolver(),
	}, nil
}

// SetClock replaces the planner's wall-clock source so tests can drive the
// SearchStats wall counters deterministically. Call it before the first
// Plan/PlanContext; a nil clock is ignored.
func (pl *Planner) SetClock(c obs.Clock) {
	if c != nil {
		pl.clock = c
	}
}

// Profile exposes the synthesized cost profile.
func (pl *Planner) Profile() *profile.Profile { return pl.prof }

// MicroBatches returns n for the planner's configuration.
func (pl *Planner) MicroBatches() int { return pl.n }

// dpBudget is the memory budget the adaptive DP searches against.
func (pl *Planner) dpBudget() int64 {
	return int64(float64(pl.cluster.Device.MemCapacity) * (1 - pl.opts.MemoryReserve))
}

// isoKey maps a (s,i,j) range onto its isomorphism class (§5.3): ranges with
// the same stage, length, first-layer kind and head inclusion have identical
// costs because transformer layers of one kind are homogeneous.
func (pl *Planner) isoKey(s, i, j int) costKey {
	if pl.opts.DisableIsomorphism {
		return costKey{s, i, j}
	}
	ends := 0
	if j == len(pl.layers)-1 {
		ends = 1
	}
	// Encode (length, firstKind, endsWithHead) into the i/j fields.
	return costKey{s, (j - i + 1), int(pl.layers[i].Kind)*2 + ends}
}

// buildGroups converts a layer range into knapsack groups, one per
// (layer-kind, unit-kind) pair present in the range.
func (pl *Planner) buildGroups(layers []model.Layer) []recompute.Group {
	counts := map[model.LayerKind]int{}
	for _, l := range layers {
		counts[l.Kind]++
	}
	var groups []recompute.Group
	for _, kind := range []model.LayerKind{model.Embedding, model.Attention, model.FFN, model.Head} {
		c := counts[kind]
		if c == 0 {
			continue
		}
		for _, uc := range pl.prof.Layers[kind].Units {
			groups = append(groups, recompute.Group{
				Key:         kind.String() + "/" + uc.Unit.Kind.String(),
				FwdTime:     uc.FwdTime,
				Bytes:       uc.SavedBytes,
				Count:       c,
				AlwaysSaved: uc.Unit.AlwaysSaved,
			})
		}
	}
	recompute.SortGroups(groups)
	return groups
}

// stageCostFor computes (and caches) the cost entry for layers i..j at stage s.
// The cache holds nominal costs; any stage scale is applied to the returned
// copy, so SetStageScale never invalidates cached entries (the isomorphism
// key retains the stage index, keeping per-stage scaling cache-consistent).
// Safe for concurrent use; in the parallel search the prefill has already
// populated the cache, so the locked section is a map lookup. tr (nil when
// the caller is untraced) attributes any serial-path knapsack solve; the
// shared solver's Trace is set only while mu is held, so concurrent searches
// with different tracers cannot cross-attribute spans.
func (pl *Planner) stageCostFor(tr *obs.Tracer, s, i, j int) stageCost {
	c := pl.stageCostNominal(tr, s, i, j)
	pl.mu.Lock()
	scale := pl.scale
	pl.mu.Unlock()
	if scale != nil {
		c.fwd *= scale[s]
		c.bwd *= scale[s]
	}
	return c
}

// stageCostNominal is stageCostFor without the scale application: it
// returns the cached nominal cost entry, solving and caching on a miss.
// Searches use it with a scale snapshot taken at claim time, so one solve
// sees one consistent repricing even if SetStageScale races it.
//
// With a CostSource attached, a local miss consults the shared store before
// (or instead of) solving: the store runs the compute closure exactly once
// per key process-wide, so the planner either solves and publishes, or
// adopts another planner's identical solve. Either way the result lands in
// the local cache, keeping later lookups hash-free.
func (pl *Planner) stageCostNominal(tr *obs.Tracer, s, i, j int) stageCost {
	pl.mu.Lock()
	pl.Stats.CostEvaluations++
	key := pl.isoKey(s, i, j)
	c, hit := pl.cache[key]
	switch {
	case hit:
		pl.Stats.CacheHits++
	case pl.source != nil:
		e, disp := pl.source.GetOrCompute(storeKeyFor(pl.family, key), func() coststore.Entry {
			// Serial solves render on track 0 next to the request phases.
			pl.solver.Trace = tr
			c := pl.solveStage(s, i, j, pl.solver, &pl.Stats)
			pl.solver.Trace = nil
			return entryFromCost(c)
		})
		c = costFromEntry(e)
		if disp == coststore.Computed {
			pl.Stats.StoreMisses++
		} else {
			pl.Stats.StoreHits++
		}
		pl.cache[key] = c
	default:
		// Serial solves render on track 0 next to the request phases.
		pl.solver.Trace = tr
		c = pl.solveStage(s, i, j, pl.solver, &pl.Stats)
		pl.solver.Trace = nil
		pl.cache[key] = c
	}
	pl.mu.Unlock()
	return c
}

// solveStage computes the nominal cost entry for layers i..j at stage s. It
// reads only immutable planner state, runs its knapsack on sv's scratch and
// counts effort into st — so prefill workers can run it concurrently, each
// with a private solver and stats shard merged after the join.
func (pl *Planner) solveStage(s, i, j int, sv *recompute.Solver, st *SearchStats) stageCost {
	layers := pl.layers[i : j+1]
	static := memory.StageStatic(pl.cfg, pl.prof, pl.strat, layers, pl.opts.Memory)
	inFlight := memory.InFlight(pl.strat.PP, s)
	fwd := pl.prof.RangeFwdTime(layers)
	bwd := pl.prof.RangeBwdTime(layers)
	capacity := pl.cluster.Device.MemCapacity
	// A stage's input activation (the tensor received from the previous
	// stage) stays live per in-flight micro-batch; stage 0 receives only
	// token ids, which are negligible.
	var input int64
	if layers[0].Kind != model.Embedding {
		input = pl.prof.CommBytes
	}

	switch pl.opts.Recompute {
	case RecomputeFull:
		var extra float64
		sol := recompute.Solution{Feasible: true, Saved: map[string]int{}}
		for _, l := range layers {
			lc := pl.prof.Layers[l.Kind]
			switch l.Kind {
			case model.Attention, model.FFN:
				// Classic full recomputation keeps only each decoder
				// block's input and replays the whole block.
				extra += lc.FwdTime
			default:
				sol.SavedUnits += len(lc.Units)
			}
			sol.TotalUnits += len(lc.Units)
		}
		saved := memory.SavedBoundary(pl.prof, layers)
		sol.SavedBytes = saved + input
		br := memory.Stage(pl.cfg, pl.prof, pl.strat, layers, s, sol.SavedBytes, pl.opts.Memory)
		ok := pl.opts.IgnoreMemoryLimit || br.Total() <= capacity
		return stageCost{fwd: fwd, bwd: bwd + extra, sol: sol, mem: br, ok: ok}

	case RecomputeNone:
		saved := memory.SavedAll(pl.prof, layers) + input
		sol := recompute.Solution{Feasible: true, Saved: map[string]int{}, SavedBytes: saved}
		for _, l := range layers {
			sol.SavedUnits += len(pl.prof.Layers[l.Kind].Units)
			sol.TotalUnits += len(pl.prof.Layers[l.Kind].Units)
		}
		br := memory.Stage(pl.cfg, pl.prof, pl.strat, layers, s, saved, pl.opts.Memory)
		ok := pl.opts.IgnoreMemoryLimit || br.Total() <= capacity
		return stageCost{fwd: fwd, bwd: bwd, sol: sol, mem: br, ok: ok}

	default: // RecomputeAdaptive, RecomputeLayerLevel
		avail := pl.dpBudget() - static.Static()
		if avail < 0 || inFlight == 0 {
			return stageCost{ok: false}
		}
		perMicro := avail/int64(inFlight) - input
		if perMicro < 0 {
			return stageCost{ok: false}
		}
		groups := pl.buildGroups(layers)
		if pl.opts.Recompute == RecomputeLayerLevel {
			groups = coarsenToLayers(groups)
		}
		st.KnapsackRuns++
		sol := sv.Optimize(groups, perMicro, recompute.Options{
			Quantum:    pl.quantumFor(perMicro),
			DisableGCD: pl.opts.DisableGCD,
		})
		st.KnapsackCells += sol.DPCells
		st.QuantaBeforeGCD += sol.QuantaBeforeGCD
		st.QuantaAfterGCD += sol.QuantaAfterGCD
		if !sol.Feasible {
			return stageCost{sol: sol, ok: false}
		}
		sol.SavedBytes += input
		br := memory.Stage(pl.cfg, pl.prof, pl.strat, layers, s, sol.SavedBytes, pl.opts.Memory)
		extra := recompute.TotalOptionalTime(groups) - sol.SavedTime
		return stageCost{fwd: fwd, bwd: bwd + extra, sol: sol, mem: br, ok: true}
	}
}

// quantumFor grows the rounding quantum (in powers of two) until the budget
// fits in MaxDPStates quanta.
func (pl *Planner) quantumFor(budget int64) int64 {
	q := pl.opts.Quantum
	if q <= 0 {
		q = 1 << 20
	}
	maxStates := pl.opts.MaxDPStates
	if maxStates <= 0 {
		maxStates = 4096
	}
	for budget/q > maxStates {
		q *= 2
	}
	return q
}

// Plan runs the configured search and assembles the plan. With Options.
// Workers > 1 the independent per-(stage, iso-class) knapsack solves are
// prefilled across the worker pool and the partition DP shards its per-level
// cells the same way; the resulting plan is byte-identical to the serial
// search. Plan is safe to call concurrently on one planner (the cost cache
// and counters are shared under a lock).
func (pl *Planner) Plan() (*Plan, error) {
	return pl.PlanContext(context.Background())
}

// PlanContext is Plan with cooperative cancellation: the prefill worker pool
// stops pulling solves once ctx is done, the partition DP short-circuits its
// remaining cost evaluations, and ctx.Err() is returned instead of a plan.
// Cancellation is result-safe — a cancelled search merges only fully-computed
// cost entries into the shared cache, so a later search on the same planner
// still produces plans byte-identical to a never-cancelled one
// (TestPlanContextCancelKeepsCacheClean). An uncancelled context changes
// nothing: PlanContext(context.Background()) is exactly Plan.
func (pl *Planner) PlanContext(ctx context.Context) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.TracerFrom(ctx)
	searchStart := pl.clock()
	L := len(pl.layers)
	p := pl.strat.PP
	workers := pl.workerCount()

	// Try the incremental fast path first: if the last search's DP memo is
	// still valid, check it out with a dense scale-applied cost snapshot
	// and recompute only the levels the scale change invalidated.
	spClaim := tr.Start("search.invalidate", obs.CatSearch, 0)
	ws := pl.claimWarmStart()
	spClaim.End()
	memo, exact, stale := ws.memo, ws.exact, ws.stale
	// The claimed state must flow back to the planner on every exit: the
	// dense buffer is pooled, and the memo — revalidated by a completed
	// solve — is what makes the next replan warm. A failed or cancelled
	// solve leaves the memo's own valid flag false (partition.SolveMemo),
	// so reinstalling it is safe but makes the next search cold.
	installed := false
	defer func() {
		if installed {
			return
		}
		pl.mu.Lock()
		if ws.dense != nil {
			pl.dense = ws.dense
		}
		if memo != nil {
			pl.partMemo = memo
		}
		if exact != nil {
			pl.exactMemo = exact
		}
		pl.mu.Unlock()
	}()

	var cost partition.CostFn
	if ws.ok {
		cost = pl.denseCostFn(ctx, tr, &ws)
	} else {
		stale = p - 1
		// A cold search on the memoizable modes fills a fresh memo so the
		// next search can warm-start from it.
		if !pl.opts.DisableIsomorphism {
			switch pl.opts.Partition {
			case PartitionExact:
				exact = &partition.ExactMemo{}
			case PartitionEven:
			default:
				memo = &partition.Memo{}
			}
		}
		if workers > 1 && pl.opts.Partition != PartitionEven {
			sp := tr.Start("search.prefill", obs.CatSearch, 0)
			err := pl.prefillCosts(ctx, workers)
			sp.End()
			if err != nil {
				return nil, err
			}
		}
		scale := ws.scale
		cost = func(s, i, j int) (float64, float64, bool) {
			// A cancelled context turns every remaining cost lookup into an
			// immediate "infeasible" so the DP unwinds quickly; whatever
			// partial solution it then returns is discarded below in favor
			// of ctx.Err().
			if ctx.Err() != nil {
				return 0, 0, false
			}
			c := pl.stageCostNominal(tr, s, i, j)
			f, b := c.fwd, c.bwd
			if scale != nil {
				f *= scale[s]
				b *= scale[s]
			}
			return f, b, c.ok
		}
	}

	var bounds []int
	var total, w, e, m float64
	var cellsAdd, frontierAdd, warmAdd int
	// Error returns leave the span unclosed and hence unrecorded — a failed
	// search produces no partition span, which is the honest trace.
	spanName := "search.partition"
	if ws.ok {
		spanName = "search.incremental"
	}
	spDP := tr.Start(spanName, obs.CatSearch, 0)
	switch pl.opts.Partition {
	case PartitionExact:
		sol, _, err := partition.SolveExactMemo(L, p, pl.n, cost, pl.frontierCap(), exact, stale, workers)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("core: %w (OOM under every partitioning)", err)
		}
		bounds = sol.Bounds
		total, w, e, m = sol.Total, sol.W, sol.E, sol.M
		cellsAdd, frontierAdd, warmAdd = sol.DPCells, sol.FrontierStates, sol.WarmCells
	case PartitionEven:
		bounds = partition.Even(L, p)
		var ok bool
		total, w, e, m, ok = partition.Evaluate(bounds, pl.n, cost)
		if !ok {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("core: %s with even partitioning exceeds the %s memory capacity (OOM)",
				pl.opts.Recompute, pl.cluster.Device.Name)
		}
		cellsAdd = p
	default:
		sol, err := partition.SolveMemo(L, p, pl.n, cost, memo, stale, workers)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("core: %w (OOM under every partitioning)", err)
		}
		bounds = sol.Bounds
		total, w, e, m = sol.Total, sol.W, sol.E, sol.M
		cellsAdd, warmAdd = sol.DPCells, sol.WarmCells
	}

	spDP.End()

	// A cancellation that raced the DP's final cells may have produced a
	// structurally valid but stale solution; never hand it out.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spStages := tr.Start("search.stages", obs.CatSearch, 0)
	plan := &Plan{
		Model:        pl.cfg.Name,
		Strategy:     pl.strat,
		SeqLen:       pl.train.SeqLen,
		MicroBatch:   pl.train.MicroBatch,
		MicroBatches: pl.n,
		Recompute:    pl.opts.Recompute,
		Partition:    pl.opts.Partition,
		Total:        total,
		W:            w,
		E:            e,
		M:            m,
	}
	bw := pl.cluster.PipelineBandwidth(pl.strat.TP)
	plan.CommFwd = pl.prof.CommTime(bw, pl.cluster.LinkLatency)
	plan.CommBwd = plan.CommFwd // gradient of the boundary tensor, same shape
	for s := 0; s < p; s++ {
		// The assembly prices stages under the same scale snapshot the DP
		// used, so a racing SetStageScale cannot tear the plan.
		c := pl.stageCostNominal(tr, s, bounds[s], bounds[s+1]-1)
		if ws.scale != nil {
			c.fwd *= ws.scale[s]
			c.bwd *= ws.scale[s]
		}
		plan.Stages = append(plan.Stages, StagePlan{
			Stage:     s,
			LayerLo:   bounds[s],
			LayerHi:   bounds[s+1],
			Fwd:       c.fwd,
			Bwd:       c.bwd,
			Recompute: c.sol,
			Mem:       c.mem,
		})
	}
	spStages.End()
	pl.mu.Lock()
	pl.Stats.PartitionCells += cellsAdd
	pl.Stats.FrontierStates += frontierAdd
	pl.Stats.WarmStartCells += warmAdd
	if ws.ok {
		pl.Stats.ReplanIncremental++
		pl.Stats.InvalidatedIsoClasses += ws.invalidated
	}
	pl.Stats.Workers = workers
	pl.Stats.SearchWall += pl.clock().Sub(searchStart)
	plan.Search = pl.Stats
	// Install the completed solve's memo and the scale it was computed
	// under; the next search warm-starts from here.
	pl.memoScale = ws.scale
	if memo != nil {
		pl.partMemo = memo
	}
	if exact != nil {
		pl.exactMemo = exact
	}
	if ws.dense != nil {
		pl.dense = ws.dense
	}
	installed = true
	pl.mu.Unlock()
	return plan, nil
}

// CostFor exposes the cached per-range cost model: the modeled forward and
// backward times (seconds per micro-batch) and memory feasibility of layers
// i..j (inclusive) executed as stage s. Tools and tests use it to evaluate
// partitionings the search did not choose.
func (pl *Planner) CostFor(s, i, j int) (fwd, bwd float64, ok bool) {
	if s < 0 || s >= pl.strat.PP || i < 0 || j >= len(pl.layers) || i > j {
		return 0, 0, false
	}
	c := pl.stageCostFor(nil, s, i, j)
	return c.fwd, c.bwd, c.ok
}

// LayerCount returns the length of the partitionable layer sequence.
func (pl *Planner) LayerCount() int { return len(pl.layers) }

// StatsSnapshot returns a consistent copy of the cumulative search counters,
// safe to take while other goroutines plan on this planner (unlike reading
// Stats directly, which is only safe once all concurrent calls returned).
func (pl *Planner) StatsSnapshot() SearchStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.Stats
}

// coarsenToLayers merges each layer kind's optional units into one atomic
// knapsack item, so a layer is saved or recomputed as a whole — the coarse
// granularity of chain-recomputation prior work (§2.2). AlwaysSaved groups
// are unchanged.
func coarsenToLayers(groups []recompute.Group) []recompute.Group {
	merged := map[string]*recompute.Group{}
	var out []recompute.Group
	for _, g := range groups {
		if g.AlwaysSaved {
			out = append(out, g)
			continue
		}
		kind := g.Key
		if i := strings.IndexByte(kind, '/'); i >= 0 {
			kind = kind[:i]
		}
		m, ok := merged[kind]
		if !ok {
			m = &recompute.Group{Key: kind + "/whole-layer", Count: g.Count}
			merged[kind] = m
		}
		m.FwdTime += g.FwdTime
		m.Bytes += g.Bytes
	}
	// Emit the merged groups in sorted key order: ranging over the map
	// directly would let Go's randomized iteration order leak into the
	// knapsack input order and from there into serialized plans.
	kinds := make([]string, 0, len(merged))
	for kind := range merged {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		out = append(out, *merged[kind])
	}
	recompute.SortGroups(out)
	return out
}
