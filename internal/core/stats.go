package core

import (
	"fmt"
	"strings"
	"time"

	"adapipe/internal/obs"
)

// SearchStats counts the work of the two-level DP search: how many knapsacks
// ran, how well the §5.3 isomorphic-range cache and GCD reduction performed,
// how many DP cells each level touched, and the search wall time. The
// planner accumulates them across Plan calls (the cost cache persists), and
// each produced Plan carries a snapshot — the planner-side telemetry of the
// observability layer.
type SearchStats struct {
	// KnapsackRuns is the number of §4 recomputation DPs actually solved.
	KnapsackRuns int
	// CacheHits counts stage-cost lookups served by the isomorphic-range
	// cache instead of a fresh solve.
	CacheHits int
	// CostEvaluations counts all stage-cost lookups (hits + misses).
	CostEvaluations int
	// StoreHits counts local-cache misses served by the shared cost store
	// (a stored entry or another planner's in-flight solve) — cross-request
	// reuse the store bought this planner. StoreMisses counts the solves
	// this planner ran itself and published. Both stay zero without an
	// attached CostSource.
	StoreHits, StoreMisses int
	// KnapsackCells is the total knapsack DP table size filled across all
	// runs (pseudo-items × capacity states).
	KnapsackCells int64
	// QuantaBeforeGCD and QuantaAfterGCD sum the knapsack capacities in
	// rounding quanta before and after the §5.3 GCD reduction; their ratio
	// is the average capacity shrink the reduction bought.
	QuantaBeforeGCD, QuantaAfterGCD int64
	// PartitionCells counts the (stage, start, end) cells Algorithm 1 (or
	// its exact variant) evaluated. Warm-started searches count only the
	// recomputed levels here; the reused levels land in WarmStartCells.
	PartitionCells int
	// ReplanIncremental counts searches served by the incremental fast
	// path: a warm-started partition DP over a dense scale-applied snapshot
	// of the iso-cache, skipping the prefill entirely.
	ReplanIncremental int
	// InvalidatedIsoClasses counts iso-cache classes whose stage-cost scale
	// changed between a warm-started search and the memo it reused — the
	// exact invalidation work the incremental replanner performed.
	InvalidatedIsoClasses int
	// WarmStartCells counts the partition-DP cost evaluations represented
	// by memo levels reused bit-for-bit instead of recomputed.
	WarmStartCells int
	// FrontierStates is the total Pareto-frontier size across cells
	// (PartitionExact only).
	FrontierStates int
	// SearchWall is the wall-clock time spent inside Plan. It is
	// deliberately excluded from plan serialization: plans must stay
	// byte-identical across runs.
	SearchWall time.Duration
	// Workers is the worker-pool size of the most recent Plan call (1 for
	// the serial search).
	Workers int
	// ParallelWall is the wall-clock time spent inside parallel prefill
	// sections, and ParallelBusy the per-worker busy time summed across
	// workers. Their ratio is the effective parallel speedup actually
	// realized (bounded by the core count); both are wall-clock figures and,
	// like SearchWall, excluded from plan serialization.
	ParallelWall, ParallelBusy time.Duration
}

// CacheHitRate returns the fraction of stage-cost lookups the isomorphism
// cache served, in [0, 1].
func (s SearchStats) CacheHitRate() float64 {
	if s.CostEvaluations == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CostEvaluations)
}

// StoreHitRate returns the fraction of shared-store lookups served without a
// fresh solve, in [0, 1]; 0 when no CostSource was attached.
func (s SearchStats) StoreHitRate() float64 {
	total := s.StoreHits + s.StoreMisses
	if total == 0 {
		return 0
	}
	return float64(s.StoreHits) / float64(total)
}

// GCDReduction returns the average factor by which the §5.3 GCD reduction
// shrank the knapsack capacity (1 means no reduction or no DP run).
func (s SearchStats) GCDReduction() float64 {
	if s.QuantaAfterGCD == 0 {
		return 1
	}
	return float64(s.QuantaBeforeGCD) / float64(s.QuantaAfterGCD)
}

// ParallelSpeedup returns the effective parallelism of the worker pool: the
// summed per-worker busy time divided by the wall-clock time of the parallel
// sections. 1 when the search ran serially (no parallel section at all).
func (s SearchStats) ParallelSpeedup() float64 {
	if s.ParallelWall <= 0 || s.ParallelBusy <= 0 {
		return 1
	}
	return float64(s.ParallelBusy) / float64(s.ParallelWall)
}

// String renders the counters as the one-line summary Describe prints.
func (s SearchStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d cost evals (%d knapsacks, %.0f%% iso-cache hits), %d knapsack cells, GCD reduction %.1fx, %d partition cells",
		s.CostEvaluations, s.KnapsackRuns, 100*s.CacheHitRate(), s.KnapsackCells, s.GCDReduction(), s.PartitionCells)
	if s.FrontierStates > 0 {
		fmt.Fprintf(&b, ", %d frontier states", s.FrontierStates)
	}
	if s.ReplanIncremental > 0 {
		fmt.Fprintf(&b, ", %d incremental replans (%d classes invalidated, %d cells warm)",
			s.ReplanIncremental, s.InvalidatedIsoClasses, s.WarmStartCells)
	}
	if s.StoreHits+s.StoreMisses > 0 {
		fmt.Fprintf(&b, ", %.0f%% shared-store hits (%d of %d lookups)",
			100*s.StoreHitRate(), s.StoreHits, s.StoreHits+s.StoreMisses)
	}
	if s.Workers > 1 {
		fmt.Fprintf(&b, ", %d workers (%.1fx effective parallelism)", s.Workers, s.ParallelSpeedup())
	}
	if s.SearchWall > 0 {
		fmt.Fprintf(&b, ", wall %s", s.SearchWall.Round(time.Microsecond))
	}
	return b.String()
}

// PromMetrics converts the counters into Prometheus-style gauges under the
// given name prefix.
func (s SearchStats) PromMetrics(prefix string) []obs.Metric {
	return []obs.Metric{
		{Name: prefix + "_knapsack_runs", Help: "recomputation DPs solved", Value: float64(s.KnapsackRuns)},
		{Name: prefix + "_cache_hits", Help: "stage-cost lookups served by the isomorphic-range cache", Value: float64(s.CacheHits)},
		{Name: prefix + "_cache_hit_rate", Help: "fraction of stage-cost lookups served from cache", Value: s.CacheHitRate()},
		{Name: prefix + "_cost_evaluations", Help: "total stage-cost lookups", Value: float64(s.CostEvaluations)},
		{Name: prefix + "_knapsack_cells", Help: "knapsack DP cells filled across all runs", Value: float64(s.KnapsackCells)},
		{Name: prefix + "_gcd_reduction", Help: "average knapsack capacity shrink from the GCD reduction", Value: s.GCDReduction()},
		{Name: prefix + "_partition_cells", Help: "partitioning DP cells evaluated", Value: float64(s.PartitionCells)},
		{Name: prefix + "_frontier_states", Help: "Pareto states kept (exact partitioning only)", Value: float64(s.FrontierStates)},
		{Name: prefix + "_wall_seconds", Help: "search wall-clock seconds", Value: s.SearchWall.Seconds()},
		{Name: prefix + "_workers", Help: "worker-pool size of the most recent search (1 = serial)", Value: float64(s.Workers)},
		{Name: prefix + "_parallel_speedup", Help: "effective parallelism of the worker pool (busy/wall over parallel sections)", Value: s.ParallelSpeedup()},
		{Name: prefix + "_parallel_wall_seconds", Help: "wall-clock seconds inside parallel prefill sections", Value: s.ParallelWall.Seconds()},
		{Name: prefix + "_replans_incremental", Help: "searches served by the warm-started incremental fast path", Value: float64(s.ReplanIncremental)},
		{Name: prefix + "_invalidated_iso_classes", Help: "iso-cache classes invalidated by stage-scale changes across warm-started searches", Value: float64(s.InvalidatedIsoClasses)},
		{Name: prefix + "_warm_start_cells", Help: "partition DP cost evaluations reused from warm-start memos", Value: float64(s.WarmStartCells)},
		{Name: prefix + "_store_hits", Help: "iso-cache misses served by the shared cost store (cross-request reuse)", Value: float64(s.StoreHits)},
		{Name: prefix + "_store_misses", Help: "shared-store lookups this planner had to solve itself", Value: float64(s.StoreMisses)},
		{Name: prefix + "_store_hit_rate", Help: "fraction of shared-store lookups served without a fresh solve", Value: s.StoreHitRate()},
	}
}
