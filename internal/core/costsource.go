package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"adapipe/internal/coststore"
	"adapipe/internal/memory"
	"adapipe/internal/profile"
)

// CostSource is a shared backend for solved stage costs: the planner
// consults it on iso-cache misses and publishes its own solves into it, so
// every planner a process constructs for the same model family amortizes the
// per-(stage, iso-class) knapsacks across requests instead of within one
// search only. *coststore.Store implements it; tests substitute scripted
// sources.
//
// Soundness contract: the key passed to GetOrCompute is a SHA-256 over the
// planner's family fingerprint (every input solveStage reads — the full cost
// profile, strategy, memory model, budget, quantum and search flags) plus
// the iso-class coordinates, so two planners that derive the same key would
// compute bit-identical entries. A source may therefore return any stored
// entry for the key, and plans built from source hits are byte-identical to
// plans built cold for every worker count and store state
// (TestCostStorePlanMatchesSeed).
type CostSource interface {
	GetOrCompute(key coststore.Key, compute func() coststore.Entry) (coststore.Entry, coststore.Disposition)
}

// familyInputs is the serialized family fingerprint: every planner input the
// per-range solve depends on. Notably NOT included: GlobalBatch (it only
// sets n, which shapes the partition DP, never a stage cost), the partition
// mode (same reason) and Workers (execution knob) — which is exactly what
// lets a sweep over micro-batch counts or partition policies share all of
// its knapsack entries. The profile embeds the model config, device and
// strategy (TP shards the unit costs, DP the optimizer states, PP the
// in-flight count), so hashing it covers the derived numeric content rather
// than config names.
type familyInputs struct {
	Profile        *profile.Profile `json:"profile"`
	MemCapacity    int64            `json:"mem_capacity"`
	Memory         memory.Options   `json:"memory"`
	MemoryReserve  float64          `json:"memory_reserve"`
	Quantum        int64            `json:"quantum"`
	MaxDPStates    int64            `json:"max_dp_states"`
	DisableGCD     bool             `json:"disable_gcd"`
	DisableIso     bool             `json:"disable_isomorphism"`
	Recompute      string           `json:"recompute"`
	IgnoreMemLimit bool             `json:"ignore_memory_limit"`
}

// familyFingerprint hashes the planner's solve-relevant inputs into the
// 32-byte family prefix of its store keys. Deterministic: encoding/json
// marshals structs in field order, maps with sorted keys, and float64s in
// their exact shortest round-trip form.
func (pl *Planner) familyFingerprint() ([]byte, error) {
	raw, err := json.Marshal(familyInputs{
		Profile:        pl.prof,
		MemCapacity:    pl.cluster.Device.MemCapacity,
		Memory:         pl.opts.Memory,
		MemoryReserve:  pl.opts.MemoryReserve,
		Quantum:        pl.opts.Quantum,
		MaxDPStates:    pl.opts.MaxDPStates,
		DisableGCD:     pl.opts.DisableGCD,
		DisableIso:     pl.opts.DisableIsomorphism,
		Recompute:      pl.opts.Recompute.String(),
		IgnoreMemLimit: pl.opts.IgnoreMemoryLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("core: fingerprinting cost family: %w", err)
	}
	sum := sha256.Sum256(raw)
	return sum[:], nil
}

// storeKeyFor derives the content address of one iso-class entry: SHA-256
// over the 32-byte family prefix followed by the little-endian key
// coordinates. With isomorphism enabled the coordinates are (stage, length,
// kind·2+ends); with it disabled they are the raw (s, i, j) — the flag is
// part of the family fingerprint, so the two keying schemes never collide.
func storeKeyFor(family []byte, key costKey) coststore.Key {
	var buf [32 + 3*8]byte
	copy(buf[:32], family)
	binary.LittleEndian.PutUint64(buf[32:], uint64(int64(key.s)))
	binary.LittleEndian.PutUint64(buf[40:], uint64(int64(key.i)))
	binary.LittleEndian.PutUint64(buf[48:], uint64(int64(key.j)))
	return coststore.Key(sha256.Sum256(buf[:]))
}

// SetCostSource attaches a shared cost source. The planner keeps its private
// iso-cache as a first-level cache (no hashing on the hot path) and consults
// the source only on local misses, publishing its own solves back. Call it
// before the first Plan/PlanContext; a nil source detaches. The returned
// error (a failed family fingerprint) leaves the planner detached and is
// safe to ignore — an unattached planner just solves privately.
func (pl *Planner) SetCostSource(src CostSource) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if src == nil {
		pl.source = nil
		return nil
	}
	if pl.family == nil {
		fam, err := pl.familyFingerprint()
		if err != nil {
			return err
		}
		pl.family = fam
	}
	pl.source = src
	return nil
}

// entryFromCost converts a solved stage cost into its shareable store form.
func entryFromCost(c stageCost) coststore.Entry {
	return coststore.Entry{Fwd: c.fwd, Bwd: c.bwd, Sol: c.sol, Mem: c.mem, OK: c.ok}
}

// costFromEntry is the inverse of entryFromCost.
func costFromEntry(e coststore.Entry) stageCost {
	return stageCost{fwd: e.Fwd, bwd: e.Bwd, sol: e.Sol, mem: e.Mem, ok: e.OK}
}
