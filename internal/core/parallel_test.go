package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// tinyPlanner builds a planner over a Tiny model for differential and
// concurrency tests. decoders controls the layer-sequence length
// (2*decoders + 2), pp the stage count, n the micro-batch count.
func tinyPlanner(t testing.TB, decoders, pp, n int, reserve float64, part PartitionMode, workers int) *Planner {
	t.Helper()
	cfg := model.Tiny(decoders)
	cl := hardware.ClusterA()
	strat := parallel.Strategy{TP: 1, PP: pp, DP: 1}
	train := parallel.Config{GlobalBatch: n, MicroBatch: 1, SeqLen: 2048}
	opts := DefaultOptions()
	opts.MemoryReserve = reserve
	opts.Recompute = RecomputeAdaptive
	opts.Partition = part
	opts.Workers = workers
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatalf("planner (L=%d p=%d): %v", 2*decoders+2, pp, err)
	}
	return pl
}

// TestParallelPlanMatchesSerial is the tentpole's differential harness: over a
// matrix of model sizes, stage counts, micro-batch counts, memory budgets and
// partition modes, the plan produced with Workers=2/4/8 must serialize to the
// exact bytes the serial (Workers=1) search produces. Parallelism may change
// wall time and search-effort counters, never the plan.
func TestParallelPlanMatchesSerial(t *testing.T) {
	type cfg struct {
		decoders, pp, n int
		reserve         float64
		part            PartitionMode
	}
	var cases []cfg
	for _, part := range []PartitionMode{PartitionAdaptive, PartitionExact, PartitionEven} {
		cases = append(cases,
			cfg{decoders: 3, pp: 2, n: 4, reserve: 0.15, part: part},
			cfg{decoders: 6, pp: 4, n: 8, reserve: 0.15, part: part},
			cfg{decoders: 6, pp: 4, n: 16, reserve: 0.60, part: part},
			cfg{decoders: 15, pp: 8, n: 16, reserve: 0.15, part: part},
		)
	}
	// Degenerate shape: every stage gets exactly one layer (L == p).
	cases = append(cases, cfg{decoders: 3, pp: 8, n: 8, reserve: 0.15, part: PartitionAdaptive})

	for _, c := range cases {
		c := c
		name := fmt.Sprintf("L%d_p%d_n%d_r%.2f_%s", 2*c.decoders+2, c.pp, c.n, c.reserve, c.part)
		t.Run(name, func(t *testing.T) {
			serial, serialErr := tinyPlanner(t, c.decoders, c.pp, c.n, c.reserve, c.part, 1).Plan()
			var want []byte
			if serialErr == nil {
				var err error
				want, err = json.Marshal(serial)
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, workers := range []int{2, 4, 8} {
				pl := tinyPlanner(t, c.decoders, c.pp, c.n, c.reserve, c.part, workers)
				p, err := pl.Plan()
				if (err == nil) != (serialErr == nil) {
					t.Fatalf("workers=%d: error %v, serial error %v", workers, err, serialErr)
				}
				if err != nil {
					continue
				}
				got, err := json.Marshal(p)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: plan differs from serial\nserial:   %s\nparallel: %s", workers, want, got)
				}
				if p.Search.Workers != workers {
					t.Errorf("workers=%d: SearchStats.Workers = %d", workers, p.Search.Workers)
				}
				if s := pl.Stats; s.KnapsackRuns+s.CacheHits > s.CostEvaluations {
					t.Errorf("workers=%d: stats invariant broken: runs %d + hits %d > evals %d",
						workers, s.KnapsackRuns, s.CacheHits, s.CostEvaluations)
				}
			}
		})
	}
}

// TestParallelPlanMatchesSerialGPT3 runs the differential check once on the
// paper's real GPT-3 search, where the iso-cache and GCD reduction actually
// bite, so the byte-identity claim is not only exercised on toy shapes.
func TestParallelPlanMatchesSerialGPT3(t *testing.T) {
	if testing.Short() {
		t.Skip("two full GPT-3 searches")
	}
	cfg, cl, strat, train := gptSetup()
	run := func(workers int) []byte {
		opts := DefaultOptions()
		opts.Partition = PartitionAdaptive
		opts.Workers = workers
		pl, err := NewPlanner(cfg, cl, strat, train, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pl.Plan()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Error("GPT-3 parallel plan differs from serial")
	}
}

// TestParallelSpeedupReporting checks the wall-clock telemetry the parallel
// search adds: a parallel run records its worker count and busy/wall figures,
// and the Describe/Prometheus surfaces expose them.
func TestParallelSpeedupReporting(t *testing.T) {
	pl := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, 4)
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
	s := pl.Stats
	if s.Workers != 4 {
		t.Errorf("Workers = %d, want 4", s.Workers)
	}
	if s.ParallelWall <= 0 || s.ParallelBusy <= 0 {
		t.Errorf("parallel wall/busy not recorded: %v / %v", s.ParallelWall, s.ParallelBusy)
	}
	if sp := s.ParallelSpeedup(); sp <= 0 {
		t.Errorf("ParallelSpeedup = %g", sp)
	}
	found := false
	for _, m := range s.PromMetrics("adapipe_search") {
		if m.Name == "adapipe_search_parallel_speedup" && m.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("parallel speedup gauge missing from PromMetrics")
	}
	// The serial path reports Workers=1 and a neutral speedup.
	pl1 := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, 1)
	if _, err := pl1.Plan(); err != nil {
		t.Fatal(err)
	}
	if pl1.Stats.Workers != 1 {
		t.Errorf("serial Workers = %d", pl1.Stats.Workers)
	}
	if sp := pl1.Stats.ParallelSpeedup(); sp != 1 {
		t.Errorf("serial ParallelSpeedup = %g, want 1", sp)
	}
}
