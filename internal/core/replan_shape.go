package core

import (
	"fmt"

	"adapipe/internal/hardware"
	"adapipe/internal/parallel"
	"adapipe/internal/partition"
	"adapipe/internal/sim"
)

// ShapeReplan is the outcome of an elastic shape replan: the planner built
// for the winning pipeline depth on the resized cluster, its plan, and the
// plan's simulated 1F1B iteration. Unlike ReplanWithScale — which keeps the
// cluster and reprices the incumbent bounds — a shape replan answers a
// different question: the cluster itself changed (a node died, or a spare
// arrived), so the pipeline depth is back on the table.
type ShapeReplan struct {
	// Planner is the planner for the adopted strategy on the new cluster;
	// the caller keeps it for subsequent replans on that shape.
	Planner *Planner
	// Plan is the winning plan.
	Plan *Plan
	// Sim is the discrete-event simulation of Plan's 1F1B schedule.
	Sim sim.Result
	// Strategy is the adopted 3D parallelism configuration (TP and DP are
	// inherited from the old planner; only PP was searched).
	Strategy parallel.Strategy
	// ReusedCostEntries counts iso-cache entries seeded from the old
	// planner into the winning candidate. Non-zero only when the winner
	// kept the old pipeline depth: the §4/§5 stage costs depend on (PP, s)
	// through the in-flight micro-batch count, so cached entries are valid
	// across cluster shapes exactly when PP is unchanged.
	ReusedCostEntries int
}

// ReplanWithShape replans for a cluster whose node count changed — the
// planning half of elastic recovery. It searches every feasible pipeline
// depth on the new cluster (TP and DP are kept: they shard parameters and
// gradients, and elastic recovery must not re-shard state mid-run), plans
// each candidate with the full two-level search, simulates the results, and
// returns the fastest. Candidates that cannot fill a 1F1B pipeline or fit
// device memory are skipped; if no depth survives, an error reports why.
//
// The old planner is read-only here except for seeding: a candidate that
// keeps the old PP inherits the iso-cache (nominal costs only — any
// installed straggler scale refers to stage indices of the dead shape and is
// deliberately not carried over).
func (pl *Planner) ReplanWithShape(cluster hardware.Cluster) (*ShapeReplan, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	perStage := pl.strat.TP * pl.strat.DP
	maxPP := cluster.Devices() / perStage
	if maxPP < 1 {
		return nil, fmt.Errorf("core: cluster %s has %d devices, fewer than one TP=%d x DP=%d stage",
			cluster.Name, cluster.Devices(), pl.strat.TP, pl.strat.DP)
	}
	if L := len(pl.layers); maxPP > L {
		maxPP = L
	}

	var best *ShapeReplan
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	// Descending depth, strict-improvement adoption: ties keep the deepest
	// feasible pipeline (use the devices we have).
	for pp := maxPP; pp >= 1; pp-- {
		strat := pl.strat
		strat.PP = pp
		if n, err := pl.train.MicroBatches(strat); err != nil || n < pp {
			keep(err)
			continue
		}
		// The profile is per-(device, TP, seq, micro) and carries no PP or
		// node-count dependence, so every candidate shares it.
		cand, err := NewPlannerWithProfile(pl.cfg, cluster, strat, pl.train, pl.prof, pl.opts)
		if err != nil {
			keep(err)
			continue
		}
		cand.SetClock(pl.clock)
		reused := 0
		if pp == pl.strat.PP {
			pl.mu.Lock()
			for k, v := range pl.cache {
				cand.cache[k] = v
			}
			reused = len(cand.cache)
			// The partition DP memo is valid across cluster shapes exactly
			// when PP is unchanged, for the same reason the cost entries
			// are: the table depends on the cluster only through the stage
			// costs. Clone it (with the scale it was computed under) so the
			// candidate's search warm-starts instead of running cold; the
			// candidate carries no scale, so the warm-started solve
			// recomputes exactly the levels the dropped scale had touched.
			cand.partMemo = pl.partMemo.Clone()
			cand.exactMemo = pl.exactMemo.Clone()
			cand.memoScale = pl.memoScale
			pl.mu.Unlock()
		}
		plan, err := cand.Plan()
		if err != nil {
			keep(err)
			continue
		}
		res, err := cand.simulate(plan)
		if err != nil {
			return nil, err
		}
		if best == nil ||
			(res.IterTime < best.Sim.IterTime && !partition.AlmostEq(res.IterTime, best.Sim.IterTime)) {
			best = &ShapeReplan{Planner: cand, Plan: plan, Sim: res, Strategy: strat, ReusedCostEntries: reused}
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, fmt.Errorf("core: no feasible pipeline shape on cluster %s (%d devices): %w",
				cluster.Name, cluster.Devices(), firstErr)
		}
		return nil, fmt.Errorf("core: no feasible pipeline shape on cluster %s (%d devices)",
			cluster.Name, cluster.Devices())
	}
	return best, nil
}
