package core

import (
	"context"
	"math"

	"adapipe/internal/model"
	"adapipe/internal/obs"
	"adapipe/internal/partition"
)

// The incremental replanning fast path (DESIGN §4i). A straggler repricing
// changes only the per-stage scale vector; the nominal iso-cache stays
// valid, and the suffix partition DP only needs to recompute the levels at
// or below the highest rescaled stage. claimWarmStart checks the previous
// search's DP memo out of the planner together with a dense, scale-applied
// snapshot of the iso-cache, so the warm-started solve runs entirely
// lock-free and allocation-light; PlanContext reinstalls the revalidated
// memo on success.

// isoKindSlots is the size of the isoKey kind/ends axis: the key packs
// firstKind*2 + endsWithHead, so every layer kind contributes two slots.
const isoKindSlots = 2 * (int(model.Head) + 1)

// denseEntry is one entry of the scale-applied stage-cost snapshot the
// incremental fast path hands the partition DP: forward/backward times with
// the claimed scale already multiplied in, plus feasibility and presence.
type denseEntry struct {
	fwd, bwd float64
	ok       bool
	present  bool
}

// warmStart is everything the incremental fast path checks out of the
// planner under one lock acquisition.
type warmStart struct {
	// scale is the stage-scale snapshot this search plans under; reads of
	// it after the claim are consistent even if SetStageScale races the
	// solve (the planner replaces the slice wholesale, never in place).
	scale []float64
	// memo / exact is the checked-out DP table for the active partition
	// mode; nil entries mean the mode does not use that table.
	memo  *partition.Memo
	exact *partition.ExactMemo
	// dense is the scale-applied iso-cache snapshot, indexed by denseIndex.
	dense []denseEntry
	// stale is the highest stage whose scale differs from the memo's
	// (−1 when none do: the solve is pure reassembly).
	stale int
	// invalidated counts the iso-cache classes on rescaled stages.
	invalidated int
	// ok reports whether the fast path is usable for this search.
	ok bool
}

// denseIndex flattens an isomorphism-class key into the dense snapshot:
// the key's i field is the range length (1..L) and its j field the packed
// kind/ends code (0..isoKindSlots−1).
func denseIndex(key costKey, L int) int {
	return (key.s*(L+1)+key.i)*isoKindSlots + key.j
}

// scaleAt reads a stage-scale vector that may be nil (nominal = all ones).
func scaleAt(scale []float64, s int) float64 {
	if scale == nil {
		return 1
	}
	return scale[s]
}

// scaleChanged compares one stage's scale across two vectors. The
// comparison is bit-wise, not epsilon: the DP must recompute any level
// whose inputs are not bit-identical to the memo's, and a scale moved by
// even one ulp is exactly that.
func scaleChanged(cur, old []float64, s int) bool {
	return math.Float64bits(scaleAt(cur, s)) != math.Float64bits(scaleAt(old, s))
}

// maxStaleStage returns the highest stage whose scale differs between the
// two vectors, or −1 when none do. Levels strictly above it depend only on
// unchanged stage costs and are bit-for-bit reusable (partition.SolveMemo).
func maxStaleStage(cur, old []float64, p int) int {
	stale := -1
	for s := 0; s < p; s++ {
		if scaleChanged(cur, old, s) {
			stale = s
		}
	}
	return stale
}

// claimWarmStart snapshots the stage scale and, when the planner holds a
// completed DP memo for the active partition mode, checks the memo out
// together with a dense scale-applied snapshot of the iso-cache. Checking
// the memo out (leaving the field nil) serializes warm-started solves
// without holding mu across the DP: a second concurrent search finds no
// memo and runs the cold path, which is merely slower, never wrong.
//
// The fast path requires the isomorphism cache: with it, the set of cost
// evaluations the DP makes is scale-independent, so every class a
// warm-started recompute touches was already cached by the memo-building
// run and the snapshot is (almost always) complete.
func (pl *Planner) claimWarmStart() warmStart {
	L := len(pl.layers)
	p := pl.strat.PP
	var ws warmStart
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ws.scale = pl.scale
	if pl.opts.DisableIsomorphism {
		return ws
	}
	switch pl.opts.Partition {
	case PartitionExact:
		if !pl.exactMemo.Valid(L, p, pl.n, pl.frontierCap()) {
			return ws
		}
		ws.exact = pl.exactMemo
		pl.exactMemo = nil
	case PartitionEven:
		return ws
	default:
		if !pl.partMemo.Valid(L, p, pl.n) {
			return ws
		}
		ws.memo = pl.partMemo
		pl.partMemo = nil
	}
	ws.stale = maxStaleStage(ws.scale, pl.memoScale, p)

	size := p * (L + 1) * isoKindSlots
	if cap(pl.dense) < size {
		pl.dense = make([]denseEntry, size)
	} else {
		pl.dense = pl.dense[:size]
		clear(pl.dense)
	}
	ws.dense = pl.dense
	pl.dense = nil
	//adapipevet:ignore maporder each cache key maps to a distinct dense index, so the iteration order of the writes cannot affect the snapshot
	for k, c := range pl.cache {
		if scaleChanged(ws.scale, pl.memoScale, k.s) {
			ws.invalidated++
		}
		e := denseEntry{fwd: c.fwd, bwd: c.bwd, ok: c.ok, present: true}
		if ws.scale != nil {
			e.fwd *= ws.scale[k.s]
			e.bwd *= ws.scale[k.s]
		}
		ws.dense[denseIndex(k, L)] = e
	}
	ws.ok = true
	return ws
}

// denseCostFn returns the partition CostFn of the incremental fast path: a
// lock-free lookup into the dense snapshot, falling back to the locked
// nominal cache for the rare range the snapshot missed. The fallback
// applies the claimed scale snapshot — never the live pl.scale — so one
// solve sees one consistent repricing even if SetStageScale races it.
func (pl *Planner) denseCostFn(ctx context.Context, tr *obs.Tracer, ws *warmStart) partition.CostFn {
	L := len(pl.layers)
	return func(s, i, j int) (float64, float64, bool) {
		// A cancelled context turns every remaining cost lookup into an
		// immediate "infeasible" so the DP unwinds quickly; the partial
		// solve is discarded and the memo self-invalidates.
		if ctx.Err() != nil {
			return 0, 0, false
		}
		if e := ws.dense[denseIndex(pl.isoKey(s, i, j), L)]; e.present {
			return e.fwd, e.bwd, e.ok
		}
		c := pl.stageCostNominal(tr, s, i, j)
		f, b := c.fwd, c.bwd
		if ws.scale != nil {
			f *= ws.scale[s]
			b *= ws.scale[s]
		}
		return f, b, c.ok
	}
}

// ResetIncremental drops the planner's warm-start state — the partition DP
// memos and the scale they were computed under — so the next Plan runs the
// full cold search. Benchmarks and differential tests use it to compare
// cold and warm-started searches on one planner; production callers never
// need it (stale memos invalidate themselves).
func (pl *Planner) ResetIncremental() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.partMemo = nil
	pl.exactMemo = nil
	pl.memoScale = nil
}

// frontierCap resolves Options.MaxFrontier (zero selects 128).
func (pl *Planner) frontierCap() int {
	if pl.opts.MaxFrontier <= 0 {
		return 128
	}
	return pl.opts.MaxFrontier
}
