package core

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestPlannerConcurrent hammers one shared planner from many goroutines — the
// situation the mu lock exists for. Every Plan call must succeed and produce
// the same bytes, CostFor must agree with the plan's stage costs, and the
// whole test must be clean under -race (the `make race` gate runs it there).
func TestPlannerConcurrent(t *testing.T) {
	pl := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, 4)

	const goroutines = 8
	plans := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := pl.Plan()
			if err != nil {
				errs[g] = err
				return
			}
			// Interleave cache reads with the other goroutines' searches.
			for s := 0; s < 4; s++ {
				if _, _, ok := pl.CostFor(s, 0, 2); !ok {
					errs[g] = errTestInfeasible
					return
				}
			}
			plans[g], errs[g] = json.Marshal(p)
		}()
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if !bytes.Equal(plans[g], plans[0]) {
			t.Errorf("goroutine %d produced a different plan:\n%s\nvs\n%s", g, plans[g], plans[0])
		}
	}
	// Counters must still satisfy the accounting invariant after the storm.
	if s := pl.Stats; s.KnapsackRuns+s.CacheHits > s.CostEvaluations {
		t.Errorf("stats invariant broken: runs %d + hits %d > evals %d",
			s.KnapsackRuns, s.CacheHits, s.CostEvaluations)
	}
}

// TestPlannerConcurrentWithReplanning mixes Plan calls with stage-scale
// updates: SetStageScale replaces the scale slice under the lock, and every
// concurrent Plan must see either the old or the new scale — never a torn
// state. The plans themselves differ (scales differ), so this test only
// asserts absence of errors and races.
func TestPlannerConcurrentWithReplanning(t *testing.T) {
	pl := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, 2)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pl.Plan(); err != nil {
				t.Error(err)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			scale := []float64{1, 1, 1, 1}
			scale[g] = 1.5
			if err := pl.SetStageScale(scale); err != nil {
				t.Error(err)
			}
			if err := pl.SetStageScale(nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

var errTestInfeasible = errInfeasibleSentinel{}

type errInfeasibleSentinel struct{}

func (errInfeasibleSentinel) Error() string { return "CostFor reported infeasible" }
