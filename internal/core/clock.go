package core

import (
	"time"

	"adapipe/internal/obs"
)

// RealClock returns the process wall clock as an injectable obs.Clock. It is
// the one place the repository constructs a real clock: the planner's
// SearchStats wall counters, the serving layer's request tracer and latency
// histograms all take an injected Clock, so every timing path can run under
// a deterministic fake in tests and the detrand analyzer has exactly one
// reasoned suppression to audit.
func RealClock() obs.Clock {
	return func() time.Time {
		return time.Now() //adapipevet:ignore detrand single real-clock construction site; all timing consumers take an injected obs.Clock
	}
}
