package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	orig := plan(t, RecomputeAdaptive, PartitionAdaptive)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"model":"GPT-3 175B"`, `"recompute":"adaptive"`, `"stages"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("serialized plan missing %q", want)
		}
	}
	var got Plan
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Model != orig.Model || got.Strategy != orig.Strategy ||
		got.SeqLen != orig.SeqLen || got.MicroBatches != orig.MicroBatches {
		t.Error("header fields not round-tripped")
	}
	if got.Total != orig.Total || got.W != orig.W || got.E != orig.E || got.M != orig.M {
		t.Error("modeled times not round-tripped")
	}
	if len(got.Stages) != len(orig.Stages) {
		t.Fatalf("stage count %d vs %d", len(got.Stages), len(orig.Stages))
	}
	for i := range got.Stages {
		g, o := got.Stages[i], orig.Stages[i]
		if g.LayerLo != o.LayerLo || g.LayerHi != o.LayerHi {
			t.Errorf("stage %d layer range not round-tripped", i)
		}
		if g.Fwd != o.Fwd || g.Bwd != o.Bwd {
			t.Errorf("stage %d times not round-tripped", i)
		}
		if g.Recompute.SavedUnits != o.Recompute.SavedUnits {
			t.Errorf("stage %d saved units %d vs %d", i, g.Recompute.SavedUnits, o.Recompute.SavedUnits)
		}
		if g.Mem.SavedPerMicro != o.Mem.SavedPerMicro {
			t.Errorf("stage %d saved-per-micro not round-tripped", i)
		}
		if g.Mem.Static() != o.Mem.Static() {
			t.Errorf("stage %d static bytes %d vs %d", i, g.Mem.Static(), o.Mem.Static())
		}
	}
	// Deterministic re-serialization.
	data2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	var got2 Plan
	if err := json.Unmarshal(data2, &got2); err != nil {
		t.Fatal(err)
	}
	if got2.Total != got.Total || len(got2.Stages) != len(got.Stages) {
		t.Error("second round trip drifted")
	}
}

// TestPlanSerializationDeterministic pins the determinism contract the
// maporder analyzer guards: two planners built from identical inputs must
// produce byte-identical serialized plans, run to run, regardless of map
// iteration order inside the solver.
func TestPlanSerializationDeterministic(t *testing.T) {
	a := plan(t, RecomputeAdaptive, PartitionAdaptive)
	b := plan(t, RecomputeAdaptive, PartitionAdaptive)
	dataA, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	dataB, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(dataA) != string(dataB) {
		t.Fatalf("identical Plan() calls serialized differently:\nfirst:  %s\nsecond: %s", dataA, dataB)
	}
	// Re-marshaling the same plan is also stable.
	dataA2, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(dataA) != string(dataA2) {
		t.Fatal("re-serializing the same plan drifted")
	}
}

func TestPlanJSONRejectsGarbage(t *testing.T) {
	var p Plan
	if err := json.Unmarshal([]byte(`{"recompute":"???","partition":"even","pp":1,"stages":[{}]}`), &p); err == nil {
		t.Error("unknown recompute mode accepted")
	}
	if err := json.Unmarshal([]byte(`{"recompute":"full","partition":"???","pp":1,"stages":[{}]}`), &p); err == nil {
		t.Error("unknown partition mode accepted")
	}
	if err := json.Unmarshal([]byte(`{"recompute":"full","partition":"even","pp":3,"stages":[{}]}`), &p); err == nil {
		t.Error("stage/PP mismatch accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &p); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestPlanValidate(t *testing.T) {
	cfg, _, _, _ := gptSetup()
	orig := plan(t, RecomputeAdaptive, PartitionAdaptive)
	L := len(cfg.LayerSequence())
	if err := orig.Validate(L); err != nil {
		t.Fatalf("fresh plan invalid: %v", err)
	}
	// Round-tripped plans validate too.
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Plan
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(L); err != nil {
		t.Fatalf("round-tripped plan invalid: %v", err)
	}
	// Corruptions are caught.
	bad := got
	bad.Stages = append([]StagePlan(nil), got.Stages...)
	bad.Stages[3].LayerLo++
	if err := bad.Validate(L); err == nil {
		t.Error("gap between stages accepted")
	}
	bad2 := got
	bad2.MicroBatches = 2
	if err := bad2.Validate(L); err == nil {
		t.Error("n < p accepted")
	}
	if err := got.Validate(L + 5); err == nil {
		t.Error("layer-count mismatch accepted")
	}
	if err := got.Validate(0); err != nil {
		t.Errorf("zero layerCount should skip coverage: %v", err)
	}
}
