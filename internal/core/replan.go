package core

import (
	"context"
	"fmt"

	"adapipe/internal/partition"
	"adapipe/internal/schedule"
	"adapipe/internal/sim"
)

// SetStageScale installs per-stage compute-cost multipliers: every
// subsequent cost evaluation (and hence Plan call) sees stage s's forward
// and backward times multiplied by scale[s]. This is how an observed
// degradation — a straggling device reported by the obs detector — is folded
// into the §5 cost model so the partition DP can shift layers away from the
// slow stage. Memory costs are unchanged (a slow device is not a smaller
// one). nil restores nominal costs; the cached nominal entries are never
// invalidated.
func (pl *Planner) SetStageScale(scale []float64) error {
	if scale == nil {
		pl.mu.Lock()
		pl.scale = nil
		pl.mu.Unlock()
		return nil
	}
	if len(scale) != pl.strat.PP {
		return fmt.Errorf("core: stage scale has %d entries, strategy has %d stages", len(scale), pl.strat.PP)
	}
	for s, v := range scale {
		if !(v > 0) { // rejects zero, negatives and NaN
			return fmt.Errorf("core: stage %d scale %g, want > 0", s, v)
		}
	}
	pl.mu.Lock()
	pl.scale = append([]float64(nil), scale...)
	pl.mu.Unlock()
	return nil
}

// Replan is the outcome of a straggler-driven replanning attempt: the old
// plan repriced under the degraded cost model, the re-searched plan, both
// plans' simulated 1F1B iterations, and whether the new plan won.
type Replan struct {
	// Old is the incumbent plan repriced under the scaled cost model (same
	// bounds, degraded stage times) — the honest baseline the new plan
	// must beat.
	Old *Plan
	// New is the plan the search produced under the scaled cost model.
	New *Plan
	// OldSim and NewSim are the discrete-event simulations of both plans.
	OldSim, NewSim sim.Result
	// Adopted reports whether New's simulated iteration is strictly faster
	// than Old's (beyond the float-noise tolerance). The caller should
	// rebind the live pipeline to New only when set.
	Adopted bool
}

// Speedup returns the simulated old/new iteration-time ratio.
func (r *Replan) Speedup() float64 {
	if r.NewSim.IterTime <= 0 {
		return 1
	}
	return r.OldSim.IterTime / r.NewSim.IterTime
}

// ReplanWithScale reacts to an observed per-stage slowdown: it installs the
// scale into the cost model, reprices the incumbent plan's bounds under it,
// re-runs the configured partition search, and simulates both plans under
// the 1F1B schedule. The new plan is marked Adopted only if its simulated
// iteration strictly beats the repriced incumbent's — replanning must never
// make things worse, so validation happens in the simulator before any
// live pipeline is rebuilt. The scale stays installed afterwards (the
// degradation is real until SetStageScale(nil) says otherwise).
//
// On a warm planner — one whose previous search installed the partition-DP
// memo — the re-search runs incrementally: only the DP levels at or below
// the highest stage whose scale changed are recomputed, against the pooled
// dense cost snapshot. The produced plan is byte-identical to a cold full
// search under the same scale (FuzzReplanIncrementalVsFull); only the work
// differs. Stats.ReplanIncremental counts the replans that took this path.
func (pl *Planner) ReplanWithScale(old *Plan, scale []float64) (*Replan, error) {
	return pl.ReplanWithScaleContext(context.Background(), old, scale)
}

// ReplanWithScaleContext is ReplanWithScale with ctx threaded into the
// re-search, so a serving layer's deadlines, cancellation and tracer reach
// the warm-started partition DP exactly as they reach a cold PlanContext.
func (pl *Planner) ReplanWithScaleContext(ctx context.Context, old *Plan, scale []float64) (*Replan, error) {
	if old == nil {
		return nil, fmt.Errorf("core: replan needs the incumbent plan")
	}
	if len(old.Stages) != pl.strat.PP {
		return nil, fmt.Errorf("core: incumbent plan has %d stages, strategy has %d", len(old.Stages), pl.strat.PP)
	}
	if err := pl.SetStageScale(scale); err != nil {
		return nil, err
	}

	bounds := make([]int, pl.strat.PP+1)
	for s, sp := range old.Stages {
		bounds[s] = sp.LayerLo
	}
	bounds[pl.strat.PP] = old.Stages[pl.strat.PP-1].LayerHi
	repriced, err := pl.planForBounds(bounds)
	if err != nil {
		return nil, fmt.Errorf("core: repricing incumbent plan: %w", err)
	}
	next, err := pl.PlanContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: replanning under scaled costs: %w", err)
	}

	r := &Replan{Old: repriced, New: next}
	if r.OldSim, err = pl.simulate(repriced); err != nil {
		return nil, err
	}
	if r.NewSim, err = pl.simulate(next); err != nil {
		return nil, err
	}
	r.Adopted = r.NewSim.IterTime < r.OldSim.IterTime &&
		!partition.AlmostEq(r.NewSim.IterTime, r.OldSim.IterTime)
	return r, nil
}

// planForBounds prices an explicit partitioning under the current cost model
// (including any installed stage scale) and assembles a Plan for it.
func (pl *Planner) planForBounds(bounds []int) (*Plan, error) {
	L := len(pl.layers)
	p := pl.strat.PP
	if len(bounds) != p+1 || bounds[0] != 0 || bounds[p] != L {
		return nil, fmt.Errorf("core: bounds %v do not partition %d layers into %d stages", bounds, L, p)
	}
	cost := func(s, i, j int) (float64, float64, bool) {
		c := pl.stageCostFor(nil, s, i, j)
		return c.fwd, c.bwd, c.ok
	}
	total, w, e, m, ok := partition.Evaluate(bounds, pl.n, cost)
	if !ok {
		return nil, fmt.Errorf("core: bounds %v exceed the %s memory capacity (OOM)", bounds, pl.cluster.Device.Name)
	}
	plan := &Plan{
		Model:        pl.cfg.Name,
		Strategy:     pl.strat,
		SeqLen:       pl.train.SeqLen,
		MicroBatch:   pl.train.MicroBatch,
		MicroBatches: pl.n,
		Recompute:    pl.opts.Recompute,
		Partition:    pl.opts.Partition,
		Total:        total,
		W:            w,
		E:            e,
		M:            m,
	}
	bw := pl.cluster.PipelineBandwidth(pl.strat.TP)
	plan.CommFwd = pl.prof.CommTime(bw, pl.cluster.LinkLatency)
	plan.CommBwd = plan.CommFwd
	for s := 0; s < p; s++ {
		c := pl.stageCostFor(nil, s, bounds[s], bounds[s+1]-1)
		plan.Stages = append(plan.Stages, StagePlan{
			Stage:     s,
			LayerLo:   bounds[s],
			LayerHi:   bounds[s+1],
			Fwd:       c.fwd,
			Bwd:       c.bwd,
			Recompute: c.sol,
			Mem:       c.mem,
		})
	}
	pl.mu.Lock()
	plan.Search = pl.Stats
	pl.mu.Unlock()
	return plan, nil
}

// simulate runs a plan's 1F1B schedule through the discrete-event simulator.
// (This mirrors baseline.StageCosts, which cannot be imported here: baseline
// depends on core.)
func (pl *Planner) simulate(plan *Plan) (sim.Result, error) {
	sched, err := schedule.OneFOneB(pl.strat.PP, plan.MicroBatches)
	if err != nil {
		return sim.Result{}, err
	}
	costs := make([]sim.StageCost, len(plan.Stages))
	for i, s := range plan.Stages {
		costs[i] = sim.StageCost{
			Fwd:            s.Fwd,
			Bwd:            s.Bwd,
			CommFwd:        plan.CommFwd,
			CommBwd:        plan.CommBwd,
			SavedPerMicro:  s.Mem.SavedPerMicro,
			Static:         s.Mem.Static(),
			StaticSharded:  s.Mem.Optimizer,
			StaticOverhead: s.Mem.Overhead,
		}
	}
	return sim.Run(sim.Input{Sched: sched, Stages: costs})
}
