package core

import (
	"encoding/json"
	"fmt"
)

// planJSON is the stable on-disk representation of a Plan: everything an
// execution engine needs to apply the strategy (§6's search-engine →
// execution-engine handoff), without internal solver state.
type planJSON struct {
	Model        string          `json:"model"`
	TP           int             `json:"tp"`
	PP           int             `json:"pp"`
	DP           int             `json:"dp"`
	SeqLen       int             `json:"seq_len"`
	MicroBatch   int             `json:"micro_batch"`
	MicroBatches int             `json:"micro_batches"`
	Recompute    string          `json:"recompute"`
	Partition    string          `json:"partition"`
	TotalSec     float64         `json:"modeled_total_sec"`
	WarmupSec    float64         `json:"modeled_warmup_sec"`
	EndingSec    float64         `json:"modeled_ending_sec"`
	SteadySec    float64         `json:"modeled_steady_sec_per_micro"`
	CommFwdSec   float64         `json:"comm_fwd_sec"`
	CommBwdSec   float64         `json:"comm_bwd_sec"`
	Stages       []stagePlanJSON `json:"stages"`
}

type stagePlanJSON struct {
	Stage         int            `json:"stage"`
	LayerLo       int            `json:"layer_lo"`
	LayerHi       int            `json:"layer_hi"`
	FwdSec        float64        `json:"fwd_sec"`
	BwdSec        float64        `json:"bwd_sec"`
	SavedUnits    map[string]int `json:"saved_units"`
	SavedPerMicro int64          `json:"saved_bytes_per_micro"`
	StaticBytes   int64          `json:"static_bytes"`
	PeakBytes     int64          `json:"peak_bytes"`
}

// MarshalJSON serializes the plan in the stable execution-engine format.
func (p *Plan) MarshalJSON() ([]byte, error) {
	out := planJSON{
		Model:        p.Model,
		TP:           p.Strategy.TP,
		PP:           p.Strategy.PP,
		DP:           p.Strategy.DP,
		SeqLen:       p.SeqLen,
		MicroBatch:   p.MicroBatch,
		MicroBatches: p.MicroBatches,
		Recompute:    p.Recompute.String(),
		Partition:    p.Partition.String(),
		TotalSec:     p.Total,
		WarmupSec:    p.W,
		EndingSec:    p.E,
		SteadySec:    p.M,
		CommFwdSec:   p.CommFwd,
		CommBwdSec:   p.CommBwd,
	}
	for _, s := range p.Stages {
		out.Stages = append(out.Stages, stagePlanJSON{
			Stage:         s.Stage,
			LayerLo:       s.LayerLo,
			LayerHi:       s.LayerHi,
			FwdSec:        s.Fwd,
			BwdSec:        s.Bwd,
			SavedUnits:    s.Recompute.Saved,
			SavedPerMicro: s.Mem.SavedPerMicro,
			StaticBytes:   s.Mem.Static(),
			PeakBytes:     s.Mem.Total(),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores the execution-relevant fields of a serialized plan
// (layer ranges, save sets, times, memory figures). Solver-internal detail
// (full memory breakdowns, unit totals) is not round-tripped.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: decoding plan: %w", err)
	}
	p.Model = in.Model
	p.Strategy.TP, p.Strategy.PP, p.Strategy.DP = in.TP, in.PP, in.DP
	p.SeqLen, p.MicroBatch, p.MicroBatches = in.SeqLen, in.MicroBatch, in.MicroBatches
	p.Total, p.W, p.E, p.M = in.TotalSec, in.WarmupSec, in.EndingSec, in.SteadySec
	p.CommFwd, p.CommBwd = in.CommFwdSec, in.CommBwdSec
	switch in.Recompute {
	case "adaptive":
		p.Recompute = RecomputeAdaptive
	case "full":
		p.Recompute = RecomputeFull
	case "none":
		p.Recompute = RecomputeNone
	case "layer":
		p.Recompute = RecomputeLayerLevel
	default:
		return fmt.Errorf("core: unknown recompute mode %q", in.Recompute)
	}
	switch in.Partition {
	case "adaptive":
		p.Partition = PartitionAdaptive
	case "even":
		p.Partition = PartitionEven
	case "exact":
		p.Partition = PartitionExact
	default:
		return fmt.Errorf("core: unknown partition mode %q", in.Partition)
	}
	p.Stages = nil
	for _, s := range in.Stages {
		sp := StagePlan{
			Stage:   s.Stage,
			LayerLo: s.LayerLo,
			LayerHi: s.LayerHi,
			Fwd:     s.FwdSec,
			Bwd:     s.BwdSec,
		}
		sp.Recompute.Feasible = true
		sp.Recompute.Saved = s.SavedUnits
		for _, c := range s.SavedUnits {
			sp.Recompute.SavedUnits += c
		}
		sp.Mem.SavedPerMicro = s.SavedPerMicro
		// Static() components are not individually round-tripped; stash
		// the aggregate in Params so Static() and Total() reproduce.
		sp.Mem.Params = s.StaticBytes
		sp.Mem.InFlight = in.PP - s.Stage
		p.Stages = append(p.Stages, sp)
	}
	if len(p.Stages) != in.PP {
		return fmt.Errorf("core: plan has %d stages for PP=%d", len(p.Stages), in.PP)
	}
	return nil
}

// Validate checks a plan's structural invariants — contiguous non-empty
// stage layer ranges covering [0, layerCount), positive times, one stage per
// pipeline rank — so plans loaded from disk can be trusted before execution.
// layerCount may be zero to skip the coverage check when the model is not at
// hand.
func (p *Plan) Validate(layerCount int) error {
	if p.Strategy.Validate() != nil {
		return fmt.Errorf("core: plan has invalid strategy %s", p.Strategy)
	}
	if len(p.Stages) != p.Strategy.PP {
		return fmt.Errorf("core: plan has %d stages for PP=%d", len(p.Stages), p.Strategy.PP)
	}
	if p.MicroBatches < p.Strategy.PP {
		return fmt.Errorf("core: %d micro-batches cannot fill %d stages", p.MicroBatches, p.Strategy.PP)
	}
	at := 0
	for i, s := range p.Stages {
		if s.Stage != i {
			return fmt.Errorf("core: stage %d carries index %d", i, s.Stage)
		}
		if s.LayerLo != at {
			return fmt.Errorf("core: stage %d starts at layer %d, want %d", i, s.LayerLo, at)
		}
		if s.LayerHi <= s.LayerLo {
			return fmt.Errorf("core: stage %d is empty", i)
		}
		if s.Fwd <= 0 || s.Bwd <= 0 {
			return fmt.Errorf("core: stage %d has non-positive times", i)
		}
		at = s.LayerHi
	}
	if layerCount > 0 && at != layerCount {
		return fmt.Errorf("core: plan covers %d layers, model has %d", at, layerCount)
	}
	return nil
}
