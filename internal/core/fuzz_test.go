package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// FuzzReplanIncrementalVsFull is the fuzzed half of the incremental-replan
// differential harness: an arbitrary small configuration is planned cold,
// then repriced with a fuzz-chosen scale vector (identity, a single-stage
// bump, every stage, or an extreme 10x straggler) through ReplanWithScale's
// warm-started fast path. The resulting plan must be byte-identical
// (canonical Plan JSON) to a cold full search on a fresh planner under the
// same scale, and the fast path must never run more knapsacks than the cold
// search does.
func FuzzReplanIncrementalVsFull(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(4), uint8(0), uint8(1), uint8(0), uint8(0))   // identity
	f.Add(uint8(6), uint8(4), uint8(8), uint8(0), uint8(4), uint8(2), uint8(1))   // single-stage bump
	f.Add(uint8(6), uint8(4), uint8(8), uint8(2), uint8(8), uint8(0), uint8(2))   // all stages
	f.Add(uint8(10), uint8(6), uint8(12), uint8(0), uint8(2), uint8(5), uint8(3)) // extreme 10x
	f.Fuzz(func(t *testing.T, dec8, pp8, n8, part8, workers8, st8, kind8 uint8) {
		decoders := int(dec8%10) + 1
		L := 2*decoders + 2
		pp := int(pp8%uint8(L)) + 1
		if pp > 64 {
			pp = 64
		}
		n := pp + int(n8%16)
		part := []PartitionMode{PartitionAdaptive, PartitionExact}[part8%2]
		workers := int(workers8 % 9)

		scale := make([]float64, pp)
		for s := range scale {
			scale[s] = 1
		}
		switch kind8 % 4 {
		case 0: // identity: pure reassembly, nothing invalidated
		case 1:
			scale[int(st8)%pp] = 1.25
		case 2:
			for s := range scale {
				scale[s] = 1.1
			}
		case 3:
			scale[int(st8)%pp] = 10
		}

		warm := tinyPlanner(t, decoders, pp, n, 0.15, part, workers)
		old, err := warm.Plan()
		if err != nil {
			return // infeasible — nothing to replan
		}
		runsBefore := warm.Stats.KnapsackRuns
		r, err := warm.ReplanWithScale(old, scale)
		if err != nil {
			t.Fatalf("replan: %v", err)
		}
		if warm.Stats.ReplanIncremental != 1 {
			t.Fatalf("fast path not taken: ReplanIncremental = %d", warm.Stats.ReplanIncremental)
		}

		cold := tinyPlanner(t, decoders, pp, n, 0.15, part, workers)
		if err := cold.SetStageScale(scale); err != nil {
			t.Fatal(err)
		}
		coldPlan, err := cold.Plan()
		if err != nil {
			t.Fatalf("cold rebuild infeasible where warm replan succeeded: %v", err)
		}
		got, err := json.Marshal(r.New)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(coldPlan)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("incremental plan differs from cold search (scale %v):\n%s\nvs\n%s", scale, got, want)
		}
		if incr := warm.Stats.KnapsackRuns - runsBefore; incr > cold.Stats.KnapsackRuns {
			t.Fatalf("incremental replan ran %d knapsacks, cold search only %d", incr, cold.Stats.KnapsackRuns)
		}
	})
}

// FuzzPlannerPlanRoundTrip drives the full search over arbitrary small
// configurations — including degenerate shapes like one layer per stage and
// near-zero memory budgets — asserting the planner never panics, and that
// every produced plan survives marshal → unmarshal → Validate → re-marshal
// with byte-identical JSON (the serialization contract execution engines
// rely on).
func FuzzPlannerPlanRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(4), uint8(0), uint8(0), uint8(1))
	f.Add(uint8(3), uint8(8), uint8(8), uint8(1), uint8(1), uint8(4)) // L == p
	f.Add(uint8(6), uint8(4), uint8(8), uint8(9), uint8(2), uint8(8)) // tiny budget
	f.Add(uint8(15), uint8(8), uint8(16), uint8(0), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, dec8, pp8, n8, res8, part8, workers8 uint8) {
		decoders := int(dec8%15) + 1
		L := 2*decoders + 2
		pp := int(pp8%uint8(L)) + 1
		if pp > 64 { // ClusterA has 64 devices at TP=1
			pp = 64
		}
		n := pp + int(n8%16)
		// reserve sweeps [0, 0.99]: high values shrink the DP budget toward
		// zero, the "capacity 0" degenerate case.
		reserve := float64(res8%100) / 100
		part := []PartitionMode{PartitionAdaptive, PartitionEven, PartitionExact}[part8%3]
		workers := int(workers8 % 9)

		cfg := model.Tiny(decoders)
		cl := hardware.ClusterA()
		strat := parallel.Strategy{TP: 1, PP: pp, DP: 1}
		train := parallel.Config{GlobalBatch: n, MicroBatch: 1, SeqLen: 1024}
		opts := DefaultOptions()
		opts.MemoryReserve = reserve
		opts.Recompute = RecomputeAdaptive
		opts.Partition = part
		opts.Workers = workers
		pl, err := NewPlanner(cfg, cl, strat, train, opts)
		if err != nil {
			t.Skip() // invalid configuration, rejected up front
		}
		p, err := pl.Plan()
		if err != nil {
			return // infeasible (e.g. budget too small) — no plan to round-trip
		}

		first, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Plan
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if err := back.Validate(pl.LayerCount()); err != nil {
			t.Fatalf("round-tripped plan invalid: %v", err)
		}
		second, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not lossless:\n%s\nvs\n%s", first, second)
		}
	})
}
