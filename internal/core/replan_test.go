package core

import (
	"math"
	"strings"
	"testing"
)

func replanSetup(t *testing.T) (*Planner, *Plan) {
	t.Helper()
	cfg, cl, strat, train := gptSetup()
	opts := DefaultOptions()
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return pl, p
}

func TestSetStageScaleValidation(t *testing.T) {
	pl, _ := replanSetup(t)
	p := pl.strat.PP
	bad := [][]float64{
		make([]float64, p-1),
		func() []float64 { s := ones(p); s[0] = 0; return s }(),
		func() []float64 { s := ones(p); s[1] = -2; return s }(),
		func() []float64 { s := ones(p); s[2] = math.NaN(); return s }(),
	}
	for i, s := range bad {
		if err := pl.SetStageScale(s); err == nil {
			t.Errorf("case %d: scale %v accepted", i, s)
		}
	}
	if err := pl.SetStageScale(ones(p)); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetStageScale(nil); err != nil {
		t.Fatal(err)
	}
}

func ones(p int) []float64 {
	s := make([]float64, p)
	for i := range s {
		s[i] = 1
	}
	return s
}

// TestStageScaleRepricesCosts: scaling a stage multiplies its modeled times
// without disturbing other stages or poisoning the nominal cost cache.
func TestStageScaleRepricesCosts(t *testing.T) {
	pl, plan0 := replanSetup(t)
	s0 := plan0.Stages[0]

	scale := ones(pl.strat.PP)
	scale[0] = 3
	if err := pl.SetStageScale(scale); err != nil {
		t.Fatal(err)
	}
	fwd, bwd, ok := pl.CostFor(0, s0.LayerLo, s0.LayerHi-1)
	if !ok {
		t.Fatal("scaled range became infeasible; scale must not affect memory")
	}
	if math.Abs(fwd-3*s0.Fwd) > 1e-12*s0.Fwd || math.Abs(bwd-3*s0.Bwd) > 1e-12*s0.Bwd {
		t.Fatalf("scaled costs (%g, %g), want 3x nominal (%g, %g)", fwd, bwd, 3*s0.Fwd, 3*s0.Bwd)
	}

	if err := pl.SetStageScale(nil); err != nil {
		t.Fatal(err)
	}
	fwd, bwd, _ = pl.CostFor(0, s0.LayerLo, s0.LayerHi-1)
	if fwd != s0.Fwd || bwd != s0.Bwd {
		t.Fatalf("nominal costs (%g, %g) changed after scale reset, want (%g, %g): cache was poisoned",
			fwd, bwd, s0.Fwd, s0.Bwd)
	}
}

// TestReplanAdoptsFasterPartition: a 2x straggler on stage 0 makes the
// search shift layers off the slow stage; the adopted plan's simulated
// iteration must strictly beat the repriced incumbent's.
func TestReplanAdoptsFasterPartition(t *testing.T) {
	pl, old := replanSetup(t)
	scale := ones(pl.strat.PP)
	scale[0] = 2

	r, err := pl.ReplanWithScale(old, scale)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Adopted {
		t.Fatalf("2x straggler replan not adopted: old sim %g, new sim %g", r.OldSim.IterTime, r.NewSim.IterTime)
	}
	if r.NewSim.IterTime >= r.OldSim.IterTime {
		t.Fatalf("adopted plan simulates at %g, repriced incumbent at %g", r.NewSim.IterTime, r.OldSim.IterTime)
	}
	if r.Speedup() <= 1 {
		t.Fatalf("speedup = %g, want > 1", r.Speedup())
	}
	// The new plan must shed work from the degraded stage.
	if r.New.Stages[0].Layers() >= old.Stages[0].Layers() {
		t.Errorf("slow stage kept %d layers (had %d); expected the search to shrink it",
			r.New.Stages[0].Layers(), old.Stages[0].Layers())
	}
	// The repriced incumbent keeps the old bounds but pays the scaled cost.
	for s := range old.Stages {
		if r.Old.Stages[s].LayerLo != old.Stages[s].LayerLo || r.Old.Stages[s].LayerHi != old.Stages[s].LayerHi {
			t.Fatalf("repriced incumbent changed bounds at stage %d", s)
		}
	}
	if r.Old.Stages[0].Fwd <= old.Stages[0].Fwd {
		t.Errorf("repriced incumbent stage 0 fwd %g not scaled up from %g", r.Old.Stages[0].Fwd, old.Stages[0].Fwd)
	}
}

// TestReplanRejectsNoOpScale: with all-ones scale the search reproduces the
// incumbent's cost and the replan must not be adopted (AlmostEq guards the
// strictly-better test against float noise).
func TestReplanRejectsNoOpScale(t *testing.T) {
	pl, old := replanSetup(t)
	r, err := pl.ReplanWithScale(old, ones(pl.strat.PP))
	if err != nil {
		t.Fatal(err)
	}
	if r.Adopted {
		t.Fatalf("no-op scale adopted a replan: old sim %g, new sim %g", r.OldSim.IterTime, r.NewSim.IterTime)
	}
}

func TestReplanValidation(t *testing.T) {
	pl, old := replanSetup(t)
	if _, err := pl.ReplanWithScale(nil, ones(pl.strat.PP)); err == nil {
		t.Error("nil incumbent accepted")
	}
	if _, err := pl.ReplanWithScale(old, []float64{1}); err == nil || !strings.Contains(err.Error(), "stage scale") {
		t.Errorf("short scale accepted (err=%v)", err)
	}
}
