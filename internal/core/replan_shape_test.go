package core

import (
	"strings"
	"testing"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
)

// shapeCluster builds a toy cluster with one small accelerator per node, so
// node counts map 1:1 onto feasible pipeline depths.
func shapeCluster(nodes int) hardware.Cluster {
	return hardware.Cluster{
		Name: "elastic-toy",
		Device: hardware.Device{
			Name:                "toy",
			PeakFLOPS:           10e12,
			MemBandwidth:        500e9,
			MemCapacity:         1 << 40,
			GEMMEfficiency:      0.5,
			AttnEfficiency:      0.4,
			BandwidthEfficiency: 0.8,
		},
		DevicesPerNode:     1,
		Nodes:              nodes,
		IntraNodeBandwidth: 50e9,
		InterNodeBandwidth: 10e9,
		LinkLatency:        2e-6,
	}
}

func shapeSetup(t *testing.T, nodes, pp, globalBatch int) *Planner {
	t.Helper()
	pl, err := NewPlanner(model.Tiny(6), shapeCluster(nodes),
		parallel.Strategy{TP: 1, PP: pp, DP: 1},
		parallel.Config{GlobalBatch: globalBatch, MicroBatch: 1, SeqLen: 128},
		DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the iso-cache with a plan on the original shape.
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestReplanWithShapeShrink: losing a node replans the surviving shape. On a
// homogeneous toy model the deepest feasible pipeline wins (more overlap,
// negligible bubble growth), and its bounds must still partition every layer.
func TestReplanWithShapeShrink(t *testing.T) {
	pl := shapeSetup(t, 4, 4, 8)
	shrunk, err := pl.cluster.Resize(3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.ReplanWithShape(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy.PP != 3 {
		t.Fatalf("adopted PP = %d on a 3-node cluster, want 3", r.Strategy.PP)
	}
	if len(r.Plan.Stages) != 3 {
		t.Fatalf("plan has %d stages, want 3", len(r.Plan.Stages))
	}
	if lo := r.Plan.Stages[0].LayerLo; lo != 0 {
		t.Errorf("first stage starts at layer %d, want 0", lo)
	}
	if hi := r.Plan.Stages[2].LayerHi; hi != pl.LayerCount() {
		t.Errorf("last stage ends at layer %d, want %d", hi, pl.LayerCount())
	}
	if r.Sim.IterTime <= 0 {
		t.Fatalf("simulated iteration %g, want > 0", r.Sim.IterTime)
	}
	// The winner changed depth, so no iso-cache entry was transferable.
	if r.ReusedCostEntries != 0 {
		t.Errorf("reused %d cost entries across a PP change", r.ReusedCostEntries)
	}
}

// TestReplanWithShapeReusesIsoCache: when the winning depth equals the old
// one, the candidate inherits the nominal iso-cache — and the reuse must not
// change the outcome relative to a cold planner on the same cluster.
func TestReplanWithShapeReusesIsoCache(t *testing.T) {
	pl := shapeSetup(t, 4, 3, 8)
	shrunk, err := pl.cluster.Resize(3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.ReplanWithShape(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy.PP != 3 {
		t.Fatalf("adopted PP = %d, want 3 (unchanged)", r.Strategy.PP)
	}
	if r.ReusedCostEntries == 0 {
		t.Error("no iso-cache entries reused despite an unchanged PP")
	}

	cold, err := NewPlanner(pl.cfg, shrunk, r.Strategy, pl.train, pl.opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Total != want.Total {
		t.Fatalf("cache-seeded plan total %g, cold plan total %g", r.Plan.Total, want.Total)
	}
	for s := range want.Stages {
		if r.Plan.Stages[s].LayerLo != want.Stages[s].LayerLo || r.Plan.Stages[s].LayerHi != want.Stages[s].LayerHi {
			t.Fatalf("stage %d bounds differ: seeded [%d,%d), cold [%d,%d)", s,
				r.Plan.Stages[s].LayerLo, r.Plan.Stages[s].LayerHi,
				want.Stages[s].LayerLo, want.Stages[s].LayerHi)
		}
	}
}

// TestReplanWithShapeMicroBatchFloor: a scale-up cannot adopt depths the
// micro-batch count cannot fill — with n=4 micro-batches, a 6-node cluster
// still caps the pipeline at 4 stages.
func TestReplanWithShapeMicroBatchFloor(t *testing.T) {
	pl := shapeSetup(t, 4, 4, 4)
	grown, err := pl.cluster.Resize(6)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pl.ReplanWithShape(grown)
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy.PP > 4 {
		t.Fatalf("adopted PP = %d with only 4 micro-batches", r.Strategy.PP)
	}
}

func TestReplanWithShapeValidation(t *testing.T) {
	pl, err := NewPlanner(model.Tiny(6), shapeCluster(4),
		parallel.Strategy{TP: 2, PP: 2, DP: 1},
		parallel.Config{GlobalBatch: 8, MicroBatch: 1, SeqLen: 128},
		DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.ReplanWithShape(hardware.Cluster{}); err == nil {
		t.Error("invalid cluster accepted")
	}
	small := shapeCluster(1) // 1 device cannot host one TP=2 stage
	if _, err := pl.ReplanWithShape(small); err == nil || !strings.Contains(err.Error(), "fewer than one") {
		t.Errorf("undersized cluster: err = %v", err)
	}
}
