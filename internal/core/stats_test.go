package core

import (
	"strings"
	"testing"
)

func TestPlanCarriesSearchStats(t *testing.T) {
	p := plan(t, RecomputeAdaptive, PartitionAdaptive)
	s := p.Search
	if s.CostEvaluations <= 0 {
		t.Fatal("no cost evaluations counted")
	}
	if s.KnapsackRuns <= 0 {
		t.Error("no knapsack runs counted")
	}
	if s.CacheHits <= 0 {
		t.Error("isomorphism cache never hit on GPT-3 (many identical ranges)")
	}
	if s.KnapsackRuns+s.CacheHits > s.CostEvaluations {
		t.Errorf("runs %d + hits %d exceed evaluations %d", s.KnapsackRuns, s.CacheHits, s.CostEvaluations)
	}
	if hr := s.CacheHitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("cache hit rate %g outside (0,1)", hr)
	}
	if s.KnapsackCells <= 0 {
		t.Error("no knapsack cells counted")
	}
	if s.PartitionCells <= 0 {
		t.Error("no partition cells counted")
	}
	if s.FrontierStates != 0 {
		t.Errorf("frontier states %d nonzero outside PartitionExact", s.FrontierStates)
	}
	if s.QuantaAfterGCD > s.QuantaBeforeGCD {
		t.Errorf("GCD reduction grew capacity: %d → %d", s.QuantaBeforeGCD, s.QuantaAfterGCD)
	}
	if s.GCDReduction() < 1 {
		t.Errorf("GCD reduction factor %g below 1", s.GCDReduction())
	}
	if s.SearchWall <= 0 {
		t.Error("search wall time not measured")
	}
	out := s.String()
	for _, frag := range []string{"cost evals", "knapsack", "partition cells", "wall"} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary %q missing %q", out, frag)
		}
	}
	ms := s.PromMetrics("adapipe_search")
	if len(ms) == 0 {
		t.Fatal("no prom metrics")
	}
	for _, m := range ms {
		if !strings.HasPrefix(m.Name, "adapipe_search_") {
			t.Errorf("metric %q lacks prefix", m.Name)
		}
	}
}

func TestExactPartitionCountsFrontier(t *testing.T) {
	p := plan(t, RecomputeAdaptive, PartitionExact)
	if p.Search.FrontierStates <= 0 {
		t.Error("PartitionExact reported no frontier states")
	}
	if p.Search.PartitionCells <= 0 {
		t.Error("PartitionExact reported no partition cells")
	}
}

func TestSearchStatsZeroValues(t *testing.T) {
	var s SearchStats
	if s.CacheHitRate() != 0 {
		t.Error("zero stats should report 0 hit rate")
	}
	if s.GCDReduction() != 1 {
		t.Error("zero stats should report GCD reduction 1")
	}
}
