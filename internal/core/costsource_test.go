package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"adapipe/internal/coststore"
)

// TestCostStorePlanMatchesSeed is the tentpole's differential proof: for every
// worker count and every store state — no store (the seed planner), a cold
// store, a store warmed by a previous identical search, and a store saved to
// disk and restored into a fresh one — the produced plan serializes to
// byte-identical JSON. The shared cost store may change how a stage cost is
// obtained, never what it is.
func TestCostStorePlanMatchesSeed(t *testing.T) {
	type cfg struct {
		decoders, pp, n int
		reserve         float64
		part            PartitionMode
	}
	cases := []cfg{
		{decoders: 3, pp: 2, n: 4, reserve: 0.15, part: PartitionAdaptive},
		{decoders: 6, pp: 4, n: 8, reserve: 0.15, part: PartitionAdaptive},
		{decoders: 6, pp: 4, n: 16, reserve: 0.60, part: PartitionExact},
		{decoders: 15, pp: 8, n: 16, reserve: 0.15, part: PartitionEven},
	}
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("L%d_p%d_n%d_r%.2f_%s", 2*c.decoders+2, c.pp, c.n, c.reserve, c.part)
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 8} {
				// Seed: no store attached.
				seed, err := tinyPlanner(t, c.decoders, c.pp, c.n, c.reserve, c.part, workers).Plan()
				if err != nil {
					t.Fatalf("workers=%d seed: %v", workers, err)
				}
				want, err := json.Marshal(seed)
				if err != nil {
					t.Fatal(err)
				}

				// Cold store: every lookup is a store miss solved and published.
				store := coststore.New(8192)
				cold := tinyPlanner(t, c.decoders, c.pp, c.n, c.reserve, c.part, workers)
				if err := cold.SetCostSource(store); err != nil {
					t.Fatalf("workers=%d attach: %v", workers, err)
				}
				coldPlan, err := cold.Plan()
				if err != nil {
					t.Fatalf("workers=%d cold: %v", workers, err)
				}
				got, err := json.Marshal(coldPlan)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: cold-store plan differs from seed\nseed: %s\ngot:  %s", workers, want, got)
				}
				if cold.Stats.StoreMisses == 0 {
					t.Errorf("workers=%d: cold planner recorded no store misses", workers)
				}

				// Warm store: a second planner answers every knapsack from the
				// store — zero fresh solves, the cross-request reuse the store
				// exists for.
				warm := tinyPlanner(t, c.decoders, c.pp, c.n, c.reserve, c.part, workers)
				if err := warm.SetCostSource(store); err != nil {
					t.Fatal(err)
				}
				warmPlan, err := warm.Plan()
				if err != nil {
					t.Fatalf("workers=%d warm: %v", workers, err)
				}
				got, err = json.Marshal(warmPlan)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: warm-store plan differs from seed", workers)
				}
				if warm.Stats.KnapsackRuns != 0 {
					t.Errorf("workers=%d: warm planner solved %d knapsacks, want 0 (all served by the store)",
						workers, warm.Stats.KnapsackRuns)
				}
				if warm.Stats.StoreHits == 0 {
					t.Errorf("workers=%d: warm planner recorded no store hits", workers)
				}
				if warm.Stats.StoreMisses != 0 {
					t.Errorf("workers=%d: warm planner recorded %d store misses, want 0",
						workers, warm.Stats.StoreMisses)
				}

				// Restored-from-disk: save the warm store, load into a fresh
				// one, plan again.
				path := filepath.Join(t.TempDir(), "store.json")
				if err := store.SaveSnapshot(path); err != nil {
					t.Fatal(err)
				}
				restored := coststore.New(8192)
				if err := restored.LoadSnapshot(path); err != nil {
					t.Fatal(err)
				}
				rest := tinyPlanner(t, c.decoders, c.pp, c.n, c.reserve, c.part, workers)
				if err := rest.SetCostSource(restored); err != nil {
					t.Fatal(err)
				}
				restPlan, err := rest.Plan()
				if err != nil {
					t.Fatalf("workers=%d restored: %v", workers, err)
				}
				got, err = json.Marshal(restPlan)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: restored-store plan differs from seed", workers)
				}
				if rest.Stats.KnapsackRuns != 0 {
					t.Errorf("workers=%d: restored-store planner solved %d knapsacks, want 0",
						workers, rest.Stats.KnapsackRuns)
				}
			}
		})
	}
}

// TestCostFamilySeparation checks the family fingerprint isolates entries
// that must not be shared: two planners differing in a solve-relevant input
// (memory reserve) derive different store keys, while two differing only in a
// partition-level input (global batch) share every entry.
func TestCostFamilySeparation(t *testing.T) {
	store := coststore.New(8192)

	a := tinyPlanner(t, 6, 4, 8, 0.15, PartitionAdaptive, 1)
	if err := a.SetCostSource(store); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(); err != nil {
		t.Fatal(err)
	}
	if a.Stats.StoreMisses == 0 {
		t.Fatal("first planner published nothing")
	}

	// Same family, different global batch: the partition DP changes, the
	// stage costs do not — every lookup must hit.
	b := tinyPlanner(t, 6, 4, 16, 0.15, PartitionAdaptive, 1)
	if err := b.SetCostSource(store); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Plan(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.StoreMisses != 0 {
		t.Errorf("global-batch sweep re-solved %d knapsacks; family should share them all", b.Stats.StoreMisses)
	}
	if b.Stats.StoreHits == 0 {
		t.Error("global-batch sweep recorded no store hits")
	}

	// Different memory reserve: a different budget is a different family —
	// nothing may be shared.
	c := tinyPlanner(t, 6, 4, 8, 0.60, PartitionAdaptive, 1)
	if err := c.SetCostSource(store); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.StoreHits != 0 {
		t.Errorf("changed memory budget still got %d store hits; families must not collide", c.Stats.StoreHits)
	}
}

// TestSetCostSourceDetach checks that a nil source detaches cleanly and the
// planner goes back to private solving.
func TestSetCostSourceDetach(t *testing.T) {
	store := coststore.New(64)
	pl := tinyPlanner(t, 3, 2, 4, 0.15, PartitionAdaptive, 1)
	if err := pl.SetCostSource(store); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetCostSource(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
	if pl.Stats.StoreHits+pl.Stats.StoreMisses != 0 {
		t.Errorf("detached planner still touched the store: %d hits, %d misses",
			pl.Stats.StoreHits, pl.Stats.StoreMisses)
	}
	if store.Len() != 0 {
		t.Errorf("detached planner published %d entries", store.Len())
	}
}
