package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"adapipe/internal/hardware"
	"adapipe/internal/model"
	"adapipe/internal/parallel"
	"adapipe/internal/profile"
)

func gptSetup() (model.Config, hardware.Cluster, parallel.Strategy, parallel.Config) {
	return model.GPT3_175B(), hardware.ClusterA(),
		parallel.Strategy{TP: 8, PP: 8, DP: 1},
		parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 16384}
}

func plan(t *testing.T, rec RecomputeMode, part PartitionMode) *Plan {
	t.Helper()
	cfg, cl, strat, train := gptSetup()
	opts := DefaultOptions()
	opts.Recompute = rec
	opts.Partition = part
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAdaptivePlanFitsMemory(t *testing.T) {
	_, cl, _, _ := gptSetup()
	p := plan(t, RecomputeAdaptive, PartitionAdaptive)
	for _, s := range p.Stages {
		if s.Mem.Total() > cl.Device.MemCapacity {
			t.Errorf("stage %d modeled at %d bytes, capacity %d", s.Stage, s.Mem.Total(), cl.Device.MemCapacity)
		}
	}
}

func TestPlanCoversAllLayers(t *testing.T) {
	cfg, _, _, _ := gptSetup()
	p := plan(t, RecomputeAdaptive, PartitionAdaptive)
	L := len(cfg.LayerSequence())
	if p.Stages[0].LayerLo != 0 {
		t.Error("first stage does not start at layer 0")
	}
	if p.Stages[len(p.Stages)-1].LayerHi != L {
		t.Error("last stage does not end at the last layer")
	}
	for i := 1; i < len(p.Stages); i++ {
		if p.Stages[i].LayerLo != p.Stages[i-1].LayerHi {
			t.Errorf("gap between stages %d and %d", i-1, i)
		}
		if p.Stages[i].Layers() <= 0 {
			t.Errorf("stage %d is empty", i)
		}
	}
}

func TestSavedUnitsGrowWithStage(t *testing.T) {
	// §7.4: the saved-unit count increases with the stage id because
	// earlier stages hold more in-flight micro-batches (Table 4).
	p := plan(t, RecomputeAdaptive, PartitionEven)
	first := p.Stages[0].Recompute.SavedUnits
	last := p.Stages[len(p.Stages)-1].Recompute.SavedUnits
	if last <= first {
		t.Errorf("saved units: first stage %d, last stage %d; want growth", first, last)
	}
	// Weak monotonicity with one tolerated dip (the embedding/head layers
	// perturb stage budgets).
	dips := 0
	for i := 1; i < len(p.Stages); i++ {
		if p.Stages[i].Recompute.SavedUnits < p.Stages[i-1].Recompute.SavedUnits {
			dips++
		}
	}
	if dips > 1 {
		t.Errorf("saved-unit counts dip %d times: %v", dips, savedUnits(p))
	}
}

func savedUnits(p *Plan) []int {
	out := make([]int, len(p.Stages))
	for i, s := range p.Stages {
		out[i] = s.Recompute.SavedUnits
	}
	return out
}

func TestAdaPipeShiftsLayersToLaterStages(t *testing.T) {
	// §7.4 / Table 4: AdaPipe moves layers from early (recompute-heavy)
	// stages to later stages.
	p := plan(t, RecomputeAdaptive, PartitionAdaptive)
	first := p.Stages[0].Layers()
	last := p.Stages[len(p.Stages)-1].Layers()
	if last < first {
		t.Errorf("layer counts: first %d, last %d; want the tail at least as long", first, last)
	}
}

func TestModeOrdering(t *testing.T) {
	// Modeled totals: AdaPipe ≤ Even Partitioning ≤ DAPPLE-Full, and
	// adaptive recomputation beats full recomputation.
	ada := plan(t, RecomputeAdaptive, PartitionAdaptive)
	even := plan(t, RecomputeAdaptive, PartitionEven)
	full := plan(t, RecomputeFull, PartitionEven)
	if ada.Total > even.Total+1e-9 {
		t.Errorf("AdaPipe %g worse than Even Partitioning %g", ada.Total, even.Total)
	}
	if even.Total >= full.Total {
		t.Errorf("Even Partitioning %g not better than DAPPLE-Full %g", even.Total, full.Total)
	}
	// The headline claim: >1.2x over full recomputation at seq 16384.
	if speedup := full.Total / ada.Total; speedup < 1.15 {
		t.Errorf("AdaPipe speedup over full recomputation = %.3f, want > 1.15", speedup)
	}
}

func TestBackwardIncludesRecomputation(t *testing.T) {
	full := plan(t, RecomputeFull, PartitionEven)
	ada := plan(t, RecomputeAdaptive, PartitionEven)
	for i := range full.Stages {
		if full.Stages[i].Bwd <= ada.Stages[i].Bwd {
			t.Errorf("stage %d: full-recompute backward %g should exceed adaptive %g",
				i, full.Stages[i].Bwd, ada.Stages[i].Bwd)
		}
	}
}

func TestNoRecomputeOOMAtLongSequence(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	opts := DefaultOptions()
	opts.Recompute = RecomputeNone
	opts.Partition = PartitionEven
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(); err == nil {
		t.Error("DAPPLE-Non at seq 16384 should exceed 80 GiB (§7.2)")
	}
	// With the limit ignored, the plan is produced for estimation.
	opts.IgnoreMemoryLimit = true
	pl2, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages[0].Mem.Total() <= cl.Device.MemCapacity {
		t.Error("estimated no-recompute stage 0 should exceed capacity")
	}
}

func TestTinyTPOOM(t *testing.T) {
	// Table 3 / §7.3: at (1, 32, 2) AdaPipe's always-saved floor exceeds
	// the budget while DAPPLE-Full still fits.
	cfg := model.GPT3_175B()
	cl := hardware.ClusterA()
	strat := parallel.Strategy{TP: 1, PP: 32, DP: 2}
	train := parallel.Config{GlobalBatch: 128, MicroBatch: 1, SeqLen: 4096}
	opts := DefaultOptions()
	opts.Recompute = RecomputeAdaptive
	opts.Partition = PartitionEven
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(); err == nil {
		t.Error("AdaPipe at (1,32,2) should OOM")
	}
	opts.Recompute = RecomputeFull
	pl2, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl2.Plan(); err != nil {
		t.Errorf("DAPPLE-Full at (1,32,2) should fit: %v", err)
	}
}

func TestIsomorphismCacheIsLossless(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	for _, disable := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Recompute = RecomputeAdaptive
		opts.Partition = PartitionAdaptive
		opts.DisableIsomorphism = disable
		pl, err := NewPlanner(cfg, cl, strat, train, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pl.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if disable {
			if math.Abs(p.Total-planTotalCache) > 1e-12 {
				t.Errorf("isomorphism cache changed the plan: %g vs %g", p.Total, planTotalCache)
			}
			if pl.Stats.KnapsackRuns <= knapsackRunsCache {
				t.Errorf("disabling the cache should increase knapsack runs: %d vs %d",
					pl.Stats.KnapsackRuns, knapsackRunsCache)
			}
		} else {
			planTotalCache = p.Total
			knapsackRunsCache = pl.Stats.KnapsackRuns
		}
	}
}

var (
	planTotalCache    float64
	knapsackRunsCache int
)

func TestGCDIsLossless(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	var ref float64
	for _, disable := range []bool{false, true} {
		opts := DefaultOptions()
		opts.DisableGCD = disable
		pl, err := NewPlanner(cfg, cl, strat, train, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pl.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if disable {
			if math.Abs(p.Total-ref) > 1e-12 {
				t.Errorf("GCD reduction changed the plan: %g vs %g", p.Total, ref)
			}
		} else {
			ref = p.Total
		}
	}
}

func TestCostForBoundsChecks(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	pl, err := NewPlanner(cfg, cl, strat, train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	L := pl.LayerCount()
	if L != len(cfg.LayerSequence()) {
		t.Errorf("LayerCount = %d", L)
	}
	if _, _, ok := pl.CostFor(-1, 0, 1); ok {
		t.Error("negative stage accepted")
	}
	if _, _, ok := pl.CostFor(0, 5, 4); ok {
		t.Error("inverted range accepted")
	}
	if _, _, ok := pl.CostFor(0, 0, L); ok {
		t.Error("out-of-range layer accepted")
	}
	if f, b, ok := pl.CostFor(0, 0, 10); !ok || f <= 0 || b <= 0 {
		t.Errorf("CostFor(0,0,10) = %g, %g, %v", f, b, ok)
	}
}

func TestNewPlannerValidation(t *testing.T) {
	cfg, cl, strat, train := gptSetup()
	bad := DefaultOptions()
	bad.MemoryReserve = 1.5
	if _, err := NewPlanner(cfg, cl, strat, train, bad); err == nil {
		t.Error("bad reserve accepted")
	}
	if _, err := NewPlanner(cfg, cl, parallel.Strategy{TP: 64, PP: 64, DP: 64}, train, DefaultOptions()); err == nil {
		t.Error("oversized strategy accepted")
	}
	small := train
	small.GlobalBatch = 4 // fewer micro-batches than stages
	if _, err := NewPlanner(cfg, cl, strat, small, DefaultOptions()); err == nil {
		t.Error("n < p accepted")
	}
	badMem := DefaultOptions()
	badMem.Memory.ParamBytes = 0
	if _, err := NewPlanner(cfg, cl, strat, train, badMem); err == nil {
		t.Error("bad memory options accepted")
	}
}

func TestPlanAccessors(t *testing.T) {
	p := plan(t, RecomputeAdaptive, PartitionAdaptive)
	if len(p.Fwd()) != 8 || len(p.Bwd()) != 8 || len(p.SavedPerMicro()) != 8 || len(p.StaticMem()) != 8 {
		t.Fatal("accessor lengths wrong")
	}
	for i := range p.Stages {
		if p.Fwd()[i] != p.Stages[i].Fwd || p.Bwd()[i] != p.Stages[i].Bwd {
			t.Errorf("accessor mismatch at %d", i)
		}
	}
	if p.CommFwd <= 0 || p.CommBwd <= 0 {
		t.Error("comm times not set")
	}
}

func TestModeStrings(t *testing.T) {
	if RecomputeAdaptive.String() != "adaptive" || RecomputeFull.String() != "full" || RecomputeNone.String() != "none" {
		t.Error("recompute mode strings")
	}
	if PartitionAdaptive.String() != "adaptive" || PartitionEven.String() != "even" {
		t.Error("partition mode strings")
	}
	if !strings.Contains(RecomputeMode(9).String(), "9") || !strings.Contains(PartitionMode(9).String(), "9") {
		t.Error("unknown mode strings")
	}
}

func TestSearchIsFast(t *testing.T) {
	// §5.3: "the entire search process takes only seconds". Budget the
	// full two-level DP for GPT-3 at a few seconds even on slow CI.
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg, cl, strat, train := gptSetup()
	opts := DefaultOptions()
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("search took %v, want seconds", elapsed)
	}
}

func TestGranularityAblation(t *testing.T) {
	// Unit granularity (AdaPipe) must be at least as good as whole-layer
	// granularity (vPipe-style prior work), which must beat full
	// recomputation — the §2.2 motivation for computation units.
	unit := plan(t, RecomputeAdaptive, PartitionEven)
	layer := plan(t, RecomputeLayerLevel, PartitionEven)
	full := plan(t, RecomputeFull, PartitionEven)
	if unit.Total > layer.Total+1e-9 {
		t.Errorf("unit granularity %g worse than layer granularity %g", unit.Total, layer.Total)
	}
	if layer.Total >= full.Total {
		t.Errorf("layer granularity %g not better than full recomputation %g", layer.Total, full.Total)
	}
	// Both fit in memory.
	_, cl, _, _ := gptSetup()
	for _, st := range layer.Stages {
		if st.Mem.Total() > cl.Device.MemCapacity {
			t.Errorf("layer-level stage %d exceeds capacity", st.Stage)
		}
	}
}

func TestExactPartitioningNearOptimality(t *testing.T) {
	// The Pareto-frontier DP is optimal under the cost model; Algorithm 1
	// must land within a fraction of a percent on the real GPT-3 search
	// (validating the paper's "near-optimal" claim).
	heur := plan(t, RecomputeAdaptive, PartitionAdaptive)
	exact := plan(t, RecomputeAdaptive, PartitionExact)
	if exact.Total > heur.Total+1e-9 {
		t.Errorf("exact %g worse than Algorithm 1 %g", exact.Total, heur.Total)
	}
	if gap := heur.Total/exact.Total - 1; gap > 0.01 {
		t.Errorf("Algorithm 1 is %.2f%% off optimal, want < 1%%", gap*100)
	}
}

func TestPlannerWithMeasuredProfile(t *testing.T) {
	// Plan from a measured profile (the paper's deployment path) and check
	// it matches planning from the equivalent analytical profile.
	cfg, cl, strat, train := gptSetup()
	analytic, err := profile.NewWithComm(cfg, cl.Device, strat, train.SeqLen, train.MicroBatch, cl.IntraNodeBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := profile.FromMeasurements(cfg, strat, train.SeqLen, train.MicroBatch, analytic.Measurements(), analytic.CommBytes)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	plA, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	planA, err := plA.Plan()
	if err != nil {
		t.Fatal(err)
	}
	plM, err := NewPlannerWithProfile(cfg, cl, strat, train, measured, opts)
	if err != nil {
		t.Fatal(err)
	}
	planM, err := plM.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Measurements() exports per-unit numbers; the analytical layer costs
	// additionally fold in TP-collective time, so the totals differ by a
	// constant per layer. Compare structure and feasibility, not totals.
	if len(planM.Stages) != len(planA.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(planM.Stages), len(planA.Stages))
	}
	if planM.Total <= 0 {
		t.Error("measured plan has no modeled time")
	}
	for _, s := range planM.Stages {
		if s.Mem.Total() > cl.Device.MemCapacity {
			t.Errorf("measured plan stage %d exceeds capacity", s.Stage)
		}
	}
	if _, err := NewPlannerWithProfile(cfg, cl, strat, train, nil, opts); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestPlannerMicroBatchSizeTwo(t *testing.T) {
	cfg, cl, strat, _ := gptSetup()
	train := parallel.Config{GlobalBatch: 64, MicroBatch: 2, SeqLen: 4096}
	opts := DefaultOptions()
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the micro-batch size doubles the per-micro activation need;
	// compare against micro-batch 1 at the same sequence length.
	train1 := parallel.Config{GlobalBatch: 32, MicroBatch: 1, SeqLen: 4096}
	pl1, err := NewPlanner(cfg, cl, strat, train1, opts)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := pl1.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Stages[0].Fwd <= p1.Stages[0].Fwd {
		t.Error("micro-batch 2 should take longer per micro-step")
	}
	if p2.Stages[0].Mem.Total() > cl.Device.MemCapacity {
		t.Error("micro-batch 2 plan exceeds capacity")
	}
}

func TestPlannerSingleStage(t *testing.T) {
	// PP=1 degenerates to pure gradient accumulation; the planner must
	// still search recomputation for the lone stage.
	cfg := model.Tiny(4)
	cl := hardware.ClusterA()
	cl.Nodes = 1
	strat := parallel.Strategy{TP: 1, PP: 1, DP: 1}
	train := parallel.Config{GlobalBatch: 4, MicroBatch: 1, SeqLen: 1024}
	opts := DefaultOptions()
	pl, err := NewPlanner(cfg, cl, strat, train, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 1 {
		t.Fatalf("%d stages", len(p.Stages))
	}
	if p.Stages[0].LayerLo != 0 || p.Stages[0].LayerHi != pl.LayerCount() {
		t.Error("single stage must cover the whole model")
	}
}
