package core

import (
	"context"
	"time"

	"adapipe/internal/coststore"
	"adapipe/internal/obs"
	"adapipe/internal/pool"
	"adapipe/internal/recompute"
)

// workerCount resolves the Options.Workers knob: values <= 1 select the
// serial search.
func (pl *Planner) workerCount() int {
	if pl.opts.Workers <= 1 {
		return 1
	}
	return pl.opts.Workers
}

// prefillTask is one representative (s, i, j) range for a distinct
// isomorphism class the partition DP may evaluate.
type prefillTask struct {
	key     costKey
	s, i, j int
}

// prefillCosts solves every stage cost the partition DP can touch, fanned
// across the worker pool, and merges the results into the isomorphic-range
// cache. This is the parallel heart of the search: the per-(stage,
// iso-class) knapsack solves are mutually independent, so they are the part
// worth parallelizing — the DP itself then runs against a warm cache where
// every lookup is a hit.
//
// Determinism: the task list is enumerated in a fixed order, each task's
// solve is a pure function of immutable planner state, results are keyed by
// task index, and the merge walks the task list in index order after all
// workers have joined. Per-worker counters (SearchStats shards, busy time)
// are merged in worker order; all are commutative sums. Nothing observable
// depends on which worker ran which task, so the produced plans are
// byte-identical to the serial search (TestParallelPlanMatchesSerial).
//
// The enumerated domain is a superset of what the lazy serial search touches
// (the serial DP skips ranges whose successor state is infeasible), so
// parallel SearchStats may count somewhat more knapsack runs than serial —
// the plan, however, never differs.
//
// Cancellation: when ctx is done the workers stop pulling tasks, only the
// tasks that actually completed are merged into the cache (a half-run prefill
// must never poison it with zero-valued entries), and the context error is
// returned so PlanContext can abandon the search.
func (pl *Planner) prefillCosts(ctx context.Context, workers int) error {
	L := len(pl.layers)
	p := pl.strat.PP

	// Enumerate one representative per missing iso class, under the lock
	// (map reads of pl.cache); the scan itself is cheap relative to solves.
	var tasks []prefillTask
	var solvers []*recompute.Solver
	pl.mu.Lock()
	src, family := pl.source, pl.family
	seen := make(map[costKey]bool, len(pl.cache))
	add := func(s, i, j int) {
		key := pl.isoKey(s, i, j)
		if seen[key] {
			return
		}
		seen[key] = true
		if _, cached := pl.cache[key]; cached {
			return
		}
		tasks = append(tasks, prefillTask{key: key, s: s, i: i, j: j})
	}
	// Base level: the last stage takes everything that remains.
	for i := 0; i < L; i++ {
		add(p-1, i, L-1)
	}
	// Upper levels: stage s may cover [i, j] with i <= j <= L-p+s so every
	// later stage keeps at least one layer.
	for s := p - 2; s >= 0; s-- {
		for i := 0; i <= L-p+s; i++ {
			for j := i; j <= L-p+s; j++ {
				add(s, i, j)
			}
		}
	}
	if len(tasks) > 0 {
		// Borrow the per-worker knapsack solvers from the planner's pool
		// while the lock is still held; their scratch arenas survive across
		// Plan calls, so repeat searches on one planner stop paying the
		// per-request arena rebuild. The borrowed solvers are exclusively
		// owned until the merge parks them back on the pool.
		workers = pool.Clamp(workers, len(tasks))
		for w := 0; w < workers; w++ {
			if n := len(pl.solverPool); n > 0 {
				solvers = append(solvers, pl.solverPool[n-1])
				pl.solverPool[n-1] = nil
				pl.solverPool = pl.solverPool[:n-1]
			} else {
				solvers = append(solvers, recompute.NewSolver())
			}
		}
	}
	pl.mu.Unlock()
	if len(tasks) == 0 {
		return ctx.Err()
	}

	results := make([]stageCost, len(tasks))
	done := make([]bool, len(tasks))
	statsW := make([]SearchStats, workers)
	busy := make([]time.Duration, workers)
	tr := obs.TracerFrom(ctx)
	for w, sv := range solvers {
		// Worker w's knapsack spans render on trace track w+1, leaving
		// track 0 to the request-serial phases; the solver itself records
		// them (recompute.Solver.Trace), the deepest traced level.
		sv.Trace = tr
		sv.Tid = w + 1
	}
	wallStart := pl.clock()
	runErr := pool.RunContext(ctx, workers, len(tasks), func(w, i int) {
		t := tasks[i]
		start := pl.clock()
		if src != nil {
			// Route the solve through the shared store: concurrent planners
			// of one family prefilling at once compute each key exactly once
			// between them (singleflight), and a warm store turns the whole
			// prefill into lookups. Per-worker hit/miss tallies ride the
			// stats shards and merge with the rest.
			e, disp := src.GetOrCompute(storeKeyFor(family, t.key), func() coststore.Entry {
				return entryFromCost(pl.solveStage(t.s, t.i, t.j, solvers[w], &statsW[w]))
			})
			results[i] = costFromEntry(e)
			if disp == coststore.Computed {
				statsW[w].StoreMisses++
			} else {
				statsW[w].StoreHits++
			}
		} else {
			results[i] = pl.solveStage(t.s, t.i, t.j, solvers[w], &statsW[w])
		}
		done[i] = true
		busy[w] += pl.clock().Sub(start)
	})
	wall := pl.clock().Sub(wallStart)

	spMerge := tr.Start("search.merge", obs.CatSearch, 0)
	defer spMerge.End()
	pl.mu.Lock()
	merged := 0
	for i, t := range tasks {
		// Skip tasks the cancelled pool never ran — their zero-valued
		// results would poison the cache. A concurrent Plan call may have
		// raced a key in; first write wins (all writers compute identical
		// values).
		if !done[i] {
			continue
		}
		merged++
		if _, cached := pl.cache[t.key]; !cached {
			pl.cache[t.key] = results[i]
		}
	}
	// Each prefill solve is one cost evaluation served without a cache hit,
	// matching what the serial miss path would have counted.
	pl.Stats.CostEvaluations += merged
	for w := range statsW {
		pl.Stats.KnapsackRuns += statsW[w].KnapsackRuns
		pl.Stats.KnapsackCells += statsW[w].KnapsackCells
		pl.Stats.QuantaBeforeGCD += statsW[w].QuantaBeforeGCD
		pl.Stats.QuantaAfterGCD += statsW[w].QuantaAfterGCD
		pl.Stats.StoreHits += statsW[w].StoreHits
		pl.Stats.StoreMisses += statsW[w].StoreMisses
		pl.Stats.ParallelBusy += busy[w]
	}
	pl.Stats.ParallelWall += wall
	// Park the borrowed solvers for the next run, dropping their tracer so
	// a later request cannot cross-attribute knapsack spans.
	for _, sv := range solvers {
		sv.Trace = nil
		sv.Tid = 0
		pl.solverPool = append(pl.solverPool, sv)
	}
	pl.mu.Unlock()
	return runErr
}
